#include "core/library_diff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>

#include "circuits/synthetic.h"
#include "netlist/flatten.h"
#include "support/netlist_mutator.h"
#include "util/error.h"

namespace ancstr {
namespace {

using testsupport::attachFanout;
using testsupport::LibrarySpec;
using testsupport::libraryFromSpec;
using testsupport::MutationKind;
using testsupport::NetlistMutator;
using testsupport::rebuildIdentity;
using testsupport::specFromLibrary;

GraphBuildOptions uncapped() { return GraphBuildOptions{}; }

const MasterDelta* findMaster(const LibraryDiff& diff,
                              const std::string& name) {
  for (const MasterDelta& m : diff.masters) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

/// Unique temp path for manifest round-trips.
std::filesystem::path tempManifestPath(const char* tag) {
  return std::filesystem::temp_directory_path() /
         (std::string("ancstr_diff_test_") + tag + ".manifest");
}

TEST(LibraryDiff, IdentityDiffIsFullyClean) {
  const auto bench = circuits::makeBlockArray(3);
  const LibraryDiff diff = diffLibraries(bench.lib, rebuildIdentity(bench.lib),
                                         uncapped(), FeatureConfig{});
  EXPECT_TRUE(diff.identical());
  EXPECT_TRUE(diff.designUnchanged);
  EXPECT_EQ(diff.dirtyNodes, 0u);
  EXPECT_EQ(diff.dirtyDevices, 0u);
  EXPECT_GT(diff.cleanNodes, 0u);
  EXPECT_GT(diff.reusableDevices, 0u);
  EXPECT_EQ(diff.changedMasters(), 0u);
  for (const MasterDelta& m : diff.masters) {
    EXPECT_EQ(m.change, MasterChange::kUnchanged) << m.name;
    EXPECT_TRUE(m.oldHash == m.newHash) << m.name;
  }
}

TEST(LibraryDiff, PureRenamesReadAsUnchanged) {
  const auto bench = circuits::makeBlockArray(3);
  NetlistMutator mutator(bench.lib, /*seed=*/19);
  const Library renamed = mutator.mutate(
      5, {MutationKind::kRenameNet, MutationKind::kRenameDevice,
          MutationKind::kRenameInstance});
  const LibraryDiff diff =
      diffLibraries(bench.lib, renamed, uncapped(), FeatureConfig{});
  EXPECT_TRUE(diff.identical());
  EXPECT_EQ(diff.changedMasters(), 0u);
}

TEST(LibraryDiff, TopLevelEditKeepsChildSubtreesClean) {
  const auto bench = circuits::makeBlockArray(4);
  // attachFanout adds capacitors to the TOP cell only. Uncapped, the OTA
  // children's subtree hashes are untouched: exactly the root is dirty.
  const Library fanned = attachFanout(bench.lib, 2);
  const LibraryDiff diff =
      diffLibraries(bench.lib, fanned, uncapped(), FeatureConfig{});
  EXPECT_FALSE(diff.designUnchanged);
  EXPECT_EQ(diff.dirtyNodes, 1u);
  EXPECT_EQ(diff.cleanNodes, 4u);
  EXPECT_TRUE(diff.dirtyNode.at(0));

  const FlatDesign newDesign = FlatDesign::elaborate(fanned);
  std::size_t rootOwned = newDesign.root().leafDevices.size();
  EXPECT_EQ(diff.dirtyDevices, rootOwned);
  EXPECT_EQ(diff.reusableDevices, newDesign.devices().size() - rootOwned);

  // The top master's content changed; the OTA master did not.
  const MasterDelta* ota = findMaster(diff, "ota_cell");
  ASSERT_NE(ota, nullptr);
  EXPECT_EQ(ota->change, MasterChange::kUnchanged);
  EXPECT_EQ(diff.changedMasters(), 1u);
}

TEST(LibraryDiff, MasterEditDirtiesEveryInstance) {
  const auto bench = circuits::makeBlockArray(4);
  // Scale a device inside the shared OTA master: every instance's subtree
  // (and the root above them) changes.
  LibrarySpec spec = specFromLibrary(bench.lib);
  bool edited = false;
  for (auto& sub : spec.subckts) {
    if (sub.name == "ota_cell") {
      ASSERT_FALSE(sub.devices.empty());
      for (auto& dev : sub.devices) {
        dev.params.w *= 2.0;
        dev.params.l *= 2.0;
        dev.params.value *= 2.0;
      }
      edited = true;
    }
  }
  ASSERT_TRUE(edited);
  const Library resized = libraryFromSpec(spec);

  const LibraryDiff diff =
      diffLibraries(bench.lib, resized, uncapped(), FeatureConfig{});
  const FlatDesign newDesign = FlatDesign::elaborate(resized);
  EXPECT_EQ(diff.dirtyNodes, newDesign.hierarchy().size());
  EXPECT_EQ(diff.cleanNodes, 0u);
  EXPECT_EQ(diff.reusableDevices, 0u);
  const MasterDelta* ota = findMaster(diff, "ota_cell");
  ASSERT_NE(ota, nullptr);
  EXPECT_EQ(ota->change, MasterChange::kModified);
  EXPECT_FALSE(ota->oldHash == ota->newHash);
}

TEST(LibraryDiff, AddedAndRemovedMastersAreClassified) {
  const auto bench = circuits::makeBlockArray(3);
  LibrarySpec spec = specFromLibrary(bench.lib);
  testsupport::SubcktSpec spare;
  spare.name = "spare_cell";
  spare.nets.push_back({"a", true});
  spare.nets.push_back({"b", true});
  testsupport::DeviceSpec cap;
  cap.name = "c0";
  cap.type = DeviceType::kCapMim;
  cap.params.value = 1e-13;
  cap.pins = {{PinFunction::kPassivePos, 0}, {PinFunction::kPassiveNeg, 1}};
  spare.devices.push_back(cap);
  spec.subckts.push_back(spare);
  const Library withSpare = libraryFromSpec(spec);

  const LibraryDiff added =
      diffLibraries(bench.lib, withSpare, uncapped(), FeatureConfig{});
  const MasterDelta* spareDelta = findMaster(added, "spare_cell");
  ASSERT_NE(spareDelta, nullptr);
  EXPECT_EQ(spareDelta->change, MasterChange::kAdded);
  // The spare is never instantiated: the elaborated hierarchy is
  // untouched and the design hash still matches.
  EXPECT_EQ(added.dirtyNodes, 0u);
  EXPECT_TRUE(added.designUnchanged);
  // identical() speaks about extraction inputs, which an uninstantiated
  // master does not touch — the master list still records the addition.
  EXPECT_TRUE(added.identical());
  EXPECT_EQ(added.changedMasters(), 1u);

  const LibraryDiff removed =
      diffLibraries(withSpare, bench.lib, uncapped(), FeatureConfig{});
  const MasterDelta* removedDelta = findMaster(removed, "spare_cell");
  ASSERT_NE(removedDelta, nullptr);
  EXPECT_EQ(removedDelta->change, MasterChange::kRemoved);
}

TEST(LibraryDiff, NetDegreeEligibilityFlipDirtiesTouchingSubtrees) {
  const auto bench = circuits::makeBlockArray(4);
  const Library fanned = attachFanout(bench.lib, 6);
  const FlatDesign base = FlatDesign::elaborate(bench.lib);
  const FlatDesign after = FlatDesign::elaborate(fanned);

  // Cap = the largest base degree among the nets the fanout touched, so
  // those nets are eligible in the base and pushed past the cap by the
  // six extra terminals.
  std::size_t cap = 0;
  for (FlatNetId net = 0; net < base.nets().size(); ++net) {
    const std::size_t degBase = base.netTerminals()[net].size();
    // Net ids of pre-existing nets are preserved by attachFanout's
    // id-order rebuild.
    const std::size_t degAfter = after.netTerminals()[net].size();
    if (degAfter != degBase) cap = std::max(cap, degBase);
  }
  ASSERT_GT(cap, 0u);

  GraphBuildOptions capped;
  capped.maxNetDegree = cap;
  const LibraryDiff cappedDiff =
      diffLibraries(bench.lib, fanned, capped, FeatureConfig{});
  const LibraryDiff uncappedDiff =
      diffLibraries(bench.lib, fanned, uncapped(), FeatureConfig{});

  // Uncapped the edit is local to the top cell; with the cap the shared
  // hub net flips eligibility, dirtying OTA subtrees whose own devices
  // never changed. Master classification is config-independent.
  EXPECT_EQ(uncappedDiff.dirtyNodes, 1u);
  EXPECT_GT(cappedDiff.dirtyNodes, 1u);
  EXPECT_EQ(cappedDiff.changedMasters(), uncappedDiff.changedMasters());
}

TEST(LibraryDiff, ManifestRoundTripMatchesLiveDiff) {
  const auto bench = circuits::makeBlockArray(3);
  NetlistMutator mutator(bench.lib, /*seed=*/23);
  const Library edited = mutator.mutate(2);

  const DesignManifest manifest =
      buildManifest(bench.lib, uncapped(), FeatureConfig{});
  const std::filesystem::path path = tempManifestPath("roundtrip");
  saveManifest(manifest, path);
  const DesignManifest loaded = loadManifest(path);
  std::filesystem::remove(path);
  EXPECT_TRUE(manifest == loaded);

  const LibraryDiff live =
      diffLibraries(bench.lib, edited, uncapped(), FeatureConfig{});
  const LibraryDiff fromManifest =
      diffManifest(loaded, edited, uncapped(), FeatureConfig{});
  EXPECT_EQ(live.dirtyNodes, fromManifest.dirtyNodes);
  EXPECT_EQ(live.cleanNodes, fromManifest.cleanNodes);
  EXPECT_EQ(live.reusableDevices, fromManifest.reusableDevices);
  EXPECT_EQ(live.designUnchanged, fromManifest.designUnchanged);
  ASSERT_EQ(live.masters.size(), fromManifest.masters.size());
  for (std::size_t i = 0; i < live.masters.size(); ++i) {
    EXPECT_EQ(live.masters[i].name, fromManifest.masters[i].name);
    EXPECT_EQ(live.masters[i].change, fromManifest.masters[i].change);
  }
}

TEST(LibraryDiff, ConfigMismatchForcesConservativeDirtiness) {
  const auto bench = circuits::makeBlockArray(3);
  GraphBuildOptions other;
  other.maxNetDegree = 7;
  const DesignManifest baseline =
      buildManifest(bench.lib, other, FeatureConfig{});

  // Same netlist, different extraction config: node-level reuse cannot be
  // proven, so everything is dirty — but masters still classify.
  const LibraryDiff diff =
      diffManifest(baseline, bench.lib, uncapped(), FeatureConfig{});
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  EXPECT_EQ(diff.dirtyNodes, design.hierarchy().size());
  EXPECT_EQ(diff.cleanNodes, 0u);
  EXPECT_EQ(diff.reusableDevices, 0u);
  EXPECT_FALSE(diff.designUnchanged);
  EXPECT_EQ(diff.changedMasters(), 0u);
  EXPECT_FALSE(extractionConfigHash(other, FeatureConfig{}) ==
               extractionConfigHash(uncapped(), FeatureConfig{}));
}

TEST(LibraryDiff, NetlistOnlyManifestIsConservative) {
  const auto bench = circuits::makeBlockArray(3);
  const DesignManifest baseline = buildNetlistManifest(bench.lib);
  const LibraryDiff diff =
      diffManifest(baseline, bench.lib, uncapped(), FeatureConfig{});
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  EXPECT_EQ(diff.dirtyNodes, design.hierarchy().size());
  EXPECT_EQ(diff.changedMasters(), 0u);
}

TEST(LibraryDiff, InvalidLibraryThrows) {
  const auto bench = circuits::makeBlockArray(2);
  EXPECT_THROW(
      diffLibraries(Library{}, bench.lib, uncapped(), FeatureConfig{}),
      Error);
  EXPECT_THROW(
      diffLibraries(bench.lib, Library{}, uncapped(), FeatureConfig{}),
      Error);
}

TEST(LibraryDiff, ToStringCoversEveryChange) {
  EXPECT_STREQ(toString(MasterChange::kUnchanged), "unchanged");
  EXPECT_STREQ(toString(MasterChange::kModified), "modified");
  EXPECT_STREQ(toString(MasterChange::kAdded), "added");
  EXPECT_STREQ(toString(MasterChange::kRemoved), "removed");
}

}  // namespace
}  // namespace ancstr
