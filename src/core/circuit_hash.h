// Canonical structural hashing of elaborated circuits — the key function
// of the ExtractionEngine's content-addressed caches (core/engine.h).
//
// The hash is a positional, name-free serialization of everything the
// extraction front half consumes: device types and sizing parameters
// (feature init, Table II), pin functions and net connectivity in the
// exact order the multigraph builder walks them (Algorithm 1), each net's
// full-design degree eligibility under GraphBuildOptions::maxNetDegree
// (the cap counts the WHOLE net, so a subtree's induced graph depends on
// it), and the GraphBuildOptions / FeatureConfig switches themselves.
//
// Canonical ordering makes the hash independent of device/net/instance
// NAMES, of hierarchy path strings, and of thread count; two instances of
// the same master inside one design hash identically (their positional
// serializations coincide), which is what lets repeated blocks share one
// cache entry. Equal hashes imply bitwise-equal PreparedGraph + feature
// matrices for a fixed model/config, so a cache hit reproduces the miss
// result exactly.
#pragma once

#include <span>

#include "core/features.h"
#include "core/graph_builder.h"
#include "netlist/flatten.h"
#include "util/structural_hash.h"

namespace ancstr {

/// Hash of the induced extraction inputs over `subset` (typically one
/// hierarchy node's subtree in preorder, or the whole design). The subset
/// order is part of the serialization — it defines vertex numbering.
util::StructuralHash structuralHash(const FlatDesign& design,
                                    std::span<const FlatDeviceId> subset,
                                    const GraphBuildOptions& graph,
                                    const FeatureConfig& features);

/// Hash of the full design (all devices in FlatDeviceId order).
util::StructuralHash structuralHash(const FlatDesign& design,
                                    const GraphBuildOptions& graph,
                                    const FeatureConfig& features);

}  // namespace ancstr
