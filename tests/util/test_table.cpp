#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace ancstr {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.setHeader({"name", "value"});
  t.addRow({"a", "1"});
  t.addRow({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTable, SeparatorRows) {
  TextTable t;
  t.setHeader({"x"});
  t.addRow({"1"});
  t.addSeparator();
  t.addRow({"2"});
  const std::string out = t.render();
  // header sep + top + bottom + explicit = at least 4 separator lines
  std::size_t count = 0, pos = 0;
  while ((pos = out.find("+---", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_GE(count, 4u);
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t;
  t.setHeader({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), InternalError);
}

TEST(CsvWriter, QuotesSpecialFields) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.writeRow({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(MetricCell, ThreeDecimals) {
  EXPECT_EQ(metricCell(0.9523), "0.952");
  EXPECT_EQ(metricCell(1.0), "1.000");
  EXPECT_EQ(metricCell(0.0), "0.000");
}

}  // namespace
}  // namespace ancstr
