#include "netlist/netlist.h"

#include <algorithm>

#include "util/error.h"
#include "util/string_utils.h"

namespace ancstr {

NetId SubcktDef::addNet(std::string_view name, bool isPort) {
  const std::string key = str::toLower(name);
  if (auto it = netByName_.find(key); it != netByName_.end()) {
    Net& existing = nets_[it->second];
    if (isPort && !existing.isPort) {
      existing.isPort = true;
      existing.portIndex = static_cast<int>(ports_.size());
      ports_.push_back(it->second);
    }
    return it->second;
  }
  const NetId id = static_cast<NetId>(nets_.size());
  Net net;
  net.name = key;
  net.isPort = isPort;
  if (isPort) {
    net.portIndex = static_cast<int>(ports_.size());
    ports_.push_back(id);
  }
  nets_.push_back(std::move(net));
  netByName_.emplace(key, id);
  return id;
}

DeviceId SubcktDef::addDevice(Device device) {
  const std::string key = str::toLower(device.name);
  if (deviceByName_.count(key) != 0) {
    throw NetlistError("duplicate device '" + device.name + "' in subckt '" +
                       name_ + "'");
  }
  device.name = key;
  const DeviceId id = static_cast<DeviceId>(devices_.size());
  for (std::uint32_t pinIdx = 0; pinIdx < device.pins.size(); ++pinIdx) {
    const NetId netId = device.pins[pinIdx].net;
    if (netId >= nets_.size()) {
      throw NetlistError("device '" + device.name +
                         "' references undefined net id");
    }
    nets_[netId].deviceTerminals.emplace_back(id, pinIdx);
  }
  devices_.push_back(std::move(device));
  deviceByName_.emplace(key, id);
  return id;
}

InstanceId SubcktDef::addInstance(Instance instance) {
  const std::string key = str::toLower(instance.name);
  if (instanceByName_.count(key) != 0) {
    throw NetlistError("duplicate instance '" + instance.name +
                       "' in subckt '" + name_ + "'");
  }
  instance.name = key;
  const InstanceId id = static_cast<InstanceId>(instances_.size());
  for (std::uint32_t portIdx = 0; portIdx < instance.connections.size();
       ++portIdx) {
    const NetId netId = instance.connections[portIdx];
    if (netId >= nets_.size()) {
      throw NetlistError("instance '" + instance.name +
                         "' references undefined net id");
    }
    nets_[netId].instanceTerminals.emplace_back(id, portIdx);
  }
  instances_.push_back(std::move(instance));
  instanceByName_.emplace(key, id);
  return id;
}

std::optional<NetId> SubcktDef::findNet(std::string_view name) const {
  auto it = netByName_.find(str::toLower(name));
  if (it == netByName_.end()) return std::nullopt;
  return it->second;
}

std::optional<DeviceId> SubcktDef::findDevice(std::string_view name) const {
  auto it = deviceByName_.find(str::toLower(name));
  if (it == deviceByName_.end()) return std::nullopt;
  return it->second;
}

std::optional<InstanceId> SubcktDef::findInstance(std::string_view name) const {
  auto it = instanceByName_.find(str::toLower(name));
  if (it == instanceByName_.end()) return std::nullopt;
  return it->second;
}

SubcktId Library::addSubckt(std::string name) {
  const std::string key = str::toLower(name);
  if (byName_.count(key) != 0) {
    throw NetlistError("duplicate subckt '" + key + "'");
  }
  const SubcktId id = static_cast<SubcktId>(subckts_.size());
  subckts_.emplace_back(key);
  byName_.emplace(key, id);
  return id;
}

std::optional<SubcktId> Library::findSubckt(std::string_view name) const {
  auto it = byName_.find(str::toLower(name));
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

void Library::setTop(SubcktId id) {
  if (id >= subckts_.size()) throw NetlistError("setTop: bad subckt id");
  top_ = id;
}

SubcktId Library::top() const {
  if (top_) return *top_;
  if (subckts_.empty()) throw NetlistError("empty library has no top cell");
  // A subckt never instantiated by any other is a top candidate.
  std::vector<bool> instantiated(subckts_.size(), false);
  for (const SubcktDef& def : subckts_) {
    for (const Instance& inst : def.instances()) {
      if (inst.master < subckts_.size()) instantiated[inst.master] = true;
    }
  }
  for (std::size_t i = subckts_.size(); i-- > 0;) {
    if (!instantiated[i]) return static_cast<SubcktId>(i);
  }
  throw NetlistError("no top cell: all subckts are instantiated (cycle?)");
}

void Library::validate() const {
  for (const SubcktDef& def : subckts_) {
    for (const Device& dev : def.devices()) {
      if (dev.type != DeviceType::kUnknown &&
          dev.pins.size() != pinCount(dev.type)) {
        throw NetlistError("device '" + dev.name + "' in '" + def.name() +
                           "' has " + std::to_string(dev.pins.size()) +
                           " pins, expected " +
                           std::to_string(pinCount(dev.type)) + " for type " +
                           std::string(deviceTypeName(dev.type)));
      }
      for (const Pin& pin : dev.pins) {
        if (pin.net >= def.nets().size()) {
          throw NetlistError("device '" + dev.name + "' in '" + def.name() +
                             "' has a dangling pin");
        }
      }
    }
    for (const Instance& inst : def.instances()) {
      if (inst.master >= subckts_.size()) {
        throw NetlistError("instance '" + inst.name + "' in '" + def.name() +
                           "' references undefined master");
      }
      const SubcktDef& master = subckts_[inst.master];
      if (inst.connections.size() != master.ports().size()) {
        throw NetlistError(
            "instance '" + inst.name + "' in '" + def.name() + "' connects " +
            std::to_string(inst.connections.size()) + " nets but master '" +
            master.name() + "' has " + std::to_string(master.ports().size()) +
            " ports");
      }
      for (const NetId net : inst.connections) {
        if (net >= def.nets().size()) {
          throw NetlistError("instance '" + inst.name + "' in '" +
                             def.name() + "' has a dangling connection");
        }
      }
    }
  }
  // Reject recursive hierarchies: DFS colouring over the master graph.
  std::vector<int> colour(subckts_.size(), 0);  // 0 white, 1 grey, 2 black
  std::vector<std::pair<SubcktId, std::size_t>> stack;
  for (SubcktId root = 0; root < subckts_.size(); ++root) {
    if (colour[root] != 0) continue;
    stack.emplace_back(root, 0);
    colour[root] = 1;
    while (!stack.empty()) {
      auto& [cur, next] = stack.back();
      const auto& insts = subckts_[cur].instances();
      if (next < insts.size()) {
        const SubcktId child = insts[next++].master;
        if (colour[child] == 1) {
          throw NetlistError("recursive hierarchy through subckt '" +
                             subckts_[child].name() + "'");
        }
        if (colour[child] == 0) {
          colour[child] = 1;
          stack.emplace_back(child, 0);
        }
      } else {
        colour[cur] = 2;
        stack.pop_back();
      }
    }
  }
}

std::size_t Library::flatCount(SubcktId id, bool nets,
                               std::vector<int>& memo) const {
  if (memo[id] >= 0) return static_cast<std::size_t>(memo[id]);
  const SubcktDef& def = subckts_[id];
  // Ports alias parent nets, so only internal nets count per expansion.
  std::size_t count = nets ? def.nets().size() - def.ports().size()
                           : def.devices().size();
  for (const Instance& inst : def.instances()) {
    count += flatCount(inst.master, nets, memo);
  }
  memo[id] = static_cast<int>(count);
  return count;
}

std::size_t Library::flatDeviceCount() const {
  std::vector<int> memo(subckts_.size(), -1);
  return flatCount(top(), false, memo);
}

std::size_t Library::flatNetCount() const {
  std::vector<int> memo(subckts_.size(), -1);
  // Top-level ports are real nets of the design, add them back.
  return flatCount(top(), true, memo) + subckts_[top()].ports().size();
}

}  // namespace ancstr
