// Symmetry constraint detection (paper Section IV-E, Algorithm 3).
//
// Every valid candidate pair is scored with cosine similarity between its
// two modules' feature representations: trained vertex embeddings for
// device pairs, Algorithm-2 circuit embeddings for block pairs. Pairs
// scoring above the adaptive threshold (Eq. 4 for system-level, a fixed
// 0.99 for device-level) become constraints.
#pragma once

#include <vector>

#include "core/candidates.h"
#include "core/constraint.h"
#include "core/embedding.h"
#include "core/features.h"
#include "core/graph_builder.h"
#include "core/model.h"
#include "nn/matrix.h"

namespace ancstr {

/// Current-mirror detection knobs. Candidates come from a gate/drain-
/// sharing topology heuristic on the elaborated design: a diode-connected
/// MOS device (gate net == drain net) is a mirror *reference*; every
/// same-type device under the same hierarchy node that shares its gate
/// and source nets is a candidate *mirror* branch. Candidates are scored
/// with the trained embeddings (cosine of the two devices' rows, times
/// the gate-length agreement ratio — the width term of
/// deviceSizeSimilarity is deliberately dropped because a mirror's width
/// MULTIPLE is the design intent, reported as Constraint::ratio).
struct MirrorConfig {
  bool enabled = true;
  /// Accept a (reference, mirror) candidate above this score.
  double threshold = 0.5;
  /// Gate nets with more terminals than this are skipped (a gate tied to
  /// a rail-sized net is distribution, not mirroring).
  std::size_t maxGateNetDegree = 64;

  bool operator==(const MirrorConfig&) const = default;
};

struct DetectorConfig {
  double alpha = 0.95;            ///< Eq. 4 alpha
  double beta = 0.95;             ///< Eq. 4 beta
  double deviceThreshold = 0.99;  ///< device-level lambda_th
  EmbeddingConfig embedding;
  GraphBuildOptions graphOptions;  ///< induced subgraph construction
  /// Multiply the embedding cosine by an explicit sizing-ratio factor
  /// (min/max over effective width, length, and passive value; geometric
  /// mean over a block's representative devices). Rationale: the
  /// unsupervised objective pulls rail-clique neighbours together, which
  /// can wash the Table-II sizing features out of z_v; the explicit factor
  /// restores the paper's sizing discrimination (Fig. 2). Disable for the
  /// paper-literal Eq. 5 (ablation `pure Eq.5 cosine`).
  bool sizingAwareSimilarity = true;
  /// Embed each subcircuit by running GNN inference on its own multigraph
  /// G_t (Algorithm 2's "EmbedCircuitFeature(t, G_t, Z)"): identical
  /// blocks then embed identically regardless of the instance's
  /// surroundings, which is what lets the inductive model recognise
  /// matched regular structures (bit slices, unit cells) that flat-graph
  /// spectral methods blur with context. When disabled — or when no model
  /// is supplied — block embeddings are gathered from the whole-design
  /// vertex embeddings instead (context-sensitive; ablated).
  bool localBlockEmbeddings = true;
  /// Current-mirror detection (see MirrorConfig).
  MirrorConfig mirror;
};

/// Key of one cached block-pair similarity: the subtree structuralHashes
/// of the two endpoints, in pair order.
struct PairScoreKey {
  util::StructuralHash a;
  util::StructuralHash b;

  bool operator==(const PairScoreKey&) const = default;
};

struct PairScoreKeyHash {
  std::size_t operator()(const PairScoreKey& key) const noexcept {
    const std::hash<util::StructuralHash> h;
    return h(key.a) ^ (h(key.b) * 0x9e3779b97f4a7c15ull);
  }
};

/// Memoization hook for block-pair similarities. Sound because a local-
/// mode block pair's similarity — embedding cosine times the optional
/// sizing factor — is a pure function of the two subtree hashes: each
/// hash determines its block's structural embedding and the sizing
/// parameters of its representative devices bitwise (see
/// SubcircuitEmbedding::hash). Only the raw similarity is cached; the
/// accept decision is always re-derived, because the Eq. 4 threshold
/// depends on the surrounding design. Implementations must be
/// thread-safe (consulted from every scoring worker) and may drop
/// entries at any time. The LRU-backed implementation lives in
/// core/engine.cpp.
class PairScoreCache {
 public:
  virtual ~PairScoreCache() = default;

  /// True on a hit, with the cached similarity in `*similarity`.
  virtual bool lookup(const PairScoreKey& key, double* similarity) = 0;

  /// Stores a freshly computed similarity (last-write-wins; concurrent
  /// stores of one key carry the identical value).
  virtual void store(const PairScoreKey& key, double similarity) = 0;
};

/// The cache set a serving layer may hand to detection; all optional.
struct DetectionCaches {
  BlockEmbeddingCache* blocks = nullptr;
  PairScoreCache* pairs = nullptr;
  /// Precomputed subtree structural hashes, indexed by HierNodeId of the
  /// design under detection. Every entry must equal what structuralHash
  /// (core/circuit_hash.h) returns for that node's subtreeDevices under
  /// the run's GraphBuildOptions/FeatureConfig — the engine's delta path
  /// supplies the vector it already computed for diffing, so block
  /// embedding skips re-hashing each subtree. Purely an optimization:
  /// results are bitwise identical with or without it.
  const std::vector<util::StructuralHash>* nodeHashes = nullptr;
};

/// A candidate together with its similarity score.
struct ScoredCandidate {
  CandidatePair pair;
  double similarity = 0.0;
  bool accepted = false;
};

/// Output of a detection run.
struct DetectionResult {
  /// Every valid symmetry candidate with its score (input to ROC sweeps).
  std::vector<ScoredCandidate> scored;
  /// Every current-mirror candidate (reference in pair.a, mirror branch
  /// in pair.b) with its score — the per-type FPR denominator.
  std::vector<ScoredCandidate> mirrorScored;
  double systemThreshold = 0.0;  ///< Eq. 4 lambda_th used
  double deviceThreshold = 0.0;
  double mirrorThreshold = 0.0;  ///< MirrorConfig::threshold used

  /// The typed constraint registry (core/constraint.h) holding every
  /// accepted record — the single detection-output currency consumed by
  /// grouping, eval, IO, and the CLI.
  ConstraintSet set;
};

/// Builds the typed registry from a detection run's accepted candidates
/// and thresholds. detectConstraints() populates DetectionResult::set
/// with exactly this; exposed for hand-built DetectionResults (tests,
/// ROC sweeps re-thresholding `scored`) and the legacy grouping shim.
ConstraintSet buildConstraintSet(const FlatDesign& design,
                                 const DetectionResult& detection);

/// Eq. 4: lambda_th = min(0.999, alpha + beta / (1 + |N_sub|)).
double systemThreshold(double alpha, double beta,
                       std::size_t maxSubcircuitSize);

/// Sizing agreement of two primitive devices in [0, 1]: the product of
/// min/max ratios over effective width (W * nf * m), length, and passive
/// value. Equal sizing gives 1; a 2x mismatch gives 0.5.
double deviceSizeSimilarity(const FlatDevice& a, const FlatDevice& b);

/// Scores all candidates and applies thresholds. `designEmbeddings` rows
/// must be indexed by FlatDeviceId (i.e. the full-design graph must cover
/// all devices in id order).
///
/// `threads` is the worker count for block embedding and pair scoring
/// (both embarrassingly parallel): 0 = hardware_concurrency, 1 = serial;
/// the ANCSTR_THREADS environment variable overrides (see
/// util::resolveThreadCount). Results are bitwise identical for every
/// value. PipelineConfig::threads is the single user-facing knob; this
/// parameter exists for standalone callers only.
DetectionResult detectConstraints(const FlatDesign& design, const Library& lib,
                                  const nn::Matrix& designEmbeddings,
                                  const DetectorConfig& config = {},
                                  std::size_t threads = 1);

/// As above, additionally enabling local block embeddings (see
/// DetectorConfig::localBlockEmbeddings) through `blockContext`.
DetectionResult detectConstraints(const FlatDesign& design, const Library& lib,
                                  const nn::Matrix& designEmbeddings,
                                  const DetectorConfig& config,
                                  const BlockEmbeddingContext& blockContext,
                                  std::size_t threads = 1);

/// As above, additionally memoizing block-pair similarities through
/// `pairCache` (may be null). Caching never changes results: a hit
/// returns the bitwise-identical similarity the miss would compute.
DetectionResult detectConstraints(const FlatDesign& design, const Library& lib,
                                  const nn::Matrix& designEmbeddings,
                                  const DetectorConfig& config,
                                  const BlockEmbeddingContext& blockContext,
                                  PairScoreCache* pairCache,
                                  std::size_t threads = 1);

}  // namespace ancstr
