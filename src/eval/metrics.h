// Solution-quality metrics over valid candidate pairs (paper Eq. 6).
#pragma once

#include <cstddef>
#include <string>

namespace ancstr {

/// Confusion counts of predicted constraints vs. designer ground truth.
struct ConfusionCounts {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
  ConfusionCounts& operator+=(const ConfusionCounts& rhs);
};

/// TPR / FPR / PPV / ACC / F1 as defined in Eq. 6. Degenerate denominators
/// yield the conventional limits (e.g. PPV = 1 when no positives were
/// predicted and none exist; 0 when positives exist but none were found).
struct Metrics {
  double tpr = 0.0;
  double fpr = 0.0;
  double ppv = 0.0;
  double acc = 0.0;
  double f1 = 0.0;
};

Metrics computeMetrics(const ConfusionCounts& counts);

}  // namespace ancstr
