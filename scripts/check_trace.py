#!/usr/bin/env python3
"""Validates an ancstr_cli --trace-out file.

Fails (exit 1) when the file is not valid Chrome trace_event JSON, when a
required span name is missing, or when any event violates the schema
(docs/observability.md). Usage:

    check_trace.py TRACE_JSON [REQUIRED_SPAN ...]

With no explicit span list, the default extraction span set is required.
"""
import json
import sys

DEFAULT_REQUIRED = [
    "parse.spice",
    "pipeline.extract",
    "extract.graph_build",
    "extract.inference",
    "extract.detection",
    "detect.run",
    "detect.score",
    "graph.build",
    "model.embed",
]


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    path = argv[1]
    required = argv[2:] or DEFAULT_REQUIRED

    try:
        with open(path, encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL: cannot load {path}: {err}", file=sys.stderr)
        return 1

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("FAIL: traceEvents missing or empty", file=sys.stderr)
        return 1

    for i, event in enumerate(events):
        for key, kind in (("name", str), ("cat", str), ("ph", str),
                          ("ts", (int, float)), ("dur", (int, float)),
                          ("pid", int), ("tid", int)):
            if not isinstance(event.get(key), kind):
                print(f"FAIL: event {i} field {key!r} malformed: {event}",
                      file=sys.stderr)
                return 1
        if event["ph"] != "X":
            print(f"FAIL: event {i} has phase {event['ph']!r}, expected 'X'",
                  file=sys.stderr)
            return 1

    names = {event["name"] for event in events}
    missing = [span for span in required if span not in names]
    if missing:
        print(f"FAIL: required spans missing: {missing}", file=sys.stderr)
        print(f"      spans present: {sorted(names)}", file=sys.stderr)
        return 1

    print(f"OK: {len(events)} events, {len(names)} distinct spans, "
          f"all {len(required)} required spans present")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
