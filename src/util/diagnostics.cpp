#include "util/diagnostics.h"

#include "util/error.h"

namespace ancstr::diag {

std::string_view severityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string out;
  if (!file.empty()) {
    out += file;
    out += ':';
    out += std::to_string(line);
    out += ": ";
  }
  out += severityName(severity);
  out += '[';
  out += code;
  out += "]: ";
  out += message;
  if (requestId != 0) {
    out += " (request ";
    out += std::to_string(requestId);
    out += ')';
  }
  return out;
}

void DiagnosticSink::report(Diagnostic d) {
  bool throwNow = false;
  std::string file;
  std::size_t line = 0;
  std::string message;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counts_[static_cast<std::size_t>(d.severity)];
    if (mode_ == Mode::kStrict && d.severity == Severity::kError) {
      throwNow = true;
      file = d.file;
      line = d.line;
      message = d.message + " [" + d.code + "]";
    }
    diagnostics_.push_back(std::move(d));
  }
  if (throwNow) {
    throw ParseError(std::move(file), line, message);
  }
}

void DiagnosticSink::error(std::string_view code, std::string file,
                           std::size_t line, std::string message) {
  report(Diagnostic{Severity::kError, std::string(code), std::move(file),
                    line, std::move(message)});
}

void DiagnosticSink::warning(std::string_view code, std::string file,
                             std::size_t line, std::string message) {
  report(Diagnostic{Severity::kWarning, std::string(code), std::move(file),
                    line, std::move(message)});
}

void DiagnosticSink::note(std::string_view code, std::string file,
                          std::size_t line, std::string message) {
  report(Diagnostic{Severity::kNote, std::string(code), std::move(file),
                    line, std::move(message)});
}

std::size_t DiagnosticSink::count(Severity severity) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counts_[static_cast<std::size_t>(severity)];
}

std::size_t DiagnosticSink::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return diagnostics_.size();
}

std::vector<Diagnostic> DiagnosticSink::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return diagnostics_;
}

std::vector<Diagnostic> DiagnosticSink::snapshotFrom(std::size_t from) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (from >= diagnostics_.size()) return {};
  return std::vector<Diagnostic>(
      diagnostics_.begin() + static_cast<std::ptrdiff_t>(from),
      diagnostics_.end());
}

std::vector<Diagnostic> DiagnosticSink::take() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Diagnostic> out = std::move(diagnostics_);
  diagnostics_.clear();
  counts_ = {};
  return out;
}

}  // namespace ancstr::diag
