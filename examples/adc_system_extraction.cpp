// System-level extraction on a large mixed-signal design: train on the
// whole benchmark corpus, then pull system symmetry constraints (matched
// DAC pairs, matched passives, clock-tree branches) out of a SAR ADC and
// compare them against the designer ground truth.
#include <cstdio>

#include "circuits/benchmark.h"
#include "core/pipeline.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"

using namespace ancstr;

int main() {
  // Train once over the corpus (15 blocks + 5 ADCs), like the paper.
  std::vector<circuits::CircuitBenchmark> corpus =
      circuits::blockBenchmarks();
  for (auto& adc : circuits::adcBenchmarks()) corpus.push_back(std::move(adc));
  std::vector<const Library*> libs;
  for (const auto& b : corpus) libs.push_back(&b.lib);

  PipelineConfig config;
  config.train.epochs = 60;
  Pipeline pipeline(config);
  const TrainReport report = pipeline.train(libs);
  std::printf("trained on %zu circuits in %.1fs\n", libs.size(),
              report.report.phaseSeconds("train.loop"));

  // Extract from the SAR ADC.
  const circuits::CircuitBenchmark& sar = corpus[15 + 3];  // adc4
  const ExtractionResult result = pipeline.extract(sar.lib);
  const FlatDesign design = FlatDesign::elaborate(sar.lib);

  std::printf("\nsystem-level constraints detected in %s:\n",
              sar.name.c_str());
  std::size_t shown = 0;
  for (const Constraint* c :
       result.detection.set.ofType(ConstraintType::kSymmetryPair)) {
    if (c->level != ConstraintLevel::kSystem) continue;
    if (++shown > 12) {
      std::printf("  ... and more\n");
      break;
    }
    const std::string& hier = design.node(c->hierarchy).path;
    std::printf("  [%s] (%s, %s)  sim=%.4f\n",
                hier.empty() ? "top" : hier.c_str(), c->members[0].name.c_str(),
                c->members[1].name.c_str(), c->score);
  }

  // Score against the generator's designer-style ground truth.
  const auto labels =
      labelCandidates(design, result.detection.scored, sar.truth);
  const Metrics m = computeMetrics(confusionFromScored(
      result.detection.scored, labels, ConstraintLevel::kSystem));
  std::printf("\nquality vs ground truth: TPR=%.3f FPR=%.3f F1=%.3f\n",
              m.tpr, m.fpr, m.f1);
  return 0;
}
