#include "graph/hungarian.h"

#include <limits>

#include "util/error.h"

namespace ancstr {

AssignmentResult solveAssignment(const nn::Matrix& cost) {
  if (cost.rows() != cost.cols()) {
    throw ShapeError("solveAssignment: cost matrix must be square, got " +
                     cost.shapeString());
  }
  const std::size_t n = cost.rows();
  AssignmentResult result;
  if (n == 0) return result;

  // Kuhn-Munkres with row/column potentials; 1-based internal arrays
  // (the classic e-maxx formulation).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> p(n + 1, 0), way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  result.assignment.resize(n);
  for (std::size_t j = 1; j <= n; ++j) {
    result.assignment[p[j] - 1] = j - 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    result.cost += cost(i, result.assignment[i]);
  }
  return result;
}

}  // namespace ancstr
