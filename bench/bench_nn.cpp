// Kernel-layer microbenchmarks (nn/kernels.h): the GGNN hot-path shapes
// (stacked-row GEMMs at D=18, the shared-A per-edge-type batch, the fused
// GRU step) timed under the scalar reference table and the dispatch-
// selected SIMD table, plus the model-level tape-free inference path
// against autograd. Every speedup case re-checks the numeric contract —
// backends must agree bitwise — so one BENCH.json carries both the
// performance story and the determinism verdict; CI gates the speedups
// with scripts/gate_counters.py conditional on SIMD availability.
#include <cstring>
#include <vector>

#include "circuits/synthetic.h"
#include "core/features.h"
#include "core/graph_builder.h"
#include "core/model.h"
#include "harness.h"
#include "netlist/flatten.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "nn/kernels.h"
#include "util/timer.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

/// Stacked-row GEMM shape of the inference fast path: every subcircuit's
/// vertices concatenated (m large), hidden dim D=18 (k = n = 18).
constexpr std::size_t kRows = 1024;
constexpr std::size_t kDim = 18;
constexpr int kGemmIters = 60;
constexpr int kGruIters = 40;

bool bitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool bitwiseEqual(const nn::Matrix& a, const nn::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     a.rows() * a.cols() * sizeof(double)) == 0;
}

void setAvailabilityCounters(BenchContext& ctx) {
  const bool simd = nn::activeKernelKind() != nn::KernelKind::kScalar;
  ctx.setCounter("simd_active", simd ? 1.0 : 0.0);
  ctx.setCounter("avx2_available",
                 nn::kernelAvailable(nn::KernelKind::kAvx2) ? 1.0 : 0.0);
  ctx.setCounter("avx512_available",
                 nn::kernelAvailable(nn::KernelKind::kAvx512) ? 1.0 : 0.0);
}

/// gemmAcc + gemmBatchAcc at the GGNN shapes, scalar table vs active
/// table. The timed loops run the identical call sequence, so the ratio
/// isolates the backend; the outputs must agree bitwise.
void gemmSpeedupCase(BenchContext& ctx) {
  Rng& rng = ctx.rng();
  const nn::Matrix a = nn::uniform(kRows, kDim, -1.0, 1.0, rng);
  std::vector<nn::Matrix> weights;
  std::vector<const double*> weightPtrs;
  for (int t = 0; t < 4; ++t) {
    weights.push_back(nn::uniform(kDim, kDim, -1.0, 1.0, rng));
  }
  for (const nn::Matrix& w : weights) weightPtrs.push_back(w.data());

  const nn::Kernels& scalar = nn::kernelsFor(nn::KernelKind::kScalar);
  const nn::Kernels& active = nn::activeKernels();

  auto run = [&](const nn::Kernels& k, std::vector<double>& out) {
    out.assign(kRows * kDim, 0.0);
    std::vector<double> batchOut(4 * kRows * kDim, 0.0);
    std::vector<double*> batchPtrs;
    for (std::size_t t = 0; t < 4; ++t) {
      batchPtrs.push_back(batchOut.data() + t * kRows * kDim);
    }
    Stopwatch watch;
    for (int i = 0; i < kGemmIters; ++i) {
      k.gemmAcc(a.data(), weights[0].data(), out.data(), kRows, kDim, kDim);
      k.gemmBatchAcc(a.data(), weightPtrs.data(), batchPtrs.data(), 4, kRows,
                     kDim, kDim);
    }
    const double seconds = watch.seconds();
    // Fold the batch outputs into the verdict buffer so both halves of
    // the loop are covered by the bitwise comparison.
    out.insert(out.end(), batchOut.begin(), batchOut.end());
    return seconds;
  };

  std::vector<double> scalarOut, activeOut;
  const double scalarSeconds = run(scalar, scalarOut);
  const double activeSeconds = run(active, activeOut);
  doNotOptimize(scalarOut);
  doNotOptimize(activeOut);

  ctx.setCounter("scalar_seconds", scalarSeconds);
  ctx.setCounter("active_seconds", activeSeconds);
  ctx.setCounter("gemm_speedup",
                 activeSeconds > 0.0 ? scalarSeconds / activeSeconds : 0.0);
  ctx.setCounter("bitwise_equal",
                 bitwiseEqual(scalarOut, activeOut) ? 1.0 : 0.0);
  setAvailabilityCounters(ctx);
}

/// The fused tape-free GRU step at the stacked-row shape, scalar vs
/// active backend, bitwise-checked against each other.
void gruSpeedupCase(BenchContext& ctx) {
  Rng& rng = ctx.rng();
  nn::GruCell cell(kDim, kDim, rng);
  const nn::Matrix x = nn::uniform(kRows, kDim, -2.0, 2.0, rng);
  const nn::Matrix h = nn::uniform(kRows, kDim, -1.0, 1.0, rng);
  const nn::GruStepParams params = cell.stepParams();
  std::vector<double> scratch(nn::gruStepScratchDoubles(kRows, kDim));

  auto run = [&](const nn::Kernels& k, nn::Matrix& out) {
    out = nn::Matrix(kRows, kDim);
    Stopwatch watch;
    for (int i = 0; i < kGruIters; ++i) {
      k.fusedGruStep(params, x.data(), h.data(), out.data(), kRows,
                     scratch.data());
    }
    return watch.seconds();
  };

  nn::Matrix scalarOut, activeOut;
  const double scalarSeconds =
      run(nn::kernelsFor(nn::KernelKind::kScalar), scalarOut);
  const double activeSeconds = run(nn::activeKernels(), activeOut);
  doNotOptimize(scalarOut);
  doNotOptimize(activeOut);

  ctx.setCounter("scalar_seconds", scalarSeconds);
  ctx.setCounter("active_seconds", activeSeconds);
  ctx.setCounter("gru_speedup",
                 activeSeconds > 0.0 ? scalarSeconds / activeSeconds : 0.0);
  ctx.setCounter("bitwise_equal",
                 bitwiseEqual(scalarOut, activeOut) ? 1.0 : 0.0);
  setAvailabilityCounters(ctx);
}

PreparedGraph prepareBenchmarkGraph() {
  const circuits::CircuitBenchmark array = circuits::makeBlockArray(6);
  const FlatDesign design = FlatDesign::elaborate(array.lib);
  const CircuitGraph graph = buildHeteroGraph(design);
  return prepareGraph(graph, buildFeatureMatrix(design));
}

/// Tape-free embed vs the autograd forward pass on a full-design graph:
/// the win of skipping node allocation and running the fused kernels.
void embedFastCase(BenchContext& ctx) {
  Rng& rng = ctx.rng();
  const GnnModel model(GnnConfig{}, rng);
  const PreparedGraph g = prepareBenchmarkGraph();

  Stopwatch tapeWatch;
  nn::Matrix tape;
  for (int i = 0; i < 10; ++i) tape = model.forward(g).value();
  const double tapeSeconds = tapeWatch.seconds();

  Stopwatch fastWatch;
  nn::Matrix fast;
  for (int i = 0; i < 10; ++i) fast = model.embed(g);
  const double fastSeconds = fastWatch.seconds();
  doNotOptimize(tape);
  doNotOptimize(fast);

  ctx.setCounter("vertices", static_cast<double>(g.numVertices()));
  ctx.setCounter("autograd_seconds", tapeSeconds);
  ctx.setCounter("embed_seconds", fastSeconds);
  ctx.setCounter("embed_speedup",
                 fastSeconds > 0.0 ? tapeSeconds / fastSeconds : 0.0);
  ctx.setCounter("bitwise_equal", bitwiseEqual(tape, fast) ? 1.0 : 0.0);
  setAvailabilityCounters(ctx);
}

/// Batched embed (cache-sized stacked chunks, one GEMM per layer per
/// chunk) vs the per-graph loop — the shape Algorithm 2's block embedding
/// runs: many small deduped cache-miss blocks. At D=18 the per-graph loop
/// is fully L1-resident, so the batch's win is structural (one call site,
/// chunk-level parallelism) rather than wall-clock; this case watches that
/// the chunking keeps it at parity and that the outputs stay bitwise equal
/// to the per-graph path.
void embedBatchCase(BenchContext& ctx) {
  Rng& rng = ctx.rng();
  const GnnModel model(GnnConfig{}, rng);
  std::vector<PreparedGraph> blocks;
  for (int stages = 1; stages <= 4; ++stages) {
    const circuits::CircuitBenchmark bench = circuits::makeDiffChain(stages);
    const FlatDesign design = FlatDesign::elaborate(bench.lib);
    const CircuitGraph graph = buildHeteroGraph(design);
    blocks.push_back(prepareGraph(graph, buildFeatureMatrix(design)));
  }
  std::vector<const PreparedGraph*> graphs;
  for (int rep = 0; rep < 12; ++rep) {
    for (const PreparedGraph& g : blocks) graphs.push_back(&g);
  }

  Stopwatch loopWatch;
  std::vector<nn::Matrix> perGraph;
  for (const PreparedGraph* p : graphs) perGraph.push_back(model.embed(*p));
  const double loopSeconds = loopWatch.seconds();

  Stopwatch batchWatch;
  const std::vector<nn::Matrix> batched = model.embedBatch(graphs);
  const double batchSeconds = batchWatch.seconds();

  bool equal = batched.size() == perGraph.size();
  for (std::size_t i = 0; equal && i < batched.size(); ++i) {
    equal = bitwiseEqual(perGraph[i], batched[i]);
  }
  doNotOptimize(batched);

  ctx.setCounter("graphs", static_cast<double>(graphs.size()));
  ctx.setCounter("per_graph_seconds", loopSeconds);
  ctx.setCounter("batch_seconds", batchSeconds);
  ctx.setCounter("batch_speedup",
                 batchSeconds > 0.0 ? loopSeconds / batchSeconds : 0.0);
  ctx.setCounter("bitwise_equal", equal ? 1.0 : 0.0);
  setAvailabilityCounters(ctx);
}

[[maybe_unused]] const bool kRegistered = [] {
  registerBench("nn.gemm.speedup", gemmSpeedupCase);
  registerBench("nn.gru.speedup", gruSpeedupCase);
  registerBench("nn.embed.fast", embedFastCase);
  registerBench("nn.embed.block_batch", embedBatchCase);
  return true;
}();

}  // namespace

ANCSTR_BENCH_MAIN("bench_nn")
