#include "util/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ancstr::util {
namespace {

using Cache = LruByteCache<int, std::string>;

std::shared_ptr<const std::string> val(const char* s) {
  return std::make_shared<const std::string>(s);
}

TEST(LruByteCache, MissThenHit) {
  Cache cache(100);
  EXPECT_EQ(cache.get(1), nullptr);
  cache.put(1, val("a"), 10);
  const auto hit = cache.get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "a");
  const LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes, 10u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(LruByteCache, EvictsLeastRecentlyUsedFirst) {
  Cache cache(30);
  cache.put(1, val("a"), 10);
  cache.put(2, val("b"), 10);
  cache.put(3, val("c"), 10);
  // Touch 1 so 2 becomes the LRU entry, then overflow.
  EXPECT_NE(cache.get(1), nullptr);
  cache.put(4, val("d"), 10);
  EXPECT_EQ(cache.get(2), nullptr);  // evicted
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_NE(cache.get(4), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 30u);
}

TEST(LruByteCache, PinnedEntriesSurviveEviction) {
  Cache cache(20);
  cache.put(1, val("pinned"), 10);
  const auto pin = cache.get(1);  // hold a reference -> use_count > 1
  cache.put(2, val("b"), 10);
  cache.put(3, val("c"), 10);  // over budget; 1 is pinned, 2 is evictable
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
}

TEST(LruByteCache, BudgetIsSoftWhenEverythingIsPinned) {
  Cache cache(10);
  // Holding the pointer passed to put pins the entry through the put's own
  // eviction sweep — the producer-keeps-a-reference pattern the engine uses.
  const auto v1 = val("a");
  const auto v2 = val("b");
  const auto v3 = val("c");
  cache.put(1, v1, 10);
  cache.put(2, v2, 10);
  cache.put(3, v3, 10);
  // All pinned: nothing evictable, occupancy exceeds the budget.
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_GT(cache.stats().bytes, 10u);
}

TEST(LruByteCache, DuplicatePutRefreshesBytes) {
  Cache cache(100);
  cache.put(1, val("a"), 10);
  cache.put(1, val("bigger"), 30);
  EXPECT_EQ(cache.stats().bytes, 30u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(*cache.get(1), "bigger");
}

TEST(LruByteCache, ZeroBudgetDisablesCaching) {
  Cache cache(0);
  cache.put(1, val("a"), 1);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(LruByteCache, OversizedUnpinnedEntryIsDroppedImmediately) {
  Cache cache(10);
  cache.put(1, val("huge"), 100);  // over budget, nobody holds the pointer
  EXPECT_EQ(cache.stats().entries, 0u);  // evicted by its own put
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(LruByteCache, ClearKeepsCumulativeCounters) {
  Cache cache(100);
  cache.put(1, val("a"), 10);
  (void)cache.get(1);
  (void)cache.get(2);
  cache.clear();
  const LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(cache.get(1), nullptr);
}

TEST(LruByteCache, ContainsIsAPureProbe) {
  Cache cache(100);
  cache.put(1, val("a"), 10);
  cache.put(2, val("b"), 10);
  const LruCacheStats before = cache.stats();

  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(3));
  // No hit/miss accounting and no LRU bump.
  const LruCacheStats after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);

  // Probing key 1 must not have refreshed its recency: key 1 is still the
  // least recently *used* entry and is evicted first.
  cache.put(3, val("c"), 90);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LruByteCache, ConcurrentMixedAccessIsSafe) {
  Cache cache(1000);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        const int key = (t * 7 + i) % 16;
        if (const auto hit = cache.get(key)) {
          EXPECT_EQ(*hit, std::to_string(key));
        } else {
          cache.put(key,
                    std::make_shared<const std::string>(std::to_string(key)),
                    64);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(cache.stats().bytes, 1000u + 64u);  // soft budget, one pin max
}

}  // namespace
}  // namespace ancstr::util
