// Crash-safe content-addressed on-disk blob store: the persistent second
// cache tier under the ExtractionEngine (core/engine.h), keyed by the
// 128-bit structural hash. Restarting the process starts warm
// (docs/robustness.md, "Disk cache crash-safety and recovery";
// docs/api.md, "Persistence contract").
//
// Guarantees:
//
//   * Crash safety — an entry is written to a private temp file and
//     renamed into place, so a reader (including one in a process that
//     starts after a mid-write SIGKILL or ENOSPC) observes either the
//     complete entry or no entry; never a torn one. Stale temp files are
//     swept on open.
//   * Self-verification — every entry carries a versioned header with the
//     payload length and a 128-bit FNV/splitmix checksum
//     (util/structural_hash.h). Corruption, short reads, and
//     future-version headers are detected on read; the bad entry is
//     quarantined (renamed to "<entry>.q") and the caller recomputes. The
//     read path never throws.
//   * Fail-soft serving — every failure (unopenable directory, IO error,
//     corrupt entry, full disk) degrades to a miss. Transient IO failures
//     are retried with exponential backoff; after
//     `degradeAfterFailures` consecutive failures the store turns itself
//     off for the rest of its lifetime (cache-off operation) rather than
//     stalling the serving path.
//   * Bounded size — `budgetBytes` caps the sum of live entry sizes.
//     Least-recently-used entries are evicted on open (ordered by mtime)
//     and after each write (ordered by in-process recency).
//
// Writes are write-behind by default: put() enqueues to a single
// background writer thread and returns; flush() drains the queue and the
// destructor flushes before joining. Readers that race a write simply
// miss — the engine's in-memory tier already holds the value.
//
// Fault sites (util/fault.h): disk_cache.open, disk_cache.read,
// disk_cache.write, disk_cache.rename, disk_cache.checksum.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "util/diagnostics.h"
#include "util/structural_hash.h"

namespace ancstr::util {

struct DiskCacheConfig {
  /// Store directory (created on open). An empty path disables the store.
  std::filesystem::path dir;
  /// Byte budget over live entries; 0 = unbounded. Enforced on open (LRU
  /// by mtime) and after every write (LRU by in-process recency).
  std::size_t budgetBytes = 256ull << 20;
  /// Write-behind: puts enqueue to a background writer thread. Off =
  /// synchronous writes on the calling thread (deterministic for tests).
  bool writeBehind = true;
  /// Extra attempts per failed IO operation (read or write).
  int maxIoRetries = 2;
  /// Backoff before the first retry, doubling per attempt; 0 = no sleep.
  int retryBackoffMicros = 200;
  /// Consecutive IO failures (after retries) before the store degrades to
  /// cache-off operation for the rest of its lifetime.
  int degradeAfterFailures = 4;
};

/// Cumulative counters of one DiskCache. bytes/entries are current live
/// occupancy; hit/miss/corrupt are disjoint read outcomes (a corrupt read
/// is not also counted as a miss).
struct DiskCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t corrupt = 0;      ///< bad magic/version/length/checksum
  std::uint64_t quarantined = 0;  ///< corrupt entries renamed aside
  std::uint64_t writes = 0;       ///< entries durably renamed into place
  std::uint64_t writeFailures = 0;
  std::uint64_t readFailures = 0;  ///< IO read failures after retries
  std::uint64_t droppedWrites = 0;  ///< write-behind queue overflow
  std::uint64_t evictions = 0;
  std::uint64_t retries = 0;  ///< IO retry attempts (read + write)
  std::size_t bytes = 0;
  std::size_t entries = 0;
  bool enabled = false;   ///< open succeeded and not degraded
  bool degraded = false;  ///< turned itself off after repeated IO failures
};

/// See file comment. All methods are thread-safe and none of them throws:
/// a DiskCache can sit directly on a serving path.
class DiskCache {
 public:
  /// On-disk entry format version; readers quarantine anything newer.
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Opens (and creates) the store directory, sweeps stale temp and
  /// quarantine files, indexes existing entries, and evicts past the
  /// budget oldest-mtime-first. On any failure the store opens disabled —
  /// a missing disk tier must never take down serving.
  explicit DiskCache(DiskCacheConfig config);
  ~DiskCache();

  DiskCache(const DiskCache&) = delete;
  DiskCache& operator=(const DiskCache&) = delete;

  /// False when open failed or the store degraded to cache-off.
  bool enabled() const;

  /// Reads the payload stored under (ns, key). Returns nullopt on miss,
  /// IO failure (after retries), or corruption — a corrupt entry is
  /// quarantined and reported on `sink` (when given) as a warning with a
  /// cache.* code, so strict sinks never throw because of it.
  std::optional<std::string> get(std::string_view ns,
                                 const StructuralHash& key,
                                 diag::DiagnosticSink* sink = nullptr);

  /// Stores `payload` under (ns, key). Write-behind mode enqueues and
  /// returns; a full queue drops the write (counted). Failures after
  /// retries are counted and — once consecutive enough — degrade the
  /// store to cache-off.
  void put(std::string_view ns, const StructuralHash& key,
           std::string payload);

  /// Drains pending write-behind entries (no-op in synchronous mode).
  void flush();

  DiskCacheStats stats() const;
  const DiskCacheConfig& config() const { return config_; }

  /// "<ns>-<32 hex chars>.e" — exposed for tests and tooling.
  static std::string entryFileName(std::string_view ns,
                                   const StructuralHash& key);

 private:
  struct IndexEntry {
    std::size_t size = 0;
    std::uint64_t seq = 0;  ///< recency; larger = more recent
  };

  void open();
  bool writeEntry(const std::string& name, const std::string& bytes);
  void writerLoop();
  void noteIoFailure();
  void noteIoSuccess();
  void quarantine(const std::filesystem::path& path, const std::string& name);
  /// Evicts lowest-seq entries until live bytes fit the budget. Caller
  /// holds mutex_.
  void evictToBudgetLocked();

  DiskCacheConfig config_;
  std::atomic<bool> opened_{false};
  std::atomic<bool> degraded_{false};
  std::atomic<int> consecutiveFailures_{0};

  mutable std::mutex mutex_;  ///< index + stats + seq
  std::unordered_map<std::string, IndexEntry> index_;
  std::uint64_t seq_ = 0;
  std::uint64_t tmpSeq_ = 0;
  DiskCacheStats stats_;

  // Write-behind machinery (writeBehind only).
  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::condition_variable idleCv_;
  std::deque<std::pair<std::string, std::string>> queue_;  ///< name, bytes
  bool writerBusy_ = false;
  bool stopping_ = false;
  std::thread writer_;
};

}  // namespace ancstr::util
