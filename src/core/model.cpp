#include "core/model.h"

#include "nn/init.h"
#include "util/error.h"
#include "util/trace.h"

namespace ancstr {

PreparedGraph prepareGraph(const CircuitGraph& graph, nn::Matrix features) {
  if (features.rows() != graph.numVertices()) {
    throw ShapeError("prepareGraph: feature rows != vertices");
  }
  PreparedGraph out;
  for (std::size_t t = 0; t < kNumEdgeTypes; ++t) {
    out.inAdjacency[t] = graph.graph.inAdjacency(static_cast<EdgeType>(t));
  }
  out.features = std::move(features);
  out.inNeighbors.resize(graph.numVertices());
  for (std::uint32_t v = 0; v < graph.numVertices(); ++v) {
    out.inNeighbors[v] = graph.graph.inNeighbors(v);
  }
  out.inverseInDegree.resize(graph.numVertices(), 0.0);
  for (std::uint32_t v = 0; v < graph.numVertices(); ++v) {
    const std::size_t degree = graph.graph.inEdges(v).size();
    if (degree > 0) {
      out.inverseInDegree[v] = 1.0 / static_cast<double>(degree);
    }
  }
  out.vertexToDevice = graph.vertexToDevice;
  return out;
}

GnnModel::GnnModel(GnnConfig config, Rng& rng) : config_(config) {
  ANCSTR_ASSERT(config_.numLayers >= 1);
  const std::size_t sets =
      config_.sharedWeights ? 1u : static_cast<std::size_t>(config_.numLayers);
  for (std::size_t s = 0; s < sets; ++s) {
    std::array<nn::Tensor, kNumEdgeTypes> ws;
    for (std::size_t t = 0; t < kNumEdgeTypes; ++t) {
      ws[t] = nn::Tensor::param(
          nn::xavierUniform(config_.hiddenDim, config_.hiddenDim, rng));
    }
    edgeWeights_.push_back(std::move(ws));
    grus_.emplace_back(config_.hiddenDim, config_.hiddenDim, rng);
  }
  if (config_.featureDim != config_.hiddenDim) {
    inputProj_ = nn::Tensor::param(
        nn::xavierUniform(config_.featureDim, config_.hiddenDim, rng));
  }
}

nn::Tensor GnnModel::forward(const PreparedGraph& g) const {
  if (g.features.cols() != config_.featureDim) {
    throw ShapeError("GnnModel::forward: feature dim mismatch");
  }
  nn::Tensor h = nn::Tensor::constant(g.features);
  if (inputProj_.valid()) h = nn::matmul(h, inputProj_);
  for (int layer = 0; layer < config_.numLayers; ++layer) {
    const auto& ws = edgeWeights_[weightSetFor(layer)];
    nn::Tensor msg;
    for (std::size_t t = 0; t < kNumEdgeTypes; ++t) {
      if (g.inAdjacency[t].nonZeros() == 0) continue;
      nn::Tensor m = nn::spmm(g.inAdjacency[t], nn::matmul(h, ws[t]));
      msg = msg.valid() ? nn::add(msg, m) : m;
    }
    if (!msg.valid()) {
      msg = nn::Tensor::constant(
          nn::Matrix(g.numVertices(), config_.hiddenDim));
    } else if (config_.meanAggregation) {
      msg = nn::rowScale(msg, g.inverseInDegree);
    }
    h = grus_[weightSetFor(layer)].forward(msg, h);
  }
  return h;
}

nn::Matrix GnnModel::embed(const PreparedGraph& g) const {
  const trace::TraceSpan span("model.embed");
  // Tape-free evaluation mirrors forward(); the tape variant is the
  // reference, this one just skips gradient bookkeeping by reusing it and
  // extracting the value (graphs here are small enough that the tape cost
  // is negligible, so prefer the single code path over a hand-rolled copy).
  return forward(g).value();
}

GnnModel GnnModel::clone() const {
  // The RNG only seeds initial weights, which are overwritten below.
  Rng rng(0);
  GnnModel copy(config_, rng);
  const std::vector<nn::Tensor> src = parameters();
  std::vector<nn::Tensor> dst = copy.parameters();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i].setValue(src[i].value());
  }
  return copy;
}

std::vector<nn::Tensor> GnnModel::parameters() const {
  std::vector<nn::Tensor> params;
  for (const auto& set : edgeWeights_) {
    for (const nn::Tensor& w : set) params.push_back(w);
  }
  for (const nn::GruCell& gru : grus_) {
    const auto gp = gru.parameters();
    params.insert(params.end(), gp.begin(), gp.end());
  }
  if (inputProj_.valid()) params.push_back(inputProj_);
  return params;
}

}  // namespace ancstr
