#include "util/fault.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace ancstr {
namespace {

TEST(Fault, DisarmedSitesNeverFire) {
  EXPECT_FALSE(fault::shouldFail("fault_test.never_armed"));
  EXPECT_EQ(fault::corruptDouble("fault_test.never_armed", 1.5), 1.5);
  EXPECT_EQ(fault::corruptText("fault_test.never_armed", "abcd"), "abcd");
}

TEST(Fault, EveryHitSpecFiresRepeatedly) {
  const fault::ScopedFault armed("fault_test.always");
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::shouldFail("fault_test.always"));
  EXPECT_TRUE(fault::shouldFail("fault_test.always"));
  EXPECT_FALSE(fault::shouldFail("fault_test.other"));
}

TEST(Fault, AtHitSpecFiresExactlyOnceOnNthHit) {
  const fault::ScopedFault armed("fault_test.third@3");
  EXPECT_FALSE(fault::shouldFail("fault_test.third"));  // hit 1
  EXPECT_FALSE(fault::shouldFail("fault_test.third"));  // hit 2
  EXPECT_TRUE(fault::shouldFail("fault_test.third"));   // hit 3: fires
  EXPECT_FALSE(fault::shouldFail("fault_test.third"));  // never again
  EXPECT_FALSE(fault::shouldFail("fault_test.third"));
}

TEST(Fault, CommaListArmsMultipleSites) {
  const fault::ScopedFault armed("fault_test.a@1, fault_test.b");
  EXPECT_TRUE(fault::shouldFail("fault_test.a"));
  EXPECT_FALSE(fault::shouldFail("fault_test.a"));
  EXPECT_TRUE(fault::shouldFail("fault_test.b"));
  EXPECT_TRUE(fault::shouldFail("fault_test.b"));
}

TEST(Fault, CorruptDoubleInjectsNaN) {
  const fault::ScopedFault armed("fault_test.nan@1");
  const double corrupted = fault::corruptDouble("fault_test.nan", 2.0);
  EXPECT_TRUE(std::isnan(corrupted));
  // Subsequent hits pass the value through untouched.
  EXPECT_EQ(fault::corruptDouble("fault_test.nan", 2.0), 2.0);
}

TEST(Fault, CorruptTextTruncatesToHalf) {
  const fault::ScopedFault armed("fault_test.trunc@1");
  EXPECT_EQ(fault::corruptText("fault_test.trunc", "abcdef"), "abc");
  EXPECT_EQ(fault::corruptText("fault_test.trunc", "abcdef"), "abcdef");
}

TEST(Fault, DisarmAllClearsEverything) {
  fault::arm("fault_test.x");
  EXPECT_TRUE(fault::shouldFail("fault_test.x"));
  fault::disarmAll();
  EXPECT_FALSE(fault::shouldFail("fault_test.x"));
}

TEST(Fault, RearmResetsHitCounter) {
  {
    const fault::ScopedFault armed("fault_test.reset@2");
    EXPECT_FALSE(fault::shouldFail("fault_test.reset"));
    EXPECT_TRUE(fault::shouldFail("fault_test.reset"));
  }
  {
    const fault::ScopedFault armed("fault_test.reset@2");
    EXPECT_FALSE(fault::shouldFail("fault_test.reset"));
    EXPECT_TRUE(fault::shouldFail("fault_test.reset"));
  }
}

TEST(Fault, BadHitIndexThrows) {
  EXPECT_THROW(fault::arm("fault_test.bad@0"), Error);
  EXPECT_THROW(fault::arm("fault_test.bad@notanumber"), Error);
  fault::disarmAll();
}

}  // namespace
}  // namespace ancstr
