// LedgerWriter coverage (util/run_ledger.h): schema key order, synchronous
// and write-behind appends, fail-soft open failure, and fault-injected
// degradation. Engine-level ledger behaviour (one record per request,
// batch ordering) lives in core/test_engine.cpp.
#include "util/run_ledger.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/fault.h"
#include "util/json.h"

namespace ancstr::ledger {
namespace {

const char* const kKeyOrder[] = {
    "schemaVersion",    "requestId",   "correlationId",
    "designHash",       "devices",     "nets",
    "hierarchyNodes",   "cacheOutcome", "blockCacheHits",
    "blockCacheMisses", "outcome",     "kernel",
    "constraintsTotal", "constraints", "diagnostics",
    "phases",           "wallSeconds", "peakRssDeltaBytes",
    "unixTimeSeconds"};

LedgerRecord makeRecord(std::uint64_t requestId = 1) {
  LedgerRecord rec;
  rec.requestId = requestId;
  rec.designHash = "0123456789abcdef0123456789abcdef";
  rec.devices = 12;
  rec.nets = 9;
  rec.hierarchyNodes = 3;
  rec.cacheOutcome = "cold";
  rec.kernel = "scalar";
  rec.constraints = {{"symmetry_pair", 2}, {"self_symmetric", 0},
                     {"current_mirror", 1}, {"symmetry_group", 0}};
  rec.constraintsTotal = 3;
  rec.phases = {{"extract.inference", 0.01}, {"extract.detection", 0.02}};
  rec.wallSeconds = 0.04;
  return rec;
}

class RunLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("ancstr_test_ledger_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()) +
             ".jsonl");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::vector<std::string> fileLines() const {
    std::ifstream in(path_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  std::filesystem::path path_;
};

TEST(LedgerRecord, ToJsonLineHasExactKeyOrder) {
  const std::string line = makeRecord().toJsonLine();
  std::string error;
  const auto parsed = Json::parse(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->get("schemaVersion").asNumber(),
            static_cast<double>(LedgerWriter::kSchemaVersion));

  // Key ORDER is the contract (scripts/check_ledger.py validates it):
  // each key must appear after the previous one in the serialized line.
  std::size_t last = 0;
  for (const char* key : kKeyOrder) {
    const std::size_t pos = line.find("\"" + std::string(key) + "\":");
    ASSERT_NE(pos, std::string::npos) << key;
    EXPECT_GT(pos, last) << key << " out of order";
    last = pos;
  }
  // Nested objects keep insertion order too.
  EXPECT_LT(line.find("\"symmetry_pair\""), line.find("\"self_symmetric\""));
  EXPECT_LT(line.find("\"extract.inference\""),
            line.find("\"extract.detection\""));
  // Integers serialize without a decimal point.
  EXPECT_NE(line.find("\"requestId\":1,"), std::string::npos);
}

TEST_F(RunLedgerTest, SynchronousAppendWritesOneLinePerRecord) {
  LedgerWriterConfig config;
  config.path = path_;
  config.writeBehind = false;
  LedgerWriter writer(config);
  ASSERT_TRUE(writer.enabled());

  writer.append(makeRecord(1));
  writer.append(makeRecord(2));

  const std::vector<std::string> lines = fileLines();
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    std::string error;
    const auto parsed = Json::parse(line, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    // unixTimeSeconds is stamped at append time, not by the producer.
    EXPECT_GT(parsed->get("unixTimeSeconds").asNumber(), 0.0);
  }
  const LedgerStats stats = writer.stats();
  EXPECT_EQ(stats.appended, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_FALSE(stats.degraded);
}

TEST_F(RunLedgerTest, WriteBehindAppendsAreDurableAfterFlush) {
  LedgerWriterConfig config;
  config.path = path_;
  config.writeBehind = true;
  LedgerWriter writer(config);
  for (std::uint64_t i = 1; i <= 16; ++i) writer.append(makeRecord(i));
  writer.flush();
  EXPECT_EQ(fileLines().size(), 16u);
  EXPECT_EQ(writer.stats().appended, 16u);
}

TEST_F(RunLedgerTest, DestructorFlushesPendingAppends) {
  {
    LedgerWriterConfig config;
    config.path = path_;
    config.writeBehind = true;
    LedgerWriter writer(config);
    for (std::uint64_t i = 1; i <= 8; ++i) writer.append(makeRecord(i));
  }
  EXPECT_EQ(fileLines().size(), 8u);
}

TEST_F(RunLedgerTest, AppendsPreserveOrder) {
  LedgerWriterConfig config;
  config.path = path_;
  LedgerWriter writer(config);
  for (std::uint64_t i = 1; i <= 20; ++i) writer.append(makeRecord(i));
  writer.flush();
  const std::vector<std::string> lines = fileLines();
  ASSERT_EQ(lines.size(), 20u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string error;
    const auto parsed = Json::parse(lines[i], &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->get("requestId").asNumber(),
              static_cast<double>(i + 1));
  }
}

TEST(RunLedger, EmptyPathDisablesAndDropsSilently) {
  LedgerWriter writer(LedgerWriterConfig{});
  EXPECT_FALSE(writer.enabled());
  EXPECT_NO_THROW(writer.append(makeRecord()));
  EXPECT_NO_THROW(writer.flush());
  EXPECT_EQ(writer.stats().appended, 0u);
  EXPECT_EQ(writer.stats().dropped, 1u);
}

TEST(RunLedger, UnopenableParentDirIsFailSoft) {
  LedgerWriterConfig config;
  config.path = "/nonexistent-dir-ancstr/ledger.jsonl";
  LedgerWriter writer(config);
  EXPECT_FALSE(writer.enabled());
  EXPECT_NO_THROW(writer.append(makeRecord()));
  EXPECT_EQ(writer.stats().dropped, 1u);
}

TEST_F(RunLedgerTest, RepeatedWriteFailuresDegradeTheWriter) {
  LedgerWriterConfig config;
  config.path = path_;
  config.writeBehind = false;  // deterministic failure accounting
  config.degradeAfterFailures = 3;
  LedgerWriter writer(config);
  ASSERT_TRUE(writer.enabled());

  {
    // Every write fails at the injected fault site.
    const fault::ScopedFault fail("ledger.write");
    for (std::uint64_t i = 1; i <= 3; ++i) writer.append(makeRecord(i));
  }
  const LedgerStats stats = writer.stats();
  EXPECT_EQ(stats.writeFailures, 3u);
  EXPECT_TRUE(stats.degraded);
  EXPECT_FALSE(writer.enabled());

  // Degraded writer drops (never throws) even after the fault clears.
  writer.append(makeRecord(4));
  EXPECT_EQ(writer.stats().dropped, 1u);
  EXPECT_TRUE(fileLines().empty());
}

TEST_F(RunLedgerTest, OneFailureThenSuccessDoesNotDegrade) {
  LedgerWriterConfig config;
  config.path = path_;
  config.writeBehind = false;
  config.degradeAfterFailures = 2;
  LedgerWriter writer(config);

  {
    const fault::ScopedFault fail("ledger.write@1");  // first write only
    writer.append(makeRecord(1));                     // fails
    writer.append(makeRecord(2));                     // succeeds, resets
  }
  writer.append(makeRecord(3));
  const LedgerStats stats = writer.stats();
  EXPECT_EQ(stats.writeFailures, 1u);
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.appended, 2u);
}

}  // namespace
}  // namespace ancstr::ledger
