#include "core/embedding.h"

#include <cmath>

#include "graph/digraph.h"
#include "graph/pagerank.h"
#include "util/error.h"

namespace ancstr {

std::vector<FlatDeviceId> representativeDevices(
    const CircuitGraph& inducedGraph, const EmbeddingConfig& config) {
  if (inducedGraph.numVertices() == 0) return {};
  const SimpleDigraph simplified = inducedGraph.graph.simplified();
  PageRankOptions prOptions;
  prOptions.damping = config.damping;
  const std::vector<double> scores = pageRank(simplified, prOptions);
  const std::vector<std::uint32_t> top = topKByScore(scores, config.topM);
  std::vector<FlatDeviceId> devices;
  devices.reserve(top.size());
  for (const std::uint32_t v : top) {
    devices.push_back(inducedGraph.vertexToDevice.at(v));
  }
  return devices;
}

std::vector<double> gatherEmbedding(const std::vector<FlatDeviceId>& devices,
                                    const nn::Matrix& rows) {
  const std::size_t d = rows.cols();
  std::vector<double> embedding;
  embedding.reserve(devices.size() * d);
  for (const FlatDeviceId dev : devices) {
    ANCSTR_ASSERT(dev < rows.rows());
    const double* row = rows.row(dev);
    embedding.insert(embedding.end(), row, row + d);
  }
  return embedding;
}

std::vector<double> embedCircuit(const CircuitGraph& inducedGraph,
                                 const nn::Matrix& designEmbeddings,
                                 const EmbeddingConfig& config) {
  return gatherEmbedding(representativeDevices(inducedGraph, config),
                         designEmbeddings);
}

double embeddingCosine(const std::vector<double>& a,
                       const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < n; ++i) dot += a[i] * b[i];
  for (const double x : a) na += x * x;
  for (const double x : b) nb += x * x;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace ancstr
