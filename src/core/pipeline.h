// End-to-end facade over the full flow of Fig. 4: multigraph construction,
// feature init, unsupervised GNN training, circuit embedding, and
// constraint detection. Train once on a corpus, then extract constraints
// from any circuit (the model is inductive).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/features.h"
#include "core/trainer.h"

namespace ancstr {

struct PipelineConfig {
  FeatureConfig features;
  GraphBuildOptions graph;
  GnnConfig model;
  TrainConfig train;
  DetectorConfig detector;
  std::uint64_t seed = 42;
  /// Worker count applied to both training (per-batch graph fan-out) and
  /// detection (block embedding + pair scoring); overrides the sub-config
  /// fields train.threads / detector.threads during pipeline runs.
  /// 0 = hardware_concurrency, 1 = serial; ANCSTR_THREADS overrides.
  /// ExtractionResult and trained weights are bitwise identical for every
  /// value — parallelism here only changes wall-clock time.
  std::size_t threads = 1;

  PipelineConfig() {
    model.featureDim = features.dims();
    // Supply/clock hub nets expand into huge cliques under Algorithm 1,
    // which (a) costs |net|^2 edges and (b) makes every rail-connected
    // device 1-hop adjacent to every other, collapsing their embeddings.
    // Production default: skip nets beyond this degree (0 = paper-literal
    // full cliques; see GraphBuildOptions).
    graph.maxNetDegree = 64;
  }
};

/// Wall-clock breakdown of one extraction (Tables V/VI runtime columns
/// exclude training, matching the paper's footnote).
struct ExtractTiming {
  double graphBuildSeconds = 0.0;
  double inferenceSeconds = 0.0;
  double detectionSeconds = 0.0;

  double total() const {
    return graphBuildSeconds + inferenceSeconds + detectionSeconds;
  }
};

/// Extraction output: scored candidates + accepted constraints + timing.
struct ExtractionResult {
  DetectionResult detection;
  ExtractTiming timing;
  /// Trained per-device embeddings (row = FlatDeviceId) — input for
  /// downstream analyses such as array-group detection (core/arrays.h).
  nn::Matrix embeddings;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {});

  /// Trains the GNN on the given circuits (unsupervised; no labels).
  TrainStats train(const std::vector<const Library*>& corpus);

  /// True once train() or loadModel() has run.
  bool isTrained() const { return model_ != nullptr; }

  /// Extracts symmetry constraints from one circuit.
  ExtractionResult extract(const Library& lib) const;

  const GnnModel& model() const;
  const PipelineConfig& config() const { return config_; }

  void saveModel(const std::string& path) const;
  void loadModel(const std::string& path);

 private:
  PreparedGraph prepare(const Library& lib, const FlatDesign& design) const;

  PipelineConfig config_;
  std::unique_ptr<GnnModel> model_;
};

}  // namespace ancstr
