// First-order optimizers over Tensor parameter lists.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/tensor.h"

namespace ancstr::nn {

/// Clips the global L2 norm of all parameter gradients to `maxNorm`.
/// Returns the pre-clip norm.
double clipGradNorm(const std::vector<Tensor>& params, double maxNorm);

/// Zeroes every parameter gradient.
void zeroGrads(const std::vector<Tensor>& params);

/// Interface shared by optimizers.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update step from the currently accumulated gradients.
  virtual void step() = 0;
  /// Clears gradients of all managed parameters.
  void zeroGrad();

 protected:
  explicit Optimizer(std::vector<Tensor> params)
      : params_(std::move(params)) {}
  std::vector<Tensor> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, double lr, double momentum = 0.0);
  void step() override;

 private:
  double lr_;
  double momentum_;
  std::unordered_map<const void*, Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  struct Config {
    double lr = 1e-2;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weightDecay = 0.0;
  };

  explicit Adam(std::vector<Tensor> params);
  Adam(std::vector<Tensor> params, Config config);
  void step() override;

 private:
  struct State {
    Matrix m;
    Matrix v;
  };
  Config config_;
  std::unordered_map<const void*, State> state_;
  long stepCount_ = 0;
};

}  // namespace ancstr::nn
