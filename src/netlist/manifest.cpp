#include "netlist/manifest.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/fault.h"

namespace ancstr {

namespace {

constexpr std::uint64_t kContentSchemaVersion = 1;

/// Post-order content hashing with memoization. `state` is 0 (unvisited),
/// 1 (on the current recursion path), 2 (done).
util::StructuralHash contentHash(const Library& lib, SubcktId id,
                                 std::vector<util::StructuralHash>& memo,
                                 std::vector<int>& state) {
  if (state[id] == 2) return memo[id];
  if (state[id] == 1) {
    throw NetlistError("subcktContentHash: recursive instantiation of '" +
                       lib.subckt(id).name() + "'");
  }
  state[id] = 1;

  const SubcktDef& def = lib.subckt(id);
  util::StructuralHasher h;
  h.add(kContentSchemaVersion);

  // Local net numbering by first appearance over the canonical walk
  // (ports, then device pins, then instance connections), so net NAMES
  // and creation order never reach the hash.
  std::vector<std::uint32_t> localNet(def.nets().size(), kInvalidId);
  std::uint32_t nextLocal = 0;
  const auto local = [&](NetId net) {
    if (localNet.at(net) == kInvalidId) localNet[net] = nextLocal++;
    return localNet[net];
  };

  h.addSize(def.ports().size());
  for (const NetId port : def.ports()) h.add(local(port));

  h.addSize(def.devices().size());
  for (const Device& dev : def.devices()) {
    h.add(static_cast<std::uint64_t>(dev.type));
    h.addDouble(dev.params.w);
    h.addDouble(dev.params.l);
    h.addDouble(dev.params.value);
    h.addInt(dev.params.nf);
    h.addInt(dev.params.m);
    h.addInt(dev.params.layers);
    h.addSize(dev.pins.size());
    for (const Pin& pin : dev.pins) {
      h.add(static_cast<std::uint64_t>(pin.function));
      h.add(local(pin.net));
    }
  }

  h.addSize(def.instances().size());
  for (const Instance& inst : def.instances()) {
    const util::StructuralHash master =
        contentHash(lib, inst.master, memo, state);
    h.add(master.hi);
    h.add(master.lo);
    h.addSize(inst.connections.size());
    for (const NetId net : inst.connections) h.add(local(net));
  }

  state[id] = 2;
  memo[id] = h.finish();
  return memo[id];
}

bool parseHex128(std::string_view hex, util::StructuralHash* out) {
  if (hex.size() != 32) return false;
  std::uint64_t lanes[2] = {0, 0};
  for (int lane = 0; lane < 2; ++lane) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(lane * 16 + i)];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a') + 10;
      } else {
        return false;
      }
      lanes[lane] = (lanes[lane] << 4) | digit;
    }
  }
  out->hi = lanes[0];
  out->lo = lanes[1];
  return true;
}

[[noreturn]] void formatError(const std::filesystem::path& path,
                              std::size_t line, const std::string& what) {
  throw Error("manifest '" + path.string() + "' line " +
              std::to_string(line) + ": " + what);
}

}  // namespace

const ManifestEntry* DesignManifest::findMaster(std::string_view name) const {
  for (const ManifestEntry& entry : masters) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

util::StructuralHash subcktContentHash(const Library& lib, SubcktId id) {
  std::vector<util::StructuralHash> memo(lib.subcktCount());
  std::vector<int> state(lib.subcktCount(), 0);
  return contentHash(lib, id, memo, state);
}

DesignManifest buildNetlistManifest(const Library& lib) {
  DesignManifest manifest;
  std::vector<util::StructuralHash> memo(lib.subcktCount());
  std::vector<int> state(lib.subcktCount(), 0);
  manifest.masters.reserve(lib.subcktCount());
  for (SubcktId id = 0; id < lib.subcktCount(); ++id) {
    manifest.masters.push_back(ManifestEntry{
        lib.subckt(id).name(), contentHash(lib, id, memo, state)});
  }
  std::sort(manifest.masters.begin(), manifest.masters.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.name < b.name;
            });
  return manifest;
}

void saveManifest(const DesignManifest& manifest,
                  const std::filesystem::path& path) {
  std::ofstream out(path);
  if (fault::shouldFail("manifest.open") || !out) {
    throw Error("cannot open manifest '" + path.string() + "' for writing");
  }
  out << "ancstr-manifest v" << DesignManifest::kFormatVersion << "\n";
  const util::StructuralHash null{};
  if (!(manifest.configHash == null)) {
    out << "config " << manifest.configHash.hex() << "\n";
  }
  if (!(manifest.designHash == null)) {
    out << "design " << manifest.designHash.hex() << "\n";
  }
  for (const ManifestEntry& entry : manifest.masters) {
    out << "master " << entry.name << " " << entry.hash.hex() << "\n";
  }
  for (const util::StructuralHash& hash : manifest.subtreeHashes) {
    out << "subtree " << hash.hex() << "\n";
  }
  if (!out) throw Error("write failure on manifest '" + path.string() + "'");
}

DesignManifest loadManifest(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (fault::shouldFail("manifest.open") || !in) {
    throw Error("cannot open manifest '" + path.string() + "'");
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::istringstream text(
      fault::corruptText("manifest.read", std::move(buf).str()));

  DesignManifest manifest;
  std::string line;
  std::size_t lineNo = 0;
  if (!std::getline(text, line)) formatError(path, 1, "empty file");
  ++lineNo;
  if (line != "ancstr-manifest v1") {
    formatError(path, lineNo,
                "unsupported header '" + line + "' (expected v" +
                    std::to_string(DesignManifest::kFormatVersion) + ")");
  }
  while (std::getline(text, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "config" || kind == "design" || kind == "subtree") {
      std::string hex;
      fields >> hex;
      util::StructuralHash hash;
      if (!parseHex128(hex, &hash)) {
        formatError(path, lineNo, "bad hash '" + hex + "'");
      }
      if (kind == "config") {
        manifest.configHash = hash;
      } else if (kind == "design") {
        manifest.designHash = hash;
      } else {
        manifest.subtreeHashes.push_back(hash);
      }
    } else if (kind == "master") {
      std::string name, hex;
      fields >> name >> hex;
      util::StructuralHash hash;
      if (name.empty() || !parseHex128(hex, &hash)) {
        formatError(path, lineNo, "bad master entry '" + line + "'");
      }
      manifest.masters.push_back(ManifestEntry{std::move(name), hash});
    } else {
      formatError(path, lineNo, "unknown record '" + kind + "'");
    }
  }
  std::sort(manifest.masters.begin(), manifest.masters.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.name < b.name;
            });
  std::sort(manifest.subtreeHashes.begin(), manifest.subtreeHashes.end(),
            [](const util::StructuralHash& a, const util::StructuralHash& b) {
              return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
            });
  return manifest;
}

}  // namespace ancstr
