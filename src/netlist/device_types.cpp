#include "netlist/device_types.h"

#include "util/string_utils.h"

namespace ancstr {

bool isMos(DeviceType t) noexcept { return isNmos(t) || isPmos(t); }

bool isNmos(DeviceType t) noexcept {
  return t == DeviceType::kNch || t == DeviceType::kNchLvt ||
         t == DeviceType::kNchHvt;
}

bool isPmos(DeviceType t) noexcept {
  return t == DeviceType::kPch || t == DeviceType::kPchLvt ||
         t == DeviceType::kPchHvt;
}

bool isPassive(DeviceType t) noexcept {
  return isResistor(t) || isCapacitor(t) || t == DeviceType::kInd;
}

bool isResistor(DeviceType t) noexcept {
  return t == DeviceType::kResPoly || t == DeviceType::kResMetal;
}

bool isCapacitor(DeviceType t) noexcept {
  return t == DeviceType::kCapMim || t == DeviceType::kCapMom ||
         t == DeviceType::kCapMos;
}

bool isBipolar(DeviceType t) noexcept {
  return t == DeviceType::kNpn || t == DeviceType::kPnp;
}

std::optional<std::size_t> oneHotIndex(DeviceType t) noexcept {
  if (t == DeviceType::kUnknown) return std::nullopt;
  return static_cast<std::size_t>(t);
}

std::string_view deviceTypeName(DeviceType t) noexcept {
  switch (t) {
    case DeviceType::kNch: return "nch";
    case DeviceType::kNchLvt: return "nch_lvt";
    case DeviceType::kNchHvt: return "nch_hvt";
    case DeviceType::kPch: return "pch";
    case DeviceType::kPchLvt: return "pch_lvt";
    case DeviceType::kPchHvt: return "pch_hvt";
    case DeviceType::kResPoly: return "res_poly";
    case DeviceType::kResMetal: return "res_metal";
    case DeviceType::kCapMim: return "cap_mim";
    case DeviceType::kCapMom: return "cap_mom";
    case DeviceType::kCapMos: return "cap_mos";
    case DeviceType::kInd: return "ind";
    case DeviceType::kDio: return "dio";
    case DeviceType::kNpn: return "npn";
    case DeviceType::kPnp: return "pnp";
    case DeviceType::kUnknown: return "unknown";
  }
  return "unknown";
}

std::size_t pinCount(DeviceType t) noexcept {
  if (isMos(t)) return 4;
  if (isBipolar(t)) return 3;
  return 2;
}

std::array<PinFunction, 4> pinFunctions(DeviceType t) noexcept {
  if (isMos(t)) {
    return {PinFunction::kDrain, PinFunction::kGate, PinFunction::kSource,
            PinFunction::kBulk};
  }
  if (isBipolar(t)) {
    return {PinFunction::kCollector, PinFunction::kBase, PinFunction::kEmitter,
            PinFunction::kBulk};
  }
  if (t == DeviceType::kDio) {
    return {PinFunction::kAnode, PinFunction::kCathode, PinFunction::kBulk,
            PinFunction::kBulk};
  }
  return {PinFunction::kPassivePos, PinFunction::kPassiveNeg,
          PinFunction::kBulk, PinFunction::kBulk};
}

int defaultMetalLayers(DeviceType t) noexcept {
  switch (t) {
    case DeviceType::kCapMom: return 4;
    case DeviceType::kCapMim: return 2;
    case DeviceType::kResMetal: return 2;
    case DeviceType::kInd: return 2;
    default: return 1;
  }
}

DeviceType deviceTypeFromModelName(std::string_view model) noexcept {
  const std::string m = str::toLower(model);
  auto has = [&](std::string_view needle) {
    return m.find(needle) != std::string::npos;
  };
  // MOS flavours: check Vt qualifier before base name.
  if (has("nch") || has("nmos") || has("nfet")) {
    if (has("lvt") || has("ulvt")) return DeviceType::kNchLvt;
    if (has("hvt")) return DeviceType::kNchHvt;
    return DeviceType::kNch;
  }
  if (has("pch") || has("pmos") || has("pfet")) {
    if (has("lvt") || has("ulvt")) return DeviceType::kPchLvt;
    if (has("hvt")) return DeviceType::kPchHvt;
    return DeviceType::kPch;
  }
  if (has("cfmom") || has("mom")) return DeviceType::kCapMom;
  if (has("mim")) return DeviceType::kCapMim;
  if (has("moscap") || has("cap_mos") || has("varactor")) {
    return DeviceType::kCapMos;
  }
  if (has("rppoly") || has("poly")) return DeviceType::kResPoly;
  if (has("rm") || has("metal") || has("rnod") || has("rpod")) {
    return DeviceType::kResMetal;
  }
  if (has("npn")) return DeviceType::kNpn;
  if (has("pnp")) return DeviceType::kPnp;
  if (has("dio") || has("diode")) return DeviceType::kDio;
  if (has("ind") || has("spiral")) return DeviceType::kInd;
  if (has("res")) return DeviceType::kResPoly;
  if (has("cap")) return DeviceType::kCapMim;
  return DeviceType::kUnknown;
}

std::string_view pinFunctionName(PinFunction f) noexcept {
  switch (f) {
    case PinFunction::kGate: return "gate";
    case PinFunction::kDrain: return "drain";
    case PinFunction::kSource: return "source";
    case PinFunction::kBulk: return "bulk";
    case PinFunction::kPassivePos: return "pos";
    case PinFunction::kPassiveNeg: return "neg";
    case PinFunction::kAnode: return "anode";
    case PinFunction::kCathode: return "cathode";
    case PinFunction::kCollector: return "collector";
    case PinFunction::kBase: return "base";
    case PinFunction::kEmitter: return "emitter";
  }
  return "?";
}

}  // namespace ancstr
