// AVX-512F kernel backend (8-wide double vectors). Only meaningful when
// the including TU is compiled with -mavx512f (kernels_avx512.cpp is the
// only such TU); without __AVX512F__ the header is empty so it stays safe
// to include — and to syntax-check standalone — from baseline TUs.
//
// Numeric contract: identical per-element operation sequence to the
// reference implementations in kernels_detail.h. -mavx512f implies FMA
// hardware, so the TU is compiled with -ffp-contract=off and every multiply
// and add below is an explicit separate intrinsic — the compiler may not
// contract them. Tail columns use masked loads/stores, which perform the
// same per-element multiply and add as the scalar tail would. See
// docs/api.md "Numeric contract".
#pragma once

#include "nn/kernels_detail.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace ancstr::nn::kdetail::avx512 {

/// Mask selecting the low `rem` (< 8) lanes.
static inline __mmask8 tailMask(std::size_t rem) {
  return static_cast<__mmask8>((1u << rem) - 1u);
}

/// One row's j-loop of gemmAcc: cRow += av * bRow over n columns.
static inline void rowUpdate(double* cRow, const double* bRow, double av,
                             std::size_t n) {
  const __m512d va = _mm512_set1_pd(av);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d vb = _mm512_loadu_pd(bRow + j);
    const __m512d vc = _mm512_loadu_pd(cRow + j);
    _mm512_storeu_pd(cRow + j, _mm512_add_pd(vc, _mm512_mul_pd(va, vb)));
  }
  if (j < n) {
    const __mmask8 mask = tailMask(n - j);
    const __m512d vb = _mm512_maskz_loadu_pd(mask, bRow + j);
    const __m512d vc = _mm512_maskz_loadu_pd(mask, cRow + j);
    _mm512_mask_storeu_pd(cRow + j, mask,
                          _mm512_add_pd(vc, _mm512_mul_pd(va, vb)));
  }
}

/// Narrow-output gemmAcc (n <= 8 * NV): each C row fits NV vectors, so the
/// accumulators live in registers across the whole k loop — loaded from C
/// once, stored once. Per output element this performs the exact same
/// ascending-k add sequence as the load/add/store form (the adds fold into
/// the same running value), so bitwise identity is preserved while the
/// per-k C traffic disappears. The zero-skip stays per (i, k).
template <int NV>
static inline void gemmAccNarrow(const double* a, const double* b, double* c,
                                 std::size_t m, std::size_t k, std::size_t n) {
  __mmask8 masks[NV];
  for (int v = 0; v < NV; ++v) {
    const std::size_t lanes = n - static_cast<std::size_t>(8 * v);
    masks[v] = lanes >= 8 ? static_cast<__mmask8>(0xFF) : tailMask(lanes);
  }
  std::size_t i = 0;
  // 4-row blocks share each B row load: 4 * NV accumulators + NV B vectors
  // stay comfortably inside the 32 zmm registers for NV <= 4.
  for (; i + 4 <= m; i += 4) {
    const double* aRow0 = a + i * k;
    const double* aRow1 = aRow0 + k;
    const double* aRow2 = aRow1 + k;
    const double* aRow3 = aRow2 + k;
    double* cRow0 = c + i * n;
    double* cRow1 = cRow0 + n;
    double* cRow2 = cRow1 + n;
    double* cRow3 = cRow2 + n;
    __m512d acc0[NV], acc1[NV], acc2[NV], acc3[NV];
    for (int v = 0; v < NV; ++v) {
      acc0[v] = _mm512_maskz_loadu_pd(masks[v], cRow0 + 8 * v);
      acc1[v] = _mm512_maskz_loadu_pd(masks[v], cRow1 + 8 * v);
      acc2[v] = _mm512_maskz_loadu_pd(masks[v], cRow2 + 8 * v);
      acc3[v] = _mm512_maskz_loadu_pd(masks[v], cRow3 + 8 * v);
    }
    for (std::size_t p = 0; p < k; ++p) {
      const double a0 = aRow0[p], a1 = aRow1[p];
      const double a2 = aRow2[p], a3 = aRow3[p];
      const double* bRow = b + p * n;
      __m512d vb[NV];
      for (int v = 0; v < NV; ++v) {
        vb[v] = _mm512_maskz_loadu_pd(masks[v], bRow + 8 * v);
      }
      if (a0 != 0.0) {
        const __m512d va = _mm512_set1_pd(a0);
        for (int v = 0; v < NV; ++v) {
          acc0[v] = _mm512_add_pd(acc0[v], _mm512_mul_pd(va, vb[v]));
        }
      }
      if (a1 != 0.0) {
        const __m512d va = _mm512_set1_pd(a1);
        for (int v = 0; v < NV; ++v) {
          acc1[v] = _mm512_add_pd(acc1[v], _mm512_mul_pd(va, vb[v]));
        }
      }
      if (a2 != 0.0) {
        const __m512d va = _mm512_set1_pd(a2);
        for (int v = 0; v < NV; ++v) {
          acc2[v] = _mm512_add_pd(acc2[v], _mm512_mul_pd(va, vb[v]));
        }
      }
      if (a3 != 0.0) {
        const __m512d va = _mm512_set1_pd(a3);
        for (int v = 0; v < NV; ++v) {
          acc3[v] = _mm512_add_pd(acc3[v], _mm512_mul_pd(va, vb[v]));
        }
      }
    }
    for (int v = 0; v < NV; ++v) {
      _mm512_mask_storeu_pd(cRow0 + 8 * v, masks[v], acc0[v]);
      _mm512_mask_storeu_pd(cRow1 + 8 * v, masks[v], acc1[v]);
      _mm512_mask_storeu_pd(cRow2 + 8 * v, masks[v], acc2[v]);
      _mm512_mask_storeu_pd(cRow3 + 8 * v, masks[v], acc3[v]);
    }
  }
  for (; i < m; ++i) {
    const double* aRow = a + i * k;
    double* cRow = c + i * n;
    __m512d acc[NV];
    for (int v = 0; v < NV; ++v) {
      acc[v] = _mm512_maskz_loadu_pd(masks[v], cRow + 8 * v);
    }
    for (std::size_t p = 0; p < k; ++p) {
      const double av = aRow[p];
      if (av == 0.0) continue;
      const __m512d va = _mm512_set1_pd(av);
      const double* bRow = b + p * n;
      for (int v = 0; v < NV; ++v) {
        acc[v] = _mm512_add_pd(
            acc[v],
            _mm512_mul_pd(va, _mm512_maskz_loadu_pd(masks[v], bRow + 8 * v)));
      }
    }
    for (int v = 0; v < NV; ++v) {
      _mm512_mask_storeu_pd(cRow + 8 * v, masks[v], acc[v]);
    }
  }
}

static inline void gemmAcc(const double* a, const double* b, double* c,
                           std::size_t m, std::size_t k, std::size_t n) {
  if (n > 0 && n <= 32) {
    switch ((n + 7) / 8) {
      case 1: gemmAccNarrow<1>(a, b, c, m, k, n); return;
      case 2: gemmAccNarrow<2>(a, b, c, m, k, n); return;
      case 3: gemmAccNarrow<3>(a, b, c, m, k, n); return;
      default: gemmAccNarrow<4>(a, b, c, m, k, n); return;
    }
  }
  std::size_t i = 0;
  // 4-row blocks share each B row load; the zero-skip stays per (i, k).
  for (; i + 4 <= m; i += 4) {
    const double* aRow0 = a + i * k;
    const double* aRow1 = aRow0 + k;
    const double* aRow2 = aRow1 + k;
    const double* aRow3 = aRow2 + k;
    double* cRow0 = c + i * n;
    double* cRow1 = cRow0 + n;
    double* cRow2 = cRow1 + n;
    double* cRow3 = cRow2 + n;
    for (std::size_t p = 0; p < k; ++p) {
      const double a0 = aRow0[p], a1 = aRow1[p];
      const double a2 = aRow2[p], a3 = aRow3[p];
      const double* bRow = b + p * n;
      if (a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0) {
        const __m512d v0 = _mm512_set1_pd(a0);
        const __m512d v1 = _mm512_set1_pd(a1);
        const __m512d v2 = _mm512_set1_pd(a2);
        const __m512d v3 = _mm512_set1_pd(a3);
        std::size_t j = 0;
        for (; j + 8 <= n; j += 8) {
          const __m512d vb = _mm512_loadu_pd(bRow + j);
          _mm512_storeu_pd(cRow0 + j, _mm512_add_pd(_mm512_loadu_pd(cRow0 + j),
                                                    _mm512_mul_pd(v0, vb)));
          _mm512_storeu_pd(cRow1 + j, _mm512_add_pd(_mm512_loadu_pd(cRow1 + j),
                                                    _mm512_mul_pd(v1, vb)));
          _mm512_storeu_pd(cRow2 + j, _mm512_add_pd(_mm512_loadu_pd(cRow2 + j),
                                                    _mm512_mul_pd(v2, vb)));
          _mm512_storeu_pd(cRow3 + j, _mm512_add_pd(_mm512_loadu_pd(cRow3 + j),
                                                    _mm512_mul_pd(v3, vb)));
        }
        if (j < n) {
          const __mmask8 mask = tailMask(n - j);
          const __m512d vb = _mm512_maskz_loadu_pd(mask, bRow + j);
          _mm512_mask_storeu_pd(
              cRow0 + j, mask,
              _mm512_add_pd(_mm512_maskz_loadu_pd(mask, cRow0 + j),
                            _mm512_mul_pd(v0, vb)));
          _mm512_mask_storeu_pd(
              cRow1 + j, mask,
              _mm512_add_pd(_mm512_maskz_loadu_pd(mask, cRow1 + j),
                            _mm512_mul_pd(v1, vb)));
          _mm512_mask_storeu_pd(
              cRow2 + j, mask,
              _mm512_add_pd(_mm512_maskz_loadu_pd(mask, cRow2 + j),
                            _mm512_mul_pd(v2, vb)));
          _mm512_mask_storeu_pd(
              cRow3 + j, mask,
              _mm512_add_pd(_mm512_maskz_loadu_pd(mask, cRow3 + j),
                            _mm512_mul_pd(v3, vb)));
        }
      } else {
        if (a0 != 0.0) rowUpdate(cRow0, bRow, a0, n);
        if (a1 != 0.0) rowUpdate(cRow1, bRow, a1, n);
        if (a2 != 0.0) rowUpdate(cRow2, bRow, a2, n);
        if (a3 != 0.0) rowUpdate(cRow3, bRow, a3, n);
      }
    }
  }
  for (; i < m; ++i) {
    const double* aRow = a + i * k;
    double* cRow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = aRow[p];
      if (av == 0.0) continue;
      rowUpdate(cRow, b + p * n, av, n);
    }
  }
}

static inline void gemmBatchAcc(const double* a, const double* const* bs,
                                double* const* cs, std::size_t count,
                                std::size_t m, std::size_t k, std::size_t n) {
  // Each (t, i, j) output element folds k ascending independently of every
  // other t, so running the whole narrow register-accumulating gemm per
  // target is bitwise identical to the interleaved loop below — and far
  // cheaper, because the per-(i, k, t) C row round-trips disappear.
  if (n > 0 && n <= 32) {
    for (std::size_t t = 0; t < count; ++t) gemmAcc(a, bs[t], cs[t], m, k, n);
    return;
  }
  for (std::size_t i = 0; i < m; ++i) {
    const double* aRow = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = aRow[p];
      if (av == 0.0) continue;
      for (std::size_t t = 0; t < count; ++t) {
        rowUpdate(cs[t] + i * n, bs[t] + p * n, av, n);
      }
    }
  }
}

static inline void gemv(const double* a, const double* x, double* y,
                        std::size_t m, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* aRow = a + i * n;
    // acc holds the 8 contract lanes directly.
    __m512d acc = _mm512_setzero_pd();
    std::size_t p = 0;
    for (; p + 8 <= n; p += 8) {
      acc = _mm512_add_pd(acc, _mm512_mul_pd(_mm512_loadu_pd(aRow + p),
                                             _mm512_loadu_pd(x + p)));
    }
    double lane[8];
    _mm512_storeu_pd(lane, acc);
    for (; p < n; ++p) lane[p & 7] += aRow[p] * x[p];
    // The fixed reduction tree, never _mm512_reduce_add_pd (whose order is
    // unspecified by the contract).
    y[i] = reduceLanes8(lane);
  }
}

static inline void axpy(double* y, const double* x, double s, std::size_t n) {
  const __m512d vs = _mm512_set1_pd(s);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d vy = _mm512_loadu_pd(y + j);
    const __m512d vx = _mm512_loadu_pd(x + j);
    _mm512_storeu_pd(y + j, _mm512_add_pd(vy, _mm512_mul_pd(vs, vx)));
  }
  if (j < n) {
    const __mmask8 mask = tailMask(n - j);
    const __m512d vy = _mm512_maskz_loadu_pd(mask, y + j);
    const __m512d vx = _mm512_maskz_loadu_pd(mask, x + j);
    _mm512_mask_storeu_pd(y + j, mask,
                          _mm512_add_pd(vy, _mm512_mul_pd(vs, vx)));
  }
}

}  // namespace ancstr::nn::kdetail::avx512

#endif  // defined(__AVX512F__)
