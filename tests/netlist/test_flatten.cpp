#include "netlist/flatten.h"

#include <gtest/gtest.h>

#include <set>

#include "netlist/builder.h"

namespace ancstr {
namespace {

Library twoLevelDesign() {
  NetlistBuilder b;
  b.beginSubckt("inv", {"in", "out", "vdd", "vss"});
  b.pmos("mp", "out", "in", "vdd", "vdd", 2e-6, 0.1e-6);
  b.nmos("mn", "out", "in", "vss", "vss", 1e-6, 0.1e-6);
  b.endSubckt();
  b.beginSubckt("buf", {"in", "out", "vdd", "vss"});
  b.inst("xi1", "inv", {"in", "mid", "vdd", "vss"});
  b.inst("xi2", "inv", {"mid", "out", "vdd", "vss"});
  b.endSubckt();
  b.beginSubckt("top", {"a", "b", "vdd", "vss"});
  b.inst("xb1", "buf", {"a", "m1", "vdd", "vss"});
  b.inst("xb2", "buf", {"m1", "b", "vdd", "vss"});
  b.res("rload", "b", "vss", 1e3);
  b.endSubckt();
  return b.build("top");
}

TEST(Flatten, DeviceAndNetCounts) {
  const FlatDesign design = FlatDesign::elaborate(twoLevelDesign());
  EXPECT_EQ(design.devices().size(), 9u);  // 4 invs x 2 + rload
  // nets: a b vdd vss m1 + 2x buf-internal "mid" = 7
  EXPECT_EQ(design.nets().size(), 7u);
}

TEST(Flatten, HierarchyShape) {
  const FlatDesign design = FlatDesign::elaborate(twoLevelDesign());
  const HierNode& root = design.root();
  EXPECT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.leafDevices.size(), 1u);  // rload
  const HierNode& buf1 = design.node(root.children[0]);
  EXPECT_EQ(buf1.path, "xb1");
  EXPECT_EQ(buf1.children.size(), 2u);
  const HierNode& inv = design.node(buf1.children[0]);
  EXPECT_EQ(inv.path, "xb1/xi1");
  EXPECT_EQ(inv.leafDevices.size(), 2u);
}

TEST(Flatten, PathsAreUnique) {
  const FlatDesign design = FlatDesign::elaborate(twoLevelDesign());
  std::set<std::string> paths;
  for (const FlatDevice& dev : design.devices()) {
    EXPECT_TRUE(paths.insert(dev.path).second) << dev.path;
  }
}

TEST(Flatten, PortNetsAliasParentNets) {
  const FlatDesign design = FlatDesign::elaborate(twoLevelDesign());
  // xb1's output and xb2's input must be the same flat net ("m1").
  const FlatDevice* xb2Pmos = nullptr;
  const FlatDevice* xb1Pmos = nullptr;
  for (const FlatDevice& dev : design.devices()) {
    if (dev.path == "xb2/xi1/mp") xb2Pmos = &dev;
    if (dev.path == "xb1/xi2/mp") xb1Pmos = &dev;
  }
  ASSERT_NE(xb2Pmos, nullptr);
  ASSERT_NE(xb1Pmos, nullptr);
  // xb1/xi2 drives net m1 at its drain; xb2/xi1 receives m1 at its gate.
  const FlatNetId driven = xb1Pmos->pins[0].second;   // drain
  const FlatNetId received = xb2Pmos->pins[1].second; // gate
  EXPECT_EQ(driven, received);
  EXPECT_EQ(design.net(driven).path, "m1");
}

TEST(Flatten, NetTerminalsConsistent) {
  const FlatDesign design = FlatDesign::elaborate(twoLevelDesign());
  std::size_t totalTerminals = 0;
  for (const auto& terms : design.netTerminals()) totalTerminals += terms.size();
  std::size_t totalPins = 0;
  for (const FlatDevice& dev : design.devices()) totalPins += dev.pins.size();
  EXPECT_EQ(totalTerminals, totalPins);
  // Every terminal back-references the right device pin.
  for (FlatNetId n = 0; n < design.nets().size(); ++n) {
    for (const auto& [dev, pin] : design.netTerminals()[n]) {
      EXPECT_EQ(design.device(dev).pins[pin].second, n);
    }
  }
}

TEST(Flatten, SubtreeDevices) {
  const FlatDesign design = FlatDesign::elaborate(twoLevelDesign());
  EXPECT_EQ(design.subtreeDevices(0).size(), 9u);
  const HierNodeId buf1 = design.root().children[0];
  EXPECT_EQ(design.subtreeDevices(buf1).size(), 4u);
  EXPECT_EQ(design.subtreeDeviceCount(buf1), 4u);
}

TEST(Flatten, MaxSubcircuitSize) {
  const FlatDesign design = FlatDesign::elaborate(twoLevelDesign());
  EXPECT_EQ(design.maxSubcircuitSize(), 4u);  // each buf holds 4 devices
}

TEST(Flatten, CountsMatchLibraryPredictions) {
  const Library lib = twoLevelDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  EXPECT_EQ(design.devices().size(), lib.flatDeviceCount());
  EXPECT_EQ(design.nets().size(), lib.flatNetCount());
}

}  // namespace
}  // namespace ancstr
