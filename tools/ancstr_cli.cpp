// ancstr_cli — command-line front end for the symmetry-extraction flow.
//
//   ancstr_cli train   --out model.txt [--epochs N] [--seed S] netlist.sp...
//   ancstr_cli extract --model model.txt [--format json|sym|align]
//                      [--out file] [--groups] netlist.sp
//   ancstr_cli extract --model model.txt --since BASELINE
//                      [--manifest-out FILE] netlist.sp
//                      # incremental (ECO) extraction: BASELINE is the
//                      # prior netlist OR a manifest saved with
//                      # --manifest-out; the delta is served from the
//                      # engine caches and is bitwise-identical to a
//                      # full extract (core/engine.h extractDelta)
//   ancstr_cli extract --model model.txt --batch DIR [--repeat N]
//                      [--out-dir DIR] [--cache-budget BYTES]
//                      [--cache-dir DIR]
//                      # warm-model batch serving (core/engine.h): every
//                      # .sp/.scs netlist in DIR, extracted concurrently
//                      # (--threads) with content-addressed caching;
//                      # --cache-dir adds the crash-safe persistent tier
//                      # (util/disk_cache.h) so a rerun starts warm
//   ancstr_cli stats   netlist.sp...
//   ancstr_cli eval    [--epochs N] [--seed S]
//                      # train on the built-in benchmark corpus and report
//                      # TPR/FPR per constraint type (symmetry pairs by
//                      # level, current mirrors) against generator ground
//                      # truth
//   ancstr_cli corpus  --dir DIR     # emit the benchmark corpus + golden
//                                    # constraint files
//
// train and extract additionally take the observability flags
// (docs/observability.md):
//   --threads N        worker count (0 = hardware_concurrency)
//   --kernel K         nn kernel backend: auto|scalar|avx2|avx512
//                      (nn/kernels.h; ANCSTR_KERNEL overrides; results
//                      are bitwise identical across backends)
//   --trace-out FILE   Chrome/Perfetto trace of the run
//   --spans-out FILE   span-tree JSON (scripts/analyze_trace.py input)
//   --metrics-out FILE metrics delta of the run
//   --metrics-format json|prom   format for --metrics-out
//   --report json|table  run report (phases + metrics) on stderr
//   --bench-out FILE   single-case BENCH.json of the run
//                      (same schema as the bench binaries' --json-out)
//   --log-level L      structured-log threshold (debug|info|warn|error|off)
//   --log-json         render stderr log lines as JSON instead of text
//   --log-out FILE     JSON-lines log file sink (append mode)
// extract additionally takes:
//   --ledger-out FILE  per-request run ledger, one wide-event JSON line
//                      per extracted design (docs/observability.md,
//                      "Run ledger"; validate with scripts/check_ledger.py,
//                      summarize with scripts/analyze_ledger.py)
//
// Exit codes: 0 success, 1 usage error, 2 runtime failure.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/benchmark.h"
#include "core/constraint_check.h"
#include "core/constraint_io.h"
#include "core/engine.h"
#include "core/groups.h"
#include "core/library_diff.h"
#include "core/pipeline.h"
#include "eval/ground_truth.h"
#include "netlist/manifest.h"
#include "netlist/spectre_parser.h"
#include "netlist/spice_parser.h"
#include "netlist/spice_writer.h"
#include "nn/kernels.h"
#include "util/bench_report.h"
#include "util/diagnostics.h"
#include "util/error.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/resource.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

using namespace ancstr;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ancstr_cli train   --out MODEL [--epochs N] [--seed S] "
               "NETLIST...\n"
               "  ancstr_cli extract --model MODEL [--format json|sym|align] "
               "[--out FILE] [--groups] [--fail-soft]\n"
               "                     [--since BASELINE] [--manifest-out FILE] "
               "[--cache-dir DIR] NETLIST\n"
               "  ancstr_cli extract --model MODEL --batch DIR [--repeat N] "
               "[--out-dir DIR] [--cache-budget BYTES]\n"
               "                     [--cache-dir DIR] [--fail-soft]\n"
               "  ancstr_cli stats   [--fail-soft] NETLIST...\n"
               "  ancstr_cli check   --constraints FILE NETLIST\n"
               "  ancstr_cli eval    [--epochs N] [--seed S]\n"
               "  ancstr_cli corpus  --dir DIR\n"
               "train/extract also take: [--threads N]\n"
               "  [--kernel auto|scalar|avx2|avx512] [--trace-out FILE]\n"
               "  [--spans-out FILE] [--metrics-out FILE]\n"
               "  [--metrics-format json|prom] [--report json|table]\n"
               "  [--bench-out FILE] [--log-level debug|info|warn|error|off]\n"
               "  [--log-json] [--log-out FILE]\n"
               "extract also takes: [--ledger-out FILE] (per-request run\n"
               "  ledger, one JSON line per design)\n"
               "extract/stats also take: [--fail-soft] (recover from\n"
               "  malformed input with diagnostics instead of aborting)\n"
               "netlists may be SPICE or Spectre (auto-detected)\n");
  return 1;
}

/// Tiny flag scanner: removes recognised "--key value" / "--flag" pairs
/// from `args` and returns positional arguments.
class Flags {
 public:
  explicit Flags(std::vector<std::string> args) : args_(std::move(args)) {}

  std::string value(const std::string& key, const std::string& fallback) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == key) {
        const std::string v = args_[i + 1];
        args_.erase(args_.begin() + static_cast<long>(i),
                    args_.begin() + static_cast<long>(i) + 2);
        return v;
      }
    }
    return fallback;
  }

  bool flag(const std::string& key) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == key) {
        args_.erase(args_.begin() + static_cast<long>(i));
        return true;
      }
    }
    return false;
  }

  const std::vector<std::string>& positional() const { return args_; }

 private:
  std::vector<std::string> args_;
};

void writeFileOrThrow(const std::filesystem::path& path,
                      const std::string& content) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path.string() + "' for writing");
  out << content;
  if (!out) throw Error("write failure on '" + path.string() + "'");
}

/// Shared observability flags for train/extract. Parsing them enables the
/// trace collector before any netlist is read, so parse spans are captured.
struct ObserveOptions {
  std::filesystem::path traceOut;
  std::filesystem::path spansOut;
  std::filesystem::path metricsOut;
  std::filesystem::path benchOut;
  std::string metricsFormat = "json";  ///< "json" or "prom"
  std::string report;                  ///< "", "json", or "table"
  std::size_t threads = 1;
  nn::KernelKind kernel = nn::KernelKind::kAuto;  ///< --kernel backend
  bool logFlagsOk = true;              ///< --log-level parsed cleanly
  bool kernelFlagOk = true;            ///< --kernel parsed cleanly
  Stopwatch wall;                      ///< runs from parse() to emit()
  util::ResourceSample resourceStart;  ///< resources at parse()

  static ObserveOptions parse(Flags& flags) {
    ObserveOptions opts;
    opts.traceOut = flags.value("--trace-out", "");
    opts.spansOut = flags.value("--spans-out", "");
    opts.metricsOut = flags.value("--metrics-out", "");
    opts.benchOut = flags.value("--bench-out", "");
    opts.metricsFormat = flags.value("--metrics-format", "json");
    opts.report = flags.value("--report", "");
    opts.threads =
        static_cast<std::size_t>(std::stoul(flags.value("--threads", "1")));
    if (const auto parsed =
            nn::parseKernelKind(flags.value("--kernel", "auto"))) {
      opts.kernel = *parsed;
      nn::selectKernel(opts.kernel);
    } else {
      opts.kernelFlagOk = false;
    }
    if (!opts.traceOut.empty() || !opts.spansOut.empty()) {
      trace::TraceCollector::instance().setEnabled(true);
    }
    const std::string logLevel = flags.value("--log-level", "");
    const bool logJson = flags.flag("--log-json");
    const std::filesystem::path logOut = flags.value("--log-out", "");
    if (!logLevel.empty() || logJson || !logOut.empty()) {
      log::LoggerConfig logConfig = log::Logger::instance().config();
      if (!logLevel.empty()) {
        if (const auto parsed = log::parseLevel(logLevel)) {
          logConfig.minLevel = *parsed;
        } else {
          opts.logFlagsOk = false;
        }
      }
      if (logJson) logConfig.format = log::Format::kJson;
      if (!logOut.empty()) logConfig.filePath = logOut;
      if (opts.logFlagsOk) log::Logger::instance().configure(logConfig);
    }
    opts.resourceStart = util::ResourceSample::now();
    return opts;
  }

  bool validReport() const {
    const bool reportOk =
        report.empty() || report == "json" || report == "table";
    return logFlagsOk && kernelFlagOk && reportOk &&
           (metricsFormat == "json" || metricsFormat == "prom");
  }

  /// Emits the report/metrics/trace/bench artefacts after the run. The
  /// run report goes to stderr so stdout stays reserved for constraint
  /// payloads.
  void emit(const RunReport& report_, const std::string& benchCase) const {
    if (report == "json") {
      std::fputs((report_.toJson().dump(2) + "\n").c_str(), stderr);
    } else if (report == "table") {
      std::fputs(report_.toTable().c_str(), stderr);
    }
    if (!metricsOut.empty()) {
      writeFileOrThrow(metricsOut,
                       metricsFormat == "prom"
                           ? report_.metrics.toPrometheus()
                           : report_.metrics.toJson().dump(2) + "\n");
    }
    if (!traceOut.empty()) {
      trace::TraceCollector::instance().writeFile(traceOut);
    }
    if (!spansOut.empty()) {
      trace::TraceCollector::instance().writeSpanTreeFile(spansOut);
    }
    if (!benchOut.empty()) {
      benchio::BenchRunInfo info;
      info.binary = "ancstr_cli";
      info.threads = util::resolveThreadCount(threads);
      benchio::BenchCaseResult result;
      result.name = benchCase;
      result.reps = 1;
      result.warmup = 0;
      result.wallSeconds.push_back(wall.seconds());
      result.report = report_;
      result.resource = util::ResourceSample::now().since(resourceStart);
      benchio::writeBenchJson(benchOut, info, {result});
    }
  }
};

int cmdTrain(Flags flags) {
  ObserveOptions observe = ObserveOptions::parse(flags);
  const std::filesystem::path out = flags.value("--out", "");
  const int epochs = std::stoi(flags.value("--epochs", "60"));
  const std::uint64_t seed = std::stoull(flags.value("--seed", "42"));
  if (out.empty() || flags.positional().empty() || !observe.validReport()) {
    return usage();
  }

  std::vector<Library> libs;
  for (const std::string& path : flags.positional()) {
    libs.push_back(parseNetlistFile(path));
    std::printf("loaded %s (%zu devices)\n", path.c_str(),
                libs.back().flatDeviceCount());
  }
  PipelineConfig config;
  config.train.epochs = epochs;
  config.seed = seed;
  config.threads = observe.threads;
  Pipeline pipeline(config);
  std::vector<const Library*> ptrs;
  for (const Library& lib : libs) ptrs.push_back(&lib);
  const TrainReport report = pipeline.train(ptrs);
  pipeline.saveModel(out);
  std::printf("trained %d epochs in %.2fs (final loss %.4f); model -> %s\n",
              epochs, report.report.phaseSeconds("train.loop"),
              report.finalLoss(), out.string().c_str());
  observe.emit(report.report, "cli.train");
  return 0;
}

/// `extract --batch DIR`: warm-model serving of every netlist in DIR
/// through one ExtractionEngine. --repeat re-extracts the whole batch
/// (later passes hit the content-addressed caches); --threads is the
/// batch-level fan-out. Per-design constraint files land in --out-dir.
int cmdExtractBatch(Flags flags, ObserveOptions observe,
                    const std::filesystem::path& modelPath,
                    const std::filesystem::path& batchDir) {
  const std::string format = flags.value("--format", "json");
  const std::filesystem::path outDir = flags.value("--out-dir", "");
  const int repeat = std::stoi(flags.value("--repeat", "1"));
  const std::size_t cacheBudget = static_cast<std::size_t>(
      std::stoull(flags.value("--cache-budget", "67108864")));
  const std::filesystem::path cacheDir = flags.value("--cache-dir", "");
  const std::filesystem::path ledgerOut = flags.value("--ledger-out", "");
  const bool failSoft = flags.flag("--fail-soft");
  if (!flags.positional().empty() || repeat < 1 || !observe.validReport() ||
      (format != "json" && format != "sym" && format != "align")) {
    return usage();
  }

  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(batchDir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".sp" || ext == ".cir" || ext == ".spice" || ext == ".scs") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    throw Error("--batch directory holds no netlists: " + batchDir.string());
  }

  diag::DiagnosticSink sink;  // collect mode; used only with --fail-soft
  std::vector<Library> libs;
  libs.reserve(paths.size());
  for (const std::filesystem::path& path : paths) {
    if (failSoft) {
      diag::Parsed<Library> parsed = parseNetlistFileRecovering(path);
      for (const diag::Diagnostic& d : parsed.diagnostics) sink.report(d);
      libs.push_back(std::move(parsed.value));
    } else {
      libs.push_back(parseNetlistFile(path));
    }
  }

  PipelineConfig config;  // per-design work stays serial; the engine fans out
  Pipeline pipeline(config);
  pipeline.loadModel(modelPath);
  EngineConfig engineConfig;
  engineConfig.cacheBudgetBytes = cacheBudget;
  engineConfig.threads = observe.threads;
  engineConfig.cachePath = cacheDir;
  engineConfig.ledgerPath = ledgerOut;
  const ExtractionEngine engine(pipeline, engineConfig);

  std::vector<const Library*> ptrs;
  ptrs.reserve(libs.size());
  for (const Library& lib : libs) ptrs.push_back(&lib);

  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  RunReport batchReport;
  std::vector<ExtractionResult> results;
  for (int rep = 0; rep < repeat; ++rep) {
    RunReport repReport;
    results = engine.extractBatch(
        ptrs, ExtractOptions{failSoft ? &sink : nullptr}, &repReport);
    batchReport.accumulate(repReport);
  }
  // accumulate() keeps only the last rep's metrics; the batch report wants
  // the delta over every rep.
  batchReport.metrics = metrics::Registry::instance().snapshot().since(before);

  if (!outDir.empty()) std::filesystem::create_directories(outDir);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExtractionResult& result = results[i];
    std::fprintf(stderr, "%s: %zu constraints (%zu candidates)\n",
                 paths[i].filename().string().c_str(),
                 result.detection.set.size(), result.detection.scored.size());
    if (outDir.empty()) continue;
    diag::DiagnosticSink designSink;  // elaboration diags already reported
    const FlatDesign design = failSoft
                                  ? FlatDesign::elaborate(libs[i], designSink)
                                  : FlatDesign::elaborate(libs[i]);
    const std::string text =
        format == "sym" ? constraintSetToSym(design, result.detection.set)
        : format == "align"
            ? constraintSetToAlignJson(design, result.detection.set)
            : constraintSetToJson(design, result.detection.set);
    const std::filesystem::path out =
        outDir /
        (paths[i].stem().string() + (format == "sym" ? ".sym" : ".json"));
    writeFileOrThrow(out, text);
  }

  const EngineCacheStats cache = engine.cacheStats();
  std::fprintf(
      stderr,
      "cache: design %llu hit / %llu miss / %llu evict (%zu bytes), "
      "blocks %llu hit / %llu miss / %llu evict (%zu bytes)\n",
      static_cast<unsigned long long>(cache.design.hits),
      static_cast<unsigned long long>(cache.design.misses),
      static_cast<unsigned long long>(cache.design.evictions),
      cache.design.bytes,
      static_cast<unsigned long long>(cache.blocks.hits),
      static_cast<unsigned long long>(cache.blocks.misses),
      static_cast<unsigned long long>(cache.blocks.evictions),
      cache.blocks.bytes);
  if (!cacheDir.empty()) {
    // Make the entries durable before reporting: a rerun over this
    // directory (or a crash-recovery check) must observe them.
    engine.flushDiskWrites();
    const util::DiskCacheStats disk = engine.diskCacheStats();
    std::fprintf(
        stderr,
        "disk cache: %llu hit / %llu miss / %llu corrupt, %llu writes "
        "(%zu entries, %zu bytes)%s\n",
        static_cast<unsigned long long>(disk.hits),
        static_cast<unsigned long long>(disk.misses),
        static_cast<unsigned long long>(disk.corrupt),
        static_cast<unsigned long long>(disk.writes), disk.entries,
        disk.bytes, disk.enabled ? "" : " [disabled]");
  }
  if (!ledgerOut.empty()) {
    // Make pending write-behind appends durable before reporting, so a
    // validator run right after this command sees every record.
    engine.flushLedger();
    const ledger::LedgerStats stats = engine.ledgerStats();
    std::fprintf(stderr, "ledger: %llu records -> %s%s\n",
                 static_cast<unsigned long long>(stats.appended),
                 ledgerOut.string().c_str(),
                 stats.enabled ? "" : " [disabled]");
  }
  if (failSoft) {
    batchReport.diagnostics = sink.snapshot();
    for (const diag::Diagnostic& d : batchReport.diagnostics) {
      std::fprintf(stderr, "%s\n", d.str().c_str());
    }
  }
  observe.emit(batchReport, "cli.extract_batch");
  return 0;
}

/// True when `path` begins with the manifest magic — the sniff that lets
/// `--since` take either a prior netlist or a saved hash manifest.
bool looksLikeManifest(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return false;
  return line.rfind("ancstr-manifest", 0) == 0;
}

/// Delta summary on stderr: what changed, what is provably reusable, and
/// how much of the clean cone was actually served from the caches.
void printDeltaSummary(const DeltaReport& delta) {
  const LibraryDiff& diff = delta.diff;
  std::fprintf(stderr,
               "delta: %zu/%zu masters changed, %zu dirty / %zu clean "
               "nodes, %zu/%zu devices reusable%s\n",
               diff.changedMasters(), diff.masters.size(), diff.dirtyNodes,
               diff.cleanNodes, diff.reusableDevices,
               diff.reusableDevices + diff.dirtyDevices,
               diff.identical() ? " (identity edit)" : "");
  for (const MasterDelta& master : diff.masters) {
    if (master.change == MasterChange::kUnchanged) continue;
    std::fprintf(stderr, "delta:   %-8s %s\n", toString(master.change),
                 master.name.c_str());
  }
  std::fprintf(stderr,
               "delta: reuse design %llu hit, blocks %llu hit / %llu miss, "
               "pairs %llu hit / %llu miss\n",
               static_cast<unsigned long long>(delta.reuse.design.hits),
               static_cast<unsigned long long>(delta.reuse.blocks.hits),
               static_cast<unsigned long long>(delta.reuse.blocks.misses),
               static_cast<unsigned long long>(delta.reuse.pairs.hits),
               static_cast<unsigned long long>(delta.reuse.pairs.misses));
}

int cmdExtract(Flags flags) {
  ObserveOptions observe = ObserveOptions::parse(flags);
  const std::filesystem::path modelPath = flags.value("--model", "");
  const std::filesystem::path batchDir = flags.value("--batch", "");
  if (!batchDir.empty()) {
    if (modelPath.empty()) return usage();
    return cmdExtractBatch(std::move(flags), std::move(observe), modelPath,
                           batchDir);
  }
  const std::string format = flags.value("--format", "json");
  const std::filesystem::path outPath = flags.value("--out", "");
  const std::filesystem::path sincePath = flags.value("--since", "");
  const std::filesystem::path cacheDir = flags.value("--cache-dir", "");
  const std::filesystem::path ledgerOut = flags.value("--ledger-out", "");
  const std::filesystem::path manifestOutPath =
      flags.value("--manifest-out", "");
  const bool withGroups = flags.flag("--groups");
  const bool withArrays = flags.flag("--arrays");
  const bool failSoft = flags.flag("--fail-soft");
  if (modelPath.empty() || flags.positional().size() != 1 ||
      !observe.validReport()) {
    return usage();
  }
  if (format != "json" && format != "sym" && format != "align") {
    return usage();
  }

  diag::DiagnosticSink sink;  // collect mode; used only with --fail-soft
  Library lib;
  if (failSoft) {
    diag::Parsed<Library> parsed =
        parseNetlistFileRecovering(flags.positional()[0]);
    for (const diag::Diagnostic& d : parsed.diagnostics) sink.report(d);
    lib = std::move(parsed.value);
  } else {
    lib = parseNetlistFile(flags.positional()[0]);
  }
  PipelineConfig config;
  config.threads = observe.threads;
  Pipeline pipeline(config);
  pipeline.loadModel(modelPath);
  ExtractOptions extractOptions;
  extractOptions.sink = failSoft ? &sink : nullptr;
  EngineConfig engineConfig;
  engineConfig.cachePath = cacheDir;
  engineConfig.ledgerPath = ledgerOut;
  ExtractionResult result;
  if (sincePath.empty()) {
    if (cacheDir.empty() && ledgerOut.empty()) {
      result = pipeline.extract(lib, extractOptions);
    } else {
      // Persistent tier or ledger requested: route through the engine so
      // the design-inference and block-embedding artifacts are written
      // through to --cache-dir (and served from it on the next run) and
      // the request gets its run-ledger record.
      const ExtractionEngine engine(pipeline, engineConfig);
      result = engine.extract(lib, extractOptions);
      engine.flushDiskWrites();
      engine.flushLedger();
    }
  } else if (looksLikeManifest(sincePath)) {
    // Manifest baseline: hashes only, so there is nothing to warm the
    // caches from — the value is the change report; the extraction runs
    // the engine's plain (bitwise-equivalent) path. The baseline is
    // fail-soft: an unreadable manifest falls back to a full extract.
    const ExtractionEngine engine(pipeline, engineConfig);
    DeltaReport delta;
    try {
      const DesignManifest baseline = loadManifest(sincePath);
      delta.diff = diffManifest(baseline, lib, config.graph, config.features);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "note: baseline manifest unusable (%s); running full "
                   "extract\n",
                   e.what());
    }
    result = engine.extract(lib, extractOptions);
    printDeltaSummary(delta);
  } else {
    // Netlist baseline: extractDelta warms the caches from the old
    // version, then serves the clean cone of the edit from them. A
    // baseline that fails to parse degrades to a full extract — the old
    // version must never make the new one unextractable.
    const ExtractionEngine engine(pipeline, engineConfig);
    DeltaReport delta;
    Library oldLib;
    try {
      oldLib = parseNetlistFile(sincePath);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "note: baseline netlist unusable (%s); running full "
                   "extract\n",
                   e.what());
    }
    result = engine.extractDelta(oldLib, lib, extractOptions, &delta);
    printDeltaSummary(delta);
  }
  if (!manifestOutPath.empty()) {
    saveManifest(buildManifest(lib, config.graph, config.features),
                 manifestOutPath);
    std::fprintf(stderr, "manifest -> %s\n",
                 manifestOutPath.string().c_str());
  }
  // extract() already reported elaboration problems into `sink`; use a
  // throwaway sink here so they are not duplicated.
  diag::DiagnosticSink designSink;
  const FlatDesign design = failSoft ? FlatDesign::elaborate(lib, designSink)
                                     : FlatDesign::elaborate(lib);

  ConstraintSet set = result.detection.set;
  if (withGroups) appendSymmetryGroups(design, set);
  std::vector<ArrayGroup> arrays;
  if (withArrays) arrays = detectArrayGroups(design, result.embeddings);

  const std::string text =
      format == "sym"     ? constraintSetToSym(design, set)
      : format == "align" ? constraintSetToAlignJson(design, set)
                          : constraintSetToJson(design, set, arrays);
  if (outPath.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    writeFileOrThrow(outPath, text);
  }
  std::fprintf(stderr,
               "extracted %zu constraints (%zu candidates) in %.3fs\n",
               set.size(), result.detection.scored.size(),
               result.report.totalSeconds());
  if (failSoft) {
    // The emitted report carries everything (parse + elaborate + extract).
    result.report.diagnostics = sink.snapshot();
    for (const diag::Diagnostic& d : result.report.diagnostics) {
      std::fprintf(stderr, "%s\n", d.str().c_str());
    }
  }
  observe.emit(result.report, "cli.extract");
  return 0;
}

int cmdStats(Flags flags) {
  const bool failSoft = flags.flag("--fail-soft");
  if (flags.positional().empty()) return usage();
  for (const std::string& path : flags.positional()) {
    diag::DiagnosticSink sink;  // collect mode; used only with --fail-soft
    Library lib;
    if (failSoft) {
      diag::Parsed<Library> parsed = parseNetlistFileRecovering(path);
      for (const diag::Diagnostic& d : parsed.diagnostics) sink.report(d);
      lib = std::move(parsed.value);
    } else {
      lib = parseNetlistFile(path);
    }
    const FlatDesign design = failSoft ? FlatDesign::elaborate(lib, sink)
                                       : FlatDesign::elaborate(lib);
    const CandidateSet candidates = enumerateCandidates(design, lib);
    std::printf(
        "%s: %zu subckts, %zu devices, %zu nets, %zu hierarchy nodes, "
        "%zu valid pairs (%zu system / %zu device)\n",
        path.c_str(), lib.subcktCount(), design.devices().size(),
        design.nets().size(), design.hierarchy().size(),
        candidates.pairs.size(), candidates.count(ConstraintLevel::kSystem),
        candidates.count(ConstraintLevel::kDevice));
    for (const diag::Diagnostic& d : sink.snapshot()) {
      std::fprintf(stderr, "%s\n", d.str().c_str());
    }
  }
  return 0;
}

int cmdCheck(Flags flags) {
  const std::filesystem::path constraintPath =
      flags.value("--constraints", "");
  if (constraintPath.empty() || flags.positional().size() != 1) {
    return usage();
  }
  const Library lib = parseNetlistFile(flags.positional()[0]);
  const FlatDesign design = FlatDesign::elaborate(lib);

  const std::vector<ParsedConstraint> parsed =
      parseConstraintsFile(constraintPath);

  const auto issues = checkConstraints(design, lib, parsed);
  for (const ConstraintIssue& issue : issues) {
    std::fprintf(stderr, "constraint %zu: %s\n", issue.index,
                 issue.message.c_str());
  }
  std::printf("%zu constraints, %zu issues\n", parsed.size(), issues.size());
  return issues.empty() ? 0 : 2;
}

/// `eval`: trains on the built-in corpus and reports TPR/FPR per
/// constraint type. Symmetry-pair rows are split by level; the
/// current-mirror row scores DetectionResult::mirrorScored (topology
/// candidates) against the generators' kCurrentMirror ground truth. The
/// per-type counts are also published as eval.<type>.{tp,fp,fn,tn}
/// counters so they land in the RunReport / --metrics-out payloads.
int cmdEval(Flags flags) {
  ObserveOptions observe = ObserveOptions::parse(flags);
  const int epochs = std::stoi(flags.value("--epochs", "40"));
  const std::uint64_t seed = std::stoull(flags.value("--seed", "7"));
  if (!flags.positional().empty() || !observe.validReport()) return usage();

  std::vector<circuits::CircuitBenchmark> corpus =
      circuits::blockBenchmarks();
  for (circuits::CircuitBenchmark& bench : circuits::adcBenchmarks()) {
    corpus.push_back(std::move(bench));
  }

  PipelineConfig config;
  config.train.epochs = epochs;
  config.seed = seed;
  config.threads = observe.threads;
  Pipeline pipeline(config);
  std::vector<const Library*> ptrs;
  ptrs.reserve(corpus.size());
  for (const circuits::CircuitBenchmark& bench : corpus) {
    ptrs.push_back(&bench.lib);
  }
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  pipeline.train(ptrs);

  ConfusionCounts device;
  ConfusionCounts system;
  ConfusionCounts mirror;
  RunReport evalReport;
  for (const circuits::CircuitBenchmark& bench : corpus) {
    const ExtractionResult result = pipeline.extract(bench.lib);
    const FlatDesign design = FlatDesign::elaborate(bench.lib);
    const std::vector<bool> labels =
        labelCandidates(design, result.detection.scored, bench.truth);
    device += confusionFromScored(result.detection.scored, labels,
                                  ConstraintLevel::kDevice);
    system += confusionFromScored(result.detection.scored, labels,
                                  ConstraintLevel::kSystem);
    const std::vector<bool> mirrorLabels = labelMirrorCandidates(
        design, result.detection.mirrorScored, bench.truth);
    mirror += confusionFromScored(result.detection.mirrorScored, mirrorLabels);
    evalReport.accumulate(result.report);
  }

  const auto row = [](const char* name, const ConfusionCounts& counts) {
    const Metrics m = computeMetrics(counts);
    std::printf("%-22s %5zu %5zu %5zu %7zu  %6.4f %6.4f %6.4f\n", name,
                counts.tp, counts.fp, counts.fn, counts.tn, m.tpr, m.fpr,
                m.f1);
    const std::string prefix = std::string("eval.") + name + ".";
    metrics::Registry& reg = metrics::Registry::instance();
    reg.counter(prefix + "tp").add(counts.tp);
    reg.counter(prefix + "fp").add(counts.fp);
    reg.counter(prefix + "fn").add(counts.fn);
    reg.counter(prefix + "tn").add(counts.tn);
  };
  std::printf("%-22s %5s %5s %5s %7s  %6s %6s %6s\n", "constraint type",
              "tp", "fp", "fn", "tn", "tpr", "fpr", "f1");
  row("symmetry_pair.device", device);
  row("symmetry_pair.system", system);
  row("current_mirror", mirror);

  evalReport.metrics = metrics::Registry::instance().snapshot().since(before);
  observe.emit(evalReport, "cli.eval");
  return 0;
}

int cmdCorpus(Flags flags) {
  const std::filesystem::path dir = flags.value("--dir", "");
  if (dir.empty()) return usage();
  std::filesystem::create_directories(dir);

  auto emit = [&](const circuits::CircuitBenchmark& bench) {
    const std::string stem = (dir / bench.name).string();
    writeSpiceFile(bench.lib, stem + ".sp");
    std::string golden = "# golden symmetry constraints for " + bench.name +
                         "\n";
    for (const auto& entry : bench.truth.entries()) {
      golden += (entry.hierPath.empty() ? "." : entry.hierPath) + " " +
                entry.nameA + " " + entry.nameB + "\n";
    }
    writeFileOrThrow(stem + ".sym", golden);
    std::printf("wrote %s.sp / %s.sym\n", stem.c_str(), stem.c_str());
  };
  for (const auto& bench : circuits::blockBenchmarks()) emit(bench);
  for (const auto& bench : circuits::adcBenchmarks()) emit(bench);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  Flags flags(std::vector<std::string>(argv + 2, argv + argc));
  try {
    if (command == "train") return cmdTrain(std::move(flags));
    if (command == "extract") return cmdExtract(std::move(flags));
    if (command == "stats") return cmdStats(std::move(flags));
    if (command == "check") return cmdCheck(std::move(flags));
    if (command == "eval") return cmdEval(std::move(flags));
    if (command == "corpus") return cmdCorpus(std::move(flags));
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
