// Layout demo: extract symmetry constraints from an OTA, feed them to the
// constraint-driven place-and-route substrate, and write SVG layouts with
// and without the constraints — a miniature of the paper's Fig. 1.
//
// Usage: layout_demo [output-dir]   (default: current directory)
#include <cstdio>
#include <string>

#include "core/pipeline.h"
#include "netlist/spice_parser.h"
#include "place/pnr.h"
#include "place/svg.h"

using namespace ancstr;

constexpr const char* kOtaNetlist = R"(
* fully differential OTA with resistor loads
.subckt ota vinp vinn voutp voutn vbn vdd vss
m1 voutn vinp tail vss nch_lvt w=4u l=0.2u nf=2
m2 voutp vinn tail vss nch_lvt w=4u l=0.2u nf=2
mt tail vbn vss vss nch w=8u l=0.4u
r1 voutn vdd 5k rppoly
r2 voutp vdd 5k rppoly
c1 voutn vss 60f cfmom layers=4
c2 voutp vss 60f cfmom layers=4
mb vbn vbn vss vss nch w=2u l=0.4u
.ends ota
)";

int main(int argc, char** argv) {
  const std::string outDir = argc > 1 ? argv[1] : ".";

  const Library lib = parseSpice(kOtaNetlist, "ota.sp");
  Pipeline pipeline;
  pipeline.train({&lib});
  const ExtractionResult extraction = pipeline.extract(lib);
  const FlatDesign design = FlatDesign::elaborate(lib);

  // Build the placement problem and inject the extracted constraints.
  place::PlacementProblem problem = place::buildPlacementProblem(design, 0);
  auto indexOf = [&](const std::string& name) -> int {
    for (std::size_t i = 0; i < problem.cells.size(); ++i) {
      if (problem.cells[i].name == name) return static_cast<int>(i);
    }
    return -1;
  };
  for (const Constraint* c :
       extraction.detection.set.ofType(ConstraintType::kSymmetryPair)) {
    const int a = indexOf(c->members[0].name);
    const int b = indexOf(c->members[1].name);
    if (a >= 0 && b >= 0) {
      problem.symmetricPairs.emplace_back(static_cast<std::size_t>(a),
                                          static_cast<std::size_t>(b));
      std::printf("constraint: (%s, %s) sim=%.4f\n",
                  c->members[0].name.c_str(), c->members[1].name.c_str(),
                  c->score);
    }
  }

  place::PnrOptions options;
  options.anneal.iterations = 15000;
  const place::PnrResult constrained = place::placeAndRoute(problem, options);
  place::writeSvgFile(problem, constrained.placement.solution,
                      outDir + "/ota_constrained.svg");

  place::PlacementProblem freeProblem = problem;
  freeProblem.symmetricPairs.clear();
  const place::PnrResult unconstrained =
      place::placeAndRoute(freeProblem, options);
  place::writeSvgFile(problem, unconstrained.placement.solution,
                      outDir + "/ota_unconstrained.svg");

  std::printf(
      "\nconstrained:   HPWL %.1f, routed WL %zu, asymmetry %.3f -> %s\n",
      constrained.placement.wirelength, constrained.routing.wirelength,
      place::symmetryViolation(problem, constrained.placement.solution),
      (outDir + "/ota_constrained.svg").c_str());
  std::printf(
      "unconstrained: HPWL %.1f, routed WL %zu, asymmetry %.3f -> %s\n",
      unconstrained.placement.wirelength, unconstrained.routing.wirelength,
      place::symmetryViolation(problem, unconstrained.placement.solution),
      (outDir + "/ota_unconstrained.svg").c_str());
  return 0;
}
