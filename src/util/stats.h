// Small statistics helpers shared by the baselines and evaluation code.
#pragma once

#include <vector>

namespace ancstr {

/// Two-sample Kolmogorov-Smirnov statistic: sup_x |F_a(x) - F_b(x)| over
/// the empirical CDFs. Inputs need not be sorted. Returns 1.0 when either
/// sample is empty and the other is not; 0.0 when both are empty.
double ksStatistic(std::vector<double> a, std::vector<double> b);

/// Arithmetic mean (0 for empty input).
double mean(const std::vector<double>& xs);

/// Population standard deviation (0 for fewer than 2 samples).
double stddev(const std::vector<double>& xs);

/// Median (0 for empty input; mean of the two middle values for even n).
double median(std::vector<double> xs);

/// Median absolute deviation about the median (0 for fewer than 2
/// samples). The robust spread estimator the bench harness reports next
/// to the median wall time.
double medianAbsDeviation(const std::vector<double>& xs);

}  // namespace ancstr
