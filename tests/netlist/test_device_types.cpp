#include "netlist/device_types.h"

#include <gtest/gtest.h>

namespace ancstr {
namespace {

TEST(DeviceTypes, PredicatesPartitionTheTaxonomy) {
  for (int i = 0; i <= static_cast<int>(DeviceType::kUnknown); ++i) {
    const auto t = static_cast<DeviceType>(i);
    int classes = 0;
    if (isMos(t)) ++classes;
    if (isPassive(t)) ++classes;
    if (isBipolar(t)) ++classes;
    if (t == DeviceType::kDio) ++classes;
    if (t == DeviceType::kUnknown) ++classes;
    EXPECT_EQ(classes, 1) << deviceTypeName(t);
  }
}

TEST(DeviceTypes, OneHotIndexIsDenseAndUnique) {
  std::vector<bool> seen(kNumDeviceTypes, false);
  for (int i = 0; i <= static_cast<int>(DeviceType::kUnknown); ++i) {
    const auto t = static_cast<DeviceType>(i);
    const auto idx = oneHotIndex(t);
    if (t == DeviceType::kUnknown) {
      EXPECT_FALSE(idx.has_value());
      continue;
    }
    ASSERT_TRUE(idx.has_value());
    ASSERT_LT(*idx, kNumDeviceTypes);
    EXPECT_FALSE(seen[*idx]) << "duplicate one-hot index";
    seen[*idx] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(DeviceTypes, PinCounts) {
  EXPECT_EQ(pinCount(DeviceType::kNch), 4u);
  EXPECT_EQ(pinCount(DeviceType::kPchLvt), 4u);
  EXPECT_EQ(pinCount(DeviceType::kNpn), 3u);
  EXPECT_EQ(pinCount(DeviceType::kResPoly), 2u);
  EXPECT_EQ(pinCount(DeviceType::kCapMom), 2u);
  EXPECT_EQ(pinCount(DeviceType::kDio), 2u);
}

TEST(DeviceTypes, MosPinFunctionsInCardOrder) {
  const auto fns = pinFunctions(DeviceType::kNch);
  EXPECT_EQ(fns[0], PinFunction::kDrain);
  EXPECT_EQ(fns[1], PinFunction::kGate);
  EXPECT_EQ(fns[2], PinFunction::kSource);
  EXPECT_EQ(fns[3], PinFunction::kBulk);
}

struct ModelNameCase {
  const char* model;
  DeviceType expected;
};

class ModelNameTest : public ::testing::TestWithParam<ModelNameCase> {};

TEST_P(ModelNameTest, MapsFoundryNames) {
  EXPECT_EQ(deviceTypeFromModelName(GetParam().model), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    FoundryNames, ModelNameTest,
    ::testing::Values(
        ModelNameCase{"nch", DeviceType::kNch},
        ModelNameCase{"nch_lvt_mac", DeviceType::kNchLvt},
        ModelNameCase{"NCH_HVT", DeviceType::kNchHvt},
        ModelNameCase{"pch25", DeviceType::kPch},
        ModelNameCase{"pch_ulvt", DeviceType::kPchLvt},
        ModelNameCase{"nmos_rf", DeviceType::kNch},
        ModelNameCase{"pfet_01v8", DeviceType::kPch},
        ModelNameCase{"cfmom_2t", DeviceType::kCapMom},
        ModelNameCase{"mimcap", DeviceType::kCapMim},
        ModelNameCase{"moscap_25", DeviceType::kCapMos},
        ModelNameCase{"rppolywo", DeviceType::kResPoly},
        ModelNameCase{"npn_hv", DeviceType::kNpn},
        ModelNameCase{"pnp5", DeviceType::kPnp},
        ModelNameCase{"diode_nw", DeviceType::kDio},
        ModelNameCase{"spiral_ind", DeviceType::kInd},
        ModelNameCase{"whatisthis", DeviceType::kUnknown}));

TEST(DeviceTypes, DefaultMetalLayers) {
  EXPECT_EQ(defaultMetalLayers(DeviceType::kCapMom), 4);
  EXPECT_EQ(defaultMetalLayers(DeviceType::kCapMim), 2);
  EXPECT_EQ(defaultMetalLayers(DeviceType::kNch), 1);
}

TEST(DeviceTypes, NamesRoundTripThroughModelLookup) {
  // Canonical names should resolve back to their own type.
  for (std::size_t i = 0; i < kNumDeviceTypes; ++i) {
    const auto t = static_cast<DeviceType>(i);
    if (t == DeviceType::kResMetal || t == DeviceType::kCapMos ||
        t == DeviceType::kInd) {
      continue;  // canonical names are ambiguous substrings for these
    }
    EXPECT_EQ(deviceTypeFromModelName(deviceTypeName(t)), t)
        << deviceTypeName(t);
  }
}

}  // namespace
}  // namespace ancstr
