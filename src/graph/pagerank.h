// PageRank (paper Eq. 3) over a SimpleDigraph. Used by circuit feature
// embedding (Algorithm 2) to select the top-M representative devices of a
// subcircuit.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace ancstr {

struct PageRankOptions {
  double damping = 0.85;   ///< the paper's gamma
  double tolerance = 1e-10;
  int maxIterations = 200;
};

/// Scores plus the convergence signal of one power iteration run.
struct PageRankResult {
  std::vector<double> scores;  ///< sums to 1; one entry per vertex
  int iterations = 0;          ///< power-iteration steps actually taken
  /// True when the L1 delta fell below tolerance within maxIterations.
  /// A false value means the scores are the maxIterations-th iterate —
  /// usable, but reported via a warning and the `pagerank.nonconverged`
  /// metrics counter (diag::codes::kPageRankNonConverged).
  bool converged = true;
};

/// Computes PageRank scores (sums to 1). Eq. 3 prints the denominator as
/// |N_out(v)|; the standard (and clearly intended) form divides each
/// incoming contribution by the *source's* out-degree, which is what we
/// implement. Dangling vertices redistribute uniformly.
PageRankResult pageRankDetailed(const SimpleDigraph& g,
                                const PageRankOptions& options = {});

/// Score-only convenience wrapper over pageRankDetailed.
std::vector<double> pageRank(const SimpleDigraph& g,
                             const PageRankOptions& options = {});

/// Indices of the top-k vertices by descending score; ties broken by
/// ascending vertex id for determinism. k is clamped to |V|.
std::vector<std::uint32_t> topKByScore(const std::vector<double>& scores,
                                       std::size_t k);

}  // namespace ancstr
