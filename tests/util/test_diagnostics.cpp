#include "util/diagnostics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.h"

namespace ancstr {
namespace {

using diag::Diagnostic;
using diag::DiagnosticSink;
using diag::Severity;

TEST(Diagnostics, CollectModeAccumulates) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.strict());
  sink.warning(diag::codes::kUnknownCard, "a.sp", 3, "odd card");
  sink.error(diag::codes::kBadCard, "a.sp", 4, "broken card");
  sink.note(diag::codes::kBadParameter, "a.sp", 5, "ignored param");
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.count(Severity::kWarning), 1u);
  EXPECT_EQ(sink.errorCount(), 1u);
  EXPECT_TRUE(sink.hasErrors());

  const auto all = sink.snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1].severity, Severity::kError);
  EXPECT_EQ(all[1].code, diag::codes::kBadCard);
  EXPECT_EQ(all[1].file, "a.sp");
  EXPECT_EQ(all[1].line, 4u);
}

TEST(Diagnostics, StrictModeThrowsOnFirstError) {
  DiagnosticSink sink(DiagnosticSink::Mode::kStrict);
  EXPECT_TRUE(sink.strict());
  // Warnings and notes never throw.
  sink.warning(diag::codes::kUnknownCard, "a.sp", 1, "odd");
  EXPECT_THROW(
      sink.error(diag::codes::kBadCard, "a.sp", 2, "broken"), ParseError);
  // The error is recorded before the throw.
  EXPECT_EQ(sink.errorCount(), 1u);
}

TEST(Diagnostics, StrictThrowCarriesPositionAndCode) {
  DiagnosticSink sink(DiagnosticSink::Mode::kStrict);
  try {
    sink.error(diag::codes::kBadCard, "x.sp", 7, "bad");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x.sp"), std::string::npos);
    EXPECT_NE(what.find("7"), std::string::npos);
    EXPECT_NE(what.find("parse.bad_card"), std::string::npos);
  }
}

TEST(Diagnostics, SnapshotFromAndTake) {
  DiagnosticSink sink;
  sink.error(diag::codes::kBadCard, "a.sp", 1, "one");
  const std::size_t mark = sink.size();
  sink.error(diag::codes::kBadCard, "a.sp", 2, "two");
  const auto delta = sink.snapshotFrom(mark);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].line, 2u);

  const auto taken = sink.take();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_FALSE(sink.hasErrors());
}

TEST(Diagnostics, StrRendersPositionSeverityAndCode) {
  Diagnostic d{Severity::kError, std::string(diag::codes::kBadCard), "a.sp",
               12, "broken card"};
  const std::string s = d.str();
  EXPECT_NE(s.find("a.sp:12"), std::string::npos);
  EXPECT_NE(s.find("error"), std::string::npos);
  EXPECT_NE(s.find("parse.bad_card"), std::string::npos);
  EXPECT_NE(s.find("broken card"), std::string::npos);

  // Position-free diagnostics elide the file:line prefix.
  Diagnostic bare{Severity::kWarning, "io.failure", "", 0, "oops"};
  EXPECT_EQ(bare.str().find(":0"), std::string::npos);
}

TEST(Diagnostics, ParsedOkReflectsErrorSeverityOnly) {
  diag::Parsed<int> p;
  p.value = 42;
  EXPECT_TRUE(p.ok());
  p.diagnostics.push_back(
      Diagnostic{Severity::kWarning, "parse.unknown_card", "", 0, "w"});
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(p.errorCount(), 0u);
  p.diagnostics.push_back(
      Diagnostic{Severity::kError, "parse.bad_card", "", 0, "e"});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.errorCount(), 1u);
}

TEST(Diagnostics, ConcurrentReportsAreAllRecorded) {
  DiagnosticSink sink;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.warning(diag::codes::kUnknownCard, "t" + std::to_string(t),
                     static_cast<std::size_t>(i), "concurrent");
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(sink.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(sink.count(Severity::kWarning), sink.size());
}

}  // namespace
}  // namespace ancstr
