// Hierarchical netlist data model.
//
// A Library owns a set of SubcktDefs. Each SubcktDef owns its nets,
// primitive devices, and instances of other subcircuits. All references are
// small integer ids scoped to the owning SubcktDef, which keeps the model
// compact and trivially copyable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/device_types.h"

namespace ancstr {

using NetId = std::uint32_t;
using DeviceId = std::uint32_t;
using InstanceId = std::uint32_t;
using SubcktId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

/// Sizing / shape parameters of a primitive device. Lengths and widths are
/// in meters; `value` is ohms / farads / henries for passives.
struct DeviceParams {
  double w = 0.0;      ///< channel or body width [m]
  double l = 0.0;      ///< channel or body length [m]
  double value = 0.0;  ///< passive value (R/C/L); 0 for actives
  int nf = 1;          ///< number of fingers
  int m = 1;           ///< multiplier (parallel copies)
  int layers = 0;      ///< metal layers (0 = use type default)

  /// Metal layer count with the per-type default applied.
  int effectiveLayers(DeviceType t) const {
    return layers > 0 ? layers : defaultMetalLayers(t);
  }

  bool operator==(const DeviceParams&) const = default;
};

/// One terminal of a primitive device.
struct Pin {
  PinFunction function = PinFunction::kBulk;
  NetId net = kInvalidId;
};

/// A primitive (leaf) element: MOS, R, C, L, diode, or BJT.
struct Device {
  std::string name;
  DeviceType type = DeviceType::kUnknown;
  std::string model;  ///< raw PDK model name from the card, if any
  DeviceParams params;
  std::vector<Pin> pins;

  /// Net connected to the first pin with function `f`, if present.
  std::optional<NetId> pinNet(PinFunction f) const {
    for (const Pin& p : pins) {
      if (p.function == f) return p.net;
    }
    return std::nullopt;
  }
};

/// An instantiation of another subcircuit (a building block).
struct Instance {
  std::string name;
  SubcktId master = kInvalidId;
  std::vector<NetId> connections;  ///< parallel to master's port list
};

/// An electrical net within one subcircuit.
struct Net {
  std::string name;
  bool isPort = false;   ///< appears on the owning subckt's port list
  int portIndex = -1;    ///< position in the port list when isPort
  /// (device, pinIndex) terminals on this net.
  std::vector<std::pair<DeviceId, std::uint32_t>> deviceTerminals;
  /// (instance, portIndex) terminals on this net.
  std::vector<std::pair<InstanceId, std::uint32_t>> instanceTerminals;

  /// Total number of terminals touching this net.
  std::size_t degree() const {
    return deviceTerminals.size() + instanceTerminals.size();
  }
};

/// Definition of one subcircuit.
class SubcktDef {
 public:
  explicit SubcktDef(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- construction --------------------------------------------------
  /// Adds (or finds) a net by name; marking it a port appends it to the
  /// port list in call order.
  NetId addNet(std::string_view name, bool isPort = false);
  /// Adds a primitive device; wires its pins into the net terminal lists.
  DeviceId addDevice(Device device);
  /// Adds a subcircuit instance; wires its ports into the net lists.
  InstanceId addInstance(Instance instance);

  // --- lookup --------------------------------------------------------
  std::optional<NetId> findNet(std::string_view name) const;
  std::optional<DeviceId> findDevice(std::string_view name) const;
  std::optional<InstanceId> findInstance(std::string_view name) const;

  // --- access --------------------------------------------------------
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Device>& devices() const { return devices_; }
  const std::vector<Instance>& instances() const { return instances_; }
  const std::vector<NetId>& ports() const { return ports_; }

  const Net& net(NetId id) const { return nets_.at(id); }
  const Device& device(DeviceId id) const { return devices_.at(id); }
  const Instance& instance(InstanceId id) const { return instances_.at(id); }

  Device& mutableDevice(DeviceId id) { return devices_.at(id); }

  /// True when this subckt instantiates no other subcircuits.
  bool isLeafBlock() const { return instances_.empty(); }

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Device> devices_;
  std::vector<Instance> instances_;
  std::vector<NetId> ports_;
  std::unordered_map<std::string, NetId> netByName_;
  std::unordered_map<std::string, DeviceId> deviceByName_;
  std::unordered_map<std::string, InstanceId> instanceByName_;
};

/// A collection of subcircuit definitions plus a designated top cell.
class Library {
 public:
  /// Creates an empty subckt definition. Throws NetlistError on duplicates.
  SubcktId addSubckt(std::string name);

  std::optional<SubcktId> findSubckt(std::string_view name) const;

  const SubcktDef& subckt(SubcktId id) const { return subckts_.at(id); }
  SubcktDef& mutableSubckt(SubcktId id) { return subckts_.at(id); }
  std::size_t subcktCount() const { return subckts_.size(); }

  /// Designates the top cell; by default the last defined subckt that is
  /// not instantiated by any other is used.
  void setTop(SubcktId id);
  /// Resolves the top cell. Throws NetlistError when the library is empty
  /// or no un-instantiated subckt exists.
  SubcktId top() const;

  /// Structural validation: instance masters exist, port arities match,
  /// device pin counts match their type, no dangling pin net ids.
  /// Throws NetlistError describing the first violation.
  void validate() const;

  /// Total primitive devices / nets in the fully flattened design.
  std::size_t flatDeviceCount() const;
  std::size_t flatNetCount() const;

 private:
  std::size_t flatCount(SubcktId id, bool nets,
                        std::vector<int>& memo) const;

  std::vector<SubcktDef> subckts_;
  std::unordered_map<std::string, SubcktId> byName_;
  std::optional<SubcktId> top_;
};

}  // namespace ancstr
