#!/usr/bin/env python3
"""Critical-path and self-time analysis over an ancstr trace.

    analyze_trace.py TRACE.json [--top N]

Accepts either export format (docs/observability.md):
  * Chrome trace_event JSON  (--trace-out): {"traceEvents": [...]}
  * ancstr span-tree JSON    (--spans-out): {"kind": "ancstr-span-tree", ...}

Reports three things:
  1. Self-time per span name (time inside the span but outside its
     children) — where the program actually spends its cycles.
  2. The critical path: starting from the longest top-level span, the
     chain of longest children, with per-hop duration and self-time.
  3. Parallel efficiency per `parallel.for` region: the ratio of summed
     `parallel.chunk` busy time to (region wall time x worker count).
     1.0 means perfectly balanced chunks; low values mean stragglers or
     serial sections inside the region.

Exits 0 on success, 1 when the trace is unreadable or contains no spans.
"""
import argparse
import json
import sys
from collections import defaultdict


class Span:
    __slots__ = ("name", "start_us", "dur_us", "self_us", "tid", "children")

    def __init__(self, name, start_us, dur_us, tid):
        self.name = name
        self.start_us = float(start_us)
        self.dur_us = float(dur_us)
        self.self_us = float(dur_us)
        self.tid = tid
        self.children = []

    @property
    def end_us(self):
        return self.start_us + self.dur_us


def spans_from_chrome(trace):
    """Rebuilds per-thread span trees from flat complete ('X') events."""
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents missing")
    by_tid = defaultdict(list)
    for e in events:
        if e.get("ph") != "X":
            continue
        by_tid[e["tid"]].append(Span(e["name"], e["ts"], e["dur"], e["tid"]))
    roots = []
    for tid, spans in by_tid.items():
        # Earlier start first; ties broken by longer duration (the parent).
        spans.sort(key=lambda s: (s.start_us, -s.dur_us))
        stack = []
        for span in spans:
            while stack and span.start_us >= stack[-1].end_us:
                stack.pop()
            if stack:
                stack[-1].children.append(span)
                stack[-1].self_us -= span.dur_us
            else:
                roots.append(span)
            stack.append(span)
    return roots


def spans_from_tree(tree):
    """Loads the span-tree export, which carries nesting and selfUs."""
    roots = []

    def walk(node, tid):
        span = Span(node["name"], node["startUs"], node["durUs"], tid)
        span.self_us = float(node.get("selfUs", span.dur_us))
        for child in node.get("children", []):
            span.children.append(walk(child, tid))
        return span

    for thread in tree.get("threads", []):
        tid = thread.get("tid")
        for node in thread.get("spans", []):
            roots.append(walk(node, tid))
    return roots


def iter_spans(roots):
    stack = list(roots)
    while stack:
        span = stack.pop()
        yield span
        stack.extend(span.children)


def report_self_time(roots, top):
    agg = defaultdict(lambda: [0, 0.0, 0.0])  # name -> [count, dur, self]
    for span in iter_spans(roots):
        entry = agg[span.name]
        entry[0] += 1
        entry[1] += span.dur_us
        entry[2] += span.self_us
    total_self = sum(entry[2] for entry in agg.values()) or 1.0
    print(f"Self-time by span ({len(agg)} names, top {top}):")
    print(f"  {'span':40s} {'count':>7s} {'total ms':>10s} "
          f"{'self ms':>10s} {'self %':>7s}")
    ranked = sorted(agg.items(), key=lambda kv: -kv[1][2])
    for name, (count, dur, self_us) in ranked[:top]:
        print(f"  {name:40s} {count:7d} {dur / 1e3:10.3f} "
              f"{self_us / 1e3:10.3f} {100.0 * self_us / total_self:6.1f}%")


def report_critical_path(roots):
    if not roots:
        return
    span = max(roots, key=lambda s: s.dur_us)
    print("Critical path (longest child at each level):")
    depth = 0
    while span is not None:
        print(f"  {'  ' * depth}{span.name}: {span.dur_us / 1e3:.3f} ms "
              f"(self {span.self_us / 1e3:.3f} ms)")
        span = max(span.children, key=lambda s: s.dur_us, default=None)
        depth += 1


def report_parallel_efficiency(roots):
    regions = [s for s in iter_spans(roots) if s.name == "parallel.for"]
    if not regions:
        print("Parallel efficiency: no parallel.for regions in trace")
        return
    chunks = [s for s in iter_spans(roots) if s.name == "parallel.chunk"]
    print(f"Parallel efficiency ({len(regions)} parallel.for regions, "
          f"widest first):")
    regions.sort(key=lambda r: -r.dur_us)
    efficiencies = []
    shown = 10
    for i, region in enumerate(regions):
        # Chunks run on worker threads, so associate by time overlap
        # rather than tree parentage.
        mine = [c for c in chunks
                if c.start_us < region.end_us and c.end_us > region.start_us]
        workers = len({c.tid for c in mine}) or 1
        busy = sum(c.dur_us for c in mine)
        wall = region.dur_us or 1.0
        eff = busy / (wall * workers)
        efficiencies.append(eff)
        if i < shown:
            print(f"  region {i}: wall {wall / 1e3:.3f} ms, "
                  f"{len(mine)} chunks on {workers} thread(s), "
                  f"busy {busy / 1e3:.3f} ms, efficiency {eff:.2f}")
    if len(regions) > shown:
        print(f"  ... {len(regions) - shown} smaller region(s) not shown")
    mean = sum(efficiencies) / len(efficiencies)
    print(f"  mean efficiency: {mean:.2f}")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", help="chrome-trace or span-tree JSON file")
    parser.add_argument("--top", type=int, default=15,
                        help="rows in the self-time table (default 15)")
    args = parser.parse_args(argv[1:])

    try:
        with open(args.trace, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL: cannot load {args.trace}: {err}", file=sys.stderr)
        return 1

    try:
        if isinstance(data, dict) and data.get("kind") == "ancstr-span-tree":
            roots = spans_from_tree(data)
        else:
            roots = spans_from_chrome(data)
    except (ValueError, KeyError, TypeError) as err:
        print(f"FAIL: malformed trace: {err}", file=sys.stderr)
        return 1

    if not roots:
        print("FAIL: trace contains no spans", file=sys.stderr)
        return 1

    report_self_time(roots, args.top)
    print()
    report_critical_path(roots)
    print()
    report_parallel_efficiency(roots)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
