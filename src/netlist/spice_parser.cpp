#include "netlist/spice_parser.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "netlist/expr.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/trace.h"

namespace ancstr {
namespace {

struct LogicalLine {
  std::string text;
  std::size_t line = 0;  // 1-based line of the first physical line
};

/// Strips comments and joins '+' continuation lines.
std::vector<LogicalLine> toLogicalLines(std::string_view text) {
  std::vector<LogicalLine> out;
  std::size_t lineNo = 0;
  std::istringstream in{std::string(text)};
  std::string raw;
  while (std::getline(in, raw)) {
    ++lineNo;
    std::string_view sv = raw;
    // Trailing comment forms: "; ..." anywhere, "$ " with surrounding space.
    if (const auto semi = sv.find(';'); semi != std::string_view::npos) {
      sv = sv.substr(0, semi);
    }
    if (const auto dollar = sv.find(" $"); dollar != std::string_view::npos) {
      sv = sv.substr(0, dollar);
    }
    sv = str::trim(sv);
    if (sv.empty()) continue;
    if (sv.front() == '*') continue;  // full-line comment
    if (sv.front() == '+') {
      if (out.empty()) continue;  // stray continuation; ignore
      out.back().text += ' ';
      out.back().text += str::trim(sv.substr(1));
    } else {
      out.push_back({std::string(sv), lineNo});
    }
  }
  return out;
}

/// Normalises "k = v", "k =v", "k= v" into "k=v" so tokenisation is easy.
std::string normalizeAssignments(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '=') {
      while (!out.empty() && out.back() == ' ') out.pop_back();
      out.push_back('=');
      std::size_t j = i + 1;
      while (j < s.size() && s[j] == ' ') ++j;
      i = j - 1;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

class SpiceParser {
 public:
  SpiceParser(std::string_view fileName, const SpiceParseOptions& options)
      : file_(fileName), options_(options) {}

  Library finish() {
    if (inSubckt_) {
      throw ParseError(file_, subcktLine_, "missing .ends for subckt");
    }
    lib_.validate();
    return std::move(lib_);
  }

  void parseText(std::string_view text, const std::string& dir) {
    for (const LogicalLine& ll : toLogicalLines(text)) {
      parseLine(ll, dir);
    }
  }

 private:
  void parseLine(const LogicalLine& ll, const std::string& dir) {
    const std::string norm = normalizeAssignments(ll.text);
    std::vector<std::string> tokens = str::splitTokens(norm);
    if (tokens.empty()) return;
    const std::string head = str::toLower(tokens[0]);

    if (head[0] == '.') {
      parseDirective(head, tokens, ll, dir);
      return;
    }
    switch (head[0]) {
      case 'm': parseMos(tokens, ll); break;
      case 'r': parsePassive(tokens, ll, 'r'); break;
      case 'c': parsePassive(tokens, ll, 'c'); break;
      case 'l': parsePassive(tokens, ll, 'l'); break;
      case 'd': parseDiode(tokens, ll); break;
      case 'q': parseBjt(tokens, ll); break;
      case 'x': parseInstance(tokens, ll); break;
      case 'v':
      case 'i':
      case 'e':
      case 'g':
      case 'f':
      case 'h':
        // Sources and controlled sources carry no layout geometry; skip.
        log::debug() << file_ << ":" << ll.line << ": skipping source card '"
                     << tokens[0] << "'";
        break;
      default:
        throw ParseError(file_, ll.line,
                         "unrecognised card '" + tokens[0] + "'");
    }
  }

  void parseDirective(const std::string& head,
                      const std::vector<std::string>& tokens,
                      const LogicalLine& ll, const std::string& dir) {
    if (head == ".subckt") {
      if (inSubckt_) {
        throw ParseError(file_, ll.line, "nested .subckt is not supported");
      }
      if (tokens.size() < 2) {
        throw ParseError(file_, ll.line, ".subckt requires a name");
      }
      std::vector<std::string> ports;
      ParamEnv localParams;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto [key, value] = str::splitFirst(tokens[i], '=');
        if (value.empty()) {
          ports.emplace_back(tokens[i]);
        } else if (auto v = evalParamValue(value, params_)) {
          localParams[str::toLower(key)] = *v;
        } else {
          throw ParseError(file_, ll.line,
                           "bad default parameter '" + tokens[i] + "'");
        }
      }
      cur_ = lib_.addSubckt(tokens[1]);
      inSubckt_ = true;
      subcktLine_ = ll.line;
      subcktParams_ = std::move(localParams);
      for (const std::string& p : ports) {
        lib_.mutableSubckt(cur_).addNet(p, /*isPort=*/true);
      }
    } else if (head == ".ends") {
      if (!inSubckt_) throw ParseError(file_, ll.line, ".ends without .subckt");
      inSubckt_ = false;
      subcktParams_.clear();
    } else if (head == ".param") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = str::splitFirst(tokens[i], '=');
        if (value.empty()) {
          throw ParseError(file_, ll.line,
                           ".param entry '" + tokens[i] + "' lacks a value");
        }
        const auto v = evalParamValue(value, env());
        if (!v) {
          throw ParseError(file_, ll.line,
                           "cannot evaluate parameter '" + tokens[i] + "'");
        }
        if (inSubckt_) {
          subcktParams_[str::toLower(key)] = *v;
        } else {
          params_[str::toLower(key)] = *v;
        }
      }
    } else if (head == ".global") {
      // Global nets need no special handling: names unify within subckts.
    } else if (head == ".model") {
      // Model cards are accepted; types are inferred from the model name.
    } else if (head == ".include" || head == ".inc" || head == ".lib") {
      if (tokens.size() < 2) {
        throw ParseError(file_, ll.line, ".include requires a path");
      }
      std::string path = tokens[1];
      if (path.size() >= 2 && (path.front() == '"' || path.front() == '\'')) {
        path = path.substr(1, path.size() - 2);
      }
      std::filesystem::path full = std::filesystem::path(dir) / path;
      std::ifstream in(full);
      if (!in) {
        throw ParseError(file_, ll.line,
                         "cannot open include file '" + full.string() + "'");
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      parseText(buf.str(), full.parent_path().string());
    } else if (head == ".end") {
      // End of deck.
    } else if (options_.strictDirectives) {
      throw ParseError(file_, ll.line, "unknown directive '" + head + "'");
    } else {
      log::debug() << file_ << ":" << ll.line << ": ignoring directive '"
                   << head << "'";
    }
  }

  ParamEnv env() const {
    if (!inSubckt_) return params_;
    ParamEnv merged = params_;
    for (const auto& [k, v] : subcktParams_) merged[k] = v;
    return merged;
  }

  SubcktDef& scope(const LogicalLine& ll) {
    if (inSubckt_) return lib_.mutableSubckt(cur_);
    if (topId_ == kInvalidId) {
      topId_ = lib_.addSubckt(options_.topName);
      lib_.setTop(topId_);
    }
    (void)ll;
    return lib_.mutableSubckt(topId_);
  }

  /// Splits tokens[from..] into positional tokens and key=value params.
  static void splitArgs(const std::vector<std::string>& tokens,
                        std::size_t from, std::vector<std::string>& positional,
                        std::vector<std::pair<std::string, std::string>>& kv) {
    for (std::size_t i = from; i < tokens.size(); ++i) {
      const auto [key, value] = str::splitFirst(tokens[i], '=');
      if (value.empty()) {
        positional.emplace_back(tokens[i]);
      } else {
        kv.emplace_back(str::toLower(key), std::string(value));
      }
    }
  }

  double evalOrThrow(const std::string& text, const LogicalLine& ll) {
    const auto v = evalParamValue(text, env());
    if (!v) {
      throw ParseError(file_, ll.line, "cannot evaluate value '" + text + "'");
    }
    return *v;
  }

  void applyDeviceParams(
      Device& dev, const std::vector<std::pair<std::string, std::string>>& kv,
      const LogicalLine& ll) {
    for (const auto& [key, value] : kv) {
      if (key == "w") {
        dev.params.w = evalOrThrow(value, ll);
      } else if (key == "l") {
        dev.params.l = evalOrThrow(value, ll);
      } else if (key == "nf" || key == "fingers") {
        dev.params.nf = static_cast<int>(evalOrThrow(value, ll));
      } else if (key == "m" || key == "mult") {
        dev.params.m = static_cast<int>(evalOrThrow(value, ll));
      } else if (key == "layers" || key == "lay" || key == "stm" ||
                 key == "spm") {
        dev.params.layers = static_cast<int>(evalOrThrow(value, ll));
      } else if (key == "r" || key == "c" || key == "val") {
        dev.params.value = evalOrThrow(value, ll);
      } else {
        log::debug() << file_ << ":" << ll.line << ": ignoring parameter '"
                     << key << "' on device '" << dev.name << "'";
      }
    }
  }

  void parseMos(const std::vector<std::string>& tokens,
                const LogicalLine& ll) {
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> kv;
    splitArgs(tokens, 1, pos, kv);
    if (pos.size() < 5) {
      throw ParseError(file_, ll.line,
                       "MOS card needs 4 terminals and a model");
    }
    SubcktDef& def = scope(ll);
    Device dev;
    dev.name = tokens[0];
    dev.model = pos[4];
    dev.type = deviceTypeFromModelName(pos[4]);
    if (!isMos(dev.type)) {
      throw ParseError(file_, ll.line,
                       "model '" + pos[4] + "' is not a MOS model");
    }
    dev.pins = {{PinFunction::kDrain, def.addNet(pos[0])},
                {PinFunction::kGate, def.addNet(pos[1])},
                {PinFunction::kSource, def.addNet(pos[2])},
                {PinFunction::kBulk, def.addNet(pos[3])}};
    applyDeviceParams(dev, kv, ll);
    def.addDevice(std::move(dev));
  }

  void parsePassive(const std::vector<std::string>& tokens,
                    const LogicalLine& ll, char kind) {
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> kv;
    splitArgs(tokens, 1, pos, kv);
    if (pos.size() < 2) {
      throw ParseError(file_, ll.line, "passive card needs two terminals");
    }
    SubcktDef& def = scope(ll);
    Device dev;
    dev.name = tokens[0];
    // Remaining positional tokens: value and/or model name, in either order.
    for (std::size_t i = 2; i < pos.size(); ++i) {
      if (auto v = evalParamValue(pos[i], env())) {
        dev.params.value = *v;
      } else {
        dev.model = pos[i];
      }
    }
    if (!dev.model.empty()) {
      dev.type = deviceTypeFromModelName(dev.model);
    }
    const bool typeMatchesKind =
        (kind == 'r' && isResistor(dev.type)) ||
        (kind == 'c' && isCapacitor(dev.type)) ||
        (kind == 'l' && dev.type == DeviceType::kInd);
    if (!typeMatchesKind) {
      dev.type = kind == 'r'   ? DeviceType::kResPoly
                 : kind == 'c' ? DeviceType::kCapMom
                               : DeviceType::kInd;
    }
    const auto funcs = pinFunctions(dev.type);
    dev.pins = {{funcs[0], def.addNet(pos[0])},
                {funcs[1], def.addNet(pos[1])}};
    applyDeviceParams(dev, kv, ll);
    def.addDevice(std::move(dev));
  }

  void parseDiode(const std::vector<std::string>& tokens,
                  const LogicalLine& ll) {
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> kv;
    splitArgs(tokens, 1, pos, kv);
    if (pos.size() < 3) {
      throw ParseError(file_, ll.line, "diode card needs 2 nets and a model");
    }
    SubcktDef& def = scope(ll);
    Device dev;
    dev.name = tokens[0];
    dev.model = pos[2];
    dev.type = DeviceType::kDio;
    dev.pins = {{PinFunction::kAnode, def.addNet(pos[0])},
                {PinFunction::kCathode, def.addNet(pos[1])}};
    applyDeviceParams(dev, kv, ll);
    def.addDevice(std::move(dev));
  }

  void parseBjt(const std::vector<std::string>& tokens,
                const LogicalLine& ll) {
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> kv;
    splitArgs(tokens, 1, pos, kv);
    if (pos.size() < 4) {
      throw ParseError(file_, ll.line, "BJT card needs c b e and a model");
    }
    SubcktDef& def = scope(ll);
    Device dev;
    dev.name = tokens[0];
    dev.model = pos.back();
    dev.type = deviceTypeFromModelName(dev.model);
    if (!isBipolar(dev.type)) dev.type = DeviceType::kNpn;
    dev.pins = {{PinFunction::kCollector, def.addNet(pos[0])},
                {PinFunction::kBase, def.addNet(pos[1])},
                {PinFunction::kEmitter, def.addNet(pos[2])}};
    applyDeviceParams(dev, kv, ll);
    def.addDevice(std::move(dev));
  }

  void parseInstance(const std::vector<std::string>& tokens,
                     const LogicalLine& ll) {
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> kv;
    splitArgs(tokens, 1, pos, kv);
    if (pos.size() < 2) {
      throw ParseError(file_, ll.line, "X card needs nets and a master name");
    }
    if (!kv.empty()) {
      log::debug() << file_ << ":" << ll.line
                   << ": ignoring instance parameter overrides on '"
                   << tokens[0] << "'";
    }
    SubcktDef& def = scope(ll);
    const std::string masterName = pos.back();
    const auto master = lib_.findSubckt(masterName);
    if (!master) {
      throw ParseError(file_, ll.line,
                       "unknown subckt '" + masterName +
                           "' (forward references are not supported)");
    }
    Instance instance;
    instance.name = tokens[0];
    instance.master = *master;
    for (std::size_t i = 0; i + 1 < pos.size(); ++i) {
      instance.connections.push_back(def.addNet(pos[i]));
    }
    def.addInstance(std::move(instance));
  }

  std::string file_;
  SpiceParseOptions options_;
  Library lib_;
  ParamEnv params_;
  ParamEnv subcktParams_;
  bool inSubckt_ = false;
  std::size_t subcktLine_ = 0;
  SubcktId cur_ = kInvalidId;
  SubcktId topId_ = kInvalidId;
};

}  // namespace

Library parseSpice(std::string_view text, std::string_view fileName,
                   const SpiceParseOptions& options) {
  const trace::TraceSpan span("parse.spice");
  SpiceParser parser(fileName, options);
  parser.parseText(text, ".");
  return parser.finish();
}

Library parseSpiceFile(const std::filesystem::path& path,
                       const SpiceParseOptions& options) {
  const trace::TraceSpan span("parse.spice");
  std::ifstream in(path);
  if (!in) throw ParseError(path.string(), 0, "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  SpiceParser parser(path.string(), options);
  parser.parseText(buf.str(), path.parent_path().string());
  return parser.finish();
}

}  // namespace ancstr
