#include "nn/gru.h"

#include "nn/init.h"
#include "util/error.h"

namespace ancstr::nn {

GruCell::GruCell(std::size_t inputDim, std::size_t hiddenDim, Rng& rng)
    : inputDim_(inputDim), hiddenDim_(hiddenDim) {
  auto weightIn = [&] { return Tensor::param(xavierUniform(inputDim, hiddenDim, rng)); };
  auto weightHid = [&] { return Tensor::param(xavierUniform(hiddenDim, hiddenDim, rng)); };
  auto biasRow = [&] { return Tensor::param(Matrix(1, hiddenDim)); };
  wz_ = weightIn(); uz_ = weightHid(); bz_ = biasRow();
  wr_ = weightIn(); ur_ = weightHid(); br_ = biasRow();
  wc_ = weightIn(); uc_ = weightHid(); bc_ = biasRow();
}

Tensor GruCell::forward(const Tensor& x, const Tensor& h) const {
  const Tensor z =
      sigmoid(addRow(add(matmul(x, wz_), matmul(h, uz_)), bz_));
  const Tensor r =
      sigmoid(addRow(add(matmul(x, wr_), matmul(h, ur_)), br_));
  const Tensor c =
      tanh(addRow(add(matmul(x, wc_), matmul(hadamard(r, h), uc_)), bc_));
  return add(hadamard(oneMinus(z), h), hadamard(z, c));
}

std::vector<Tensor> GruCell::parameters() const {
  return {wz_, uz_, bz_, wr_, ur_, br_, wc_, uc_, bc_};
}

GruStepParams GruCell::stepParams() const {
  GruStepParams p;
  p.wz = wz_.value().data();
  p.uz = uz_.value().data();
  p.bz = bz_.value().data();
  p.wr = wr_.value().data();
  p.ur = ur_.value().data();
  p.br = br_.value().data();
  p.wc = wc_.value().data();
  p.uc = uc_.value().data();
  p.bc = bc_.value().data();
  p.inputDim = inputDim_;
  p.hiddenDim = hiddenDim_;
  return p;
}

void GruCell::inferStepInto(const Matrix& x, const Matrix& h, Matrix& hOut,
                            std::vector<double>& scratch) const {
  if (x.cols() != inputDim_ || h.cols() != hiddenDim_ ||
      x.rows() != h.rows()) {
    throw ShapeError("GruCell::inferStepInto: " + x.shapeString() + " x " +
                     h.shapeString());
  }
  if (hOut.rows() != h.rows() || hOut.cols() != hiddenDim_) {
    hOut = Matrix(h.rows(), hiddenDim_);
  }
  const std::size_t needed = gruStepScratchDoubles(h.rows(), hiddenDim_);
  if (scratch.size() < needed) scratch.resize(needed);
  activeKernels().fusedGruStep(stepParams(), x.data(), h.data(), hOut.data(),
                               h.rows(), scratch.data());
}

Matrix GruCell::inferStep(const Matrix& x, const Matrix& h) const {
  Matrix hOut;
  std::vector<double> scratch;
  inferStepInto(x, h, hOut, scratch);
  return hOut;
}

}  // namespace ancstr::nn
