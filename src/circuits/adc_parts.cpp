#include "circuits/adc_parts.h"

#include <cmath>

#include "util/error.h"

namespace ancstr::circuits {
namespace {

std::string idx(const std::string& stem, int i) {
  return stem + std::to_string(i);
}

}  // namespace

void buildInverter(PartsContext ctx, const std::string& name, double wn) {
  NetlistBuilder& b = ctx.builder;
  b.beginSubckt(name, {"in", "out", "vdd", "vss"});
  b.pmos("mp", "out", "in", "vdd", "vdd", 2.0 * wn, 0.1e-6);
  b.nmos("mn", "out", "in", "vss", "vss", wn, 0.1e-6);
  b.endSubckt();
}

void buildClockGen(PartsContext ctx, const std::string& name) {
  NetlistBuilder& b = ctx.builder;
  TruthComposer& t = ctx.truth;
  // Stage masters shared between the two branches, sized 1x/2x/4x
  // (Fig. 2: identical topologies, different sizing — cross-stage pairs
  // must NOT match while same-stage cross-branch pairs must).
  const std::string inv1 = name + "_inv1x";
  const std::string inv2 = name + "_inv2x";
  const std::string inv4 = name + "_inv4x";
  buildInverter(ctx, inv1, 0.5e-6);
  buildInverter(ctx, inv2, 1.0e-6);
  buildInverter(ctx, inv4, 2.0e-6);

  b.beginSubckt(name, {"clkin", "clkoutp", "clkoutn", "vdd", "vss"});
  // Two matched buffer branches from the common input.
  b.inst("xa1", inv1, {"clkin", "a1", "vdd", "vss"});
  b.inst("xa2", inv2, {"a1", "a2", "vdd", "vss"});
  b.inst("xa3", inv4, {"a2", "clkoutp", "vdd", "vss"});
  b.inst("xb1", inv1, {"clkin", "b1", "vdd", "vss"});
  b.inst("xb2", inv2, {"b1", "b2", "vdd", "vss"});
  b.inst("xb3", inv4, {"b2", "clkoutn", "vdd", "vss"});
  // Load-balancing caps on the complementary outputs.
  b.cap("cbal1", "clkoutp", "vss", 10e-15);
  b.cap("cbal2", "clkoutn", "vss", 10e-15);
  b.endSubckt();

  t.child(name, "xa1", inv1);
  t.child(name, "xa2", inv2);
  t.child(name, "xa3", inv4);
  t.child(name, "xb1", inv1);
  t.child(name, "xb2", inv2);
  t.child(name, "xb3", inv4);
  t.systemPair(name, "xa1", "xb1");
  t.systemPair(name, "xa2", "xb2");
  t.systemPair(name, "xa3", "xb3");
  t.systemPair(name, "cbal1", "cbal2");
}

void buildOtaFd(PartsContext ctx, const std::string& name, double scale) {
  NetlistBuilder& b = ctx.builder;
  TruthComposer& t = ctx.truth;
  const double u = 1e-6 * scale;
  b.beginSubckt(name,
                {"vinp", "vinn", "voutp", "voutn", "ibias", "vdd", "vss"});
  // Input differential pair and tail.
  b.nmos("m1", "n1", "vinp", "ntail", "vss", 4 * u, 0.2e-6, 2,
         DeviceType::kNchLvt);
  b.nmos("m2", "n2", "vinn", "ntail", "vss", 4 * u, 0.2e-6, 2,
         DeviceType::kNchLvt);
  b.nmos("m3", "ntail", "vbn", "vss", "vss", 8 * u, 0.4e-6);
  // Cascodes and loads.
  b.nmos("m4", "voutn", "vbnc", "n1", "vss", 4 * u, 0.2e-6);
  b.nmos("m5", "voutp", "vbnc", "n2", "vss", 4 * u, 0.2e-6);
  b.pmos("m6", "voutn", "vbpc", "p1", "vdd", 8 * u, 0.2e-6);
  b.pmos("m7", "voutp", "vbpc", "p2", "vdd", 8 * u, 0.2e-6);
  b.pmos("m8", "p1", "vcmfb", "vdd", "vdd", 8 * u, 0.4e-6);
  b.pmos("m9", "p2", "vcmfb", "vdd", "vdd", 8 * u, 0.4e-6);
  // Bias generation.
  b.nmos("m10", "vbn", "ibias", "vss", "vss", 2 * u, 0.4e-6);
  b.nmos("m11", "ibias", "ibias", "vss", "vss", 2 * u, 0.4e-6);
  b.pmos("m12", "vbnc", "vbnc", "vdd", "vdd", 2 * u, 0.4e-6);
  b.nmos("m13", "vbnc", "vbn", "vss", "vss", 1 * u, 0.4e-6);
  b.pmos("m14", "vbpc", "vbpc", "vdd", "vdd", 2 * u, 0.4e-6);
  b.nmos("m15", "vbpc", "vbn", "vss", "vss", 1 * u, 0.4e-6);
  // Resistive CMFB sense.
  b.res("rc1", "voutp", "vcmsense", 20e3);
  b.res("rc2", "voutn", "vcmsense", 20e3);
  b.pmos("m16", "vcmfb", "vcmsense", "vdd", "vdd", 2 * u, 0.4e-6);
  b.nmos("m17", "vcmfb", "vcmfb", "vss", "vss", 1 * u, 0.4e-6);
  // Output loading.
  b.cap("cl1", "voutp", "vss", 100e-15);
  b.cap("cl2", "voutn", "vss", 100e-15);
  b.endSubckt();

  t.devicePair(name, "m1", "m2");
  t.devicePair(name, "m4", "m5");
  t.devicePair(name, "m6", "m7");
  t.devicePair(name, "m8", "m9");
  t.devicePair(name, "rc1", "rc2");
  t.devicePair(name, "cl1", "cl2");
}

void buildDynComparator(PartsContext ctx, const std::string& name) {
  NetlistBuilder& b = ctx.builder;
  TruthComposer& t = ctx.truth;
  b.beginSubckt(name, {"vinp", "vinn", "clk", "clkb", "voutp", "voutn",
                       "vdd", "vss"});
  b.nmos("m1", "x1", "vinp", "tail", "vss", 5e-6, 0.1e-6, 2,
         DeviceType::kNchLvt);
  b.nmos("m2", "x2", "vinn", "tail", "vss", 5e-6, 0.1e-6, 2,
         DeviceType::kNchLvt);
  b.nmos("m3", "y1", "x2", "x1", "vss", 3e-6, 0.1e-6);
  b.nmos("m4", "y2", "x1", "x2", "vss", 3e-6, 0.1e-6);
  b.pmos("m5", "y1", "y2", "vdd", "vdd", 4e-6, 0.1e-6);
  b.pmos("m6", "y2", "y1", "vdd", "vdd", 4e-6, 0.1e-6);
  b.nmos("m7", "tail", "clk", "vss", "vss", 10e-6, 0.1e-6);
  b.pmos("m8", "x1", "clk", "vdd", "vdd", 2e-6, 0.1e-6);
  b.pmos("m9", "x2", "clk", "vdd", "vdd", 2e-6, 0.1e-6);
  b.pmos("m10", "y1", "clkb", "vdd", "vdd", 2e-6, 0.1e-6);
  b.pmos("m11", "y2", "clkb", "vdd", "vdd", 2e-6, 0.1e-6);
  // Keeper on the complementary clock balances the clk/clkb loading.
  b.nmos("m16", "tail", "clkb", "vss", "vss", 1e-6, 0.1e-6,
         1, DeviceType::kNchHvt);
  // Output inverters.
  b.pmos("m12", "voutp", "y1", "vdd", "vdd", 3e-6, 0.1e-6);
  b.nmos("m13", "voutp", "y1", "vss", "vss", 1.5e-6, 0.1e-6);
  b.pmos("m14", "voutn", "y2", "vdd", "vdd", 3e-6, 0.1e-6);
  b.nmos("m15", "voutn", "y2", "vss", "vss", 1.5e-6, 0.1e-6);
  b.cap("c1", "x1", "vss", 6e-15);
  b.cap("c2", "x2", "vss", 6e-15);
  b.endSubckt();

  t.devicePair(name, "m1", "m2");
  t.devicePair(name, "m3", "m4");
  t.devicePair(name, "m5", "m6");
  t.devicePair(name, "m8", "m9");
  t.devicePair(name, "m10", "m11");
  t.devicePair(name, "m12", "m14");
  t.devicePair(name, "m13", "m15");
  t.devicePair(name, "c1", "c2");
}

void buildCurrentDac(PartsContext ctx, const std::string& name, int bits,
                     double unitW) {
  ANCSTR_ASSERT(bits >= 1);
  NetlistBuilder& b = ctx.builder;
  TruthComposer& t = ctx.truth;
  std::vector<std::string> ports;
  for (int i = 0; i < bits; ++i) {
    ports.push_back(idx("d", i));
    ports.push_back(idx("db", i));
  }
  ports.insert(ports.end(), {"ioutp", "ioutn", "vbn", "vdd", "vss"});
  b.beginSubckt(name, ports);
  for (int i = 0; i < bits; ++i) {
    const double w = unitW * std::pow(2.0, i);
    const std::string src = idx("s", i);
    b.nmos(idx("mcs", i), src, "vbn", "vss", "vss", w, 0.5e-6);
    b.nmos(idx("mswp", i), "ioutp", idx("d", i), src, "vss", w / 2.0,
           0.1e-6);
    b.nmos(idx("mswn", i), "ioutn", idx("db", i), src, "vss", w / 2.0,
           0.1e-6);
    t.devicePair(name, idx("mswp", i), idx("mswn", i));
  }
  b.nmos("mbias", "vbn", "vbn", "vss", "vss", unitW, 0.5e-6);
  b.cap("cfp", "ioutp", "vss", 20e-15);
  b.cap("cfn", "ioutn", "vss", 20e-15);
  t.devicePair(name, "cfp", "cfn");
  b.endSubckt();
}

namespace {

/// Shared body of the resistive-DAC variants: a 12-resistor string from
/// vref to vss with two switch taps. The variants differ ONLY in one tap
/// position — the paper's "nonidentical subcircuits with different
/// interconnections" scenario: identical device multiset, overwhelmingly
/// identical local structure, globally non-isomorphic graphs (so spectral
/// comparison sees different circuits while device-content embedding
/// similarity stays high).
void buildResDacLadder(PartsContext ctx, const std::string& name,
                       const std::string& tap1, const std::string& tap2) {
  NetlistBuilder& b = ctx.builder;
  TruthComposer& t = ctx.truth;
  b.beginSubckt(name, {"d", "db", "iout", "vref", "vss"});
  std::string prev = "vref";
  for (int i = 1; i <= 11; ++i) {
    b.res(idx("r", i), prev, idx("n", i), 4e3);
    prev = idx("n", i);
  }
  b.res("r12", prev, "vss", 4e3);
  b.nmos("msw1", "iout", "d", tap1, "vss", 2e-6, 0.1e-6);
  b.nmos("msw2", "iout", "db", tap2, "vss", 2e-6, 0.1e-6);
  b.cap("cf", "iout", "vss", 30e-15);
  t.devicePair(name, "msw1", "msw2");
  b.endSubckt();
}

}  // namespace

void buildResDacVariantA(PartsContext ctx, const std::string& name) {
  buildResDacLadder(ctx, name, "n4", "n8");
}

void buildResDacVariantB(PartsContext ctx, const std::string& name) {
  buildResDacLadder(ctx, name, "n4", "n9");
}

void buildCapCell(PartsContext ctx, const std::string& name) {
  NetlistBuilder& b = ctx.builder;
  b.beginSubckt(name, {"top", "ctl", "ctlb", "vref", "vss"});
  b.cap("cu", "top", "bot", 10e-15);
  b.nmos("msr", "bot", "ctl", "vref", "vss", 1e-6, 0.1e-6);
  b.nmos("msg", "bot", "ctlb", "vss", "vss", 1e-6, 0.1e-6);
  b.endSubckt();
}

void buildCapDacArray(PartsContext ctx, const std::string& name,
                      int binaryBits, int thermoCells,
                      const std::string& cellMaster) {
  NetlistBuilder& b = ctx.builder;
  TruthComposer& t = ctx.truth;
  std::vector<std::string> ports{"vtop", "vin", "vref", "rst"};
  for (int i = 0; i < binaryBits; ++i) {
    ports.push_back(idx("b", i));
    ports.push_back(idx("bb", i));
  }
  for (int i = 0; i < thermoCells; ++i) {
    ports.push_back(idx("t", i));
    ports.push_back(idx("tb", i));
  }
  ports.push_back("vss");
  b.beginSubckt(name, ports);

  // Binary-weighted section: cap + differential switch pair per bit.
  for (int i = 0; i < binaryBits; ++i) {
    const double c = 10e-15 * std::pow(2.0, i);
    const double w = 1e-6 * std::pow(2.0, i);
    b.cap(idx("cb", i), "vtop", idx("nb", i), c);
    b.nmos(idx("msr", i), idx("nb", i), idx("b", i), "vref", "vss", w,
           0.1e-6);
    b.nmos(idx("msg", i), idx("nb", i), idx("bb", i), "vss", "vss", w,
           0.1e-6);
    t.devicePair(name, idx("msr", i), idx("msg", i));
  }
  // Thermometer section: identical unit cells, all mutually matched.
  for (int i = 0; i < thermoCells; ++i) {
    b.inst(idx("xcell", i), cellMaster,
           {"vtop", idx("t", i), idx("tb", i), "vref", "vss"});
    t.child(name, idx("xcell", i), cellMaster);
    for (int j = 0; j < i; ++j) {
      t.systemPair(name, idx("xcell", j), idx("xcell", i));
    }
  }
  // Sampling and reset.
  b.nmos("msamp", "vtop", "rst", "vin", "vss", 4e-6, 0.1e-6);
  b.cap("cdummy", "vtop", "vss", 10e-15);
  b.endSubckt();
}

void buildDff(PartsContext ctx, const std::string& name) {
  NetlistBuilder& b = ctx.builder;
  TruthComposer& t = ctx.truth;
  b.beginSubckt(name, {"d", "clk", "clkb", "q", "qb", "vdd", "vss"});
  // Master: transmission gate + back-to-back inverters.
  b.nmos("mtg1n", "d", "clk", "ma", "vss", 1e-6, 0.1e-6);
  b.pmos("mtg1p", "d", "clkb", "ma", "vdd", 2e-6, 0.1e-6);
  b.pmos("mi1p", "mb", "ma", "vdd", "vdd", 2e-6, 0.1e-6);
  b.nmos("mi1n", "mb", "ma", "vss", "vss", 1e-6, 0.1e-6);
  b.pmos("mi2p", "ma", "mb", "vdd", "vdd", 1e-6, 0.1e-6);
  b.nmos("mi2n", "ma", "mb", "vss", "vss", 0.5e-6, 0.1e-6);
  // Slave: transmission gate + output inverters.
  b.nmos("mtg2n", "mb", "clkb", "sa", "vss", 1e-6, 0.1e-6);
  b.pmos("mtg2p", "mb", "clk", "sa", "vdd", 2e-6, 0.1e-6);
  b.pmos("mi3p", "q", "sa", "vdd", "vdd", 2e-6, 0.1e-6);
  b.nmos("mi3n", "q", "sa", "vss", "vss", 1e-6, 0.1e-6);
  b.pmos("mi4p", "qb", "q", "vdd", "vdd", 2e-6, 0.1e-6);
  b.nmos("mi4n", "qb", "q", "vss", "vss", 1e-6, 0.1e-6);
  b.pmos("mi5p", "sa", "qb", "vdd", "vdd", 1e-6, 0.1e-6);
  b.nmos("mi5n", "sa", "qb", "vss", "vss", 0.5e-6, 0.1e-6);
  b.endSubckt();
  // Transmission-gate pairs of master/slave are matched.
  t.devicePair(name, "mtg1n", "mtg2n");
  t.devicePair(name, "mtg1p", "mtg2p");
}

void buildSarLogic(PartsContext ctx, const std::string& name, int bits,
                   const std::string& dffMaster) {
  NetlistBuilder& b = ctx.builder;
  TruthComposer& t = ctx.truth;
  std::vector<std::string> ports{"clk", "clkb", "cmp"};
  for (int i = 0; i < bits; ++i) {
    ports.push_back(idx("b", i));
    ports.push_back(idx("bb", i));
  }
  ports.insert(ports.end(), {"vdd", "vss"});
  b.beginSubckt(name, ports);
  // Bit-slice flip-flops: the shift ring plus the code register. The
  // registers are identical (and annotated as a matched row), but each
  // slice carries its own clock-gating pull-down chain whose depth and
  // fan-in depend on the bit position — the positional logic real SAR
  // sequencers have. This breaks the chain's translation symmetry: slice
  // surroundings are structurally distinct even though the registers
  // match.
  for (int i = 0; i < bits; ++i) {
    const std::string din = i == 0 ? "cmp" : idx("b", i - 1);
    b.inst(idx("xdff", i), dffMaster,
           {din, "clk", "clkb", idx("b", i), idx("bb", i), "vdd", "vss"});
    t.child(name, idx("xdff", i), dffMaster);
    for (int j = 0; j < i; ++j) {
      t.systemPair(name, idx("xdff", j), idx("xdff", i));
    }
    // Per-slice gating: gclk_i pulled down through a series chain of
    // (i % 3) + 1 transistors gated by clk and earlier code bits.
    const std::string gnode = idx("gclk", i);
    b.pmos(idx("mgatep", i), gnode, "clkb", "vdd", "vdd", 1e-6, 0.1e-6);
    const int depth = (i % 3) + 1;
    std::string below = gnode;
    for (int k = 0; k < depth; ++k) {
      const std::string next =
          k == depth - 1 ? "vss" : idx("gn" + std::to_string(i) + "_", k);
      const std::string gate =
          k == 0 ? "clk" : idx("b", (i + k) % std::max(1, i));
      b.nmos(idx("mgaten" + std::to_string(i) + "_", k), below, gate, next,
             "vss", 1e-6, 0.1e-6);
      below = next;
    }
  }
  // Glue: clock gating NAND and ready detector inverters.
  b.pmos("mgp1", "gclk", "clk", "vdd", "vdd", 2e-6, 0.1e-6);
  b.pmos("mgp2", "gclk", "cmp", "vdd", "vdd", 2e-6, 0.1e-6);
  b.nmos("mgn1", "gclk", "clk", "gn1", "vss", 1e-6, 0.1e-6);
  b.nmos("mgn2", "gn1", "cmp", "vss", "vss", 1e-6, 0.1e-6);
  b.pmos("mrp", "rdy", "gclk", "vdd", "vdd", 1e-6, 0.1e-6);
  b.nmos("mrn", "rdy", "gclk", "vss", "vss", 0.5e-6, 0.1e-6);
  b.endSubckt();
}

void buildBootstrapSwitch(PartsContext ctx, const std::string& name) {
  NetlistBuilder& b = ctx.builder;
  b.beginSubckt(name, {"vin", "vout", "clk", "clkb", "vdd", "vss"});
  b.nmos("msw", "vout", "boost", "vin", "vss", 8e-6, 0.1e-6, 4);
  b.cap("cboot", "boost", "bootb", 200e-15);
  b.nmos("mc1", "bootb", "clkb", "vss", "vss", 2e-6, 0.1e-6);
  b.pmos("mc2", "bootb", "clkb", "vdd", "vdd", 4e-6, 0.1e-6);
  b.nmos("mc3", "boost", "clk", "chg", "vss", 2e-6, 0.1e-6);
  b.pmos("mc4", "chg", "clkb", "vdd", "vdd", 2e-6, 0.1e-6);
  b.nmos("mg1", "boost", "clkb", "gnd1", "vss", 1e-6, 0.1e-6);
  b.nmos("mg2", "gnd1", "clkb", "vss", "vss", 1e-6, 0.1e-6);
  b.pmos("mp1", "boost", "bootb", "bstp", "vdd", 2e-6, 0.1e-6);
  b.nmos("mn2", "bstp", "clk", "vin", "vss", 1e-6, 0.1e-6);
  b.cap("cpar", "vout", "vss", 15e-15);
  b.endSubckt();
}

void buildIntegrator(PartsContext ctx, const std::string& name,
                     const std::string& otaMaster, double rOhms,
                     double cFarads) {
  NetlistBuilder& b = ctx.builder;
  TruthComposer& t = ctx.truth;
  b.beginSubckt(name,
                {"vinp", "vinn", "voutp", "voutn", "ibias", "vdd", "vss"});
  b.res("rinp", "vinp", "vxp", rOhms);
  b.res("rinn", "vinn", "vxn", rOhms);
  b.inst("xota", otaMaster,
         {"vxp", "vxn", "voutn", "voutp", "ibias", "vdd", "vss"});
  b.cap("cfbp", "vxp", "voutn", cFarads);
  b.cap("cfbn", "vxn", "voutp", cFarads);
  b.endSubckt();

  t.child(name, "xota", otaMaster);
  t.systemPair(name, "rinp", "rinn");
  t.systemPair(name, "cfbp", "cfbn");
}

}  // namespace ancstr::circuits
