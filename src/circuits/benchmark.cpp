#include "circuits/benchmark.h"

#include "core/candidates.h"
#include "netlist/flatten.h"
#include "util/error.h"

namespace ancstr::circuits {

CircuitBenchmark adcBenchmark(int index) {
  auto all = adcBenchmarks();
  if (index < 1 || static_cast<std::size_t>(index) > all.size()) {
    throw Error("adcBenchmark: index out of range");
  }
  return std::move(all[static_cast<std::size_t>(index - 1)]);
}

BenchmarkStats computeStats(const CircuitBenchmark& bench) {
  BenchmarkStats stats;
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  stats.devices = design.devices().size();
  stats.nets = design.nets().size();
  const CandidateSet candidates = enumerateCandidates(design, bench.lib);
  stats.validPairs = candidates.pairs.size();
  stats.systemPairs = candidates.count(ConstraintLevel::kSystem);
  stats.devicePairs = candidates.count(ConstraintLevel::kDevice);
  stats.truthConstraints = bench.truth.size();
  return stats;
}

}  // namespace ancstr::circuits
