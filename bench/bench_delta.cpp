// Incremental (ECO) extraction benchmark (core/engine.h extractDelta):
// a 10%-edit workload over ten deep block towers, measuring the delta
// path against a cold full extract of the same edited version. The
// speedup case emits the cold/delta ratio plus the bitwise-equality
// verdict the delta contract promises; CI gates the ratio with
// scripts/gate_counters.py (delta must stay >= 3x faster than cold).
//
// Workload shape: each tower is a depth-kDepth spine — every spine
// master instantiates the next spine level plus a small stub sibling —
// with per-(tower, level) unique device sizing so every subtree hash is
// distinct (no within-run dedup). Sibling spine/stub pairs (and the ten
// tower roots under the top) make every node a block-embedding
// candidate, so the full extraction's detection work scales with
// depth x devices while GNN inference stays linear in devices. The ECO
// edits the bottom of one tower, dirtying that tower's whole spine
// (~10% of the design); the other nine towers are served from the block
// and pair caches.
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "harness.h"
#include "netlist/builder.h"
#include "util/timer.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

constexpr int kTowers = 10;  ///< tower count; the ECO touches one of them
constexpr int kDepth = 32;   ///< spine levels per tower

/// Per-(tower, level, device) unique MOS width: every master's content
/// hash — and therefore every subtree hash — is distinct, so nothing
/// dedups inside one extraction and cache reuse across versions is
/// attributable to the delta path alone.
double mosWidth(int tower, int level, int dev) {
  return 1e-6 * (1.0 + 0.01 * (tower * kDepth + level) + 0.2 * dev);
}

/// Four uniquely sized devices per cell (two matched NMOS, two matched
/// PMOS by position, so each node also carries device-level candidates).
void addCellDevices(NetlistBuilder& b, int tower, int level, int offset,
                    double bump) {
  const auto w = [&](int dev) { return mosWidth(tower, level, dev + offset); };
  b.nmos("m1", "vout", "vin", "vss", "vss", w(0) * bump, 2e-7);
  b.nmos("m2", "mid", "vin", "vss", "vss", w(1) * bump, 2e-7);
  b.pmos("m3", "vout", "mid", "vdd", "vdd", w(2) * bump, 2e-7);
  b.pmos("m4", "mid", "vin", "vdd", "vdd", w(3) * bump, 2e-7);
}

/// ECO workload: kTowers spine towers under one top. Master names are
/// chosen so blockCategory (core/candidates.h) maps every spine and stub
/// master to the same category: spine level J pairs with its stub
/// sibling at every level, and the tower roots pair with each other
/// under the top — every hierarchy node below the top becomes a block
/// candidate. The edit rewrites tower 0 outright (every spine and stub
/// width doubled): exactly 10% of the design's devices are dirty, while
/// the other nine towers keep their baseline subtree hashes.
Library makeEcoLibrary(bool edited) {
  NetlistBuilder b;
  for (int t = 0; t < kTowers; ++t) {
    const std::string tower = "t" + std::to_string(t);
    const double bump = edited && t == 0 ? 2.0 : 1.0;
    for (int j = kDepth - 1; j >= 0; --j) {
      const std::string level = std::to_string(j);
      if (j > 0) {
        b.beginSubckt(tower + "_b" + level, {"vin", "vout", "vdd", "vss"});
        addCellDevices(b, t, j, 4, bump);
        b.endSubckt();
      }
      b.beginSubckt(tower + "_a" + level, {"vin", "vout", "vdd", "vss"});
      addCellDevices(b, t, j, 0, bump);
      if (j + 1 < kDepth) {
        const std::string next = std::to_string(j + 1);
        b.inst("xa", tower + "_a" + next, {"mid", "vout", "vdd", "vss"});
        b.inst("xb", tower + "_b" + next, {"mid", "vout", "vdd", "vss"});
      }
      b.endSubckt();
    }
  }
  b.beginSubckt("eco_top", {"vin", "vdd", "vss"});
  for (int t = 0; t < kTowers; ++t) {
    const std::string n = std::to_string(t);
    b.inst("x" + n, "t" + n + "_a0", {"vin", "out" + n, "vdd", "vss"});
  }
  b.endSubckt();
  return b.build("eco_top");
}

const Library& baseLibrary() {
  static const Library lib = makeEcoLibrary(false);
  return lib;
}

const Library& editedLibrary() {
  static const Library lib = makeEcoLibrary(true);
  return lib;
}

/// One pipeline trained once per run; the delta cases measure serving
/// against frozen weights, so training quality (3 epochs) is irrelevant.
Pipeline& trainedPipeline(BenchContext& ctx) {
  static Pipeline pipeline = [&] {
    PipelineConfig config;
    config.train.epochs = 3;
    config.threads = ctx.threads();
    Pipeline p(config);
    p.train({&baseLibrary()});
    return p;
  }();
  return pipeline;
}

EngineConfig engineConfig(BenchContext& ctx) {
  EngineConfig config;
  config.threads = ctx.threads();
  return config;
}

bool bitwiseEqual(const ExtractionResult& a, const ExtractionResult& b) {
  const DetectionResult& da = a.detection;
  const DetectionResult& db = b.detection;
  if (da.scored.size() != db.scored.size() ||
      std::memcmp(&da.systemThreshold, &db.systemThreshold,
                  sizeof(double)) != 0 ||
      std::memcmp(&da.deviceThreshold, &db.deviceThreshold,
                  sizeof(double)) != 0) {
    return false;
  }
  for (std::size_t j = 0; j < da.scored.size(); ++j) {
    const ScoredCandidate& ca = da.scored[j];
    const ScoredCandidate& cb = db.scored[j];
    if (!(ca.pair.a == cb.pair.a) || !(ca.pair.b == cb.pair.b) ||
        ca.pair.hierarchy != cb.pair.hierarchy ||
        ca.pair.level != cb.pair.level || ca.accepted != cb.accepted ||
        std::memcmp(&ca.similarity, &cb.similarity, sizeof(double)) != 0) {
      return false;
    }
  }
  const nn::Matrix& za = a.embeddings;
  const nn::Matrix& zb = b.embeddings;
  if (za.rows() != zb.rows() || za.cols() != zb.cols()) return false;
  for (std::size_t r = 0; r < za.rows(); ++r) {
    if (std::memcmp(za.row(r), zb.row(r), za.cols() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// Cold full extract of the edited version: the ground-truth cost an ECO
/// pays without the delta path.
void coldCase(BenchContext& ctx) {
  const ExtractionEngine engine(trainedPipeline(ctx), engineConfig(ctx));
  ExtractionResult result = engine.extract(editedLibrary());
  doNotOptimize(result);
  ctx.setReport(std::move(result.report));
  ctx.setCounter("devices",
                 static_cast<double>(editedLibrary().flatDeviceCount()));
}

/// Identity delta on a warm baseline: the whole result is one design-cache
/// hit — the ceiling of what incremental serving can save.
void identityCase(BenchContext& ctx) {
  static const ExtractionEngine engine(trainedPipeline(ctx),
                                       engineConfig(ctx));
  static const bool warmed = [] {
    engine.extract(baseLibrary());
    return true;
  }();
  (void)warmed;
  DeltaReport delta;
  const ExtractionResult result =
      engine.extractDelta(baseLibrary(), baseLibrary(), {}, &delta);
  doNotOptimize(result);
  ctx.setCounter("identical", delta.diff.identical() ? 1.0 : 0.0);
  ctx.setCounter("design_cache_hits",
                 static_cast<double>(delta.reuse.design.hits));
}

/// Cold and delta in one rep: a fresh engine extracts the edited version
/// from scratch, then a second engine with the baseline resident runs
/// extractDelta. Emits the speedup ratio, the reuse counters, and the
/// bitwise delta-equals-cold verdict. The eco engine warms through
/// extractDelta(base, base) — the v1 run an ECO flow already executed —
/// which also seeds the engine's subtree-hash memo for the baseline.
void speedupCase(BenchContext& ctx) {
  const ExtractionEngine cold(trainedPipeline(ctx), engineConfig(ctx));
  Stopwatch coldWatch;
  const ExtractionResult coldResult = cold.extract(editedLibrary());
  const double coldSeconds = coldWatch.seconds();

  const ExtractionEngine eco(trainedPipeline(ctx), engineConfig(ctx));
  (void)eco.extractDelta(baseLibrary(), baseLibrary());
  DeltaReport delta;
  Stopwatch deltaWatch;
  const ExtractionResult deltaResult =
      eco.extractDelta(baseLibrary(), editedLibrary(), {}, &delta);
  const double deltaSeconds = deltaWatch.seconds();

  ctx.setCounter("cold_seconds", coldSeconds);
  ctx.setCounter("delta_seconds", deltaSeconds);
  ctx.setCounter("delta_diff_seconds",
                 deltaResult.report.phaseSeconds("engine.diff"));
  ctx.setCounter("delta_inference_seconds",
                 deltaResult.report.phaseSeconds("extract.inference"));
  ctx.setCounter("delta_detection_seconds",
                 deltaResult.report.phaseSeconds("extract.detection"));
  ctx.setCounter("delta_graph_seconds",
                 deltaResult.report.phaseSeconds("extract.graph_build"));
  ctx.setCounter("speedup",
                 deltaSeconds > 0.0 ? coldSeconds / deltaSeconds : 0.0);
  ctx.setCounter("bitwise_equal",
                 bitwiseEqual(coldResult, deltaResult) ? 1.0 : 0.0);
  ctx.setCounter("dirty_nodes", static_cast<double>(delta.diff.dirtyNodes));
  ctx.setCounter("clean_nodes", static_cast<double>(delta.diff.cleanNodes));
  ctx.setCounter("reusable_devices",
                 static_cast<double>(delta.diff.reusableDevices));
  ctx.setCounter("block_reuse_hits",
                 static_cast<double>(delta.reuse.blocks.hits));
  ctx.setCounter("pair_reuse_hits",
                 static_cast<double>(delta.reuse.pairs.hits));
}

[[maybe_unused]] const bool kRegistered = [] {
  registerBench("engine.delta.eco10.cold", coldCase);
  registerBench("engine.delta.eco10.identity", identityCase);
  registerBench("engine.delta.eco10.speedup", speedupCase);
  return true;
}();

}  // namespace

ANCSTR_BENCH_MAIN("bench_delta")
