#include "netlist/spice_parser.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "netlist/expr.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/trace.h"

namespace ancstr {
namespace {

struct LogicalLine {
  std::string text;
  std::size_t line = 0;  // 1-based line of the first physical line
};

/// Thrown to abandon the current card in fail-soft mode; parseText
/// resynchronizes to the next logical line. Never escapes the parser.
struct CardSkip {};

/// Strips comments and joins '+' continuation lines.
std::vector<LogicalLine> toLogicalLines(std::string_view text) {
  std::vector<LogicalLine> out;
  std::size_t lineNo = 0;
  std::istringstream in{std::string(text)};
  std::string raw;
  while (std::getline(in, raw)) {
    ++lineNo;
    std::string_view sv = raw;
    // Trailing comment forms: "; ..." anywhere, "$ " with surrounding space.
    if (const auto semi = sv.find(';'); semi != std::string_view::npos) {
      sv = sv.substr(0, semi);
    }
    if (const auto dollar = sv.find(" $"); dollar != std::string_view::npos) {
      sv = sv.substr(0, dollar);
    }
    sv = str::trim(sv);
    if (sv.empty()) continue;
    if (sv.front() == '*') continue;  // full-line comment
    if (sv.front() == '+') {
      if (out.empty()) continue;  // stray continuation; ignore
      out.back().text += ' ';
      out.back().text += str::trim(sv.substr(1));
    } else {
      out.push_back({std::string(sv), lineNo});
    }
  }
  return out;
}

/// Normalises "k = v", "k =v", "k= v" into "k=v" so tokenisation is easy.
std::string normalizeAssignments(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '=') {
      while (!out.empty() && out.back() == ' ') out.pop_back();
      out.push_back('=');
      std::size_t j = i + 1;
      while (j < s.size() && s[j] == ' ') ++j;
      i = j - 1;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// Stable key identifying a file for include-cycle detection.
std::string includeKey(const std::filesystem::path& path) {
  std::error_code ec;
  const std::filesystem::path canon = std::filesystem::weakly_canonical(
      path, ec);
  return ec ? path.lexically_normal().string() : canon.string();
}

class SpiceParser {
 public:
  SpiceParser(std::string_view fileName, const SpiceParseOptions& options,
              diag::DiagnosticSink& sink)
      : file_(fileName), options_(options), sink_(sink) {}

  /// Marks `key` as being parsed; parseSpiceFile seeds the root file so a
  /// self-include is caught as a cycle.
  void pushRootFile(std::string key) { includeStack_.push_back(std::move(key)); }

  Library finish() {
    if (inSubckt_) {
      sink_.error(diag::codes::kUnterminatedSubckt, file_, subcktLine_,
                  "missing .ends for subckt");
      // Fail-soft: implicitly close so the devices parsed so far survive.
      inSubckt_ = false;
      subcktParams_.clear();
    }
    try {
      lib_.validate();
    } catch (const NetlistError& e) {
      if (sink_.strict()) throw;
      sink_.error(diag::codes::kInvalidNetlist, file_, 0, e.what());
    }
    return std::move(lib_);
  }

  void parseText(std::string_view text, const std::string& dir) {
    for (const LogicalLine& ll : toLogicalLines(text)) {
      try {
        parseLine(ll, dir);
      } catch (const CardSkip&) {
        // Resynchronize: drop this card, continue with the next one.
      } catch (const NetlistError& e) {
        // Structural rejection from the data model (duplicate names, ...):
        // strict mode propagates as before, fail-soft downgrades to a
        // diagnostic and drops the card.
        if (sink_.strict()) throw;
        sink_.error(diag::codes::kBadCard, file_, ll.line, e.what());
      }
    }
  }

 private:
  /// Reports an error and abandons the current card. In strict mode the
  /// sink throws ParseError, so control never reaches CardSkip.
  [[noreturn]] void fail(std::string_view code, std::size_t line,
                         std::string message) {
    sink_.error(code, file_, line, std::move(message));
    throw CardSkip{};
  }

  void parseLine(const LogicalLine& ll, const std::string& dir) {
    const std::string norm = normalizeAssignments(ll.text);
    std::vector<std::string> tokens = str::splitTokens(norm);
    if (tokens.empty()) return;
    const std::string head = str::toLower(tokens[0]);

    // While skipping a broken subckt body, only the closing .ends matters.
    if (skipUntilEnds_ && head != ".ends") return;

    if (head[0] == '.') {
      parseDirective(head, tokens, ll, dir);
      return;
    }
    switch (head[0]) {
      case 'm': parseMos(tokens, ll); break;
      case 'r': parsePassive(tokens, ll, 'r'); break;
      case 'c': parsePassive(tokens, ll, 'c'); break;
      case 'l': parsePassive(tokens, ll, 'l'); break;
      case 'd': parseDiode(tokens, ll); break;
      case 'q': parseBjt(tokens, ll); break;
      case 'x': parseInstance(tokens, ll); break;
      case 'v':
      case 'i':
      case 'e':
      case 'g':
      case 'f':
      case 'h':
        // Sources and controlled sources carry no layout geometry; skip.
        log::debug() << file_ << ":" << ll.line << ": skipping source card '"
                     << tokens[0] << "'";
        break;
      default:
        fail(diag::codes::kUnknownCard, ll.line,
             "unrecognised card '" + tokens[0] + "'");
    }
  }

  void parseDirective(const std::string& head,
                      const std::vector<std::string>& tokens,
                      const LogicalLine& ll, const std::string& dir) {
    if (head == ".subckt") {
      if (inSubckt_) {
        sink_.error(diag::codes::kNestedSubckt, file_, ll.line,
                    "nested .subckt is not supported");
        // Fail-soft: drop the nested body up to its .ends, keep the outer.
        skipUntilEnds_ = true;
        throw CardSkip{};
      }
      if (tokens.size() < 2) {
        sink_.error(diag::codes::kBadDirective, file_, ll.line,
                    ".subckt requires a name");
        skipUntilEnds_ = true;
        throw CardSkip{};
      }
      std::vector<std::string> ports;
      ParamEnv localParams;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto [key, value] = str::splitFirst(tokens[i], '=');
        if (value.empty()) {
          ports.emplace_back(tokens[i]);
        } else if (auto v = evalParamValue(value, params_)) {
          localParams[str::toLower(key)] = *v;
        } else {
          sink_.error(diag::codes::kBadParameter, file_, ll.line,
                      "bad default parameter '" + tokens[i] + "'");
          skipUntilEnds_ = true;
          throw CardSkip{};
        }
      }
      // Fail-soft duplicate check (strict mode keeps the classic
      // NetlistError from Library::addSubckt).
      if (!sink_.strict() && lib_.findSubckt(tokens[1])) {
        sink_.error(diag::codes::kBadDirective, file_, ll.line,
                    "duplicate .subckt '" + tokens[1] + "'");
        skipUntilEnds_ = true;
        throw CardSkip{};
      }
      cur_ = lib_.addSubckt(tokens[1]);
      inSubckt_ = true;
      subcktLine_ = ll.line;
      subcktParams_ = std::move(localParams);
      for (const std::string& p : ports) {
        lib_.mutableSubckt(cur_).addNet(p, /*isPort=*/true);
      }
    } else if (head == ".ends") {
      if (skipUntilEnds_) {
        skipUntilEnds_ = false;
        return;
      }
      if (!inSubckt_) {
        fail(diag::codes::kStrayEnds, ll.line, ".ends without .subckt");
      }
      inSubckt_ = false;
      subcktParams_.clear();
    } else if (head == ".param") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = str::splitFirst(tokens[i], '=');
        if (value.empty()) {
          fail(diag::codes::kBadParameter, ll.line,
               ".param entry '" + tokens[i] + "' lacks a value");
        }
        const auto v = evalParamValue(value, env());
        if (!v) {
          fail(diag::codes::kBadParameter, ll.line,
               "cannot evaluate parameter '" + tokens[i] + "'");
        }
        if (inSubckt_) {
          subcktParams_[str::toLower(key)] = *v;
        } else {
          params_[str::toLower(key)] = *v;
        }
      }
    } else if (head == ".global") {
      // Global nets need no special handling: names unify within subckts.
    } else if (head == ".model") {
      // Model cards are accepted; types are inferred from the model name.
    } else if (head == ".include" || head == ".inc" || head == ".lib") {
      parseInclude(tokens, ll, dir);
    } else if (head == ".end") {
      // End of deck.
    } else if (options_.strictDirectives) {
      fail(diag::codes::kBadDirective, ll.line,
           "unknown directive '" + head + "'");
    } else {
      log::debug() << file_ << ":" << ll.line << ": ignoring directive '"
                   << head << "'";
    }
  }

  void parseInclude(const std::vector<std::string>& tokens,
                    const LogicalLine& ll, const std::string& dir) {
    if (tokens.size() < 2) {
      fail(diag::codes::kBadDirective, ll.line, ".include requires a path");
    }
    std::string path = tokens[1];
    if (path.size() >= 2 && (path.front() == '"' || path.front() == '\'')) {
      path = path.substr(1, path.size() - 2);
    }
    const std::filesystem::path full = std::filesystem::path(dir) / path;
    const std::string key = includeKey(full);
    if (std::find(includeStack_.begin(), includeStack_.end(), key) !=
        includeStack_.end()) {
      fail(diag::codes::kIncludeCycle, ll.line,
           "cyclic include of '" + full.string() + "'");
    }
    if (includeStack_.size() >= kMaxIncludeDepth) {
      fail(diag::codes::kIncludeDepth, ll.line,
           "include depth exceeds " + std::to_string(kMaxIncludeDepth));
    }
    std::ifstream in(full);
    if (fault::shouldFail("spice.open") || !in) {
      fail(diag::codes::kIncludeMissing, ll.line,
           "cannot open include file '" + full.string() + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    includeStack_.push_back(key);
    const std::string outerFile = std::exchange(file_, full.string());
    try {
      parseText(buf.str(), full.parent_path().string());
    } catch (...) {
      file_ = outerFile;
      includeStack_.pop_back();
      throw;
    }
    file_ = outerFile;
    includeStack_.pop_back();
  }

  ParamEnv env() const {
    if (!inSubckt_) return params_;
    ParamEnv merged = params_;
    for (const auto& [k, v] : subcktParams_) merged[k] = v;
    return merged;
  }

  SubcktDef& scope(const LogicalLine& ll) {
    if (inSubckt_) return lib_.mutableSubckt(cur_);
    if (topId_ == kInvalidId) {
      topId_ = lib_.addSubckt(options_.topName);
      lib_.setTop(topId_);
    }
    (void)ll;
    return lib_.mutableSubckt(topId_);
  }

  /// Splits tokens[from..] into positional tokens and key=value params.
  static void splitArgs(const std::vector<std::string>& tokens,
                        std::size_t from, std::vector<std::string>& positional,
                        std::vector<std::pair<std::string, std::string>>& kv) {
    for (std::size_t i = from; i < tokens.size(); ++i) {
      const auto [key, value] = str::splitFirst(tokens[i], '=');
      if (value.empty()) {
        positional.emplace_back(tokens[i]);
      } else {
        kv.emplace_back(str::toLower(key), std::string(value));
      }
    }
  }

  double evalOrFail(const std::string& text, const LogicalLine& ll) {
    const auto v = evalParamValue(text, env());
    if (!v) {
      fail(diag::codes::kBadParameter, ll.line,
           "cannot evaluate value '" + text + "'");
    }
    return *v;
  }

  void applyDeviceParams(
      Device& dev, const std::vector<std::pair<std::string, std::string>>& kv,
      const LogicalLine& ll) {
    for (const auto& [key, value] : kv) {
      if (key == "w") {
        dev.params.w = evalOrFail(value, ll);
      } else if (key == "l") {
        dev.params.l = evalOrFail(value, ll);
      } else if (key == "nf" || key == "fingers") {
        dev.params.nf = static_cast<int>(evalOrFail(value, ll));
      } else if (key == "m" || key == "mult") {
        dev.params.m = static_cast<int>(evalOrFail(value, ll));
      } else if (key == "layers" || key == "lay" || key == "stm" ||
                 key == "spm") {
        dev.params.layers = static_cast<int>(evalOrFail(value, ll));
      } else if (key == "r" || key == "c" || key == "val") {
        dev.params.value = evalOrFail(value, ll);
      } else {
        log::debug() << file_ << ":" << ll.line << ": ignoring parameter '"
                     << key << "' on device '" << dev.name << "'";
      }
    }
  }

  void parseMos(const std::vector<std::string>& tokens,
                const LogicalLine& ll) {
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> kv;
    splitArgs(tokens, 1, pos, kv);
    if (pos.size() < 5) {
      fail(diag::codes::kBadCard, ll.line,
           "MOS card needs 4 terminals and a model");
    }
    Device dev;
    dev.name = tokens[0];
    dev.model = pos[4];
    dev.type = deviceTypeFromModelName(pos[4]);
    if (!isMos(dev.type)) {
      fail(diag::codes::kBadCard, ll.line,
           "model '" + pos[4] + "' is not a MOS model");
    }
    applyDeviceParams(dev, kv, ll);
    SubcktDef& def = scope(ll);
    dev.pins = {{PinFunction::kDrain, def.addNet(pos[0])},
                {PinFunction::kGate, def.addNet(pos[1])},
                {PinFunction::kSource, def.addNet(pos[2])},
                {PinFunction::kBulk, def.addNet(pos[3])}};
    def.addDevice(std::move(dev));
  }

  void parsePassive(const std::vector<std::string>& tokens,
                    const LogicalLine& ll, char kind) {
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> kv;
    splitArgs(tokens, 1, pos, kv);
    if (pos.size() < 2) {
      fail(diag::codes::kBadCard, ll.line, "passive card needs two terminals");
    }
    Device dev;
    dev.name = tokens[0];
    // Remaining positional tokens: value and/or model name, in either order.
    for (std::size_t i = 2; i < pos.size(); ++i) {
      if (auto v = evalParamValue(pos[i], env())) {
        dev.params.value = *v;
      } else {
        dev.model = pos[i];
      }
    }
    if (!dev.model.empty()) {
      dev.type = deviceTypeFromModelName(dev.model);
    }
    const bool typeMatchesKind =
        (kind == 'r' && isResistor(dev.type)) ||
        (kind == 'c' && isCapacitor(dev.type)) ||
        (kind == 'l' && dev.type == DeviceType::kInd);
    if (!typeMatchesKind) {
      dev.type = kind == 'r'   ? DeviceType::kResPoly
                 : kind == 'c' ? DeviceType::kCapMom
                               : DeviceType::kInd;
    }
    applyDeviceParams(dev, kv, ll);
    SubcktDef& def = scope(ll);
    const auto funcs = pinFunctions(dev.type);
    dev.pins = {{funcs[0], def.addNet(pos[0])},
                {funcs[1], def.addNet(pos[1])}};
    def.addDevice(std::move(dev));
  }

  void parseDiode(const std::vector<std::string>& tokens,
                  const LogicalLine& ll) {
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> kv;
    splitArgs(tokens, 1, pos, kv);
    if (pos.size() < 3) {
      fail(diag::codes::kBadCard, ll.line, "diode card needs 2 nets and a model");
    }
    Device dev;
    dev.name = tokens[0];
    dev.model = pos[2];
    dev.type = DeviceType::kDio;
    applyDeviceParams(dev, kv, ll);
    SubcktDef& def = scope(ll);
    dev.pins = {{PinFunction::kAnode, def.addNet(pos[0])},
                {PinFunction::kCathode, def.addNet(pos[1])}};
    def.addDevice(std::move(dev));
  }

  void parseBjt(const std::vector<std::string>& tokens,
                const LogicalLine& ll) {
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> kv;
    splitArgs(tokens, 1, pos, kv);
    if (pos.size() < 4) {
      fail(diag::codes::kBadCard, ll.line, "BJT card needs c b e and a model");
    }
    Device dev;
    dev.name = tokens[0];
    dev.model = pos.back();
    dev.type = deviceTypeFromModelName(dev.model);
    if (!isBipolar(dev.type)) dev.type = DeviceType::kNpn;
    applyDeviceParams(dev, kv, ll);
    SubcktDef& def = scope(ll);
    dev.pins = {{PinFunction::kCollector, def.addNet(pos[0])},
                {PinFunction::kBase, def.addNet(pos[1])},
                {PinFunction::kEmitter, def.addNet(pos[2])}};
    def.addDevice(std::move(dev));
  }

  void parseInstance(const std::vector<std::string>& tokens,
                     const LogicalLine& ll) {
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> kv;
    splitArgs(tokens, 1, pos, kv);
    if (pos.size() < 2) {
      fail(diag::codes::kBadCard, ll.line, "X card needs nets and a master name");
    }
    if (!kv.empty()) {
      log::debug() << file_ << ":" << ll.line
                   << ": ignoring instance parameter overrides on '"
                   << tokens[0] << "'";
    }
    const std::string masterName = pos.back();
    const auto master = lib_.findSubckt(masterName);
    if (!master) {
      fail(diag::codes::kUnknownMaster, ll.line,
           "unknown subckt '" + masterName +
               "' (forward references are not supported)");
    }
    // Fail-soft catches arity mismatches here (strict mode keeps the
    // classic behaviour: validate() throws NetlistError at finish()).
    if (!sink_.strict() &&
        pos.size() - 1 != lib_.subckt(*master).ports().size()) {
      fail(diag::codes::kPortArity, ll.line,
           "instance '" + tokens[0] + "' connects " +
               std::to_string(pos.size() - 1) + " nets but '" + masterName +
               "' has " +
               std::to_string(lib_.subckt(*master).ports().size()) +
               " ports");
    }
    SubcktDef& def = scope(ll);
    Instance instance;
    instance.name = tokens[0];
    instance.master = *master;
    for (std::size_t i = 0; i + 1 < pos.size(); ++i) {
      instance.connections.push_back(def.addNet(pos[i]));
    }
    def.addInstance(std::move(instance));
  }

  std::string file_;
  SpiceParseOptions options_;
  diag::DiagnosticSink& sink_;
  Library lib_;
  ParamEnv params_;
  ParamEnv subcktParams_;
  bool inSubckt_ = false;
  bool skipUntilEnds_ = false;
  std::size_t subcktLine_ = 0;
  SubcktId cur_ = kInvalidId;
  SubcktId topId_ = kInvalidId;
  std::vector<std::string> includeStack_;
};

Library parseSpiceText(std::string_view text, std::string_view fileName,
                       const SpiceParseOptions& options,
                       diag::DiagnosticSink& sink) {
  const trace::TraceSpan span("parse.spice");
  SpiceParser parser(fileName, options, sink);
  parser.parseText(text, ".");
  return parser.finish();
}

Library parseSpiceFromFile(const std::filesystem::path& path,
                           const SpiceParseOptions& options,
                           diag::DiagnosticSink& sink) {
  const trace::TraceSpan span("parse.spice");
  std::ifstream in(path);
  if (fault::shouldFail("spice.open") || !in) {
    sink.error(diag::codes::kIoFailure, path.string(), 0, "cannot open file");
    return Library{};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  SpiceParser parser(path.string(), options, sink);
  parser.pushRootFile(includeKey(path));
  parser.parseText(buf.str(), path.parent_path().string());
  return parser.finish();
}

}  // namespace

Library parseSpice(std::string_view text, std::string_view fileName,
                   const SpiceParseOptions& options) {
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kStrict);
  return parseSpiceText(text, fileName, options, sink);
}

Library parseSpiceFile(const std::filesystem::path& path,
                       const SpiceParseOptions& options) {
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kStrict);
  return parseSpiceFromFile(path, options, sink);
}

diag::Parsed<Library> parseSpiceRecovering(std::string_view text,
                                           std::string_view fileName,
                                           const SpiceParseOptions& options) {
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  diag::Parsed<Library> out;
  out.value = parseSpiceText(text, fileName, options, sink);
  out.diagnostics = sink.take();
  return out;
}

diag::Parsed<Library> parseSpiceFileRecovering(
    const std::filesystem::path& path, const SpiceParseOptions& options) {
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  diag::Parsed<Library> out;
  out.value = parseSpiceFromFile(path, options, sink);
  out.diagnostics = sink.take();
  return out;
}

}  // namespace ancstr
