#include "nn/sparse.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace ancstr::nn {
namespace {

TEST(SparseMatrix, DuplicateTripletsCoalesce) {
  SparseMatrix m(2, 2, {{0, 1, 1.0}, {0, 1, 2.0}});
  EXPECT_EQ(m.nonZeros(), 1u);
  EXPECT_DOUBLE_EQ(m.toDense()(0, 1), 3.0);
}

TEST(SparseMatrix, OutOfRangeTripletThrows) {
  EXPECT_THROW(SparseMatrix(2, 2, {{0, 5, 1.0}}), ShapeError);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(6);
  std::vector<Triplet> triplets;
  for (int k = 0; k < 30; ++k) {
    triplets.push_back({rng.index(7), rng.index(5), rng.uniform(-1, 1)});
  }
  SparseMatrix sparse(7, 5, triplets);
  Matrix dense(5, 4);
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      dense(i, j) = rng.uniform(-1, 1);
    }
  }
  const Matrix viaSparse = sparse.multiply(dense);
  const Matrix viaDense = sparse.toDense().matmul(dense);
  ASSERT_TRUE(viaSparse.sameShape(viaDense));
  for (std::size_t i = 0; i < viaSparse.rows(); ++i) {
    for (std::size_t j = 0; j < viaSparse.cols(); ++j) {
      EXPECT_NEAR(viaSparse(i, j), viaDense(i, j), 1e-12);
    }
  }
}

TEST(SparseMatrix, MultiplyShapeChecked) {
  SparseMatrix m(2, 3, {});
  EXPECT_THROW(m.multiply(Matrix(2, 2)), ShapeError);
}

TEST(SparseMatrix, TransposeRoundTrip) {
  SparseMatrix m(3, 2, {{0, 1, 2.0}, {2, 0, -1.0}});
  const Matrix t = m.transposed().toDense();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_DOUBLE_EQ(t(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(t(0, 2), -1.0);
  EXPECT_EQ(m.transposed().transposed().toDense(), m.toDense());
}

TEST(SparseMatrix, EmptyMatrixWorks) {
  SparseMatrix m(3, 3, {});
  EXPECT_EQ(m.nonZeros(), 0u);
  const Matrix out = m.multiply(Matrix(3, 2, 1.0));
  EXPECT_DOUBLE_EQ(out.maxAbs(), 0.0);
}

}  // namespace
}  // namespace ancstr::nn
