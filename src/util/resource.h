// Process resource sampling for the bench harness: peak RSS and CPU time
// via getrusage, plus allocation counts from a thread-safe counting
// allocator hook (relaxed-atomic totals updated by the global operator
// new/delete replacements in resource.cpp).
//
// Like tracing and metrics, sampling observes and never steers: reading a
// sample is a handful of relaxed loads plus one getrusage call, and the
// allocator hook adds one relaxed fetch_add per allocation — it never
// changes which allocations happen.
#pragma once

#include <cstdint>

namespace ancstr::util {

/// Process-lifetime allocation totals from the counting allocator hook.
/// Monotonic; diff two reads to attribute allocations to a region.
struct MemoryCounters {
  std::uint64_t allocCount = 0;  ///< global operator new calls
  std::uint64_t freeCount = 0;   ///< global operator delete calls
  std::uint64_t allocBytes = 0;  ///< bytes requested from operator new
};

/// Current allocator-hook totals (relaxed loads; safe from any thread).
MemoryCounters memoryCounters() noexcept;

/// Peak resident set size of the process in bytes (getrusage ru_maxrss);
/// 0 when the platform does not report it. Monotonic over process life.
std::uint64_t peakRssBytes() noexcept;

/// One point-in-time resource reading.
struct ResourceSample {
  MemoryCounters memory;
  std::uint64_t peakRssBytes = 0;
  double userCpuSeconds = 0.0;
  double systemCpuSeconds = 0.0;

  static ResourceSample now() noexcept;

  /// This sample minus `before`. Allocation and CPU fields subtract
  /// (clamped at zero); peakRssBytes keeps this sample's absolute value
  /// because the kernel's high-water mark cannot be rewound.
  ResourceSample since(const ResourceSample& before) const noexcept;
};

}  // namespace ancstr::util
