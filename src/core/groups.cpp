#include "core/groups.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace ancstr {
namespace {

/// Union-find over dense indices.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Key identifying one module within one hierarchy (stable ids, never
/// names — rename-only edits keep the grouping keyspace unchanged).
struct ModuleKey {
  HierNodeId hierarchy;
  ModuleKind kind;
  std::uint32_t id;

  bool operator<(const ModuleKey& o) const {
    return std::tie(hierarchy, kind, id) < std::tie(o.hierarchy, o.kind, o.id);
  }
};

/// True when device `d` bridges devices `a` and `b`: some non-rail net of
/// `d` reaches both, with `a` and `b` attached through the same pin
/// function (the differential-pair tail / shared bias pattern).
bool bridges(const FlatDesign& design, FlatDeviceId d, FlatDeviceId a,
             FlatDeviceId b, std::size_t maxNetDegree) {
  for (const auto& [fn, net] : design.device(d).pins) {
    const auto& terms = design.netTerminals()[net];
    if (terms.size() > maxNetDegree) continue;
    PinFunction fnA{};
    PinFunction fnB{};
    bool hasA = false, hasB = false;
    for (const auto& [dev, pin] : terms) {
      const PinFunction devFn = design.device(dev).pins[pin].first;
      // Bulk ties (usually rails) are not symmetric coupling.
      if (devFn == PinFunction::kBulk) continue;
      if (dev == a) {
        hasA = true;
        fnA = devFn;
      }
      if (dev == b) {
        hasB = true;
        fnB = devFn;
      }
    }
    if (hasA && hasB && fnA == fnB) return true;
  }
  return false;
}

std::string localDeviceName(const FlatDesign& design, FlatDeviceId d) {
  const std::string& path = design.device(d).path;
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::size_t appendSymmetryGroups(const FlatDesign& design, ConstraintSet& set,
                                 const GroupOptions& options) {
  // Assign dense indices to the modules of every symmetry pair.
  const std::vector<const Constraint*> pairs =
      set.ofType(ConstraintType::kSymmetryPair);
  std::map<ModuleKey, std::size_t> indexOf;
  std::vector<ModuleKey> moduleAt;
  auto keyOf = [](const Constraint& c, std::size_t side) {
    return ModuleKey{c.hierarchy, c.members[side].kind, c.members[side].id};
  };
  auto indexFor = [&](const ModuleKey& key) {
    const auto [it, inserted] = indexOf.emplace(key, moduleAt.size());
    if (inserted) moduleAt.push_back(key);
    return it->second;
  };
  for (const Constraint* c : pairs) {
    indexFor(keyOf(*c, 0));
    indexFor(keyOf(*c, 1));
  }

  DisjointSets sets(moduleAt.size());
  for (const Constraint* c : pairs) {
    sets.unite(indexOf.at(keyOf(*c, 0)), indexOf.at(keyOf(*c, 1)));
  }

  // Pairs per component root, in a root-keyed deterministic order.
  std::map<std::size_t, std::vector<const Constraint*>> components;
  for (const Constraint* c : pairs) {
    components[sets.find(indexOf.at(keyOf(*c, 0)))].push_back(c);
  }

  std::set<FlatDeviceId> matchedDevices;
  for (const Constraint* c : pairs) {
    if (c->members[0].kind == ModuleKind::kDevice) {
      matchedDevices.insert(c->members[0].id);
      matchedDevices.insert(c->members[1].id);
    }
  }

  std::vector<Constraint> appended;
  std::set<std::pair<HierNodeId, FlatDeviceId>> selfSeen;
  for (auto& [root, members] : components) {
    std::sort(members.begin(), members.end(),
              [](const Constraint* a, const Constraint* b) {
                return std::tie(a->members[0].name, a->members[1].name) <
                       std::tie(b->members[0].name, b->members[1].name);
              });
    Constraint group;
    group.type = ConstraintType::kSymmetryGroup;
    group.hierarchy = members.front()->hierarchy;
    group.level = members.front()->level;
    group.pairCount = static_cast<std::uint32_t>(members.size());
    for (const Constraint* c : members) {
      group.members.push_back(c->members[0]);
      group.members.push_back(c->members[1]);
    }

    // Self-symmetric detection: unmatched leaf devices bridging a pair.
    if (options.detectSelfSymmetric) {
      std::map<std::string, FlatDeviceId> self;  // name-sorted, id-carrying
      for (const Constraint* c : members) {
        if (c->members[0].kind != ModuleKind::kDevice) continue;
        for (const FlatDeviceId d : design.node(c->hierarchy).leafDevices) {
          if (matchedDevices.count(d) != 0) continue;
          if (bridges(design, d, c->members[0].id, c->members[1].id,
                      options.maxNetDegree)) {
            self.emplace(localDeviceName(design, d), d);
          }
        }
      }
      for (const auto& [name, d] : self) {
        group.members.push_back({ModuleKind::kDevice, d, name});
        if (selfSeen.emplace(group.hierarchy, d).second) {
          Constraint single;
          single.type = ConstraintType::kSelfSymmetric;
          single.hierarchy = group.hierarchy;
          single.level = ConstraintLevel::kDevice;
          single.members = {{ModuleKind::kDevice, d, name}};
          appended.push_back(std::move(single));
        }
      }
    }
    appended.push_back(std::move(group));
  }

  const std::size_t count = appended.size();
  for (Constraint& c : appended) set.add(std::move(c));
  set.canonicalize();
  return count;
}

}  // namespace ancstr
