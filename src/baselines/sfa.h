// SFA baseline (MAGICAL, Xu et al., ICCAD 2019, paper reference [6]):
// device-level symmetry detection through heuristic structural pattern
// matching plus signal-flow propagation.
//
// Seeds: differential pairs (shared source, split gates/drains),
// cross-coupled pairs (gate-to-drain crossing), current-mirror / matched
// load pairs (shared gate and source), and same-valued passives sharing a
// net. Seed pairs then propagate along the signal flow: devices driven
// from the two sides of a matched pair with equal type/size are matched
// too. The heuristic is deliberately greedy - like the original it marks
// every structurally plausible pair, trading false positives for recall
// (the Table VI TPR/FPR profile).
#pragma once

#include <vector>

#include "core/detector.h"
#include "netlist/flatten.h"

namespace ancstr::sfa {

struct SfaConfig {
  /// Relative tolerance for W/L/value matching.
  double sizeTolerance = 0.01;
  /// Maximum signal-flow propagation rounds.
  int maxPropagationRounds = 8;
};

struct SfaResult {
  /// Every device-level candidate, similarity in {0, 1}.
  std::vector<ScoredCandidate> scored;
  double seconds = 0.0;
};

/// True when the two devices' sizing parameters match within tolerance.
bool sizesMatch(const FlatDevice& a, const FlatDevice& b, double tolerance);

/// Runs SFA over all device-level candidates of the design.
SfaResult detectDeviceConstraints(const FlatDesign& design, const Library& lib,
                                  const SfaConfig& config = {});

}  // namespace ancstr::sfa
