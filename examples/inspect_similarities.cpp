// Diagnostic example: trains the pipeline on the full corpus, then dumps
// every valid candidate pair of a chosen benchmark with its similarity,
// acceptance decision, and ground-truth label. Useful for threshold
// calibration and for understanding what the embeddings separate.
//
// Usage: inspect_similarities [benchmark-name] [epochs]
//   benchmark-name: adc1..adc5 or a block name (OTA1, COMP3, ...);
//                   default adc1.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "circuits/benchmark.h"
#include "core/pipeline.h"
#include "eval/ground_truth.h"
#include "util/string_utils.h"

using namespace ancstr;

int main(int argc, char** argv) {
  const std::string target = argc > 1 ? str::toLower(argv[1]) : "adc1";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 60;

  std::vector<circuits::CircuitBenchmark> corpus =
      circuits::blockBenchmarks();
  for (auto& adc : circuits::adcBenchmarks()) corpus.push_back(std::move(adc));

  const circuits::CircuitBenchmark* bench = nullptr;
  for (const auto& b : corpus) {
    if (str::toLower(b.name) == target) bench = &b;
  }
  if (bench == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", target.c_str());
    return 1;
  }

  PipelineConfig config;
  config.train.epochs = epochs;
  Pipeline pipeline(config);
  std::vector<const Library*> libs;
  for (const auto& b : corpus) libs.push_back(&b.lib);
  const TrainReport report = pipeline.train(libs);
  std::printf("trained %d epochs, final loss %.4f\n", epochs,
              report.finalLoss());

  const ExtractionResult result = pipeline.extract(bench->lib);
  const FlatDesign design = FlatDesign::elaborate(bench->lib);
  std::printf("thresholds: system %.4f device %.4f\n",
              result.detection.systemThreshold,
              result.detection.deviceThreshold);
  std::printf("%-7s %-9s %-40s %-9s %-4s %-5s\n", "level", "sim", "pair",
              "hierarchy", "acc", "truth");
  for (const ScoredCandidate& c : result.detection.scored) {
    const bool truth = bench->truth.matches(design, c.pair);
    const std::string pairName = c.pair.nameA + "/" + c.pair.nameB;
    const std::string& hier = design.node(c.pair.hierarchy).path;
    std::printf("%-7s %9.5f %-40s %-9s %-4s %-5s%s\n",
                constraintLevelName(c.pair.level), c.similarity,
                pairName.c_str(), hier.empty() ? "<top>" : hier.c_str(),
                c.accepted ? "yes" : "no", truth ? "TRUE" : "-",
                c.accepted != truth ? "   <-- mismatch" : "");
  }
  return 0;
}
