#include "util/fault.h"

#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>

#include "util/error.h"
#include "util/string_utils.h"

namespace ancstr::fault {
namespace {

struct SiteSpec {
  std::uint64_t at = 0;  ///< 1-based hit index to fire on; 0 = every hit
  bool fired = false;    ///< @N specs fire at most once
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, SiteSpec, std::less<>> specs;
  std::map<std::string, std::uint64_t, std::less<>> hits;
};

// Leaked singletons so fault checks are safe during static teardown,
// matching the trace/metrics registries.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<bool>& armedFlag() {
  static std::atomic<bool> armed{false};
  return armed;
}

void armLocked(Registry& r, std::string_view spec) {
  for (const std::string& entry : str::splitTokens(spec, ", \t")) {
    const std::string_view trimmed = str::trim(entry);
    if (trimmed.empty()) continue;
    const auto [site, hit] = str::splitFirst(trimmed, '@');
    SiteSpec s;
    if (!hit.empty()) {
      s.at = std::strtoull(std::string(hit).c_str(), nullptr, 10);
      if (s.at == 0) {
        throw Error("fault: bad hit index in spec '" + std::string(trimmed) +
                    "'");
      }
    }
    r.specs[std::string(site)] = s;
    r.hits[std::string(site)] = 0;
  }
  armedFlag().store(!r.specs.empty(), std::memory_order_relaxed);
}

void loadEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("ANCSTR_FAULT");
    if (env == nullptr || *env == '\0') return;
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    armLocked(r, env);
  });
}

}  // namespace

bool enabled() {
  loadEnvOnce();
  return armedFlag().load(std::memory_order_relaxed);
}

bool shouldFail(std::string_view site) {
  if (!enabled()) return false;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.specs.find(site);
  if (it == r.specs.end()) return false;
  const std::uint64_t hit = ++r.hits[std::string(site)];
  SiteSpec& spec = it->second;
  if (spec.at == 0) return true;
  if (spec.fired || hit != spec.at) return false;
  spec.fired = true;
  return true;
}

double corruptDouble(std::string_view site, double value) {
  return shouldFail(site) ? std::numeric_limits<double>::quiet_NaN() : value;
}

std::string corruptText(std::string_view site, std::string text) {
  if (shouldFail(site)) text.resize(text.size() / 2);
  return text;
}

void arm(std::string_view spec) {
  loadEnvOnce();
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  armLocked(r, spec);
}

void disarmAll() {
  loadEnvOnce();
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.specs.clear();
  r.hits.clear();
  armedFlag().store(false, std::memory_order_relaxed);
}

}  // namespace ancstr::fault
