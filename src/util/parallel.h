// Deterministic data parallelism for the extraction hot paths.
//
// Design constraints (see docs/architecture.md, "Concurrency model"):
//   * no work stealing, no dynamic scheduling: parallelFor statically
//     partitions [0, n) into min(size(), n) contiguous chunks, so which
//     indices run together is a pure function of (n, size());
//   * results must be written to per-index slots (or per-chunk state
//     folded serially afterwards) — the pool never reorders visible
//     side effects, so callers that follow this rule get bitwise
//     identical results for every thread count, 1 included;
//   * exceptions thrown by chunk bodies are captured and rethrown on the
//     calling thread (lowest chunk index wins when several throw).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

namespace ancstr::util {

/// Effective worker count for a configured value: the ANCSTR_THREADS
/// environment variable (when set to a valid integer) overrides
/// `configured`; a value of 0 means std::thread::hardware_concurrency().
/// Always returns >= 1; 1 means "exact serial path" (no worker threads).
std::size_t resolveThreadCount(std::size_t configured);

/// Fixed-size thread pool with a static-partition parallel for.
///
/// A pool of size T owns T-1 worker threads; the calling thread executes
/// chunk 0 itself. Construction and destruction are cheap enough to keep
/// one pool per top-level operation (detect / train call), which keeps the
/// pool free of global state. parallelFor is not reentrant: chunk bodies
/// must not call back into the same pool.
class ThreadPool {
 public:
  /// `threads` <= 1 creates a serial pool (no worker threads spawned).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the calling thread (always >= 1).
  std::size_t size() const;

  /// Static bounds of chunk `chunk` when [0, n) is split into `numChunks`
  /// contiguous chunks whose sizes differ by at most one. Exposed so tests
  /// and callers can reason about the exact partition.
  static std::pair<std::size_t, std::size_t> chunkBounds(std::size_t chunk,
                                                         std::size_t numChunks,
                                                         std::size_t n);

  /// Runs body(begin, end) over a static partition of [0, n) into
  /// min(size(), n) chunks. Blocks until every chunk finished; rethrows
  /// the lowest-chunk-index exception if any body threw.
  void parallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& body);

  /// Convenience element-wise form of parallelFor.
  template <typename Fn>
  void forEach(std::size_t n, Fn&& fn) {
    parallelFor(n, [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Deterministic map-reduce: evaluates map(i) for every i in [0, n) in
/// parallel, then folds the stored values serially in index order with
/// std::accumulate. The fold order is therefore independent of the thread
/// count, and the result is bitwise identical to the serial
///   std::accumulate over {map(0), ..., map(n-1)}
/// even for non-associative types such as double.
template <typename T, typename MapFn>
T parallelMapReduce(ThreadPool& pool, std::size_t n, T init, MapFn&& map) {
  std::vector<T> values(n);
  pool.forEach(n, [&](std::size_t i) { values[i] = map(i); });
  return std::accumulate(values.begin(), values.end(), std::move(init));
}

}  // namespace ancstr::util
