#include "graph/laplacian.h"

#include <cmath>

namespace ancstr {

nn::Matrix undirectedAdjacency(const SimpleDigraph& g) {
  const std::size_t n = g.numVertices();
  nn::Matrix a(n, n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const std::uint32_t v : g.outNeighbors(u)) {
      if (u == v) continue;  // self loops carry no Laplacian weight
      a(u, v) = 1.0;
      a(v, u) = 1.0;
    }
  }
  return a;
}

nn::Matrix combinatorialLaplacian(const SimpleDigraph& g) {
  nn::Matrix a = undirectedAdjacency(g);
  const std::size_t n = a.rows();
  nn::Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      degree += a(i, j);
      l(i, j) = -a(i, j);
    }
    l(i, i) = degree;
  }
  return l;
}

nn::Matrix normalizedLaplacian(const SimpleDigraph& g) {
  nn::Matrix a = undirectedAdjacency(g);
  const std::size_t n = a.rows();
  std::vector<double> invSqrtDeg(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (std::size_t j = 0; j < n; ++j) degree += a(i, j);
    invSqrtDeg[i] = degree > 0.0 ? 1.0 / std::sqrt(degree) : 0.0;
  }
  nn::Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      l(i, j) = -invSqrtDeg[i] * a(i, j) * invSqrtDeg[j];
    }
    if (invSqrtDeg[i] > 0.0) l(i, i) += 1.0;
  }
  return l;
}

}  // namespace ancstr
