// The cross-kernel equivalence contract (nn/kernels.h, docs/api.md
// "Numeric contract"): every compiled backend — scalar, avx2, avx512 —
// must produce BITWISE identical results for every kernel op, so dispatch
// is a pure speed choice. The property tests below therefore compare
// backends against the scalar reference with exact equality (memcmp, not
// tolerances) over randomized shapes including the ragged tails the SIMD
// paths handle with masks/scalar epilogues. The integration half proves
// the same holds end-to-end: train + extract bitwise identical across
// kernels and thread counts.
#include "nn/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/synthetic.h"
#include "core/features.h"
#include "core/model.h"
#include "core/model_io.h"
#include "core/pipeline.h"
#include "netlist/builder.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "util/error.h"
#include "util/rng.h"

namespace ancstr::nn {
namespace {

/// Kernel selection is process-global and reads the ANCSTR_KERNEL
/// override; tests that touch dispatch clear the env var for their
/// duration, restore it afterwards, and hand dispatch back to auto.
class KernelDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* value = std::getenv("ANCSTR_KERNEL");
    had_ = value != nullptr;
    if (had_) saved_ = value;
    unsetenv("ANCSTR_KERNEL");
  }
  void TearDown() override {
    if (had_) setenv("ANCSTR_KERNEL", saved_.c_str(), 1);
    selectKernel(KernelKind::kAuto);
  }

 private:
  std::string saved_;
  bool had_ = false;
};

/// The backends this binary can actually run here (always >= {scalar}).
std::vector<KernelKind> availableKernels() {
  std::vector<KernelKind> kinds;
  for (KernelKind kind : compiledKernels()) {
    if (kernelAvailable(kind)) kinds.push_back(kind);
  }
  return kinds;
}

bool bitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool bitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     a.rows() * a.cols() * sizeof(double)) == 0;
}

/// Random matrix data with zeros salted in so the gemm zero-skip branch
/// (a == 0.0 skips the whole term) is exercised on every backend.
std::vector<double> randomWithZeros(std::size_t count, Rng& rng) {
  std::vector<double> data(count);
  for (double& v : data) v = rng.chance(0.2) ? 0.0 : rng.uniform(-2.0, 2.0);
  return data;
}

// --- dispatch ---------------------------------------------------------------

TEST(KernelDispatch, NameParseRoundTrip) {
  for (KernelKind kind : {KernelKind::kAuto, KernelKind::kScalar,
                          KernelKind::kAvx2, KernelKind::kAvx512}) {
    const auto parsed = parseKernelKind(kernelName(kind));
    ASSERT_TRUE(parsed.has_value()) << kernelName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parseKernelKind("sse2").has_value());
  EXPECT_FALSE(parseKernelKind("AVX2").has_value());  // names are lowercase
  EXPECT_FALSE(parseKernelKind("").has_value());
}

TEST(KernelDispatch, ScalarIsAlwaysCompiledAndAvailable) {
  EXPECT_TRUE(kernelCompiled(KernelKind::kScalar));
  EXPECT_TRUE(kernelAvailable(KernelKind::kScalar));
  const std::vector<KernelKind> compiled = compiledKernels();
  EXPECT_NE(std::find(compiled.begin(), compiled.end(), KernelKind::kScalar),
            compiled.end());
  // The info-metric label lists exactly the compiled backends.
  const std::string joined = compiledKernelsString();
  for (KernelKind kind : compiled) {
    EXPECT_NE(joined.find(kernelName(kind)), std::string::npos)
        << kernelName(kind);
  }
}

TEST(KernelDispatch, KernelsForRejectsAutoAndUnavailable) {
  EXPECT_THROW(kernelsFor(KernelKind::kAuto), Error);
  for (KernelKind kind : {KernelKind::kScalar, KernelKind::kAvx2,
                          KernelKind::kAvx512}) {
    if (!kernelAvailable(kind)) {
      EXPECT_THROW(kernelsFor(kind), Error) << kernelName(kind);
      continue;
    }
    const Kernels& table = kernelsFor(kind);
    EXPECT_EQ(table.kind, kind);
    EXPECT_NE(table.gemmAcc, nullptr);
    EXPECT_NE(table.gemmBatchAcc, nullptr);
    EXPECT_NE(table.gemv, nullptr);
    EXPECT_NE(table.axpy, nullptr);
    EXPECT_NE(table.fusedGruStep, nullptr);
  }
}

TEST_F(KernelDispatchTest, SelectScalarActivatesScalar) {
  EXPECT_EQ(selectKernel(KernelKind::kScalar), KernelKind::kScalar);
  EXPECT_EQ(activeKernelKind(), KernelKind::kScalar);
  EXPECT_STREQ(activeKernelName(), "scalar");
  EXPECT_EQ(activeKernels().kind, KernelKind::kScalar);
}

TEST_F(KernelDispatchTest, AutoResolvesToBestAvailable) {
  const KernelKind resolved = resolveKernel(KernelKind::kAuto);
  EXPECT_NE(resolved, KernelKind::kAuto);
  EXPECT_TRUE(kernelAvailable(resolved));
  // selectKernel installs exactly what resolveKernel predicts.
  EXPECT_EQ(selectKernel(KernelKind::kAuto), resolved);
  EXPECT_EQ(activeKernelKind(), resolved);
}

TEST_F(KernelDispatchTest, SelectionAlwaysLandsOnAnAvailableKernel) {
  // An unavailable request never installs an unrunnable table: it falls
  // back (with a warning) to something the CPU supports.
  for (KernelKind kind : {KernelKind::kScalar, KernelKind::kAvx2,
                          KernelKind::kAvx512}) {
    EXPECT_TRUE(kernelAvailable(selectKernel(kind))) << kernelName(kind);
  }
}

TEST_F(KernelDispatchTest, EnvOverrideWinsOverProgrammaticSelection) {
  setenv("ANCSTR_KERNEL", "scalar", 1);
  EXPECT_EQ(selectKernel(KernelKind::kAuto), KernelKind::kScalar);
  EXPECT_EQ(resolveKernel(KernelKind::kAvx2), KernelKind::kScalar);
  unsetenv("ANCSTR_KERNEL");
  // A garbage override is ignored, not fatal.
  setenv("ANCSTR_KERNEL", "sse2", 1);
  EXPECT_TRUE(kernelAvailable(selectKernel(KernelKind::kAuto)));
  unsetenv("ANCSTR_KERNEL");
}

// --- per-op bitwise property tests ------------------------------------------

TEST(KernelContract, GemmAccMatchesScalarBitwise) {
  Rng rng(11);
  for (KernelKind kind : availableKernels()) {
    const Kernels& table = kernelsFor(kind);
    for (int trial = 0; trial < 40; ++trial) {
      // Ragged everything: odd rows, inner dims, and tail columns are the
      // shapes where a vector backend needs masked / scalar epilogues.
      const std::size_t m = 1 + rng.index(24);
      const std::size_t k = 1 + rng.index(24);
      const std::size_t n = 1 + rng.index(37);
      const std::vector<double> a = randomWithZeros(m * k, rng);
      const std::vector<double> b = randomWithZeros(k * n, rng);
      const std::vector<double> init = randomWithZeros(m * n, rng);

      std::vector<double> ref = init;
      kdetail::gemmAccRef(a.data(), b.data(), ref.data(), m, k, n);
      std::vector<double> got = init;
      table.gemmAcc(a.data(), b.data(), got.data(), m, k, n);
      EXPECT_TRUE(bitwiseEqual(ref, got))
          << kernelName(kind) << " gemmAcc " << m << "x" << k << "x" << n;
    }
  }
}

TEST(KernelContract, GemmBatchAccMatchesScalarBitwise) {
  Rng rng(12);
  for (KernelKind kind : availableKernels()) {
    const Kernels& table = kernelsFor(kind);
    for (int trial = 0; trial < 25; ++trial) {
      const std::size_t count = 1 + rng.index(5);
      const std::size_t m = 1 + rng.index(16);
      const std::size_t k = 1 + rng.index(16);
      const std::size_t n = 1 + rng.index(37);
      const std::vector<double> a = randomWithZeros(m * k, rng);
      std::vector<std::vector<double>> bs(count), refs(count), gots(count);
      std::vector<const double*> bPtrs(count);
      std::vector<double*> refPtrs(count), gotPtrs(count);
      for (std::size_t t = 0; t < count; ++t) {
        bs[t] = randomWithZeros(k * n, rng);
        refs[t] = randomWithZeros(m * n, rng);
        gots[t] = refs[t];
        bPtrs[t] = bs[t].data();
        refPtrs[t] = refs[t].data();
        gotPtrs[t] = gots[t].data();
      }
      kdetail::gemmBatchAccRef(a.data(), bPtrs.data(), refPtrs.data(), count,
                               m, k, n);
      table.gemmBatchAcc(a.data(), bPtrs.data(), gotPtrs.data(), count, m, k,
                         n);
      for (std::size_t t = 0; t < count; ++t) {
        EXPECT_TRUE(bitwiseEqual(refs[t], gots[t]))
            << kernelName(kind) << " gemmBatchAcc t=" << t << " " << m << "x"
            << k << "x" << n;
      }
    }
  }
}

TEST(KernelContract, GemvMatchesScalarBitwise) {
  Rng rng(13);
  for (KernelKind kind : availableKernels()) {
    const Kernels& table = kernelsFor(kind);
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t m = 1 + rng.index(24);
      const std::size_t n = 1 + rng.index(37);
      const std::vector<double> a = randomWithZeros(m * n, rng);
      const std::vector<double> x = randomWithZeros(n, rng);
      std::vector<double> ref(m, 0.0);
      std::vector<double> got(m, 0.0);
      kdetail::gemvRef(a.data(), x.data(), ref.data(), m, n);
      table.gemv(a.data(), x.data(), got.data(), m, n);
      EXPECT_TRUE(bitwiseEqual(ref, got))
          << kernelName(kind) << " gemv " << m << "x" << n;
    }
  }
}

TEST(KernelContract, AxpyMatchesScalarBitwise) {
  Rng rng(14);
  for (KernelKind kind : availableKernels()) {
    const Kernels& table = kernelsFor(kind);
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t n = 1 + rng.index(67);
      const double s = rng.uniform(-2.0, 2.0);
      const std::vector<double> x = randomWithZeros(n, rng);
      std::vector<double> ref = randomWithZeros(n, rng);
      std::vector<double> got = ref;
      kdetail::axpyRef(ref.data(), x.data(), s, n);
      table.axpy(got.data(), x.data(), s, n);
      EXPECT_TRUE(bitwiseEqual(ref, got)) << kernelName(kind) << " axpy " << n;
    }
  }
}

TEST(KernelContract, FusedGruStepMatchesAutogradBitwise) {
  // The fused step must reproduce the autograd tape's op order exactly:
  // hOut = GRU(x, h) bitwise equal to forward(x, h).value(), on every
  // backend, across ragged batch sizes and input != hidden dims.
  Rng rng(15);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t inputDim = 1 + rng.index(20);
    const std::size_t hiddenDim = 1 + rng.index(20);
    const std::size_t rows = 1 + rng.index(13);
    GruCell cell(inputDim, hiddenDim, rng);
    const Matrix x = uniform(rows, inputDim, -2.0, 2.0, rng);
    const Matrix h = uniform(rows, hiddenDim, -1.0, 1.0, rng);
    const Matrix want =
        cell.forward(Tensor::constant(x), Tensor::constant(h)).value();

    const GruStepParams params = cell.stepParams();
    std::vector<double> scratch(gruStepScratchDoubles(rows, hiddenDim));
    for (KernelKind kind : availableKernels()) {
      Matrix got(rows, hiddenDim);
      kernelsFor(kind).fusedGruStep(params, x.data(), h.data(), got.data(),
                                    rows, scratch.data());
      EXPECT_TRUE(bitwiseEqual(want, got))
          << kernelName(kind) << " gru " << rows << "x" << inputDim << "->"
          << hiddenDim;
    }
  }
}

// --- model-level equivalence ------------------------------------------------

PreparedGraph preparedDiffPair() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"inp", "inn", "op", "on", "vb", "vdd", "vss"});
  b.nmos("m1", "op", "inp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "on", "inn", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("mt", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  b.res("r1", "op", "vdd", 1e3);
  b.res("r2", "on", "vdd", 1e3);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("cell"));
  const CircuitGraph g = buildHeteroGraph(design);
  return prepareGraph(g, buildFeatureMatrix(design));
}

/// A one-device circuit: a single vertex and empty adjacency for every
/// edge type, the degenerate shape the batched embed path must survive.
PreparedGraph preparedLoneDevice() {
  NetlistBuilder b;
  b.beginSubckt("lone", {"a", "b"});
  b.res("r1", "a", "b", 1e3);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("lone"));
  const CircuitGraph g = buildHeteroGraph(design);
  return prepareGraph(g, buildFeatureMatrix(design));
}

TEST_F(KernelDispatchTest, EmbedMatchesForwardValueUnderEveryKernel) {
  Rng rng(21);
  GnnModel model(GnnConfig{}, rng);
  const PreparedGraph g = preparedDiffPair();
  const Matrix want = model.forward(g).value();
  for (KernelKind kind : availableKernels()) {
    selectKernel(kind);
    EXPECT_TRUE(bitwiseEqual(want, model.embed(g))) << kernelName(kind);
  }
}

TEST_F(KernelDispatchTest, EmbedBatchMatchesPerGraphEmbed) {
  Rng rng(22);
  GnnModel model(GnnConfig{}, rng);
  const PreparedGraph pair = preparedDiffPair();
  const PreparedGraph lone = preparedLoneDevice();
  for (KernelKind kind : availableKernels()) {
    selectKernel(kind);
    // Stacking graphs into one GEMM must not change a bit of any slice,
    // including the empty-adjacency graph.
    const std::vector<Matrix> batch = model.embedBatch({&pair, &lone, &pair});
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_TRUE(bitwiseEqual(model.embed(pair), batch[0])) << kernelName(kind);
    EXPECT_TRUE(bitwiseEqual(model.embed(lone), batch[1])) << kernelName(kind);
    EXPECT_TRUE(bitwiseEqual(batch[0], batch[2])) << kernelName(kind);
    EXPECT_TRUE(model.embedBatch({}).empty());
  }
}

// --- end-to-end cross-kernel equivalence ------------------------------------

/// Like ParallelEquivalenceTest but sweeping kernels: ANCSTR_KERNEL and
/// ANCSTR_THREADS would both defeat the explicit sweep, so clear both.
class KernelTrainEquivalenceTest : public KernelDispatchTest {
 protected:
  void SetUp() override {
    KernelDispatchTest::SetUp();
    const char* value = std::getenv("ANCSTR_THREADS");
    hadThreads_ = value != nullptr;
    if (hadThreads_) savedThreads_ = value;
    unsetenv("ANCSTR_THREADS");
  }
  void TearDown() override {
    if (hadThreads_) setenv("ANCSTR_THREADS", savedThreads_.c_str(), 1);
    KernelDispatchTest::TearDown();
  }

 private:
  std::string savedThreads_;
  bool hadThreads_ = false;
};

struct KernelRunResult {
  std::string modelText;
  std::vector<Matrix> embeddings;
  std::vector<ConstraintSet> constraints;  ///< one registry per circuit
  std::string reportKernel;
};

KernelRunResult runKernelPipeline(KernelKind kernel, std::size_t threads) {
  const circuits::CircuitBenchmark chain = circuits::makeDiffChain(2);
  const circuits::CircuitBenchmark array = circuits::makeBlockArray(3);

  PipelineConfig config;
  config.kernel = kernel;  // the programmatic selection path
  config.threads = threads;
  config.train.epochs = 4;
  config.train.batchSize = 4;
  Pipeline pipeline(config);
  pipeline.train({&chain.lib, &array.lib});

  KernelRunResult result;
  for (const Library* lib : {&chain.lib, &array.lib}) {
    ExtractionResult extraction = pipeline.extract(*lib);
    result.embeddings.push_back(std::move(extraction.embeddings));
    result.constraints.push_back(std::move(extraction.detection.set));
    result.reportKernel = extraction.report.kernel;
  }
  std::ostringstream model;
  saveModel(pipeline.model(), model);
  result.modelText = model.str();
  return result;
}

TEST_F(KernelTrainEquivalenceTest, TrainAndExtractBitwiseAcrossKernels) {
  // saveModel writes 17 significant digits (round-trips doubles exactly),
  // so modelText string equality is bitwise weight equality. The scalar
  // serial run is the reference; every other kernel must match it at one
  // AND four threads — kernels and threading both reroute execution only.
  const KernelRunResult ref = runKernelPipeline(KernelKind::kScalar, 1);
  EXPECT_EQ(ref.reportKernel, "scalar");
  for (KernelKind kind : availableKernels()) {
    for (const std::size_t threads : {1u, 4u}) {
      if (kind == KernelKind::kScalar && threads == 1) continue;
      const KernelRunResult got = runKernelPipeline(kind, threads);
      EXPECT_EQ(got.reportKernel, kernelName(kind)) << threads;
      EXPECT_EQ(ref.modelText, got.modelText)
          << kernelName(kind) << " threads=" << threads;
      ASSERT_EQ(ref.embeddings.size(), got.embeddings.size());
      for (std::size_t c = 0; c < ref.embeddings.size(); ++c) {
        EXPECT_TRUE(bitwiseEqual(ref.embeddings[c], got.embeddings[c]))
            << kernelName(kind) << " threads=" << threads << " circuit " << c;
      }
      EXPECT_TRUE(ref.constraints == got.constraints)
          << kernelName(kind) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace ancstr::nn
