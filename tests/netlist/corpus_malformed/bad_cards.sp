* malformed corpus: bad cards interleaved with a valid OTA
.subckt ota inp inn out vdd vss
m1 d1 inp s vss nch w=2u l=0.1u
m2 d2 inn s vss nch w=2u l=0.1u
zz1 a b c
m3 d3 g3 nch
r1 d1 out 1k
r2 d2 out 1k
.ends
x1 a b c vdd vss ota
