// 128-bit streaming content hash for content-addressed caching
// (core/engine.h). Two independently salted 64-bit lanes, each mixing
// every input word through a splitmix64-style finalizer before an
// FNV-style fold, give collision resistance far beyond a single 64-bit
// hash at integer-only cost — no allocation, no platform dependence, so
// hashes are stable across machines and usable as golden test values.
//
// The hasher itself is order-SENSITIVE: add() calls form a canonical
// serialization, and equal hashes are only meaningful when producers
// serialize in a canonical order (core/circuit_hash.h defines that order
// for circuits: positional, name-free, and independent of container
// iteration order and thread count).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ancstr::util {

/// A 128-bit content hash value. Zero-initialised ("null") hashes compare
/// equal to each other; finish() never returns the null hash for any
/// input stream (the lanes start from non-zero offsets).
struct StructuralHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const StructuralHash&) const = default;

  /// 32 lowercase hex characters, hi lane first.
  std::string hex() const;
};

/// Streaming hasher. Feed the canonical serialization word by word and
/// call finish(); finish() is idempotent and non-destructive, so a hasher
/// can keep accumulating after an intermediate digest.
class StructuralHasher {
 public:
  StructuralHasher() = default;

  void add(std::uint64_t v) noexcept {
    hi_ = (hi_ ^ mix(v ^ kSaltHi)) * kPrime;
    lo_ = (lo_ ^ mix(v ^ kSaltLo)) * kPrime;
  }

  void addSize(std::size_t v) noexcept { add(static_cast<std::uint64_t>(v)); }
  void addBool(bool v) noexcept { add(v ? 1u : 0u); }
  void addInt(std::int64_t v) noexcept { add(static_cast<std::uint64_t>(v)); }

  /// Hashes the exact bit pattern (content-addressing is bit-exact; +0.0
  /// and -0.0 are deliberately distinct inputs).
  void addDouble(double v) noexcept;

  /// Hashes length + bytes (so "ab","c" never collides with "a","bc").
  void addBytes(std::string_view bytes) noexcept;

  StructuralHash finish() const noexcept {
    // One extra avalanche so trailing add()s affect every output bit.
    return StructuralHash{mix(hi_), mix(lo_)};
  }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;  // FNV-1a prime
  static constexpr std::uint64_t kSaltHi = 0x9e3779b97f4a7c15ull;
  static constexpr std::uint64_t kSaltLo = 0xc2b2ae3d27d4eb4full;

  static std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
  }

  std::uint64_t hi_ = 0xcbf29ce484222325ull;  // FNV offset basis
  std::uint64_t lo_ = 0x84222325cbf29ce4ull;  // rotated basis, distinct lane
};

}  // namespace ancstr::util

template <>
struct std::hash<ancstr::util::StructuralHash> {
  std::size_t operator()(const ancstr::util::StructuralHash& h) const noexcept {
    // hi already avalanched by finish(); fold in lo for maps keyed on the
    // full 128 bits.
    return static_cast<std::size_t>(h.hi ^ (h.lo * 0x9e3779b97f4a7c15ull));
  }
};
