#include "util/string_utils.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ancstr::str {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string toLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> splitTokens(std::string_view s,
                                     std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t start = i;
    while (i < s.size() && delims.find(s[i]) == std::string_view::npos) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::pair<std::string_view, std::string_view> splitFirst(std::string_view s,
                                                         char sep) {
  const std::size_t pos = s.find(sep);
  if (pos == std::string_view::npos) return {s, std::string_view{}};
  return {s.substr(0, pos), s.substr(pos + 1)};
}

std::optional<double> parseSpiceNumber(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;

  std::string suffix = toLower(std::string_view(ptr, static_cast<std::size_t>(end - ptr)));
  double scale = 1.0;
  // "meg"/"x" must be checked before the single-letter "m" (milli).
  if (startsWith(suffix, "meg") || startsWith(suffix, "x")) {
    scale = 1e6;
  } else if (!suffix.empty()) {
    switch (suffix[0]) {
      case 't': scale = 1e12; break;
      case 'g': scale = 1e9; break;
      case 'k': scale = 1e3; break;
      case 'm': scale = 1e-3; break;
      case 'u': scale = 1e-6; break;
      case 'n': scale = 1e-9; break;
      case 'p': scale = 1e-12; break;
      case 'f': scale = 1e-15; break;
      case 'a': scale = 1e-18; break;
      default: scale = 1.0; break;  // unit tail like "v", "ohm"
    }
  }
  return value * scale;
}

std::string formatCompact(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return std::string(buf);
}

}  // namespace ancstr::str
