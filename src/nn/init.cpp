#include "nn/init.h"

#include <cmath>

namespace ancstr::nn {

Matrix xavierUniform(std::size_t fanIn, std::size_t fanOut, Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fanIn + fanOut));
  return uniform(fanIn, fanOut, -a, a, rng);
}

Matrix heNormal(std::size_t fanIn, std::size_t fanOut, Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fanIn));
  Matrix m(fanIn, fanOut);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      m(r, c) = rng.normal(0.0, stddev);
    }
  }
  return m;
}

Matrix uniform(std::size_t rows, std::size_t cols, double lo, double hi,
               Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(lo, hi);
  }
  return m;
}

}  // namespace ancstr::nn
