#!/usr/bin/env python3
"""Self-test for gate_counters.py (registered as ctest `gate_counters_gate`).

Builds synthetic BENCH.json reports in a temp directory and checks the exit
codes the bench_delta CI gate relies on: 0 when every requirement holds, 1
when a requirement fails or names a missing case/counter, and 2 for schema
violations or malformed requirement expressions.
"""
import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "gate_counters.py")


def make_report(counters, name="engine.delta.eco10.speedup"):
    return {
        "schemaVersion": 1,
        "binary": "synthetic",
        "cases": [{
            "name": name,
            "reps": 1,
            "warmup": 0,
            "wall": {"median": 0.1, "mad": 0.0, "min": 0.1, "max": 0.1,
                     "samples": [0.1]},
            "phases": [],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "resource": {"peakRssBytes": 1 << 20, "allocCount": 1,
                         "freeCount": 1, "allocBytes": 100,
                         "userCpuSeconds": 0.1, "systemCpuSeconds": 0.0},
            "counters": counters,
        }],
    }


def run(report, *args):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(report, fh)
        proc = subprocess.run([sys.executable, SCRIPT, path, *args],
                              capture_output=True, text=True)
        return proc.returncode


def check(label, got, want):
    status = "ok" if got == want else "FAIL"
    print(f"{status}: {label}: exit {got}, want {want}")
    return got == want


def main():
    good = make_report({"speedup": 4.5, "bitwise_equal": 1.0})
    case = "engine.delta.eco10.speedup"
    ok = True

    ok &= check("all requirements hold",
                run(good, "--case", case, "--require", "speedup>=3.0",
                    "--require", "bitwise_equal==1"), 0)
    ok &= check("speedup below gate",
                run(make_report({"speedup": 2.4, "bitwise_equal": 1.0}),
                    "--case", case, "--require", "speedup>=3.0"), 1)
    ok &= check("bitwise mismatch",
                run(make_report({"speedup": 4.5, "bitwise_equal": 0.0}),
                    "--case", case, "--require", "speedup>=3.0",
                    "--require", "bitwise_equal==1"), 1)
    ok &= check("missing counter",
                run(good, "--case", case, "--require", "nope>=1"), 1)
    ok &= check("missing case",
                run(good, "--case", "no.such.case",
                    "--require", "speedup>=3.0"), 1)
    ok &= check("strict inequality",
                run(good, "--case", case, "--require", "speedup>4.5"), 1)
    ok &= check("two cases, second fails",
                run(good, "--case", case, "--require", "speedup>=3.0",
                    "--case", "no.such.case", "--require", "speedup>=3.0"),
                1)
    ok &= check("malformed requirement",
                run(good, "--case", case, "--require", "speedup@3"), 2)
    ok &= check("requirement before any case",
                run(good, "--require", "speedup>=3.0"), 2)
    ok &= check("no requirements", run(good, "--case", case), 2)
    ok &= check("schema violation",
                run({"schemaVersion": 99}, "--case", case,
                    "--require", "speedup>=3.0"), 2)

    if not ok:
        print("FAIL: gate_counters.py contract violated", file=sys.stderr)
        return 1
    print("OK: all gate_counters.py contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
