// Constraint file I/O.
//
// Two formats:
//   * JSON — full-fidelity: thresholds, per-pair similarities, levels,
//     and symmetry groups; the interchange format of this project.
//   * SYM  — MAGICAL-style plain text consumed by analog P&R engines:
//     one constraint per line,
//        <hierarchy-path> <nameA> <nameB>     (matched pair)
//        <hierarchy-path> <name>              (self-symmetric device)
//     with "." denoting the top hierarchy and "#" starting comments.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/arrays.h"
#include "core/detector.h"
#include "core/groups.h"
#include "netlist/flatten.h"

namespace ancstr {

/// Serialises a detection run (accepted constraints + groups + optional
/// common-centroid array groups) to JSON.
std::string constraintsToJson(const FlatDesign& design,
                              const DetectionResult& detection,
                              const std::vector<SymmetryGroup>& groups = {},
                              const std::vector<ArrayGroup>& arrays = {});

/// Serialises the accepted constraints (and group self-symmetric members)
/// as a MAGICAL-style .sym deck.
std::string constraintsToSym(const FlatDesign& design,
                             const DetectionResult& detection,
                             const std::vector<SymmetryGroup>& groups = {});

/// A constraint record read back from either format.
struct ParsedConstraint {
  std::string hierPath;
  std::string nameA;
  std::string nameB;  ///< empty for self-symmetric entries
  ConstraintLevel level = ConstraintLevel::kDevice;
  double similarity = 0.0;  ///< 0 when absent (SYM format)
};

/// Parses a JSON constraint file. Throws Error on malformed input.
std::vector<ParsedConstraint> parseConstraintsJson(const std::string& text);

/// Parses a .sym deck. Throws ParseError on malformed lines.
/// (To diff against a golden file, convert with eval's toGroundTruth.)
std::vector<ParsedConstraint> parseConstraintsSym(const std::string& text);

/// Reads a constraint file from disk, dispatching on extension (".json"
/// goes to parseConstraintsJson) with a content-sniff fallback for the
/// "ancstr-constraints" format tag; everything else goes to
/// parseConstraintsSym. Throws Error when the file cannot be read.
std::vector<ParsedConstraint> parseConstraintsFile(
    const std::filesystem::path& path);

}  // namespace ancstr
