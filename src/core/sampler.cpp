#include "core/sampler.h"

#include <algorithm>

#include "util/error.h"
#include "util/metrics.h"

namespace ancstr {

ContrastiveBatch sampleContrastiveBatch(const PreparedGraph& g,
                                        int numNegatives, Rng& rng) {
  ContrastiveBatch batch;
  const std::size_t n = g.numVertices();
  if (n < 2) return batch;

  for (std::uint32_t v = 0; v < n; ++v) {
    for (const std::uint32_t u : g.inNeighbors[v]) {
      batch.posV.push_back(v);
      batch.posU.push_back(u);
    }
  }

  for (std::uint32_t v = 0; v < n; ++v) {
    const auto& neigh = g.inNeighbors[v];  // sorted
    // Uniform over vertices that are neither v nor in-neighbours of v.
    // Rejection sampling; if the graph is almost complete fall back to
    // any-other-vertex to avoid spinning.
    const bool dense = neigh.size() + 1 >= n;
    for (int s = 0; s < numNegatives; ++s) {
      std::uint32_t cand = 0;
      int attempts = 0;
      do {
        cand = static_cast<std::uint32_t>(rng.index(n));
        ++attempts;
      } while (!dense && attempts < 64 &&
               (cand == v ||
                std::binary_search(neigh.begin(), neigh.end(), cand)));
      if (cand == v) cand = static_cast<std::uint32_t>((v + 1) % n);
      batch.negV.push_back(v);
      batch.negU.push_back(cand);
    }
  }

  // One add per sampled graph, never per draw (workers call this
  // concurrently during the batched gradient fan-out).
  static metrics::Counter& negativeCounter =
      metrics::Registry::instance().counter("sampler.negative_samples");
  negativeCounter.add(batch.negV.size());
  return batch;
}

nn::Tensor contrastiveLoss(const nn::Tensor& z, const ContrastiveBatch& batch,
                           bool meanReduction) {
  ANCSTR_ASSERT(!batch.posV.empty() || !batch.negV.empty());
  nn::Tensor total;
  if (!batch.posV.empty()) {
    const nn::Tensor scores = nn::rowSum(nn::hadamard(
        nn::gatherRows(z, batch.posV), nn::gatherRows(z, batch.posU)));
    total = nn::scale(nn::sumAll(nn::logSigmoid(scores)), -1.0);
  }
  if (!batch.negV.empty()) {
    const nn::Tensor scores = nn::rowSum(nn::hadamard(
        nn::gatherRows(z, batch.negV), nn::gatherRows(z, batch.negU)));
    const nn::Tensor term =
        nn::scale(nn::sumAll(nn::logSigmoid(nn::scale(scores, -1.0))), -1.0);
    total = total.valid() ? nn::add(total, term) : term;
  }
  if (meanReduction) {
    total = nn::scale(total, 1.0 / static_cast<double>(batch.size()));
  }
  return total;
}

}  // namespace ancstr
