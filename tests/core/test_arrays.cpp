#include "core/arrays.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/features.h"
#include "core/graph_builder.h"
#include "netlist/builder.h"
#include "util/error.h"

namespace ancstr {
namespace {

struct ArraySetup {
  Library lib;
  FlatDesign design;
  nn::Matrix z;
};

/// Binary cap DAC bank (10/20/40/80 fF) + an unrelated 33 fF cap + a
/// resistor trio (1k/1k/1k matched bank).
ArraySetup makeSetup() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"top", "vref", "vss"});
  b.cap("c0", "top", "n0", 10e-15);
  b.cap("c1", "top", "n1", 20e-15);
  b.cap("c2", "top", "n2", 40e-15);
  b.cap("c3", "top", "n3", 80e-15);
  b.cap("codd", "top", "vref", 33e-15);
  b.res("ra", "vref", "m1", 1e3);
  b.res("rb", "vref", "m2", 1e3);
  b.res("rc", "vref", "m3", 1e3);
  b.endSubckt();
  Library lib = b.build("cell");
  FlatDesign design = FlatDesign::elaborate(lib);
  // Uniform embeddings: all devices "agree" structurally by default.
  nn::Matrix z(design.devices().size(), 4, 1.0);
  return {std::move(lib), std::move(design), std::move(z)};
}

TEST(Arrays, DetectsBinaryWeightedBank) {
  const ArraySetup s = makeSetup();
  const auto groups = detectArrayGroups(s.design, s.z);
  const ArrayGroup* caps = nullptr;
  for (const ArrayGroup& g : groups) {
    if (g.type == DeviceType::kCapMom) caps = &g;
  }
  ASSERT_NE(caps, nullptr);
  EXPECT_NEAR(caps->unit, 10e-15, 1e-20);
  // c0..c3 snap to 1/2/4/8; codd (3.3x) does not.
  ASSERT_EQ(caps->members.size(), 4u);
  EXPECT_EQ(caps->members[0], (std::pair<std::string, int>{"c0", 1}));
  EXPECT_EQ(caps->members[3], (std::pair<std::string, int>{"c3", 8}));
}

TEST(Arrays, DetectsMatchedEqualBank) {
  const ArraySetup s = makeSetup();
  const auto groups = detectArrayGroups(s.design, s.z);
  const ArrayGroup* res = nullptr;
  for (const ArrayGroup& g : groups) {
    if (g.type == DeviceType::kResPoly) res = &g;
  }
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(res->members.size(), 3u);
  for (const auto& [name, multiple] : res->members) EXPECT_EQ(multiple, 1);
}

TEST(Arrays, EmbeddingDisagreementExcludesMembers) {
  ArraySetup s = makeSetup();
  // Make c2 structurally alien: orthogonal embedding.
  for (std::size_t c = 0; c < s.z.cols(); ++c) s.z(2, c) = 0.0;
  s.z(2, 0) = -5.0;
  const auto groups = detectArrayGroups(s.design, s.z);
  for (const ArrayGroup& g : groups) {
    if (g.type != DeviceType::kCapMom) continue;
    for (const auto& [name, multiple] : g.members) EXPECT_NE(name, "c2");
  }
}

TEST(Arrays, MinMembersRespected) {
  const ArraySetup s = makeSetup();
  ArrayDetectOptions options;
  options.minMembers = 5;
  const auto groups = detectArrayGroups(s.design, s.z, options);
  EXPECT_TRUE(groups.empty());
}

TEST(Arrays, MaxMultipleGuards) {
  NetlistBuilder b;
  b.beginSubckt("cell", {"a", "vss"});
  b.cap("c0", "a", "n0", 1e-15);
  b.cap("c1", "a", "n1", 2e-15);
  b.cap("chuge", "a", "n2", 1000e-15);  // 1000x the unit
  b.endSubckt();
  Library lib = b.build("cell");
  FlatDesign design = FlatDesign::elaborate(lib);
  nn::Matrix z(design.devices().size(), 2, 1.0);
  const auto groups = detectArrayGroups(design, z);
  // Only 2 in-range members -> below the default minimum of 3.
  EXPECT_TRUE(groups.empty());
}

TEST(Arrays, MosWidthArrays) {
  NetlistBuilder b;
  b.beginSubckt("mirror", {"vbn", "o1", "o2", "o3", "vss"});
  b.nmos("mu", "vbn", "vbn", "vss", "vss", 1e-6, 0.5e-6);
  b.nmos("m2x", "o1", "vbn", "vss", "vss", 2e-6, 0.5e-6);
  b.nmos("m4x", "o2", "vbn", "vss", "vss", 4e-6, 0.5e-6);
  b.nmos("m4b", "o3", "vbn", "vss", "vss", 2e-6, 0.5e-6, 2);  // nf folds
  b.endSubckt();
  Library lib = b.build("mirror");
  FlatDesign design = FlatDesign::elaborate(lib);
  nn::Matrix z(design.devices().size(), 2, 1.0);
  const auto groups = detectArrayGroups(design, z);
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(groups[0].members.size(), 4u);
  // m4b: 2u x 2 fingers == 4x the 1u unit.
  for (const auto& [name, multiple] : groups[0].members) {
    if (name == "m4b") EXPECT_EQ(multiple, 4);
    if (name == "mu") EXPECT_EQ(multiple, 1);
  }
}

TEST(Arrays, RealPipelineFindsCapDacArray) {
  // End-to-end: the generated SAR's binary cap section is an array.
  NetlistBuilder b;
  b.beginSubckt("cdac", {"vtop", "vref", "b0", "b1", "b2", "b3", "vss"});
  for (int i = 0; i < 4; ++i) {
    const std::string n = "n" + std::to_string(i);
    const std::string bi = "b" + std::to_string(i);
    b.cap("cb" + std::to_string(i), "vtop", n,
          10e-15 * std::pow(2.0, i));
    b.nmos("ms" + std::to_string(i), n, bi, "vref", "vss", 1e-6, 0.1e-6);
  }
  b.endSubckt();
  Library lib = b.build("cdac");
  FlatDesign design = FlatDesign::elaborate(lib);
  const CircuitGraph g = buildHeteroGraph(design);
  // Raw features stand in for trained embeddings (structure is uniform).
  const nn::Matrix z = buildFeatureMatrix(design);
  ArrayDetectOptions options;
  options.arrayThreshold = 0.5;
  const auto groups = detectArrayGroups(design, z, options);
  bool capArray = false;
  for (const ArrayGroup& g2 : groups) {
    if (g2.type == DeviceType::kCapMom && g2.members.size() == 4) {
      capArray = true;
    }
  }
  EXPECT_TRUE(capArray);
}

TEST(Arrays, ShapeMismatchThrows) {
  const ArraySetup s = makeSetup();
  EXPECT_THROW(detectArrayGroups(s.design, nn::Matrix(1, 2)), ShapeError);
}

}  // namespace
}  // namespace ancstr
