#include "core/graph_builder.h"

#include <gtest/gtest.h>

#include <array>

#include "netlist/builder.h"

namespace ancstr {
namespace {

/// The paper's Fig. 5 circuit: m0 (tail), m1/m2 (pair), CL on m2's drain.
Library fig5() {
  NetlistBuilder b;
  b.beginSubckt("fig5", {"vin1", "vin2", "vout", "vb", "vdd", "vss"});
  b.nmos("m0", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  b.nmos("m1", "n1", "vin1", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "vout", "vin2", "tail", "vss", 2e-6, 0.2e-6);
  b.pmos("m3", "vout", "n1", "vdd", "vdd", 4e-6, 0.2e-6);
  b.cap("cl", "vout", "vss", 50e-15);
  b.endSubckt();
  return b.build("fig5");
}

TEST(GraphBuilder, VerticesAreDevicesInIdOrder) {
  const FlatDesign design = FlatDesign::elaborate(fig5());
  const CircuitGraph g = buildHeteroGraph(design);
  ASSERT_EQ(g.numVertices(), 5u);
  for (std::uint32_t v = 0; v < 5; ++v) {
    EXPECT_EQ(g.vertexToDevice[v], v);
    EXPECT_EQ(g.deviceToVertex.at(v), v);
  }
}

TEST(GraphBuilder, EdgeTypeFollowsTargetPort) {
  const FlatDesign design = FlatDesign::elaborate(fig5());
  const CircuitGraph g = buildHeteroGraph(design);
  // m1 drain and m3 gate share net n1: expect edge (m1 -> m3, gate) and
  // (m3 -> m1, drain).
  const std::uint32_t m1 = g.deviceToVertex.at(1);
  const std::uint32_t m3 = g.deviceToVertex.at(3);
  bool m1ToM3Gate = false, m3ToM1Drain = false;
  for (const HeteroEdge& e : g.graph.edges()) {
    if (e.src == m1 && e.dst == m3 && e.type == EdgeType::kGate) {
      m1ToM3Gate = true;
    }
    if (e.src == m3 && e.dst == m1 && e.type == EdgeType::kDrain) {
      m3ToM1Drain = true;
    }
  }
  EXPECT_TRUE(m1ToM3Gate);
  EXPECT_TRUE(m3ToM1Drain);
}

TEST(GraphBuilder, PassiveEdgesForCap) {
  const FlatDesign design = FlatDesign::elaborate(fig5());
  const CircuitGraph g = buildHeteroGraph(design);
  const std::uint32_t cl = g.deviceToVertex.at(4);
  bool passiveIn = false;
  for (const std::uint32_t e : g.graph.inEdges(cl)) {
    if (g.graph.edges()[e].type == EdgeType::kPassive) passiveIn = true;
  }
  EXPECT_TRUE(passiveIn);
}

TEST(GraphBuilder, NoSelfLoops) {
  const FlatDesign design = FlatDesign::elaborate(fig5());
  const CircuitGraph g = buildHeteroGraph(design);
  for (const HeteroEdge& e : g.graph.edges()) {
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(GraphBuilder, EdgesComeInOrientedPairs) {
  // Algorithm 1 line 11 adds (u,v,tau_v) and (v,u,tau_u) together, so the
  // total edge count is even and in/out degrees match per vertex.
  const FlatDesign design = FlatDesign::elaborate(fig5());
  const CircuitGraph g = buildHeteroGraph(design);
  EXPECT_EQ(g.graph.numEdges() % 2, 0u);
  for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
    EXPECT_EQ(g.graph.inEdges(v).size(), g.graph.outEdges(v).size());
  }
}

TEST(GraphBuilder, BulkPinsExcludedByDefault) {
  const FlatDesign design = FlatDesign::elaborate(fig5());
  const CircuitGraph noBulk = buildHeteroGraph(design);
  GraphBuildOptions withBulk;
  withBulk.includeBulkPins = true;
  const CircuitGraph bulk = buildHeteroGraph(design, withBulk);
  EXPECT_GT(bulk.graph.numEdges(), noBulk.graph.numEdges());
}

TEST(GraphBuilder, NetDegreeCapSkipsHubNets) {
  const FlatDesign design = FlatDesign::elaborate(fig5());
  GraphBuildOptions capped;
  capped.maxNetDegree = 2;
  const CircuitGraph g = buildHeteroGraph(design, capped);
  const CircuitGraph full = buildHeteroGraph(design);
  EXPECT_LT(g.graph.numEdges(), full.graph.numEdges());
}

TEST(GraphBuilder, InducedSubgraphRestrictsEdges) {
  const FlatDesign design = FlatDesign::elaborate(fig5());
  // Induce on {m1, m2} only: they share the tail net.
  const CircuitGraph g = buildInducedHeteroGraph(design, {1, 2});
  EXPECT_EQ(g.numVertices(), 2u);
  EXPECT_GT(g.graph.numEdges(), 0u);
  for (const HeteroEdge& e : g.graph.edges()) {
    EXPECT_LT(e.src, 2u);
    EXPECT_LT(e.dst, 2u);
  }
  // Sources of m1/m2 meet at the tail net: both directions typed source.
  bool sourceEdge = false;
  for (const HeteroEdge& e : g.graph.edges()) {
    if (e.type == EdgeType::kSource) sourceEdge = true;
  }
  EXPECT_TRUE(sourceEdge);
}

TEST(GraphBuilder, SymmetricDevicesGetIsomorphicNeighborhoods) {
  // A genuinely symmetric differential stage (fig5 is single-ended, so
  // its pair is NOT symmetric — the loads differ).
  NetlistBuilder b;
  b.beginSubckt("sym", {"inp", "inn", "op", "on", "vb", "vdd", "vss"});
  b.nmos("m1", "op", "inp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "on", "inn", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("mt", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  b.res("r1", "op", "vdd", 1e3);
  b.res("r2", "on", "vdd", 1e3);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("sym"));
  const CircuitGraph g = buildHeteroGraph(design);
  auto typedInDegree = [&](std::uint32_t v) {
    std::array<std::size_t, kNumEdgeTypes> deg{};
    for (const std::uint32_t e : g.graph.inEdges(v)) {
      ++deg[static_cast<std::size_t>(g.graph.edges()[e].type)];
    }
    return deg;
  };
  EXPECT_EQ(typedInDegree(g.deviceToVertex.at(0)),
            typedInDegree(g.deviceToVertex.at(1)));  // m1 vs m2
  EXPECT_EQ(typedInDegree(g.deviceToVertex.at(3)),
            typedInDegree(g.deviceToVertex.at(4)));  // r1 vs r2
}

TEST(GraphBuilder, EdgeTypeForPinProjection) {
  EXPECT_EQ(edgeTypeForPin(PinFunction::kGate), EdgeType::kGate);
  EXPECT_EQ(edgeTypeForPin(PinFunction::kDrain), EdgeType::kDrain);
  EXPECT_EQ(edgeTypeForPin(PinFunction::kSource), EdgeType::kSource);
  EXPECT_EQ(edgeTypeForPin(PinFunction::kBulk), EdgeType::kPassive);
  EXPECT_EQ(edgeTypeForPin(PinFunction::kPassivePos), EdgeType::kPassive);
  EXPECT_EQ(edgeTypeForPin(PinFunction::kAnode), EdgeType::kPassive);
  EXPECT_EQ(edgeTypeForPin(PinFunction::kCollector), EdgeType::kPassive);
}

}  // namespace
}  // namespace ancstr
