# End-to-end observability check, run as ctest `bench_smoke_observability`:
# bench_smoke produces BENCH.json + both trace exports, the validators
# accept them, analyze_trace.py digests them, and compare_bench.py passes
# the run against itself. Mirrors the CI bench-smoke job on one rep so the
# whole thing stays fast enough for the default ctest sweep.
#
# Inputs: BENCH_SMOKE (binary path), PYTHON, SCRIPTS (scripts/ dir),
# WORK_DIR (scratch directory, recreated on every run).
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${BENCH_SMOKE} --reps 1 --warmup 0 --threads 1
          --json-out ${WORK_DIR}/bench.json
          --trace-out ${WORK_DIR}/trace.json
          --spans-out ${WORK_DIR}/spans.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke failed with ${rc}")
endif()

# Training + extraction spans the smoke cases must produce.
set(required_spans pipeline.train train.prepare train.loop graph.build
    pipeline.extract extract.detection detect.run parallel.for)

execute_process(
  COMMAND ${PYTHON} ${SCRIPTS}/check_trace.py ${WORK_DIR}/trace.json
          ${required_spans}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected the chrome trace")
endif()

execute_process(
  COMMAND ${PYTHON} ${SCRIPTS}/check_trace.py ${WORK_DIR}/spans.json
          ${required_spans}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected the span tree")
endif()

execute_process(
  COMMAND ${PYTHON} ${SCRIPTS}/analyze_trace.py ${WORK_DIR}/spans.json
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze_trace.py failed on the span tree")
endif()

execute_process(
  COMMAND ${PYTHON} ${SCRIPTS}/compare_bench.py ${WORK_DIR}/bench.json
          ${WORK_DIR}/bench.json
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "compare_bench.py rejected an identical pair")
endif()

# Constraint-registry counters (mirrors the CI gate): mirror-bank
# candidates are topology-driven and must be exact; accepted/export
# counts prove the ALIGN path ran.
execute_process(
  COMMAND ${PYTHON} ${SCRIPTS}/gate_counters.py ${WORK_DIR}/bench.json
          --case smoke.extract.mirror_bank4
          --require "detector.mirror.candidates==12"
          --require "detector.mirror.accepted>=1"
          --require "constraints.exported>=12"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gate_counters.py rejected the mirror counters")
endif()

message(STATUS "bench-smoke observability pipeline OK")
