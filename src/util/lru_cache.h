// Thread-safe byte-budget LRU cache with shared_ptr pinning, the storage
// layer of the ExtractionEngine's content-addressed caches (core/engine.h).
//
// Values are held as shared_ptr<const V>: a get() hands the caller a
// reference that pins the entry for as long as the caller keeps it —
// eviction skips pinned entries (use_count > 1), so an artifact can never
// be freed mid-use. The byte budget is therefore a soft ceiling: with
// every entry pinned the cache may transiently exceed it, and converges
// back as pins are released and later insertions evict.
//
// All operations take one mutex; the cached computations this fronts cost
// milliseconds, so lock contention is noise. Hit/miss/eviction/byte
// statistics are kept cumulatively and read via stats().
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace ancstr::util {

/// Cumulative counters of one cache instance. bytes/entries are current
/// occupancy; the rest never decrease (clear() does not reset them).
struct LruCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t bytes = 0;
  std::size_t entries = 0;
};

template <typename Key, typename Value, typename KeyHash = std::hash<Key>>
class LruByteCache {
 public:
  /// `budgetBytes` caps the sum of per-entry charges; 0 disables caching
  /// entirely (every get() misses, put() is a no-op).
  explicit LruByteCache(std::size_t budgetBytes) : budget_(budgetBytes) {}

  LruByteCache(const LruByteCache&) = delete;
  LruByteCache& operator=(const LruByteCache&) = delete;

  /// Returns the cached value (bumped to most-recently-used) or nullptr.
  std::shared_ptr<const Value> get(const Key& key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++stats_.hits;
    return it->second->value;
  }

  /// Inserts (or refreshes) `key`, charging `bytes` against the budget and
  /// evicting least-recently-used unpinned entries until back within it.
  void put(const Key& key, std::shared_ptr<const Value> value,
           std::size_t bytes) {
    if (budget_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      // Concurrent producers of the same key write identical content (the
      // cache is content-addressed); keep the bookkeeping of the newest.
      stats_.bytes -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      stats_.bytes += bytes;
      order_.splice(order_.begin(), order_, it->second);
    } else {
      order_.push_front(Entry{key, std::move(value), bytes});
      index_.emplace(key, order_.begin());
      stats_.bytes += bytes;
    }
    evictToBudget();
  }

  /// True if `key` is resident. A pure probe: no hit/miss accounting, no
  /// LRU bump — safe for planning decisions (e.g. whether extractDelta
  /// needs to re-warm a baseline) without skewing cache statistics.
  bool contains(const Key& key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return index_.find(key) != index_.end();
  }

  LruCacheStats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    LruCacheStats out = stats_;
    out.entries = index_.size();
    return out;
  }

  std::size_t budgetBytes() const { return budget_; }

  /// Drops every unpinned entry (pinned ones stay until released and are
  /// then unreachable — their bytes leave the books immediately).
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.bytes = 0;
    index_.clear();
    order_.clear();
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    std::size_t bytes = 0;
  };

  void evictToBudget() {
    auto it = order_.end();
    while (stats_.bytes > budget_ && it != order_.begin()) {
      --it;
      // use_count > 1 means a caller still holds the artifact: pinned.
      if (it->value.use_count() > 1) continue;
      stats_.bytes -= it->bytes;
      index_.erase(it->key);
      it = order_.erase(it);
      ++stats_.evictions;
    }
  }

  const std::size_t budget_;
  mutable std::mutex mutex_;
  std::list<Entry> order_;  ///< front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash>
      index_;
  LruCacheStats stats_;
};

}  // namespace ancstr::util
