// Hungarian algorithm (Kuhn-Munkres with potentials): minimum-cost
// perfect assignment on a square cost matrix in O(n^3). Substrate for the
// bipartite graph-edit-distance approximation baseline.
#pragma once

#include <vector>

#include "nn/matrix.h"

namespace ancstr {

struct AssignmentResult {
  /// assignment[row] = column matched to that row.
  std::vector<std::size_t> assignment;
  double cost = 0.0;
};

/// Solves min-cost perfect matching for a square cost matrix.
/// Throws ShapeError for non-square input.
AssignmentResult solveAssignment(const nn::Matrix& cost);

}  // namespace ancstr
