// Reproduces Fig. 7: ROC curve of this work on the merged 15-block
// dataset for device-level detection, plus the single operating point of
// the SFA heuristic (a non-probabilistic method produces one point). The
// paper reports AUC = 0.956 with SFA's point enclosed by our curve.
#include <cstdio>

#include "common.h"
#include "harness.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

void run(BenchContext& ctx) {
  const auto corpus = fullCorpus();
  RunReport trainReport;
  Pipeline pipeline = trainPipeline(corpus, paperConfig(), &trainReport);
  ctx.accumulateReport(trainReport);

  std::vector<double> ourScores;
  std::vector<bool> ourLabels;
  ConfusionCounts sfaCounts;
  for (const auto& bench : corpus) {
    if (bench.category == "ADC") continue;
    const Evaluated us = evalOurs(pipeline, bench, ConstraintLevel::kDevice);
    ourScores.insert(ourScores.end(), us.scores.begin(), us.scores.end());
    ourLabels.insert(ourLabels.end(), us.labels.begin(), us.labels.end());
    sfaCounts += evalSfa(bench).counts;
  }

  std::printf("\n=== Fig. 7: ROC on merged block dataset (device-level) ===\n");
  const RocCurve ours = computeRoc(ourScores, ourLabels);
  printRoc("This work", ours);
  const Metrics sfa = computeMetrics(sfaCounts);
  std::printf("SFA operating point: (fpr=%.3f, tpr=%.3f)\n", sfa.fpr, sfa.tpr);

  // "Enclosed" = our curve's TPR at SFA's FPR is at least SFA's TPR.
  double tprAtSfaFpr = 0.0;
  for (const RocPoint& p : ours.points) {
    if (p.fpr <= sfa.fpr + 1e-12) tprAtSfaFpr = std::max(tprAtSfaFpr, p.tpr);
  }
  std::printf("\nShape check (paper: AUC ~0.956, SFA point enclosed):\n"
              "  AUC = %.4f (paper 0.956)\n"
              "  our TPR at SFA's FPR = %.3f vs SFA TPR %.3f -> %s\n",
              ours.auc, tprAtSfaFpr, sfa.tpr,
              tprAtSfaFpr >= sfa.tpr ? "enclosed" : "NOT enclosed");
  ctx.setCounter("ours.auc", ours.auc);
  ctx.setCounter("sfa.tpr", sfa.tpr);
  ctx.setCounter("sfa.fpr", sfa.fpr);
}

[[maybe_unused]] const bool kRegistered =
    registerBench("fig7.roc_device", run);

}  // namespace

ANCSTR_BENCH_MAIN("fig7_roc_device")
