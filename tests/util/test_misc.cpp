// Coverage for the small util pieces: Stopwatch, logging levels, and the
// contract-check macro.
#include <gtest/gtest.h>

#include <thread>

#include "util/error.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ancstr {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = watch.seconds();
  EXPECT_GE(s, 0.009);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(watch.millis(), watch.seconds() * 1e3, 50.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.reset();
  EXPECT_LT(watch.seconds(), 0.009);
}

TEST(Logging, LevelFilterRoundTrip) {
  const log::Level before = log::level();
  log::setLevel(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  // Below-threshold emission must be a no-op (no crash, no output check
  // needed — this exercises the filter branch).
  log::info() << "suppressed " << 42;
  log::setLevel(before);
}

TEST(Logging, StreamsArbitraryTypes) {
  const log::Level before = log::level();
  log::setLevel(log::Level::kOff);
  log::error() << "x=" << 1.5 << " y=" << std::string("s") << " z=" << true;
  log::setLevel(before);
}

TEST(Assert, ThrowsInternalErrorWithLocation) {
  try {
    ANCSTR_ASSERT(1 + 1 == 3);
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
    EXPECT_NE(what.find("test_misc.cpp"), std::string::npos);
  }
}

TEST(Assert, PassesSilently) {
  EXPECT_NO_THROW(ANCSTR_ASSERT(2 + 2 == 4));
}

TEST(Errors, HierarchyIsCatchable) {
  // Every subclass must be catchable as ancstr::Error.
  EXPECT_THROW(throw ParseError("f.sp", 3, "boom"), Error);
  EXPECT_THROW(throw NetlistError("boom"), Error);
  EXPECT_THROW(throw ShapeError("boom"), Error);
  EXPECT_THROW(throw InternalError("boom"), Error);
}

TEST(Errors, ParseErrorCarriesPosition) {
  const ParseError e("deck.sp", 17, "bad card");
  EXPECT_EQ(e.file(), "deck.sp");
  EXPECT_EQ(e.line(), 17u);
  EXPECT_NE(std::string(e.what()).find("deck.sp:17"), std::string::npos);
}

}  // namespace
}  // namespace ancstr
