#include "nn/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace ancstr::nn {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, DataCtorValidatesSize) {
  EXPECT_THROW(Matrix(2, 2, std::vector<double>{1, 2, 3}), ShapeError);
}

TEST(Matrix, Identity) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, ArithmeticOps) {
  Matrix a(2, 2, std::vector<double>{1, 2, 3, 4});
  Matrix b(2, 2, std::vector<double>{5, 6, 7, 8});
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  const Matrix had = a.hadamard(b);
  EXPECT_DOUBLE_EQ(had(0, 1), 12.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a + b, ShapeError);
  EXPECT_THROW(a.hadamard(b), ShapeError);
  EXPECT_THROW(b.matmul(b), ShapeError);
}

TEST(Matrix, MatmulKnownResult) {
  Matrix a(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, std::vector<double>{7, 8, 9, 10, 11, 12});
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MatmulWithIdentity) {
  Matrix a(3, 3, std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(a.matmul(Matrix::identity(3)), a);
  EXPECT_EQ(Matrix::identity(3).matmul(a), a);
}

TEST(Matrix, Transpose) {
  Matrix a(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Matrix, Reductions) {
  Matrix a(2, 2, std::vector<double>{3, -4, 0, 1});
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
  EXPECT_DOUBLE_EQ(a.maxAbs(), 4.0);
  EXPECT_NEAR(a.frobeniusNorm(), std::sqrt(26.0), 1e-12);
}

TEST(Matrix, AddScaled) {
  Matrix a(1, 2, std::vector<double>{1, 2});
  Matrix b(1, 2, std::vector<double>{10, 20});
  a.addScaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 12.0);
}

TEST(Matrix, CosineSimilarity) {
  Matrix a(1, 3, std::vector<double>{1, 0, 0});
  Matrix b(1, 3, std::vector<double>{0, 1, 0});
  Matrix c(1, 3, std::vector<double>{2, 0, 0});
  EXPECT_DOUBLE_EQ(Matrix::cosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(Matrix::cosineSimilarity(a, c), 1.0);
  EXPECT_DOUBLE_EQ(Matrix::cosineSimilarity(a, a * -1.0), -1.0);
  EXPECT_DOUBLE_EQ(Matrix::cosineSimilarity(a, Matrix(1, 3)), 0.0);
}

TEST(Matrix, MapAppliesElementwise) {
  Matrix a(1, 3, std::vector<double>{1, 2, 3});
  const Matrix sq = a.map([](double x) { return x * x; });
  EXPECT_DOUBLE_EQ(sq(0, 2), 9.0);
}

TEST(Matrix, RowCopy) {
  Matrix a(2, 2, std::vector<double>{1, 2, 3, 4});
  const Matrix r = a.rowCopy(1);
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_DOUBLE_EQ(r(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(r(0, 1), 4.0);
}

}  // namespace
}  // namespace ancstr::nn
