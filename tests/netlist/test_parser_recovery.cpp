// Golden-diagnostic tests for the fail-soft (recovering) parsers over the
// malformed-netlist corpus in tests/netlist/corpus_malformed/. Each corpus
// file has a known set of diagnostics; the tests pin the exact code
// sequence and verify the valid remainder of the deck still parses. The
// strict entry points must keep throwing on the same inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "circuits/synthetic.h"
#include "core/pipeline.h"
#include "netlist/flatten.h"
#include "netlist/spectre_parser.h"
#include "netlist/spice_parser.h"
#include "util/error.h"

namespace ancstr {
namespace {

namespace fs = std::filesystem;

fs::path corpusDir() {
  return fs::path(ANCSTR_TEST_DIR) / "netlist" / "corpus_malformed";
}

fs::path corpus(const std::string& name) { return corpusDir() / name; }

std::vector<std::string> codesOf(const diag::Parsed<Library>& parsed) {
  std::vector<std::string> codes;
  for (const diag::Diagnostic& d : parsed.diagnostics) codes.push_back(d.code);
  return codes;
}

std::string code(std::string_view sv) { return std::string(sv); }

// --- SPICE corpus ----------------------------------------------------

TEST(ParserRecovery, SpiceBadCardsKeepValidRemainder) {
  const auto parsed = parseSpiceFileRecovering(corpus("bad_cards.sp"));
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{code(diag::codes::kUnknownCard),
                                      code(diag::codes::kBadCard)}));
  EXPECT_EQ(parsed.diagnostics[0].line, 5u);
  EXPECT_EQ(parsed.diagnostics[1].line, 6u);
  for (const auto& d : parsed.diagnostics) {
    EXPECT_NE(d.file.find("bad_cards.sp"), std::string::npos) << d.str();
  }

  const Library& lib = parsed.value;
  const auto ota = lib.findSubckt("ota");
  ASSERT_TRUE(ota.has_value());
  // zz1 and m3 are dropped; m1, m2, r1, r2 survive.
  EXPECT_EQ(lib.subckt(*ota).devices().size(), 4u);
  // The top-level x1 instance has the right arity and is kept.
  EXPECT_EQ(lib.subckt(lib.top()).instances().size(), 1u);
}

TEST(ParserRecovery, SpiceWrongArityInstanceIsSkipped) {
  const auto parsed = parseSpiceFileRecovering(corpus("wrong_arity.sp"));
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{code(diag::codes::kPortArity)}));
  EXPECT_EQ(parsed.diagnostics[0].line, 6u);
  // Only the well-formed x2 survives at the top level.
  const Library& lib = parsed.value;
  EXPECT_EQ(lib.subckt(lib.top()).instances().size(), 1u);
  EXPECT_TRUE(
      lib.subckt(lib.top()).findInstance("x2").has_value());
}

TEST(ParserRecovery, SpiceUnknownMasterIsSkipped) {
  const auto parsed = parseSpiceFileRecovering(corpus("unknown_master.sp"));
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{code(diag::codes::kUnknownMaster)}));
  EXPECT_EQ(parsed.diagnostics[0].line, 2u);
  const Library& lib = parsed.value;
  EXPECT_EQ(lib.subckt(lib.top()).devices().size(), 2u);
  EXPECT_EQ(lib.subckt(lib.top()).instances().size(), 0u);
}

TEST(ParserRecovery, SpiceIncludeCycleIsBroken) {
  const auto parsed = parseSpiceFileRecovering(corpus("cyclic_a.sp"));
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{code(diag::codes::kIncludeCycle)}));
  // The cycle is detected while parsing cyclic_b.sp.
  EXPECT_NE(parsed.diagnostics[0].file.find("cyclic_b.sp"),
            std::string::npos);
  EXPECT_EQ(parsed.diagnostics[0].line, 2u);
  // Both files' devices survive: c1 (from b) and r1 (from a).
  EXPECT_EQ(parsed.value.subckt(parsed.value.top()).devices().size(), 2u);
}

TEST(ParserRecovery, SpiceSelfIncludeIsACycle) {
  const auto parsed = parseSpiceFileRecovering(corpus("self_include.sp"));
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{code(diag::codes::kIncludeCycle)}));
  EXPECT_NE(parsed.diagnostics[0].file.find("self_include.sp"),
            std::string::npos);
  EXPECT_EQ(parsed.value.subckt(parsed.value.top()).devices().size(), 1u);
}

TEST(ParserRecovery, SpiceMidfileGarbageIsSkipped) {
  const auto parsed = parseSpiceFileRecovering(corpus("midfile_garbage.sp"));
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{code(diag::codes::kUnknownCard),
                                      code(diag::codes::kUnknownCard)}));
  EXPECT_EQ(parsed.diagnostics[0].line, 3u);
  EXPECT_EQ(parsed.diagnostics[1].line, 4u);
  EXPECT_EQ(parsed.value.subckt(parsed.value.top()).devices().size(), 2u);
}

TEST(ParserRecovery, SpiceUnterminatedSubcktIsClosed) {
  const auto parsed = parseSpiceFileRecovering(corpus("unterminated.sp"));
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{
                code(diag::codes::kUnterminatedSubckt)}));
  EXPECT_EQ(parsed.diagnostics[0].line, 2u);  // points at the .subckt card
  const Library& lib = parsed.value;
  const auto amp = lib.findSubckt("amp");
  ASSERT_TRUE(amp.has_value());
  EXPECT_EQ(lib.subckt(*amp).devices().size(), 2u);
}

TEST(ParserRecovery, SpiceIncludeDepthIsBounded) {
  // Build a 20-deep include chain; depth 16 must be refused without
  // recursing further, while the shallow files' devices survive.
  const fs::path dir =
      fs::path(testing::TempDir()) / "recovery_include_chain";
  fs::create_directories(dir);
  constexpr int kChain = 20;
  for (int i = 0; i < kChain; ++i) {
    std::ofstream out(dir / ("inc" + std::to_string(i) + ".sp"));
    out << "* chain link " << i << "\n";
    if (i + 1 < kChain) {
      out << ".include \"inc" << i + 1 << ".sp\"\n";
    }
    out << "r" << i << " a b 1k\n";
  }
  const auto parsed = parseSpiceFileRecovering(dir / "inc0.sp");
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{code(diag::codes::kIncludeDepth)}));
  const std::size_t kept =
      parsed.value.subckt(parsed.value.top()).devices().size();
  EXPECT_EQ(kept, kMaxIncludeDepth);
  // Strict mode refuses the same deck with a ParseError.
  EXPECT_THROW(parseSpiceFile(dir / "inc0.sp"), ParseError);
}

// --- Spectre corpus --------------------------------------------------

TEST(ParserRecovery, SpectreBadCardsKeepValidRemainder) {
  const auto parsed = parseSpectreFileRecovering(corpus("bad_cards.scs"));
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{code(diag::codes::kBadCard),
                                      code(diag::codes::kUnknownMaster),
                                      code(diag::codes::kPortArity)}));
  EXPECT_EQ(parsed.diagnostics[0].line, 6u);   // BADCARD
  EXPECT_EQ(parsed.diagnostics[1].line, 7u);   // Z1 nosuchmaster
  EXPECT_EQ(parsed.diagnostics[2].line, 11u);  // x1 with 2-of-5 ports

  const Library& lib = parsed.value;
  const auto ota = lib.findSubckt("ota");
  ASSERT_TRUE(ota.has_value());
  EXPECT_EQ(lib.subckt(*ota).devices().size(), 4u);
  EXPECT_EQ(lib.subckt(lib.top()).instances().size(), 1u);
  EXPECT_TRUE(lib.subckt(lib.top()).findInstance("x2").has_value());
}

TEST(ParserRecovery, SpectreIncludeCycleIsBroken) {
  const auto parsed = parseSpectreFileRecovering(corpus("cyclic_a.scs"));
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{code(diag::codes::kIncludeCycle)}));
  EXPECT_NE(parsed.diagnostics[0].file.find("cyclic_b.scs"),
            std::string::npos);
  EXPECT_EQ(parsed.value.subckt(parsed.value.top()).devices().size(), 2u);
}

TEST(ParserRecovery, SpectreMidfileGarbageIsSkipped) {
  const auto parsed =
      parseSpectreFileRecovering(corpus("midfile_garbage.scs"));
  EXPECT_EQ(codesOf(parsed),
            (std::vector<std::string>{code(diag::codes::kBadCard)}));
  EXPECT_EQ(parsed.diagnostics[0].line, 4u);
  EXPECT_EQ(parsed.value.subckt(parsed.value.top()).devices().size(), 2u);
}

TEST(ParserRecovery, SpectreIncludeResolvesRelativeToIncluder) {
  const fs::path dir = fs::path(testing::TempDir()) / "recovery_scs_inc";
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "lib.scs");
    out << "simulator lang=spectre\n"
        << "R9 (p q) resistor r=9k\n";
  }
  {
    std::ofstream out(dir / "main.scs");
    out << "simulator lang=spectre\n"
        << "include \"lib.scs\"\n"
        << "C9 (p q) capacitor c=9p\n";
  }
  const Library lib = parseSpectreFile(dir / "main.scs");  // strict: no throw
  EXPECT_EQ(lib.subckt(lib.top()).devices().size(), 2u);
}

// --- strict mode keeps the classic throw-first contract ---------------

TEST(ParserRecovery, StrictEntryPointsStillThrow) {
  EXPECT_THROW(parseSpiceFile(corpus("bad_cards.sp")), ParseError);
  EXPECT_THROW(parseSpiceFile(corpus("unknown_master.sp")), ParseError);
  EXPECT_THROW(parseSpiceFile(corpus("cyclic_a.sp")), ParseError);
  EXPECT_THROW(parseSpiceFile(corpus("self_include.sp")), ParseError);
  EXPECT_THROW(parseSpiceFile(corpus("midfile_garbage.sp")), ParseError);
  EXPECT_THROW(parseSpiceFile(corpus("unterminated.sp")), ParseError);
  // Arity mismatches keep surfacing as structural NetlistErrors.
  EXPECT_THROW(parseSpiceFile(corpus("wrong_arity.sp")), NetlistError);

  EXPECT_THROW(parseSpectreFile(corpus("bad_cards.scs")), ParseError);
  EXPECT_THROW(parseSpectreFile(corpus("cyclic_a.scs")), ParseError);
  EXPECT_THROW(parseSpectreFile(corpus("midfile_garbage.scs")), ParseError);
}

TEST(ParserRecovery, MissingFileYieldsIoFailureDiagnostic) {
  const auto parsed =
      parseNetlistFileRecovering(corpusDir() / "does_not_exist.sp");
  ASSERT_EQ(parsed.diagnostics.size(), 1u);
  EXPECT_EQ(parsed.diagnostics[0].code, code(diag::codes::kIoFailure));
  EXPECT_FALSE(parsed.ok());
}

// --- end-to-end: every corpus file flows through extraction -----------

TEST(ParserRecovery, WholeCorpusSurvivesFailSoftExtraction) {
  // One small trained pipeline shared by the sweep.
  PipelineConfig config;
  config.train.epochs = 2;
  Pipeline pipeline(config);
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  std::size_t filesSeen = 0;
  for (const auto& entry : fs::directory_iterator(corpusDir())) {
    if (!entry.is_regular_file()) continue;
    ++filesSeen;
    SCOPED_TRACE(entry.path().filename().string());
    const auto parsed = parseNetlistFileRecovering(entry.path());
    // Every corpus deck is stamped with at least one coded diagnostic.
    ASSERT_FALSE(parsed.diagnostics.empty());
    for (const auto& d : parsed.diagnostics) {
      EXPECT_FALSE(d.code.empty()) << d.str();
      EXPECT_FALSE(d.message.empty()) << d.str();
    }
    // The surviving remainder must flow through extraction fail-soft.
    diag::DiagnosticSink sink;
    ExtractionResult result;
    EXPECT_NO_THROW(
        result = pipeline.extract(parsed.value, ExtractOptions{&sink}));
    // Diagnostics collected during extraction land in the run report.
    EXPECT_EQ(result.report.diagnostics.size(), sink.size());
  }
  EXPECT_EQ(filesSeen, 12u);
}

}  // namespace
}  // namespace ancstr
