// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, all lock-free on the hot path (relaxed atomics).
//
// Like tracing (util/trace.h), metrics observe and never steer: every
// counted event is deterministic, so totals are identical for every
// thread count. Hot loops aggregate locally and publish once per
// operation — a metric update is never per-edge or per-element.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ancstr {
class Json;
}

namespace ancstr::metrics {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. final training loss).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus "le" semantics: observe(v)
/// increments the first bucket whose upper bound is >= v; values above the
/// last bound land in the implicit overflow bucket.
class Histogram {
 public:
  /// `upperBounds` must be non-empty and strictly ascending; throws Error
  /// otherwise.
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double v) noexcept;

  const std::vector<double>& upperBounds() const { return bounds_; }
  /// upperBounds().size() + 1; the last bucket is the overflow bucket.
  std::size_t numBuckets() const { return bounds_.size() + 1; }
  std::uint64_t bucketCount(std::size_t bucket) const;
  std::uint64_t totalCount() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::vector<double> upperBounds;
  std::vector<std::uint64_t> buckets;  ///< upperBounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of the whole registry. Map ordering makes the JSON
/// rendering deterministic.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// This snapshot minus `before`: counters and histogram buckets
  /// subtract (clamped at zero), gauges keep this snapshot's value.
  /// Metrics absent from `before` pass through unchanged.
  Snapshot since(const Snapshot& before) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///  {"le": [...], "buckets": [...], "count": n, "sum": s}}}
  Json toJson() const;

  /// Prometheus text exposition format (version 0.0.4): one `# TYPE` line
  /// plus samples per metric. Dotted names are sanitised to underscores
  /// and prefixed (`detector.pairs_scored` ->
  /// `ancstr_detector_pairs_scored`); histogram buckets are emitted
  /// cumulatively with the trailing `+Inf` bucket, `_sum`, and `_count`
  /// samples, matching scraper expectations. Counter/gauge names may
  /// carry an embedded label block (`process.build_info{git_sha="..."}`):
  /// only the part before `{` is sanitised, the label block passes
  /// through verbatim on the sample line and is dropped from `# TYPE`.
  std::string toPrometheus(std::string_view prefix = "ancstr") const;
};

/// Process-wide registry. Metric objects are created on first lookup and
/// never destroyed, so references stay valid across reset().
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First call registers the histogram with `upperBounds`; later calls
  /// return the existing histogram and ignore the bounds argument.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upperBounds);

  Snapshot snapshot() const;

  /// Zeroes every metric; registrations (and references) survive.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Refreshes the process-wide gauges (docs/observability.md):
///   * process.uptime_seconds — seconds since this module initialised
///     (approximately process start);
///   * process.build_info{git_sha="...",build_type="..."} — constant-1
///     info metric carrying build provenance (util/bench_report.h) as
///     Prometheus labels, so dashboards can correlate regressions with
///     deploys;
///   * any info gauges contributed by registered publishers (below) —
///     e.g. nn.kernel_info{dispatch="...",compiled="..."} from the nn
///     kernel layer.
/// Called by the CLI observability emitters and the engine's metric
/// publisher; cheap and thread-safe.
void publishProcessMetrics();

/// Registers a callback invoked by every publishProcessMetrics() call.
/// The extension point lets higher layers contribute process-constant
/// info gauges without a dependency from util upward (the nn kernel layer
/// registers its dispatch identity here). Thread-safe; publishers are
/// never unregistered.
void registerProcessMetricsPublisher(void (*publisher)());

/// Escapes a Prometheus label value (backslash, quote, newline) for
/// baking a label block into a registry metric name.
std::string escapeLabelValue(std::string_view value);

}  // namespace ancstr::metrics
