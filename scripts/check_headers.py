#!/usr/bin/env python3
"""Compile every public header standalone.

A header that only builds after its includer happened to pull in the
right things first is a latent break for every new call site. This
check wraps each header under src/ in a one-line translation unit and
runs the compiler in syntax-only mode, so include-order dependencies
and missing forward declarations surface in CI instead of downstream.

Usage: check_headers.py [--compiler CXX] [--src DIR] [--jobs N] [header...]
Exit codes: 0 all headers self-contained, 1 at least one failure,
2 usage/environment error.
"""

import argparse
import concurrent.futures
import os
import subprocess
import sys
import tempfile

FLAGS = ["-std=c++20", "-fsyntax-only", "-Wall", "-Wextra", "-x", "c++"]

# ISA-gated kernel headers (src/nn/kernels_*.h) compile to an empty TU
# without their -m flag (the whole body sits behind #if defined(__AVX2__)
# etc.), so the plain pass only proves the guard. Each entry adds a second
# pass with the flag so the intrinsics body itself is checked — skipped
# gracefully when the compiler lacks the flag.
EXTRA_FLAG_PASSES = {
    "nn/kernels_avx2.h": ["-mavx2"],
    "nn/kernels_avx512.h": ["-mavx512f"],
}


def compiler_supports(compiler, flag):
    """True when `compiler` accepts `flag` for an empty TU."""
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".cpp", delete=False) as tu:
        tu.write("int main() { return 0; }\n")
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [compiler, flag, "-fsyntax-only", "-x", "c++", tu_path],
            capture_output=True, text=True)
        return proc.returncode == 0
    finally:
        os.unlink(tu_path)


def find_headers(src_dir):
    headers = []
    for root, _dirs, files in os.walk(src_dir):
        for name in sorted(files):
            if name.endswith(".h"):
                headers.append(os.path.join(root, name))
    return sorted(headers)


def check_header(compiler, src_dir, header, extra_flags=()):
    """Returns (label, ok, compiler output)."""
    rel = os.path.relpath(header, src_dir)
    label = rel if not extra_flags else f"{rel} [{' '.join(extra_flags)}]"
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".cpp", delete=False) as tu:
        tu.write(f'#include "{rel}"\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [compiler, *FLAGS, *extra_flags, f"-I{src_dir}", tu_path],
            capture_output=True, text=True)
        return label, proc.returncode == 0, proc.stderr.strip()
    finally:
        os.unlink(tu_path)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", default=os.environ.get("CXX", "c++"))
    parser.add_argument("--src", default=None,
                        help="source root (default: <repo>/src)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("headers", nargs="*",
                        help="specific headers (default: all under --src)")
    args = parser.parse_args(argv)

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_dir = os.path.abspath(args.src or os.path.join(repo, "src"))
    if not os.path.isdir(src_dir):
        print(f"error: no such source dir: {src_dir}", file=sys.stderr)
        return 2

    headers = [os.path.abspath(h) for h in args.headers] or \
        find_headers(src_dir)
    if not headers:
        print(f"error: no headers found under {src_dir}", file=sys.stderr)
        return 2

    # The plain pass covers every header; ISA-gated kernel headers get one
    # extra pass per -m flag so the guarded intrinsics compile too.
    jobs = [(h, ()) for h in headers]
    for header in headers:
        rel = os.path.relpath(header, src_dir).replace(os.sep, "/")
        for flag in EXTRA_FLAG_PASSES.get(rel, []):
            if compiler_supports(args.compiler, flag):
                jobs.append((header, (flag,)))
            else:
                print(f"skip {rel} [{flag}]: compiler lacks {flag}")

    failures = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        results = pool.map(
            lambda job: check_header(args.compiler, src_dir, *job), jobs)
        for label, ok, output in results:
            if ok:
                print(f"ok   {label}")
            else:
                print(f"FAIL {label}")
                failures.append((label, output))

    if failures:
        print(f"\n{len(failures)}/{len(jobs)} header passes are not "
              "self-contained:", file=sys.stderr)
        for label, output in failures:
            print(f"\n--- {label} ---\n{output}", file=sys.stderr)
        return 1
    print(f"\nall {len(jobs)} header passes compile standalone")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
