#include "core/constraint_check.h"

#include <optional>
#include <unordered_map>

#include "util/string_utils.h"

namespace ancstr {
namespace {

/// What a local name resolves to under one hierarchy node.
struct Resolved {
  bool isBlock = false;
  FlatDeviceId device = 0;
  HierNodeId block = 0;
};

std::optional<Resolved> resolve(const FlatDesign& design,
                                const HierNode& node,
                                const std::string& name) {
  const std::string lower = str::toLower(name);
  for (const HierNodeId child : node.children) {
    if (design.node(child).instanceName == lower) {
      Resolved r;
      r.isBlock = true;
      r.block = child;
      return r;
    }
  }
  for (const FlatDeviceId dev : node.leafDevices) {
    const std::string& path = design.device(dev).path;
    const std::size_t slash = path.rfind('/');
    const std::string local =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (local == lower) {
      Resolved r;
      r.device = dev;
      return r;
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<ConstraintIssue> checkConstraints(
    const FlatDesign& design, const Library& lib,
    const std::vector<ParsedConstraint>& constraints) {
  (void)lib;
  std::unordered_map<std::string, HierNodeId> byPath;
  for (const HierNode& node : design.hierarchy()) {
    byPath.emplace(node.path, node.id);
  }

  std::vector<ConstraintIssue> issues;
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const ParsedConstraint& c = constraints[i];
    const auto nodeIt = byPath.find(str::toLower(c.hierPath));
    if (nodeIt == byPath.end()) {
      issues.push_back({i, "unknown hierarchy '" + c.hierPath + "'"});
      continue;
    }
    const HierNode& node = design.node(nodeIt->second);
    const auto a = resolve(design, node, c.nameA);
    if (!a) {
      issues.push_back({i, "module '" + c.nameA + "' not found under '" +
                               (c.hierPath.empty() ? "." : c.hierPath) + "'"});
      continue;
    }
    if (c.nameB.empty()) continue;  // self-symmetric entry: done
    const auto b = resolve(design, node, c.nameB);
    if (!b) {
      issues.push_back({i, "module '" + c.nameB + "' not found under '" +
                               (c.hierPath.empty() ? "." : c.hierPath) + "'"});
      continue;
    }
    if (a->isBlock != b->isBlock) {
      issues.push_back(
          {i, "pair (" + c.nameA + ", " + c.nameB +
                  ") mixes a building block with a primitive device"});
      continue;
    }
    if (!a->isBlock &&
        design.device(a->device).type != design.device(b->device).type) {
      issues.push_back({i, "pair (" + c.nameA + ", " + c.nameB +
                               ") has nonidentical device types"});
    }
    if (a->isBlock == b->isBlock && a->isBlock == false &&
        a->device == b->device) {
      issues.push_back({i, "pair (" + c.nameA + ", " + c.nameB +
                               ") names the same device twice"});
    }
  }
  return issues;
}

std::vector<ConstraintIssue> checkConstraints(const FlatDesign& design,
                                              const Library& lib,
                                              const ConstraintSet& set) {
  // Project typed records to the flat pair form (matching projectV2 in
  // constraint_io.cpp), keeping set indices so issues point back at the
  // registry record.
  std::vector<ParsedConstraint> projected;
  std::vector<std::size_t> sourceIndex;
  const std::vector<Constraint>& all = set.all();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Constraint& c = all[i];
    if (c.type == ConstraintType::kSymmetryGroup || c.members.empty()) {
      continue;
    }
    ParsedConstraint p;
    p.hierPath = design.node(c.hierarchy).path;
    p.level = c.level;
    p.similarity = c.score;
    p.nameA = c.members[0].name;
    if (c.members.size() > 1) p.nameB = c.members[1].name;
    projected.push_back(std::move(p));
    sourceIndex.push_back(i);
  }
  std::vector<ConstraintIssue> issues =
      checkConstraints(design, lib, projected);
  for (ConstraintIssue& issue : issues) {
    issue.index = sourceIndex[issue.index];
  }
  return issues;
}

}  // namespace ancstr
