#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace ancstr {
namespace {

TEST(SimpleDigraph, DuplicateEdgesIgnored) {
  SimpleDigraph g(3);
  g.addEdge(0, 1);
  g.addEdge(0, 1);
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_EQ(g.outDegree(0), 1u);
  EXPECT_EQ(g.inDegree(1), 1u);
}

TEST(SimpleDigraph, DirectionalityPreserved) {
  SimpleDigraph g(2);
  g.addEdge(0, 1);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(1, 0));
}

TEST(SimpleDigraph, SelfLoopAllowed) {
  SimpleDigraph g(1);
  g.addEdge(0, 0);
  EXPECT_TRUE(g.hasEdge(0, 0));
  EXPECT_EQ(g.outDegree(0), 1u);
}

TEST(SimpleDigraph, WeakComponents) {
  SimpleDigraph g(6);
  g.addEdge(0, 1);
  g.addEdge(2, 1);  // weakly connects via 1
  g.addEdge(3, 4);
  const auto comp = g.weakComponents();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(SimpleDigraph, BfsDistances) {
  SimpleDigraph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  g.addEdge(1, 3);
  const auto dist = g.bfsDistances(0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], 2);  // via 1->3
  EXPECT_EQ(dist[4], -1);
}

}  // namespace
}  // namespace ancstr
