#include "netlist/expr.h"

#include <gtest/gtest.h>

namespace ancstr {
namespace {

TEST(Expr, PlainNumbers) {
  ParamEnv env;
  EXPECT_DOUBLE_EQ(*evalExpression("42", env), 42.0);
  EXPECT_DOUBLE_EQ(*evalExpression("2u", env), 2e-6);
  EXPECT_DOUBLE_EQ(*evalExpression("1e-9", env), 1e-9);
}

TEST(Expr, Arithmetic) {
  ParamEnv env;
  EXPECT_DOUBLE_EQ(*evalExpression("1+2*3", env), 7.0);
  EXPECT_DOUBLE_EQ(*evalExpression("(1+2)*3", env), 9.0);
  EXPECT_DOUBLE_EQ(*evalExpression("10/4", env), 2.5);
  EXPECT_DOUBLE_EQ(*evalExpression("-3+1", env), -2.0);
  EXPECT_DOUBLE_EQ(*evalExpression("2*-3", env), -6.0);
}

TEST(Expr, IdentifiersResolveThroughEnv) {
  ParamEnv env{{"wdiff", 2e-6}, {"mult", 3.0}};
  EXPECT_DOUBLE_EQ(*evalExpression("wdiff*mult", env), 6e-6);
  EXPECT_DOUBLE_EQ(*evalExpression("WDIFF", env), 2e-6)
      << "identifiers are case-insensitive";
}

TEST(Expr, UnknownIdentifierFails) {
  ParamEnv env;
  EXPECT_FALSE(evalExpression("nosuch*2", env).has_value());
}

TEST(Expr, SyntaxErrorsFail) {
  ParamEnv env;
  EXPECT_FALSE(evalExpression("1+", env).has_value());
  EXPECT_FALSE(evalExpression("(1", env).has_value());
  EXPECT_FALSE(evalExpression("", env).has_value());
  EXPECT_FALSE(evalExpression("1 2", env).has_value());
}

TEST(Expr, DivisionByZeroFails) {
  ParamEnv env;
  EXPECT_FALSE(evalExpression("1/0", env).has_value());
}

TEST(Expr, SuffixedNumbersInsideExpressions) {
  ParamEnv env;
  EXPECT_DOUBLE_EQ(*evalExpression("2u * 3", env), 6e-6);
  EXPECT_DOUBLE_EQ(*evalExpression("1k + 500", env), 1500.0);
}

TEST(ParamValue, QuotedFormsUnwrap) {
  ParamEnv env{{"l0", 0.1e-6}};
  EXPECT_DOUBLE_EQ(*evalParamValue("'2*l0'", env), 0.2e-6);
  EXPECT_DOUBLE_EQ(*evalParamValue("{l0 + l0}", env), 0.2e-6);
  EXPECT_DOUBLE_EQ(*evalParamValue("\"3\"", env), 3.0);
  EXPECT_DOUBLE_EQ(*evalParamValue("  5k ", env), 5000.0);
}

}  // namespace
}  // namespace ancstr
