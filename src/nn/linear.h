// Linear (affine) layer: y = x W + b. The GNN's per-edge-type message
// transforms are Linear layers without bias (Eq. 1 uses a bare W_tau).
#pragma once

#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace ancstr::nn {

/// Dense layer mapping (R x in) -> (R x out).
class Linear {
 public:
  /// Xavier-uniform initialised weights; bias zero-initialised when used.
  Linear(std::size_t inDim, std::size_t outDim, bool withBias, Rng& rng);

  /// Applies the layer to a batch of row vectors.
  Tensor forward(const Tensor& x) const;

  /// Tape-free inference through the active kernel table; bitwise
  /// identical to forward(Tensor::constant(x)).value().
  Matrix infer(const Matrix& x) const;

  /// Trainable parameters (weight, then bias when present).
  std::vector<Tensor> parameters() const;

  const Tensor& weight() const { return weight_; }
  bool hasBias() const { return bias_.valid(); }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;  // in x out
  Tensor bias_;    // 1 x out, invalid when bias-less
};

}  // namespace ancstr::nn
