// S3DET baseline (Liu et al., ASP-DAC 2020, paper reference [20]):
// system-level symmetry detection through graph similarity.
//
// Reimplementation of the published algorithm: each candidate subcircuit
// pair is compared by the spectra of their (normalised) graph Laplacians,
// scored with a two-sample Kolmogorov-Smirnov statistic over the
// eigenvalue distributions. Spectra are recomputed per comparison, which
// mirrors the original implementation's per-pair statistical workload and
// therefore its O(pairs * |V|^3) runtime profile (the Table V runtime gap).
#pragma once

#include <vector>

#include "core/detector.h"
#include "netlist/flatten.h"

namespace ancstr::s3det {

struct S3DetConfig {
  /// Acceptance threshold on the K-S statistic: accept when ks < this.
  /// Similarity is reported as 1 - ks, so lambda_th = 1 - ksThreshold.
  double ksThreshold = 0.10;
  /// Use the normalised Laplacian (degree-invariant) instead of L = D - A.
  bool useNormalizedLaplacian = true;
  /// Relative tolerance when comparing passive device values.
  double valueTolerance = 0.02;
  /// The original S3DET operates on the flat system graph, so a
  /// subcircuit's spectrum includes its surrounding context. We model this
  /// by extending each subtree with the devices one net away before the
  /// eigendecomposition. This is what makes the original both sensitive to
  /// instance context (missed SAR bit slices, Table V TPR) and expensive
  /// (much larger matrices per comparison).
  bool includeBoundaryContext = true;
  /// Nets with more terminals than this are not followed when collecting
  /// boundary context (rails would pull in the whole design).
  std::size_t boundaryNetDegreeCap = 64;
};

struct S3DetResult {
  /// Every system-level candidate with similarity = 1 - KS.
  std::vector<ScoredCandidate> scored;
  double seconds = 0.0;
};

/// Runs S3DET over all system-level candidates of the design.
/// Device-level candidates are not scored (S3DET targets system symmetry).
S3DetResult detectSystemConstraints(const FlatDesign& design,
                                    const Library& lib,
                                    const S3DetConfig& config = {});

/// Spectrum of one subcircuit's simplified graph (exposed for tests).
std::vector<double> subcircuitSpectrum(const FlatDesign& design,
                                       HierNodeId node,
                                       const S3DetConfig& config = {});

}  // namespace ancstr::s3det
