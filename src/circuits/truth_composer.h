// Hierarchical ground-truth composition.
//
// Reusable subcircuit builders annotate constraints relative to their own
// master ("m1"/"m2" inside "ota_fc"); when masters are instantiated, the
// composer expands those annotations into absolute hierarchy paths,
// mirroring how a designer's constraint file follows the instance tree.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "eval/ground_truth.h"

namespace ancstr::circuits {

class TruthComposer {
 public:
  /// Annotates a device-level matched pair inside `master`.
  void devicePair(const std::string& master, std::string a, std::string b);

  /// Annotates a system-level matched pair inside `master` (instance
  /// names of blocks, or names of passive devices beside blocks).
  void systemPair(const std::string& master, std::string a, std::string b);

  /// Records that `parent` instantiates `childMaster` as `instName`.
  /// Must mirror the netlist's instances for paths to resolve.
  void child(const std::string& parent, std::string instName,
             std::string childMaster);

  /// Expands all annotations for a design whose top cell is `top`.
  std::vector<GroundTruthEntry> expand(const std::string& top) const;

 private:
  struct LocalPair {
    std::string a, b;
    ConstraintLevel level;
  };
  struct ChildInst {
    std::string instName;
    std::string master;
  };

  void expandInto(const std::string& master, const std::string& prefix,
                  std::vector<GroundTruthEntry>& out) const;

  std::unordered_map<std::string, std::vector<LocalPair>> pairs_;
  std::unordered_map<std::string, std::vector<ChildInst>> children_;
};

}  // namespace ancstr::circuits
