// The gated-graph-network model (paper Section IV-C, Eq. 1):
//
//   h_v^(k) = GRU(h_v^(k-1), sum_{u in N_in(v)} W_{e_uv} h_u^(k-1))
//
// In batched form, layer k computes M = sum_tau A_tau (H W_tau) followed by
// H = GRU(M, H), where A_tau is the in-adjacency of edge type tau (|W| = 4).
// Weights are shared across the K propagation steps (GGNN-style); set
// GnnConfig::sharedWeights = false for the per-layer ablation.
#pragma once

#include <array>
#include <vector>

#include "core/graph_builder.h"
#include "nn/gru.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace ancstr {

struct GnnConfig {
  std::size_t featureDim = 18;  ///< input feature width (Table II: 18)
  std::size_t hiddenDim = 18;   ///< D, the paper's output dimension
  int numLayers = 2;            ///< K, hops aggregated
  bool sharedWeights = true;    ///< share W_tau and the GRU across layers
  /// Eq. 1 sums neighbour messages (paper / GGNN). Enabling this divides
  /// the summed message by the in-degree (GraphSAGE-style mean), which
  /// trades degree awareness for robustness to hub nets — an extension
  /// ablated in bench/ablation_model.
  bool meanAggregation = false;

  bool operator==(const GnnConfig&) const = default;
};

/// A graph preprocessed for training/inference: per-type adjacency
/// operators, feature matrix, and deduped in-neighbour lists (for the
/// contrastive loss positives).
struct PreparedGraph {
  std::array<nn::SparseMatrix, kNumEdgeTypes> inAdjacency;
  nn::Matrix features;  ///< row i = features of graph vertex i
  std::vector<std::vector<std::uint32_t>> inNeighbors;
  /// 1 / (total typed in-degree), 0 for isolated vertices (mean agg.).
  std::vector<double> inverseInDegree;
  /// vertex -> flat device id, copied from the source CircuitGraph.
  std::vector<FlatDeviceId> vertexToDevice;

  std::size_t numVertices() const { return vertexToDevice.size(); }
};

/// Builds a PreparedGraph from a constructed circuit graph and features.
PreparedGraph prepareGraph(const CircuitGraph& graph, nn::Matrix features);

/// The trainable GNN.
class GnnModel {
 public:
  GnnModel(GnnConfig config, Rng& rng);

  /// Autograd forward pass; returns Z (numVertices x hiddenDim) on tape.
  nn::Tensor forward(const PreparedGraph& g) const;

  /// Tape-free inference through the runtime-dispatched kernel layer
  /// (nn/kernels.h): batched per-edge-type GEMMs and the fused GRU step,
  /// with no autograd node allocation. Bitwise identical to
  /// forward(g).value(); returns the final embedding matrix.
  nn::Matrix embed(const PreparedGraph& g) const;

  /// Batched inference: stacks the graphs row-wise so the per-layer GEMMs
  /// run once over all subcircuits, then slices the result back apart.
  /// out[i] is bitwise identical to embed(*graphs[i]) — every kernel op is
  /// row-independent, so stacking never changes rounding. Null entries are
  /// not allowed.
  std::vector<nn::Matrix> embedBatch(
      const std::vector<const PreparedGraph*>& graphs) const;

  /// All trainable parameters.
  std::vector<nn::Tensor> parameters() const;

  /// Deep copy: same config, bitwise-equal parameter values, fully
  /// independent tensors (no shared autograd nodes). The parallel trainer
  /// clones the model per worker chunk so backward passes never touch the
  /// shared parameters concurrently.
  GnnModel clone() const;

  const GnnConfig& config() const { return config_; }

 private:
  std::size_t weightSetFor(int layer) const {
    return config_.sharedWeights ? 0u : static_cast<std::size_t>(layer);
  }

  /// Shared tape-free core of embed / embedBatch: the graphs' vertices
  /// occupy stacked rows [offsets[i], offsets[i] + graphs[i]->numVertices())
  /// of the returned matrix.
  nn::Matrix embedStacked(const std::vector<const PreparedGraph*>& graphs,
                          const std::vector<std::size_t>& offsets,
                          std::size_t totalRows) const;

  GnnConfig config_;
  /// [weightSet][edgeType] message transforms, hiddenDim x hiddenDim.
  std::vector<std::array<nn::Tensor, kNumEdgeTypes>> edgeWeights_;
  std::vector<nn::GruCell> grus_;
  /// Optional input projection when featureDim != hiddenDim.
  nn::Tensor inputProj_;
};

}  // namespace ancstr
