#include "core/trainer.h"

#include <algorithm>
#include <numeric>

#include "nn/optim.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ancstr {
namespace {

/// One graph's contribution to a batch: per-parameter gradients of the
/// contrastive loss evaluated against the batch-start weights.
struct GraphContribution {
  std::vector<nn::Matrix> grads;  ///< aligned with model.parameters()
  double loss = 0.0;
  bool contributed = false;  ///< false for degenerate/empty graphs
};

GraphContribution evaluateGraph(const GnnModel& model,
                                const std::vector<nn::Tensor>& params,
                                const PreparedGraph& g,
                                const TrainConfig& config, Rng& rng) {
  GraphContribution out;
  if (g.numVertices() < 2) return out;
  const ContrastiveBatch batch =
      sampleContrastiveBatch(g, config.negativeSamples, rng);
  if (batch.size() == 0) return out;

  nn::Tensor z = model.forward(g);
  nn::Tensor loss = contrastiveLoss(z, batch, config.meanReduction);
  nn::zeroGrads(params);
  loss.backward();

  out.grads.reserve(params.size());
  for (const nn::Tensor& p : params) {
    out.grads.push_back(p.grad().empty() ? nn::Matrix(p.rows(), p.cols())
                                         : p.grad());
  }
  out.loss = loss.value()(0, 0);
  out.contributed = true;
  return out;
}

}  // namespace

TrainStats trainUnsupervised(GnnModel& model,
                             const std::vector<PreparedGraph>& corpus,
                             const TrainConfig& config, Rng& rng,
                             std::size_t threads) {
  const trace::TraceSpan trainSpan("train.loop");
  static metrics::Histogram& lossHistogram =
      metrics::Registry::instance().histogram(
          "train.epoch_loss", {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0});
  static metrics::Counter& epochCounter =
      metrics::Registry::instance().counter("train.epochs");
  static metrics::Gauge& finalLossGauge =
      metrics::Registry::instance().gauge("train.final_loss");

  TrainStats stats;
  const Stopwatch watch;

  const std::vector<nn::Tensor> params = model.parameters();
  nn::Adam::Config adamConfig;
  adamConfig.lr = config.learningRate;
  nn::Adam optimizer(params, adamConfig);

  util::ThreadPool pool(util::resolveThreadCount(threads));
  // Workers backward() on a cloned model so the shared parameter tensors
  // are never written concurrently; the serial pool skips the clone — the
  // gradients are bitwise the same either way (identical values, identical
  // op sequence), so the thread count cannot change the trained weights.
  const bool cloneModel = pool.size() > 1;

  std::vector<std::size_t> order(corpus.size());
  std::iota(order.begin(), order.end(), 0u);
  const std::size_t batchSize =
      config.batchSize == 0 ? std::max<std::size_t>(corpus.size(), 1)
                            : config.batchSize;

  std::vector<GraphContribution> contributions;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const trace::TraceSpan epochSpan("train.epoch");
    rng.shuffle(order);
    const std::uint64_t epochSeed = rng.next();
    double lossSum = 0.0;
    std::size_t lossCount = 0;
    for (std::size_t start = 0; start < order.size(); start += batchSize) {
      const trace::TraceSpan batchSpan("train.batch");
      const std::size_t count = std::min(batchSize, order.size() - start);

      // Fan out: every graph of the batch gets its own RNG stream and is
      // evaluated against the batch-start weights. The per-graph span runs
      // on the worker that owns the chunk, so traces attribute the
      // fan-out to worker thread ids.
      contributions.assign(count, {});
      pool.parallelFor(count, [&](std::size_t begin, std::size_t end) {
        const GnnModel local = cloneModel ? model.clone() : GnnModel(model);
        const std::vector<nn::Tensor> localParams =
            cloneModel ? local.parameters() : params;
        for (std::size_t i = begin; i < end; ++i) {
          const trace::TraceSpan graphSpan("train.graph");
          const std::size_t gi = order[start + i];
          Rng graphRng(epochSeed ^ static_cast<std::uint64_t>(gi));
          contributions[i] = evaluateGraph(cloneModel ? local : model,
                                           localParams, corpus[gi], config,
                                           graphRng);
        }
      });

      // Ordered reduction: sum gradients in batch order, then step once.
      nn::zeroGrads(params);
      bool any = false;
      for (const GraphContribution& c : contributions) {
        if (!c.contributed) continue;
        any = true;
        lossSum += c.loss;
        ++lossCount;
        for (std::size_t p = 0; p < params.size(); ++p) {
          nn::Tensor param = params[p];  // shared handle
          param.accumulateGrad(c.grads[p]);
        }
      }
      if (!any) continue;
      if (config.clipNorm > 0.0) nn::clipGradNorm(params, config.clipNorm);
      optimizer.step();
    }
    const double epochLoss =
        lossCount > 0 ? lossSum / static_cast<double>(lossCount) : 0.0;
    stats.epochLoss.push_back(epochLoss);
    lossHistogram.observe(epochLoss);
    epochCounter.add();
    if (config.verbose) {
      log::info() << "epoch " << epoch << " loss " << epochLoss;
    }
  }
  finalLossGauge.set(stats.finalLoss());
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace ancstr
