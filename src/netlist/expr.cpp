#include "netlist/expr.h"

#include <cctype>
#include <cmath>

#include "util/string_utils.h"

namespace ancstr {
namespace {

class Parser {
 public:
  Parser(std::string_view text, const ParamEnv& env)
      : text_(text), env_(env) {}

  std::optional<double> run() {
    auto v = parseExpr();
    skipSpace();
    if (!v || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<double> parseExpr() {
    auto lhs = parseTerm();
    if (!lhs) return std::nullopt;
    while (true) {
      if (consume('+')) {
        auto rhs = parseTerm();
        if (!rhs) return std::nullopt;
        *lhs += *rhs;
      } else if (consume('-')) {
        auto rhs = parseTerm();
        if (!rhs) return std::nullopt;
        *lhs -= *rhs;
      } else {
        return lhs;
      }
    }
  }

  std::optional<double> parseTerm() {
    auto lhs = parseFactor();
    if (!lhs) return std::nullopt;
    while (true) {
      if (consume('*')) {
        auto rhs = parseFactor();
        if (!rhs) return std::nullopt;
        *lhs *= *rhs;
      } else if (consume('/')) {
        auto rhs = parseFactor();
        if (!rhs || *rhs == 0.0) return std::nullopt;
        *lhs /= *rhs;
      } else {
        return lhs;
      }
    }
  }

  std::optional<double> parseFactor() {
    skipSpace();
    if (consume('+')) return parseFactor();
    if (consume('-')) {
      auto v = parseFactor();
      if (!v) return std::nullopt;
      return -*v;
    }
    if (consume('(')) {
      auto v = parseExpr();
      if (!v || !consume(')')) return std::nullopt;
      return v;
    }
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return parseNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return parseIdent();
    }
    return std::nullopt;
  }

  std::optional<double> parseNumber() {
    // Greedily take digits, '.', exponent, and suffix letters, then hand
    // the token to the SPICE number parser.
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.') {
        ++pos_;
      } else if ((c == '+' || c == '-') && pos_ > start &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')) {
        ++pos_;
      } else {
        break;
      }
    }
    return str::parseSpiceNumber(text_.substr(start, pos_ - start));
  }

  std::optional<double> parseIdent() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    const std::string name =
        str::toLower(text_.substr(start, pos_ - start));
    auto it = env_.find(name);
    if (it == env_.end()) return std::nullopt;
    return it->second;
  }

  std::string_view text_;
  const ParamEnv& env_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<double> evalExpression(std::string_view text,
                                     const ParamEnv& env) {
  return Parser(text, env).run();
}

std::optional<double> evalParamValue(std::string_view text,
                                     const ParamEnv& env) {
  std::string_view body = str::trim(text);
  if (body.size() >= 2) {
    const char open = body.front();
    const char close = body.back();
    if ((open == '\'' && close == '\'') || (open == '{' && close == '}') ||
        (open == '"' && close == '"')) {
      body = str::trim(body.substr(1, body.size() - 2));
    }
  }
  return evalExpression(body, env);
}

}  // namespace ancstr
