// Designer ground-truth constraints and matching against detector output.
//
// Ground truth is a set of typed (constraint type, hierarchy path, module
// name, module name) records; pair order and name case are normalised.
// Benchmark generators emit these alongside the netlist; the evaluation
// harness labels every scored candidate and reduces decisions to a
// per-constraint-type confusion matrix.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/candidates.h"
#include "core/constraint.h"
#include "core/constraint_io.h"
#include "core/detector.h"
#include "eval/metrics.h"
#include "netlist/flatten.h"

namespace ancstr {

/// One designer-annotated constraint. For kSymmetryPair the names are the
/// matched pair; for kCurrentMirror nameA is the (diode-connected)
/// reference and nameB the mirror output device.
struct GroundTruthEntry {
  std::string hierPath;  ///< "" for the top cell, else "xfilter/xota"
  std::string nameA;     ///< local instance or device name
  std::string nameB;
  ConstraintLevel level = ConstraintLevel::kDevice;
  ConstraintType type = ConstraintType::kSymmetryPair;
};

/// Indexed ground truth for O(1) pair lookups.
class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(std::vector<GroundTruthEntry> entries);

  std::size_t size() const { return entries_.size(); }
  const std::vector<GroundTruthEntry>& entries() const { return entries_; }

  /// Number of annotated constraints of one type.
  std::size_t count(ConstraintType type) const;

  /// True when (hierPath, a, b) is annotated as a symmetry pair
  /// (order-insensitive).
  bool contains(std::string_view hierPath, std::string_view a,
                std::string_view b) const;

  /// True when (hierPath, a, b) is annotated with the given constraint
  /// type (order-insensitive within the pair).
  bool contains(ConstraintType type, std::string_view hierPath,
                std::string_view a, std::string_view b) const;

  /// True when the candidate matches an annotated symmetry pair.
  bool matches(const FlatDesign& design, const CandidatePair& pair) const;

  /// True when the candidate (reference in nameA, mirror in nameB, as in
  /// DetectionResult::mirrorScored) matches an annotated current mirror.
  bool matchesMirror(const FlatDesign& design,
                     const CandidatePair& pair) const;

 private:
  std::vector<GroundTruthEntry> entries_;
  std::unordered_set<std::string> keys_;
};

/// Labels candidates against ground truth: out[i] == true iff scored[i]
/// is an annotated constraint.
std::vector<bool> labelCandidates(const FlatDesign& design,
                                  const std::vector<ScoredCandidate>& scored,
                                  const GroundTruth& truth);

/// Labels mirror candidates (DetectionResult::mirrorScored — reference in
/// pair.nameA, mirror in pair.nameB) against the kCurrentMirror entries.
std::vector<bool> labelMirrorCandidates(
    const FlatDesign& design, const std::vector<ScoredCandidate>& scored,
    const GroundTruth& truth);

/// Reduces accept decisions + labels to confusion counts, optionally
/// restricted to one constraint level.
ConfusionCounts confusionFromScored(
    const std::vector<ScoredCandidate>& scored, const std::vector<bool>& labels);
ConfusionCounts confusionFromScored(
    const std::vector<ScoredCandidate>& scored, const std::vector<bool>& labels,
    ConstraintLevel level);

/// Converts parsed constraint-file pair records (core/constraint_io) to
/// GroundTruth; self-symmetric single-name entries are skipped. Use to
/// diff a detector run against a golden constraint file.
GroundTruth toGroundTruth(const std::vector<ParsedConstraint>& parsed);

}  // namespace ancstr
