#include "nn/sparse.h"

#include <algorithm>

#include "nn/kernels.h"
#include "util/error.h"

namespace ancstr::nn {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw ShapeError("SparseMatrix: triplet out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  rowPtr_.assign(rows + 1, 0);
  for (std::size_t i = 0; i < triplets.size();) {
    std::size_t j = i + 1;
    double v = triplets[i].value;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      v += triplets[j].value;
      ++j;
    }
    colIdx_.push_back(triplets[i].col);
    values_.push_back(v);
    ++rowPtr_[triplets[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) rowPtr_[r + 1] += rowPtr_[r];
}

Matrix SparseMatrix::multiply(const Matrix& dense) const {
  if (dense.rows() != cols_) {
    throw ShapeError("spmm: sparse cols " + std::to_string(cols_) +
                     " != dense rows " + std::to_string(dense.rows()));
  }
  Matrix out(rows_, dense.cols());
  multiplyAcc(dense.data(), dense.cols(), out.data());
  return out;
}

void SparseMatrix::multiplyAcc(const double* dense, std::size_t denseCols,
                               double* out) const {
  const auto& axpy = activeKernels().axpy;
  for (std::size_t r = 0; r < rows_; ++r) {
    double* outRow = out + r * denseCols;
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      axpy(outRow, dense + colIdx_[k] * denseCols, values_[k], denseCols);
    }
  }
}

SparseMatrix SparseMatrix::transposed() const {
  std::vector<Triplet> triplets;
  triplets.reserve(values_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      triplets.push_back({colIdx_[k], r, values_[k]});
    }
  }
  return SparseMatrix(cols_, rows_, std::move(triplets));
}

Matrix SparseMatrix::toDense() const {
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      out(r, colIdx_[k]) += values_[k];
    }
  }
  return out;
}

}  // namespace ancstr::nn
