#include "core/engine.h"

#include <cstring>
#include <initializer_list>
#include <map>
#include <optional>
#include <sstream>

#include "core/circuit_hash.h"
#include "core/model_io.h"
#include "nn/kernels.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/resource.h"
#include "util/trace.h"

namespace ancstr {

namespace {

// The shared budget is split evenly while both caches are enabled; a
// disabled cache's half goes to the other one. Budget 0 disables a
// LruByteCache outright, and the lookup paths below additionally skip
// hashing for disabled caches.
std::size_t designBudget(const EngineConfig& c) {
  if (!c.cacheDesignInference) return 0;
  return c.cacheBlockEmbeddings ? c.cacheBudgetBytes - c.cacheBudgetBytes / 2
                                : c.cacheBudgetBytes;
}

std::size_t blockBudget(const EngineConfig& c) {
  if (!c.cacheBlockEmbeddings) return 0;
  return c.cacheDesignInference ? c.cacheBudgetBytes / 2 : c.cacheBudgetBytes;
}

// The pair cache holds 8-byte similarities, so a thin 1/16 slice on top of
// the design/block split carries thousands of pairs without disturbing the
// established split (the overall budget is soft anyway).
std::size_t pairBudget(const EngineConfig& c) {
  return c.cachePairScores ? c.cacheBudgetBytes / 16 : 0;
}

// Subtree-hash vectors are 16 bytes per hierarchy node, so an even
// thinner slice keeps many design versions' hashes resident for chained
// delta calls.
std::size_t subtreeMemoBudget(const EngineConfig& c) {
  return c.cacheBudgetBytes / 32;
}

// Byte charge per pair entry: key + value + list/map node overhead.
constexpr std::size_t kPairEntryBytes =
    sizeof(PairScoreKey) + sizeof(double) + 4 * sizeof(void*);

util::LruCacheStats statsDelta(const util::LruCacheStats& now,
                               const util::LruCacheStats& then) {
  util::LruCacheStats d;
  d.hits = now.hits - then.hits;
  d.misses = now.misses - then.misses;
  d.evictions = now.evictions - then.evictions;
  d.bytes = now.bytes;      // occupancy, not a counter
  d.entries = now.entries;  // ditto
  return d;
}

// --- disk-tier payload serialization ---------------------------------
// Little-endian raw-byte encodings so a disk hit reproduces the cached
// doubles bit for bit (the bitwise-identity contract). Each payload opens
// with its own 4-byte magic on top of the DiskCache entry header, so a
// namespace mix-up decodes to "corrupt", never to garbage values.

constexpr char kArtifactsMagic[4] = {'A', 'I', 'A', '1'};
constexpr char kBlockMagic[4] = {'A', 'B', 'E', '1'};
// Decode-side sanity bound: no cached artifact legitimately approaches
// this, and it keeps a corrupt-but-checksummed size field from driving a
// giant allocation.
constexpr std::uint64_t kMaxDecodeElements = 1ull << 32;

void appendU64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void appendDoubles(std::string& out, const double* data, std::size_t n) {
  out.append(reinterpret_cast<const char*>(data), n * sizeof(double));
}

bool readU64(const std::string& in, std::size_t& pos, std::uint64_t* v) {
  if (in.size() - pos < sizeof(*v)) return false;
  std::memcpy(v, in.data() + pos, sizeof(*v));
  pos += sizeof(*v);
  return true;
}

std::string encodeArtifacts(const InferenceArtifacts& a) {
  std::string out;
  out.reserve(4 + 16 + a.embeddings.size() * sizeof(double));
  out.append(kArtifactsMagic, sizeof(kArtifactsMagic));
  appendU64(out, a.embeddings.rows());
  appendU64(out, a.embeddings.cols());
  appendDoubles(out, a.embeddings.data(), a.embeddings.size());
  return out;
}

bool decodeArtifacts(const std::string& in, InferenceArtifacts* out) {
  std::size_t pos = sizeof(kArtifactsMagic);
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  if (in.size() < pos ||
      std::memcmp(in.data(), kArtifactsMagic, pos) != 0 ||
      !readU64(in, pos, &rows) || !readU64(in, pos, &cols)) {
    return false;
  }
  if (rows > kMaxDecodeElements || cols > kMaxDecodeElements ||
      (cols != 0 && rows > kMaxDecodeElements / cols) ||
      in.size() - pos != rows * cols * sizeof(double)) {
    return false;
  }
  std::vector<double> data(rows * cols);
  std::memcpy(data.data(), in.data() + pos, data.size() * sizeof(double));
  out->embeddings =
      nn::Matrix(static_cast<std::size_t>(rows),
                 static_cast<std::size_t>(cols), std::move(data));
  return true;
}

std::string encodeBlock(const CachedBlockEmbedding& e) {
  std::string out;
  out.reserve(4 + 24 + e.representativePositions.size() * sizeof(std::uint32_t) +
              e.structural.size() * sizeof(double));
  out.append(kBlockMagic, sizeof(kBlockMagic));
  appendU64(out, e.subtreeSize);
  appendU64(out, e.representativePositions.size());
  out.append(reinterpret_cast<const char*>(e.representativePositions.data()),
             e.representativePositions.size() * sizeof(std::uint32_t));
  appendU64(out, e.structural.size());
  appendDoubles(out, e.structural.data(), e.structural.size());
  return out;
}

bool decodeBlock(const std::string& in, CachedBlockEmbedding* out) {
  std::size_t pos = sizeof(kBlockMagic);
  std::uint64_t subtreeSize = 0;
  std::uint64_t npos = 0;
  if (in.size() < pos || std::memcmp(in.data(), kBlockMagic, pos) != 0 ||
      !readU64(in, pos, &subtreeSize) || !readU64(in, pos, &npos)) {
    return false;
  }
  if (npos > kMaxDecodeElements ||
      in.size() - pos < npos * sizeof(std::uint32_t)) {
    return false;
  }
  out->subtreeSize = static_cast<std::size_t>(subtreeSize);
  out->representativePositions.resize(static_cast<std::size_t>(npos));
  std::memcpy(out->representativePositions.data(), in.data() + pos,
              npos * sizeof(std::uint32_t));
  pos += npos * sizeof(std::uint32_t);
  std::uint64_t nstruct = 0;
  if (!readU64(in, pos, &nstruct) || nstruct > kMaxDecodeElements ||
      in.size() - pos != nstruct * sizeof(double)) {
    return false;
  }
  out->structural.resize(static_cast<std::size_t>(nstruct));
  std::memcpy(out->structural.data(), in.data() + pos,
              nstruct * sizeof(double));
  return true;
}

metrics::Counter& decodeFailedCounter() {
  static metrics::Counter& c =
      metrics::Registry::instance().counter("engine.disk_cache.decode_failed");
  return c;
}

// Coarse per-design in-flight estimate for admission control: devices
// dominate (embeddings, graph, candidates), so charge a flat ~1 KiB each.
constexpr std::size_t kAdmissionBytesPerDevice = 1024;

/// Per-request hit/miss counter around the shared block-cache adapter —
/// the adapter's LRU stats are engine-wide, but the ledger wants this
/// request's counts. Lookups come from every detection worker, hence the
/// atomics; counting observes and never steers (the inner cache decides).
class CountingBlockCache final : public BlockEmbeddingCache {
 public:
  explicit CountingBlockCache(BlockEmbeddingCache* inner) : inner_(inner) {}

  std::shared_ptr<const CachedBlockEmbedding> lookup(
      const util::StructuralHash& key) override {
    auto hit = inner_->lookup(key);
    (hit != nullptr ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    return hit;
  }

  void store(const util::StructuralHash& key,
             std::shared_ptr<const CachedBlockEmbedding> entry) override {
    inner_->store(key, std::move(entry));
  }

  void setInner(BlockEmbeddingCache* inner) { inner_ = inner; }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  BlockEmbeddingCache* inner_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Fills the result-shaped tail of a ledger record (constraint counts,
/// diagnostic histogram, phase timings) from a finished extraction.
void fillLedgerOutputs(ledger::LedgerRecord& rec,
                       const ExtractionResult& result) {
  using ConstraintTypeList = std::initializer_list<ConstraintType>;
  for (const ConstraintType type : ConstraintTypeList{
           ConstraintType::kSymmetryPair, ConstraintType::kSelfSymmetric,
           ConstraintType::kCurrentMirror, ConstraintType::kSymmetryGroup}) {
    rec.constraints.emplace_back(constraintTypeName(type),
                                 result.detection.set.count(type));
  }
  rec.constraintsTotal = result.detection.set.size();
  std::map<std::string, std::uint64_t> byCode;
  for (const diag::Diagnostic& d : result.report.diagnostics) {
    ++byCode[d.code];
  }
  rec.diagnostics.assign(byCode.begin(), byCode.end());
  for (const PhaseTiming& phase : result.report.phases) {
    rec.phases.emplace_back(phase.name, phase.seconds);
  }
}

}  // namespace

/// BlockEmbeddingCache over the engine's LRU (consulted concurrently from
/// every pool worker; the LRU's own mutex is the only synchronization).
class ExtractionEngine::BlockCacheAdapter final : public BlockEmbeddingCache {
 public:
  BlockCacheAdapter(
      const ExtractionEngine* engine,
      util::LruByteCache<util::StructuralHash, CachedBlockEmbedding>& cache,
      std::uint64_t salt)
      : engine_(engine), cache_(cache), salt_(salt) {}

  std::shared_ptr<const CachedBlockEmbedding> lookup(
      const util::StructuralHash& key) override {
    const util::StructuralHash salted = withConfigSalt(key, salt_);
    if (auto hit = cache_.get(salted)) return hit;
    // Memory miss: consult the persistent tier (corrupt entries there are
    // quarantined inside diskGet and come back as a miss). A decode
    // failure is counted and recomputed — never served.
    if (auto payload = engine_->diskGet("block", salted, nullptr)) {
      auto decoded = std::make_shared<CachedBlockEmbedding>();
      if (decodeBlock(*payload, decoded.get())) {
        cache_.put(salted, decoded, decoded->approxBytes());
        return decoded;
      }
      decodeFailedCounter().add();
    }
    return nullptr;
  }

  void store(const util::StructuralHash& key,
             std::shared_ptr<const CachedBlockEmbedding> entry) override {
    const util::StructuralHash salted = withConfigSalt(key, salt_);
    engine_->diskPut("block", salted, encodeBlock(*entry));
    const std::size_t bytes = entry->approxBytes();
    cache_.put(salted, std::move(entry), bytes);
  }

 private:
  const ExtractionEngine* engine_;
  util::LruByteCache<util::StructuralHash, CachedBlockEmbedding>& cache_;
  const std::uint64_t salt_;  ///< see ExtractionEngine::detectorSalt()
};

/// PairScoreCache over the engine's LRU (same concurrency model as the
/// block adapter: the LRU's mutex is the only synchronization).
class ExtractionEngine::PairCacheAdapter final : public PairScoreCache {
 public:
  PairCacheAdapter(
      util::LruByteCache<PairScoreKey, double, PairScoreKeyHash>& cache,
      std::uint64_t salt)
      : cache_(cache), salt_(salt) {}

  bool lookup(const PairScoreKey& key, double* similarity) override {
    if (const auto hit = cache_.get(salted(key))) {
      *similarity = *hit;
      return true;
    }
    return false;
  }

  void store(const PairScoreKey& key, double similarity) override {
    cache_.put(salted(key), std::make_shared<const double>(similarity),
               kPairEntryBytes);
  }

 private:
  PairScoreKey salted(const PairScoreKey& key) const {
    return {withConfigSalt(key.a, salt_), withConfigSalt(key.b, salt_)};
  }

  util::LruByteCache<PairScoreKey, double, PairScoreKeyHash>& cache_;
  const std::uint64_t salt_;  ///< see ExtractionEngine::detectorSalt()
};

ExtractionEngine::ExtractionEngine(const Pipeline& pipeline,
                                   EngineConfig config)
    : pipeline_(pipeline),
      config_(config),
      detectorSalt_(detectorConfigSignature(pipeline.config().detector)),
      designCache_(designBudget(config)),
      blockCache_(blockBudget(config)),
      pairCache_(pairBudget(config)),
      subtreeHashMemo_(subtreeMemoBudget(config)),
      blockAdapter_(std::make_unique<BlockCacheAdapter>(this, blockCache_,
                                                        detectorSalt_)),
      pairAdapter_(
          std::make_unique<PairCacheAdapter>(pairCache_, detectorSalt_)) {
  if (!config_.cachePath.empty() && config_.cacheBudgetBytes > 0) {
    util::DiskCacheConfig diskConfig;
    diskConfig.dir = config_.cachePath;
    diskConfig.budgetBytes = config_.diskBudgetBytes;
    diskConfig.writeBehind = config_.diskWriteBehind;
    disk_ = std::make_unique<util::DiskCache>(std::move(diskConfig));
  }
  if (!config_.ledgerPath.empty()) {
    ledger::LedgerWriterConfig ledgerConfig;
    ledgerConfig.path = config_.ledgerPath;
    ledgerConfig.writeBehind = config_.ledgerWriteBehind;
    ledger_ = std::make_unique<ledger::LedgerWriter>(std::move(ledgerConfig));
  }
}

ExtractionEngine::~ExtractionEngine() = default;

std::uint64_t ExtractionEngine::modelSalt() const {
  const std::lock_guard<std::mutex> lock(modelSaltMutex_);
  if (!modelSaltReady_) {
    // Fold the serialized trained weights into one lane: any model change
    // (retrain, reload, different seed) re-keys the whole disk space.
    std::ostringstream serialized;
    saveModel(pipeline_.model(), serialized);
    util::StructuralHasher hasher;
    hasher.addBytes(serialized.str());
    const util::StructuralHash h = hasher.finish();
    modelSalt_ = h.hi ^ h.lo;
    modelSaltReady_ = true;
  }
  return modelSalt_;
}

std::optional<std::string> ExtractionEngine::diskGet(
    std::string_view ns, const util::StructuralHash& saltedKey,
    diag::DiagnosticSink* sink) const {
  if (disk_ == nullptr || !disk_->enabled()) return std::nullopt;
  return disk_->get(ns, withConfigSalt(saltedKey, modelSalt()), sink);
}

void ExtractionEngine::diskPut(std::string_view ns,
                               const util::StructuralHash& saltedKey,
                               std::string payload) const {
  if (disk_ == nullptr || !disk_->enabled()) return;
  disk_->put(ns, withConfigSalt(saltedKey, modelSalt()), std::move(payload));
}

ExtractionResult ExtractionEngine::extractOne(
    const Library& lib, diag::DiagnosticSink* sink, util::Deadline deadline,
    const FlatDesign* preElaborated, const util::StructuralHash* designHash,
    const std::vector<util::StructuralHash>* nodeHashes,
    std::uint64_t requestId, ledger::LedgerRecord* ledgerRec) const {
  const trace::TraceSpan extractSpan("engine.extract", requestId);
  const bool failSoft = sink != nullptr && !sink->strict();
  const std::size_t diagStart = failSoft ? sink->size() : 0;
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  static metrics::Counter& degradedCounter =
      metrics::Registry::instance().counter("pipeline.extract_degraded");
  const util::DeadlineToken token(deadline);
  const std::uint64_t rssBefore =
      ledgerRec != nullptr ? util::peakRssBytes() : 0;
  if (ledgerRec != nullptr) ledgerRec->requestId = requestId;

  ExtractionResult result;
  CountingBlockCache blockCounts(nullptr);
  try {
    token.checkpoint("engine.elaborate");
    std::optional<FlatDesign> owned;
    if (preElaborated == nullptr) {
      owned.emplace(failSoft ? FlatDesign::elaborate(lib, *sink)
                             : FlatDesign::elaborate(lib));
    }
    const FlatDesign& design =
        preElaborated != nullptr ? *preElaborated : *owned;
    if (ledgerRec != nullptr) {
      ledgerRec->devices = design.devices().size();
      ledgerRec->nets = design.nets().size();
      ledgerRec->hierarchyNodes = design.hierarchy().size();
    }

    token.checkpoint("engine.hash");
    // The ledger needs the design hash even when the design cache is off,
    // so the hash is computed whenever either consumer wants it.
    const bool wantDesignCache =
        config_.cacheDesignInference && config_.cacheBudgetBytes > 0;
    util::StructuralHash key;
    if (wantDesignCache || ledgerRec != nullptr) {
      const trace::TraceSpan hashSpan("engine.hash", requestId);
      // The delta path hands in the hash it computed while diffing;
      // plain extract() pays for it here.
      key = designHash != nullptr
                ? *designHash
                : structuralHash(design, pipeline_.config().graph,
                                 pipeline_.config().features);
      result.report.addPhase("engine.hash", hashSpan.seconds());
      if (ledgerRec != nullptr) ledgerRec->designHash = key.hex();
    }
    std::shared_ptr<const InferenceArtifacts> artifacts;
    if (wantDesignCache) {
      // Cache keys carry the detector-config salt (see detectorSalt());
      // the raw hash stays the currency of diffing and manifests.
      const util::StructuralHash cacheKey = withConfigSalt(key, detectorSalt_);
      artifacts = designCache_.get(cacheKey);
      if (artifacts != nullptr && ledgerRec != nullptr) {
        ledgerRec->cacheOutcome = "mem_hit";
      }
      if (artifacts == nullptr) {
        // Memory miss: the persistent tier may still hold this design's
        // inference from an earlier process. A corrupt entry comes back
        // as a miss (quarantined, warning diagnostic on the sink); a
        // decode failure is counted and falls through to recompute.
        if (auto payload = diskGet("design", cacheKey, sink)) {
          auto fromDisk = std::make_shared<InferenceArtifacts>();
          if (decodeArtifacts(*payload, fromDisk.get())) {
            designCache_.put(cacheKey, fromDisk, fromDisk->approxBytes());
            artifacts = std::move(fromDisk);
            if (ledgerRec != nullptr) ledgerRec->cacheOutcome = "disk_hit";
          } else {
            decodeFailedCounter().add();
          }
        }
      }
      if (artifacts == nullptr) {
        if (ledgerRec != nullptr) ledgerRec->cacheOutcome = "cold";
        token.checkpoint("engine.inference");
        auto computed = std::make_shared<InferenceArtifacts>(
            pipeline_.runInference(lib, design, result.report));
        designCache_.put(cacheKey, computed, computed->approxBytes());
        diskPut("design", cacheKey, encodeArtifacts(*computed));
        artifacts = std::move(computed);
      }
    } else {
      if (ledgerRec != nullptr) ledgerRec->cacheOutcome = "cold";
      token.checkpoint("engine.inference");
      artifacts = std::make_shared<InferenceArtifacts>(
          pipeline_.runInference(lib, design, result.report));
    }

    // Fault site for robustness tests, placed after the design-cache
    // consult so an injected failure exercises the "cache activity before
    // the error must still be published" contract.
    if (fault::shouldFail("engine.extract")) {
      throw Error("injected fault: engine.extract");
    }

    token.checkpoint("engine.detection");
    const bool cachesOn = config_.cacheBudgetBytes > 0;
    BlockEmbeddingCache* blockCache =
        cachesOn && config_.cacheBlockEmbeddings ? blockAdapter_.get()
                                                 : nullptr;
    if (ledgerRec != nullptr && blockCache != nullptr) {
      // Wrap the shared adapter in this request's counter; counting never
      // steers, so the ledger observes without changing any result.
      blockCounts.setInner(blockCache);
      blockCache = &blockCounts;
    }
    const DetectionCaches caches{
        blockCache,
        cachesOn && config_.cachePairScores ? pairAdapter_.get() : nullptr,
        nodeHashes};
    pipeline_.runDetection(lib, design, *artifacts, caches, result);
    // Copy (not move): the artifact may live on in the cache. A hit thus
    // yields the exact bytes the original miss computed.
    result.embeddings = artifacts->embeddings;
  } catch (const util::DeadlineError& e) {
    // Out of time, not bad input. No partial result in either mode: the
    // checkpoint threw before detection assigned anything. Strict mode
    // propagates the typed error; fail-soft records the coded diagnostic
    // — deliberately NOT extract_degraded, so dashboards can tell load
    // shedding from corrupt input.
    if (ledgerRec != nullptr) ledgerRec->outcome = "deadline_exceeded";
    if (!failSoft) {
      publishCacheMetrics();
      throw;
    }
    publishCacheMetrics();
    result = ExtractionResult{};
    result.report.metrics =
        metrics::Registry::instance().snapshot().since(before);
    sink->error(diag::codes::kDeadlineExceeded, "", 0, e.what());
  } catch (const Error& e) {
    if (!failSoft) {
      if (ledgerRec != nullptr) ledgerRec->outcome = "error";
      throw;
    }
    // Same degradation contract as Pipeline::extract: empty result, keep
    // completed phase timings, record [pipeline.extract_degraded]. Cache
    // activity up to the failure point (design-cache consult, block
    // embedding hits) still counts: publish it so the degraded design's
    // report carries its engine.cache.* metrics rather than dropping them
    // on the error branch.
    if (ledgerRec != nullptr) ledgerRec->outcome = "degraded";
    degradedCounter.add();
    publishCacheMetrics();
    result.report.metrics =
        metrics::Registry::instance().snapshot().since(before);
    sink->error(diag::codes::kExtractDegraded, "", 0,
                std::string("extraction degraded to empty result: ") +
                    e.what());
  }
  if (failSoft) {
    result.report.addDiagnostics(sink->snapshotFrom(diagStart));
  }
  result.report.requestId = requestId;
  result.report.kernel = nn::activeKernelName();
  if (requestId != 0) {
    for (diag::Diagnostic& d : result.report.diagnostics) {
      d.requestId = requestId;
    }
  }
  if (ledgerRec != nullptr) {
    ledgerRec->kernel = nn::activeKernelName();
    ledgerRec->blockCacheHits = blockCounts.hits();
    ledgerRec->blockCacheMisses = blockCounts.misses();
    fillLedgerOutputs(*ledgerRec, result);
    ledgerRec->wallSeconds = extractSpan.seconds();
    const std::uint64_t rssAfter = util::peakRssBytes();
    ledgerRec->peakRssDeltaBytes =
        rssAfter >= rssBefore ? rssAfter - rssBefore : 0;
  }
  return result;
}

ExtractionResult ExtractionEngine::extract(const Library& lib,
                                           ExtractOptions options) const {
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  const std::uint64_t requestId = claimRequestIds(1);
  ledger::LedgerRecord rec;
  ledger::LedgerRecord* recPtr = ledger_ != nullptr ? &rec : nullptr;
  try {
    ExtractionResult result = extractOne(lib, options.sink, options.deadline,
                                         nullptr, nullptr, nullptr, requestId,
                                         recPtr);
    publishCacheMetrics();
    result.report.metrics =
        metrics::Registry::instance().snapshot().since(before);
    result.report.correlationId = options.correlationId;
    if (recPtr != nullptr) {
      rec.correlationId = options.correlationId;
      ledger_->append(rec);
    }
    return result;
  } catch (...) {
    // Strict-mode failure: cache consults that already happened must not
    // vanish from the process-wide counters — and the request still gets
    // its ledger record (outcome "error" unless the deadline path already
    // stamped a more precise one).
    publishCacheMetrics();
    if (recPtr != nullptr) {
      rec.requestId = requestId;
      rec.correlationId = options.correlationId;
      rec.kernel = nn::activeKernelName();
      if (rec.outcome == "ok") rec.outcome = "error";
      ledger_->append(rec);
    }
    throw;
  }
}

ExtractionResult ExtractionEngine::extractDelta(const Library& oldLib,
                                                const Library& newLib,
                                                ExtractOptions options,
                                                DeltaReport* delta) const {
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  const EngineCacheStats statsBefore = cacheStats();
  // One request id covers the whole delta call (diff + warm + extract):
  // the ledger records one serving-layer request, not its internal phases.
  const std::uint64_t requestId = claimRequestIds(1);
  const trace::TraceSpan deltaSpan("engine.delta", requestId);
  ledger::LedgerRecord rec;
  ledger::LedgerRecord* recPtr = ledger_ != nullptr ? &rec : nullptr;
  auto& registry = metrics::Registry::instance();
  static metrics::Counter& dirtyNodes =
      registry.counter("engine.delta.dirty_nodes");
  static metrics::Counter& cleanNodes =
      registry.counter("engine.delta.clean_nodes");
  static metrics::Counter& reusedDevices =
      registry.counter("engine.delta.reused_devices");
  static metrics::Counter& identical =
      registry.counter("engine.delta.identical");

  DeltaReport localDelta;
  DeltaReport& out = delta != nullptr ? *delta : localDelta;
  out = DeltaReport{};

  // Phase 1 — diff. Each side is elaborated and hashed at most once; the
  // hashes feed the diff here, the design-cache probe and warm-up below,
  // and the detection phase (DetectionCaches::nodeHashes). Baseline
  // subtree hashes are additionally memoized per design hash, so chained
  // ECO calls (v1->v2, v2->v3) skip the old side's hashing outright. The
  // baseline is consumed fail-soft: a baseline that does not elaborate
  // leaves the diff empty (nothing provably clean) and never aborts the
  // newLib extraction.
  RunReport prelude;
  const GraphBuildOptions& graph = pipeline_.config().graph;
  const FeatureConfig& features = pipeline_.config().features;
  std::optional<FlatDesign> oldDesign;
  std::optional<FlatDesign> newDesign;
  util::StructuralHash oldHash;
  util::StructuralHash newHash;
  std::shared_ptr<const std::vector<util::StructuralHash>> oldNodeHashes;
  std::shared_ptr<const std::vector<util::StructuralHash>> newNodeHashes;
  {
    const trace::TraceSpan diffSpan("engine.diff", requestId);
    try {
      oldDesign.emplace(FlatDesign::elaborate(oldLib));
      oldHash = structuralHash(*oldDesign, graph, features);
      oldNodeHashes = memoizedSubtreeHashes(*oldDesign, oldHash);
    } catch (const Error&) {
      oldDesign.reset();  // baseline unusable: empty diff, plain extract
    }
    try {
      newDesign.emplace(FlatDesign::elaborate(newLib));
      newHash = structuralHash(*newDesign, graph, features);
      newNodeHashes = memoizedSubtreeHashes(*newDesign, newHash);
    } catch (const Error&) {
      // Strict elaboration failed: phase 3's extractOne re-elaborates
      // under the caller's sink and degrades (or throws) as usual.
      newDesign.reset();
    }
    if (oldDesign.has_value() && newDesign.has_value()) {
      try {
        out.diff = diffPrehashed(*newDesign, *oldNodeHashes, oldHash,
                                 *newNodeHashes, newHash);
        out.diff.masters = diffMasters(oldLib, newLib);
      } catch (const Error&) {
        out.diff = LibraryDiff{};
      }
    }
    prelude.addPhase("engine.diff", diffSpan.seconds());
  }
  dirtyNodes.add(out.diff.dirtyNodes);
  cleanNodes.add(out.diff.cleanNodes);
  reusedDevices.add(out.diff.reusableDevices);
  if (out.diff.identical()) identical.add();

  // Phase 2 — re-warm the caches from the baseline when it is not already
  // resident (contains() probes without skewing hit/miss statistics).
  // Warming runs the normal extraction path over oldLib, so everything it
  // caches is exactly what a prior extract(oldLib) would have cached;
  // skipping or failing it never changes the newLib result.
  if (config_.cacheBudgetBytes > 0 && oldDesign.has_value()) {
    try {
      const bool warm =
          !config_.cacheDesignInference ||
          !designCache_.contains(withConfigSalt(oldHash, detectorSalt_));
      if (warm) {
        const trace::TraceSpan warmSpan("engine.warm", requestId);
        // The request deadline covers warming too; a DeadlineError here is
        // swallowed like any warm failure, and phase 3's own checkpoints
        // then surface the expiry with the proper contract.
        (void)extractOne(oldLib, nullptr, options.deadline, &*oldDesign,
                         &oldHash, oldNodeHashes.get());
        prelude.addPhase("engine.warm", warmSpan.seconds());
      }
    } catch (const Error&) {
      // Baseline unusable — proceed as a plain (cold) extraction.
    }
  }
  oldDesign.reset();  // free the baseline before the main extraction

  // Phase 3 — the identical cached extraction path extract() runs, which
  // is what makes the delta result bitwise-equal to the full one.
  ExtractionResult result;
  try {
    result = extractOne(newLib, options.sink, options.deadline,
                        newDesign.has_value() ? &*newDesign : nullptr,
                        newDesign.has_value() ? &newHash : nullptr,
                        newDesign.has_value() ? newNodeHashes.get() : nullptr,
                        requestId, recPtr);
  } catch (...) {
    publishCacheMetrics();
    if (recPtr != nullptr) {
      rec.requestId = requestId;
      rec.correlationId = options.correlationId;
      rec.kernel = nn::activeKernelName();
      if (rec.outcome == "ok") rec.outcome = "error";
      rec.wallSeconds = deltaSpan.seconds();
      ledger_->append(rec);
    }
    throw;
  }
  publishCacheMetrics();
  prelude.accumulate(result.report);
  result.report = std::move(prelude);
  result.report.metrics =
      metrics::Registry::instance().snapshot().since(before);
  result.report.requestId = requestId;
  result.report.correlationId = options.correlationId;

  const EngineCacheStats statsAfter = cacheStats();
  out.reuse.design = statsDelta(statsAfter.design, statsBefore.design);
  out.reuse.blocks = statsDelta(statsAfter.blocks, statsBefore.blocks);
  out.reuse.pairs = statsDelta(statsAfter.pairs, statsBefore.pairs);
  if (recPtr != nullptr) {
    // The merged report carries the delta-only phases (engine.diff,
    // engine.warm) ahead of the extraction phases; rebuild the record's
    // phase list from it and charge the whole call's wall time.
    rec.correlationId = options.correlationId;
    rec.phases.clear();
    for (const PhaseTiming& phase : result.report.phases) {
      rec.phases.emplace_back(phase.name, phase.seconds);
    }
    rec.wallSeconds = deltaSpan.seconds();
    ledger_->append(rec);
  }
  return result;
}

std::vector<ExtractionResult> ExtractionEngine::extractBatch(
    std::span<const Library* const> batch, ExtractOptions options,
    RunReport* batchReport) const {
  const trace::TraceSpan batchSpan("engine.batch");
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  const bool failSoft = options.sink != nullptr && !options.sink->strict();
  // Claim the whole batch's request-id range up front: slot i always gets
  // baseId + i, so ids (and the ledger sequence below) are invariant to
  // the worker count — the batch determinism contract extends to the
  // observability surface.
  const std::uint64_t baseId =
      batch.empty() ? 0 : claimRequestIds(batch.size());
  static metrics::Counter& admissionAccepted =
      metrics::Registry::instance().counter("engine.admission.accepted");
  static metrics::Counter& admissionRejected =
      metrics::Registry::instance().counter("engine.admission.rejected");

  // Admission control: refuse an oversized batch whole, before any work
  // starts — a shed request must cost O(estimate), not O(extraction).
  std::string rejectReason;
  if (config_.admissionMaxDesigns > 0 &&
      batch.size() > config_.admissionMaxDesigns) {
    rejectReason = "batch of " + std::to_string(batch.size()) +
                   " designs exceeds admissionMaxDesigns=" +
                   std::to_string(config_.admissionMaxDesigns);
  } else if (config_.admissionMaxBytes > 0) {
    std::size_t estimatedBytes = 0;
    for (const Library* lib : batch) {
      if (lib == nullptr) continue;
      try {
        estimatedBytes += lib->flatDeviceCount() * kAdmissionBytesPerDevice;
      } catch (const Error&) {
        // Unresolvable hierarchy: no estimate. Admit; extraction itself
        // reports the real problem with the right diagnostics.
      }
    }
    if (estimatedBytes > config_.admissionMaxBytes) {
      rejectReason = "estimated in-flight " +
                     std::to_string(estimatedBytes) +
                     " bytes exceeds admissionMaxBytes=" +
                     std::to_string(config_.admissionMaxBytes);
    }
  }
  if (!rejectReason.empty()) {
    admissionRejected.add();
    if (!failSoft) throw AdmissionError("batch rejected: " + rejectReason);
    options.sink->error(diag::codes::kAdmissionRejected, "", 0, rejectReason);
    std::vector<ExtractionResult> rejected(batch.size());
    for (std::size_t i = 0; i < rejected.size(); ++i) {
      diag::Diagnostic rejectDiag{diag::Severity::kError,
                                  std::string(diag::codes::kAdmissionRejected),
                                  "", 0, rejectReason};
      rejectDiag.requestId = baseId + i;
      rejected[i].report.requestId = baseId + i;
      rejected[i].report.correlationId = options.correlationId;
      rejected[i].report.addDiagnostics({rejectDiag});
      if (ledger_ != nullptr) {
        // A shed request still ledgers: one record per design, outcome
        // "admission_rejected", no hash or phases (no work happened).
        ledger::LedgerRecord rec;
        rec.requestId = baseId + i;
        rec.correlationId = options.correlationId;
        rec.kernel = nn::activeKernelName();
        rec.outcome = "admission_rejected";
        rec.cacheOutcome = "none";
        rec.diagnostics.emplace_back(
            std::string(diag::codes::kAdmissionRejected), 1);
        ledger_->append(rec);
      }
    }
    if (batchReport != nullptr) {
      batchReport->addPhase("engine.batch", batchSpan.seconds());
      batchReport->metrics =
          metrics::Registry::instance().snapshot().since(before);
    }
    return rejected;
  }
  admissionAccepted.add();

  // Each design gets a private collect sink: snapshotFrom index ranges on
  // a sink shared across concurrent designs would interleave, so
  // diagnostics are collected locally and merged in batch order below.
  std::vector<std::unique_ptr<diag::DiagnosticSink>> localSinks;
  if (failSoft) {
    localSinks.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      localSinks.push_back(std::make_unique<diag::DiagnosticSink>(
          diag::DiagnosticSink::Mode::kCollect));
    }
  }

  std::vector<ExtractionResult> results(batch.size());
  std::vector<ledger::LedgerRecord> records(
      ledger_ != nullptr ? batch.size() : 0);
  util::ThreadPool pool(util::resolveThreadCount(config_.threads));
  try {
    pool.forEach(batch.size(), [&](std::size_t i) {
      ANCSTR_ASSERT(batch[i] != nullptr);
      results[i] =
          extractOne(*batch[i], failSoft ? localSinks[i].get() : options.sink,
                     options.deadline, nullptr, nullptr, nullptr, baseId + i,
                     ledger_ != nullptr ? &records[i] : nullptr);
    });
  } catch (...) {
    // Strict-mode failure mid-batch: publish the cache consults that
    // already happened before rethrowing (same as extract()). No ledger
    // records are appended — with workers racing, any subset of slots may
    // have finished, and a partial sequence would break the batch-order
    // append contract below.
    publishCacheMetrics();
    throw;
  }

  if (failSoft) {
    for (std::size_t i = 0; i < localSinks.size(); ++i) {
      for (diag::Diagnostic& d : localSinks[i]->take()) {
        d.requestId = baseId + i;
        options.sink->report(std::move(d));
      }
    }
  }

  publishCacheMetrics();
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].report.correlationId = options.correlationId;
  }
  if (ledger_ != nullptr) {
    // Appended in batch order after the fan-out joins: the ledger line
    // sequence for a batch is identical for every worker count.
    for (std::size_t i = 0; i < records.size(); ++i) {
      records[i].correlationId = options.correlationId;
      ledger_->append(records[i]);
    }
  }
  if (batchReport != nullptr) {
    batchReport->addPhase("engine.batch", batchSpan.seconds());
    batchReport->metrics =
        metrics::Registry::instance().snapshot().since(before);
  }
  return results;
}

std::shared_ptr<const std::vector<util::StructuralHash>>
ExtractionEngine::memoizedSubtreeHashes(
    const FlatDesign& design, const util::StructuralHash& designHash) const {
  if (auto hit = subtreeHashMemo_.get(designHash);
      hit != nullptr && hit->size() == design.hierarchy().size()) {
    return hit;
  }
  auto computed = std::make_shared<std::vector<util::StructuralHash>>(
      subtreeHashes(design, pipeline_.config().graph,
                    pipeline_.config().features));
  const std::size_t bytes =
      sizeof(std::vector<util::StructuralHash>) +
      computed->size() * sizeof(util::StructuralHash);
  subtreeHashMemo_.put(designHash, computed, bytes);
  return computed;
}

EngineCacheStats ExtractionEngine::cacheStats() const {
  return EngineCacheStats{designCache_.stats(), blockCache_.stats(),
                          pairCache_.stats()};
}

util::DiskCacheStats ExtractionEngine::diskCacheStats() const {
  return disk_ != nullptr ? disk_->stats() : util::DiskCacheStats{};
}

void ExtractionEngine::flushDiskWrites() const {
  if (disk_ != nullptr) disk_->flush();
}

ledger::LedgerStats ExtractionEngine::ledgerStats() const {
  return ledger_ != nullptr ? ledger_->stats() : ledger::LedgerStats{};
}

void ExtractionEngine::flushLedger() const {
  if (ledger_ != nullptr) ledger_->flush();
}

void ExtractionEngine::clearCaches() {
  designCache_.clear();
  blockCache_.clear();
  pairCache_.clear();
  subtreeHashMemo_.clear();
  // Disk keys carry the model salt; dropping it here makes the next disk
  // access re-derive it from the (possibly reloaded) weights, keying a
  // fresh disk space instead of serving the old model's entries.
  const std::lock_guard<std::mutex> lock(modelSaltMutex_);
  modelSaltReady_ = false;
}

void ExtractionEngine::publishCacheMetrics() const {
  auto& registry = metrics::Registry::instance();
  static metrics::Counter& designHit = registry.counter("engine.cache.hit");
  static metrics::Counter& designMiss = registry.counter("engine.cache.miss");
  static metrics::Counter& designEvict =
      registry.counter("engine.cache.evict");
  static metrics::Gauge& designBytes = registry.gauge("engine.cache.bytes");
  static metrics::Counter& blockHit =
      registry.counter("engine.block_cache.hit");
  static metrics::Counter& blockMiss =
      registry.counter("engine.block_cache.miss");
  static metrics::Counter& blockEvict =
      registry.counter("engine.block_cache.evict");
  static metrics::Gauge& blockBytes =
      registry.gauge("engine.block_cache.bytes");
  static metrics::Counter& pairHit =
      registry.counter("engine.pair_cache.hit");
  static metrics::Counter& pairMiss =
      registry.counter("engine.pair_cache.miss");
  static metrics::Counter& pairEvict =
      registry.counter("engine.pair_cache.evict");
  static metrics::Gauge& pairBytes =
      registry.gauge("engine.pair_cache.bytes");

  // LruCacheStats hit/miss/eviction counts are cumulative and monotonic;
  // publishing the delta since the last publish keeps the process-wide
  // counters correct across any number of engines and calls.
  const std::lock_guard<std::mutex> lock(publishMutex_);
  const EngineCacheStats now = cacheStats();
  designHit.add(now.design.hits - published_.design.hits);
  designMiss.add(now.design.misses - published_.design.misses);
  designEvict.add(now.design.evictions - published_.design.evictions);
  designBytes.set(static_cast<double>(now.design.bytes));
  blockHit.add(now.blocks.hits - published_.blocks.hits);
  blockMiss.add(now.blocks.misses - published_.blocks.misses);
  blockEvict.add(now.blocks.evictions - published_.blocks.evictions);
  blockBytes.set(static_cast<double>(now.blocks.bytes));
  pairHit.add(now.pairs.hits - published_.pairs.hits);
  pairMiss.add(now.pairs.misses - published_.pairs.misses);
  pairEvict.add(now.pairs.evictions - published_.pairs.evictions);
  pairBytes.set(static_cast<double>(now.pairs.bytes));
  published_ = now;

  if (disk_ != nullptr) {
    static metrics::Counter& diskHit =
        registry.counter("engine.disk_cache.hit");
    static metrics::Counter& diskMiss =
        registry.counter("engine.disk_cache.miss");
    static metrics::Counter& diskCorrupt =
        registry.counter("engine.disk_cache.corrupt");
    static metrics::Counter& diskQuarantined =
        registry.counter("engine.disk_cache.quarantined");
    static metrics::Counter& diskWrite =
        registry.counter("engine.disk_cache.write");
    static metrics::Counter& diskWriteFailure =
        registry.counter("engine.disk_cache.write_failure");
    static metrics::Counter& diskEvict =
        registry.counter("engine.disk_cache.evict");
    static metrics::Counter& diskRetry =
        registry.counter("engine.disk_cache.retry");
    static metrics::Gauge& diskBytes =
        registry.gauge("engine.disk_cache.bytes");
    static metrics::Gauge& diskDegraded =
        registry.gauge("engine.disk_cache.degraded");
    const util::DiskCacheStats d = disk_->stats();
    diskHit.add(d.hits - publishedDisk_.hits);
    diskMiss.add(d.misses - publishedDisk_.misses);
    diskCorrupt.add(d.corrupt - publishedDisk_.corrupt);
    diskQuarantined.add(d.quarantined - publishedDisk_.quarantined);
    diskWrite.add(d.writes - publishedDisk_.writes);
    diskWriteFailure.add(d.writeFailures - publishedDisk_.writeFailures);
    diskEvict.add(d.evictions - publishedDisk_.evictions);
    diskRetry.add(d.retries - publishedDisk_.retries);
    diskBytes.set(static_cast<double>(d.bytes));
    diskDegraded.set(d.degraded ? 1.0 : 0.0);
    publishedDisk_ = d;
  }
}

}  // namespace ancstr
