#include "place/placement.h"

#include <cmath>

#include "util/error.h"

namespace ancstr::place {
namespace {

/// Footprint of one device in microns; crude but monotone in drive/value
/// so bigger devices occupy more area, as in a real PDK.
void footprintOf(const FlatDevice& dev, double* w, double* h) {
  if (isMos(dev.type)) {
    const double wTotal = dev.params.w * 1e6 * dev.params.nf * dev.params.m;
    const double l = std::max(dev.params.l * 1e6, 0.1);
    *w = std::max(0.4, wTotal / std::max(1, dev.params.nf));
    *h = std::max(0.4, l * std::max(1, dev.params.nf) * 2.0);
    return;
  }
  if (isResistor(dev.type)) {
    const double squares = std::max(1.0, dev.params.value / 250.0);
    *w = 0.8;
    *h = std::max(0.8, std::min(squares * 0.4, 30.0));
    return;
  }
  if (isCapacitor(dev.type)) {
    // ~2 fF/um^2 MOM density.
    const double area = std::max(0.25, dev.params.value * 1e15 / 2.0);
    const double side = std::sqrt(area);
    *w = side;
    *h = side;
    return;
  }
  *w = 1.0;
  *h = 1.0;
}

}  // namespace

PlacementProblem buildPlacementProblem(const FlatDesign& design,
                                       HierNodeId node,
                                       std::size_t maxNetDegree) {
  const HierNode& hier = design.node(node);
  PlacementProblem problem;
  std::vector<int> cellOf(design.devices().size(), -1);
  for (const FlatDeviceId d : hier.leafDevices) {
    Cell cell;
    const FlatDevice& dev = design.device(d);
    const std::size_t slash = dev.path.rfind('/');
    cell.name = slash == std::string::npos ? dev.path
                                           : dev.path.substr(slash + 1);
    cell.device = d;
    footprintOf(dev, &cell.w, &cell.h);
    cellOf[d] = static_cast<int>(problem.cells.size());
    problem.cells.push_back(std::move(cell));
  }

  // Nets: group the node's cells per flat net, skipping rails and bulk.
  std::vector<std::vector<std::size_t>> perNet(design.nets().size());
  for (const FlatDeviceId d : hier.leafDevices) {
    for (const auto& [fn, net] : design.device(d).pins) {
      if (fn == PinFunction::kBulk) continue;
      if (design.netTerminals()[net].size() > maxNetDegree) continue;
      perNet[net].push_back(static_cast<std::size_t>(cellOf[d]));
    }
  }
  for (auto& group : perNet) {
    std::sort(group.begin(), group.end());
    group.erase(std::unique(group.begin(), group.end()), group.end());
    if (group.size() >= 2) problem.nets.push_back(std::move(group));
  }
  return problem;
}

double wirelength(const PlacementProblem& problem,
                  const PlacementSolution& solution) {
  ANCSTR_ASSERT(solution.rects.size() == problem.cells.size());
  double total = 0.0;
  for (const auto& net : problem.nets) {
    BoundingBox box;
    for (const std::size_t cell : net) box.add(solution.rects[cell].center());
    total += box.halfPerimeter();
  }
  return total;
}

double totalOverlap(const PlacementSolution& solution) {
  double total = 0.0;
  for (std::size_t i = 0; i < solution.rects.size(); ++i) {
    for (std::size_t j = i + 1; j < solution.rects.size(); ++j) {
      total += overlapArea(solution.rects[i], solution.rects[j]);
    }
  }
  return total;
}

double symmetryViolation(const PlacementProblem& problem,
                         const PlacementSolution& solution) {
  ANCSTR_ASSERT(solution.rects.size() == problem.cells.size());
  if (problem.symmetricPairs.empty() && problem.selfSymmetric.empty()) {
    return 0.0;
  }
  double meanDim = 0.0;
  for (const Rect& r : solution.rects) meanDim += (r.w + r.h) / 2.0;
  meanDim /= static_cast<double>(solution.rects.size());
  if (meanDim <= 0.0) meanDim = 1.0;

  double total = 0.0;
  std::size_t terms = 0;
  const double axis = solution.symmetryAxis;
  for (const auto& [a, b] : problem.symmetricPairs) {
    const Point ca = solution.rects[a].center();
    const Point cb = solution.rects[b].center();
    // Mirror of a about the axis should coincide with b.
    const double mx = 2.0 * axis - ca.x;
    total += std::hypot(mx - cb.x, ca.y - cb.y);
    ++terms;
  }
  for (const std::size_t c : problem.selfSymmetric) {
    total += std::fabs(solution.rects[c].center().x - axis);
    ++terms;
  }
  return total / (static_cast<double>(terms) * meanDim);
}

}  // namespace ancstr::place
