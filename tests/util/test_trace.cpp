#include "util/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/parallel.h"

namespace ancstr::trace {
namespace {

/// The collector is process-wide; each test starts from a clean, disabled
/// state and leaves it that way.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::instance().setEnabled(false);
    TraceCollector::instance().clear();
  }
  void TearDown() override {
    TraceCollector::instance().setEnabled(false);
    TraceCollector::instance().clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  { const TraceSpan span("test.disabled"); }
  EXPECT_TRUE(TraceCollector::instance().events().empty());
}

TEST_F(TraceTest, SpanSecondsWorksWhileDisabled) {
  const TraceSpan span("test.stopwatch");
  EXPECT_GE(span.seconds(), 0.0);
}

TEST_F(TraceTest, EnabledSpansAreCollected) {
  TraceCollector::instance().setEnabled(true);
  {
    const TraceSpan outer("test.outer");
    const TraceSpan inner("test.inner");
  }
  const std::vector<TraceEvent> events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer starts first.
  EXPECT_EQ(events[0].name, "test.outer");
  EXPECT_EQ(events[1].name, "test.inner");
  EXPECT_LE(events[0].startUs, events[1].startUs);
  EXPECT_GE(events[0].durationUs, 0.0);
}

TEST_F(TraceTest, ArmedAtConstructionNotDestruction) {
  // A span decides to record when it is constructed; flipping the switch
  // mid-flight must not tear half-initialised state.
  TraceSpan* span = nullptr;
  {
    TraceCollector::instance().setEnabled(true);
    span = new TraceSpan("test.armed");
    TraceCollector::instance().setEnabled(false);
    delete span;
  }
  EXPECT_EQ(TraceCollector::instance().events().size(), 1u);
}

TEST_F(TraceTest, ClearDropsEvents) {
  TraceCollector::instance().setEnabled(true);
  { const TraceSpan span("test.cleared"); }
  TraceCollector::instance().clear();
  EXPECT_TRUE(TraceCollector::instance().events().empty());
}

TEST_F(TraceTest, WorkerThreadsGetDistinctThreadIds) {
  TraceCollector::instance().setEnabled(true);
  util::ThreadPool pool(4);
  pool.forEach(64, [](std::size_t) {
    const TraceSpan span("test.worker");
  });
  const std::vector<TraceEvent> events = TraceCollector::instance().events();
  std::set<std::uint32_t> tids;
  std::size_t workerSpans = 0, chunkSpans = 0, regionSpans = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "test.worker") {
      ++workerSpans;
      tids.insert(e.tid);
    } else if (e.name == "parallel.chunk") {
      ++chunkSpans;
    } else if (e.name == "parallel.for") {
      ++regionSpans;
    }
  }
  EXPECT_EQ(workerSpans, 64u);
  // The runtime traces the region plus one span per static chunk.
  EXPECT_EQ(regionSpans, 1u);
  EXPECT_EQ(chunkSpans, 4u);
  // Static partition: chunk 0 on the caller, chunks 1..3 on workers.
  EXPECT_GT(tids.size(), 1u);
}

TEST_F(TraceTest, EventsSurviveThreadExit) {
  TraceCollector::instance().setEnabled(true);
  std::thread worker([] { const TraceSpan span("test.exited"); });
  worker.join();
  const std::vector<TraceEvent> events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.exited");
}

// Golden-schema test: the export must stay loadable by Perfetto /
// chrome://tracing, which means exactly these fields with these types.
TEST_F(TraceTest, ChromeJsonMatchesTraceEventSchema) {
  TraceCollector::instance().setEnabled(true);
  { const TraceSpan span("test.schema"); }

  std::string error;
  const auto parsed =
      Json::parse(TraceCollector::instance().toChromeJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const Json& root = *parsed;

  ASSERT_TRUE(root.isObject());
  EXPECT_EQ(root.get("displayTimeUnit").asString(), "ms");
  const Json& events = root.get("traceEvents");
  ASSERT_TRUE(events.isArray());
  ASSERT_EQ(events.size(), 1u);

  const Json& e = events.at(0);
  EXPECT_EQ(e.get("name").asString(), "test.schema");
  EXPECT_EQ(e.get("cat").asString(), "ancstr");
  EXPECT_EQ(e.get("ph").asString(), "X");  // complete event
  EXPECT_TRUE(e.get("ts").isNumber());
  EXPECT_TRUE(e.get("dur").isNumber());
  EXPECT_GE(e.get("dur").asNumber(), 0.0);
  EXPECT_EQ(e.get("pid").asNumber(), 1.0);
  EXPECT_TRUE(e.get("tid").isNumber());
}

TEST_F(TraceTest, EmptyCollectorStillExportsValidJson) {
  std::string error;
  const auto parsed =
      Json::parse(TraceCollector::instance().toChromeJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->get("traceEvents").size(), 0u);
}

TEST_F(TraceTest, SpanForestNestsByTimeWindow) {
  TraceCollector::instance().setEnabled(true);
  {
    const TraceSpan outer("test.outer");
    { const TraceSpan inner("test.inner"); }
    { const TraceSpan inner2("test.inner2"); }
  }
  const std::vector<SpanNode> forest =
      TraceCollector::instance().spanForest();
  ASSERT_EQ(forest.size(), 1u);
  const SpanNode& outer = forest[0];
  EXPECT_EQ(outer.name, "test.outer");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0].name, "test.inner");
  EXPECT_EQ(outer.children[1].name, "test.inner2");
  EXPECT_TRUE(outer.children[0].children.empty());
}

TEST_F(TraceTest, SpanForestSelfTimeExcludesChildren) {
  TraceCollector::instance().setEnabled(true);
  {
    const TraceSpan outer("test.outer");
    { const TraceSpan inner("test.inner"); }
  }
  const std::vector<SpanNode> forest =
      TraceCollector::instance().spanForest();
  ASSERT_EQ(forest.size(), 1u);
  const SpanNode& outer = forest[0];
  ASSERT_EQ(outer.children.size(), 1u);
  const SpanNode& inner = outer.children[0];
  EXPECT_DOUBLE_EQ(inner.selfUs, inner.durationUs);
  EXPECT_NEAR(outer.selfUs, outer.durationUs - inner.durationUs, 1e-9);
  EXPECT_GE(outer.selfUs, 0.0);
  // The reconstructed child window must sit inside the parent's.
  EXPECT_GE(inner.startUs, outer.startUs);
  EXPECT_LE(inner.startUs + inner.durationUs,
            outer.startUs + outer.durationUs);
}

// Golden-schema test: the span-tree export is the input contract of
// scripts/analyze_trace.py and scripts/check_trace.py.
TEST_F(TraceTest, SpanTreeJsonMatchesSchema) {
  TraceCollector::instance().setEnabled(true);
  {
    const TraceSpan outer("test.outer");
    { const TraceSpan inner("test.inner"); }
  }
  std::string error;
  const auto parsed =
      Json::parse(TraceCollector::instance().toSpanTreeJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const Json& root = *parsed;
  EXPECT_EQ(root.get("kind").asString(), "ancstr-span-tree");
  EXPECT_EQ(root.get("schemaVersion").asNumber(), 1.0);
  const Json& threads = root.get("threads");
  ASSERT_TRUE(threads.isArray());
  ASSERT_EQ(threads.size(), 1u);
  const Json& thread = threads.at(0);
  EXPECT_TRUE(thread.get("tid").isNumber());
  ASSERT_EQ(thread.get("spans").size(), 1u);
  const Json& span = thread.get("spans").at(0);
  EXPECT_EQ(span.get("name").asString(), "test.outer");
  EXPECT_TRUE(span.get("startUs").isNumber());
  EXPECT_TRUE(span.get("durUs").isNumber());
  EXPECT_TRUE(span.get("selfUs").isNumber());
  ASSERT_EQ(span.get("children").size(), 1u);
  EXPECT_EQ(span.get("children").at(0).get("name").asString(), "test.inner");
}

TEST_F(TraceTest, SpanTreeSplitsThreads) {
  TraceCollector::instance().setEnabled(true);
  { const TraceSpan span("test.main"); }
  std::thread worker([] { const TraceSpan span("test.worker"); });
  worker.join();
  std::string error;
  const auto parsed =
      Json::parse(TraceCollector::instance().toSpanTreeJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->get("threads").size(), 2u);
}

TEST_F(TraceTest, WriteSpanTreeFileRoundTrips) {
  TraceCollector::instance().setEnabled(true);
  { const TraceSpan span("test.file"); }
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "ancstr_test_spans.json";
  TraceCollector::instance().writeSpanTreeFile(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  EXPECT_TRUE(Json::parse(buf.str(), &error).has_value()) << error;
  std::filesystem::remove(path);
}

TEST_F(TraceTest, RequestIdLandsInEventsChromeArgsAndSpanTree) {
  TraceCollector::instance().setEnabled(true);
  {
    const TraceSpan tagged("test.tagged", 42);
    { const TraceSpan untagged("test.untagged"); }
  }
  const std::vector<TraceEvent> events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].requestId, 42u);
  EXPECT_EQ(events[1].requestId, 0u);

  // Chrome export: tagged spans carry args.request_id, untagged spans
  // stay arg-free (the pre-PR-9 event shape).
  std::string error;
  const auto chrome =
      Json::parse(TraceCollector::instance().toChromeJson(), &error);
  ASSERT_TRUE(chrome.has_value()) << error;
  const Json& chromeEvents = chrome->get("traceEvents");
  ASSERT_EQ(chromeEvents.size(), 2u);
  const Json& taggedEvent = chromeEvents.at(0);
  ASSERT_NE(taggedEvent.find("args"), nullptr);
  EXPECT_EQ(taggedEvent.get("args").get("request_id").asNumber(), 42.0);
  EXPECT_EQ(chromeEvents.at(1).find("args"), nullptr);

  // Span-tree export: same conditional key.
  const auto tree =
      Json::parse(TraceCollector::instance().toSpanTreeJson(), &error);
  ASSERT_TRUE(tree.has_value()) << error;
  const Json& span = tree->get("threads").at(0).get("spans").at(0);
  EXPECT_EQ(span.get("name").asString(), "test.tagged");
  ASSERT_NE(span.find("requestId"), nullptr);
  EXPECT_EQ(span.get("requestId").asNumber(), 42.0);
  EXPECT_EQ(span.get("children").at(0).find("requestId"), nullptr);
}

TEST_F(TraceTest, WriteFileRoundTrips) {
  TraceCollector::instance().setEnabled(true);
  { const TraceSpan span("test.file"); }
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "ancstr_test_trace.json";
  TraceCollector::instance().writeFile(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  EXPECT_TRUE(Json::parse(buf.str(), &error).has_value()) << error;
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ancstr::trace
