#include "harness.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/bench_report.h"
#include "util/json.h"
#include "util/report.h"

namespace ancstr::bench {
namespace {

using benchio::BenchCaseResult;
using benchio::BenchRunInfo;

std::vector<std::string> keyList(const Json& obj) { return obj.keys(); }

BenchCaseResult sampleCase() {
  BenchCaseResult result;
  result.name = "sample.case";
  result.reps = 3;
  result.warmup = 1;
  result.wallSeconds = {0.010, 0.012, 0.011};
  result.report.addPhase("phase.a", 0.004);
  result.report.addPhase("phase.b", 0.006);
  result.resource.peakRssBytes = 1 << 20;
  result.resource.memory.allocCount = 10;
  result.resource.memory.freeCount = 9;
  result.resource.memory.allocBytes = 4096;
  result.counters["n"] = 64.0;
  return result;
}

// Golden-schema tests: the exact key order below is the BENCH.json
// contract consumed by scripts/compare_bench.py; reordering is a breaking
// schema change and must bump schemaVersion.
TEST(BenchReport, TopLevelKeyOrderIsStable) {
  const Json root = benchio::benchRunToJson({"test_binary", 4, 7},
                                            {sampleCase()});
  const std::vector<std::string> expected = {
      "schemaVersion", "binary", "gitSha", "buildType",
      "buildFlags",    "threads", "seed",  "cases"};
  EXPECT_EQ(keyList(root), expected);
  EXPECT_EQ(root.get("schemaVersion").asNumber(), 1.0);
  EXPECT_EQ(root.get("binary").asString(), "test_binary");
  EXPECT_EQ(root.get("threads").asNumber(), 4.0);
  EXPECT_EQ(root.get("seed").asNumber(), 7.0);
}

TEST(BenchReport, CaseKeyOrderIsStable) {
  const Json root = benchio::benchRunToJson({"b", 1, 42}, {sampleCase()});
  ASSERT_EQ(root.get("cases").size(), 1u);
  const Json& c = root.get("cases").at(0);
  const std::vector<std::string> expected = {
      "name", "reps", "warmup", "wall", "phases", "metrics", "resource",
      "counters"};
  EXPECT_EQ(keyList(c), expected);

  const std::vector<std::string> wallKeys = {"median", "mad", "min", "max",
                                             "samples"};
  EXPECT_EQ(keyList(c.get("wall")), wallKeys);

  const std::vector<std::string> resourceKeys = {
      "peakRssBytes", "allocCount",     "freeCount",
      "allocBytes",   "userCpuSeconds", "systemCpuSeconds"};
  EXPECT_EQ(keyList(c.get("resource")), resourceKeys);
}

TEST(BenchReport, WallStatsMatchSamples) {
  const Json root = benchio::benchRunToJson({"b", 1, 42}, {sampleCase()});
  const Json& wall = root.get("cases").at(0).get("wall");
  EXPECT_DOUBLE_EQ(wall.get("median").asNumber(), 0.011);
  EXPECT_DOUBLE_EQ(wall.get("min").asNumber(), 0.010);
  EXPECT_DOUBLE_EQ(wall.get("max").asNumber(), 0.012);
  EXPECT_DOUBLE_EQ(wall.get("mad").asNumber(), 0.001);
  EXPECT_EQ(wall.get("samples").size(), 3u);
}

TEST(BenchReport, PhasesKeepRegistrationOrder) {
  const Json root = benchio::benchRunToJson({"b", 1, 42}, {sampleCase()});
  const Json& phases = root.get("cases").at(0).get("phases");
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases.at(0).get("name").asString(), "phase.a");
  EXPECT_EQ(phases.at(1).get("name").asString(), "phase.b");
}

TEST(BenchReport, BuildProvenanceIsNeverEmpty) {
  EXPECT_FALSE(benchio::buildGitSha().empty());
  EXPECT_FALSE(benchio::buildType().empty());
}

TEST(RunReportJson, KeyOrderIsStable) {
  RunReport report;
  report.addPhase("p", 0.5);
  const Json json = report.toJson();
  // Diagnostics are appended only when present; the base order is fixed.
  const std::vector<std::string> expected = {"phases", "totalSeconds",
                                             "metrics"};
  EXPECT_EQ(keyList(json), expected);
}

TEST(BenchRegistryTest, RunsWarmupPlusMeasuredReps) {
  BenchRegistry registry;
  int calls = 0;
  int warmupCalls = 0;
  registry.add("count.case", [&](BenchContext& ctx) {
    ++calls;
    if (!ctx.measured()) ++warmupCalls;
  });
  BenchOptions options;
  options.reps = 3;
  options.warmup = 2;
  const std::vector<BenchCaseResult> results = registry.run(options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(warmupCalls, 2);
  EXPECT_EQ(results[0].reps, 3);
  EXPECT_EQ(results[0].warmup, 2);
  EXPECT_EQ(results[0].wallSeconds.size(), 3u);
}

TEST(BenchRegistryTest, RngReseededEveryRep) {
  BenchRegistry registry;
  std::vector<std::uint64_t> draws;
  registry.add("rng.case",
               [&](BenchContext& ctx) { draws.push_back(ctx.rng().next()); });
  BenchOptions options;
  options.reps = 3;
  options.warmup = 1;
  registry.run(options);
  ASSERT_EQ(draws.size(), 4u);
  EXPECT_EQ(draws[0], draws[1]);
  EXPECT_EQ(draws[1], draws[2]);
  EXPECT_EQ(draws[2], draws[3]);
}

TEST(BenchRegistryTest, CaseSeedDependsOnNameAndBaseSeed) {
  BenchRegistry registry;
  std::vector<std::uint64_t> seeds;
  const auto capture = [&](BenchContext& ctx) {
    seeds.push_back(ctx.caseSeed());
  };
  registry.add("case.a", capture);
  registry.add("case.b", capture);
  BenchOptions options;
  registry.run(options);
  options.seed = 43;
  registry.run(options);
  ASSERT_EQ(seeds.size(), 4u);
  EXPECT_NE(seeds[0], seeds[1]);  // different names
  EXPECT_NE(seeds[0], seeds[2]);  // different base seed
}

TEST(BenchRegistryTest, FilterSelectsBySubstring) {
  BenchRegistry registry;
  registry.add("alpha.one", [](BenchContext&) {});
  registry.add("beta.two", [](BenchContext&) {});
  BenchOptions options;
  options.filter = "beta";
  const std::vector<BenchCaseResult> results = registry.run(options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "beta.two");
}

TEST(BenchRegistryTest, CountersAndReportLandInResult) {
  BenchRegistry registry;
  registry.add("report.case", [](BenchContext& ctx) {
    RunReport report;
    report.addPhase("work", 0.001);
    ctx.setReport(std::move(report));
    ctx.setCounter("items", 12.0);
  });
  BenchOptions options;
  options.reps = 2;
  const std::vector<BenchCaseResult> results = registry.run(options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].report.phaseSeconds("work"), 0.001);
  EXPECT_DOUBLE_EQ(results[0].counters.at("items"), 12.0);
}

TEST(BenchRegistryTest, ParseArgsReadsEveryFlag) {
  std::vector<std::string> argvStrings = {
      "bench",  "--reps",     "5",           "--warmup",    "2",
      "--filter", "smoke",    "--threads",   "4",           "--seed",
      "99",     "--json-out", "/tmp/b.json", "--trace-out", "/tmp/t.json",
      "--spans-out", "/tmp/s.json"};
  std::vector<char*> argv;
  for (std::string& s : argvStrings) argv.push_back(s.data());
  BenchOptions options;
  ASSERT_TRUE(BenchRegistry::parseArgs(static_cast<int>(argv.size()),
                                       argv.data(), &options));
  EXPECT_EQ(options.reps, 5);
  EXPECT_EQ(options.warmup, 2);
  EXPECT_EQ(options.filter, "smoke");
  EXPECT_EQ(options.threads, 4u);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.jsonOut, "/tmp/b.json");
  EXPECT_EQ(options.traceOut, "/tmp/t.json");
  EXPECT_EQ(options.spansOut, "/tmp/s.json");
}

TEST(BenchRegistryTest, ParseArgsRejectsUnknownFlagAndBadInt) {
  {
    std::vector<std::string> argvStrings = {"bench", "--bogus"};
    std::vector<char*> argv;
    for (std::string& s : argvStrings) argv.push_back(s.data());
    BenchOptions options;
    EXPECT_FALSE(BenchRegistry::parseArgs(static_cast<int>(argv.size()),
                                          argv.data(), &options));
  }
  {
    std::vector<std::string> argvStrings = {"bench", "--reps", "many"};
    std::vector<char*> argv;
    for (std::string& s : argvStrings) argv.push_back(s.data());
    BenchOptions options;
    EXPECT_FALSE(BenchRegistry::parseArgs(static_cast<int>(argv.size()),
                                          argv.data(), &options));
  }
}

}  // namespace
}  // namespace ancstr::bench
