#include "core/pipeline.h"

#include "core/model_io.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/trace.h"

namespace ancstr {

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {
  if (config_.model.featureDim != config_.features.dims()) {
    throw Error("PipelineConfig: model.featureDim must equal features.dims()");
  }
  nn::selectKernel(config_.kernel);
}

PreparedGraph Pipeline::prepare(const Library& lib,
                                const FlatDesign& design) const {
  (void)lib;
  const CircuitGraph graph = buildHeteroGraph(design, config_.graph);
  nn::Matrix features = buildFeatureMatrix(design, config_.features);
  return prepareGraph(graph, std::move(features));
}

TrainReport Pipeline::train(std::span<const Library* const> corpus) {
  const trace::TraceSpan pipelineSpan("pipeline.train");
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  TrainReport report;

  Rng rng(config_.seed);
  model_ = std::make_unique<GnnModel>(config_.model, rng);

  std::vector<PreparedGraph> prepared;
  {
    const trace::TraceSpan prepareSpan("train.prepare");
    prepared.reserve(corpus.size());
    for (const Library* lib : corpus) {
      ANCSTR_ASSERT(lib != nullptr);
      const FlatDesign design = FlatDesign::elaborate(*lib);
      prepared.push_back(prepare(*lib, design));
    }
    report.report.addPhase("train.prepare", prepareSpan.seconds());
  }

  const TrainStats stats = trainUnsupervised(*model_, prepared, config_.train,
                                             rng, config_.threads);
  report.report.addPhase("train.loop", stats.seconds);
  report.epochLoss = stats.epochLoss;

  report.report.metrics =
      metrics::Registry::instance().snapshot().since(before);
  report.report.kernel = nn::activeKernelName();
  return report;
}

InferenceArtifacts Pipeline::runInference(const Library& lib,
                                          const FlatDesign& design,
                                          RunReport& report) const {
  if (!model_) throw Error("Pipeline::runInference before train()/loadModel()");
  PreparedGraph g;
  {
    const trace::TraceSpan span("extract.graph_build");
    g = prepare(lib, design);
    report.addPhase("extract.graph_build", span.seconds());
  }

  InferenceArtifacts artifacts;
  {
    const trace::TraceSpan span("extract.inference");
    artifacts.embeddings = model_->embed(g);
    report.addPhase("extract.inference", span.seconds());
  }
  return artifacts;
}

void Pipeline::runDetection(const Library& lib, const FlatDesign& design,
                            const InferenceArtifacts& artifacts,
                            const DetectionCaches& caches,
                            ExtractionResult& result) const {
  if (!model_) throw Error("Pipeline::runDetection before train()/loadModel()");
  const trace::TraceSpan span("extract.detection");
  // Fault site shared by Pipeline::extract and the ExtractionEngine paths
  // (docs/robustness.md): under fail-soft, full and delta extraction
  // degrade at the identical point, which the delta-equivalence property
  // suite exercises.
  if (fault::shouldFail("extract.detect")) {
    throw Error("injected fault: extract.detect");
  }
  // Embeddings are indexed by graph vertex; the full-design graph covers
  // devices in id order so row i == device i.
  DetectorConfig detector = config_.detector;
  detector.graphOptions = config_.graph;
  const BlockEmbeddingContext blockContext{*model_, config_.features,
                                           caches.blocks, caches.nodeHashes};
  result.detection = detectConstraints(design, lib, artifacts.embeddings,
                                       detector, blockContext, caches.pairs,
                                       config_.threads);
  result.report.addPhase("extract.detection", span.seconds());
}

namespace {

void runExtractPhases(const Pipeline& pipeline, const Library& lib,
                      const FlatDesign& design, ExtractionResult& result,
                      const util::DeadlineToken& deadline) {
  deadline.checkpoint("extract.inference");
  InferenceArtifacts artifacts =
      pipeline.runInference(lib, design, result.report);
  deadline.checkpoint("extract.detection");
  pipeline.runDetection(lib, design, artifacts, nullptr, result);
  result.embeddings = std::move(artifacts.embeddings);
}

}  // namespace

ExtractionResult Pipeline::extract(const Library& lib,
                                   ExtractOptions options) const {
  if (!model_) throw Error("Pipeline::extract before train()/loadModel()");

  const util::DeadlineToken deadline(options.deadline);
  // Standalone extraction draws from the process-wide request-id source
  // (the ExtractionEngine keeps its own per-engine counter); the id is
  // stamped onto the top-level span and the report so one request can be
  // followed across traces, reports, and diagnostics.
  const std::uint64_t requestId = log::nextRequestId();
  if (options.sink == nullptr || options.sink->strict()) {
    // Strict path: the first invalid construct throws, no sink involved.
    // Deadline expiry throws util::DeadlineError from a checkpoint.
    const trace::TraceSpan pipelineSpan("pipeline.extract", requestId);
    const metrics::Snapshot before = metrics::Registry::instance().snapshot();
    ExtractionResult result;

    deadline.checkpoint("pipeline.elaborate");
    const FlatDesign design = FlatDesign::elaborate(lib);
    runExtractPhases(*this, lib, design, result, deadline);

    result.report.metrics =
        metrics::Registry::instance().snapshot().since(before);
    result.report.requestId = requestId;
    result.report.correlationId = options.correlationId;
    result.report.kernel = nn::activeKernelName();
    return result;
  }

  diag::DiagnosticSink& sink = *options.sink;
  static metrics::Counter& degradedCounter =
      metrics::Registry::instance().counter("pipeline.extract_degraded");

  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  const std::size_t diagStart = sink.size();
  ExtractionResult result;
  try {
    const trace::TraceSpan pipelineSpan("pipeline.extract", requestId);
    deadline.checkpoint("pipeline.elaborate");
    const FlatDesign design = FlatDesign::elaborate(lib, sink);
    runExtractPhases(*this, lib, design, result, deadline);
  } catch (const util::DeadlineError& e) {
    // Out of time, not bad input: no partial result, its own code, and no
    // extract_degraded bump (the input may be perfectly valid).
    result = ExtractionResult{};
    sink.error(diag::codes::kDeadlineExceeded, "", 0, e.what());
  } catch (const Error& e) {
    // Degrade to an empty result: completed phase timings are kept, the
    // detection/embeddings stay default-constructed (detectConstraints
    // assigns only on success).
    degradedCounter.add();
    sink.error(diag::codes::kExtractDegraded, "", 0,
               std::string("extraction degraded to empty result: ") +
                   e.what());
  }
  result.report.metrics =
      metrics::Registry::instance().snapshot().since(before);
  result.report.addDiagnostics(sink.snapshotFrom(diagStart));
  result.report.requestId = requestId;
  result.report.correlationId = options.correlationId;
  result.report.kernel = nn::activeKernelName();
  for (diag::Diagnostic& d : result.report.diagnostics) {
    d.requestId = requestId;
  }
  return result;
}

const GnnModel& Pipeline::model() const {
  if (!model_) throw Error("Pipeline::model before train()/loadModel()");
  return *model_;
}

void Pipeline::saveModel(const std::filesystem::path& path) const {
  saveModelFile(model(), path);
}

void Pipeline::loadModel(const std::filesystem::path& path) {
  model_ = std::make_unique<GnnModel>(loadModelFile(path));
}

}  // namespace ancstr
