#include "baselines/s3det.h"

#include <algorithm>
#include <cmath>

#include "core/graph_builder.h"
#include "graph/eigen.h"
#include "graph/laplacian.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ancstr::s3det {
namespace {

/// Similarity of two passive leaf devices: 1 when the values agree within
/// tolerance (types already match by candidate validity), else a score
/// that decays with the relative value gap.
double passiveSimilarity(const FlatDevice& a, const FlatDevice& b,
                         double tolerance) {
  const double va = a.params.value;
  const double vb = b.params.value;
  const double denom = std::max(std::fabs(va), std::fabs(vb));
  if (denom == 0.0) return 1.0;
  const double rel = std::fabs(va - vb) / denom;
  return rel <= tolerance ? 1.0 : std::max(0.0, 1.0 - rel);
}

}  // namespace

std::vector<double> subcircuitSpectrum(const FlatDesign& design,
                                       HierNodeId node,
                                       const S3DetConfig& config) {
  std::vector<FlatDeviceId> devices = design.subtreeDevices(node);
  if (config.includeBoundaryContext) {
    // Extend by the 1-hop device neighbourhood over non-rail nets, the
    // flat-graph context the original algorithm sees.
    std::vector<bool> inSet(design.devices().size(), false);
    for (const FlatDeviceId d : devices) inSet[d] = true;
    std::vector<FlatDeviceId> extended = devices;
    for (const FlatDeviceId d : devices) {
      for (const auto& [fn, net] : design.device(d).pins) {
        const auto& terms = design.netTerminals()[net];
        if (terms.size() > config.boundaryNetDegreeCap) continue;
        for (const auto& [other, pin] : terms) {
          if (!inSet[other]) {
            inSet[other] = true;
            extended.push_back(other);
          }
        }
      }
    }
    std::sort(extended.begin(), extended.end());
    devices = std::move(extended);
  }
  static metrics::Counter& spectraCounter =
      metrics::Registry::instance().counter("s3det.spectra");
  const trace::TraceSpan span("s3det.spectrum");
  spectraCounter.add();
  const CircuitGraph induced = buildInducedHeteroGraph(design, devices);
  const SimpleDigraph simplified = induced.graph.simplified();
  const nn::Matrix laplacian = config.useNormalizedLaplacian
                                   ? normalizedLaplacian(simplified)
                                   : combinatorialLaplacian(simplified);
  std::vector<double> spectrum = symmetricEigenvalues(laplacian);
  // Snap to a tolerance grid: the K-S step comparison must not distinguish
  // eigensolver noise (e.g. -1e-16 vs +1e-15 for the zero mode).
  for (double& v : spectrum) v = std::round(v * 1e7) / 1e7;
  return spectrum;
}

S3DetResult detectSystemConstraints(const FlatDesign& design,
                                    const Library& lib,
                                    const S3DetConfig& config) {
  S3DetResult result;
  static metrics::Counter& pairsCounter =
      metrics::Registry::instance().counter("s3det.pairs_scored");
  const trace::TraceSpan span("baseline.s3det");
  const Stopwatch watch;

  const CandidateSet candidates = enumerateCandidates(design, lib);
  for (const CandidatePair& pair : candidates.pairs) {
    if (pair.level != ConstraintLevel::kSystem) continue;
    ScoredCandidate scored;
    scored.pair = pair;
    if (pair.a.kind == ModuleKind::kBlock) {
      // Deliberately unmemoised: the original tool recomputes the spectral
      // statistics for every comparison (see header).
      const std::vector<double> sa = subcircuitSpectrum(design, pair.a.id,
                                                        config);
      const std::vector<double> sb = subcircuitSpectrum(design, pair.b.id,
                                                        config);
      scored.similarity = 1.0 - ksStatistic(sa, sb);
    } else {
      scored.similarity =
          passiveSimilarity(design.device(pair.a.id), design.device(pair.b.id),
                            config.valueTolerance);
    }
    scored.accepted = scored.similarity > 1.0 - config.ksThreshold;
    result.scored.push_back(std::move(scored));
  }
  pairsCounter.add(result.scored.size());
  result.seconds = watch.seconds();
  return result;
}

}  // namespace ancstr::s3det
