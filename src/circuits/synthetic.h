// Synthetic scalable circuits for runtime-scaling benchmarks (the
// perf_scaling harness) and stress tests.
#pragma once

#include "circuits/benchmark.h"

namespace ancstr::circuits {

/// A chain of `stages` fully differential gain stages (diff pair + loads +
/// tail + output caps), ~9 devices per stage, all in one flat subckt.
/// Every stage contributes matched pairs to the ground truth, so detection
/// quality can also be measured at scale.
CircuitBenchmark makeDiffChain(int stages);

/// A hierarchical tree: `blocks` instances of a small OTA under one top,
/// where consecutive even/odd instance pairs are matched. Exercises
/// system-level detection cost as block count grows.
CircuitBenchmark makeBlockArray(int blocks);

}  // namespace ancstr::circuits
