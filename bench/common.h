// Shared harness for the paper-reproduction benches: corpus loading, one
// unsupervised training run, per-benchmark evaluation of our framework and
// both baselines, and table rendering.
#pragma once

#include <string>
#include <vector>

#include "circuits/benchmark.h"
#include "core/pipeline.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/roc.h"
#include "util/table.h"

namespace ancstr::bench {

/// The paper's full training corpus: 15 block circuits + 5 ADCs.
std::vector<circuits::CircuitBenchmark> fullCorpus();

/// Default experiment configuration (paper Section IV: K=2, D=18, B=5).
PipelineConfig paperConfig(int epochs = 60, std::uint64_t seed = 7);

/// Trains once over the corpus; prints the training time. When
/// `reportOut` is non-null the training RunReport is copied there so the
/// bench harness can fold it into its per-case phase breakdown.
Pipeline trainPipeline(const std::vector<circuits::CircuitBenchmark>& corpus,
                       const PipelineConfig& config,
                       RunReport* reportOut = nullptr);

/// One detector's output on one benchmark, reduced for evaluation.
struct Evaluated {
  ConfusionCounts counts;
  std::vector<double> scores;  ///< per candidate (for ROC merging)
  std::vector<bool> labels;
  double seconds = 0.0;
  /// Phase breakdown of the run (populated by evalOurs; the baselines
  /// time themselves as a single phase).
  RunReport report;
};

/// Runs our trained pipeline on `bench`, restricted to one level.
Evaluated evalOurs(const Pipeline& pipeline,
                   const circuits::CircuitBenchmark& bench,
                   ConstraintLevel level);

/// Runs the S3DET baseline (system-level only).
Evaluated evalS3Det(const circuits::CircuitBenchmark& bench);

/// Runs the SFA baseline (device-level only).
Evaluated evalSfa(const circuits::CircuitBenchmark& bench);

/// Runs the approximate-GED baseline (system-level only).
Evaluated evalGed(const circuits::CircuitBenchmark& bench);

/// Appends a "name | tpr fpr ppv acc f1 runtime" row pair to the table.
void addComparisonRow(TextTable& table, const std::string& name,
                      const Metrics& baseline, double baselineSeconds,
                      const Metrics& ours, double oursSeconds);

/// Prints an ROC curve as a compact fpr/tpr listing with its AUC.
void printRoc(const std::string& title, const RocCurve& curve);

/// Prints a RunReport (per-phase timings + non-zero metrics) under a
/// title. trainPipeline emits one for the training run when the
/// ANCSTR_BENCH_REPORT environment variable is set and non-zero.
void printRunReport(const std::string& title, const RunReport& report);

}  // namespace ancstr::bench
