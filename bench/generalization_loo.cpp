// Inductive-generalisation study (backing the paper's core claim that the
// unsupervised model is "generalizable to every design"): leave-one-out —
// for each benchmark, train on the other 19 circuits and extract
// constraints from the held-out one, then compare against the
// trained-on-everything reference. If the model memorised circuits
// instead of learning a transferable strategy, held-out quality would
// collapse.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "harness.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

Metrics evalOne(const Pipeline& pipeline,
                const circuits::CircuitBenchmark& bench) {
  const ConstraintLevel level = bench.category == "ADC"
                                    ? ConstraintLevel::kSystem
                                    : ConstraintLevel::kDevice;
  return computeMetrics(evalOurs(pipeline, bench, level).counts);
}

void run(BenchContext& ctx) {
  const auto corpus = fullCorpus();
  const int epochs = 40;

  // Reference: trained on everything.
  RunReport trainReport;
  Pipeline reference = trainPipeline(corpus, paperConfig(epochs), &trainReport);
  ctx.accumulateReport(trainReport);

  TextTable table;
  table.setHeader({"Held out", "level", "F1 (all)", "F1 (LOO)", "delta"});
  double sumAll = 0.0, sumLoo = 0.0;
  for (std::size_t hold = 0; hold < corpus.size(); ++hold) {
    std::vector<const Library*> libs;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (i != hold) libs.push_back(&corpus[i].lib);
    }
    Pipeline pipeline(paperConfig(epochs));
    pipeline.train(libs);

    const Metrics all = evalOne(reference, corpus[hold]);
    const Metrics loo = evalOne(pipeline, corpus[hold]);
    sumAll += all.f1;
    sumLoo += loo.f1;
    char delta[16];
    std::snprintf(delta, sizeof(delta), "%+.3f", loo.f1 - all.f1);
    table.addRow({corpus[hold].name,
                  corpus[hold].category == "ADC" ? "system" : "device",
                  metricCell(all.f1), metricCell(loo.f1), delta});
  }
  table.addSeparator();
  const double n = static_cast<double>(corpus.size());
  char delta[16];
  std::snprintf(delta, sizeof(delta), "%+.3f", (sumLoo - sumAll) / n);
  table.addRow({"Average", "-", metricCell(sumAll / n), metricCell(sumLoo / n),
                delta});

  std::printf("\n=== Leave-one-out generalization ===\n");
  table.print(std::cout);
  std::printf(
      "\nShape check (paper: the unsupervised strategy is inductive): "
      "held-out F1 within a few points of trained-on-all -> %s\n",
      std::abs(sumLoo - sumAll) / n < 0.05 ? "holds" : "DEGRADES");
  ctx.setCounter("f1.all.mean", sumAll / n);
  ctx.setCounter("f1.loo.mean", sumLoo / n);
}

[[maybe_unused]] const bool kRegistered =
    registerBench("generalization.loo", run);

}  // namespace

ANCSTR_BENCH_MAIN("generalization_loo")
