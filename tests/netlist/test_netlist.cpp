#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace ancstr {
namespace {

Device makeNmos(const std::string& name, NetId d, NetId g, NetId s, NetId b) {
  Device dev;
  dev.name = name;
  dev.type = DeviceType::kNch;
  dev.pins = {{PinFunction::kDrain, d},
              {PinFunction::kGate, g},
              {PinFunction::kSource, s},
              {PinFunction::kBulk, b}};
  return dev;
}

TEST(SubcktDef, AddNetIsIdempotentByName) {
  SubcktDef def("cell");
  const NetId a = def.addNet("n1");
  const NetId b = def.addNet("N1");  // case-insensitive
  EXPECT_EQ(a, b);
  EXPECT_EQ(def.nets().size(), 1u);
}

TEST(SubcktDef, PortOrderFollowsDeclaration) {
  SubcktDef def("cell");
  def.addNet("p2", true);
  def.addNet("p1", true);
  ASSERT_EQ(def.ports().size(), 2u);
  EXPECT_EQ(def.net(def.ports()[0]).name, "p2");
  EXPECT_EQ(def.net(def.ports()[1]).name, "p1");
}

TEST(SubcktDef, PromotingExistingNetToPort) {
  SubcktDef def("cell");
  const NetId n = def.addNet("x");
  EXPECT_FALSE(def.net(n).isPort);
  def.addNet("x", true);
  EXPECT_TRUE(def.net(n).isPort);
  EXPECT_EQ(def.ports().size(), 1u);
}

TEST(SubcktDef, DeviceTerminalsRecordedOnNets) {
  SubcktDef def("cell");
  const NetId d = def.addNet("d");
  const NetId g = def.addNet("g");
  const NetId s = def.addNet("s");
  const DeviceId id = def.addDevice(makeNmos("m1", d, g, s, s));
  EXPECT_EQ(def.net(d).deviceTerminals.size(), 1u);
  EXPECT_EQ(def.net(s).deviceTerminals.size(), 2u);  // source + bulk
  EXPECT_EQ(def.net(d).deviceTerminals[0].first, id);
}

TEST(SubcktDef, DuplicateDeviceNameThrows) {
  SubcktDef def("cell");
  const NetId n = def.addNet("n");
  def.addDevice(makeNmos("m1", n, n, n, n));
  EXPECT_THROW(def.addDevice(makeNmos("M1", n, n, n, n)), NetlistError);
}

TEST(SubcktDef, FindByNameIsCaseInsensitive) {
  SubcktDef def("cell");
  const NetId n = def.addNet("Net_A");
  def.addDevice(makeNmos("M5", n, n, n, n));
  EXPECT_EQ(def.findNet("net_a"), n);
  EXPECT_TRUE(def.findDevice("m5").has_value());
  EXPECT_FALSE(def.findDevice("m6").has_value());
}

TEST(Library, DuplicateSubcktThrows) {
  Library lib;
  lib.addSubckt("a");
  EXPECT_THROW(lib.addSubckt("A"), NetlistError);
}

TEST(Library, TopDefaultsToUninstantiated) {
  Library lib;
  const SubcktId leaf = lib.addSubckt("leaf");
  lib.mutableSubckt(leaf).addNet("p", true);
  const SubcktId top = lib.addSubckt("top");
  Instance inst;
  inst.name = "x1";
  inst.master = leaf;
  inst.connections = {lib.mutableSubckt(top).addNet("n")};
  lib.mutableSubckt(top).addInstance(std::move(inst));
  EXPECT_EQ(lib.top(), top);
}

TEST(Library, EmptyLibraryHasNoTop) {
  Library lib;
  EXPECT_THROW(lib.top(), NetlistError);
}

TEST(Library, ValidateCatchesPortArityMismatch) {
  Library lib;
  const SubcktId leaf = lib.addSubckt("leaf");
  lib.mutableSubckt(leaf).addNet("p1", true);
  lib.mutableSubckt(leaf).addNet("p2", true);
  const SubcktId top = lib.addSubckt("top");
  Instance inst;
  inst.name = "x1";
  inst.master = leaf;
  inst.connections = {lib.mutableSubckt(top).addNet("n")};  // 1 of 2
  lib.mutableSubckt(top).addInstance(std::move(inst));
  EXPECT_THROW(lib.validate(), NetlistError);
}

TEST(Library, ValidateCatchesWrongPinCount) {
  Library lib;
  const SubcktId cell = lib.addSubckt("cell");
  SubcktDef& def = lib.mutableSubckt(cell);
  Device dev;
  dev.name = "m1";
  dev.type = DeviceType::kNch;  // needs 4 pins
  dev.pins = {{PinFunction::kDrain, def.addNet("a")}};
  def.addDevice(std::move(dev));
  EXPECT_THROW(lib.validate(), NetlistError);
}

TEST(Library, ValidateCatchesRecursion) {
  Library lib;
  const SubcktId a = lib.addSubckt("a");
  const SubcktId bId = lib.addSubckt("b");
  {
    Instance inst;
    inst.name = "xb";
    inst.master = bId;
    lib.mutableSubckt(a).addInstance(std::move(inst));
  }
  {
    Instance inst;
    inst.name = "xa";
    inst.master = a;
    lib.mutableSubckt(bId).addInstance(std::move(inst));
  }
  EXPECT_THROW(lib.validate(), NetlistError);
}

TEST(Library, FlatCountsMultiplyThroughHierarchy) {
  Library lib;
  const SubcktId leaf = lib.addSubckt("leaf");
  {
    SubcktDef& def = lib.mutableSubckt(leaf);
    const NetId p = def.addNet("p", true);
    def.addNet("internal");
    def.addDevice(makeNmos("m1", p, p, p, p));
    def.addDevice(makeNmos("m2", p, p, p, p));
  }
  const SubcktId top = lib.addSubckt("top");
  {
    SubcktDef& def = lib.mutableSubckt(top);
    const NetId n = def.addNet("n");
    for (int i = 0; i < 3; ++i) {
      Instance inst;
      inst.name = "x" + std::to_string(i);
      inst.master = leaf;
      inst.connections = {n};
      def.addInstance(std::move(inst));
    }
  }
  EXPECT_EQ(lib.flatDeviceCount(), 6u);
  // 3 internal nets (one per instance) + top net "n".
  EXPECT_EQ(lib.flatNetCount(), 4u);
}

TEST(DeviceParams, EffectiveLayersUsesTypeDefault) {
  DeviceParams p;
  EXPECT_EQ(p.effectiveLayers(DeviceType::kCapMom), 4);
  p.layers = 6;
  EXPECT_EQ(p.effectiveLayers(DeviceType::kCapMom), 6);
}

TEST(Device, PinNetLookup) {
  Device dev = makeNmos("m1", 3, 5, 7, 9);
  EXPECT_EQ(dev.pinNet(PinFunction::kGate), 5u);
  EXPECT_EQ(dev.pinNet(PinFunction::kDrain), 3u);
  EXPECT_FALSE(dev.pinNet(PinFunction::kAnode).has_value());
}

}  // namespace
}  // namespace ancstr
