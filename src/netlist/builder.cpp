#include "netlist/builder.h"

#include "util/error.h"

namespace ancstr {

NetlistBuilder::NetlistBuilder() = default;

SubcktDef& NetlistBuilder::current() {
  if (!open_) throw NetlistError("no open subckt; call beginSubckt first");
  return lib_.mutableSubckt(cur_);
}

NetId NetlistBuilder::netOf(std::string_view name) {
  return current().addNet(name);
}

NetlistBuilder& NetlistBuilder::beginSubckt(std::string_view name,
                                            std::vector<std::string> ports) {
  if (open_) throw NetlistError("beginSubckt while another subckt is open");
  cur_ = lib_.addSubckt(std::string(name));
  open_ = true;
  for (const std::string& p : ports) current().addNet(p, /*isPort=*/true);
  return *this;
}

NetlistBuilder& NetlistBuilder::endSubckt() {
  if (!open_) throw NetlistError("endSubckt without open subckt");
  open_ = false;
  return *this;
}

NetlistBuilder& NetlistBuilder::addMos(std::string_view name, DeviceType type,
                                       std::string_view d, std::string_view g,
                                       std::string_view s, std::string_view b,
                                       double w, double l, int nf) {
  Device dev;
  dev.name = std::string(name);
  dev.type = type;
  dev.params.w = w;
  dev.params.l = l;
  dev.params.nf = nf;
  dev.pins = {{PinFunction::kDrain, netOf(d)},
              {PinFunction::kGate, netOf(g)},
              {PinFunction::kSource, netOf(s)},
              {PinFunction::kBulk, netOf(b)}};
  current().addDevice(std::move(dev));
  return *this;
}

NetlistBuilder& NetlistBuilder::nmos(std::string_view name, std::string_view d,
                                     std::string_view g, std::string_view s,
                                     std::string_view b, double w, double l,
                                     int nf, DeviceType type) {
  ANCSTR_ASSERT(isNmos(type));
  return addMos(name, type, d, g, s, b, w, l, nf);
}

NetlistBuilder& NetlistBuilder::pmos(std::string_view name, std::string_view d,
                                     std::string_view g, std::string_view s,
                                     std::string_view b, double w, double l,
                                     int nf, DeviceType type) {
  ANCSTR_ASSERT(isPmos(type));
  return addMos(name, type, d, g, s, b, w, l, nf);
}

NetlistBuilder& NetlistBuilder::addTwoTerminal(std::string_view name,
                                               DeviceType type,
                                               std::string_view a,
                                               std::string_view b,
                                               DeviceParams params) {
  Device dev;
  dev.name = std::string(name);
  dev.type = type;
  dev.params = params;
  const auto funcs = pinFunctions(type);
  dev.pins = {{funcs[0], netOf(a)}, {funcs[1], netOf(b)}};
  current().addDevice(std::move(dev));
  return *this;
}

NetlistBuilder& NetlistBuilder::res(std::string_view name, std::string_view a,
                                    std::string_view b, double ohms,
                                    DeviceType type, double w, double l) {
  ANCSTR_ASSERT(isResistor(type));
  DeviceParams p;
  p.value = ohms;
  p.w = w;
  p.l = l;
  return addTwoTerminal(name, type, a, b, p);
}

NetlistBuilder& NetlistBuilder::cap(std::string_view name, std::string_view a,
                                    std::string_view b, double farads,
                                    DeviceType type, int layers) {
  ANCSTR_ASSERT(isCapacitor(type));
  DeviceParams p;
  p.value = farads;
  p.layers = layers;
  return addTwoTerminal(name, type, a, b, p);
}

NetlistBuilder& NetlistBuilder::ind(std::string_view name, std::string_view a,
                                    std::string_view b, double henries) {
  DeviceParams p;
  p.value = henries;
  return addTwoTerminal(name, DeviceType::kInd, a, b, p);
}

NetlistBuilder& NetlistBuilder::dio(std::string_view name,
                                    std::string_view anode,
                                    std::string_view cathode) {
  return addTwoTerminal(name, DeviceType::kDio, anode, cathode, {});
}

NetlistBuilder& NetlistBuilder::inst(std::string_view name,
                                     std::string_view master,
                                     std::vector<std::string> nets) {
  const auto masterId = lib_.findSubckt(master);
  if (!masterId) {
    throw NetlistError("instance '" + std::string(name) +
                       "' references unknown master '" + std::string(master) +
                       "' (define masters before use)");
  }
  Instance instance;
  instance.name = std::string(name);
  instance.master = *masterId;
  instance.connections.reserve(nets.size());
  for (const std::string& n : nets) instance.connections.push_back(netOf(n));
  current().addInstance(std::move(instance));
  return *this;
}

Library NetlistBuilder::build(std::string_view topName) {
  if (open_) throw NetlistError("build() with an unterminated subckt");
  if (!topName.empty()) {
    const auto id = lib_.findSubckt(topName);
    if (!id) {
      throw NetlistError("build: unknown top '" + std::string(topName) + "'");
    }
    lib_.setTop(*id);
  }
  lib_.validate();
  return std::move(lib_);
}

}  // namespace ancstr
