// Reproduces Table VI: device-level symmetry constraint extraction on the
// 15 block-level circuits — SFA (signal-flow analysis, MAGICAL) vs. this
// work. The paper's shape: SFA has higher raw TPR but far worse FPR/PPV;
// our F1 is higher overall.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "harness.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

void run(BenchContext& ctx) {
  const auto corpus = fullCorpus();
  RunReport trainReport;
  Pipeline pipeline = trainPipeline(corpus, paperConfig(), &trainReport);
  ctx.accumulateReport(trainReport);

  std::printf("\n=== Table VI: device-level constraint extraction ===\n");
  TextTable table;
  table.setHeader({"Design", "SFA.TPR", "SFA.FPR", "SFA.PPV", "SFA.ACC",
                   "SFA.F1", "SFA.s", "Our.TPR", "Our.FPR", "Our.PPV",
                   "Our.ACC", "Our.F1", "Our.s"});

  ConfusionCounts sfaTotal, oursTotal;
  double sfaSeconds = 0.0, oursSeconds = 0.0;
  std::size_t designs = 0;
  for (const auto& bench : corpus) {
    if (bench.category == "ADC") continue;
    const Evaluated sfa = evalSfa(bench);
    const Evaluated us = evalOurs(pipeline, bench, ConstraintLevel::kDevice);
    ctx.accumulateReport(sfa.report);
    ctx.accumulateReport(us.report);
    addComparisonRow(table, bench.name, computeMetrics(sfa.counts),
                     sfa.seconds, computeMetrics(us.counts), us.seconds);
    sfaTotal += sfa.counts;
    oursTotal += us.counts;
    sfaSeconds += sfa.seconds;
    oursSeconds += us.seconds;
    ++designs;
  }
  table.addSeparator();
  addComparisonRow(table, "Average", computeMetrics(sfaTotal),
                   sfaSeconds / static_cast<double>(designs),
                   computeMetrics(oursTotal),
                   oursSeconds / static_cast<double>(designs));
  table.print(std::cout);

  const Metrics sfam = computeMetrics(sfaTotal);
  const Metrics ourm = computeMetrics(oursTotal);
  std::printf(
      "\nShape check (paper: SFA has higher TPR; ours wins FPR/PPV/F1):\n"
      "  TPR  %.3f (SFA) vs %.3f (ours)\n"
      "  FPR  %.3f (SFA) vs %.3f (ours)  -> %s\n"
      "  PPV  %.3f (SFA) vs %.3f (ours)  -> %s\n"
      "  F1   %.3f (SFA) vs %.3f (ours)  -> %s\n",
      sfam.tpr, ourm.tpr, sfam.fpr, ourm.fpr,
      ourm.fpr <= sfam.fpr ? "ours wins" : "MISMATCH", sfam.ppv, ourm.ppv,
      ourm.ppv >= sfam.ppv ? "ours wins" : "MISMATCH", sfam.f1, ourm.f1,
      ourm.f1 >= sfam.f1 ? "ours wins" : "MISMATCH");
  ctx.setCounter("ours.f1", ourm.f1);
  ctx.setCounter("sfa.f1", sfam.f1);
  ctx.setCounter("ours.seconds", oursSeconds);
  ctx.setCounter("sfa.seconds", sfaSeconds);
}

[[maybe_unused]] const bool kRegistered =
    registerBench("table6.device_level", run);

}  // namespace

ANCSTR_BENCH_MAIN("table6_device_level")
