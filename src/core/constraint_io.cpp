#include "core/constraint_io.h"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "util/diagnostics.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/string_utils.h"

namespace ancstr {
namespace {

// Constraint-IO failures carry a bracketed diagnostic code
// (docs/robustness.md) and bump the io.constraint_failures counter.
[[noreturn]] void fail(const std::string& message, std::string_view code) {
  static metrics::Counter& failures =
      metrics::Registry::instance().counter("io.constraint_failures");
  failures.add();
  throw Error(message + " [" + std::string(code) + "]");
}

const char* levelName(ConstraintLevel level) {
  return level == ConstraintLevel::kSystem ? "system" : "device";
}

ConstraintLevel levelFromName(const std::string& name) {
  if (name == "system") return ConstraintLevel::kSystem;
  if (name == "device") return ConstraintLevel::kDevice;
  fail("unknown constraint level '" + name + "'", diag::codes::kIoFormat);
}

std::string symPath(const std::string& hierPath) {
  return hierPath.empty() ? "." : hierPath;
}

}  // namespace

std::string constraintsToJson(const FlatDesign& design,
                              const DetectionResult& detection,
                              const std::vector<SymmetryGroup>& groups,
                              const std::vector<ArrayGroup>& arrays) {
  Json root = Json::object();
  root.set("format", "ancstr-constraints");
  root.set("version", 1);
  Json thresholds = Json::object();
  thresholds.set("system", detection.systemThreshold);
  thresholds.set("device", detection.deviceThreshold);
  root.set("thresholds", std::move(thresholds));

  Json constraints = Json::array();
  for (const ScoredCandidate& c : detection.scored) {
    if (!c.accepted) continue;
    Json entry = Json::object();
    entry.set("hierarchy", design.node(c.pair.hierarchy).path);
    entry.set("level", levelName(c.pair.level));
    entry.set("a", c.pair.nameA);
    entry.set("b", c.pair.nameB);
    entry.set("similarity", c.similarity);
    constraints.push(std::move(entry));
  }
  root.set("constraints", std::move(constraints));

  Json groupArray = Json::array();
  for (const SymmetryGroup& group : groups) {
    Json entry = Json::object();
    entry.set("hierarchy", design.node(group.hierarchy).path);
    entry.set("level", levelName(group.level));
    Json pairs = Json::array();
    for (const auto& [a, b] : group.pairs) {
      Json pair = Json::array();
      pair.push(a);
      pair.push(b);
      pairs.push(std::move(pair));
    }
    entry.set("pairs", std::move(pairs));
    Json self = Json::array();
    for (const std::string& name : group.selfSymmetric) self.push(name);
    entry.set("self_symmetric", std::move(self));
    groupArray.push(std::move(entry));
  }
  root.set("groups", std::move(groupArray));

  if (!arrays.empty()) {
    Json arrayJson = Json::array();
    for (const ArrayGroup& array : arrays) {
      Json entry = Json::object();
      entry.set("hierarchy", design.node(array.hierarchy).path);
      entry.set("device_type", std::string(deviceTypeName(array.type)));
      entry.set("unit", array.unit);
      Json members = Json::array();
      for (const auto& [name, multiple] : array.members) {
        Json member = Json::object();
        member.set("name", name);
        member.set("multiple", multiple);
        members.push(std::move(member));
      }
      entry.set("members", std::move(members));
      arrayJson.push(std::move(entry));
    }
    root.set("arrays", std::move(arrayJson));
  }
  return root.dump(2) + "\n";
}

std::string constraintsToSym(const FlatDesign& design,
                             const DetectionResult& detection,
                             const std::vector<SymmetryGroup>& groups) {
  std::ostringstream os;
  os << "# ancstr symmetry constraints\n";
  for (const ScoredCandidate& c : detection.scored) {
    if (!c.accepted) continue;
    os << symPath(design.node(c.pair.hierarchy).path) << ' ' << c.pair.nameA
       << ' ' << c.pair.nameB << '\n';
  }
  // A device may bridge several groups; emit each (hierarchy, name) once.
  std::set<std::pair<HierNodeId, std::string>> seen;
  for (const SymmetryGroup& group : groups) {
    for (const std::string& name : group.selfSymmetric) {
      if (!seen.emplace(group.hierarchy, name).second) continue;
      os << symPath(design.node(group.hierarchy).path) << ' ' << name << '\n';
    }
  }
  return os.str();
}

std::vector<ParsedConstraint> parseConstraintsJson(const std::string& text) {
  std::string error;
  const auto root = Json::parse(text, &error);
  if (!root) {
    fail("constraint JSON: " + error, diag::codes::kIoTruncated);
  }
  if (const Json* format = root->find("format");
      format == nullptr || format->asString() != "ancstr-constraints") {
    fail("constraint JSON: missing/unknown format tag",
         diag::codes::kIoFormat);
  }
  std::vector<ParsedConstraint> out;
  const Json& constraints = root->get("constraints");
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const Json& entry = constraints.at(i);
    ParsedConstraint p;
    p.hierPath = entry.get("hierarchy").asString();
    p.nameA = entry.get("a").asString();
    p.nameB = entry.get("b").asString();
    p.level = levelFromName(entry.get("level").asString());
    if (const Json* sim = entry.find("similarity")) {
      p.similarity = sim->asNumber();
      if (!std::isfinite(p.similarity)) {
        fail("constraint JSON: non-finite similarity for pair ('" + p.nameA +
                 "', '" + p.nameB + "')",
             diag::codes::kIoNonFinite);
      }
    }
    out.push_back(std::move(p));
  }
  if (const Json* groups = root->find("groups")) {
    for (std::size_t g = 0; g < groups->size(); ++g) {
      const Json& entry = groups->at(g);
      const Json* self = entry.find("self_symmetric");
      if (self == nullptr) continue;
      for (std::size_t i = 0; i < self->size(); ++i) {
        ParsedConstraint p;
        p.hierPath = entry.get("hierarchy").asString();
        p.nameA = self->at(i).asString();
        p.level = levelFromName(entry.get("level").asString());
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

std::vector<ParsedConstraint> parseConstraintsSym(const std::string& text) {
  std::vector<ParsedConstraint> out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::string_view trimmed = str::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto tokens = str::splitTokens(trimmed);
    if (tokens.size() != 2 && tokens.size() != 3) {
      throw ParseError("<sym>", lineNo,
                       "expected '<hier> <a> [b]', got '" + line + "'");
    }
    ParsedConstraint p;
    p.hierPath = tokens[0] == "." ? "" : tokens[0];
    p.nameA = tokens[1];
    if (tokens.size() == 3) p.nameB = tokens[2];
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<ParsedConstraint> parseConstraintsFile(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in || fault::shouldFail("constraint_io.open")) {
    fail("parseConstraintsFile: cannot open '" + path.string() + "'",
         diag::codes::kIoFailure);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = fault::corruptText("constraint_io.read", buf.str());
  // Extension first; fall back to sniffing the format tag so JSON files
  // with unconventional names still round-trip.
  if (str::toLower(path.extension().string()) == ".json" ||
      text.find("ancstr-constraints") != std::string::npos) {
    return parseConstraintsJson(text);
  }
  return parseConstraintsSym(text);
}

}  // namespace ancstr
