// Dense symmetric eigensolver (cyclic Jacobi). Powers the S3DET baseline's
// graph-spectra computation.
#pragma once

#include <vector>

#include "nn/matrix.h"

namespace ancstr {

struct EigenResult {
  std::vector<double> values;  ///< ascending
  nn::Matrix vectors;          ///< column i pairs with values[i]; may be empty
};

struct JacobiOptions {
  int maxSweeps = 64;
  double tolerance = 1e-12;  ///< off-diagonal Frobenius norm target
  bool computeVectors = false;
};

/// Eigen-decomposition of a symmetric matrix via cyclic Jacobi rotations.
/// Throws ShapeError when `sym` is not square; symmetry is assumed (the
/// upper triangle is trusted).
EigenResult jacobiEigen(const nn::Matrix& sym,
                        const JacobiOptions& options = {});

/// Convenience: ascending eigenvalues only.
std::vector<double> symmetricEigenvalues(const nn::Matrix& sym);

}  // namespace ancstr
