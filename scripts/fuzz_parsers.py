#!/usr/bin/env python3
"""Deterministic fuzz smoke test for the fail-soft input surfaces.

Three modes, selected with --modes (comma list, default "netlist"):

  netlist    Takes the seed decks under tests/netlist/corpus_malformed/
             (plus two clean built-in decks), applies seeded random
             mutations (truncation, line shuffling, byte flips, garbage
             splices), and pushes every mutant through
             `ancstr_cli stats --fail-soft`. The CLI must either succeed
             (exit 0) or fail cleanly with a one-line error (exit 2) —
             any other exit status, and in particular death by signal,
             fails the run.

  manifest   Saves a real hash manifest with `extract --manifest-out`,
             mutates its text the same way, and feeds every mutant back
             through `extract --since` — the manifest loader must accept
             or reject cleanly, never crash.

  diskcache  Populates a real disk-cache directory (util/disk_cache.h)
             with `extract --batch --cache-dir`, then corrupts one entry
             per iteration (bit flips, truncation, appended junk, zeroed
             spans) and reruns over the damaged directory. The run must
             exit 0 AND produce constraint files bitwise identical to the
             pristine reference: corruption anywhere in the cache tier is
             quarantined and recomputed, never served (docs/robustness.md).

The mutation stream is fully determined by --seed, so a failure
reproduces exactly.

Usage:
  scripts/fuzz_parsers.py [--cli build/tools/ancstr_cli]
                          [--iterations 200] [--seed 1]
                          [--modes netlist,manifest,diskcache]
"""

import argparse
import filecmp
import pathlib
import random
import shutil
import string
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
CORPUS = REPO / "tests" / "netlist" / "corpus_malformed"

CLEAN_SPICE = """* clean seed deck
.subckt ota inp inn out vdd vss
m1 d1 inp tail vss nch w=2u l=0.1u
m2 d2 inn tail vss nch w=2u l=0.1u
mt tail vb vss vss nch w=4u l=0.4u
r1 d1 out 1k
r2 d2 out 1k
.ends
x1 a b c vdd vss ota
"""

CLEAN_SPECTRE = """// clean seed deck
simulator lang=spectre
subckt pair (a b vdd)
M1 (d a s vdd) nch_lvt w=1u l=0.1u
M2 (d b s vdd) nch_lvt w=1u l=0.1u
ends
x1 (n1 n2 vdd) pair
R1 (n1 n2) resistor r=1k
"""

GARBAGE = ["@@@@ ####", ")(&^ junk", ".include", "((((", "m1", "x y z w"]


def load_seeds():
    seeds = [("clean.sp", CLEAN_SPICE), ("clean.scs", CLEAN_SPECTRE)]
    for path in sorted(CORPUS.glob("*")):
        if path.suffix in (".sp", ".scs"):
            seeds.append((path.name, path.read_text()))
    return seeds


def mutate(rng, seeds):
    """Returns (file name, mutated text) drawn deterministically from rng."""
    name, text = seeds[rng.randrange(len(seeds))]
    op = rng.randrange(6)
    if op == 0 and len(text) > 1:  # truncate at a random offset
        text = text[: rng.randrange(1, len(text))]
    elif op == 1:  # drop a random line
        lines = text.splitlines()
        if lines:
            del lines[rng.randrange(len(lines))]
        text = "\n".join(lines) + "\n"
    elif op == 2:  # duplicate a random line
        lines = text.splitlines()
        if lines:
            i = rng.randrange(len(lines))
            lines.insert(i, lines[i])
        text = "\n".join(lines) + "\n"
    elif op == 3 and text:  # flip a random byte to a printable char
        i = rng.randrange(len(text))
        text = text[:i] + rng.choice(string.printable) + text[i + 1:]
    elif op == 4:  # insert a garbage line
        lines = text.splitlines()
        lines.insert(rng.randrange(len(lines) + 1), rng.choice(GARBAGE))
        text = "\n".join(lines) + "\n"
    else:  # splice the halves of two seeds
        _, other = seeds[rng.randrange(len(seeds))]
        text = text[: len(text) // 2] + other[len(other) // 2:]
    return name, text


def mutate_bytes(rng, data):
    """One seeded binary mutation of a disk-cache entry."""
    data = bytearray(data)
    op = rng.randrange(5)
    if op == 0 and data:  # flip one byte
        i = rng.randrange(len(data))
        data[i] ^= 1 << rng.randrange(8)
    elif op == 1 and len(data) > 1:  # truncate (header or payload)
        del data[rng.randrange(1, len(data)):]
    elif op == 2:  # append junk past the declared payload length
        data.extend(rng.randbytes(rng.randrange(1, 64)))
    elif op == 3 and data:  # zero a random span
        i = rng.randrange(len(data))
        j = min(len(data), i + rng.randrange(1, 16))
        data[i:j] = bytes(j - i)
    else:  # replace wholesale with garbage
        data = bytearray(rng.randbytes(rng.randrange(0, 128)))
    return bytes(data)


def run_cli(argv, timeout=120):
    return subprocess.run(argv, capture_output=True, text=True,
                          timeout=timeout)


def checked(argv, what):
    proc = run_cli(argv)
    if proc.returncode != 0:
        sys.exit(f"fuzz_parsers: setup step '{what}' failed "
                 f"({proc.returncode}):\n{proc.stderr}")
    return proc


def fail(mode, i, seed, detail):
    print(f"FAIL[{mode}]: iteration {i} (seed {seed}): {detail}",
          file=sys.stderr)
    sys.exit(1)


def setup_workspace(cli, tmp):
    """Emits the generator corpus and trains a tiny model once per mode."""
    corpus = tmp / "corpus"
    checked([cli, "corpus", "--dir", str(corpus)], "corpus")
    model = tmp / "model.txt"
    checked([cli, "train", "--out", str(model), "--epochs", "2",
             str(corpus / "OTA1.sp"), str(corpus / "COMP2.sp")], "train")
    return corpus, model


def fuzz_netlist(cli, iterations, seed, tmp):
    rng = random.Random(seed)
    seeds = load_seeds()
    exits = {0: 0, 2: 0}
    for i in range(iterations):
        name, text = mutate(rng, seeds)
        target = tmp / f"mutant_{i}_{name}"
        target.write_text(text)
        proc = run_cli([cli, "stats", "--fail-soft", str(target)],
                       timeout=60)
        if proc.returncode not in (0, 2):
            print("--- mutant ---", file=sys.stderr)
            print(text, file=sys.stderr)
            print("--- stderr ---", file=sys.stderr)
            print(proc.stderr, file=sys.stderr)
            fail("netlist", i, seed,
                 f"exited {proc.returncode} on {name}")
        exits[proc.returncode] += 1
    print(f"fuzz_parsers[netlist]: {iterations} mutants, "
          f"{exits[0]} parsed fail-soft, {exits[2]} rejected cleanly")


def fuzz_manifest(cli, iterations, seed, tmp):
    rng = random.Random(seed)
    corpus, model = setup_workspace(cli, tmp)
    deck = corpus / "OTA1.sp"
    manifest = tmp / "seed.manifest"
    checked([cli, "extract", "--model", str(model),
             "--manifest-out", str(manifest),
             "--out", str(tmp / "seed_out.json"), str(deck)],
            "manifest-out")
    # Reference: a plain full extract. A mutated --since baseline may be
    # used (delta path) or rejected and degraded to a full extract — but
    # either way the constraints written must be bitwise these.
    reference = tmp / "reference.json"
    checked([cli, "extract", "--model", str(model),
             "--out", str(reference), str(deck)], "reference extract")
    seeds = [("seed.manifest", manifest.read_text())]
    exits = {0: 0, 2: 0}
    for i in range(iterations):
        _, text = mutate(rng, seeds)
        mutant = tmp / f"mutant_{i}.manifest"
        mutant.write_text(text)
        out = tmp / f"out_{i}.json"
        proc = run_cli([cli, "extract", "--model", str(model),
                        "--since", str(mutant),
                        "--out", str(out), str(deck)])
        if proc.returncode not in (0, 2):
            print("--- mutant manifest ---", file=sys.stderr)
            print(text, file=sys.stderr)
            print("--- stderr ---", file=sys.stderr)
            print(proc.stderr, file=sys.stderr)
            fail("manifest", i, seed, f"exited {proc.returncode}")
        if proc.returncode == 0 and not filecmp.cmp(reference, out,
                                                    shallow=False):
            fail("manifest", i, seed,
                 "constraints differ from the full-extract reference "
                 "under a mutated --since baseline")
        exits[proc.returncode] += 1
    print(f"fuzz_parsers[manifest]: {iterations} mutants, "
          f"{exits[0]} served identically, {exits[2]} rejected cleanly")


def fuzz_diskcache(cli, iterations, seed, tmp):
    rng = random.Random(seed)
    corpus, model = setup_workspace(cli, tmp)
    mini = tmp / "mini"
    mini.mkdir()
    for name in ("OTA1.sp", "COMP2.sp"):
        shutil.copy(corpus / name, mini / name)

    pristine = tmp / "pristine_cache"
    ref = tmp / "ref"
    checked([cli, "extract", "--model", str(model), "--batch", str(mini),
             "--cache-dir", str(pristine), "--out-dir", str(ref)],
            "cache populate")
    entries = sorted(pristine.glob("*.e"))
    if not entries:
        sys.exit("fuzz_parsers: cache populate left no entries")
    ref_files = sorted(p.name for p in ref.iterdir())

    for i in range(iterations):
        work = tmp / f"cache_{i}"
        shutil.copytree(pristine, work)
        victim = work / rng.choice(entries).name
        victim.write_bytes(mutate_bytes(rng, victim.read_bytes()))
        out = tmp / f"out_{i}"
        proc = run_cli([cli, "extract", "--model", str(model),
                        "--batch", str(mini), "--cache-dir", str(work),
                        "--out-dir", str(out)])
        if proc.returncode != 0:
            print(proc.stderr, file=sys.stderr)
            fail("diskcache", i, seed,
                 f"exited {proc.returncode} on corrupted {victim.name}")
        # The serving contract: a damaged cache entry never changes the
        # output, it is quarantined and the artifact recomputed.
        for name in ref_files:
            if not filecmp.cmp(ref / name, out / name, shallow=False):
                fail("diskcache", i, seed,
                     f"output {name} differs from the pristine reference "
                     f"after corrupting {victim.name}")
        shutil.rmtree(work)
        shutil.rmtree(out)
    print(f"fuzz_parsers[diskcache]: {iterations} corrupted-cache runs, "
          f"all exited 0 with bitwise-identical outputs")


MODES = {
    "netlist": fuzz_netlist,
    "manifest": fuzz_manifest,
    "diskcache": fuzz_diskcache,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default=str(REPO / "build/tools/ancstr_cli"))
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--modes", default="netlist",
                        help="comma list of: " + ",".join(MODES))
    args = parser.parse_args()

    if not pathlib.Path(args.cli).exists():
        sys.exit(f"fuzz_parsers: CLI not found at {args.cli}")
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    for mode in modes:
        if mode not in MODES:
            sys.exit(f"fuzz_parsers: unknown mode '{mode}' "
                     f"(expected one of {','.join(MODES)})")

    for mode in modes:
        with tempfile.TemporaryDirectory(prefix=f"ancstr_fuzz_{mode}_") as t:
            MODES[mode](args.cli, args.iterations, args.seed,
                        pathlib.Path(t))


if __name__ == "__main__":
    main()
