#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "circuits/synthetic.h"
#include "util/error.h"

namespace ancstr {
namespace {

PipelineConfig fastConfig() {
  PipelineConfig config;
  config.train.epochs = 8;
  return config;
}

TEST(Pipeline, ExtractBeforeTrainThrows) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  EXPECT_FALSE(pipeline.isTrained());
  EXPECT_THROW(pipeline.extract(bench.lib), Error);
}

TEST(Pipeline, TrainThenExtractProducesScoredCandidates) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(3);
  pipeline.train({&bench.lib});
  EXPECT_TRUE(pipeline.isTrained());
  const ExtractionResult result = pipeline.extract(bench.lib);
  EXPECT_GT(result.detection.scored.size(), 0u);
  EXPECT_GT(result.report.totalSeconds(), 0.0);
}

TEST(Pipeline, InductiveExtractionOnUnseenCircuit) {
  Pipeline pipeline(fastConfig());
  const auto trainBench = circuits::makeDiffChain(2);
  pipeline.train({&trainBench.lib});
  // Extract from a circuit never seen during training.
  const auto unseen = circuits::makeDiffChain(5);
  const ExtractionResult result = pipeline.extract(unseen.lib);
  EXPECT_GT(result.detection.scored.size(), 0u);
}

TEST(Pipeline, MatchedPairsScoreHigherThanUnmatched) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(3);
  pipeline.train({&bench.lib});
  const ExtractionResult result = pipeline.extract(bench.lib);
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  double matchedMin = 1.0;
  for (const ScoredCandidate& c : result.detection.scored) {
    if (bench.truth.matches(design, c.pair)) {
      matchedMin = std::min(matchedMin, c.similarity);
    }
  }
  // Ground-truth pairs are exactly symmetric here: similarity ~ 1.
  EXPECT_GT(matchedMin, 0.999);
}

TEST(Pipeline, ModelSaveLoadKeepsBehaviour) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const std::string path = testing::TempDir() + "/pipeline_model.txt";
  pipeline.saveModel(path);

  Pipeline restored(fastConfig());
  restored.loadModel(path);
  const auto a = pipeline.extract(bench.lib);
  const auto b = restored.extract(bench.lib);
  ASSERT_EQ(a.detection.scored.size(), b.detection.scored.size());
  for (std::size_t i = 0; i < a.detection.scored.size(); ++i) {
    EXPECT_NEAR(a.detection.scored[i].similarity,
                b.detection.scored[i].similarity, 1e-12);
  }
}

TEST(Pipeline, ConfigValidation) {
  PipelineConfig bad;
  bad.model.featureDim = 7;  // disagrees with features.dims()
  EXPECT_THROW(Pipeline{bad}, Error);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto bench = circuits::makeDiffChain(2);
  auto run = [&] {
    Pipeline pipeline(fastConfig());
    pipeline.train({&bench.lib});
    std::vector<double> sims;
    for (const auto& c : pipeline.extract(bench.lib).detection.scored) {
      sims.push_back(c.similarity);
    }
    return sims;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ancstr
