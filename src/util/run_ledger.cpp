#include "util/run_ledger.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <mutex>
#include <thread>

#include "util/fault.h"
#include "util/json.h"
#include "util/metrics.h"

namespace ancstr::ledger {

Json LedgerRecord::toJson() const {
  Json root = Json::object();
  root.set("schemaVersion", LedgerWriter::kSchemaVersion);
  root.set("requestId", static_cast<std::size_t>(requestId));
  root.set("correlationId", correlationId);
  root.set("designHash", designHash);
  root.set("devices", static_cast<std::size_t>(devices));
  root.set("nets", static_cast<std::size_t>(nets));
  root.set("hierarchyNodes", static_cast<std::size_t>(hierarchyNodes));
  root.set("cacheOutcome", cacheOutcome);
  root.set("blockCacheHits", static_cast<std::size_t>(blockCacheHits));
  root.set("blockCacheMisses", static_cast<std::size_t>(blockCacheMisses));
  root.set("outcome", outcome);
  root.set("kernel", kernel);
  root.set("constraintsTotal", static_cast<std::size_t>(constraintsTotal));
  Json constraintObj = Json::object();
  for (const auto& [type, count] : constraints) {
    constraintObj.set(type, static_cast<std::size_t>(count));
  }
  root.set("constraints", std::move(constraintObj));
  Json diagObj = Json::object();
  for (const auto& [code, count] : diagnostics) {
    diagObj.set(code, static_cast<std::size_t>(count));
  }
  root.set("diagnostics", std::move(diagObj));
  Json phaseObj = Json::object();
  for (const auto& [name, seconds] : phases) phaseObj.set(name, seconds);
  root.set("phases", std::move(phaseObj));
  root.set("wallSeconds", wallSeconds);
  root.set("peakRssDeltaBytes", static_cast<std::size_t>(peakRssDeltaBytes));
  root.set("unixTimeSeconds", unixTimeSeconds);
  return root;
}

std::string LedgerRecord::toJsonLine() const { return toJson().dump(0); }

namespace {

metrics::Counter& appendedCounter() {
  static metrics::Counter& c =
      metrics::Registry::instance().counter("ledger.appended");
  return c;
}

metrics::Counter& droppedCounter() {
  static metrics::Counter& c =
      metrics::Registry::instance().counter("ledger.dropped");
  return c;
}

metrics::Counter& writeFailureCounter() {
  static metrics::Counter& c =
      metrics::Registry::instance().counter("ledger.write_failure");
  return c;
}

}  // namespace

struct LedgerWriter::Impl {
  std::atomic<bool> opened{false};
  std::atomic<bool> degraded{false};
  std::atomic<int> consecutiveFailures{0};

  mutable std::mutex mutex;  ///< file + stats
  std::ofstream file;
  LedgerStats stats;

  // Write-behind machinery (writeBehind only); mirrors DiskCache.
  std::mutex queueMutex;
  std::condition_variable queueCv;
  std::condition_variable idleCv;
  std::deque<std::string> queue;
  bool writerBusy = false;
  bool stopping = false;
  std::thread writer;
};

LedgerWriter::LedgerWriter(LedgerWriterConfig config)
    : config_(std::move(config)), impl_(new Impl) {
  if (config_.path.empty()) return;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->file.open(config_.path, std::ios::app);
    if (impl_->file.is_open()) {
      impl_->opened.store(true, std::memory_order_relaxed);
    }
  }
  if (impl_->opened.load(std::memory_order_relaxed) && config_.writeBehind) {
    impl_->writer = std::thread([this] { writerLoop(); });
  }
}

LedgerWriter::~LedgerWriter() {
  if (impl_->writer.joinable()) {
    flush();
    {
      const std::lock_guard<std::mutex> lock(impl_->queueMutex);
      impl_->stopping = true;
    }
    impl_->queueCv.notify_all();
    impl_->writer.join();
  }
  delete impl_;
}

bool LedgerWriter::enabled() const {
  return impl_->opened.load(std::memory_order_relaxed) &&
         !impl_->degraded.load(std::memory_order_relaxed);
}

void LedgerWriter::noteWriteFailure() {
  writeFailureCounter().add();
  const int failures =
      impl_->consecutiveFailures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= config_.degradeAfterFailures) {
    impl_->degraded.store(true, std::memory_order_relaxed);
  }
}

bool LedgerWriter::writeLine(const std::string& line) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  bool ok = !fault::shouldFail("ledger.write");
  if (ok) {
    impl_->file << line << '\n';
    impl_->file.flush();
    ok = static_cast<bool>(impl_->file);
    if (!ok) impl_->file.clear();
  }
  if (ok) {
    ++impl_->stats.appended;
    appendedCounter().add();
    impl_->consecutiveFailures.store(0, std::memory_order_relaxed);
  } else {
    ++impl_->stats.writeFailures;
  }
  return ok;
}

void LedgerWriter::append(const LedgerRecord& record) {
  if (!enabled()) {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    ++impl_->stats.dropped;
    droppedCounter().add();
    return;
  }
  LedgerRecord stamped = record;
  stamped.unixTimeSeconds =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::string line = stamped.toJsonLine();
  if (!config_.writeBehind) {
    if (!writeLine(line)) noteWriteFailure();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->queueMutex);
    if (impl_->queue.size() >= config_.maxQueuedRecords) {
      const std::lock_guard<std::mutex> statsLock(impl_->mutex);
      ++impl_->stats.dropped;
      droppedCounter().add();
      return;
    }
    impl_->queue.push_back(std::move(line));
  }
  impl_->queueCv.notify_one();
}

void LedgerWriter::writerLoop() {
  std::unique_lock<std::mutex> lock(impl_->queueMutex);
  for (;;) {
    impl_->queueCv.wait(
        lock, [this] { return impl_->stopping || !impl_->queue.empty(); });
    if (impl_->queue.empty()) {
      if (impl_->stopping) return;
      continue;
    }
    const std::string line = std::move(impl_->queue.front());
    impl_->queue.pop_front();
    impl_->writerBusy = true;
    lock.unlock();
    if (!writeLine(line)) noteWriteFailure();
    lock.lock();
    impl_->writerBusy = false;
    if (impl_->queue.empty()) impl_->idleCv.notify_all();
  }
}

void LedgerWriter::flush() {
  if (!impl_->writer.joinable()) return;
  std::unique_lock<std::mutex> lock(impl_->queueMutex);
  impl_->idleCv.wait(
      lock, [this] { return impl_->queue.empty() && !impl_->writerBusy; });
}

LedgerStats LedgerWriter::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  LedgerStats out = impl_->stats;
  out.enabled = enabled();
  out.degraded = impl_->degraded.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ancstr::ledger
