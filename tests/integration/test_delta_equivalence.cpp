// Differential-testing harness for incremental (ECO) extraction: across
// hundreds of seeded mutation sequences, ExtractionEngine::extractDelta
// must be BITWISE identical to a cacheless cold Pipeline::extract of the
// new version — at 1 and 4 threads, under LRU eviction pressure, across
// maxNetDegree eligibility flips, and with fault injection active.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "circuits/synthetic.h"
#include "core/engine.h"
#include "netlist/flatten.h"
#include "support/netlist_mutator.h"
#include "util/diagnostics.h"
#include "util/error.h"
#include "util/fault.h"

namespace ancstr {
namespace {

using testsupport::attachFanout;
using testsupport::MutationKind;
using testsupport::NetlistMutator;
using testsupport::rebuildIdentity;

PipelineConfig fastConfig(std::size_t threads = 1) {
  PipelineConfig config;
  config.train.epochs = 8;
  config.threads = threads;
  return config;
}

/// Bitwise comparison (memcmp on doubles, no tolerance): the delta
/// contract is exact reproduction, not approximation.
::testing::AssertionResult bitwiseEqual(const ExtractionResult& a,
                                        const ExtractionResult& b) {
  const DetectionResult& da = a.detection;
  const DetectionResult& db = b.detection;
  if (std::memcmp(&da.systemThreshold, &db.systemThreshold,
                  sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "systemThreshold differs";
  }
  if (std::memcmp(&da.deviceThreshold, &db.deviceThreshold,
                  sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "deviceThreshold differs";
  }
  if (da.scored.size() != db.scored.size()) {
    return ::testing::AssertionFailure()
           << "scored size " << da.scored.size() << " vs "
           << db.scored.size();
  }
  for (std::size_t i = 0; i < da.scored.size(); ++i) {
    const ScoredCandidate& ca = da.scored[i];
    const ScoredCandidate& cb = db.scored[i];
    if (!(ca.pair.a == cb.pair.a) || !(ca.pair.b == cb.pair.b) ||
        ca.pair.hierarchy != cb.pair.hierarchy ||
        ca.pair.level != cb.pair.level || ca.accepted != cb.accepted ||
        std::memcmp(&ca.similarity, &cb.similarity, sizeof(double)) != 0) {
      return ::testing::AssertionFailure() << "candidate " << i << " differs";
    }
  }
  if (std::memcmp(&da.mirrorThreshold, &db.mirrorThreshold,
                  sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "mirrorThreshold differs";
  }
  if (da.mirrorScored.size() != db.mirrorScored.size()) {
    return ::testing::AssertionFailure()
           << "mirrorScored size " << da.mirrorScored.size() << " vs "
           << db.mirrorScored.size();
  }
  for (std::size_t i = 0; i < da.mirrorScored.size(); ++i) {
    const ScoredCandidate& ca = da.mirrorScored[i];
    const ScoredCandidate& cb = db.mirrorScored[i];
    if (!(ca.pair.a == cb.pair.a) || !(ca.pair.b == cb.pair.b) ||
        ca.pair.hierarchy != cb.pair.hierarchy ||
        ca.accepted != cb.accepted ||
        std::memcmp(&ca.similarity, &cb.similarity, sizeof(double)) != 0) {
      return ::testing::AssertionFailure() << "mirror " << i << " differs";
    }
  }
  // The typed registry is derived from the above plus member names; its
  // defaulted operator== covers scores (exact double compare) and ids.
  if (!(da.set == db.set)) {
    return ::testing::AssertionFailure() << "constraint set differs";
  }
  if (a.embeddings.rows() != b.embeddings.rows() ||
      a.embeddings.cols() != b.embeddings.cols()) {
    return ::testing::AssertionFailure() << "embedding shape differs";
  }
  for (std::size_t r = 0; r < a.embeddings.rows(); ++r) {
    if (std::memcmp(a.embeddings.row(r), b.embeddings.row(r),
                    a.embeddings.cols() * sizeof(double)) != 0) {
      return ::testing::AssertionFailure() << "embedding row " << r
                                           << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

std::string mutationLog(const NetlistMutator& mutator) {
  std::ostringstream out;
  for (const auto& m : mutator.applied()) {
    out << "\n  [" << testsupport::toString(m.kind) << "] " << m.description;
  }
  return out.str();
}

/// One trained pipeline per thread configuration, shared across the
/// property tests (training dominates the fixture cost). The trained
/// weights are bitwise identical for every thread count, so the two
/// contexts compare the same model at different parallelism.
Pipeline& sharedPipeline(std::size_t threads) {
  static Pipeline* serial = nullptr;
  static Pipeline* parallel4 = nullptr;
  Pipeline*& slot = threads == 1 ? serial : parallel4;
  if (slot == nullptr) {
    slot = new Pipeline(fastConfig(threads));
    const auto a = circuits::makeBlockArray(3);
    const auto b = circuits::makeDiffChain(2);
    slot->train({&a.lib, &b.lib});
  }
  return *slot;
}

/// The property: for `seeds` seeded edit sequences, every step's
/// extractDelta against the previous version equals a cacheless cold
/// extract of the new version, bitwise. One persistent engine serves the
/// whole run, so cache state accumulates across seeds exactly as in a
/// long-lived serving process.
void runSeededSequences(std::size_t threads, std::uint64_t seedBase,
                        int seeds, EngineConfig engineConfig = {}) {
  Pipeline& pipeline = sharedPipeline(threads);
  engineConfig.threads = threads;
  const ExtractionEngine engine(pipeline, engineConfig);
  const auto base = circuits::makeBlockArray(3);

  for (int k = 0; k < seeds; ++k) {
    const std::uint64_t seed = seedBase + static_cast<std::uint64_t>(k);
    NetlistMutator mutator(base.lib, seed);
    Library oldLib = mutator.current();
    const int steps = 1 + static_cast<int>(seed % 3);
    for (int step = 0; step < steps; ++step) {
      Library newLib =
          mutator.mutate(1 + static_cast<int>((seed + step) % 3));
      const ExtractionResult full = pipeline.extract(newLib);
      DeltaReport delta;
      const ExtractionResult incremental =
          engine.extractDelta(oldLib, newLib, {}, &delta);
      EXPECT_TRUE(bitwiseEqual(full, incremental))
          << "seed=" << seed << " step=" << step << mutationLog(mutator);
      oldLib = std::move(newLib);
    }
  }
}

TEST(DeltaEquivalence, PropertySerial) {
  runSeededSequences(/*threads=*/1, /*seedBase=*/1000, /*seeds=*/100);
}

TEST(DeltaEquivalence, PropertyFourThreads) {
  runSeededSequences(/*threads=*/4, /*seedBase=*/2000, /*seeds=*/100);
}

TEST(DeltaEquivalence, EvictionThrashStaysExact) {
  // A budget far below any entry's size: every insertion immediately
  // overflows, so the delta path runs in a permanent thrash and can never
  // rely on a warm baseline actually being resident.
  EngineConfig config;
  config.cacheBudgetBytes = 64;
  runSeededSequences(/*threads=*/1, /*seedBase=*/3000, /*seeds=*/10, config);

  Pipeline& pipeline = sharedPipeline(1);
  const ExtractionEngine engine(pipeline, config);
  const auto base = circuits::makeBlockArray(3);
  NetlistMutator mutator(base.lib, /*seed=*/99);
  const Library edited = mutator.mutate(2);
  (void)engine.extractDelta(base.lib, edited);
  EXPECT_GE(engine.cacheStats().design.evictions, 1u);
}

TEST(DeltaEquivalence, IdentityEditIsIdenticalAndServedFromCache) {
  Pipeline& pipeline = sharedPipeline(1);
  const ExtractionEngine engine(pipeline);
  const auto base = circuits::makeBlockArray(3);
  const Library same = rebuildIdentity(base.lib);

  const ExtractionResult full = pipeline.extract(same);
  DeltaReport first;
  const ExtractionResult cold = engine.extractDelta(base.lib, same, {}, &first);
  EXPECT_TRUE(bitwiseEqual(full, cold));
  EXPECT_TRUE(first.diff.identical());
  EXPECT_EQ(first.diff.dirtyNodes, 0u);
  EXPECT_EQ(first.diff.changedMasters(), 0u);

  // Second identity delta: the baseline is resident now, so the new
  // version is a pure design-cache hit.
  DeltaReport second;
  const ExtractionResult warm =
      engine.extractDelta(base.lib, same, {}, &second);
  EXPECT_TRUE(bitwiseEqual(full, warm));
  EXPECT_GE(second.reuse.design.hits, 1u);
}

TEST(DeltaEquivalence, RenameOnlyEditKeepsCachesHotAndIdsStable) {
  Pipeline& pipeline = sharedPipeline(1);
  const ExtractionEngine engine(pipeline);
  const auto base = circuits::makeBlockArray(3);

  // Make the baseline resident.
  (void)engine.extractDelta(base.lib, rebuildIdentity(base.lib));

  NetlistMutator mutator(base.lib, /*seed=*/4242);
  const Library renamed = mutator.mutate(
      4, {MutationKind::kRenameNet, MutationKind::kRenameDevice,
          MutationKind::kRenameInstance});

  DeltaReport delta;
  const ExtractionResult incremental =
      engine.extractDelta(base.lib, renamed, {}, &delta);
  EXPECT_TRUE(bitwiseEqual(pipeline.extract(renamed), incremental))
      << mutationLog(mutator);
  // Renames are hash-invariant: the renamed design IS the baseline to
  // every content-addressed cache, so the delta is a pure design-cache
  // hit — no node is dirty and nothing is recomputed.
  EXPECT_TRUE(delta.diff.designUnchanged) << mutationLog(mutator);
  EXPECT_EQ(delta.diff.dirtyNodes, 0u);
  EXPECT_GE(delta.reuse.design.hits, 1u);

  // Registry member ids are structural (flatten order), not name-derived:
  // record for record, the renamed extraction carries the same ids as the
  // baseline even where the display names moved.
  const ExtractionResult baseline = pipeline.extract(base.lib);
  const ConstraintSet& before = baseline.detection.set;
  const ConstraintSet& after = incremental.detection.set;
  ASSERT_EQ(before.size(), after.size());
  ASSERT_FALSE(before.empty());
  for (std::size_t i = 0; i < before.size(); ++i) {
    const Constraint& ca = before.all()[i];
    const Constraint& cb = after.all()[i];
    EXPECT_EQ(ca.type, cb.type);
    EXPECT_EQ(ca.hierarchy, cb.hierarchy);
    ASSERT_EQ(ca.members.size(), cb.members.size());
    for (std::size_t m = 0; m < ca.members.size(); ++m) {
      EXPECT_EQ(ca.members[m].kind, cb.members[m].kind);
      EXPECT_EQ(ca.members[m].id, cb.members[m].id);
    }
    EXPECT_EQ(ca.score, cb.score);
  }
}

TEST(DeltaEquivalence, DeltaReportCountsReuseAfterALeafEdit) {
  Pipeline& pipeline = sharedPipeline(1);
  const ExtractionEngine engine(pipeline);
  const auto base = circuits::makeBlockArray(4);
  // Top-cell-only edit: every OTA subtree stays clean and its block
  // artifacts are served from cache.
  const Library edited = attachFanout(base.lib, 2);

  DeltaReport delta;
  const ExtractionResult incremental =
      engine.extractDelta(base.lib, edited, {}, &delta);
  EXPECT_TRUE(bitwiseEqual(pipeline.extract(edited), incremental));
  EXPECT_FALSE(delta.diff.designUnchanged);
  EXPECT_EQ(delta.diff.dirtyNodes, 1u);
  EXPECT_EQ(delta.diff.cleanNodes, 4u);
  EXPECT_GT(delta.diff.reusableDevices, 0u);
  EXPECT_GE(delta.reuse.blocks.hits, 1u);
}

TEST(DeltaEquivalence, EligibilityFlipStaysBitwiseEqual) {
  const auto base = circuits::makeBlockArray(4);
  const Library fanned = attachFanout(base.lib, 6);
  const FlatDesign baseDesign = FlatDesign::elaborate(base.lib);
  const FlatDesign fannedDesign = FlatDesign::elaborate(fanned);

  // Cap between the touched nets' base and fanned degrees: the base is
  // eligible, the fanout pushes past the cap, and the eligibility bit of
  // every subtree touching the hub net flips.
  std::size_t cap = 0;
  for (FlatNetId net = 0; net < baseDesign.nets().size(); ++net) {
    const std::size_t before = baseDesign.netTerminals()[net].size();
    const std::size_t after = fannedDesign.netTerminals()[net].size();
    if (before != after) cap = std::max(cap, before);
  }
  ASSERT_GT(cap, 0u);

  PipelineConfig config = fastConfig();
  config.graph.maxNetDegree = cap;
  Pipeline pipeline(config);
  pipeline.train({&base.lib});
  const ExtractionEngine engine(pipeline);

  DeltaReport delta;
  const ExtractionResult incremental =
      engine.extractDelta(base.lib, fanned, {}, &delta);
  EXPECT_TRUE(bitwiseEqual(pipeline.extract(fanned), incremental));
  // The flip dirties subtrees whose own devices never changed: strictly
  // more than the top node alone.
  EXPECT_GT(delta.diff.dirtyNodes, 1u);
}

TEST(DeltaEquivalence, CorruptBaselineNeverChangesTheResult) {
  Pipeline& pipeline = sharedPipeline(1);
  const ExtractionEngine engine(pipeline);
  const auto base = circuits::makeBlockArray(3);

  // An empty library does not elaborate; the delta degrades to a plain
  // extract with an empty diff, and never throws because of the baseline.
  DeltaReport delta;
  const ExtractionResult incremental =
      engine.extractDelta(Library{}, base.lib, {}, &delta);
  EXPECT_TRUE(bitwiseEqual(pipeline.extract(base.lib), incremental));
  EXPECT_TRUE(delta.diff.masters.empty());
  EXPECT_TRUE(delta.diff.dirtyNode.empty());
  EXPECT_FALSE(delta.diff.designUnchanged);
}

TEST(DeltaEquivalence, FaultInjectionDegradesFullAndDeltaIdentically) {
  Pipeline& pipeline = sharedPipeline(1);
  const ExtractionEngine engine(pipeline);
  const auto base = circuits::makeBlockArray(3);
  NetlistMutator mutator(base.lib, /*seed=*/77);
  const Library edited = mutator.mutate(2);

  // "extract.detect" sits on the shared detection path: both the full and
  // the delta extraction hit it and must degrade to the same empty result
  // with the same diagnostic.
  const fault::ScopedFault fault("extract.detect");
  diag::DiagnosticSink fullSink(diag::DiagnosticSink::Mode::kCollect);
  diag::DiagnosticSink deltaSink(diag::DiagnosticSink::Mode::kCollect);
  const ExtractionResult full =
      pipeline.extract(edited, ExtractOptions{&fullSink});
  const ExtractionResult incremental = engine.extractDelta(
      base.lib, edited, ExtractOptions{&deltaSink});

  EXPECT_TRUE(bitwiseEqual(full, incremental));
  EXPECT_EQ(full.detection.scored.size(), 0u);
  const auto hasDegraded = [](const diag::DiagnosticSink& sink) {
    for (const diag::Diagnostic& d : sink.snapshot()) {
      if (d.code == diag::codes::kExtractDegraded) return true;
    }
    return false;
  };
  EXPECT_TRUE(hasDegraded(fullSink));
  EXPECT_TRUE(hasDegraded(deltaSink));
}

TEST(DeltaEquivalence, StrictDeltaStillThrowsOnFault) {
  Pipeline& pipeline = sharedPipeline(1);
  const ExtractionEngine engine(pipeline);
  const auto base = circuits::makeBlockArray(3);
  NetlistMutator mutator(base.lib, /*seed=*/78);
  const Library edited = mutator.mutate(1);

  const fault::ScopedFault fault("extract.detect");
  EXPECT_THROW((void)engine.extractDelta(base.lib, edited), Error);
}

}  // namespace
}  // namespace ancstr
