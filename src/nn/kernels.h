// Runtime-dispatched numeric kernels for the nn hot path.
//
// The serving-critical inner loop of the GGNN — per-edge-type GEMMs, the
// sparse message aggregation, and the GRU state update — runs through a
// process-global table of function pointers selected once from CPUID
// (avx512 > avx2 > scalar). Every backend implements the identical
// per-element operation sequence (kernels_detail.h), so results are
// BITWISE IDENTICAL across scalar/avx2/avx512 for both training and
// inference; dispatch is a pure speed choice and never a numeric one.
// Consequences: cache keys need no kernel salt, and the cross-kernel
// equivalence suite asserts exact equality (docs/api.md, "Numeric
// contract").
//
// Selection precedence: the ANCSTR_KERNEL environment variable (auto |
// scalar | avx2 | avx512) wins over programmatic selection
// (PipelineConfig::kernel, CLI --kernel), mirroring ANCSTR_THREADS. A
// requested backend that is not compiled in or not supported by the CPU
// falls back to the best available one with a warning.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nn/kernels_detail.h"

namespace ancstr::nn {

/// Kernel backend identity. kAuto is only ever a *request* (resolve to the
/// best available backend); the active kernel is never kAuto.
enum class KernelKind { kAuto, kScalar, kAvx2, kAvx512 };

/// "auto" / "scalar" / "avx2" / "avx512".
const char* kernelName(KernelKind kind);

/// Inverse of kernelName; nullopt for anything else.
std::optional<KernelKind> parseKernelKind(std::string_view name);

/// Raw parameter pointers of one GRU cell (row-major; see nn/gru.h for the
/// gate equations). w*: inputDim x hiddenDim, u*: hiddenDim x hiddenDim,
/// b*: 1 x hiddenDim.
struct GruStepParams {
  const double* wz = nullptr;
  const double* uz = nullptr;
  const double* bz = nullptr;
  const double* wr = nullptr;
  const double* ur = nullptr;
  const double* br = nullptr;
  const double* wc = nullptr;
  const double* uc = nullptr;
  const double* bc = nullptr;
  std::size_t inputDim = 0;
  std::size_t hiddenDim = 0;
};

/// Doubles of scratch fusedGruStep needs for `rows` batched states.
constexpr std::size_t gruStepScratchDoubles(std::size_t rows,
                                            std::size_t hiddenDim) {
  return 4 * rows * hiddenDim;
}

/// One backend's kernel table. All entries are non-null.
struct Kernels {
  KernelKind kind = KernelKind::kScalar;
  /// C += A B (A: m x k, B: k x n, C: m x n, row-major, C caller-init).
  kdetail::GemmFn gemmAcc = nullptr;
  /// cs[t] += A bs[t] for t < count: shared-A batch across the per-edge-
  /// type message transforms, streaming A once.
  kdetail::GemmBatchFn gemmBatchAcc = nullptr;
  /// y = A x via the fixed 8-lane reduction decomposition.
  kdetail::GemvFn gemv = nullptr;
  /// y += s * x.
  kdetail::AxpyFn axpy = nullptr;
  /// Fused tape-free GRU step: hOut = GRU(x, h) for row-batched states,
  /// bitwise identical to the autograd path in nn/gru.h. x: rows x
  /// inputDim, h / hOut: rows x hiddenDim; hOut must not alias x or h.
  /// scratch: >= gruStepScratchDoubles(rows, hiddenDim) doubles.
  void (*fusedGruStep)(const GruStepParams& p, const double* x,
                       const double* h, double* hOut, std::size_t rows,
                       double* scratch) = nullptr;
};

/// True when `kind`'s backend was compiled into this binary.
bool kernelCompiled(KernelKind kind);

/// True when `kind` is compiled in AND the CPU supports it.
bool kernelAvailable(KernelKind kind);

/// The backends compiled into this binary (always contains kScalar).
std::vector<KernelKind> compiledKernels();

/// Comma-joined kernelName list of compiledKernels(), e.g.
/// "scalar,avx2,avx512" — the `compiled` label of nn.kernel_info.
std::string compiledKernelsString();

/// Resolves a request to the backend dispatch would pick: applies the
/// ANCSTR_KERNEL override, maps kAuto to the best available backend, and
/// falls back (with a warning) when the request is unavailable. Pure —
/// does not change the active kernel.
KernelKind resolveKernel(KernelKind requested);

/// Resolves `requested` and installs it as the process-wide active kernel.
/// Returns what was installed. Thread-safe; because all backends are
/// bitwise-identical, a mid-run switch changes speed, never results.
KernelKind selectKernel(KernelKind requested);

/// The active kernel table (dispatching on first use when nothing was
/// selected yet). Thread-safe.
const Kernels& activeKernels();

KernelKind activeKernelKind();
const char* activeKernelName();

/// The table for a specific backend, for tests and benchmarks that pin a
/// kernel without touching global dispatch. Throws Error when `kind` is
/// kAuto or not available on this machine.
const Kernels& kernelsFor(KernelKind kind);

}  // namespace ancstr::nn
