#include "core/trainer.h"

#include <numeric>

#include "nn/optim.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ancstr {

TrainStats trainUnsupervised(GnnModel& model,
                             const std::vector<PreparedGraph>& corpus,
                             const TrainConfig& config, Rng& rng) {
  TrainStats stats;
  const Stopwatch watch;

  const std::vector<nn::Tensor> params = model.parameters();
  nn::Adam::Config adamConfig;
  adamConfig.lr = config.learningRate;
  nn::Adam optimizer(params, adamConfig);

  std::vector<std::size_t> order(corpus.size());
  std::iota(order.begin(), order.end(), 0u);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double lossSum = 0.0;
    std::size_t lossCount = 0;
    for (const std::size_t gi : order) {
      const PreparedGraph& g = corpus[gi];
      if (g.numVertices() < 2) continue;
      const ContrastiveBatch batch =
          sampleContrastiveBatch(g, config.negativeSamples, rng);
      if (batch.size() == 0) continue;

      nn::Tensor z = model.forward(g);
      nn::Tensor loss = contrastiveLoss(z, batch, config.meanReduction);
      nn::zeroGrads(params);
      loss.backward();
      if (config.clipNorm > 0.0) nn::clipGradNorm(params, config.clipNorm);
      optimizer.step();

      lossSum += loss.value()(0, 0);
      ++lossCount;
    }
    const double epochLoss =
        lossCount > 0 ? lossSum / static_cast<double>(lossCount) : 0.0;
    stats.epochLoss.push_back(epochLoss);
    if (config.verbose) {
      log::info() << "epoch " << epoch << " loss " << epochLoss;
    }
  }
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace ancstr
