#include "circuits/truth_composer.h"

#include <gtest/gtest.h>

namespace ancstr::circuits {
namespace {

TEST(TruthComposer, FlatMasterExpandsAtRoot) {
  TruthComposer t;
  t.devicePair("cell", "m1", "m2");
  const auto entries = t.expand("cell");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].hierPath, "");
  EXPECT_EQ(entries[0].nameA, "m1");
  EXPECT_EQ(entries[0].level, ConstraintLevel::kDevice);
}

TEST(TruthComposer, ChildPrefixesPaths) {
  TruthComposer t;
  t.devicePair("leaf", "a", "b");
  t.child("top", "x1", "leaf");
  t.child("top", "x2", "leaf");
  const auto entries = t.expand("top");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].hierPath, "x1");
  EXPECT_EQ(entries[1].hierPath, "x2");
}

TEST(TruthComposer, DeepNestingComposesPaths) {
  TruthComposer t;
  t.devicePair("inner", "p", "q");
  t.child("mid", "xi", "inner");
  t.systemPair("mid", "r1", "r2");
  t.child("top", "xm", "mid");
  const auto entries = t.expand("top");
  ASSERT_EQ(entries.size(), 2u);
  bool sawDeep = false, sawMid = false;
  for (const auto& e : entries) {
    if (e.hierPath == "xm/xi" && e.nameA == "p") sawDeep = true;
    if (e.hierPath == "xm" && e.nameA == "r1") {
      sawMid = true;
      EXPECT_EQ(e.level, ConstraintLevel::kSystem);
    }
  }
  EXPECT_TRUE(sawDeep);
  EXPECT_TRUE(sawMid);
}

TEST(TruthComposer, NamesAreCaseNormalised) {
  TruthComposer t;
  t.devicePair("Leaf", "A", "B");
  t.child("Top", "X1", "LEAF");
  const auto entries = t.expand("TOP");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].hierPath, "x1");
}

TEST(TruthComposer, UnusedMastersDoNotLeak) {
  TruthComposer t;
  t.devicePair("orphan", "a", "b");
  t.devicePair("top", "m1", "m2");
  const auto entries = t.expand("top");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].nameA, "m1");
}

TEST(TruthComposer, SharedMasterExpandsPerInstance) {
  TruthComposer t;
  t.devicePair("dff", "tg1", "tg2");
  for (int i = 0; i < 4; ++i) {
    t.child("ctl", "xdff" + std::to_string(i), "dff");
  }
  EXPECT_EQ(t.expand("ctl").size(), 4u);
}

}  // namespace
}  // namespace ancstr::circuits
