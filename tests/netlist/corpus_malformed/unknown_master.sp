* malformed corpus: instance of an undefined subckt
x1 a b nosuchcell
r1 a b 1k
r2 b c 1k
