// Node feature initialisation (paper Section IV-B, Table II).
//
// Each vertex starts as an 18-dim vector:
//   [0..14]  one-hot device type (15 types; kUnknown encodes all-zero)
//   [15]     width feature
//   [16]     length feature
//   [17]     metal-layer count
//
// Geometry is deliberately coarse (paper: full PDK parameter sets hurt
// generalisation). MOS devices report W/L in microns (total width = w * nf
// * m so folded and multiplied devices with equal total drive match).
// Passives without drawn W/L report a log-compressed value in the width
// slot so matched R/C pairs share features without unit explosions.
#pragma once

#include <vector>

#include "netlist/flatten.h"
#include "nn/matrix.h"

namespace ancstr {

/// Feature layout / ablation switches.
struct FeatureConfig {
  bool useGeometry = true;  ///< include W/L features (Table II row 2)
  bool useLayers = true;    ///< include metal-layer count (row 3)

  /// Total feature dimension under this configuration.
  std::size_t dims() const {
    return kNumDeviceTypes + (useGeometry ? 2u : 0u) + (useLayers ? 1u : 0u);
  }
};

/// Initial feature vector of one device.
std::vector<double> deviceFeature(const FlatDevice& device,
                                  const FeatureConfig& config = {});

/// Stacks deviceFeature() rows for `subset` (row i = subset[i]).
nn::Matrix buildFeatureMatrix(const FlatDesign& design,
                              const std::vector<FlatDeviceId>& subset,
                              const FeatureConfig& config = {});

/// Features for every device in the design, row = FlatDeviceId.
nn::Matrix buildFeatureMatrix(const FlatDesign& design,
                              const FeatureConfig& config = {});

}  // namespace ancstr
