// Minimal JSON value model with serializer and parser — enough to ship
// constraint files and model metadata without external dependencies.
// Supports the full JSON grammar except \u escapes beyond ASCII (emitted
// verbatim, parsed as raw bytes).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ancstr {

/// A JSON value. Objects preserve insertion order for stable output.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}
  Json(std::size_t n)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const { return type_ == Type::kNumber; }
  bool isString() const { return type_ == Type::kString; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }

  /// Typed accessors; throw Error on type mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;

  // --- array ----------------------------------------------------------
  /// Appends to an array (must be kArray).
  Json& push(Json value);
  std::size_t size() const;
  const Json& at(std::size_t index) const;

  // --- object ---------------------------------------------------------
  /// Sets a key on an object (must be kObject); replaces existing.
  Json& set(std::string key, Json value);
  /// Member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  /// Member lookup; throws Error when absent.
  const Json& get(std::string_view key) const;
  /// Ordered key list of an object.
  const std::vector<std::string>& keys() const { return keys_; }

  /// Serialises; indent > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Parses text; returns nullopt with `error` set on malformed input.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::string> keys_;
  std::map<std::string, Json> members_;
};

}  // namespace ancstr
