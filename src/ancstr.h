// Umbrella header: the library's public API in one include.
//
//   #include "ancstr.h"
//
// pulls in the netlist model + SPICE I/O, the end-to-end Pipeline, the
// detector/embedding primitives, groups/arrays post-processing, constraint
// file I/O, the evaluation utilities, and both baselines.
#pragma once

#include "baselines/ged.h"
#include "baselines/s3det.h"
#include "baselines/sfa.h"
#include "core/arrays.h"
#include "core/candidates.h"
#include "core/circuit_hash.h"
#include "core/constraint_check.h"
#include "core/constraint_io.h"
#include "core/detector.h"
#include "core/embedding.h"
#include "core/engine.h"
#include "core/features.h"
#include "core/graph_builder.h"
#include "core/groups.h"
#include "core/library_diff.h"
#include "core/model.h"
#include "core/model_io.h"
#include "core/pipeline.h"
#include "core/sampler.h"
#include "core/trainer.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/roc.h"
#include "netlist/builder.h"
#include "netlist/flatten.h"
#include "netlist/manifest.h"
#include "netlist/netlist.h"
#include "netlist/spectre_parser.h"
#include "netlist/spice_parser.h"
#include "netlist/spice_writer.h"
#include "place/pnr.h"
#include "place/svg.h"
#include "util/metrics.h"
#include "util/report.h"
#include "util/trace.h"
