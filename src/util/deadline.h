// Cooperative per-request deadlines for the serving path
// (docs/robustness.md, "Deadlines and admission control").
//
// A Deadline is a point in steady-clock time a request must not run past;
// a DeadlineToken is the per-request object serving code carries and
// consults at phase boundaries. Checks are cooperative — nothing is
// preempted — so the guarantee is "no new phase starts after expiry", and
// the latency bound is the deadline plus one phase. Expiry never yields a
// partial result: the checkpoint throws DeadlineError, which the serving
// layer turns into a coded diagnostic ([engine.deadline_exceeded]) and an
// empty result under a fail-soft sink, or propagates typed in strict mode
// (core/engine.h).
//
// A default-constructed Deadline is unarmed and never expires, so passing
// ExtractOptions without a deadline costs nothing on the hot path.
#pragma once

#include <chrono>
#include <limits>
#include <string>

#include "util/error.h"
#include "util/metrics.h"

namespace ancstr::util {

/// A request deadline was exceeded at a cooperative checkpoint. Distinct
/// from Error subclasses that mean "bad input": the input may be perfectly
/// valid, the time budget simply ran out.
class DeadlineError : public Error {
 public:
  using Error::Error;
};

/// An absolute steady-clock expiry time, or "unarmed" (never expires).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unarmed: expired() is always false.
  Deadline() = default;

  /// Expires `seconds` from now (<= 0 means already expired).
  static Deadline afterSeconds(double seconds) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }

  /// Expires at the given steady-clock time point.
  static Deadline at(Clock::time_point when) { return Deadline(when); }

  bool armed() const { return armed_; }

  bool expired() const { return armed_ && Clock::now() >= when_; }

  /// Seconds until expiry (negative once past it); +inf when unarmed.
  double remainingSeconds() const {
    if (!armed_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(when_ - Clock::now()).count();
  }

 private:
  explicit Deadline(Clock::time_point when) : when_(when), armed_(true) {}

  Clock::time_point when_{};
  bool armed_ = false;
};

/// The per-request handle serving code consults at phase boundaries.
/// Wraps the deadline with the process-wide engine.deadline.* counters so
/// every checkpoint is observable (docs/observability.md).
class DeadlineToken {
 public:
  explicit DeadlineToken(Deadline deadline = {}) : deadline_(deadline) {}

  bool armed() const { return deadline_.armed(); }
  const Deadline& deadline() const { return deadline_; }

  /// One cooperative check. Returns normally while time remains; throws
  /// DeadlineError (naming `phase`) once the deadline has passed. Unarmed
  /// tokens return immediately without touching the clock or counters.
  void checkpoint(const char* phase) const {
    if (!deadline_.armed()) return;
    static metrics::Counter& checks =
        metrics::Registry::instance().counter("engine.deadline.checks");
    static metrics::Counter& expired =
        metrics::Registry::instance().counter("engine.deadline.expired");
    checks.add();
    if (deadline_.expired()) {
      expired.add();
      throw DeadlineError(std::string("deadline exceeded at ") + phase);
    }
  }

 private:
  Deadline deadline_;
};

}  // namespace ancstr::util
