// Constraint-driven analog placement by simulated annealing.
//
// Symmetry constraints are enforced *by construction*: each symmetric
// pair's right member mirrors its left member about the axis, and
// self-symmetric cells stay centred, so every visited state is perfectly
// symmetric for the constrained modules. Cost = wirelength + overlap
// penalty. This mirrors how analog P&R engines (the paper's downstream,
// Fig. 1) consume the extracted constraints.
#pragma once

#include "place/placement.h"
#include "util/rng.h"

namespace ancstr::place {

struct AnnealOptions {
  int iterations = 30000;
  double tStart = 30.0;
  double tEnd = 0.05;
  double wirelengthWeight = 1.0;
  double overlapWeight = 30.0;
  std::uint64_t seed = 1;
};

/// Result of one annealing run.
struct AnnealResult {
  PlacementSolution solution;
  double wirelength = 0.0;
  double overlap = 0.0;
  double cost = 0.0;
  int acceptedMoves = 0;
};

/// Places `problem`'s cells about a vertical axis at x = 0, honouring its
/// symmetricPairs / selfSymmetric constraints exactly. Deterministic for
/// a given options.seed.
AnnealResult anneal(const PlacementProblem& problem,
                    const AnnealOptions& options = {});

}  // namespace ancstr::place
