#!/usr/bin/env python3
"""Validates an ancstr run-ledger file (extract --ledger-out).

A ledger is JSON-lines: one wide-event object per extraction request
(docs/observability.md, "Run ledger"; util/run_ledger.h). Every line must
carry the exact schema-v2 top-level key sequence — key ORDER is part of the
contract, same as BENCH.json — plus well-formed values:

  * requestId         positive integer
  * designHash        32 lowercase hex chars; "" only when outcome != "ok"
  * cacheOutcome      mem_hit | disk_hit | cold | none
  * outcome           ok | degraded | deadline_exceeded |
                      admission_rejected | error
  * kernel            scalar | avx2 | avx512 (nn kernel dispatch; v2)
  * constraintsTotal  == sum of the per-type constraints counts
  * phases            non-negative numbers
  * wallSeconds / unixTimeSeconds  non-negative numbers

Exit 0 when every line validates, 1 otherwise. Usage:

    check_ledger.py LEDGER [--expect N] [--expect-cache-outcome OUTCOME]

--expect fails unless the file holds exactly N records; --expect-cache-outcome
fails unless every record's cacheOutcome matches (e.g. disk_hit for a
restart-warm rerun over a persistent cache directory).
"""
import json
import re
import sys

KEY_ORDER = [
    "schemaVersion", "requestId", "correlationId", "designHash", "devices",
    "nets", "hierarchyNodes", "cacheOutcome", "blockCacheHits",
    "blockCacheMisses", "outcome", "kernel", "constraintsTotal",
    "constraints", "diagnostics", "phases", "wallSeconds",
    "peakRssDeltaBytes", "unixTimeSeconds",
]
SCHEMA_VERSION = 2
CACHE_OUTCOMES = {"mem_hit", "disk_hit", "cold", "none"}
OUTCOMES = {"ok", "degraded", "deadline_exceeded", "admission_rejected",
            "error"}
KERNELS = {"scalar", "avx2", "avx512"}
HASH_RE = re.compile(r"^[0-9a-f]{32}$")


def check_record(record, keys, line_no):
    """Returns a list of error strings for one parsed ledger line."""
    errors = []
    if keys != KEY_ORDER:
        errors.append(f"line {line_no}: key order {keys} != schema order")
        return errors  # positional checks below assume the schema order
    if record["schemaVersion"] != SCHEMA_VERSION:
        errors.append(f"line {line_no}: schemaVersion "
                      f"{record['schemaVersion']!r}, expected "
                      f"{SCHEMA_VERSION}")
    if not isinstance(record["requestId"], int) or record["requestId"] <= 0:
        errors.append(f"line {line_no}: requestId "
                      f"{record['requestId']!r} not a positive integer")
    if not isinstance(record["correlationId"], str):
        errors.append(f"line {line_no}: correlationId not a string")
    outcome = record["outcome"]
    if outcome not in OUTCOMES:
        errors.append(f"line {line_no}: outcome {outcome!r} not in "
                      f"{sorted(OUTCOMES)}")
    design_hash = record["designHash"]
    if not isinstance(design_hash, str) or \
            (design_hash and not HASH_RE.match(design_hash)):
        errors.append(f"line {line_no}: designHash {design_hash!r} is not "
                      f"32 lowercase hex chars")
    elif not design_hash and outcome == "ok":
        errors.append(f"line {line_no}: outcome 'ok' with empty designHash")
    if record["kernel"] not in KERNELS:
        errors.append(f"line {line_no}: kernel {record['kernel']!r} not in "
                      f"{sorted(KERNELS)}")
    if record["cacheOutcome"] not in CACHE_OUTCOMES:
        errors.append(f"line {line_no}: cacheOutcome "
                      f"{record['cacheOutcome']!r} not in "
                      f"{sorted(CACHE_OUTCOMES)}")
    for key in ("devices", "nets", "hierarchyNodes", "blockCacheHits",
                "blockCacheMisses", "constraintsTotal", "peakRssDeltaBytes"):
        if not isinstance(record[key], int) or record[key] < 0:
            errors.append(f"line {line_no}: {key} {record[key]!r} not a "
                          f"non-negative integer")
    for key in ("constraints", "diagnostics", "phases"):
        if not isinstance(record[key], dict):
            errors.append(f"line {line_no}: {key} is not an object")
    if isinstance(record["constraints"], dict):
        total = sum(v for v in record["constraints"].values()
                    if isinstance(v, int))
        if total != record["constraintsTotal"]:
            errors.append(f"line {line_no}: constraintsTotal "
                          f"{record['constraintsTotal']} != sum of "
                          f"constraints counts {total}")
    if isinstance(record["phases"], dict):
        for name, seconds in record["phases"].items():
            if not isinstance(seconds, (int, float)) or seconds < 0:
                errors.append(f"line {line_no}: phase {name!r} timing "
                              f"{seconds!r} not a non-negative number")
    for key in ("wallSeconds", "unixTimeSeconds"):
        if not isinstance(record[key], (int, float)) or record[key] < 0:
            errors.append(f"line {line_no}: {key} {record[key]!r} not a "
                          f"non-negative number")
    return errors


def main(argv):
    args = list(argv[1:])
    expect = None
    expect_cache = None
    if "--expect" in args:
        i = args.index("--expect")
        expect = int(args[i + 1])
        del args[i:i + 2]
    if "--expect-cache-outcome" in args:
        i = args.index("--expect-cache-outcome")
        expect_cache = args[i + 1]
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 1
    path = args[0]

    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        print(f"FAIL: cannot read {path}: {err}", file=sys.stderr)
        return 1

    records = []
    errors = []
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"line {line_no}: blank line")
            continue
        keys = []

        def note_keys(pairs, keys=keys):
            keys.extend(k for k, _ in pairs)
            return dict(pairs)

        try:
            record = json.loads(line, object_pairs_hook=note_keys)
        except json.JSONDecodeError as err:
            errors.append(f"line {line_no}: invalid JSON: {err}")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {line_no}: not a JSON object")
            continue
        # object_pairs_hook fires for nested objects too; the top-level
        # object's keys are the last len(record) appended.
        top_keys = keys[-len(record):] if record else []
        errors.extend(check_record(record, top_keys, line_no))
        records.append(record)

    if expect is not None and len(records) != expect:
        errors.append(f"expected {expect} records, found {len(records)}")
    if expect_cache is not None:
        bad = [i + 1 for i, r in enumerate(records)
               if r.get("cacheOutcome") != expect_cache]
        if bad:
            errors.append(f"records at lines {bad} lack cacheOutcome "
                          f"{expect_cache!r}")

    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    print(f"OK: {len(records)} schema-valid ledger record(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
