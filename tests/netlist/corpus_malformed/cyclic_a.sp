* malformed corpus: include cycle a -> b -> a
.include "cyclic_b.sp"
r1 a b 1k
