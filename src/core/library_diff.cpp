#include "core/library_diff.h"

#include <algorithm>
#include <unordered_set>

#include "core/circuit_hash.h"
#include "util/error.h"

namespace ancstr {

namespace {

constexpr std::uint64_t kConfigSchemaVersion = 1;

/// Classifies masters by merging two name-sorted manifest entry lists.
std::vector<MasterDelta> classifyMasters(
    const std::vector<ManifestEntry>& oldMasters,
    const std::vector<ManifestEntry>& newMasters) {
  std::vector<MasterDelta> out;
  out.reserve(std::max(oldMasters.size(), newMasters.size()));
  std::size_t i = 0, j = 0;
  while (i < oldMasters.size() || j < newMasters.size()) {
    if (j == newMasters.size() ||
        (i < oldMasters.size() && oldMasters[i].name < newMasters[j].name)) {
      out.push_back(MasterDelta{oldMasters[i].name, MasterChange::kRemoved,
                                oldMasters[i].hash, {}});
      ++i;
    } else if (i == oldMasters.size() ||
               newMasters[j].name < oldMasters[i].name) {
      out.push_back(MasterDelta{newMasters[j].name, MasterChange::kAdded,
                                {}, newMasters[j].hash});
      ++j;
    } else {
      const MasterChange change = oldMasters[i].hash == newMasters[j].hash
                                      ? MasterChange::kUnchanged
                                      : MasterChange::kModified;
      out.push_back(MasterDelta{newMasters[j].name, change,
                                oldMasters[i].hash, newMasters[j].hash});
      ++i;
      ++j;
    }
  }
  return out;
}

/// Fills the node/device dirtiness fields of `diff` by testing each new
/// subtree hash against the baseline set. A device is reusable when its
/// owner or any ancestor node is clean (a clean ancestor's subtree
/// serialization covers the device byte-for-byte).
void classifyNodes(const FlatDesign& newDesign,
                   const std::vector<util::StructuralHash>& newHashes,
                   const std::unordered_set<util::StructuralHash>& baseline,
                   LibraryDiff* diff) {
  const std::size_t nodeCount = newDesign.hierarchy().size();
  diff->dirtyNode.assign(nodeCount, true);
  std::vector<char> covered(nodeCount, 0);
  for (HierNodeId id = 0; id < nodeCount; ++id) {
    const bool clean = baseline.contains(newHashes[id]);
    diff->dirtyNode[id] = !clean;
    clean ? ++diff->cleanNodes : ++diff->dirtyNodes;
    // Hierarchy ids are topological (parent < child except the root's
    // self-parent), so coverage propagates in one forward pass.
    const HierNodeId parent = newDesign.node(id).parent;
    covered[id] = clean || (parent != id && covered[parent]) ? 1 : 0;
  }
  for (const FlatDevice& dev : newDesign.devices()) {
    covered[dev.owner] ? ++diff->reusableDevices : ++diff->dirtyDevices;
  }
}

LibraryDiff diffAgainstHashes(
    const FlatDesign& newDesign, const GraphBuildOptions& graph,
    const FeatureConfig& features,
    const std::unordered_set<util::StructuralHash>& baselineSubtrees,
    const util::StructuralHash& baselineDesign, bool baselineUsable) {
  LibraryDiff diff;
  const std::vector<util::StructuralHash> newHashes =
      subtreeHashes(newDesign, graph, features);
  classifyNodes(newDesign, newHashes,
                baselineUsable
                    ? baselineSubtrees
                    : std::unordered_set<util::StructuralHash>{},
                &diff);
  diff.designUnchanged =
      baselineUsable && !(baselineDesign == util::StructuralHash{}) &&
      structuralHash(newDesign, graph, features) == baselineDesign;
  return diff;
}

}  // namespace

const char* toString(MasterChange change) {
  switch (change) {
    case MasterChange::kUnchanged: return "unchanged";
    case MasterChange::kModified: return "modified";
    case MasterChange::kAdded: return "added";
    case MasterChange::kRemoved: return "removed";
  }
  return "unknown";
}

std::size_t LibraryDiff::changedMasters() const {
  std::size_t n = 0;
  for (const MasterDelta& delta : masters) {
    if (delta.change != MasterChange::kUnchanged) ++n;
  }
  return n;
}

util::StructuralHash extractionConfigHash(const GraphBuildOptions& graph,
                                          const FeatureConfig& features) {
  util::StructuralHasher h;
  h.add(kConfigSchemaVersion);
  h.addBool(graph.includeBulkPins);
  h.addSize(graph.maxNetDegree);
  h.addBool(graph.collapseEdgeTypes);
  h.addBool(features.useGeometry);
  h.addBool(features.useLayers);
  return h.finish();
}

std::vector<util::StructuralHash> subtreeHashes(
    const FlatDesign& design, const GraphBuildOptions& graph,
    const FeatureConfig& features) {
  std::vector<util::StructuralHash> out(design.hierarchy().size());
  for (HierNodeId id = 0; id < design.hierarchy().size(); ++id) {
    const std::vector<FlatDeviceId> subset = design.subtreeDevices(id);
    out[id] = structuralHash(design, subset, graph, features);
  }
  return out;
}

LibraryDiff diffDesigns(const FlatDesign& oldDesign,
                        const FlatDesign& newDesign,
                        const GraphBuildOptions& graph,
                        const FeatureConfig& features) {
  const std::vector<util::StructuralHash> oldHashes =
      subtreeHashes(oldDesign, graph, features);
  const std::unordered_set<util::StructuralHash> baseline(oldHashes.begin(),
                                                          oldHashes.end());
  return diffAgainstHashes(newDesign, graph, features, baseline,
                           structuralHash(oldDesign, graph, features),
                           /*baselineUsable=*/true);
}

LibraryDiff diffPrehashed(const FlatDesign& newDesign,
                          const std::vector<util::StructuralHash>& oldSubtrees,
                          const util::StructuralHash& oldDesignHash,
                          const std::vector<util::StructuralHash>& newSubtrees,
                          const util::StructuralHash& newDesignHash) {
  ANCSTR_ASSERT(newSubtrees.size() == newDesign.hierarchy().size());
  LibraryDiff diff;
  const std::unordered_set<util::StructuralHash> baseline(oldSubtrees.begin(),
                                                          oldSubtrees.end());
  classifyNodes(newDesign, newSubtrees, baseline, &diff);
  diff.designUnchanged = !(oldDesignHash == util::StructuralHash{}) &&
                         newDesignHash == oldDesignHash;
  return diff;
}

std::vector<MasterDelta> diffMasters(const Library& oldLib,
                                     const Library& newLib) {
  return classifyMasters(buildNetlistManifest(oldLib).masters,
                         buildNetlistManifest(newLib).masters);
}

LibraryDiff diffLibraries(const Library& oldLib, const Library& newLib,
                          const GraphBuildOptions& graph,
                          const FeatureConfig& features) {
  const FlatDesign oldDesign = FlatDesign::elaborate(oldLib);
  const FlatDesign newDesign = FlatDesign::elaborate(newLib);
  LibraryDiff diff = diffDesigns(oldDesign, newDesign, graph, features);
  diff.masters = classifyMasters(buildNetlistManifest(oldLib).masters,
                                 buildNetlistManifest(newLib).masters);
  return diff;
}

DesignManifest buildManifest(const Library& lib,
                             const GraphBuildOptions& graph,
                             const FeatureConfig& features) {
  DesignManifest manifest = buildNetlistManifest(lib);
  manifest.configHash = extractionConfigHash(graph, features);
  const FlatDesign design = FlatDesign::elaborate(lib);
  manifest.designHash = structuralHash(design, graph, features);
  manifest.subtreeHashes = subtreeHashes(design, graph, features);
  std::sort(manifest.subtreeHashes.begin(), manifest.subtreeHashes.end(),
            [](const util::StructuralHash& a, const util::StructuralHash& b) {
              return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
            });
  manifest.subtreeHashes.erase(
      std::unique(manifest.subtreeHashes.begin(),
                  manifest.subtreeHashes.end()),
      manifest.subtreeHashes.end());
  return manifest;
}

LibraryDiff diffManifest(const DesignManifest& baseline,
                         const Library& newLib,
                         const GraphBuildOptions& graph,
                         const FeatureConfig& features) {
  const FlatDesign newDesign = FlatDesign::elaborate(newLib);
  const bool configMatches =
      baseline.configHash == extractionConfigHash(graph, features);
  const bool usable = configMatches && !baseline.subtreeHashes.empty();
  const std::unordered_set<util::StructuralHash> subtrees(
      baseline.subtreeHashes.begin(), baseline.subtreeHashes.end());
  LibraryDiff diff =
      diffAgainstHashes(newDesign, graph, features, subtrees,
                        configMatches ? baseline.designHash
                                      : util::StructuralHash{},
                        usable);
  diff.masters = classifyMasters(baseline.masters,
                                 buildNetlistManifest(newLib).masters);
  return diff;
}

}  // namespace ancstr
