#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace ancstr {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::asBool() const {
  if (type_ != Type::kBool) throw Error("Json: not a bool");
  return bool_;
}

double Json::asNumber() const {
  if (type_ != Type::kNumber) throw Error("Json: not a number");
  return number_;
}

const std::string& Json::asString() const {
  if (type_ != Type::kString) throw Error("Json: not a string");
  return string_;
}

Json& Json::push(Json value) {
  if (type_ != Type::kArray) throw Error("Json: push on non-array");
  array_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return keys_.size();
  throw Error("Json: size() on scalar");
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) throw Error("Json: at() on non-array");
  if (index >= array_.size()) throw Error("Json: index out of range");
  return array_[index];
}

Json& Json::set(std::string key, Json value) {
  if (type_ != Type::kObject) throw Error("Json: set on non-object");
  if (members_.find(key) == members_.end()) keys_.push_back(key);
  members_[std::move(key)] = std::move(value);
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = members_.find(std::string(key));
  return it == members_.end() ? nullptr : &it->second;
}

const Json& Json::get(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr) {
    throw Error("Json: missing key '" + std::string(key) + "'");
  }
  return *found;
}

namespace {

void escapeString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void appendNumber(std::string& out, double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

void Json::dumpTo(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          (static_cast<std::size_t>(depth) + 1),
                                      ' ')
                 : "";
  const std::string padEnd =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          static_cast<std::size_t>(depth),
                                      ' ')
                 : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: appendNumber(out, number_); break;
    case Type::kString: escapeString(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out.push_back(',');
        out += pad;
        array_[i].dumpTo(out, indent, depth + 1);
      }
      out += padEnd;
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (keys_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (i) out.push_back(',');
        out += pad;
        escapeString(out, keys_[i]);
        out += indent > 0 ? ": " : ":";
        members_.at(keys_[i]).dumpTo(out, indent, depth + 1);
      }
      out += padEnd;
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    auto v = parseValue();
    skipSpace();
    if (!v || pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "JSON parse error at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parseValue() {
    skipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') {
      auto s = parseString();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json(nullptr);
    return parseNumber();
  }

  std::optional<Json> parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      return std::nullopt;
    }
    return Json(value);
  }

  std::optional<std::string> parseString() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return std::nullopt;
              }
            }
            // ASCII only; wider code points are passed through as '?'.
            out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parseArray() {
    if (!consume('[')) return std::nullopt;
    Json arr = Json::array();
    skipSpace();
    if (consume(']')) return arr;
    while (true) {
      auto v = parseValue();
      if (!v) return std::nullopt;
      arr.push(std::move(*v));
      if (consume(']')) return arr;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> parseObject() {
    if (!consume('{')) return std::nullopt;
    Json obj = Json::object();
    skipSpace();
    if (consume('}')) return obj;
    while (true) {
      skipSpace();
      auto key = parseString();
      if (!key || !consume(':')) return std::nullopt;
      auto v = parseValue();
      if (!v) return std::nullopt;
      obj.set(std::move(*key), std::move(*v));
      if (consume('}')) return obj;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return JsonParser(text).run(error);
}

}  // namespace ancstr
