// Heterogeneous directed multigraph (paper Section IV-A).
//
// Vertices are primitive devices; a directed edge (u, v, tau) records that
// some net connects u to port type tau of v. Parallel edges are permitted
// (multigraph). The edge type set P = {gate, drain, source, passive} has
// exactly four members, matching |W| = 4 in Eq. 1.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sparse.h"

namespace ancstr {

/// Port type of the *target* pin of a directed edge (the paper's tau_v).
enum class EdgeType : std::uint8_t {
  kGate = 0,
  kDrain,
  kSource,
  kPassive,
};

inline constexpr std::size_t kNumEdgeTypes = 4;

/// One directed typed edge.
struct HeteroEdge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  EdgeType type = EdgeType::kPassive;
};

class SimpleDigraph;

/// Immutable-size heterogeneous multigraph over `numVertices` vertices.
class HeteroMultigraph {
 public:
  explicit HeteroMultigraph(std::size_t numVertices);

  std::size_t numVertices() const { return inEdges_.size(); }
  std::size_t numEdges() const { return edges_.size(); }
  const std::vector<HeteroEdge>& edges() const { return edges_; }

  /// Adds edge (src, dst, type); parallel duplicates are allowed.
  void addEdge(std::uint32_t src, std::uint32_t dst, EdgeType type);

  /// Edge indices entering / leaving `v`.
  const std::vector<std::uint32_t>& inEdges(std::uint32_t v) const {
    return inEdges_.at(v);
  }
  const std::vector<std::uint32_t>& outEdges(std::uint32_t v) const {
    return outEdges_.at(v);
  }

  /// Distinct in-neighbours of `v` (parallel edges collapsed), sorted.
  std::vector<std::uint32_t> inNeighbors(std::uint32_t v) const;

  /// In-adjacency operator for one edge type: rows = dst, cols = src,
  /// entry = multiplicity. Message passing computes M = A_tau * H.
  nn::SparseMatrix inAdjacency(EdgeType type) const;

  /// Paper Algorithm 2 lines 1-4: drops edge types and parallel edges,
  /// keeping direction (at most one u->v edge).
  SimpleDigraph simplified() const;

  /// Count of edges of each type (diagnostics / tests).
  std::vector<std::size_t> edgeTypeHistogram() const;

 private:
  std::vector<HeteroEdge> edges_;
  std::vector<std::vector<std::uint32_t>> inEdges_;
  std::vector<std::vector<std::uint32_t>> outEdges_;
};

/// Lower-case edge-type name ("gate", "drain", "source", "passive").
const char* edgeTypeName(EdgeType t) noexcept;

}  // namespace ancstr
