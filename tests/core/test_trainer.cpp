#include "core/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/features.h"
#include "netlist/builder.h"

namespace ancstr {
namespace {

PreparedGraph diffPairGraph() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"inp", "inn", "op", "on", "vb", "vdd", "vss"});
  b.nmos("m1", "op", "inp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "on", "inn", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("mt", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  // Symmetric current-source loads (gates on a shared bias net) so that
  // m1/m2 and c1/c2 have exactly isomorphic neighbourhoods.
  b.pmos("m3", "op", "vbp", "vdd", "vdd", 4e-6, 0.2e-6);
  b.pmos("m4", "on", "vbp", "vdd", "vdd", 4e-6, 0.2e-6);
  b.cap("c1", "op", "vss", 1e-14);
  b.cap("c2", "on", "vss", 1e-14);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("cell"));
  return prepareGraph(buildHeteroGraph(design), buildFeatureMatrix(design));
}

TEST(Trainer, LossDecreasesOverTraining) {
  Rng rng(1);
  GnnModel model(GnnConfig{}, rng);
  std::vector<PreparedGraph> corpus;
  corpus.push_back(diffPairGraph());
  TrainConfig config;
  config.epochs = 40;
  config.learningRate = 5e-3;
  const TrainStats stats = trainUnsupervised(model, corpus, config, rng);
  ASSERT_EQ(stats.epochLoss.size(), 40u);
  // Average of last 5 epochs well below average of first 5.
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 5; ++i) {
    early += stats.epochLoss[static_cast<std::size_t>(i)];
    late += stats.epochLoss[stats.epochLoss.size() - 1 -
                            static_cast<std::size_t>(i)];
  }
  EXPECT_LT(late, early);
}

TEST(Trainer, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    GnnModel model(GnnConfig{}, rng);
    std::vector<PreparedGraph> corpus;
    corpus.push_back(diffPairGraph());
    TrainConfig config;
    config.epochs = 5;
    trainUnsupervised(model, corpus, config, rng);
    return model.embed(corpus[0]);
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Trainer, SymmetryPreservedAfterTraining) {
  // Training must not break the guarantee that isomorphic vertices embed
  // identically (weights are shared, inputs identical).
  Rng rng(2);
  GnnModel model(GnnConfig{}, rng);
  std::vector<PreparedGraph> corpus;
  corpus.push_back(diffPairGraph());
  TrainConfig config;
  config.epochs = 15;
  trainUnsupervised(model, corpus, config, rng);
  const nn::Matrix z = model.embed(corpus[0]);
  for (std::size_t c = 0; c < z.cols(); ++c) {
    EXPECT_NEAR(z(0, c), z(1, c), 1e-9);  // m1 vs m2
    EXPECT_NEAR(z(5, c), z(6, c), 1e-9);  // c1 vs c2
  }
}

TEST(Trainer, EmptyCorpusIsANoOp) {
  Rng rng(3);
  GnnModel model(GnnConfig{}, rng);
  TrainConfig config;
  config.epochs = 3;
  const TrainStats stats = trainUnsupervised(model, {}, config, rng);
  EXPECT_EQ(stats.epochLoss.size(), 3u);
  for (const double l : stats.epochLoss) EXPECT_DOUBLE_EQ(l, 0.0);
}

TEST(Trainer, MultiGraphCorpus) {
  Rng rng(4);
  GnnModel model(GnnConfig{}, rng);
  std::vector<PreparedGraph> corpus;
  corpus.push_back(diffPairGraph());
  corpus.push_back(diffPairGraph());
  corpus.push_back(diffPairGraph());
  TrainConfig config;
  config.epochs = 3;
  const TrainStats stats = trainUnsupervised(model, corpus, config, rng);
  EXPECT_EQ(stats.epochLoss.size(), 3u);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(Trainer, ClippingKeepsTrainingFinite) {
  Rng rng(5);
  GnnModel model(GnnConfig{}, rng);
  std::vector<PreparedGraph> corpus;
  corpus.push_back(diffPairGraph());
  TrainConfig config;
  config.epochs = 10;
  config.learningRate = 0.5;  // aggressive
  config.clipNorm = 1.0;
  const TrainStats stats = trainUnsupervised(model, corpus, config, rng);
  for (const double l : stats.epochLoss) EXPECT_TRUE(std::isfinite(l));
  EXPECT_TRUE(std::isfinite(model.embed(corpus[0]).maxAbs()));
}

}  // namespace
}  // namespace ancstr
