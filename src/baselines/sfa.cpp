#include "baselines/sfa.h"

#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ancstr::sfa {
namespace {

bool relClose(double a, double b, double tolerance) {
  const double denom = std::max(std::fabs(a), std::fabs(b));
  if (denom == 0.0) return true;
  return std::fabs(a - b) / denom <= tolerance;
}

/// Net of the first pin with the given function, or kInvalidId.
FlatNetId pinNet(const FlatDevice& dev, PinFunction fn) {
  for (const auto& [function, net] : dev.pins) {
    if (function == fn) return net;
  }
  return kInvalidId;
}

using DevicePairKey = std::pair<FlatDeviceId, FlatDeviceId>;

DevicePairKey makeKey(FlatDeviceId a, FlatDeviceId b) {
  return a < b ? DevicePairKey{a, b} : DevicePairKey{b, a};
}

class SfaEngine {
 public:
  SfaEngine(const FlatDesign& design, const SfaConfig& config)
      : design_(design), config_(config) {}

  /// Marks matched pairs among the leaf devices of one hierarchy node.
  std::set<DevicePairKey> run(const std::vector<FlatDeviceId>& devices) {
    matched_.clear();
    seedMosPatterns(devices);
    seedPassivePairs(devices);
    propagateSignalFlow(devices);
    return matched_;
  }

 private:
  bool sameTypeAndSize(const FlatDevice& a, const FlatDevice& b) const {
    return a.type == b.type && sizesMatch(a, b, config_.sizeTolerance);
  }

  void seedMosPatterns(const std::vector<FlatDeviceId>& devices) {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      const FlatDevice& a = design_.device(devices[i]);
      if (!isMos(a.type)) continue;
      const FlatNetId ga = pinNet(a, PinFunction::kGate);
      const FlatNetId da = pinNet(a, PinFunction::kDrain);
      const FlatNetId sa = pinNet(a, PinFunction::kSource);
      for (std::size_t j = i + 1; j < devices.size(); ++j) {
        const FlatDevice& b = design_.device(devices[j]);
        if (!isMos(b.type) || !sameTypeAndSize(a, b)) continue;
        const FlatNetId gb = pinNet(b, PinFunction::kGate);
        const FlatNetId db = pinNet(b, PinFunction::kDrain);
        const FlatNetId sb = pinNet(b, PinFunction::kSource);

        const bool diffPair = sa == sb && ga != gb && da != db;
        const bool crossCoupled = ga == db && gb == da;
        const bool mirrorPair = ga == gb && sa == sb;
        if (diffPair || crossCoupled || mirrorPair) {
          matched_.insert(makeKey(devices[i], devices[j]));
        }
      }
    }
  }

  void seedPassivePairs(const std::vector<FlatDeviceId>& devices) {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      const FlatDevice& a = design_.device(devices[i]);
      if (!isPassive(a.type)) continue;
      for (std::size_t j = i + 1; j < devices.size(); ++j) {
        const FlatDevice& b = design_.device(devices[j]);
        if (b.type != a.type) continue;
        if (!relClose(a.params.value, b.params.value,
                      config_.sizeTolerance)) {
          continue;
        }
        if (shareNet(a, b)) matched_.insert(makeKey(devices[i], devices[j]));
      }
    }
  }

  static bool shareNet(const FlatDevice& a, const FlatDevice& b) {
    for (const auto& [fa, na] : a.pins) {
      for (const auto& [fb, nb] : b.pins) {
        if (na == nb) return true;
      }
    }
    return false;
  }

  void propagateSignalFlow(const std::vector<FlatDeviceId>& devices) {
    // Index: net -> devices (within scope) whose gate sits on the net.
    std::unordered_map<FlatNetId, std::vector<FlatDeviceId>> gateOnNet;
    for (const FlatDeviceId id : devices) {
      const FlatDevice& dev = design_.device(id);
      if (!isMos(dev.type)) continue;
      const FlatNetId g = pinNet(dev, PinFunction::kGate);
      if (g != kInvalidId) gateOnNet[g].push_back(id);
    }

    for (int round = 0; round < config_.maxPropagationRounds; ++round) {
      std::set<DevicePairKey> fresh;
      for (const auto& [a, b] : matched_) {
        const FlatDevice& da = design_.device(a);
        const FlatDevice& db = design_.device(b);
        if (!isMos(da.type) || !isMos(db.type)) continue;
        const FlatNetId outA = pinNet(da, PinFunction::kDrain);
        const FlatNetId outB = pinNet(db, PinFunction::kDrain);
        if (outA == kInvalidId || outB == kInvalidId || outA == outB) {
          continue;
        }
        // Devices gated from the two sides of a matched pair match too
        // when type and sizing agree (signal-flow symmetry).
        const auto itA = gateOnNet.find(outA);
        const auto itB = gateOnNet.find(outB);
        if (itA == gateOnNet.end() || itB == gateOnNet.end()) continue;
        for (const FlatDeviceId ca : itA->second) {
          for (const FlatDeviceId cb : itB->second) {
            if (ca == cb) continue;
            const DevicePairKey key = makeKey(ca, cb);
            if (matched_.count(key) != 0) continue;
            if (sameTypeAndSize(design_.device(ca), design_.device(cb))) {
              fresh.insert(key);
            }
          }
        }
      }
      if (fresh.empty()) break;
      matched_.insert(fresh.begin(), fresh.end());
    }
  }

  const FlatDesign& design_;
  const SfaConfig& config_;
  std::set<DevicePairKey> matched_;
};

}  // namespace

bool sizesMatch(const FlatDevice& a, const FlatDevice& b, double tolerance) {
  if (isMos(a.type) && isMos(b.type)) {
    return relClose(a.params.w * a.params.nf * a.params.m,
                    b.params.w * b.params.nf * b.params.m, tolerance) &&
           relClose(a.params.l, b.params.l, tolerance);
  }
  return relClose(a.params.value, b.params.value, tolerance) &&
         relClose(a.params.w, b.params.w, tolerance) &&
         relClose(a.params.l, b.params.l, tolerance);
}

SfaResult detectDeviceConstraints(const FlatDesign& design, const Library& lib,
                                  const SfaConfig& config) {
  SfaResult result;
  static metrics::Counter& pairsCounter =
      metrics::Registry::instance().counter("sfa.pairs_scored");
  static metrics::Counter& matchedCounter =
      metrics::Registry::instance().counter("sfa.pairs_matched");
  const trace::TraceSpan span("baseline.sfa");
  const Stopwatch watch;

  // Matched sets are computed per hierarchy node over its direct devices,
  // mirroring MAGICAL's per-building-block analysis.
  std::unordered_map<HierNodeId, std::set<DevicePairKey>> matchedPerNode;
  SfaEngine engine(design, config);
  std::size_t matchedTotal = 0;
  for (const HierNode& node : design.hierarchy()) {
    if (!node.leafDevices.empty()) {
      const trace::TraceSpan nodeSpan("sfa.match_node");
      const auto it =
          matchedPerNode.emplace(node.id, engine.run(node.leafDevices)).first;
      matchedTotal += it->second.size();
    }
  }
  matchedCounter.add(matchedTotal);

  const CandidateSet candidates = enumerateCandidates(design, lib);
  for (const CandidatePair& pair : candidates.pairs) {
    if (pair.level != ConstraintLevel::kDevice) continue;
    ScoredCandidate scored;
    scored.pair = pair;
    const auto it = matchedPerNode.find(pair.hierarchy);
    const bool hit =
        it != matchedPerNode.end() &&
        it->second.count(makeKey(pair.a.id, pair.b.id)) != 0;
    scored.similarity = hit ? 1.0 : 0.0;
    scored.accepted = hit;
    result.scored.push_back(std::move(scored));
  }
  pairsCounter.add(result.scored.size());
  result.seconds = watch.seconds();
  return result;
}

}  // namespace ancstr::sfa
