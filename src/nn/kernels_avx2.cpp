// The only TU compiled with -mavx2 (plus -ffp-contract=off; see
// src/nn/CMakeLists.txt). When the toolchain cannot target AVX2 the table
// accessor returns null and dispatch falls back.
#include "nn/kernels_avx2.h"

namespace ancstr::nn::kdetail {

const KernelOps* avx2Ops() {
#if defined(__AVX2__)
  static const KernelOps ops{avx2::gemmAcc, avx2::gemmBatchAcc, avx2::gemv,
                             avx2::axpy};
  return &ops;
#else
  return nullptr;
#endif
}

}  // namespace ancstr::nn::kdetail
