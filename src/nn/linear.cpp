#include "nn/linear.h"

#include "nn/init.h"

namespace ancstr::nn {

Linear::Linear(std::size_t inDim, std::size_t outDim, bool withBias,
               Rng& rng) {
  weight_ = Tensor::param(xavierUniform(inDim, outDim, rng));
  if (withBias) bias_ = Tensor::param(Matrix(1, outDim));
}

Tensor Linear::forward(const Tensor& x) const {
  Tensor y = matmul(x, weight_);
  if (bias_.valid()) y = addRow(y, bias_);
  return y;
}

Matrix Linear::infer(const Matrix& x) const {
  Matrix y = x.matmul(weight_.value());
  if (bias_.valid()) {
    // Same per-element rounding as the tape's addRow.
    const Matrix& b = bias_.value();
    for (std::size_t r = 0; r < y.rows(); ++r) {
      for (std::size_t c = 0; c < y.cols(); ++c) y(r, c) += b(0, c);
    }
  }
  return y;
}

std::vector<Tensor> Linear::parameters() const {
  std::vector<Tensor> params{weight_};
  if (bias_.valid()) params.push_back(bias_);
  return params;
}

}  // namespace ancstr::nn
