#include "graph/multigraph.h"

#include <algorithm>

#include "graph/digraph.h"
#include "util/error.h"

namespace ancstr {

HeteroMultigraph::HeteroMultigraph(std::size_t numVertices)
    : inEdges_(numVertices), outEdges_(numVertices) {}

void HeteroMultigraph::addEdge(std::uint32_t src, std::uint32_t dst,
                               EdgeType type) {
  ANCSTR_ASSERT(src < numVertices() && dst < numVertices());
  const std::uint32_t idx = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(HeteroEdge{src, dst, type});
  outEdges_[src].push_back(idx);
  inEdges_[dst].push_back(idx);
}

std::vector<std::uint32_t> HeteroMultigraph::inNeighbors(
    std::uint32_t v) const {
  std::vector<std::uint32_t> out;
  out.reserve(inEdges_.at(v).size());
  for (const std::uint32_t e : inEdges_[v]) out.push_back(edges_[e].src);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

nn::SparseMatrix HeteroMultigraph::inAdjacency(EdgeType type) const {
  std::vector<nn::Triplet> triplets;
  for (const HeteroEdge& e : edges_) {
    if (e.type == type) triplets.push_back({e.dst, e.src, 1.0});
  }
  return nn::SparseMatrix(numVertices(), numVertices(), std::move(triplets));
}

SimpleDigraph HeteroMultigraph::simplified() const {
  SimpleDigraph g(numVertices());
  for (const HeteroEdge& e : edges_) g.addEdge(e.src, e.dst);
  return g;
}

std::vector<std::size_t> HeteroMultigraph::edgeTypeHistogram() const {
  std::vector<std::size_t> hist(kNumEdgeTypes, 0);
  for (const HeteroEdge& e : edges_) ++hist[static_cast<std::size_t>(e.type)];
  return hist;
}

const char* edgeTypeName(EdgeType t) noexcept {
  switch (t) {
    case EdgeType::kGate: return "gate";
    case EdgeType::kDrain: return "drain";
    case EdgeType::kSource: return "source";
    case EdgeType::kPassive: return "passive";
  }
  return "?";
}

}  // namespace ancstr
