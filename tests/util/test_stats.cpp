#include "util/stats.h"

#include <gtest/gtest.h>

namespace ancstr {
namespace {

TEST(KsStatistic, IdenticalSamplesGiveZero) {
  EXPECT_DOUBLE_EQ(ksStatistic({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(KsStatistic, DisjointSamplesGiveOne) {
  EXPECT_DOUBLE_EQ(ksStatistic({1, 2, 3}, {10, 11, 12}), 1.0);
}

TEST(KsStatistic, EmptyCases) {
  EXPECT_DOUBLE_EQ(ksStatistic({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ksStatistic({1.0}, {}), 1.0);
  EXPECT_DOUBLE_EQ(ksStatistic({}, {1.0}), 1.0);
}

TEST(KsStatistic, SymmetricInArguments) {
  const std::vector<double> a{0.1, 0.5, 0.9, 1.3};
  const std::vector<double> b{0.2, 0.6, 1.5};
  EXPECT_DOUBLE_EQ(ksStatistic(a, b), ksStatistic(b, a));
}

TEST(KsStatistic, KnownValue) {
  // F_a jumps at 1,2; F_b jumps at 1.5,2.5. At x=1: |0.5 - 0| = 0.5.
  EXPECT_NEAR(ksStatistic({1, 2}, {1.5, 2.5}), 0.5, 1e-12);
}

TEST(KsStatistic, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(ksStatistic({3, 1, 2}, {2, 3, 1}), 0.0);
}

TEST(KsStatistic, TiesHandled) {
  // Both CDFs jump together at shared values.
  EXPECT_DOUBLE_EQ(ksStatistic({1, 1, 2}, {1, 1, 2}), 0.0);
}

TEST(MeanStddev, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 6}), 1.632993161855452, 1e-12);
}

TEST(Median, OddEvenEmptyAndUnsorted) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(MedianAbsDeviation, KnownValuesAndDegenerateInputs) {
  EXPECT_DOUBLE_EQ(medianAbsDeviation({}), 0.0);
  EXPECT_DOUBLE_EQ(medianAbsDeviation({5.0}), 0.0);
  // median = 2, |x - 2| = {1, 0, 1} -> MAD = 1.
  EXPECT_DOUBLE_EQ(medianAbsDeviation({1, 2, 3}), 1.0);
  // Constant samples have zero spread.
  EXPECT_DOUBLE_EQ(medianAbsDeviation({4, 4, 4, 4}), 0.0);
  // Robust to one outlier: median = 2.5, deviations {1.5, .5, .5, 97.5}
  // -> MAD = 1.
  EXPECT_DOUBLE_EQ(medianAbsDeviation({1, 2, 3, 100}), 1.0);
}

}  // namespace
}  // namespace ancstr
