// Seed-stability study: the paper reports single numbers; this harness
// quantifies how much our reproduction's headline metrics move across
// training seeds (weight init + negative sampling + shuffling), which
// bounds how much of any paper-vs-measured gap is run-to-run noise.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "harness.h"
#include "util/stats.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

void run(BenchContext& ctx) {
  const auto corpus = fullCorpus();
  const std::vector<std::uint64_t> seeds{1, 7, 42, 1234, 98765};

  std::vector<double> sysF1, sysFpr, devF1, devFpr;
  for (const std::uint64_t seed : seeds) {
    RunReport trainReport;
    Pipeline pipeline =
        trainPipeline(corpus, paperConfig(60, seed), &trainReport);
    ctx.accumulateReport(trainReport);
    ConfusionCounts system, device;
    for (const auto& bench : corpus) {
      if (bench.category == "ADC") {
        system += evalOurs(pipeline, bench, ConstraintLevel::kSystem).counts;
      } else {
        device += evalOurs(pipeline, bench, ConstraintLevel::kDevice).counts;
      }
    }
    const Metrics sys = computeMetrics(system);
    const Metrics dev = computeMetrics(device);
    sysF1.push_back(sys.f1);
    sysFpr.push_back(sys.fpr);
    devF1.push_back(dev.f1);
    devFpr.push_back(dev.fpr);
    std::printf("seed %-6llu  sys F1 %.3f FPR %.3f | dev F1 %.3f FPR %.3f\n",
                static_cast<unsigned long long>(seed), sys.f1, sys.fpr,
                dev.f1, dev.fpr);
  }

  TextTable table;
  table.setHeader({"metric", "mean", "stddev", "min", "max"});
  auto addRow = [&](const char* name, const std::vector<double>& xs) {
    const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
    table.addRow({name, metricCell(mean(xs)), metricCell(stddev(xs)),
                  metricCell(*lo), metricCell(*hi)});
  };
  addRow("system F1", sysF1);
  addRow("system FPR", sysFpr);
  addRow("device F1", devF1);
  addRow("device FPR", devFpr);
  std::printf("\n=== Seed stability over %zu seeds ===\n", seeds.size());
  table.print(std::cout);
  ctx.setCounter("sys_f1.mean", mean(sysF1));
  ctx.setCounter("sys_f1.stddev", stddev(sysF1));
  ctx.setCounter("dev_f1.mean", mean(devF1));
  ctx.setCounter("dev_f1.stddev", stddev(devF1));
}

[[maybe_unused]] const bool kRegistered =
    registerBench("stability.seeds", run);

}  // namespace

ANCSTR_BENCH_MAIN("stability_seeds")
