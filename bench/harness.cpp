#include "harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "util/error.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/resource.h"
#include "util/stats.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ancstr::bench {

namespace {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

bool parseInt(std::string_view text, long long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const std::string copy(text);
  const long long value = std::strtoll(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

void printUsage(const std::string& binaryName) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --list             print case names and exit\n"
               "  --filter SUBSTR    run only cases whose name contains "
               "SUBSTR\n"
               "  --reps N           measured repetitions per case "
               "(default 1)\n"
               "  --warmup N         unmeasured warmup runs per case "
               "(default 0)\n"
               "  --threads N        worker threads for parallel cases "
               "(default: ANCSTR_THREADS or hardware)\n"
               "  --seed N           base seed; each case derives its own\n"
               "  --json-out PATH    write the BENCH.json report\n"
               "  --trace-out PATH   write a Chrome trace of the run\n"
               "  --spans-out PATH   write the span-tree JSON of the run\n",
               binaryName.c_str());
}

}  // namespace

BenchContext::BenchContext(std::uint64_t caseSeed, std::size_t threads)
    : rng_(caseSeed), caseSeed_(caseSeed), threads_(threads) {}

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry registry;
  return registry;
}

void BenchRegistry::add(std::string name, BenchFn fn) {
  for (const auto& [existing, unused] : cases_) {
    if (existing == name) {
      throw Error("bench: duplicate case name '" + name + "'");
    }
  }
  cases_.emplace_back(std::move(name), std::move(fn));
}

std::vector<std::string> BenchRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(cases_.size());
  for (const auto& [name, unused] : cases_) out.push_back(name);
  return out;
}

std::vector<benchio::BenchCaseResult> BenchRegistry::run(
    const BenchOptions& options) const {
  const std::size_t threads = util::resolveThreadCount(options.threads);
  std::vector<benchio::BenchCaseResult> results;
  for (const auto& [name, fn] : cases_) {
    if (!options.filter.empty() &&
        name.find(options.filter) == std::string::npos) {
      continue;
    }
    BenchContext ctx(options.seed ^ fnv1a64(name), threads);

    for (int i = 0; i < options.warmup; ++i) {
      ctx.rep_ = -1;
      ctx.rng_ = Rng(ctx.caseSeed());
      fn(ctx);
    }

    benchio::BenchCaseResult result;
    result.name = name;
    result.reps = options.reps;
    result.warmup = options.warmup;

    // Reports are kept per rep; only the one from the rep whose wall time
    // lands closest to the median survives into BENCH.json, so the phase
    // breakdown describes a representative run rather than an average of
    // mismatched ones. Metrics and resource deltas span all measured reps.
    std::vector<RunReport> repReports;
    const metrics::Snapshot metricsBefore =
        metrics::Registry::instance().snapshot();
    const util::ResourceSample resourceBefore = util::ResourceSample::now();
    for (int rep = 0; rep < options.reps; ++rep) {
      ctx.rep_ = rep;
      ctx.rng_ = Rng(ctx.caseSeed());
      ctx.report_ = RunReport{};
      const Stopwatch watch;
      fn(ctx);
      result.wallSeconds.push_back(watch.seconds());
      repReports.push_back(std::move(ctx.report_));
    }
    result.resource =
        util::ResourceSample::now().since(resourceBefore);
    result.counters = ctx.counters_;

    if (!repReports.empty()) {
      const double med = median(result.wallSeconds);
      std::size_t pick = 0;
      for (std::size_t i = 1; i < repReports.size(); ++i) {
        if (std::abs(result.wallSeconds[i] - med) <
            std::abs(result.wallSeconds[pick] - med)) {
          pick = i;
        }
      }
      result.report = std::move(repReports[pick]);
    }
    result.report.metrics =
        metrics::Registry::instance().snapshot().since(metricsBefore);
    results.push_back(std::move(result));
  }
  return results;
}

bool BenchRegistry::parseArgs(int argc, char** argv, BenchOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    long long n = 0;
    if (arg == "--list") {
      options->list = true;
    } else if (arg == "--filter") {
      const char* v = value();
      if (v == nullptr) return false;
      options->filter = v;
    } else if (arg == "--reps") {
      const char* v = value();
      if (v == nullptr || !parseInt(v, &n) || n < 1) return false;
      options->reps = static_cast<int>(n);
    } else if (arg == "--warmup") {
      const char* v = value();
      if (v == nullptr || !parseInt(v, &n) || n < 0) return false;
      options->warmup = static_cast<int>(n);
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr || !parseInt(v, &n) || n < 0) return false;
      options->threads = static_cast<std::size_t>(n);
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr || !parseInt(v, &n) || n < 0) return false;
      options->seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--json-out") {
      const char* v = value();
      if (v == nullptr) return false;
      options->jsonOut = v;
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr) return false;
      options->traceOut = v;
    } else if (arg == "--spans-out") {
      const char* v = value();
      if (v == nullptr) return false;
      options->spansOut = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n",
                   std::string(arg).c_str());
      return false;
    }
  }
  return true;
}

int BenchRegistry::runMain(int argc, char** argv,
                           const std::string& binaryName) const {
  BenchOptions options;
  if (!parseArgs(argc, argv, &options)) {
    printUsage(binaryName);
    return 2;
  }
  if (options.list) {
    for (const std::string& name : names()) std::printf("%s\n", name.c_str());
    return 0;
  }

  const bool wantTrace =
      !options.traceOut.empty() || !options.spansOut.empty();
  if (wantTrace) {
    trace::TraceCollector::instance().clear();
    trace::TraceCollector::instance().setEnabled(true);
  }

  const std::vector<benchio::BenchCaseResult> results = run(options);
  if (wantTrace) trace::TraceCollector::instance().setEnabled(false);
  if (results.empty()) {
    std::fprintf(stderr, "%s: no case matches filter '%s'\n",
                 binaryName.c_str(), options.filter.c_str());
    return 1;
  }

  for (const benchio::BenchCaseResult& result : results) {
    std::printf(
        "[bench] %-40s median %.6fs  mad %.6fs  (%d reps, %d warmup)\n",
        result.name.c_str(), result.medianWallSeconds(),
        result.madWallSeconds(), result.reps, result.warmup);
  }
  std::printf("[bench] peak RSS %.1f MiB, %llu allocations\n",
              static_cast<double>(util::peakRssBytes()) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(
                  util::memoryCounters().allocCount));

  benchio::BenchRunInfo info;
  info.binary = binaryName;
  info.threads = util::resolveThreadCount(options.threads);
  info.seed = options.seed;
  if (!options.jsonOut.empty()) {
    benchio::writeBenchJson(options.jsonOut, info, results);
    std::printf("[bench] wrote %s\n", options.jsonOut.c_str());
  }
  if (!options.traceOut.empty()) {
    trace::TraceCollector::instance().writeFile(options.traceOut);
    std::printf("[bench] wrote %s\n", options.traceOut.c_str());
  }
  if (!options.spansOut.empty()) {
    trace::TraceCollector::instance().writeSpanTreeFile(options.spansOut);
    std::printf("[bench] wrote %s\n", options.spansOut.c_str());
  }
  return 0;
}

bool registerBench(std::string name, BenchFn fn) {
  BenchRegistry::instance().add(std::move(name), std::move(fn));
  return true;
}

}  // namespace ancstr::bench
