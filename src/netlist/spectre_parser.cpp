#include "netlist/spectre_parser.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "netlist/expr.h"
#include "netlist/spice_parser.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/trace.h"

namespace ancstr {
namespace {

struct LogicalLine {
  std::string text;
  std::size_t line = 0;
};

/// Strips //-comments, *-comment lines, and joins '\' continuations.
std::vector<LogicalLine> toLogicalLines(std::string_view text) {
  std::vector<LogicalLine> out;
  std::istringstream in{std::string(text)};
  std::string raw;
  std::size_t lineNo = 0;
  bool continuing = false;
  while (std::getline(in, raw)) {
    ++lineNo;
    std::string_view sv = raw;
    if (const auto slashes = sv.find("//"); slashes != std::string_view::npos) {
      sv = sv.substr(0, slashes);
    }
    sv = str::trim(sv);
    if (!continuing && !sv.empty() && sv.front() == '*') continue;
    bool continues = false;
    if (!sv.empty() && sv.back() == '\\') {
      continues = true;
      sv = str::trim(sv.substr(0, sv.size() - 1));
    }
    if (continuing && !out.empty()) {
      if (!sv.empty()) {
        out.back().text += ' ';
        out.back().text += sv;
      }
    } else if (!sv.empty()) {
      out.push_back({std::string(sv), lineNo});
    }
    continuing = continues && (!out.empty());
  }
  return out;
}

/// Splits "name (n1 n2) master k=v" into name, nodes, master, params.
/// Parentheses around the node list are optional: without them, every
/// token before the first k=v except the last is a node, the last is the
/// master.
struct Card {
  std::string name;
  std::vector<std::string> nodes;
  std::string master;
  std::vector<std::pair<std::string, std::string>> params;
};

Card parseCard(const std::string& text, const std::string& file,
               std::size_t line) {
  Card card;
  const auto open = text.find('(');
  const auto close = text.find(')');
  std::vector<std::string> tail;
  if (open != std::string::npos) {
    if (close == std::string::npos || close < open) {
      throw ParseError(file, line, "unbalanced parentheses");
    }
    const auto head = str::splitTokens(text.substr(0, open));
    if (head.size() != 1) {
      throw ParseError(file, line, "expected 'name (nodes...) master ...'");
    }
    card.name = head[0];
    card.nodes = str::splitTokens(text.substr(open + 1, close - open - 1));
    tail = str::splitTokens(text.substr(close + 1));
  } else {
    tail = str::splitTokens(text);
    if (tail.size() < 2) throw ParseError(file, line, "malformed card");
    card.name = tail.front();
    tail.erase(tail.begin());
  }

  // tail: [nodes...] master [k=v...] — k=v tokens terminate the
  // positional part.
  std::vector<std::string> positional;
  for (const std::string& token : tail) {
    const auto [key, value] = str::splitFirst(token, '=');
    if (!value.empty()) {
      card.params.emplace_back(str::toLower(key), std::string(value));
    } else {
      positional.push_back(token);
    }
  }
  if (card.nodes.empty()) {
    if (positional.empty()) {
      throw ParseError(file, line, "card without a master");
    }
    card.master = positional.back();
    positional.pop_back();
    card.nodes = std::move(positional);
  } else {
    if (positional.size() != 1) {
      throw ParseError(file, line, "expected exactly one master after ()");
    }
    card.master = positional[0];
  }
  return card;
}

DeviceType spectrePrimitiveType(const std::string& master) {
  const std::string m = str::toLower(master);
  if (m == "resistor") return DeviceType::kResPoly;
  if (m == "capacitor") return DeviceType::kCapMom;
  if (m == "inductor") return DeviceType::kInd;
  if (m == "diode") return DeviceType::kDio;
  return deviceTypeFromModelName(m);
}

class SpectreParser {
 public:
  explicit SpectreParser(std::string_view fileName) : file_(fileName) {}

  Library run(std::string_view text) {
    for (const LogicalLine& ll : toLogicalLines(text)) parseLine(ll);
    if (inSubckt_) {
      throw ParseError(file_, subcktLine_, "missing 'ends'");
    }
    lib_.validate();
    return std::move(lib_);
  }

 private:
  void parseLine(const LogicalLine& ll) {
    const auto tokens = str::splitTokens(ll.text);
    ANCSTR_ASSERT(!tokens.empty());
    const std::string head = str::toLower(tokens[0]);

    if (head == "simulator" || head == "global" || head == "include" ||
        head == "save" || head == "option" || head == "options") {
      return;  // environment directives carry no structure we need
    }
    if (head == "subckt") {
      if (inSubckt_) {
        throw ParseError(file_, ll.line, "nested subckt not supported");
      }
      if (tokens.size() < 2) {
        throw ParseError(file_, ll.line, "subckt requires a name");
      }
      cur_ = lib_.addSubckt(tokens[1]);
      inSubckt_ = true;
      subcktLine_ = ll.line;
      params_.clear();
      // Ports: remaining tokens with parentheses stripped (but balanced).
      std::string rest;
      for (std::size_t i = 2; i < tokens.size(); ++i) rest += tokens[i] + " ";
      const auto opens = std::count(rest.begin(), rest.end(), '(');
      const auto closes = std::count(rest.begin(), rest.end(), ')');
      if (opens != closes) {
        throw ParseError(file_, ll.line, "unbalanced parentheses in subckt");
      }
      for (char& c : rest) {
        if (c == '(' || c == ')') c = ' ';
      }
      for (const std::string& port : str::splitTokens(rest)) {
        lib_.mutableSubckt(cur_).addNet(port, /*isPort=*/true);
      }
      return;
    }
    if (head == "ends") {
      if (!inSubckt_) throw ParseError(file_, ll.line, "ends without subckt");
      inSubckt_ = false;
      return;
    }
    if (head == "parameters") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = str::splitFirst(tokens[i], '=');
        if (value.empty()) {
          throw ParseError(file_, ll.line,
                           "parameter '" + tokens[i] + "' lacks a value");
        }
        const auto v = evalParamValue(value, params_);
        if (!v) {
          throw ParseError(file_, ll.line,
                           "cannot evaluate parameter '" + tokens[i] + "'");
        }
        params_[str::toLower(key)] = *v;
      }
      return;
    }
    parseDeviceOrInstance(ll);
  }

  SubcktDef& scope(const LogicalLine& ll) {
    if (inSubckt_) return lib_.mutableSubckt(cur_);
    if (topId_ == kInvalidId) {
      topId_ = lib_.addSubckt("top");
      lib_.setTop(topId_);
    }
    (void)ll;
    return lib_.mutableSubckt(topId_);
  }

  double evalOrThrow(const std::string& text, const LogicalLine& ll) {
    const auto v = evalParamValue(text, params_);
    if (!v) {
      throw ParseError(file_, ll.line, "cannot evaluate '" + text + "'");
    }
    return *v;
  }

  void parseDeviceOrInstance(const LogicalLine& ll) {
    const Card card = parseCard(ll.text, file_, ll.line);
    SubcktDef& def = scope(ll);

    if (const auto master = lib_.findSubckt(card.master)) {
      Instance instance;
      instance.name = card.name;
      instance.master = *master;
      for (const std::string& node : card.nodes) {
        instance.connections.push_back(def.addNet(node));
      }
      if (!card.params.empty()) {
        log::debug() << file_ << ":" << ll.line
                     << ": ignoring instance parameters on '" << card.name
                     << "'";
      }
      def.addInstance(std::move(instance));
      return;
    }

    Device dev;
    dev.name = card.name;
    dev.model = card.master;
    dev.type = spectrePrimitiveType(card.master);
    if (dev.type == DeviceType::kUnknown) {
      throw ParseError(file_, ll.line,
                       "unknown master '" + card.master +
                           "' (subckts must be defined before use)");
    }
    const std::size_t needed = pinCount(dev.type);
    if (card.nodes.size() < (isMos(dev.type) ? 4u : 2u)) {
      throw ParseError(file_, ll.line, "too few nodes for '" + card.name +
                                           "' (" + card.master + ")");
    }
    const auto funcs = pinFunctions(dev.type);
    for (std::size_t i = 0; i < needed && i < card.nodes.size(); ++i) {
      dev.pins.push_back({funcs[i], def.addNet(card.nodes[i])});
    }
    for (const auto& [key, value] : card.params) {
      if (key == "w") {
        dev.params.w = evalOrThrow(value, ll);
      } else if (key == "l" && !isCapacitor(dev.type) &&
                 dev.type != DeviceType::kInd) {
        dev.params.l = evalOrThrow(value, ll);
      } else if (key == "l" && dev.type == DeviceType::kInd) {
        dev.params.value = evalOrThrow(value, ll);
      } else if (key == "nf" || key == "fingers") {
        dev.params.nf = static_cast<int>(evalOrThrow(value, ll));
      } else if (key == "m" || key == "mult") {
        dev.params.m = static_cast<int>(evalOrThrow(value, ll));
      } else if (key == "r" || key == "c" || key == "val") {
        dev.params.value = evalOrThrow(value, ll);
      } else if (key == "layers" || key == "lay") {
        dev.params.layers = static_cast<int>(evalOrThrow(value, ll));
      } else {
        log::debug() << file_ << ":" << ll.line << ": ignoring parameter '"
                     << key << "'";
      }
    }
    def.addDevice(std::move(dev));
  }

  std::string file_;
  Library lib_;
  ParamEnv params_;
  bool inSubckt_ = false;
  std::size_t subcktLine_ = 0;
  SubcktId cur_ = kInvalidId;
  SubcktId topId_ = kInvalidId;
};

}  // namespace

Library parseSpectre(std::string_view text, std::string_view fileName) {
  const trace::TraceSpan span("parse.spectre");
  return SpectreParser(fileName).run(text);
}

Library parseSpectreFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw ParseError(path.string(), 0, "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseSpectre(buf.str(), path.string());
}

Library parseNetlistFile(const std::filesystem::path& path) {
  const std::string ext = str::toLower(path.extension().string());
  if (ext == ".scs") return parseSpectreFile(path);
  // Sniff the header for a spectre language tag.
  std::ifstream in(path);
  if (!in) throw ParseError(path.string(), 0, "cannot open file");
  std::string firstLines;
  std::string line;
  for (int i = 0; i < 10 && std::getline(in, line); ++i) {
    firstLines += str::toLower(line) + "\n";
  }
  if (firstLines.find("simulator lang=spectre") != std::string::npos) {
    return parseSpectreFile(path);
  }
  return parseSpiceFile(path);
}

}  // namespace ancstr
