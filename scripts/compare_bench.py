#!/usr/bin/env python3
"""Compares two BENCH.json reports and gates on regressions.

    compare_bench.py BASELINE.json CANDIDATE.json [options]

Exits 0 when every case shared by both reports stays within the thresholds,
1 when any case regressed, and 2 when either file is missing, unreadable, or
does not match the BENCH.json schema (docs/observability.md).

A case regresses when its candidate median wall time exceeds the baseline by
more than --threshold (fractional, default 0.2 = +20%), or its peak RSS by
more than --rss-threshold (default: RSS not gated). Cases whose baseline
median is below --min-seconds are skipped: micro-cases are dominated by
scheduler noise and gating them produces flaky CI. Cases present in only one
report fail the run unless --allow-missing is given (new benchmarks land with
no baseline; deleted ones linger in old baselines).
"""
import argparse
import json
import sys

SCHEMA_VERSION = 1


class SchemaError(Exception):
    pass


def load_report(path):
    """Returns {case name: case dict} or raises SchemaError."""
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise SchemaError(f"cannot load {path}: {err}")
    if not isinstance(report, dict):
        raise SchemaError(f"{path}: top level is not an object")
    if report.get("schemaVersion") != SCHEMA_VERSION:
        raise SchemaError(
            f"{path}: schemaVersion {report.get('schemaVersion')!r}, "
            f"expected {SCHEMA_VERSION}")
    cases = report.get("cases")
    if not isinstance(cases, list) or not cases:
        raise SchemaError(f"{path}: cases missing or empty")
    by_name = {}
    for i, case in enumerate(cases):
        if not isinstance(case, dict) or not isinstance(case.get("name"), str):
            raise SchemaError(f"{path}: case {i} malformed")
        wall = case.get("wall")
        if not isinstance(wall, dict) or not isinstance(
                wall.get("median"), (int, float)):
            raise SchemaError(f"{path}: case {case['name']!r} wall malformed")
        resource = case.get("resource")
        if not isinstance(resource, dict) or not isinstance(
                resource.get("peakRssBytes"), (int, float)):
            raise SchemaError(
                f"{path}: case {case['name']!r} resource malformed")
        by_name[case["name"]] = case
    return by_name


def compare(baseline, candidate, args):
    """Returns a list of human-readable failure lines."""
    failures = []
    shared = sorted(set(baseline) & set(candidate))
    only_old = sorted(set(baseline) - set(candidate))
    only_new = sorted(set(candidate) - set(baseline))
    if not args.allow_missing:
        for name in only_old:
            failures.append(f"{name}: present in baseline only")
        for name in only_new:
            failures.append(f"{name}: present in candidate only")

    compared = 0
    for name in shared:
        old_median = float(baseline[name]["wall"]["median"])
        new_median = float(candidate[name]["wall"]["median"])
        if old_median < args.min_seconds:
            print(f"skip  {name}: baseline median {old_median:.6f}s "
                  f"< --min-seconds {args.min_seconds}")
            continue
        compared += 1
        ratio = new_median / old_median if old_median > 0 else float("inf")
        verdict = "ok   "
        if new_median > old_median * (1.0 + args.threshold):
            verdict = "FAIL "
            failures.append(
                f"{name}: median wall {old_median:.6f}s -> {new_median:.6f}s "
                f"({ratio:.2f}x, threshold {1.0 + args.threshold:.2f}x)")
        print(f"{verdict} {name}: wall {old_median:.6f}s -> "
              f"{new_median:.6f}s ({ratio:.2f}x)")

        if args.rss_threshold is not None:
            old_rss = float(baseline[name]["resource"]["peakRssBytes"])
            new_rss = float(candidate[name]["resource"]["peakRssBytes"])
            if old_rss > 0 and new_rss > old_rss * (1.0 + args.rss_threshold):
                failures.append(
                    f"{name}: peak RSS {old_rss / 2**20:.1f} MiB -> "
                    f"{new_rss / 2**20:.1f} MiB "
                    f"({new_rss / old_rss:.2f}x, threshold "
                    f"{1.0 + args.rss_threshold:.2f}x)")

    if compared == 0 and not shared:
        failures.append("no cases shared between baseline and candidate")
    return failures


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="BENCH.json to compare against")
    parser.add_argument("candidate", help="BENCH.json under test")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="allowed fractional median wall-time increase "
                             "(default 0.2 = +20%%)")
    parser.add_argument("--rss-threshold", type=float, default=None,
                        help="allowed fractional peak-RSS increase "
                             "(default: RSS not gated)")
    parser.add_argument("--min-seconds", type=float, default=0.0,
                        help="skip cases whose baseline median is below this "
                             "(default 0: gate everything)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="ignore cases present in only one report")
    args = parser.parse_args(argv[1:])

    try:
        baseline = load_report(args.baseline)
        candidate = load_report(args.candidate)
    except SchemaError as err:
        print(f"SCHEMA ERROR: {err}", file=sys.stderr)
        return 2

    failures = compare(baseline, candidate, args)
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(set(baseline) & set(candidate))} case(s) within "
          f"threshold {1.0 + args.threshold:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
