// Structured, leveled, thread-safe logging (docs/observability.md).
//
// One process-wide Logger with two sinks:
//
//   * stderr — human text (`[ancstr WARN ] code: message (k=v)`) or
//     JSON-lines, selected by LoggerConfig::format;
//   * file   — JSON-lines only (one object per line, stable key order:
//     level, code, msg, then fields in call order), opened in append mode
//     so concurrent processes interleave whole lines.
//
// Emission is serialized under one mutex (TSan-clean by construction) and
// never throws: a file-sink failure is counted and the logger keeps
// serving — logging sits on the engine's serving path and must not take
// it down.
//
// Per-code rate limiting: with LoggerConfig::maxPerCodeWindow > 0, at
// most that many lines per code are emitted per rateWindowSeconds window;
// the rest are suppressed (counted in LoggerStats::suppressed and the
// `log.suppressed` registry counter) and summarized by one line when the
// window rolls over. Lines with an empty code are never rate-limited.
//
// The pre-PR-9 minimal API (setLevel / level / emit / debug()...error()
// stream builders) is preserved as a shim over the structured logger, so
// legacy call sites keep compiling and behaving identically.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ancstr::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// "debug" / "info" / "warn" / "error" / "off".
std::string_view levelName(Level lvl) noexcept;

/// Inverse of levelName (exact match); nullopt for unknown names.
std::optional<Level> parseLevel(std::string_view name) noexcept;

enum class Format { kText, kJson };

struct LoggerConfig {
  /// Minimum level emitted by either sink.
  Level minLevel = Level::kWarn;
  /// Rendering of the stderr sink (the file sink is always JSON-lines).
  Format format = Format::kText;
  bool toStderr = true;
  /// JSON-lines file sink; empty disables. Opened in append mode; an open
  /// or write failure is counted (LoggerStats::fileWriteFailures), never
  /// thrown.
  std::filesystem::path filePath;
  /// Per-code emission cap per window; 0 = unlimited. Coded warning
  /// storms (e.g. cache.io_failure on a dying disk) emit at most this
  /// many lines per window plus one suppression summary.
  std::uint64_t maxPerCodeWindow = 8;
  double rateWindowSeconds = 10.0;
};

/// One structured key/value pair. Numbers render as JSON numbers
/// (integers without a decimal point); everything else as strings.
struct Field {
  std::string key;
  std::string text;
  double number = 0.0;
  bool isNumber = false;
  bool isInteger = false;

  Field(std::string k, std::string v)
      : key(std::move(k)), text(std::move(v)) {}
  Field(std::string k, const char* v) : key(std::move(k)), text(v) {}
  Field(std::string k, std::string_view v) : key(std::move(k)), text(v) {}
  Field(std::string k, double v)
      : key(std::move(k)), number(v), isNumber(true) {}
  Field(std::string k, std::uint64_t v)
      : key(std::move(k)),
        number(static_cast<double>(v)),
        isNumber(true),
        isInteger(true) {}
  Field(std::string k, int v)
      : key(std::move(k)),
        number(v),
        isNumber(true),
        isInteger(true) {}
};

/// Cumulative emission counters (mirrored into the metrics registry as
/// log.emitted / log.suppressed).
struct LoggerStats {
  std::uint64_t emitted = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t fileWriteFailures = 0;
};

class Logger {
 public:
  /// Leaked singleton (same rationale as the trace collector: TLS and
  /// static destructors may log very late).
  static Logger& instance();

  /// Swaps the configuration; reopens the file sink when filePath
  /// changed. Thread-safe against concurrent log() calls.
  void configure(LoggerConfig config);
  LoggerConfig config() const;

  /// Emits one structured line to the configured sinks. Never throws.
  void log(Level lvl, std::string_view code, std::string_view message,
           std::vector<Field> fields = {});

  LoggerStats stats() const;

  /// Drops all per-code rate-limit windows (tests).
  void resetRateLimits();

 private:
  Logger();
  ~Logger() = delete;  // leaked singleton

  struct Impl;
  Impl* impl_;
};

/// Convenience: Logger::instance().log(...).
void log(Level lvl, std::string_view code, std::string_view message,
         std::vector<Field> fields = {});

/// Process-wide monotonic request-id source (starts at 1). Used by
/// standalone Pipeline::extract; the ExtractionEngine keeps its own
/// per-engine counter so engine request ids are dense per ledger file.
std::uint64_t nextRequestId() noexcept;

// --- legacy shim (pre-structured API) ---------------------------------

/// Sets the process-wide minimum level (same knob as
/// LoggerConfig::minLevel; kept for existing call sites).
void setLevel(Level level) noexcept;
Level level() noexcept;

/// Emits one uncoded line (shim over Logger::log with an empty code).
void emit(Level lvl, const std::string& message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level lvl) : lvl_(lvl) {}
  ~LineBuilder() { emit(lvl_, stream_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LineBuilder debug() { return detail::LineBuilder(Level::kDebug); }
inline detail::LineBuilder info() { return detail::LineBuilder(Level::kInfo); }
inline detail::LineBuilder warn() { return detail::LineBuilder(Level::kWarn); }
inline detail::LineBuilder error() { return detail::LineBuilder(Level::kError); }

}  // namespace ancstr::log
