#include "core/groups.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace ancstr {
namespace {

/// Union-find over dense indices.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Key identifying one module within one hierarchy.
struct ModuleKey {
  HierNodeId hierarchy;
  ModuleKind kind;
  std::uint32_t id;

  bool operator<(const ModuleKey& o) const {
    return std::tie(hierarchy, kind, id) < std::tie(o.hierarchy, o.kind, o.id);
  }
};

/// True when device `d` bridges devices `a` and `b`: some non-rail net of
/// `d` reaches both, with `a` and `b` attached through the same pin
/// function (the differential-pair tail / shared bias pattern).
bool bridges(const FlatDesign& design, FlatDeviceId d, FlatDeviceId a,
             FlatDeviceId b, std::size_t maxNetDegree) {
  for (const auto& [fn, net] : design.device(d).pins) {
    const auto& terms = design.netTerminals()[net];
    if (terms.size() > maxNetDegree) continue;
    PinFunction fnA{};
    PinFunction fnB{};
    bool hasA = false, hasB = false;
    for (const auto& [dev, pin] : terms) {
      const PinFunction devFn = design.device(dev).pins[pin].first;
      // Bulk ties (usually rails) are not symmetric coupling.
      if (devFn == PinFunction::kBulk) continue;
      if (dev == a) {
        hasA = true;
        fnA = devFn;
      }
      if (dev == b) {
        hasB = true;
        fnB = devFn;
      }
    }
    if (hasA && hasB && fnA == fnB) return true;
  }
  return false;
}

}  // namespace

std::vector<SymmetryGroup> buildSymmetryGroups(const FlatDesign& design,
                                               const DetectionResult& detection,
                                               const GroupOptions& options) {
  // Collect accepted pairs, assign dense indices to their modules.
  std::map<ModuleKey, std::size_t> indexOf;
  std::vector<ModuleKey> moduleAt;
  std::vector<const ScoredCandidate*> accepted;
  auto indexFor = [&](const ModuleKey& key) {
    const auto [it, inserted] = indexOf.emplace(key, moduleAt.size());
    if (inserted) moduleAt.push_back(key);
    return it->second;
  };
  for (const ScoredCandidate& c : detection.scored) {
    if (!c.accepted) continue;
    accepted.push_back(&c);
    indexFor({c.pair.hierarchy, c.pair.a.kind, c.pair.a.id});
    indexFor({c.pair.hierarchy, c.pair.b.kind, c.pair.b.id});
  }

  DisjointSets sets(moduleAt.size());
  for (const ScoredCandidate* c : accepted) {
    sets.unite(indexOf.at({c->pair.hierarchy, c->pair.a.kind, c->pair.a.id}),
               indexOf.at({c->pair.hierarchy, c->pair.b.kind, c->pair.b.id}));
  }

  // Group pairs by component root.
  std::map<std::size_t, SymmetryGroup> groups;
  for (const ScoredCandidate* c : accepted) {
    const std::size_t root =
        sets.find(indexOf.at({c->pair.hierarchy, c->pair.a.kind, c->pair.a.id}));
    SymmetryGroup& group = groups[root];
    group.hierarchy = c->pair.hierarchy;
    group.level = c->pair.level;
    group.pairs.emplace_back(c->pair.nameA, c->pair.nameB);
  }

  // Self-symmetric detection: unmatched leaf devices bridging a pair.
  if (options.detectSelfSymmetric) {
    std::set<FlatDeviceId> matchedDevices;
    for (const ScoredCandidate* c : accepted) {
      if (c->pair.a.kind == ModuleKind::kDevice) {
        matchedDevices.insert(c->pair.a.id);
        matchedDevices.insert(c->pair.b.id);
      }
    }
    for (auto& [root, group] : groups) {
      std::set<std::string> self;
      for (const ScoredCandidate* c : accepted) {
        if (c->pair.a.kind != ModuleKind::kDevice) continue;
        const std::size_t croot = sets.find(
            indexOf.at({c->pair.hierarchy, c->pair.a.kind, c->pair.a.id}));
        if (croot != root) continue;
        for (const FlatDeviceId d :
             design.node(c->pair.hierarchy).leafDevices) {
          if (matchedDevices.count(d) != 0) continue;
          if (bridges(design, d, c->pair.a.id, c->pair.b.id,
                      options.maxNetDegree)) {
            const std::string& path = design.device(d).path;
            const std::size_t slash = path.rfind('/');
            self.insert(slash == std::string::npos ? path
                                                   : path.substr(slash + 1));
          }
        }
      }
      group.selfSymmetric.assign(self.begin(), self.end());
    }
  }

  std::vector<SymmetryGroup> out;
  out.reserve(groups.size());
  for (auto& [root, group] : groups) {
    std::sort(group.pairs.begin(), group.pairs.end());
    out.push_back(std::move(group));
  }
  std::sort(out.begin(), out.end(),
            [](const SymmetryGroup& a, const SymmetryGroup& b) {
              if (a.hierarchy != b.hierarchy) return a.hierarchy < b.hierarchy;
              return a.pairs < b.pairs;
            });
  return out;
}

}  // namespace ancstr
