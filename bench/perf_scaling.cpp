// Runtime-scaling microbenchmarks (google-benchmark), backing the paper's
// Section V-B scalability claims: graph construction, GNN inference, and
// full extraction scale gently with design size, while the spectral
// baseline's per-pair eigendecompositions blow up on block-rich designs
// (the ADC4/ADC5 runtime gap in Table V).
#include <benchmark/benchmark.h>

#include "baselines/s3det.h"
#include "circuits/synthetic.h"
#include "core/features.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "graph/pagerank.h"
#include "util/parallel.h"
#include "util/trace.h"

using namespace ancstr;

namespace {

circuits::CircuitBenchmark& chain(int stages) {
  static std::map<int, circuits::CircuitBenchmark> cache;
  auto it = cache.find(stages);
  if (it == cache.end()) {
    it = cache.emplace(stages, circuits::makeDiffChain(stages)).first;
  }
  return it->second;
}

circuits::CircuitBenchmark& blockArray(int blocks) {
  static std::map<int, circuits::CircuitBenchmark> cache;
  auto it = cache.find(blocks);
  if (it == cache.end()) {
    it = cache.emplace(blocks, circuits::makeBlockArray(blocks)).first;
  }
  return it->second;
}

void BM_GraphConstruction(benchmark::State& state) {
  const auto& bench = chain(static_cast<int>(state.range(0)));
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildHeteroGraph(design));
  }
  state.SetComplexityN(state.range(0));
}

void BM_Elaboration(benchmark::State& state) {
  const auto& bench = chain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatDesign::elaborate(bench.lib));
  }
  state.SetComplexityN(state.range(0));
}

void BM_GnnInference(benchmark::State& state) {
  const auto& bench = chain(static_cast<int>(state.range(0)));
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  const CircuitGraph graph = buildHeteroGraph(design);
  const PreparedGraph prepared =
      prepareGraph(graph, buildFeatureMatrix(design));
  Rng rng(1);
  const GnnModel model(GnnConfig{}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.embed(prepared));
  }
  state.SetComplexityN(state.range(0));
}

void BM_PageRank(benchmark::State& state) {
  const auto& bench = chain(static_cast<int>(state.range(0)));
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  const SimpleDigraph g = buildHeteroGraph(design).graph.simplified();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pageRank(g));
  }
  state.SetComplexityN(state.range(0));
}

void BM_FullExtraction(benchmark::State& state) {
  const auto& bench = blockArray(static_cast<int>(state.range(0)));
  PipelineConfig config;
  config.train.epochs = 2;
  Pipeline pipeline(config);
  pipeline.train({&bench.lib});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.extract(bench.lib));
  }
  state.SetComplexityN(state.range(0));
}

/// BM_FullExtraction with live span collection: the delta against
/// BM_FullExtraction is the cost of *enabled* tracing (every bench in this
/// binary already pays the compiled-but-disabled cost, a relaxed atomic
/// load per span site).
void BM_FullExtractionTraced(benchmark::State& state) {
  const auto& bench = blockArray(static_cast<int>(state.range(0)));
  PipelineConfig config;
  config.train.epochs = 2;
  Pipeline pipeline(config);
  pipeline.train({&bench.lib});
  trace::TraceCollector::instance().setEnabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.extract(bench.lib));
    state.PauseTiming();
    trace::TraceCollector::instance().clear();
    state.ResumeTiming();
  }
  trace::TraceCollector::instance().setEnabled(false);
  trace::TraceCollector::instance().clear();
  state.SetComplexityN(state.range(0));
}

void BM_S3DetExtraction(benchmark::State& state) {
  const auto& bench = blockArray(static_cast<int>(state.range(0)));
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s3det::detectSystemConstraints(design, bench.lib));
  }
  state.SetComplexityN(state.range(0));
}

void BM_Training(benchmark::State& state) {
  const auto& bench = chain(static_cast<int>(state.range(0)));
  PipelineConfig config;
  config.train.epochs = 1;
  for (auto _ : state) {
    Pipeline pipeline(config);
    pipeline.train({&bench.lib});
  }
  state.SetComplexityN(state.range(0));
}

/// Trained state over the largest synthetic block benchmark, built once
/// and shared by every thread-sweep iteration so the sweep measures the
/// detection stage alone.
struct DetectionScalingFixture {
  static PipelineConfig makeConfig() {
    PipelineConfig config;
    config.train.epochs = 2;
    return config;
  }

  circuits::CircuitBenchmark bench = blockArray(12);
  FlatDesign design = FlatDesign::elaborate(bench.lib);
  PipelineConfig config = makeConfig();
  Pipeline pipeline{config};
  nn::Matrix z;

  DetectionScalingFixture() {
    pipeline.train({&bench.lib});
    const CircuitGraph graph = buildHeteroGraph(design, config.graph);
    z = pipeline.model().embed(
        prepareGraph(graph, buildFeatureMatrix(design, config.features)));
  }
};

DetectionScalingFixture& detectionFixture() {
  static DetectionScalingFixture fixture;
  return fixture;
}

/// Thread-count sweep of the detection stage (block embeddings + pair
/// scoring). The BENCH json records one entry per thread count; speedup at
/// T threads = time(/1) / time(/T). Results are bitwise identical across
/// the sweep, so this measures pure wall-clock scaling.
void BM_DetectionThreads(benchmark::State& state) {
  DetectionScalingFixture& f = detectionFixture();
  DetectorConfig config = f.config.detector;
  config.graphOptions = f.config.graph;
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const BlockEmbeddingContext context{f.pipeline.model(), f.config.features};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detectConstraints(f.design, f.bench.lib, f.z,
                                               config, context, threads));
  }
  state.counters["threads"] =
      static_cast<double>(util::resolveThreadCount(threads));
}

/// Thread-count sweep of training with whole-epoch batches: the per-graph
/// forward/loss/backward fan-out is the parallel section; weights stay
/// bitwise identical across the sweep.
void BM_TrainingThreads(benchmark::State& state) {
  static const std::vector<circuits::CircuitBenchmark> corpus = [] {
    std::vector<circuits::CircuitBenchmark> out;
    for (int i = 0; i < 8; ++i) out.push_back(circuits::makeDiffChain(6));
    return out;
  }();
  PipelineConfig config;
  config.train.epochs = 2;
  config.train.batchSize = 0;  // whole epoch per step -> widest fan-out
  config.threads = static_cast<std::size_t>(state.range(0));
  std::vector<const Library*> libs;
  for (const auto& bench : corpus) libs.push_back(&bench.lib);
  for (auto _ : state) {
    Pipeline pipeline(config);
    pipeline.train(libs);
  }
  state.counters["threads"] =
      static_cast<double>(util::resolveThreadCount(config.threads));
}

}  // namespace

BENCHMARK(BM_Elaboration)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_GraphConstruction)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();
BENCHMARK(BM_GnnInference)->RangeMultiplier(4)->Range(4, 64)->Complexity();
BENCHMARK(BM_PageRank)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_FullExtraction)->DenseRange(2, 10, 4);
BENCHMARK(BM_FullExtractionTraced)->DenseRange(2, 10, 4);
BENCHMARK(BM_S3DetExtraction)->DenseRange(2, 10, 4);
BENCHMARK(BM_Training)->RangeMultiplier(4)->Range(4, 64);
// Thread sweeps are wall-clock measurements: with workers, CPU time sums
// across threads and would hide the speedup.
BENCHMARK(BM_DetectionThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();
BENCHMARK(BM_TrainingThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

BENCHMARK_MAIN();
