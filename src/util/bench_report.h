// The BENCH.json schema: one machine-readable performance report per
// bench-binary (or CLI --bench-out) run. Shared between bench/harness and
// tools/ancstr_cli so every producer emits the identical, stable-key-order
// schema that scripts/compare_bench.py consumes (docs/observability.md
// documents the schema; tests/bench/test_harness.cpp pins it).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "util/report.h"
#include "util/resource.h"

namespace ancstr::benchio {

/// Measured result of one bench case.
struct BenchCaseResult {
  std::string name;
  int reps = 0;    ///< measured repetitions (= wallSeconds.size())
  int warmup = 0;  ///< unmeasured warmup runs before the samples
  std::vector<double> wallSeconds;  ///< per-rep wall time, in run order
  /// Phase breakdown + metrics delta for the case (phases empty when the
  /// case never produced a RunReport; metrics delta covers all reps).
  RunReport report;
  /// Resource delta over the measured reps; peakRssBytes is the absolute
  /// process high-water mark at case end (monotonic, not diffable).
  util::ResourceSample resource;
  /// Free-form numeric counters (problem size, thread count, inner
  /// iterations, ...), keyed for stable output.
  std::map<std::string, double> counters;

  double medianWallSeconds() const;
  double madWallSeconds() const;
  double minWallSeconds() const;
  double maxWallSeconds() const;
};

/// Run-level provenance recorded at the top of BENCH.json.
struct BenchRunInfo {
  std::string binary;     ///< producing binary ("table5_system_level", ...)
  std::size_t threads = 1;
  std::uint64_t seed = 42;
};

/// Configure-time build provenance (git SHA, build type, compile flags)
/// baked in via ANCSTR_GIT_SHA / ANCSTR_BUILD_TYPE / ANCSTR_CXX_FLAGS;
/// "unknown" where unavailable. The SHA is stamped at CMake configure
/// time, so it can trail HEAD until the next reconfigure.
std::string buildGitSha();
std::string buildType();
std::string buildFlags();

/// Serialises the whole run. Key order is part of the schema contract:
/// schemaVersion, binary, gitSha, buildType, buildFlags, threads, seed,
/// cases; per case: name, reps, warmup, wall{median,mad,min,max,samples},
/// phases, metrics, resource{peakRssBytes,allocCount,freeCount,allocBytes,
/// userCpuSeconds,systemCpuSeconds}, counters.
Json benchRunToJson(const BenchRunInfo& info,
                    const std::vector<BenchCaseResult>& cases);

/// Writes benchRunToJson (pretty-printed) to `path`; throws Error on I/O
/// failure.
void writeBenchJson(const std::filesystem::path& path,
                    const BenchRunInfo& info,
                    const std::vector<BenchCaseResult>& cases);

}  // namespace ancstr::benchio
