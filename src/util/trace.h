// Always-compiled, opt-in tracing: RAII spans feeding a process-wide
// collector that exports Chrome/Perfetto trace_event JSON.
//
// Contract (mirrors the concurrency model, docs/architecture.md):
//   * tracing observes, never steers — enabling it must not change a
//     single bit of any pipeline result (no RNG draws, no reordering);
//   * near-zero cost when disabled: a span costs one relaxed atomic load
//     plus one steady_clock read (the embedded Stopwatch also backs the
//     RunReport phase timings, so it runs either way);
//   * thread-safe by construction: every thread appends to its own
//     buffer (per-buffer mutex, uncontended on the hot path); buffers are
//     merged only when a snapshot is taken.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "util/timer.h"

namespace ancstr::trace {

/// One completed span. Timestamps are microseconds since the collector's
/// epoch (its construction), matching Chrome trace_event "ts"/"dur".
struct TraceEvent {
  std::string name;        ///< span-taxonomy name (docs/observability.md)
  double startUs = 0.0;    ///< microseconds since the collector epoch
  double durationUs = 0.0; ///< span duration in microseconds
  std::uint32_t tid = 0;   ///< sequential thread id (currentThreadId)
  /// Request correlation (docs/observability.md, "Request correlation");
  /// 0 = none. Exported as Chrome JSON "args":{"request_id"}.
  std::uint64_t requestId = 0;
};

/// One node of the per-thread span tree: a TraceEvent plus its nesting.
/// `selfUs` is the duration not covered by direct children — the quantity
/// scripts/analyze_trace.py charges to the span itself when attributing
/// time along the critical path.
struct SpanNode {
  std::string name;
  double startUs = 0.0;
  double durationUs = 0.0;
  double selfUs = 0.0;
  std::uint32_t tid = 0;
  std::uint64_t requestId = 0;  ///< see TraceEvent::requestId
  std::vector<SpanNode> children;
};

/// Small sequential id for the calling thread, assigned on first use.
/// Worker threads spawned by util::ThreadPool get their own ids, which is
/// what attributes train.graph / embed.subcircuit spans to workers.
std::uint32_t currentThreadId();

/// Process-wide span sink. Disabled by default; `setEnabled(true)` arms
/// span recording. The instance is intentionally leaked so worker-thread
/// TLS destructors can always reach it during shutdown.
class TraceCollector {
 public:
  static TraceCollector& instance();

  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the collector epoch (the trace time base).
  double nowUs() const;

  /// Appends one completed span for the calling thread, unconditionally —
  /// gating on enabled() is the caller's job (TraceSpan arms itself at
  /// construction so in-flight spans complete even if tracing is switched
  /// off). Safe to call from any thread; recording order across threads is
  /// irrelevant because snapshots sort by start time.
  void record(const char* name, double startUs, double durationUs,
              std::uint64_t requestId = 0);

  /// All recorded events, merged across threads and ordered by
  /// (startUs, tid, name) for stable output.
  std::vector<TraceEvent> events() const;

  /// Drops all recorded events (and reaps buffers of exited threads).
  void clear();

  /// Chrome/Perfetto trace_event JSON ("X" complete events, one pid).
  /// Open via https://ui.perfetto.dev or chrome://tracing.
  std::string toChromeJson() const;

  /// Writes toChromeJson() to `path`; throws Error on I/O failure.
  void writeFile(const std::filesystem::path& path) const;

  /// Recorded events nested into one span tree per thread (a span is a
  /// child of the tightest same-thread span that encloses it in time).
  /// Roots are ordered by start time within each thread.
  std::vector<SpanNode> spanForest() const;

  /// Span-tree JSON for scripts/analyze_trace.py / check_trace.py:
  /// {"kind": "ancstr-span-tree", "schemaVersion": 1, "threads":
  ///  [{"tid", "spans": [{name, startUs, durUs, selfUs, children...}]}]}.
  std::string toSpanTreeJson() const;

  /// Writes toSpanTreeJson() to `path`; throws Error on I/O failure.
  void writeSpanTreeFile(const std::filesystem::path& path) const;

  /// Internal per-thread buffer storage; public only so the TLS
  /// registration hook in trace.cpp can name it.
  struct Impl;

 private:
  TraceCollector();
  ~TraceCollector() = delete;  // leaked singleton

  Impl* impl_;
  std::atomic<bool> enabled_{false};
};

/// RAII span: stamps the start on construction, records on destruction if
/// tracing was enabled at construction. The embedded Stopwatch runs even
/// when tracing is off, so callers can reuse `seconds()` for RunReport
/// phase timings without a second clock.
class TraceSpan {
 public:
  /// `name` must outlive the span (use string literals from the taxonomy).
  /// `requestId`, when nonzero, is stamped onto the recorded event so a
  /// request can be followed through the trace (docs/observability.md).
  explicit TraceSpan(const char* name, std::uint64_t requestId = 0)
      : name_(name),
        requestId_(requestId),
        armed_(TraceCollector::instance().enabled()) {
    if (armed_) startUs_ = TraceCollector::instance().nowUs();
  }

  ~TraceSpan() {
    if (armed_) {
      // Duration from the same nowUs() time base as startUs_, not from
      // watch_: the Stopwatch starts a hair earlier (member init order),
      // and that skew would let a child's reconstructed end overshoot its
      // parent's, corrupting the span-tree nesting.
      TraceCollector& collector = TraceCollector::instance();
      collector.record(name_, startUs_, collector.nowUs() - startUs_,
                       requestId_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Seconds since construction; valid whether or not tracing is enabled.
  double seconds() const { return watch_.seconds(); }

 private:
  Stopwatch watch_;
  const char* name_;
  std::uint64_t requestId_;
  double startUs_ = 0.0;
  bool armed_;
};

}  // namespace ancstr::trace
