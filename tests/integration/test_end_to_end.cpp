// End-to-end: train the GNN unsupervised on the block corpus and check
// that detection quality on matched vs. unmatched pairs actually
// separates — the headline behaviour of the paper, in miniature.
#include <gtest/gtest.h>

#include "baselines/s3det.h"
#include "baselines/sfa.h"
#include "circuits/benchmark.h"
#include "core/pipeline.h"
#include "eval/ground_truth.h"
#include "eval/roc.h"

namespace ancstr {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  // One trained pipeline shared across tests (training dominates cost).
  static void SetUpTestSuite() {
    corpus_ = new auto(circuits::blockBenchmarks());
    PipelineConfig config;
    config.train.epochs = 30;
    config.seed = 7;
    pipeline_ = new Pipeline(config);
    std::vector<const Library*> libs;
    for (const auto& bench : *corpus_) libs.push_back(&bench.lib);
    pipeline_->train(libs);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete corpus_;
    pipeline_ = nullptr;
    corpus_ = nullptr;
  }

  static std::vector<circuits::CircuitBenchmark>* corpus_;
  static Pipeline* pipeline_;
};

std::vector<circuits::CircuitBenchmark>* EndToEndTest::corpus_ = nullptr;
Pipeline* EndToEndTest::pipeline_ = nullptr;

TEST_F(EndToEndTest, MatchedPairsScoreAboveUnmatched) {
  // Ground truth deliberately contains near-miss pairs (asymmetric
  // neighbourhoods) that any content-based method misses — the paper's
  // own FN profile. So we check distributional separation instead of a
  // hard per-pair bound: matched pairs average far above unmatched ones,
  // and a clear majority of matched pairs clear the 0.99 threshold.
  double matchedSum = 0.0, unmatchedSum = 0.0;
  std::size_t matched = 0, unmatched = 0, matchedAbove = 0;
  for (const auto& bench : *corpus_) {
    const ExtractionResult result = pipeline_->extract(bench.lib);
    const FlatDesign design = FlatDesign::elaborate(bench.lib);
    for (const ScoredCandidate& c : result.detection.scored) {
      if (bench.truth.matches(design, c.pair)) {
        matchedSum += c.similarity;
        matchedAbove += c.similarity > 0.99 ? 1u : 0u;
        ++matched;
      } else {
        unmatchedSum += c.similarity;
        ++unmatched;
      }
    }
  }
  ASSERT_GT(matched, 0u);
  ASSERT_GT(unmatched, 0u);
  const double matchedMean = matchedSum / static_cast<double>(matched);
  const double unmatchedMean = unmatchedSum / static_cast<double>(unmatched);
  EXPECT_GT(matchedMean, unmatchedMean + 0.1);
  EXPECT_GT(static_cast<double>(matchedAbove) / static_cast<double>(matched),
            0.6);
}

TEST_F(EndToEndTest, MergedBlockDatasetAucIsHigh) {
  std::vector<double> scores;
  std::vector<bool> labels;
  for (const auto& bench : *corpus_) {
    const ExtractionResult result = pipeline_->extract(bench.lib);
    const FlatDesign design = FlatDesign::elaborate(bench.lib);
    const std::vector<bool> benchLabels =
        labelCandidates(design, result.detection.scored, bench.truth);
    for (std::size_t i = 0; i < benchLabels.size(); ++i) {
      scores.push_back(result.detection.scored[i].similarity);
      labels.push_back(benchLabels[i]);
    }
  }
  const RocCurve curve = computeRoc(scores, labels);
  // Paper Fig. 7: AUC ~ 0.956 on the merged block dataset.
  EXPECT_GT(curve.auc, 0.85);
}

TEST_F(EndToEndTest, GnnBeatsSfaOnFalsePositiveRate) {
  ConfusionCounts ours, sfa;
  for (const auto& bench : *corpus_) {
    const FlatDesign design = FlatDesign::elaborate(bench.lib);
    const ExtractionResult gnn = pipeline_->extract(bench.lib);
    ours += confusionFromScored(
        gnn.detection.scored,
        labelCandidates(design, gnn.detection.scored, bench.truth),
        ConstraintLevel::kDevice);
    const sfa::SfaResult base = sfa::detectDeviceConstraints(design, bench.lib);
    sfa += confusionFromScored(
        base.scored, labelCandidates(design, base.scored, bench.truth));
  }
  const Metrics oursM = computeMetrics(ours);
  const Metrics sfaM = computeMetrics(sfa);
  // Table VI shape: our FPR clearly below SFA's.
  EXPECT_LT(oursM.fpr, sfaM.fpr + 1e-9);
}

TEST_F(EndToEndTest, InductiveOnUnseenAdc) {
  // The pipeline trained on blocks only still extracts sensible
  // constraints from an ADC (inductive generalisation).
  const auto adc = circuits::adcBenchmark(1);
  const ExtractionResult result = pipeline_->extract(adc.lib);
  const FlatDesign design = FlatDesign::elaborate(adc.lib);
  const auto labels =
      labelCandidates(design, result.detection.scored, adc.truth);
  const ConfusionCounts counts =
      confusionFromScored(result.detection.scored, labels,
                          ConstraintLevel::kSystem);
  const Metrics m = computeMetrics(counts);
  EXPECT_GT(m.tpr, 0.6);
  EXPECT_LT(m.fpr, 0.3);
}

TEST_F(EndToEndTest, SizingTrapFoolsS3DetButNotUs) {
  // ADC2 instantiates per-stage DACs with identical topology but 2x
  // different unit sizing. S3DET compares graph spectra only, so the
  // cross-stage pair looks like a perfect match (similarity 1.0 -> false
  // positive). Our embeddings carry the sizing features and reject it —
  // the paper's central "sizing consideration" claim (Fig. 2, Table I).
  const auto adc = circuits::adcBenchmark(2);
  const FlatDesign design = FlatDesign::elaborate(adc.lib);
  const ExtractionResult gnn = pipeline_->extract(adc.lib);
  // Isolated per-subcircuit spectra expose the core blindness directly
  // (the contextual default can only reject such pairs when the
  // *surroundings* differ — the subcircuits themselves look identical).
  s3det::S3DetConfig isolated;
  isolated.includeBoundaryContext = false;
  const s3det::S3DetResult spectral =
      s3det::detectSystemConstraints(design, adc.lib, isolated);
  auto crossStage = [](const ScoredCandidate& c) {
    return (c.pair.nameA == "xdacp1" && c.pair.nameB == "xdacp2") ||
           (c.pair.nameA == "xdacp2" && c.pair.nameB == "xdacp1");
  };
  bool checkedOurs = false, checkedTheirs = false;
  for (const ScoredCandidate& c : gnn.detection.scored) {
    if (crossStage(c)) {
      checkedOurs = true;
      EXPECT_FALSE(c.accepted) << "sizing trap accepted, sim=" << c.similarity;
    }
  }
  for (const ScoredCandidate& c : spectral.scored) {
    if (crossStage(c)) {
      checkedTheirs = true;
      EXPECT_NEAR(c.similarity, 1.0, 1e-9) << "isomorphic topologies";
      EXPECT_TRUE(c.accepted) << "S3DET cannot see sizing";
    }
  }
  EXPECT_TRUE(checkedOurs);
  EXPECT_TRUE(checkedTheirs);
}

TEST_F(EndToEndTest, NonidenticalDacPairStaysComparable) {
  // ADC3's p/n resistive DACs share the device multiset but differ in tap
  // wiring. Our content-based embedding must still score them clearly
  // above the sizing-trap pair and S3DET must see spectral disagreement.
  const auto adc = circuits::adcBenchmark(3);
  const FlatDesign design = FlatDesign::elaborate(adc.lib);
  const ExtractionResult gnn = pipeline_->extract(adc.lib);
  double rdacSim = -1.0;
  for (const ScoredCandidate& c : gnn.detection.scored) {
    if ((c.pair.nameA == "xdacrp" && c.pair.nameB == "xdacrn") ||
        (c.pair.nameA == "xdacrn" && c.pair.nameB == "xdacrp")) {
      rdacSim = c.similarity;
    }
  }
  ASSERT_GE(rdacSim, 0.0) << "rdac pair not a candidate";
  EXPECT_GT(rdacSim, 0.8);
  const s3det::S3DetResult spectral =
      s3det::detectSystemConstraints(design, adc.lib);
  for (const ScoredCandidate& c : spectral.scored) {
    if ((c.pair.nameA == "xdacrp" && c.pair.nameB == "xdacrn")) {
      EXPECT_LT(c.similarity, 1.0);
    }
  }
}

}  // namespace
}  // namespace ancstr
