// Minimal leveled logger. Intentionally tiny: one global sink (stderr),
// a process-wide level, printf-free stream formatting.
#pragma once

#include <sstream>
#include <string>

namespace ancstr::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted.
void setLevel(Level level) noexcept;
Level level() noexcept;

/// Emits one formatted line to stderr if `lvl` passes the filter.
void emit(Level lvl, const std::string& message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level lvl) : lvl_(lvl) {}
  ~LineBuilder() { emit(lvl_, stream_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LineBuilder debug() { return detail::LineBuilder(Level::kDebug); }
inline detail::LineBuilder info() { return detail::LineBuilder(Level::kInfo); }
inline detail::LineBuilder warn() { return detail::LineBuilder(Level::kWarn); }
inline detail::LineBuilder error() { return detail::LineBuilder(Level::kError); }

}  // namespace ancstr::log
