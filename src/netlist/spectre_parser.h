// Spectre netlist reader (the dialect ALIGN's open-source benchmarks
// ship). Supported subset:
//
//   // and * comments; '\' line continuations
//   simulator lang=spectre            (ignored)
//   include "file.scs"                (resolved relative to the includer,
//                                      cycle- and depth-guarded like the
//                                      SPICE parser's .include)
//   subckt NAME (p1 p2 ...)           parentheses optional
//   parameters a=1u b=2k             (subckt-scoped)
//   M1 (d g s b) nch_lvt w=2u l=0.1u  primitive by master name
//   R1 (a b) resistor r=5k
//   C1 (a b) capacitor c=10f
//   L1 (a b) inductor l=1n
//   D1 (a k) diode
//   x1 (n1 n2 ...) some_subckt        instance of a defined subckt
//   ends [NAME]
//
// Any master that is not a defined subckt is treated as a primitive and
// mapped through deviceTypeFromModelName plus the Spectre builtin names
// (resistor/capacitor/inductor/diode).
//
// Error policies mirror the SPICE parser (docs/robustness.md): the classic
// entry points throw at the first problem; the *Recovering variants emit
// coded diagnostics, skip the bad card, and return the valid remainder.
#pragma once

#include <filesystem>
#include <string_view>

#include "netlist/netlist.h"
#include "util/diagnostics.h"

namespace ancstr {

/// Parses Spectre-format text. Throws ParseError / NetlistError.
Library parseSpectre(std::string_view text,
                     std::string_view fileName = "<mem>");

/// Reads and parses a Spectre file from disk.
Library parseSpectreFile(const std::filesystem::path& path);

/// Fail-soft variant of parseSpectre (never throws on malformed input).
diag::Parsed<Library> parseSpectreRecovering(
    std::string_view text, std::string_view fileName = "<mem>");

/// Fail-soft variant of parseSpectreFile.
diag::Parsed<Library> parseSpectreFileRecovering(
    const std::filesystem::path& path);

/// Dispatches on file extension / content: ".scs"/"simulator lang=spectre"
/// goes to parseSpectre, everything else to parseSpice.
Library parseNetlistFile(const std::filesystem::path& path);

/// Fail-soft variant of parseNetlistFile.
diag::Parsed<Library> parseNetlistFileRecovering(
    const std::filesystem::path& path);

}  // namespace ancstr
