// SPICE netlist reader.
//
// Supported subset (enough for analog block and system netlists as shipped
// by ALIGN / MAGICAL and produced by our generators):
//   * comments:      full-line '*', trailing ';' or '$ '
//   * continuations: leading '+'
//   * directives:    .subckt/.ends, .param, .global, .model, .include, .end
//   * cards:         M (mos), R, C, L (passives), D (diode), Q (bjt),
//                    X (subckt instance)
//   * parameters:    key=value with SPICE numbers or '{expr}' / "'expr'"
//                    expressions over .param symbols
// Device types are inferred from model names via deviceTypeFromModelName.
// Instance parameter overrides on X cards are parsed and ignored (logged).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace ancstr {

/// Options controlling parsing behaviour.
struct SpiceParseOptions {
  /// Name used for devices declared outside any .subckt.
  std::string topName = "top";
  /// When true, unknown directive lines throw instead of warn.
  bool strictDirectives = false;
};

/// Parses SPICE text. `fileName` is used in diagnostics only.
/// Throws ParseError (syntax) or NetlistError (structural).
Library parseSpice(std::string_view text, std::string_view fileName = "<mem>",
                   const SpiceParseOptions& options = {});

/// Reads and parses a SPICE file from disk. `.include` paths resolve
/// relative to the including file's directory.
Library parseSpiceFile(const std::filesystem::path& path,
                       const SpiceParseOptions& options = {});

}  // namespace ancstr
