# Persistence-contract check for `extract --batch --cache-dir` (docs/api.md):
# two runs of the CLI against the same cache directory — the second one
# restart-warm, served from the disk tier — must produce bitwise-identical
# constraint files, and the first run must have populated the directory.
#
# Invoked by ctest as:
#   cmake -DCLI=<ancstr_cli> -DMODEL=<model.txt> -DCORPUS=<dir> -DWORK=<dir>
#         -P cache_dir_test.cmake
foreach(var CLI MODEL CORPUS WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cache_dir_test.cmake: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

foreach(pass cold warm)
  execute_process(
    COMMAND ${CLI} extract --model ${MODEL} --batch ${CORPUS}
            --cache-dir ${WORK}/cache --out-dir ${WORK}/${pass}
    RESULT_VARIABLE rc
    ERROR_VARIABLE log)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${pass} extract --cache-dir failed (${rc}):\n${log}")
  endif()
endforeach()

file(GLOB entries ${WORK}/cache/*.e)
list(LENGTH entries entry_count)
if(entry_count EQUAL 0)
  message(FATAL_ERROR "cold run left no entries in ${WORK}/cache")
endif()

file(GLOB cold_files RELATIVE ${WORK}/cold ${WORK}/cold/*)
list(LENGTH cold_files cold_count)
if(cold_count EQUAL 0)
  message(FATAL_ERROR "cold run produced no constraint files")
endif()
foreach(name ${cold_files})
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK}/cold/${name} ${WORK}/warm/${name}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
            "restart-warm output differs from cold for ${name} — the disk "
            "tier served something other than the cold-path bytes")
  endif()
endforeach()

message(STATUS "cache-dir persistence OK: ${cold_count} outputs bitwise "
               "equal across restart, ${entry_count} cache entries")
