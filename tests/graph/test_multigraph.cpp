#include "graph/multigraph.h"

#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "util/error.h"

namespace ancstr {
namespace {

TEST(HeteroMultigraph, ParallelEdgesAllowed) {
  HeteroMultigraph g(3);
  g.addEdge(0, 1, EdgeType::kGate);
  g.addEdge(0, 1, EdgeType::kGate);
  g.addEdge(0, 1, EdgeType::kDrain);
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_EQ(g.inEdges(1).size(), 3u);
  EXPECT_EQ(g.outEdges(0).size(), 3u);
  EXPECT_EQ(g.inNeighbors(1), std::vector<std::uint32_t>{0});
}

TEST(HeteroMultigraph, EdgeTypeHistogram) {
  HeteroMultigraph g(4);
  g.addEdge(0, 1, EdgeType::kGate);
  g.addEdge(1, 2, EdgeType::kDrain);
  g.addEdge(2, 3, EdgeType::kDrain);
  g.addEdge(3, 0, EdgeType::kPassive);
  const auto hist = g.edgeTypeHistogram();
  EXPECT_EQ(hist[static_cast<std::size_t>(EdgeType::kGate)], 1u);
  EXPECT_EQ(hist[static_cast<std::size_t>(EdgeType::kDrain)], 2u);
  EXPECT_EQ(hist[static_cast<std::size_t>(EdgeType::kSource)], 0u);
  EXPECT_EQ(hist[static_cast<std::size_t>(EdgeType::kPassive)], 1u);
}

TEST(HeteroMultigraph, InAdjacencySumsMultiplicity) {
  HeteroMultigraph g(3);
  g.addEdge(0, 2, EdgeType::kGate);
  g.addEdge(0, 2, EdgeType::kGate);
  g.addEdge(1, 2, EdgeType::kGate);
  g.addEdge(1, 2, EdgeType::kDrain);
  const nn::Matrix a = g.inAdjacency(EdgeType::kGate).toDense();
  EXPECT_DOUBLE_EQ(a(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
  const nn::Matrix d = g.inAdjacency(EdgeType::kDrain).toDense();
  EXPECT_DOUBLE_EQ(d(2, 1), 1.0);
}

TEST(HeteroMultigraph, SimplifiedDropsParallelAndTypes) {
  HeteroMultigraph g(3);
  g.addEdge(0, 1, EdgeType::kGate);
  g.addEdge(0, 1, EdgeType::kDrain);
  g.addEdge(1, 0, EdgeType::kSource);
  g.addEdge(1, 2, EdgeType::kPassive);
  const SimpleDigraph s = g.simplified();
  EXPECT_EQ(s.numEdges(), 3u);  // 0->1 deduped, 1->0, 1->2
  EXPECT_TRUE(s.hasEdge(0, 1));
  EXPECT_TRUE(s.hasEdge(1, 0));
  EXPECT_TRUE(s.hasEdge(1, 2));
  EXPECT_FALSE(s.hasEdge(2, 1));
}

TEST(HeteroMultigraph, OutOfRangeAsserts) {
  HeteroMultigraph g(2);
  EXPECT_THROW(g.addEdge(0, 5, EdgeType::kGate), InternalError);
}

TEST(EdgeTypeName, AllNamed) {
  EXPECT_STREQ(edgeTypeName(EdgeType::kGate), "gate");
  EXPECT_STREQ(edgeTypeName(EdgeType::kDrain), "drain");
  EXPECT_STREQ(edgeTypeName(EdgeType::kSource), "source");
  EXPECT_STREQ(edgeTypeName(EdgeType::kPassive), "passive");
}

}  // namespace
}  // namespace ancstr
