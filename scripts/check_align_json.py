#!/usr/bin/env python3
"""Validates an ALIGN-compatible constraint export (docs/file_formats.md).

    check_align_json.py EXPORT.json [--require-nonempty]

Checks the schema constraintSetToAlignJson emits: the envelope
(format "align-constraints", version 1, object-valued "cells"), and every
cell entry --

  * SymmetricBlocks: direction "H" or "V"; "pairs" a non-empty list of
    1-element (self-symmetric) or 2-element (pair) lists of non-empty,
    per-entry-unique strings;
  * CurrentMirror: non-empty "reference" string; non-empty "mirrors" list
    of non-empty strings; "ratios" positive numbers, one per mirror.

Exits 0 when the document validates, 1 on any schema violation (all are
reported, not just the first), and 2 when the file is missing or is not
JSON -- the compare_bench.py / gate_counters.py convention.
"""
import argparse
import json
import sys


def check_symmetric_blocks(entry, where, errors):
    if entry.get("direction") not in ("H", "V"):
        errors.append(f"{where}: direction {entry.get('direction')!r} "
                      f"not 'H'/'V'")
    pairs = entry.get("pairs")
    if not isinstance(pairs, list) or not pairs:
        errors.append(f"{where}: pairs missing or empty")
        return
    for i, pair in enumerate(pairs):
        if not isinstance(pair, list) or len(pair) not in (1, 2):
            errors.append(f"{where}: pairs[{i}] is not a 1- or 2-element "
                          f"list")
            continue
        if not all(isinstance(n, str) and n for n in pair):
            errors.append(f"{where}: pairs[{i}] holds a non-string or "
                          f"empty name")
        elif len(pair) == 2 and pair[0] == pair[1]:
            errors.append(f"{where}: pairs[{i}] pairs {pair[0]!r} with "
                          f"itself")


def check_current_mirror(entry, where, errors):
    reference = entry.get("reference")
    if not isinstance(reference, str) or not reference:
        errors.append(f"{where}: reference missing or empty")
    mirrors = entry.get("mirrors")
    ratios = entry.get("ratios")
    if not isinstance(mirrors, list) or not mirrors:
        errors.append(f"{where}: mirrors missing or empty")
        return
    if not all(isinstance(m, str) and m for m in mirrors):
        errors.append(f"{where}: mirrors holds a non-string or empty name")
    if isinstance(reference, str) and reference in mirrors:
        errors.append(f"{where}: reference {reference!r} mirrors itself")
    if not isinstance(ratios, list) or len(ratios) != len(mirrors):
        errors.append(f"{where}: ratios missing or not one per mirror")
    elif not all(isinstance(r, (int, float)) and r > 0 for r in ratios):
        errors.append(f"{where}: ratios must be positive numbers")


def check_document(doc, path, errors):
    if not isinstance(doc, dict):
        errors.append(f"{path}: top level is not an object")
        return 0
    if doc.get("format") != "align-constraints":
        errors.append(f"{path}: format {doc.get('format')!r}, expected "
                      f"'align-constraints'")
    if doc.get("version") != 1:
        errors.append(f"{path}: version {doc.get('version')!r}, expected 1")
    cells = doc.get("cells")
    if not isinstance(cells, dict):
        errors.append(f"{path}: cells missing or not an object")
        return 0
    total = 0
    for cell, entries in cells.items():
        if not isinstance(entries, list):
            errors.append(f"cell {cell!r}: not a list")
            continue
        for i, entry in enumerate(entries):
            where = f"cell {cell!r} entry {i}"
            if not isinstance(entry, dict):
                errors.append(f"{where}: not an object")
                continue
            total += 1
            kind = entry.get("constraint")
            if kind == "SymmetricBlocks":
                check_symmetric_blocks(entry, where, errors)
            elif kind == "CurrentMirror":
                check_current_mirror(entry, where, errors)
            else:
                errors.append(f"{where}: unknown constraint {kind!r}")
    return total


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("export_path", metavar="EXPORT.json")
    parser.add_argument("--require-nonempty", action="store_true",
                        help="fail when the export holds zero constraints")
    args = parser.parse_args(argv[1:])

    try:
        with open(args.export_path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"ERROR: cannot load {args.export_path}: {err}",
              file=sys.stderr)
        return 2

    errors = []
    total = check_document(doc, args.export_path, errors)
    if args.require_nonempty and total == 0 and not errors:
        errors.append(f"{args.export_path}: no constraints "
                      f"(--require-nonempty)")
    if errors:
        print(f"FAIL: {len(errors)} schema violation(s):", file=sys.stderr)
        for line in errors:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"OK: {args.export_path}: {total} constraint entr"
          f"{'y' if total == 1 else 'ies'} validated")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
