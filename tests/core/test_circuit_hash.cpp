#include "core/circuit_hash.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netlist/builder.h"

namespace ancstr {
namespace {

/// A small differential pair; `prefix` renames every net and device so the
/// name-invariance tests can build structurally identical twins.
Library diffPair(const std::string& prefix) {
  NetlistBuilder b;
  b.beginSubckt(prefix + "ota", {prefix + "inp", prefix + "inn",
                                 prefix + "out", prefix + "vss"});
  b.nmos(prefix + "m1", prefix + "out", prefix + "inp", prefix + "tail",
         prefix + "vss", 2e-6, 0.5e-6);
  b.nmos(prefix + "m2", prefix + "outn", prefix + "inn", prefix + "tail",
         prefix + "vss", 2e-6, 0.5e-6);
  b.res(prefix + "r1", prefix + "out", prefix + "vss", 1e3);
  b.res(prefix + "r2", prefix + "outn", prefix + "vss", 1e3);
  b.endSubckt();
  return b.build(prefix + "ota");
}

/// Leaf master plus `extraCaps` extra capacitors on the instance's `x`
/// port net, to steer the net's FULL-design degree across the cap.
FlatDesign leafUnderLoad(int extraCaps) {
  NetlistBuilder b;
  b.beginSubckt("leaf", {"p"});
  b.res("r1", "p", "q", 1e3);
  b.cap("c1", "q", "p", 1e-15);
  b.endSubckt();
  b.beginSubckt("top", {"x", "vss"});
  b.inst("u1", "leaf", {"x"});
  for (int i = 0; i < extraCaps; ++i) {
    b.cap("cx" + std::to_string(i), "x", "vss", 1e-15);
  }
  b.endSubckt();
  return FlatDesign::elaborate(b.build("top"));
}

TEST(CircuitHash, InvariantUnderRenaming) {
  const FlatDesign a = FlatDesign::elaborate(diffPair(""));
  const FlatDesign b = FlatDesign::elaborate(diffPair("zz_"));
  const GraphBuildOptions graph;
  const FeatureConfig features;
  EXPECT_EQ(structuralHash(a, graph, features),
            structuralHash(b, graph, features));
}

TEST(CircuitHash, InstancesOfSameMasterHashEqual) {
  NetlistBuilder b;
  b.beginSubckt("leaf", {"a", "b"});
  b.res("r1", "a", "mid", 1e3);
  b.cap("c1", "mid", "b", 1e-15);
  b.endSubckt();
  b.beginSubckt("top", {"x", "y", "z"});
  b.inst("u1", "leaf", {"x", "y"});
  b.inst("u2", "leaf", {"y", "z"});
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("top"));
  const auto& hier = design.hierarchy();
  const std::vector<FlatDeviceId> s1 =
      design.subtreeDevices(hier[0].children[0]);
  const std::vector<FlatDeviceId> s2 =
      design.subtreeDevices(hier[0].children[1]);
  ASSERT_NE(s1, s2);  // distinct devices...
  const GraphBuildOptions graph;
  const FeatureConfig features;
  EXPECT_EQ(structuralHash(design, s1, graph, features),  // ...same hash
            structuralHash(design, s2, graph, features));
}

TEST(CircuitHash, SensitiveToDeviceParams) {
  NetlistBuilder b1;
  b1.beginSubckt("c", {"a", "b"});
  b1.res("r1", "a", "b", 1e3);
  b1.endSubckt();
  NetlistBuilder b2;
  b2.beginSubckt("c", {"a", "b"});
  b2.res("r1", "a", "b", 2e3);
  b2.endSubckt();
  const FlatDesign d1 = FlatDesign::elaborate(b1.build("c"));
  const FlatDesign d2 = FlatDesign::elaborate(b2.build("c"));
  const GraphBuildOptions graph;
  const FeatureConfig features;
  EXPECT_NE(structuralHash(d1, graph, features),
            structuralHash(d2, graph, features));
}

TEST(CircuitHash, SensitiveToConnectivity) {
  // Same devices and nets; only m1's gate and source are exchanged.
  NetlistBuilder b1;
  b1.beginSubckt("c", {"d", "g", "s", "vss"});
  b1.nmos("m1", "d", "g", "s", "vss", 1e-6, 1e-7);
  b1.endSubckt();
  NetlistBuilder b2;
  b2.beginSubckt("c", {"d", "g", "s", "vss"});
  b2.nmos("m1", "d", "s", "g", "vss", 1e-6, 1e-7);
  b2.endSubckt();
  const FlatDesign d1 = FlatDesign::elaborate(b1.build("c"));
  const FlatDesign d2 = FlatDesign::elaborate(b2.build("c"));
  const GraphBuildOptions graph;
  const FeatureConfig features;
  EXPECT_NE(structuralHash(d1, graph, features),
            structuralHash(d2, graph, features));
}

TEST(CircuitHash, SensitiveToBuildAndFeatureOptions) {
  const FlatDesign design = FlatDesign::elaborate(diffPair(""));
  const GraphBuildOptions base;
  const FeatureConfig features;
  const util::StructuralHash reference =
      structuralHash(design, base, features);

  GraphBuildOptions capped = base;
  capped.maxNetDegree = 3;
  EXPECT_NE(structuralHash(design, capped, features), reference);

  GraphBuildOptions noBulk = base;
  noBulk.includeBulkPins = !base.includeBulkPins;
  EXPECT_NE(structuralHash(design, noBulk, features), reference);

  FeatureConfig noGeometry = features;
  noGeometry.useGeometry = !features.useGeometry;
  EXPECT_NE(structuralHash(design, base, noGeometry), reference);
}

TEST(CircuitHash, NetDegreeEligibilityUsesFullDesignDegree) {
  // The leaf subtree is identical in both designs; only the surrounding
  // load on its port net differs. With a cap of 3 the loaded design's net
  // is skipped by the graph builder, so the subtree hash must change.
  const FlatDesign light = leafUnderLoad(0);  // x degree 2 (r1 + c1)
  const FlatDesign heavy = leafUnderLoad(4);  // x degree 6
  GraphBuildOptions graph;
  graph.maxNetDegree = 3;
  const FeatureConfig features;
  const auto subtreeOf = [](const FlatDesign& design) {
    return design.subtreeDevices(design.hierarchy()[0].children[0]);
  };
  EXPECT_NE(
      structuralHash(light, subtreeOf(light), graph, features),
      structuralHash(heavy, subtreeOf(heavy), graph, features));

  // Without the cap both subtrees serialize identically again.
  const GraphBuildOptions uncapped;
  EXPECT_EQ(
      structuralHash(light, subtreeOf(light), uncapped, features),
      structuralHash(heavy, subtreeOf(heavy), uncapped, features));
}

TEST(CircuitHash, SubsetOrderDefinesVertexNumbering) {
  const FlatDesign design = FlatDesign::elaborate(diffPair(""));
  const std::vector<FlatDeviceId> forward{0, 1, 2, 3};
  const std::vector<FlatDeviceId> reversed{3, 2, 1, 0};
  const GraphBuildOptions graph;
  const FeatureConfig features;
  EXPECT_NE(structuralHash(design, forward, graph, features),
            structuralHash(design, reversed, graph, features));
}

// Golden value: the cache key must stay stable across platforms and
// releases; an unintended serialization change shows up here before it
// silently invalidates (or worse, aliases) persisted cache entries.
TEST(CircuitHash, GoldenValue) {
  const FlatDesign design = FlatDesign::elaborate(diffPair(""));
  const GraphBuildOptions graph;
  const FeatureConfig features;
  EXPECT_EQ(structuralHash(design, graph, features).hex(),
            "2d6c1dd0e37380d9edd9e72c6548cff4");
}

}  // namespace
}  // namespace ancstr
