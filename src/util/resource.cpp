#include "util/resource.h"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

// Constant-initialised so counting is valid even for allocations made
// during static initialisation, before main().
std::atomic<std::uint64_t> gAllocCount{0};
std::atomic<std::uint64_t> gFreeCount{0};
std::atomic<std::uint64_t> gAllocBytes{0};

void* allocateCounted(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  gAllocBytes.fetch_add(size, std::memory_order_relaxed);
  // Standard operator new contract: retry through the new_handler until it
  // either frees memory or gives up.
  for (;;) {
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void freeCounted(void* p) noexcept {
  if (p == nullptr) return;
  gFreeCount.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void* allocateAlignedCounted(std::size_t size, std::size_t alignment) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  gAllocBytes.fetch_add(size, std::memory_order_relaxed);
  for (;;) {
#if defined(__unix__) || defined(__APPLE__)
    void* p = nullptr;
    if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*)
                                                     : alignment,
                       size == 0 ? alignment : size) == 0) {
      return p;
    }
#else
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
#endif
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

// Global allocator replacements. Living in this translation unit means the
// hook is linked into a binary exactly when something in it references the
// sampler API below (static-archive pull-in), so the library imposes no
// cost on binaries that never sample resources.
void* operator new(std::size_t size) { return allocateCounted(size); }
void* operator new[](std::size_t size) { return allocateCounted(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  gAllocBytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  gAllocBytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return allocateAlignedCounted(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return allocateAlignedCounted(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { freeCounted(p); }
void operator delete[](void* p) noexcept { freeCounted(p); }
void operator delete(void* p, std::size_t) noexcept { freeCounted(p); }
void operator delete[](void* p, std::size_t) noexcept { freeCounted(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  freeCounted(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  freeCounted(p);
}
void operator delete(void* p, std::align_val_t) noexcept { freeCounted(p); }
void operator delete[](void* p, std::align_val_t) noexcept { freeCounted(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  freeCounted(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  freeCounted(p);
}

namespace ancstr::util {

MemoryCounters memoryCounters() noexcept {
  MemoryCounters out;
  out.allocCount = gAllocCount.load(std::memory_order_relaxed);
  out.freeCount = gFreeCount.load(std::memory_order_relaxed);
  out.allocBytes = gAllocBytes.load(std::memory_order_relaxed);
  return out;
}

std::uint64_t peakRssBytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

ResourceSample ResourceSample::now() noexcept {
  ResourceSample out;
  out.memory = memoryCounters();
  out.peakRssBytes = util::peakRssBytes();
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    out.userCpuSeconds =
        static_cast<double>(usage.ru_utime.tv_sec) +
        static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    out.systemCpuSeconds =
        static_cast<double>(usage.ru_stime.tv_sec) +
        static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
  }
#endif
  return out;
}

ResourceSample ResourceSample::since(const ResourceSample& before)
    const noexcept {
  auto sub = [](std::uint64_t a, std::uint64_t b) {
    return a >= b ? a - b : 0;
  };
  ResourceSample out;
  out.memory.allocCount = sub(memory.allocCount, before.memory.allocCount);
  out.memory.freeCount = sub(memory.freeCount, before.memory.freeCount);
  out.memory.allocBytes = sub(memory.allocBytes, before.memory.allocBytes);
  out.peakRssBytes = peakRssBytes;  // monotonic high-water mark, keep absolute
  out.userCpuSeconds =
      userCpuSeconds > before.userCpuSeconds
          ? userCpuSeconds - before.userCpuSeconds : 0.0;
  out.systemCpuSeconds =
      systemCpuSeconds > before.systemCpuSeconds
          ? systemCpuSeconds - before.systemCpuSeconds : 0.0;
  return out;
}

}  // namespace ancstr::util
