#include "circuits/truth_composer.h"

#include "util/string_utils.h"

namespace ancstr::circuits {

void TruthComposer::devicePair(const std::string& master, std::string a,
                               std::string b) {
  pairs_[str::toLower(master)].push_back(
      {std::move(a), std::move(b), ConstraintLevel::kDevice});
}

void TruthComposer::systemPair(const std::string& master, std::string a,
                               std::string b) {
  pairs_[str::toLower(master)].push_back(
      {std::move(a), std::move(b), ConstraintLevel::kSystem});
}

void TruthComposer::child(const std::string& parent, std::string instName,
                          std::string childMaster) {
  children_[str::toLower(parent)].push_back(
      {str::toLower(instName), str::toLower(childMaster)});
}

void TruthComposer::expandInto(const std::string& master,
                               const std::string& prefix,
                               std::vector<GroundTruthEntry>& out) const {
  if (const auto it = pairs_.find(master); it != pairs_.end()) {
    // The hierarchy path of constraints *inside* this master is the prefix
    // without its trailing '/'.
    const std::string hierPath =
        prefix.empty() ? "" : prefix.substr(0, prefix.size() - 1);
    for (const LocalPair& p : it->second) {
      out.push_back({hierPath, p.a, p.b, p.level});
    }
  }
  if (const auto it = children_.find(master); it != children_.end()) {
    for (const ChildInst& c : it->second) {
      expandInto(c.master, prefix + c.instName + "/", out);
    }
  }
}

std::vector<GroundTruthEntry> TruthComposer::expand(
    const std::string& top) const {
  std::vector<GroundTruthEntry> out;
  expandInto(str::toLower(top), "", out);
  return out;
}

}  // namespace ancstr::circuits
