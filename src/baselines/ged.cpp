#include "baselines/ged.h"

#include <array>
#include <cmath>

#include "core/graph_builder.h"
#include "graph/hungarian.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ancstr::ged {
namespace {

/// Per-device descriptor: type, sizing, and typed in-degrees.
struct DeviceSignature {
  DeviceType type = DeviceType::kUnknown;
  double wEff = 0.0;
  double l = 0.0;
  double value = 0.0;
  std::array<double, kNumEdgeTypes> degree{};
};

std::vector<DeviceSignature> signaturesOf(const FlatDesign& design,
                                          HierNodeId node) {
  const std::vector<FlatDeviceId> subtree = design.subtreeDevices(node);
  const CircuitGraph graph = buildInducedHeteroGraph(design, subtree);
  std::vector<DeviceSignature> out(subtree.size());
  for (std::uint32_t v = 0; v < graph.numVertices(); ++v) {
    const FlatDevice& dev = design.device(graph.vertexToDevice[v]);
    DeviceSignature& sig = out[v];
    sig.type = dev.type;
    sig.wEff = dev.params.w * dev.params.nf * dev.params.m;
    sig.l = dev.params.l;
    sig.value = dev.params.value;
    for (const std::uint32_t e : graph.graph.inEdges(v)) {
      ++sig.degree[static_cast<std::size_t>(graph.graph.edges()[e].type)];
    }
  }
  return out;
}

double ratioDistance(double a, double b) {
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  if (hi <= 0.0) return 0.0;
  return lo <= 0.0 ? 1.0 : 1.0 - lo / hi;
}

double matchCost(const DeviceSignature& a, const DeviceSignature& b,
                 const GedConfig& config) {
  double cost = 0.0;
  if (a.type != b.type) cost += config.typeMismatchCost;
  cost += config.sizingWeight *
          (ratioDistance(a.wEff, b.wEff) + ratioDistance(a.l, b.l) +
           ratioDistance(a.value, b.value)) /
          3.0;
  double degreeGap = 0.0;
  for (std::size_t t = 0; t < kNumEdgeTypes; ++t) {
    degreeGap += std::fabs(a.degree[t] - b.degree[t]);
  }
  cost += config.degreeWeight * degreeGap;
  return cost;
}

}  // namespace

double subcircuitGedSimilarity(const FlatDesign& design, HierNodeId a,
                               HierNodeId b, const GedConfig& config) {
  const trace::TraceSpan span("ged.similarity");
  const std::vector<DeviceSignature> sa = signaturesOf(design, a);
  const std::vector<DeviceSignature> sb = signaturesOf(design, b);
  const std::size_t n = std::max(sa.size(), sb.size());
  if (n == 0) return 1.0;

  // Square cost matrix; rows/columns beyond the real devices model
  // insertion/deletion.
  nn::Matrix cost(n, n, config.insertDeleteCost);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    for (std::size_t j = 0; j < sb.size(); ++j) {
      cost(i, j) = matchCost(sa[i], sb[j], config);
    }
  }
  // Dummy-to-dummy pairings are free.
  for (std::size_t i = sa.size(); i < n; ++i) {
    for (std::size_t j = sb.size(); j < n; ++j) cost(i, j) = 0.0;
  }
  static metrics::Counter& assignmentCounter =
      metrics::Registry::instance().counter("ged.assignments");
  assignmentCounter.add();
  const AssignmentResult assignment = solveAssignment(cost);
  // Worst case: every real device deleted and re-inserted.
  const double worst =
      config.insertDeleteCost * static_cast<double>(sa.size() + sb.size());
  if (worst <= 0.0) return 1.0;
  return std::max(0.0, 1.0 - assignment.cost / worst);
}

GedResult detectSystemConstraints(const FlatDesign& design, const Library& lib,
                                  const GedConfig& config) {
  GedResult result;
  static metrics::Counter& pairsCounter =
      metrics::Registry::instance().counter("ged.pairs_scored");
  const trace::TraceSpan span("baseline.ged");
  const Stopwatch watch;
  const CandidateSet candidates = enumerateCandidates(design, lib);
  for (const CandidatePair& pair : candidates.pairs) {
    if (pair.level != ConstraintLevel::kSystem) continue;
    ScoredCandidate scored;
    scored.pair = pair;
    if (pair.a.kind == ModuleKind::kBlock) {
      scored.similarity =
          subcircuitGedSimilarity(design, pair.a.id, pair.b.id, config);
    } else {
      // Passive device pair: a 1-vs-1 assignment degenerates to the
      // match cost itself.
      const FlatDevice& da = design.device(pair.a.id);
      const FlatDevice& db = design.device(pair.b.id);
      scored.similarity =
          1.0 - std::min(1.0, ratioDistance(da.params.value, db.params.value));
    }
    scored.accepted = scored.similarity > config.threshold;
    result.scored.push_back(std::move(scored));
  }
  pairsCounter.add(result.scored.size());
  result.seconds = watch.seconds();
  return result;
}

}  // namespace ancstr::ged
