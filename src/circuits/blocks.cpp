// The block-level benchmark corpus (paper Table IV): 6 OTAs, 6
// comparators, 2 DACs, and 1 latch. These are standard public topologies
// of the kind shipped with ALIGN / MAGICAL, written as SPICE text (so the
// corpus also continuously exercises the parser) with designer-style
// ground-truth symmetry annotations.
//
// Each circuit deliberately contains both true matched pairs (differential
// pairs, mirrored loads, cross-coupled regeneration, matched passives) and
// near-miss bait (same device type and size but asymmetric roles) so that
// detectors face realistic true-negative candidates.
#include "circuits/benchmark.h"

#include "netlist/spice_parser.h"

namespace ancstr::circuits {
namespace {

CircuitBenchmark makeBlock(
    const std::string& name, const std::string& category, const char* spice,
    std::initializer_list<std::pair<const char*, const char*>> devicePairs,
    std::initializer_list<std::pair<const char*, const char*>> mirrors = {}) {
  CircuitBenchmark bench;
  bench.name = name;
  bench.category = category;
  bench.lib = parseSpice(spice, name + ".sp");
  std::vector<GroundTruthEntry> entries;
  for (const auto& [a, b] : devicePairs) {
    entries.push_back({"", a, b, ConstraintLevel::kDevice,
                       ConstraintType::kSymmetryPair});
  }
  // Mirror labels are (diode-connected reference, mirror output device).
  for (const auto& [ref, mir] : mirrors) {
    entries.push_back({"", ref, mir, ConstraintLevel::kDevice,
                       ConstraintType::kCurrentMirror});
  }
  bench.truth = GroundTruth(std::move(entries));
  return bench;
}

// ---------------------------------------------------------------- OTA1
// Telescopic cascode OTA, differential in/out. 12 devices.
constexpr const char* kOta1 = R"(
* OTA1: telescopic cascode
.subckt ota1 vinp vinn voutp voutn vbn vbnc vbpc ibias vdd vss
m1 n1 vinp ntail vss nch_lvt w=4u l=0.2u nf=2
m2 n2 vinn ntail vss nch_lvt w=4u l=0.2u nf=2
m3 voutn vbnc n1 vss nch w=4u l=0.2u
m4 voutp vbnc n2 vss nch w=4u l=0.2u
m5 voutn vbpc p1 vdd pch w=8u l=0.2u
m6 voutp vbpc p2 vdd pch w=8u l=0.2u
m7 p1 vbpc vdd vdd pch w=8u l=0.4u
m8 p2 vbpc vdd vdd pch w=8u l=0.4u
m9 ntail vbn vss vss nch w=8u l=0.4u
m10 ibias ibias vss vss nch w=2u l=0.4u
r1 ibias vbn 5k rppoly
c1 voutp voutn 50f cfmom layers=4
.ends ota1
)";

// ---------------------------------------------------------------- OTA2
// Two-stage Miller OTA, single-ended. 20 devices. Bait: m11/m12 output
// buffer shares type+size with the mirror load but is not symmetric.
constexpr const char* kOta2 = R"(
* OTA2: two-stage Miller
.subckt ota2 vinp vinn vout ibias vdd vss
m1 n1 vinp ntail vss nch w=2u l=0.3u nf=2
m2 n2 vinn ntail vss nch w=2u l=0.3u nf=2
m3 n1 n1 vdd vdd pch w=4u l=0.3u
m4 n2 n1 vdd vdd pch w=4u l=0.3u
m5 ntail vbn vss vss nch w=4u l=0.5u
m6 vout n2 vdd vdd pch w=16u l=0.3u
m7 vout vbn vss vss nch w=8u l=0.5u
m8 vbn vbn vss vss nch w=1u l=0.5u
m9 ibn ibn vdd vdd pch w=2u l=0.5u
m10 vbn ibn vdd vdd pch w=2u l=0.5u
m11 vbuf vout vdd vdd pch w=4u l=0.3u
m12 vbuf vbn vss vss nch w=2u l=0.5u
m13 ibn ibias vss vss nch w=1u l=0.5u
m14 ibias ibias vss vss nch w=1u l=0.5u
r1 vout nz 2k rppoly
c1 nz n2 200f cfmom layers=4
r2 vbuf nload 1k rppoly
c2 nload vss 100f cfmom layers=4
c3 vout vss 150f mimcap
r3 ibias vdd 10k rppoly
.ends ota2
)";

// ---------------------------------------------------------------- OTA3
// Current-mirror OTA. 12 devices.
constexpr const char* kOta3 = R"(
* OTA3: current-mirror OTA
.subckt ota3 vinp vinn vout ibias vdd vss
m1 n1 vinp ntail vss nch_lvt w=3u l=0.2u
m2 n2 vinn ntail vss nch_lvt w=3u l=0.2u
m3 n1 n1 vdd vdd pch w=3u l=0.3u
m4 n2 n2 vdd vdd pch w=3u l=0.3u
m5 nmir n1 vdd vdd pch w=9u l=0.3u
m6 vout n2 vdd vdd pch w=9u l=0.3u
m7 nmir nmir vss vss nch w=3u l=0.3u
m8 vout nmir vss vss nch w=3u l=0.3u
m9 ntail vbn vss vss nch w=6u l=0.4u
m10 vbn ibias vss vss nch w=1.5u l=0.4u
r1 ibias vbn 8k rppoly
c1 vout vss 100f cfmom layers=4
.ends ota3
)";

// ---------------------------------------------------------------- OTA4
// Fully differential folded-cascode OTA with switched-capacitor CMFB.
// 36 devices.
constexpr const char* kOta4 = R"(
* OTA4: folded cascode + SC-CMFB
.subckt ota4 vinp vinn voutp voutn vcm phi1 phi2 ibias vdd vss
m1 nf1 vinp ntail vdd pch_lvt w=8u l=0.2u nf=4
m2 nf2 vinn ntail vdd pch_lvt w=8u l=0.2u nf=4
m3 ntail vbp vdd vdd pch w=16u l=0.4u
m4 nf1 vbn2 vss vss nch w=6u l=0.4u
m5 nf2 vbn2 vss vss nch w=6u l=0.4u
m6 voutn vbnc nf1 vss nch w=6u l=0.2u
m7 voutp vbnc nf2 vss nch w=6u l=0.2u
m8 voutn vbpc pc1 vdd pch w=12u l=0.2u
m9 voutp vbpc pc2 vdd pch w=12u l=0.2u
m10 pc1 vcmfb vdd vdd pch w=12u l=0.4u
m11 pc2 vcmfb vdd vdd pch w=12u l=0.4u
m12 vbp ibias vdd vdd pch w=4u l=0.4u
m13 ibias ibias vss vss nch w=2u l=0.4u
m14 vbn2 vbp vdd vdd pch w=4u l=0.4u
m15 vbn2 vbn2 vss vss nch w=2u l=0.4u
m16 vbnc vbp vdd vdd pch w=4u l=0.4u
m17 vbnc vbnc vss vss nch w=2u l=0.4u
m18 vbpc vbpc vdd vdd pch w=4u l=0.4u
m19 vbpc vbn2 vss vss nch w=2u l=0.4u
m20 scp1 phi1 voutp vss nch w=1u l=0.1u
m21 scn1 phi1 voutn vss nch w=1u l=0.1u
m22 scp1 phi2 vcm vss nch w=1u l=0.1u
m23 scn1 phi2 vcm vss nch w=1u l=0.1u
m24 vcmfb phi1 scmid vss nch w=1u l=0.1u
m25 scmid phi2 vcm vss nch w=1u l=0.1u
c1 scp1 vcmfb 100f cfmom layers=4
c2 scn1 vcmfb 100f cfmom layers=4
c3 voutp vss 200f cfmom layers=5
c4 voutn vss 200f cfmom layers=5
c5 scmid vcmfb 50f cfmom layers=4
r1 vcm rmid 4k rppoly
r2 rmid vss 4k rppoly
m26 nf1 phi2 nf2 vss nch_hvt w=0.5u l=0.1u
c6 vcm vss 80f mimcap
r3 ibias vdd 12k rppoly
.ends ota4
)";

// ---------------------------------------------------------------- OTA5
// Two-stage fully differential OTA with Miller compensation and resistive
// CMFB. 38 devices.
constexpr const char* kOta5 = R"(
* OTA5: two-stage fully differential
.subckt ota5 vinp vinn voutp voutn vcmref ibias vdd vss
m1 n1 vinp ntail vss nch_lvt w=5u l=0.25u nf=2
m2 n2 vinn ntail vss nch_lvt w=5u l=0.25u nf=2
m3 n1 vbp vdd vdd pch w=10u l=0.4u
m4 n2 vbp vdd vdd pch w=10u l=0.4u
m5 ntail vbn vss vss nch w=10u l=0.5u
m6 voutp n1 vdd vdd pch w=20u l=0.25u nf=4
m7 voutn n2 vdd vdd pch w=20u l=0.25u nf=4
m8 voutp vbn2 vss vss nch w=10u l=0.5u
m9 voutn vbn2 vss vss nch w=10u l=0.5u
m10 vbn ibias vss vss nch w=2u l=0.5u
m11 ibias ibias vss vss nch w=2u l=0.5u
m12 vbp vbp vdd vdd pch w=5u l=0.4u
m13 vbp vbn vss vss nch w=2.5u l=0.5u
m14 vbn2 vbn2 vss vss nch w=2u l=0.5u
m15 vbn2 vbp vdd vdd pch w=2.5u l=0.4u
rz1 voutp nz1 1.5k rppoly
cc1 nz1 n1 300f cfmom layers=4
rz2 voutn nz2 1.5k rppoly
cc2 nz2 n2 300f cfmom layers=4
rcm1 voutp vcmsense 20k rppoly
rcm2 voutn vcmsense 20k rppoly
m16 e1 vcmsense etail vss nch w=2u l=0.25u
m17 e2 vcmref etail vss nch w=2u l=0.25u
m18 e1 e1 vdd vdd pch w=3u l=0.4u
m19 e2 e1 vdd vdd pch w=3u l=0.4u
m20 etail vbn vss vss nch w=4u l=0.5u
m21 vbn2cm e2 vdd vdd pch w=3u l=0.4u
m22 vbn2cm vbn2cm vss vss nch w=1.5u l=0.5u
c1 voutp vss 250f cfmom layers=5
c2 voutn vss 250f cfmom layers=5
c3 vcmsense vss 40f mimcap
c4 e2 vss 30f mimcap
m23 voutp startb vdd vdd pch_hvt w=1u l=0.2u
m24 startb ibias vss vss nch_hvt w=1u l=0.3u
r1 ibias vdd 15k rppoly
r2 startb vdd 30k rppoly
.ends ota5
)";

// ---------------------------------------------------------------- OTA6
// Simple 5T OTA with class-A output stage. 15 devices.
constexpr const char* kOta6 = R"(
* OTA6: 5T + output stage
.subckt ota6 vinp vinn vout ibias vdd vss
m1 n1 vinp ntail vss nch w=2.5u l=0.25u
m2 n2 vinn ntail vss nch w=2.5u l=0.25u
m3 n1 n1 vdd vdd pch w=5u l=0.35u
m4 n2 n1 vdd vdd pch w=5u l=0.35u
m5 ntail vbn vss vss nch w=5u l=0.5u
m6 vout n2 vdd vdd pch w=12u l=0.35u
m7 vout vbn vss vss nch w=6u l=0.5u
m8 vbn ibias vss vss nch w=1.2u l=0.5u
m9 ibias ibias vss vss nch w=1.2u l=0.5u
m10 ncasc vbn2 n1cas vss nch w=1u l=0.3u
m11 vbn2 vbn2 vss vss nch w=1u l=0.5u
m12 n1cas vbn vss vss nch w=1u l=0.5u
r1 nz vout 1k rppoly
c1 n2 nz 150f cfmom layers=4
c2 vout vss 120f cfmom layers=4
.ends ota6
)";

// ---------------------------------------------------------------- COMP1
// Preamp + latch + SR output comparator. 47 devices.
constexpr const char* kComp1 = R"(
* COMP1: preamp + regenerative latch + SR latch
.subckt comp1 vinp vinn clk clkb voutp voutn vbn ibias vdd vss
* preamp
m1 a1 vinp ptail vss nch_lvt w=4u l=0.15u nf=2
m2 a2 vinn ptail vss nch_lvt w=4u l=0.15u nf=2
m3 a1 vbld vdd vdd pch w=4u l=0.2u
m4 a2 vbld vdd vdd pch w=4u l=0.2u
m5 ptail vbn vss vss nch w=8u l=0.3u
m6 vbld vbld vdd vdd pch w=2u l=0.3u
m7 vbld vbn vss vss nch w=1u l=0.3u
* latch stage
m8 l1 a1 ltail vss nch w=3u l=0.1u
m9 l2 a2 ltail vss nch w=3u l=0.1u
m10 l1 l2 vss vss nch w=2u l=0.1u
m11 l2 l1 vss vss nch w=2u l=0.1u
m12 l1 l2 vdd vdd pch w=4u l=0.1u
m13 l2 l1 vdd vdd pch w=4u l=0.1u
m14 ltail clk vss vss nch w=6u l=0.1u
m15 l1 clkb vdd vdd pch w=2u l=0.1u
m16 l2 clkb vdd vdd pch w=2u l=0.1u
* SR latch (cross-coupled NANDs)
m17 sq l1 vdd vdd pch w=2u l=0.1u
m18 sq sqb vdd vdd pch w=2u l=0.1u
m19 sq l1 si1 vss nch w=2u l=0.1u
m20 si1 sqb vss vss nch w=2u l=0.1u
m21 sqb l2 vdd vdd pch w=2u l=0.1u
m22 sqb sq vdd vdd pch w=2u l=0.1u
m23 sqb l2 si2 vss nch w=2u l=0.1u
m24 si2 sq vss vss nch w=2u l=0.1u
* output inverters x2 per side
m25 ob1 sq vdd vdd pch w=3u l=0.1u
m26 ob1 sq vss vss nch w=1.5u l=0.1u
m27 voutp ob1 vdd vdd pch w=6u l=0.1u
m28 voutp ob1 vss vss nch w=3u l=0.1u
m29 ob2 sqb vdd vdd pch w=3u l=0.1u
m30 ob2 sqb vss vss nch w=1.5u l=0.1u
m31 voutn ob2 vdd vdd pch w=6u l=0.1u
m32 voutn ob2 vss vss nch w=3u l=0.1u
* clock buffers
m33 clki clk vdd vdd pch w=2u l=0.1u
m34 clki clk vss vss nch w=1u l=0.1u
m35 clkib clki vdd vdd pch w=4u l=0.1u
m36 clkib clki vss vss nch w=2u l=0.1u
* bias
m37 vbn ibias vss vss nch w=1u l=0.3u
m38 ibias ibias vss vss nch w=1u l=0.3u
m39 a1 clkb vdd vdd pch_hvt w=1u l=0.1u
m40 a2 clkb vdd vdd pch_hvt w=1u l=0.1u
r1 ibias vdd 10k rppoly
c1 a1 vss 20f cfmom layers=3
c2 a2 vss 20f cfmom layers=3
c3 voutp vss 10f cfmom layers=3
c4 voutn vss 10f cfmom layers=3
r2 vinp cmp 30k rppoly
r3 vinn cmn 30k rppoly
.ends comp1
)";

// ---------------------------------------------------------------- COMP2
// Minimal dynamic comparator core. 8 devices.
constexpr const char* kComp2 = R"(
* COMP2: dynamic comparator core
.subckt comp2 vinp vinn clk voutp voutn vdd vss
m1 voutn vinp ctail vss nch w=3u l=0.1u
m2 voutp vinn ctail vss nch w=3u l=0.1u
m3 voutn voutp vss vss nch w=2u l=0.1u
m4 voutp voutn vss vss nch w=2u l=0.1u
m5 voutn voutp vdd vdd pch w=4u l=0.1u
m6 voutp voutn vdd vdd pch w=4u l=0.1u
m7 ctail clk vss vss nch w=6u l=0.1u
m8 ctail clk vdd vdd pch w=1u l=0.1u
.ends comp2
)";

// ---------------------------------------------------------------- COMP3
// Double-tail comparator. 34 devices.
constexpr const char* kComp3 = R"(
* COMP3: double-tail dynamic comparator
.subckt comp3 vinp vinn clk clkb voutp voutn vdd vss
* first stage
m1 d1 vinp t1 vss nch_lvt w=4u l=0.1u nf=2
m2 d2 vinn t1 vss nch_lvt w=4u l=0.1u nf=2
m3 t1 clk vss vss nch w=8u l=0.1u
m4 d1 clk vdd vdd pch w=3u l=0.1u
m5 d2 clk vdd vdd pch w=3u l=0.1u
* intermediate
m6 g1 d1 vdd vdd pch w=2u l=0.1u
m7 g2 d2 vdd vdd pch w=2u l=0.1u
* second stage latch
m8 voutn g1 t2 vss nch w=3u l=0.1u
m9 voutp g2 t2 vss nch w=3u l=0.1u
m10 t2 clkb vss vss nch w=6u l=0.1u
m11 voutn voutp vss vss nch w=2u l=0.1u
m12 voutp voutn vss vss nch w=2u l=0.1u
m13 voutn voutp vdd vdd pch w=4u l=0.1u
m14 voutp voutn vdd vdd pch w=4u l=0.1u
m15 voutn clkb vdd vdd pch w=1.5u l=0.1u
m16 voutp clkb vdd vdd pch w=1.5u l=0.1u
* output buffers
m17 ob1 voutp vdd vdd pch w=3u l=0.1u
m18 ob1 voutp vss vss nch w=1.5u l=0.1u
m19 ob2 voutn vdd vdd pch w=3u l=0.1u
m20 ob2 voutn vss vss nch w=1.5u l=0.1u
* clock generation inverters
m21 clkint clk vdd vdd pch w=2u l=0.1u
m22 clkint clk vss vss nch w=1u l=0.1u
m23 clkb2 clkint vdd vdd pch w=4u l=0.1u
m24 clkb2 clkint vss vss nch w=2u l=0.1u
* input sampling network
m25 vinp phis sinp vss nch w=1u l=0.1u
m26 vinn phis sinn vss nch w=1u l=0.1u
c1 sinp vss 40f cfmom layers=4
c2 sinn vss 40f cfmom layers=4
c3 g1 vss 8f cfmom layers=3
c4 g2 vss 8f cfmom layers=3
r1 vinp esd1 200 rppoly
r2 vinn esd2 200 rppoly
m27 d1 clkb d2 vss nch_hvt w=0.5u l=0.1u
m28 phis clk vss vss nch w=1u l=0.1u
.ends comp3
)";

// ---------------------------------------------------------------- COMP4
// StrongARM latch comparator. 22 devices.
constexpr const char* kComp4 = R"(
* COMP4: StrongARM latch
.subckt comp4 vinp vinn clk voutp voutn vdd vss
m1 x1 vinp tail vss nch_lvt w=5u l=0.1u nf=2
m2 x2 vinn tail vss nch_lvt w=5u l=0.1u nf=2
m3 y1 x2 x1 vss nch w=3u l=0.1u
m4 y2 x1 x2 vss nch w=3u l=0.1u
m5 y1 y2 vdd vdd pch w=4u l=0.1u
m6 y2 y1 vdd vdd pch w=4u l=0.1u
m7 tail clk vss vss nch w=10u l=0.1u
m8 x1 clk vdd vdd pch w=2u l=0.1u
m9 x2 clk vdd vdd pch w=2u l=0.1u
m10 y1 clk vdd vdd pch w=2u l=0.1u
m11 y2 clk vdd vdd pch w=2u l=0.1u
m12 voutp y1 vdd vdd pch w=3u l=0.1u
m13 voutp y1 vss vss nch w=1.5u l=0.1u
m14 voutn y2 vdd vdd pch w=3u l=0.1u
m15 voutn y2 vss vss nch w=1.5u l=0.1u
m16 clkd clk vdd vdd pch w=1u l=0.1u
m17 clkd clk vss vss nch w=0.5u l=0.1u
c1 x1 vss 6f cfmom layers=3
c2 x2 vss 6f cfmom layers=3
c3 voutp vss 8f mimcap
r1 clkd clkload 500 rppoly
m18 tail clkd vss vss nch_hvt w=1u l=0.1u
.ends comp4
)";

// ---------------------------------------------------------------- COMP5
// Dynamic comparator with neutralisation caps. 17 devices.
constexpr const char* kComp5 = R"(
* COMP5: dynamic comparator, neutralised
.subckt comp5 vinp vinn clk voutp voutn vdd vss
m1 q1 vinp tail vss nch w=4u l=0.12u
m2 q2 vinn tail vss nch w=4u l=0.12u
m3 q1 q2 vss vss nch w=2u l=0.12u
m4 q2 q1 vss vss nch w=2u l=0.12u
m5 q1 q2 vdd vdd pch w=4u l=0.12u
m6 q2 q1 vdd vdd pch w=4u l=0.12u
m7 tail clk vss vss nch w=8u l=0.12u
m8 q1 clk vdd vdd pch w=2u l=0.12u
m9 q2 clk vdd vdd pch w=2u l=0.12u
c1 q1 vinn 4f cfmom layers=3
c2 q2 vinp 4f cfmom layers=3
m10 voutp q1 vdd vdd pch w=3u l=0.12u
m11 voutp q1 vss vss nch w=1.5u l=0.12u
m12 voutn q2 vdd vdd pch w=3u l=0.12u
m13 voutn q2 vss vss nch w=1.5u l=0.12u
c3 voutp voutn 6f cfmom layers=3
m14 tail en vss vss nch_hvt w=1u l=0.2u
.ends comp5
)";

// ---------------------------------------------------------------- COMP6
// Clocked comparator with input offset-cancel switches. 17 devices.
constexpr const char* kComp6 = R"(
* COMP6: comparator with offset-cancel switches
.subckt comp6 vinp vinn clk phi voutp voutn vdd vss
m1 r1 vinp tail vss nch_lvt w=3.5u l=0.15u
m2 r2 vinn tail vss nch_lvt w=3.5u l=0.15u
m3 r1 r2 vss vss nch w=1.8u l=0.15u
m4 r2 r1 vss vss nch w=1.8u l=0.15u
m5 r1 r2 vdd vdd pch w=3.6u l=0.15u
m6 r2 r1 vdd vdd pch w=3.6u l=0.15u
m7 tail clk vss vss nch w=7u l=0.15u
m8 r1 clk vdd vdd pch w=1.8u l=0.15u
m9 r2 clk vdd vdd pch w=1.8u l=0.15u
m10 vinp phi ofc1 vss nch w=1u l=0.15u
m11 vinn phi ofc2 vss nch w=1u l=0.15u
c1 ofc1 vss 25f cfmom layers=4
c2 ofc2 vss 25f cfmom layers=4
m12 voutp r1 vdd vdd pch w=2.5u l=0.15u
m13 voutp r1 vss vss nch w=1.2u l=0.15u
m14 voutn r2 vdd vdd pch w=2.5u l=0.15u
m15 voutn r2 vss vss nch w=1.2u l=0.15u
.ends comp6
)";

// ---------------------------------------------------------------- DAC1
// 3-bit binary current-steering DAC. 10 devices. Switch pairs within a
// bit are matched; widths scale 1x/2x/4x across bits so cross-bit pairs
// are honest true negatives.
constexpr const char* kDac1 = R"(
* DAC1: 3-bit current steering
.subckt dac1 b0 b0b b1 b1b b2 b2b ioutp ioutn vbn vdd vss
mcs0 s0 vbn vss vss nch w=2u l=0.5u
msw0p ioutp b0 s0 vss nch w=1u l=0.1u
msw0n ioutn b0b s0 vss nch w=1u l=0.1u
mcs1 s1 vbn vss vss nch w=4u l=0.5u
msw1p ioutp b1 s1 vss nch w=2u l=0.1u
msw1n ioutn b1b s1 vss nch w=2u l=0.1u
mcs2 s2 vbn vss vss nch w=8u l=0.5u
msw2p ioutp b2 s2 vss nch w=4u l=0.1u
msw2n ioutn b2b s2 vss nch w=4u l=0.1u
mbias vbn vbn vss vss nch w=2u l=0.5u
.ends dac1
)";

// ---------------------------------------------------------------- DAC2
// 3-bit capacitive DAC slice with reset switches. 12 devices.
constexpr const char* kDac2 = R"(
* DAC2: capacitive DAC slice
.subckt dac2 d0 d1 d2 vtop vref vss rst
c0 vtop n0 20f cfmom layers=4
c1 vtop n1 40f cfmom layers=4
c2 vtop n2 80f cfmom layers=4
cd vtop vss 20f cfmom layers=4
m0r n0 d0 vref vss nch w=1u l=0.1u
m0g n0 rst vss vss nch w=1u l=0.1u
m1r n1 d1 vref vss nch w=2u l=0.1u
m1g n1 rst vss vss nch w=2u l=0.1u
m2r n2 d2 vref vss nch w=4u l=0.1u
m2g n2 rst vss vss nch w=4u l=0.1u
mtop vtop rst vss vss nch w=2u l=0.1u
cp vtop vss 5f mimcap
.ends dac2
)";

// ---------------------------------------------------------------- LATCH1
// CML master-slave latch. 24 devices.
constexpr const char* kLatch1 = R"(
* LATCH1: CML master-slave latch
.subckt latch1 dinp dinn clk clkb qoutp qoutn vbn vdd vss
* master: track pair
m1 mq1 dinp mt1 vss nch w=3u l=0.12u
m2 mq2 dinn mt1 vss nch w=3u l=0.12u
* master: regeneration pair
m3 mq1 mq2 mt2 vss nch w=2u l=0.12u
m4 mq2 mq1 mt2 vss nch w=2u l=0.12u
* master: clock steering
m5 mt1 clk mtail vss nch w=4u l=0.12u
m6 mt2 clkb mtail vss nch w=4u l=0.12u
m7 mtail vbn vss vss nch w=8u l=0.3u
r1 mq1 vdd 3k rppoly
r2 mq2 vdd 3k rppoly
* slave: track pair
m8 qoutp mq2 st1 vss nch w=3u l=0.12u
m9 qoutn mq1 st1 vss nch w=3u l=0.12u
* slave: regeneration pair
m10 qoutp qoutn st2 vss nch w=2u l=0.12u
m11 qoutn qoutp st2 vss nch w=2u l=0.12u
* slave: clock steering
m12 st1 clkb stail vss nch w=4u l=0.12u
m13 st2 clk stail vss nch w=4u l=0.12u
m14 stail vbn vss vss nch w=8u l=0.3u
r3 qoutp vdd 3k rppoly
r4 qoutn vdd 3k rppoly
* bias
m15 vbn vbn vss vss nch w=2u l=0.3u
c1 qoutp vss 12f cfmom layers=3
c2 qoutn vss 12f cfmom layers=3
c3 vbn vss 30f mimcap
.ends latch1
)";

}  // namespace

std::vector<CircuitBenchmark> blockBenchmarks() {
  std::vector<CircuitBenchmark> out;

  out.push_back(makeBlock("OTA1", "OTA", kOta1,
                          {{"m1", "m2"},
                           {"m3", "m4"},
                           {"m5", "m6"},
                           {"m7", "m8"}}));
  out.push_back(makeBlock("OTA2", "OTA", kOta2,
                          {{"m1", "m2"}, {"m3", "m4"}},
                          {{"m3", "m4"},
                           {"m8", "m5"},
                           {"m8", "m7"},
                           {"m8", "m12"},
                           {"m14", "m13"},
                           {"m9", "m10"}}));
  out.push_back(makeBlock("OTA3", "OTA", kOta3,
                          {{"m1", "m2"},
                           {"m3", "m4"},
                           {"m5", "m6"},
                           {"m7", "m8"}},
                          {{"m3", "m5"},
                           {"m4", "m6"},
                           {"m7", "m8"}}));
  out.push_back(makeBlock("OTA4", "OTA", kOta4,
                          {{"m1", "m2"},
                           {"m4", "m5"},
                           {"m6", "m7"},
                           {"m8", "m9"},
                           {"m10", "m11"},
                           {"m20", "m21"},
                           {"m22", "m23"},
                           {"c1", "c2"},
                           {"c3", "c4"},
                           {"r1", "r2"}},
                          {{"m15", "m4"},
                           {"m15", "m5"},
                           {"m15", "m19"}}));
  out.push_back(makeBlock("OTA5", "OTA", kOta5,
                          {{"m1", "m2"},
                           {"m3", "m4"},
                           {"m6", "m7"},
                           {"m8", "m9"},
                           {"m16", "m17"},
                           {"m18", "m19"},
                           {"rz1", "rz2"},
                           {"cc1", "cc2"},
                           {"rcm1", "rcm2"},
                           {"c1", "c2"}},
                          {{"m11", "m10"},
                           {"m12", "m3"},
                           {"m12", "m4"},
                           {"m12", "m15"},
                           {"m14", "m8"},
                           {"m14", "m9"},
                           {"m18", "m19"}}));
  out.push_back(makeBlock("OTA6", "OTA", kOta6,
                          {{"m1", "m2"}, {"m3", "m4"}},
                          {{"m3", "m4"},
                           {"m9", "m8"}}));

  out.push_back(makeBlock("COMP1", "COMP", kComp1,
                          {{"m1", "m2"},
                           {"m3", "m4"},
                           {"m8", "m9"},
                           {"m10", "m11"},
                           {"m12", "m13"},
                           {"m15", "m16"},
                           {"m17", "m21"},
                           {"m18", "m22"},
                           {"m19", "m23"},
                           {"m20", "m24"},
                           {"m25", "m29"},
                           {"m26", "m30"},
                           {"m27", "m31"},
                           {"m28", "m32"},
                           {"m39", "m40"},
                           {"c1", "c2"},
                           {"c3", "c4"},
                           {"r2", "r3"}},
                          {{"m6", "m3"},
                           {"m6", "m4"},
                           {"m38", "m37"}}));
  out.push_back(makeBlock("COMP2", "COMP", kComp2,
                          {{"m1", "m2"}, {"m3", "m4"}, {"m5", "m6"}}));
  out.push_back(makeBlock("COMP3", "COMP", kComp3,
                          {{"m1", "m2"},
                           {"m4", "m5"},
                           {"m6", "m7"},
                           {"m8", "m9"},
                           {"m11", "m12"},
                           {"m13", "m14"},
                           {"m15", "m16"},
                           {"m17", "m19"},
                           {"m18", "m20"},
                           {"m25", "m26"},
                           {"c1", "c2"},
                           {"c3", "c4"},
                           {"r1", "r2"}}));
  out.push_back(makeBlock("COMP4", "COMP", kComp4,
                          {{"m1", "m2"},
                           {"m3", "m4"},
                           {"m5", "m6"},
                           {"m8", "m9"},
                           {"m10", "m11"},
                           {"m12", "m14"},
                           {"m13", "m15"},
                           {"c1", "c2"}}));
  out.push_back(makeBlock("COMP5", "COMP", kComp5,
                          {{"m1", "m2"},
                           {"m3", "m4"},
                           {"m5", "m6"},
                           {"m8", "m9"},
                           {"m10", "m12"},
                           {"m11", "m13"},
                           {"c1", "c2"}}));
  out.push_back(makeBlock("COMP6", "COMP", kComp6,
                          {{"m1", "m2"},
                           {"m3", "m4"},
                           {"m5", "m6"},
                           {"m8", "m9"},
                           {"m10", "m11"},
                           {"m12", "m14"},
                           {"m13", "m15"},
                           {"c1", "c2"}}));

  out.push_back(makeBlock("DAC1", "DAC", kDac1,
                          {{"msw0p", "msw0n"},
                           {"msw1p", "msw1n"},
                           {"msw2p", "msw2n"}},
                          {{"mbias", "mcs0"},
                           {"mbias", "mcs1"},
                           {"mbias", "mcs2"}}));
  out.push_back(makeBlock("DAC2", "DAC", kDac2,
                          {{"m0r", "m0g"}, {"m1r", "m1g"}, {"m2r", "m2g"}}));

  out.push_back(makeBlock("LATCH1", "LATCH", kLatch1,
                          {{"m1", "m2"},
                           {"m3", "m4"},
                           {"m5", "m6"},
                           {"m8", "m9"},
                           {"m10", "m11"},
                           {"m12", "m13"},
                           {"r1", "r2"},
                           {"r3", "r4"},
                           {"c1", "c2"},
                           {"m7", "m14"}},
                          {{"m15", "m7"}, {"m15", "m14"}}));
  return out;
}

}  // namespace ancstr::circuits
