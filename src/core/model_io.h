// Model parameter persistence: a small, versioned, human-readable text
// format so trained models can be shipped next to netlists.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "core/model.h"

namespace ancstr {

/// Serialises config + all parameter matrices.
void saveModel(const GnnModel& model, std::ostream& os);
void saveModelFile(const GnnModel& model, const std::filesystem::path& path);

/// Reads a model saved by saveModel. Throws Error on format/version
/// mismatch or if the parameter count/shape disagrees with the config.
GnnModel loadModel(std::istream& is);
GnnModel loadModelFile(const std::filesystem::path& path);

}  // namespace ancstr
