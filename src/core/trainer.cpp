#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <string>

#include "nn/optim.h"
#include "util/diagnostics.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ancstr {
namespace {

/// One graph's contribution to a batch: per-parameter gradients of the
/// contrastive loss evaluated against the batch-start weights.
struct GraphContribution {
  std::vector<nn::Matrix> grads;  ///< aligned with model.parameters()
  double loss = 0.0;
  bool contributed = false;  ///< false for degenerate/empty graphs
};

GraphContribution evaluateGraph(const GnnModel& model,
                                const std::vector<nn::Tensor>& params,
                                const PreparedGraph& g,
                                const TrainConfig& config, Rng& rng) {
  GraphContribution out;
  if (g.numVertices() < 2) return out;
  const ContrastiveBatch batch =
      sampleContrastiveBatch(g, config.negativeSamples, rng);
  if (batch.size() == 0) return out;

  nn::Tensor z = model.forward(g);
  nn::Tensor loss = contrastiveLoss(z, batch, config.meanReduction);
  nn::zeroGrads(params);
  loss.backward();

  out.grads.reserve(params.size());
  for (const nn::Tensor& p : params) {
    out.grads.push_back(p.grad().empty() ? nn::Matrix(p.rows(), p.cols())
                                         : p.grad());
  }
  out.loss = loss.value()(0, 0);
  out.contributed = true;
  return out;
}

bool allFinite(const nn::Matrix& m) {
  const double* p = m.data();
  const std::size_t n = m.rows() * m.cols();
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool gradsFinite(const std::vector<nn::Tensor>& params) {
  for (const nn::Tensor& p : params) {
    if (!p.grad().empty() && !allFinite(p.grad())) return false;
  }
  return true;
}

}  // namespace

TrainStats trainUnsupervised(GnnModel& model,
                             const std::vector<PreparedGraph>& corpus,
                             const TrainConfig& config, Rng& rng,
                             std::size_t threads) {
  const trace::TraceSpan trainSpan("train.loop");
  static metrics::Histogram& lossHistogram =
      metrics::Registry::instance().histogram(
          "train.epoch_loss", {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0});
  static metrics::Counter& epochCounter =
      metrics::Registry::instance().counter("train.epochs");
  static metrics::Gauge& finalLossGauge =
      metrics::Registry::instance().gauge("train.final_loss");
  static metrics::Counter& nonFiniteCounter =
      metrics::Registry::instance().counter("train.nonfinite_batches");
  static metrics::Counter& retryCounter =
      metrics::Registry::instance().counter("train.epoch_retries");

  TrainStats stats;
  const Stopwatch watch;

  const std::vector<nn::Tensor> params = model.parameters();
  double currentLr = config.learningRate;
  std::optional<nn::Adam> optimizer;
  const auto resetOptimizer = [&] {
    nn::Adam::Config adamConfig;
    adamConfig.lr = currentLr;
    optimizer.emplace(params, adamConfig);
  };
  resetOptimizer();

  util::ThreadPool pool(util::resolveThreadCount(threads));
  // Workers backward() on a cloned model so the shared parameter tensors
  // are never written concurrently; the serial pool skips the clone — the
  // gradients are bitwise the same either way (identical values, identical
  // op sequence), so the thread count cannot change the trained weights.
  const bool cloneModel = pool.size() > 1;

  std::vector<std::size_t> order(corpus.size());
  std::iota(order.begin(), order.end(), 0u);
  const std::size_t batchSize =
      config.batchSize == 0 ? std::max<std::size_t>(corpus.size(), 1)
                            : config.batchSize;

  std::vector<GraphContribution> contributions;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Shuffle order and epoch seed are drawn ONCE per epoch, before any
    // retry: a recovered epoch replays the exact same graph order and
    // per-graph RNG streams, so recovery is deterministic and cannot
    // perturb later epochs' randomness.
    rng.shuffle(order);
    const std::uint64_t epochSeed = rng.next();

    // Last-good weights: restored when a non-finite batch aborts the
    // epoch (docs/robustness.md).
    std::vector<nn::Matrix> snapshot;
    snapshot.reserve(params.size());
    for (const nn::Tensor& p : params) snapshot.push_back(p.value());

    int retries = 0;
    double epochLoss = 0.0;
    for (;;) {
      const trace::TraceSpan epochSpan("train.epoch");
      double lossSum = 0.0;
      std::size_t lossCount = 0;
      bool finite = true;
      for (std::size_t start = 0; start < order.size(); start += batchSize) {
        const trace::TraceSpan batchSpan("train.batch");
        const std::size_t count = std::min(batchSize, order.size() - start);

        // Fan out: every graph of the batch gets its own RNG stream and is
        // evaluated against the batch-start weights. The per-graph span
        // runs on the worker that owns the chunk, so traces attribute the
        // fan-out to worker thread ids.
        contributions.assign(count, {});
        pool.parallelFor(count, [&](std::size_t begin, std::size_t end) {
          const GnnModel local = cloneModel ? model.clone() : GnnModel(model);
          const std::vector<nn::Tensor> localParams =
              cloneModel ? local.parameters() : params;
          for (std::size_t i = begin; i < end; ++i) {
            const trace::TraceSpan graphSpan("train.graph");
            const std::size_t gi = order[start + i];
            Rng graphRng(epochSeed ^ static_cast<std::uint64_t>(gi));
            contributions[i] = evaluateGraph(cloneModel ? local : model,
                                             localParams, corpus[gi], config,
                                             graphRng);
          }
        });

        // Ordered reduction: sum gradients in batch order, then step once.
        nn::zeroGrads(params);
        bool any = false;
        double batchLoss = 0.0;
        for (const GraphContribution& c : contributions) {
          if (!c.contributed) continue;
          any = true;
          lossSum += c.loss;
          batchLoss += c.loss;
          ++lossCount;
          for (std::size_t p = 0; p < params.size(); ++p) {
            nn::Tensor param = params[p];  // shared handle
            param.accumulateGrad(c.grads[p]);
          }
        }
        if (!any) continue;
        // Guardrail: the check (and the fault-injection site) live in this
        // serial section, so detection is independent of the thread count.
        batchLoss = fault::corruptDouble("train.batch_loss", batchLoss);
        if (!std::isfinite(batchLoss) || !gradsFinite(params)) {
          nonFiniteCounter.add();
          log::warn() << "[" << diag::codes::kNonFiniteLoss << "] epoch "
                      << epoch << ": non-finite loss/gradient in batch at "
                      << start << "; abandoning epoch before step";
          finite = false;
          break;
        }
        if (config.clipNorm > 0.0) nn::clipGradNorm(params, config.clipNorm);
        optimizer->step();
      }
      if (finite) {
        epochLoss =
            lossCount > 0 ? lossSum / static_cast<double>(lossCount) : 0.0;
        break;
      }
      if (retries >= config.maxEpochRetries) {
        throw Error("train: non-finite loss/gradients persisted after " +
                    std::to_string(retries) + " retries [" +
                    std::string(diag::codes::kRetriesExhausted) + "]");
      }
      ++retries;
      ++stats.epochRetries;
      retryCounter.add();
      for (std::size_t p = 0; p < params.size(); ++p) {
        nn::Tensor param = params[p];  // shared handle
        param.setValue(snapshot[p]);
      }
      currentLr *= config.retryLrBackoff;
      resetOptimizer();
      log::warn() << "[" << diag::codes::kEpochRetry << "] epoch " << epoch
                  << ": restored last-good weights, retry " << retries << "/"
                  << config.maxEpochRetries << " with lr " << currentLr;
    }
    stats.epochLoss.push_back(epochLoss);
    lossHistogram.observe(epochLoss);
    epochCounter.add();
    if (config.verbose) {
      log::info() << "epoch " << epoch << " loss " << epochLoss;
    }
  }
  finalLossGauge.set(stats.finalLoss());
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace ancstr
