#include "util/disk_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/diagnostics.h"
#include "util/fault.h"

namespace ancstr {
namespace {

namespace fs = std::filesystem;
using util::DiskCache;
using util::DiskCacheConfig;
using util::DiskCacheStats;
using util::StructuralHash;

/// Fresh per-test store directory under the gtest temp root.
fs::path freshDir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("ancstr_disk_cache_" + name);
  fs::remove_all(dir);
  return dir;
}

StructuralHash key(std::uint64_t n) {
  StructuralHash h;
  h.hi = 0x9e3779b97f4a7c15ull * (n + 1);
  h.lo = 0xc2b2ae3d27d4eb4full ^ (n << 7);
  return h;
}

/// Synchronous, no-backoff config: every put is durable on return and
/// retry loops run instantly, so tests are deterministic and fast.
DiskCacheConfig syncConfig(const fs::path& dir) {
  DiskCacheConfig config;
  config.dir = dir;
  config.writeBehind = false;
  config.retryBackoffMicros = 0;
  return config;
}

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void writeFile(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool sinkHasCode(const diag::DiagnosticSink& sink, std::string_view code) {
  for (const diag::Diagnostic& d : sink.snapshot()) {
    if (d.code == code) return true;
  }
  return false;
}

TEST(DiskCache, RoundtripAndStats) {
  DiskCache cache(syncConfig(freshDir("roundtrip")));
  ASSERT_TRUE(cache.enabled());

  EXPECT_FALSE(cache.get("design", key(1)).has_value());
  cache.put("design", key(1), "payload-one");
  const std::optional<std::string> got = cache.get("design", key(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload-one");

  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, std::string("payload-one").size());
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_TRUE(stats.enabled);
  EXPECT_FALSE(stats.degraded);
}

TEST(DiskCache, EntryFileNameIsNamespacedHex) {
  const std::string name = DiskCache::entryFileName("design", key(7));
  EXPECT_EQ(name, "design-" + key(7).hex() + ".e");
  EXPECT_EQ(name.size(), std::string("design-").size() + 32 + 2);
}

TEST(DiskCache, PersistsAcrossInstances) {
  const fs::path dir = freshDir("persist");
  {
    DiskCache cache(syncConfig(dir));
    cache.put("design", key(2), "survives restart");
  }
  DiskCache reopened(syncConfig(dir));
  ASSERT_TRUE(reopened.enabled());
  EXPECT_EQ(reopened.stats().entries, 1u);
  const std::optional<std::string> got = reopened.get("design", key(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "survives restart");
}

TEST(DiskCache, NamespacesAreDisjoint) {
  DiskCache cache(syncConfig(freshDir("namespaces")));
  cache.put("design", key(3), "design artifact");
  cache.put("block", key(3), "block embedding");
  EXPECT_EQ(cache.get("design", key(3)).value(), "design artifact");
  EXPECT_EQ(cache.get("block", key(3)).value(), "block embedding");
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(DiskCache, EmptyDirDisablesStore) {
  DiskCache cache(DiskCacheConfig{});  // no directory configured
  EXPECT_FALSE(cache.enabled());
  cache.put("design", key(4), "ignored");
  EXPECT_FALSE(cache.get("design", key(4)).has_value());
  const DiskCacheStats stats = cache.stats();
  EXPECT_FALSE(stats.enabled);
  EXPECT_EQ(stats.writes, 0u);
}

TEST(DiskCache, UnopenableDirectoryOpensDisabled) {
  const fs::path blocker = freshDir("blocker");
  writeFile(blocker, "a regular file where the store wants a directory");
  DiskCacheConfig config = syncConfig(blocker / "store");
  DiskCache cache(config);
  EXPECT_FALSE(cache.enabled());
  cache.put("design", key(5), "ignored");  // must not throw
  EXPECT_FALSE(cache.get("design", key(5)).has_value());
  EXPECT_FALSE(cache.stats().enabled);
}

TEST(DiskCache, SweepsCrashLeftoversOnOpen) {
  const fs::path dir = freshDir("sweep");
  {
    DiskCache cache(syncConfig(dir));
    cache.put("design", key(6), "real entry");
  }
  // Simulated crash leftovers: a torn temp file from an interrupted write
  // and a previously quarantined entry.
  const std::string name = DiskCache::entryFileName("design", key(6));
  writeFile(dir / (name + ".tmp17"), "torn half-write");
  writeFile(dir / "design-00000000000000000000000000000000.e.q", "bad");

  DiskCache reopened(syncConfig(dir));
  EXPECT_FALSE(fs::exists(dir / (name + ".tmp17")));
  EXPECT_FALSE(
      fs::exists(dir / "design-00000000000000000000000000000000.e.q"));
  EXPECT_EQ(reopened.stats().entries, 1u);
  EXPECT_EQ(reopened.get("design", key(6)).value(), "real entry");
}

TEST(DiskCache, EvictsOldestByMtimeOnOpen) {
  const fs::path dir = freshDir("evict_open");
  const std::string payload(100, 'x');
  {
    DiskCacheConfig config = syncConfig(dir);
    config.budgetBytes = 0;  // unbounded while populating
    DiskCache cache(config);
    cache.put("design", key(10), payload);
    cache.put("design", key(11), payload);
    cache.put("design", key(12), payload);
  }
  // Back-date entries 10 and 11 so mtime order is unambiguous.
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(dir / DiskCache::entryFileName("design", key(10)),
                      now - std::chrono::hours(2));
  fs::last_write_time(dir / DiskCache::entryFileName("design", key(11)),
                      now - std::chrono::hours(1));

  DiskCacheConfig config = syncConfig(dir);
  config.budgetBytes = 2 * (100 + 40);  // header is 40 bytes per entry
  DiskCache cache(config);
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_FALSE(cache.get("design", key(10)).has_value());
  EXPECT_TRUE(cache.get("design", key(11)).has_value());
  EXPECT_TRUE(cache.get("design", key(12)).has_value());
}

TEST(DiskCache, RuntimeEvictionDropsLeastRecentlyUsed) {
  DiskCacheConfig config = syncConfig(freshDir("evict_runtime"));
  config.budgetBytes = 150;  // fits exactly one 140-byte entry
  DiskCache cache(config);
  const std::string payload(100, 'y');
  cache.put("design", key(20), payload);
  cache.put("design", key(21), payload);
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_FALSE(cache.get("design", key(20)).has_value());
  EXPECT_EQ(cache.get("design", key(21)).value(), payload);
}

TEST(DiskCache, KeepsNewestEntryEvenOverBudget) {
  DiskCacheConfig config = syncConfig(freshDir("keep_newest"));
  config.budgetBytes = 16;  // smaller than any single entry
  DiskCache cache(config);
  cache.put("design", key(22), std::string(100, 'z'));
  // A single artifact larger than the whole budget still serves its own
  // restarts rather than evicting itself into a permanent miss loop.
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_TRUE(cache.get("design", key(22)).has_value());
}

TEST(DiskCache, WriteBehindFlushMakesEntriesDurable) {
  const fs::path dir = freshDir("write_behind");
  DiskCacheConfig config = syncConfig(dir);
  config.writeBehind = true;
  DiskCache cache(config);
  cache.put("design", key(30), "queued payload");
  cache.flush();
  EXPECT_EQ(cache.stats().writes, 1u);
  EXPECT_EQ(cache.get("design", key(30)).value(), "queued payload");

  DiskCache reopened(syncConfig(dir));
  EXPECT_EQ(reopened.get("design", key(30)).value(), "queued payload");
}

TEST(DiskCache, DestructorFlushesQueuedWrites) {
  const fs::path dir = freshDir("dtor_flush");
  {
    DiskCacheConfig config = syncConfig(dir);
    config.writeBehind = true;
    DiskCache cache(config);
    for (std::uint64_t i = 0; i < 8; ++i) {
      cache.put("design", key(40 + i), "entry " + std::to_string(i));
    }
  }  // no explicit flush: the destructor drains the queue before joining
  DiskCache reopened(syncConfig(dir));
  EXPECT_EQ(reopened.stats().entries, 8u);
  EXPECT_EQ(reopened.get("design", key(43)).value(), "entry 3");
}

TEST(DiskCache, CorruptEntryQuarantinedAndRecovered) {
  const fs::path dir = freshDir("corrupt");
  DiskCache cache(syncConfig(dir));
  cache.put("design", key(50), "precious artifact");
  const std::string name = DiskCache::entryFileName("design", key(50));

  // Flip one payload byte on disk: the checksum no longer matches.
  std::string bytes = readFile(dir / name);
  ASSERT_GT(bytes.size(), 40u);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  writeFile(dir / name, bytes);

  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  EXPECT_FALSE(cache.get("design", key(50), &sink).has_value());
  EXPECT_TRUE(sinkHasCode(sink, diag::codes::kCacheCorrupt));
  EXPECT_TRUE(fs::exists(dir / (name + ".q")));
  EXPECT_FALSE(fs::exists(dir / name));

  DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // The caller recomputes and repopulates; the entry serves again.
  EXPECT_FALSE(cache.get("design", key(50)).has_value());  // plain miss now
  cache.put("design", key(50), "precious artifact");
  EXPECT_EQ(cache.get("design", key(50)).value(), "precious artifact");
}

TEST(DiskCache, TruncatedEntryQuarantined) {
  const fs::path dir = freshDir("truncated");
  DiskCache cache(syncConfig(dir));
  cache.put("design", key(51), std::string(200, 'p'));
  const std::string name = DiskCache::entryFileName("design", key(51));
  writeFile(dir / name, readFile(dir / name).substr(0, 60));  // mid-payload

  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  EXPECT_FALSE(cache.get("design", key(51), &sink).has_value());
  EXPECT_TRUE(sinkHasCode(sink, diag::codes::kCacheCorrupt));
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST(DiskCache, FutureVersionQuarantinedWithVersionCode) {
  const fs::path dir = freshDir("future_version");
  DiskCache cache(syncConfig(dir));
  cache.put("design", key(52), "from the future");
  const std::string name = DiskCache::entryFileName("design", key(52));
  std::string bytes = readFile(dir / name);
  bytes[8] = 99;  // version field (little-endian u32 at offset 8)
  writeFile(dir / name, bytes);

  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  EXPECT_FALSE(cache.get("design", key(52), &sink).has_value());
  EXPECT_TRUE(sinkHasCode(sink, diag::codes::kCacheVersion));
  EXPECT_FALSE(sinkHasCode(sink, diag::codes::kCacheCorrupt));
  EXPECT_TRUE(fs::exists(dir / (name + ".q")));
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

/// The checked-in fixtures (tests/netlist/corpus_malformed/disk_cache/)
/// pin the on-disk format: if the header layout drifts, these start
/// passing validation (or failing with the wrong code) and the test
/// catches it.
struct GoldenFixture {
  const char* file;
  std::string_view expectedCode;
};

class DiskCacheGoldenFixture
    : public ::testing::TestWithParam<GoldenFixture> {};

TEST_P(DiskCacheGoldenFixture, QuarantinedWithExpectedCode) {
  const GoldenFixture param = GetParam();
  const fs::path fixture = fs::path(ANCSTR_TEST_DIR) /
                           "netlist/corpus_malformed/disk_cache" /
                           param.file;
  ASSERT_TRUE(fs::exists(fixture)) << fixture;

  // Plant the fixture bytes under a legitimate entry name, then open the
  // store over it: the entry is indexed, read, rejected, quarantined.
  const fs::path dir = freshDir(std::string("golden_") + param.file);
  fs::create_directories(dir);
  const std::string name = DiskCache::entryFileName("design", key(60));
  fs::copy_file(fixture, dir / name);

  DiskCache cache(syncConfig(dir));
  ASSERT_EQ(cache.stats().entries, 1u);
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  EXPECT_FALSE(cache.get("design", key(60), &sink).has_value());
  EXPECT_TRUE(sinkHasCode(sink, param.expectedCode));
  EXPECT_TRUE(fs::exists(dir / (name + ".q")));
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // Recompute-and-repopulate restores service over the same name.
  cache.put("design", key(60), "recomputed");
  EXPECT_EQ(cache.get("design", key(60)).value(), "recomputed");
}

INSTANTIATE_TEST_SUITE_P(
    CorpusMalformed, DiskCacheGoldenFixture,
    ::testing::Values(
        GoldenFixture{"bad_checksum.e", diag::codes::kCacheCorrupt},
        GoldenFixture{"truncated.e", diag::codes::kCacheCorrupt},
        GoldenFixture{"future_version.e", diag::codes::kCacheVersion}),
    [](const ::testing::TestParamInfo<GoldenFixture>& info) {
      std::string name = info.param.file;
      name.resize(name.size() - 2);  // drop ".e"
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

// --- Fault-injection coverage (util/fault.h sites). The suite name
// matches the CI fault-injection job's ctest regex.

TEST(DiskCacheFault, OpenFaultOpensDisabledThenRecoversOnReopen) {
  const fs::path dir = freshDir("open_fault");
  {
    const fault::ScopedFault armed("disk_cache.open");
    DiskCache cache(syncConfig(dir));
    EXPECT_FALSE(cache.enabled());
    cache.put("design", key(70), "ignored");
    EXPECT_FALSE(cache.get("design", key(70)).has_value());
  }
  DiskCache cache(syncConfig(dir));
  EXPECT_TRUE(cache.enabled());
  cache.put("design", key(70), "now it lands");
  EXPECT_EQ(cache.get("design", key(70)).value(), "now it lands");
}

TEST(DiskCacheFault, PersistentReadFaultIsMissNotCorruption) {
  DiskCacheConfig config = syncConfig(freshDir("read_fault"));
  DiskCache cache(config);
  cache.put("design", key(71), "unreachable for now");

  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  {
    const fault::ScopedFault armed("disk_cache.read");
    EXPECT_FALSE(cache.get("design", key(71), &sink).has_value());
  }
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.retries, static_cast<std::uint64_t>(config.maxIoRetries));
  EXPECT_EQ(stats.readFailures, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.corrupt, 0u);  // IO failure must not quarantine the entry
  EXPECT_TRUE(sinkHasCode(sink, diag::codes::kCacheIo));
  EXPECT_FALSE(cache.stats().degraded);

  // The entry survived: once IO recovers, it serves again.
  EXPECT_EQ(cache.get("design", key(71)).value(), "unreachable for now");
}

TEST(DiskCacheFault, TransientReadFaultRecoversViaRetry) {
  DiskCache cache(syncConfig(freshDir("read_retry")));
  cache.put("design", key(72), "retried into existence");

  const fault::ScopedFault armed("disk_cache.read@1");  // first attempt only
  EXPECT_EQ(cache.get("design", key(72)).value(), "retried into existence");
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.readFailures, 0u);
}

TEST(DiskCacheFault, ChecksumFaultQuarantines) {
  const fs::path dir = freshDir("checksum_fault");
  DiskCache cache(syncConfig(dir));
  cache.put("design", key(73), "bit-rot victim");

  const fault::ScopedFault armed("disk_cache.checksum@1");
  EXPECT_FALSE(cache.get("design", key(73)).has_value());
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  const std::string name = DiskCache::entryFileName("design", key(73));
  EXPECT_TRUE(fs::exists(dir / (name + ".q")));
}

TEST(DiskCacheFault, ShortWriteNeverTearsAnEntry) {
  // Crash-consistency property, serial: a write that dies mid-entry
  // (ENOSPC / SIGKILL simulation) must leave either the old complete
  // value or nothing — a reader never observes torn bytes.
  const fs::path dir = freshDir("torn_serial");
  DiskCacheConfig config = syncConfig(dir);
  config.maxIoRetries = 0;
  config.degradeAfterFailures = 0;  // keep serving through the faults
  DiskCache cache(config);

  cache.put("design", key(80), "version one");
  {
    const fault::ScopedFault armed("disk_cache.write@1");
    cache.put("design", key(80), "version two");  // dies half-written
  }
  EXPECT_EQ(cache.stats().writeFailures, 1u);
  // Old value intact, bit for bit — the rename never happened.
  EXPECT_EQ(cache.get("design", key(80)).value(), "version one");

  // First-ever write dying must yield "no entry", not a torn one.
  {
    const fault::ScopedFault armed("disk_cache.write@1");
    cache.put("design", key(81), "never lands");
  }
  EXPECT_FALSE(cache.get("design", key(81)).has_value());

  // A restart over the same directory sweeps the torn temp files and
  // observes the same consistent state.
  DiskCache reopened(config);
  EXPECT_EQ(reopened.get("design", key(80)).value(), "version one");
  EXPECT_FALSE(reopened.get("design", key(81)).has_value());
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }

  // Service recovers fully once writes succeed again.
  cache.put("design", key(81), "lands now");
  EXPECT_EQ(cache.get("design", key(81)).value(), "lands now");
}

TEST(DiskCacheFault, ShortWriteCrashConsistencyFourThreads) {
  // The same property under concurrency: four threads hammer their own
  // keys while a torn write and a failed rename are injected somewhere in
  // the interleaving. Any observed payload must be bitwise one that was
  // actually put for that key. The TSan CI configuration runs this too.
  const fs::path dir = freshDir("torn_mt");
  DiskCacheConfig config = syncConfig(dir);
  config.maxIoRetries = 0;
  config.degradeAfterFailures = 0;
  DiskCache cache(config);
  ASSERT_TRUE(cache.enabled());

  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  const fault::ScopedFault armed("disk_cache.write@3,disk_cache.rename@5");

  std::vector<std::vector<std::string>> written(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &written, t] {
      const StructuralHash k = key(1000 + static_cast<std::uint64_t>(t));
      for (int r = 0; r < kRounds; ++r) {
        std::string payload = "t" + std::to_string(t) + ":r" +
                              std::to_string(r) + ":" +
                              std::string(256 + t, static_cast<char>('a' + t));
        written[t].push_back(payload);
        cache.put("mt", k, std::move(payload));
        const std::optional<std::string> got = cache.get("mt", k);
        if (got.has_value()) {
          EXPECT_NE(std::find(written[t].begin(), written[t].end(), *got),
                    written[t].end())
              << "torn or foreign payload observed by thread " << t;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  fault::disarmAll();

  // A restart over the directory must also see only complete payloads.
  DiskCache reopened(config);
  for (int t = 0; t < kThreads; ++t) {
    const std::optional<std::string> got =
        reopened.get("mt", key(1000 + static_cast<std::uint64_t>(t)));
    if (got.has_value()) {
      EXPECT_NE(std::find(written[t].begin(), written[t].end(), *got),
                written[t].end())
          << "torn payload survived restart for thread " << t;
    }
  }
}

TEST(DiskCacheFault, DegradesToCacheOffAfterConsecutiveFailures) {
  DiskCacheConfig config = syncConfig(freshDir("degrade"));
  config.maxIoRetries = 0;
  config.degradeAfterFailures = 2;
  DiskCache cache(config);
  ASSERT_TRUE(cache.enabled());

  {
    const fault::ScopedFault armed("disk_cache.write");
    cache.put("design", key(90), "fails once");
    EXPECT_TRUE(cache.enabled());  // one failure is below the threshold
    cache.put("design", key(91), "fails twice");
  }
  EXPECT_FALSE(cache.enabled());
  const DiskCacheStats stats = cache.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.writeFailures, 2u);

  // Cache-off is for the store's lifetime: later calls are no-ops even
  // though the fault is gone.
  cache.put("design", key(92), "ignored");
  EXPECT_FALSE(cache.get("design", key(92)).has_value());
  EXPECT_EQ(cache.stats().writes, 0u);
}

TEST(DiskCacheFault, WriteRetrySurvivesTransientFault) {
  DiskCache cache(syncConfig(freshDir("write_retry")));
  const fault::ScopedFault armed("disk_cache.write@1");  // first attempt only
  cache.put("design", key(95), "second attempt lands");
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.writeFailures, 0u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(cache.get("design", key(95)).value(), "second attempt lands");
}

}  // namespace
}  // namespace ancstr
