#include "core/engine.h"

#include <optional>

#include "core/circuit_hash.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ancstr {

namespace {

// The shared budget is split evenly while both caches are enabled; a
// disabled cache's half goes to the other one. Budget 0 disables a
// LruByteCache outright, and the lookup paths below additionally skip
// hashing for disabled caches.
std::size_t designBudget(const EngineConfig& c) {
  if (!c.cacheDesignInference) return 0;
  return c.cacheBlockEmbeddings ? c.cacheBudgetBytes - c.cacheBudgetBytes / 2
                                : c.cacheBudgetBytes;
}

std::size_t blockBudget(const EngineConfig& c) {
  if (!c.cacheBlockEmbeddings) return 0;
  return c.cacheDesignInference ? c.cacheBudgetBytes / 2 : c.cacheBudgetBytes;
}

// The pair cache holds 8-byte similarities, so a thin 1/16 slice on top of
// the design/block split carries thousands of pairs without disturbing the
// established split (the overall budget is soft anyway).
std::size_t pairBudget(const EngineConfig& c) {
  return c.cachePairScores ? c.cacheBudgetBytes / 16 : 0;
}

// Subtree-hash vectors are 16 bytes per hierarchy node, so an even
// thinner slice keeps many design versions' hashes resident for chained
// delta calls.
std::size_t subtreeMemoBudget(const EngineConfig& c) {
  return c.cacheBudgetBytes / 32;
}

// Byte charge per pair entry: key + value + list/map node overhead.
constexpr std::size_t kPairEntryBytes =
    sizeof(PairScoreKey) + sizeof(double) + 4 * sizeof(void*);

util::LruCacheStats statsDelta(const util::LruCacheStats& now,
                               const util::LruCacheStats& then) {
  util::LruCacheStats d;
  d.hits = now.hits - then.hits;
  d.misses = now.misses - then.misses;
  d.evictions = now.evictions - then.evictions;
  d.bytes = now.bytes;      // occupancy, not a counter
  d.entries = now.entries;  // ditto
  return d;
}

}  // namespace

/// BlockEmbeddingCache over the engine's LRU (consulted concurrently from
/// every pool worker; the LRU's own mutex is the only synchronization).
class ExtractionEngine::BlockCacheAdapter final : public BlockEmbeddingCache {
 public:
  BlockCacheAdapter(
      util::LruByteCache<util::StructuralHash, CachedBlockEmbedding>& cache,
      std::uint64_t salt)
      : cache_(cache), salt_(salt) {}

  std::shared_ptr<const CachedBlockEmbedding> lookup(
      const util::StructuralHash& key) override {
    return cache_.get(withConfigSalt(key, salt_));
  }

  void store(const util::StructuralHash& key,
             std::shared_ptr<const CachedBlockEmbedding> entry) override {
    const std::size_t bytes = entry->approxBytes();
    cache_.put(withConfigSalt(key, salt_), std::move(entry), bytes);
  }

 private:
  util::LruByteCache<util::StructuralHash, CachedBlockEmbedding>& cache_;
  const std::uint64_t salt_;  ///< see ExtractionEngine::detectorSalt()
};

/// PairScoreCache over the engine's LRU (same concurrency model as the
/// block adapter: the LRU's mutex is the only synchronization).
class ExtractionEngine::PairCacheAdapter final : public PairScoreCache {
 public:
  PairCacheAdapter(
      util::LruByteCache<PairScoreKey, double, PairScoreKeyHash>& cache,
      std::uint64_t salt)
      : cache_(cache), salt_(salt) {}

  bool lookup(const PairScoreKey& key, double* similarity) override {
    if (const auto hit = cache_.get(salted(key))) {
      *similarity = *hit;
      return true;
    }
    return false;
  }

  void store(const PairScoreKey& key, double similarity) override {
    cache_.put(salted(key), std::make_shared<const double>(similarity),
               kPairEntryBytes);
  }

 private:
  PairScoreKey salted(const PairScoreKey& key) const {
    return {withConfigSalt(key.a, salt_), withConfigSalt(key.b, salt_)};
  }

  util::LruByteCache<PairScoreKey, double, PairScoreKeyHash>& cache_;
  const std::uint64_t salt_;  ///< see ExtractionEngine::detectorSalt()
};

ExtractionEngine::ExtractionEngine(const Pipeline& pipeline,
                                   EngineConfig config)
    : pipeline_(pipeline),
      config_(config),
      detectorSalt_(detectorConfigSignature(pipeline.config().detector)),
      designCache_(designBudget(config)),
      blockCache_(blockBudget(config)),
      pairCache_(pairBudget(config)),
      subtreeHashMemo_(subtreeMemoBudget(config)),
      blockAdapter_(
          std::make_unique<BlockCacheAdapter>(blockCache_, detectorSalt_)),
      pairAdapter_(
          std::make_unique<PairCacheAdapter>(pairCache_, detectorSalt_)) {}

ExtractionEngine::~ExtractionEngine() = default;

ExtractionResult ExtractionEngine::extractOne(
    const Library& lib, diag::DiagnosticSink* sink,
    const FlatDesign* preElaborated, const util::StructuralHash* designHash,
    const std::vector<util::StructuralHash>* nodeHashes) const {
  const trace::TraceSpan extractSpan("engine.extract");
  const bool failSoft = sink != nullptr && !sink->strict();
  const std::size_t diagStart = failSoft ? sink->size() : 0;
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  static metrics::Counter& degradedCounter =
      metrics::Registry::instance().counter("pipeline.extract_degraded");

  ExtractionResult result;
  try {
    std::optional<FlatDesign> owned;
    if (preElaborated == nullptr) {
      owned.emplace(failSoft ? FlatDesign::elaborate(lib, *sink)
                             : FlatDesign::elaborate(lib));
    }
    const FlatDesign& design =
        preElaborated != nullptr ? *preElaborated : *owned;

    std::shared_ptr<const InferenceArtifacts> artifacts;
    if (config_.cacheDesignInference && config_.cacheBudgetBytes > 0) {
      util::StructuralHash key;
      {
        const trace::TraceSpan hashSpan("engine.hash");
        // The delta path hands in the hash it computed while diffing;
        // plain extract() pays for it here.
        key = designHash != nullptr
                  ? *designHash
                  : structuralHash(design, pipeline_.config().graph,
                                   pipeline_.config().features);
        result.report.addPhase("engine.hash", hashSpan.seconds());
      }
      // Cache keys carry the detector-config salt (see detectorSalt());
      // the raw hash stays the currency of diffing and manifests.
      const util::StructuralHash cacheKey = withConfigSalt(key, detectorSalt_);
      artifacts = designCache_.get(cacheKey);
      if (artifacts == nullptr) {
        auto computed = std::make_shared<InferenceArtifacts>(
            pipeline_.runInference(lib, design, result.report));
        designCache_.put(cacheKey, computed, computed->approxBytes());
        artifacts = std::move(computed);
      }
    } else {
      artifacts = std::make_shared<InferenceArtifacts>(
          pipeline_.runInference(lib, design, result.report));
    }

    // Fault site for robustness tests, placed after the design-cache
    // consult so an injected failure exercises the "cache activity before
    // the error must still be published" contract.
    if (fault::shouldFail("engine.extract")) {
      throw Error("injected fault: engine.extract");
    }

    const bool cachesOn = config_.cacheBudgetBytes > 0;
    const DetectionCaches caches{
        cachesOn && config_.cacheBlockEmbeddings ? blockAdapter_.get()
                                                 : nullptr,
        cachesOn && config_.cachePairScores ? pairAdapter_.get() : nullptr,
        nodeHashes};
    pipeline_.runDetection(lib, design, *artifacts, caches, result);
    // Copy (not move): the artifact may live on in the cache. A hit thus
    // yields the exact bytes the original miss computed.
    result.embeddings = artifacts->embeddings;
  } catch (const Error& e) {
    if (!failSoft) throw;
    // Same degradation contract as Pipeline::extract: empty result, keep
    // completed phase timings, record [pipeline.extract_degraded]. Cache
    // activity up to the failure point (design-cache consult, block
    // embedding hits) still counts: publish it so the degraded design's
    // report carries its engine.cache.* metrics rather than dropping them
    // on the error branch.
    degradedCounter.add();
    publishCacheMetrics();
    result.report.metrics =
        metrics::Registry::instance().snapshot().since(before);
    sink->error(diag::codes::kExtractDegraded, "", 0,
                std::string("extraction degraded to empty result: ") +
                    e.what());
  }
  if (failSoft) {
    result.report.addDiagnostics(sink->snapshotFrom(diagStart));
  }
  return result;
}

ExtractionResult ExtractionEngine::extract(const Library& lib,
                                           ExtractOptions options) const {
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  try {
    ExtractionResult result = extractOne(lib, options.sink);
    publishCacheMetrics();
    result.report.metrics =
        metrics::Registry::instance().snapshot().since(before);
    return result;
  } catch (...) {
    // Strict-mode failure: cache consults that already happened must not
    // vanish from the process-wide counters.
    publishCacheMetrics();
    throw;
  }
}

ExtractionResult ExtractionEngine::extractDelta(const Library& oldLib,
                                                const Library& newLib,
                                                ExtractOptions options,
                                                DeltaReport* delta) const {
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  const EngineCacheStats statsBefore = cacheStats();
  auto& registry = metrics::Registry::instance();
  static metrics::Counter& dirtyNodes =
      registry.counter("engine.delta.dirty_nodes");
  static metrics::Counter& cleanNodes =
      registry.counter("engine.delta.clean_nodes");
  static metrics::Counter& reusedDevices =
      registry.counter("engine.delta.reused_devices");
  static metrics::Counter& identical =
      registry.counter("engine.delta.identical");

  DeltaReport localDelta;
  DeltaReport& out = delta != nullptr ? *delta : localDelta;
  out = DeltaReport{};

  // Phase 1 — diff. Each side is elaborated and hashed at most once; the
  // hashes feed the diff here, the design-cache probe and warm-up below,
  // and the detection phase (DetectionCaches::nodeHashes). Baseline
  // subtree hashes are additionally memoized per design hash, so chained
  // ECO calls (v1->v2, v2->v3) skip the old side's hashing outright. The
  // baseline is consumed fail-soft: a baseline that does not elaborate
  // leaves the diff empty (nothing provably clean) and never aborts the
  // newLib extraction.
  RunReport prelude;
  const GraphBuildOptions& graph = pipeline_.config().graph;
  const FeatureConfig& features = pipeline_.config().features;
  std::optional<FlatDesign> oldDesign;
  std::optional<FlatDesign> newDesign;
  util::StructuralHash oldHash;
  util::StructuralHash newHash;
  std::shared_ptr<const std::vector<util::StructuralHash>> oldNodeHashes;
  std::shared_ptr<const std::vector<util::StructuralHash>> newNodeHashes;
  {
    const trace::TraceSpan diffSpan("engine.diff");
    try {
      oldDesign.emplace(FlatDesign::elaborate(oldLib));
      oldHash = structuralHash(*oldDesign, graph, features);
      oldNodeHashes = memoizedSubtreeHashes(*oldDesign, oldHash);
    } catch (const Error&) {
      oldDesign.reset();  // baseline unusable: empty diff, plain extract
    }
    try {
      newDesign.emplace(FlatDesign::elaborate(newLib));
      newHash = structuralHash(*newDesign, graph, features);
      newNodeHashes = memoizedSubtreeHashes(*newDesign, newHash);
    } catch (const Error&) {
      // Strict elaboration failed: phase 3's extractOne re-elaborates
      // under the caller's sink and degrades (or throws) as usual.
      newDesign.reset();
    }
    if (oldDesign.has_value() && newDesign.has_value()) {
      try {
        out.diff = diffPrehashed(*newDesign, *oldNodeHashes, oldHash,
                                 *newNodeHashes, newHash);
        out.diff.masters = diffMasters(oldLib, newLib);
      } catch (const Error&) {
        out.diff = LibraryDiff{};
      }
    }
    prelude.addPhase("engine.diff", diffSpan.seconds());
  }
  dirtyNodes.add(out.diff.dirtyNodes);
  cleanNodes.add(out.diff.cleanNodes);
  reusedDevices.add(out.diff.reusableDevices);
  if (out.diff.identical()) identical.add();

  // Phase 2 — re-warm the caches from the baseline when it is not already
  // resident (contains() probes without skewing hit/miss statistics).
  // Warming runs the normal extraction path over oldLib, so everything it
  // caches is exactly what a prior extract(oldLib) would have cached;
  // skipping or failing it never changes the newLib result.
  if (config_.cacheBudgetBytes > 0 && oldDesign.has_value()) {
    try {
      const bool warm =
          !config_.cacheDesignInference ||
          !designCache_.contains(withConfigSalt(oldHash, detectorSalt_));
      if (warm) {
        const trace::TraceSpan warmSpan("engine.warm");
        (void)extractOne(oldLib, nullptr, &*oldDesign, &oldHash,
                         oldNodeHashes.get());
        prelude.addPhase("engine.warm", warmSpan.seconds());
      }
    } catch (const Error&) {
      // Baseline unusable — proceed as a plain (cold) extraction.
    }
  }
  oldDesign.reset();  // free the baseline before the main extraction

  // Phase 3 — the identical cached extraction path extract() runs, which
  // is what makes the delta result bitwise-equal to the full one.
  ExtractionResult result;
  try {
    result = extractOne(newLib, options.sink,
                        newDesign.has_value() ? &*newDesign : nullptr,
                        newDesign.has_value() ? &newHash : nullptr,
                        newDesign.has_value() ? newNodeHashes.get() : nullptr);
  } catch (...) {
    publishCacheMetrics();
    throw;
  }
  publishCacheMetrics();
  prelude.accumulate(result.report);
  result.report = std::move(prelude);
  result.report.metrics =
      metrics::Registry::instance().snapshot().since(before);

  const EngineCacheStats statsAfter = cacheStats();
  out.reuse.design = statsDelta(statsAfter.design, statsBefore.design);
  out.reuse.blocks = statsDelta(statsAfter.blocks, statsBefore.blocks);
  out.reuse.pairs = statsDelta(statsAfter.pairs, statsBefore.pairs);
  return result;
}

std::vector<ExtractionResult> ExtractionEngine::extractBatch(
    std::span<const Library* const> batch, ExtractOptions options,
    RunReport* batchReport) const {
  const trace::TraceSpan batchSpan("engine.batch");
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  const bool failSoft = options.sink != nullptr && !options.sink->strict();

  // Each design gets a private collect sink: snapshotFrom index ranges on
  // a sink shared across concurrent designs would interleave, so
  // diagnostics are collected locally and merged in batch order below.
  std::vector<std::unique_ptr<diag::DiagnosticSink>> localSinks;
  if (failSoft) {
    localSinks.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      localSinks.push_back(std::make_unique<diag::DiagnosticSink>(
          diag::DiagnosticSink::Mode::kCollect));
    }
  }

  std::vector<ExtractionResult> results(batch.size());
  util::ThreadPool pool(util::resolveThreadCount(config_.threads));
  try {
    pool.forEach(batch.size(), [&](std::size_t i) {
      ANCSTR_ASSERT(batch[i] != nullptr);
      results[i] =
          extractOne(*batch[i], failSoft ? localSinks[i].get() : options.sink);
    });
  } catch (...) {
    // Strict-mode failure mid-batch: publish the cache consults that
    // already happened before rethrowing (same as extract()).
    publishCacheMetrics();
    throw;
  }

  if (failSoft) {
    for (const auto& local : localSinks) {
      for (diag::Diagnostic& d : local->take()) {
        options.sink->report(std::move(d));
      }
    }
  }

  publishCacheMetrics();
  if (batchReport != nullptr) {
    batchReport->addPhase("engine.batch", batchSpan.seconds());
    batchReport->metrics =
        metrics::Registry::instance().snapshot().since(before);
  }
  return results;
}

std::shared_ptr<const std::vector<util::StructuralHash>>
ExtractionEngine::memoizedSubtreeHashes(
    const FlatDesign& design, const util::StructuralHash& designHash) const {
  if (auto hit = subtreeHashMemo_.get(designHash);
      hit != nullptr && hit->size() == design.hierarchy().size()) {
    return hit;
  }
  auto computed = std::make_shared<std::vector<util::StructuralHash>>(
      subtreeHashes(design, pipeline_.config().graph,
                    pipeline_.config().features));
  const std::size_t bytes =
      sizeof(std::vector<util::StructuralHash>) +
      computed->size() * sizeof(util::StructuralHash);
  subtreeHashMemo_.put(designHash, computed, bytes);
  return computed;
}

EngineCacheStats ExtractionEngine::cacheStats() const {
  return EngineCacheStats{designCache_.stats(), blockCache_.stats(),
                          pairCache_.stats()};
}

void ExtractionEngine::clearCaches() {
  designCache_.clear();
  blockCache_.clear();
  pairCache_.clear();
  subtreeHashMemo_.clear();
}

void ExtractionEngine::publishCacheMetrics() const {
  auto& registry = metrics::Registry::instance();
  static metrics::Counter& designHit = registry.counter("engine.cache.hit");
  static metrics::Counter& designMiss = registry.counter("engine.cache.miss");
  static metrics::Counter& designEvict =
      registry.counter("engine.cache.evict");
  static metrics::Gauge& designBytes = registry.gauge("engine.cache.bytes");
  static metrics::Counter& blockHit =
      registry.counter("engine.block_cache.hit");
  static metrics::Counter& blockMiss =
      registry.counter("engine.block_cache.miss");
  static metrics::Counter& blockEvict =
      registry.counter("engine.block_cache.evict");
  static metrics::Gauge& blockBytes =
      registry.gauge("engine.block_cache.bytes");
  static metrics::Counter& pairHit =
      registry.counter("engine.pair_cache.hit");
  static metrics::Counter& pairMiss =
      registry.counter("engine.pair_cache.miss");
  static metrics::Counter& pairEvict =
      registry.counter("engine.pair_cache.evict");
  static metrics::Gauge& pairBytes =
      registry.gauge("engine.pair_cache.bytes");

  // LruCacheStats hit/miss/eviction counts are cumulative and monotonic;
  // publishing the delta since the last publish keeps the process-wide
  // counters correct across any number of engines and calls.
  const std::lock_guard<std::mutex> lock(publishMutex_);
  const EngineCacheStats now = cacheStats();
  designHit.add(now.design.hits - published_.design.hits);
  designMiss.add(now.design.misses - published_.design.misses);
  designEvict.add(now.design.evictions - published_.design.evictions);
  designBytes.set(static_cast<double>(now.design.bytes));
  blockHit.add(now.blocks.hits - published_.blocks.hits);
  blockMiss.add(now.blocks.misses - published_.blocks.misses);
  blockEvict.add(now.blocks.evictions - published_.blocks.evictions);
  blockBytes.set(static_cast<double>(now.blocks.bytes));
  pairHit.add(now.pairs.hits - published_.pairs.hits);
  pairMiss.add(now.pairs.misses - published_.pairs.misses);
  pairEvict.add(now.pairs.evictions - published_.pairs.evictions);
  pairBytes.set(static_cast<double>(now.pairs.bytes));
  published_ = now;
}

}  // namespace ancstr
