#include "common.h"

#include <cstdio>
#include <cstdlib>

#include "baselines/ged.h"
#include "baselines/s3det.h"
#include "baselines/sfa.h"
#include "util/timer.h"

namespace ancstr::bench {

std::vector<circuits::CircuitBenchmark> fullCorpus() {
  std::vector<circuits::CircuitBenchmark> corpus = circuits::blockBenchmarks();
  for (auto& adc : circuits::adcBenchmarks()) corpus.push_back(std::move(adc));
  return corpus;
}

PipelineConfig paperConfig(int epochs, std::uint64_t seed) {
  PipelineConfig config;
  config.train.epochs = epochs;
  config.seed = seed;
  return config;
}

Pipeline trainPipeline(const std::vector<circuits::CircuitBenchmark>& corpus,
                       const PipelineConfig& config, RunReport* reportOut) {
  Pipeline pipeline(config);
  std::vector<const Library*> libs;
  libs.reserve(corpus.size());
  for (const auto& bench : corpus) libs.push_back(&bench.lib);
  const TrainReport report = pipeline.train(libs);
  std::printf("[train] %zu circuits, %d epochs, final loss %.4f, %.2fs\n",
              libs.size(), config.train.epochs, report.finalLoss(),
              report.report.phaseSeconds("train.loop"));
  const char* env = std::getenv("ANCSTR_BENCH_REPORT");
  if (env != nullptr && *env != '\0' && std::string(env) != "0") {
    printRunReport("[train] run report", report.report);
  }
  if (reportOut != nullptr) *reportOut = report.report;
  return pipeline;
}

namespace {

Evaluated reduce(const FlatDesign& design,
                 const std::vector<ScoredCandidate>& scored,
                 const GroundTruth& truth, double seconds) {
  Evaluated out;
  out.labels = labelCandidates(design, scored, truth);
  out.counts = confusionFromScored(scored, out.labels);
  out.scores.reserve(scored.size());
  for (const ScoredCandidate& c : scored) out.scores.push_back(c.similarity);
  out.seconds = seconds;
  return out;
}

}  // namespace

Evaluated evalOurs(const Pipeline& pipeline,
                   const circuits::CircuitBenchmark& bench,
                   ConstraintLevel level) {
  const ExtractionResult result = pipeline.extract(bench.lib);
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  std::vector<ScoredCandidate> filtered;
  for (const ScoredCandidate& c : result.detection.scored) {
    if (c.pair.level == level) filtered.push_back(c);
  }
  Evaluated out =
      reduce(design, filtered, bench.truth, result.report.totalSeconds());
  out.report = result.report;
  return out;
}

Evaluated evalS3Det(const circuits::CircuitBenchmark& bench) {
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  const s3det::S3DetResult result =
      s3det::detectSystemConstraints(design, bench.lib);
  Evaluated out = reduce(design, result.scored, bench.truth, result.seconds);
  out.report.addPhase("baseline.s3det", result.seconds);
  return out;
}

Evaluated evalSfa(const circuits::CircuitBenchmark& bench) {
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  const sfa::SfaResult result = sfa::detectDeviceConstraints(design, bench.lib);
  Evaluated out = reduce(design, result.scored, bench.truth, result.seconds);
  out.report.addPhase("baseline.sfa", result.seconds);
  return out;
}

Evaluated evalGed(const circuits::CircuitBenchmark& bench) {
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  const ged::GedResult result =
      ged::detectSystemConstraints(design, bench.lib);
  Evaluated out = reduce(design, result.scored, bench.truth, result.seconds);
  out.report.addPhase("baseline.ged", result.seconds);
  return out;
}

void addComparisonRow(TextTable& table, const std::string& name,
                      const Metrics& baseline, double baselineSeconds,
                      const Metrics& ours, double oursSeconds) {
  char baseTime[32], oursTime[32];
  std::snprintf(baseTime, sizeof(baseTime), "%.3f", baselineSeconds);
  std::snprintf(oursTime, sizeof(oursTime), "%.3f", oursSeconds);
  table.addRow({name, metricCell(baseline.tpr), metricCell(baseline.fpr),
                metricCell(baseline.ppv), metricCell(baseline.acc),
                metricCell(baseline.f1), baseTime, metricCell(ours.tpr),
                metricCell(ours.fpr), metricCell(ours.ppv),
                metricCell(ours.acc), metricCell(ours.f1), oursTime});
}

void printRoc(const std::string& title, const RocCurve& curve) {
  std::printf("%s: AUC = %.4f\n", title.c_str(), curve.auc);
  std::printf("  fpr,tpr:");
  // Subsample long curves to keep the console output readable.
  const std::size_t stride =
      curve.points.size() > 24 ? curve.points.size() / 24 : 1;
  for (std::size_t i = 0; i < curve.points.size(); i += stride) {
    std::printf(" (%.3f,%.3f)", curve.points[i].fpr, curve.points[i].tpr);
  }
  const RocPoint& last = curve.points.back();
  std::printf(" (%.3f,%.3f)\n", last.fpr, last.tpr);
}

void printRunReport(const std::string& title, const RunReport& report) {
  std::printf("%s\n%s", title.c_str(), report.toTable().c_str());
}

}  // namespace ancstr::bench
