#include "core/constraint_check.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"

namespace ancstr {
namespace {

struct CheckSetup {
  Library lib;
  FlatDesign design;
};

CheckSetup makeSetup() {
  NetlistBuilder b;
  b.beginSubckt("leaf", {"a", "vss"});
  b.res("r1", "a", "m", 1e3);
  b.res("r2", "m", "vss", 1e3);
  b.endSubckt();
  b.beginSubckt("top", {"x", "y", "vss"});
  b.inst("u1", "leaf", {"x", "vss"});
  b.inst("u2", "leaf", {"y", "vss"});
  b.nmos("m1", "x", "y", "t", "vss", 1e-6, 0.1e-6);
  b.nmos("m2", "y", "x", "t", "vss", 1e-6, 0.1e-6);
  b.cap("c1", "x", "vss", 1e-15);
  b.endSubckt();
  Library lib = b.build("top");
  FlatDesign design = FlatDesign::elaborate(lib);
  return {std::move(lib), std::move(design)};
}

ParsedConstraint pc(const std::string& hier, const std::string& a,
                    const std::string& b) {
  ParsedConstraint c;
  c.hierPath = hier;
  c.nameA = a;
  c.nameB = b;
  return c;
}

TEST(ConstraintCheck, CleanDeckPasses) {
  const CheckSetup s = makeSetup();
  const std::vector<ParsedConstraint> deck{
      pc("", "m1", "m2"), pc("", "u1", "u2"), pc("u1", "r1", "r2"),
      pc("", "m1", ""),  // self-symmetric
  };
  EXPECT_TRUE(checkConstraints(s.design, s.lib, deck).empty());
}

TEST(ConstraintCheck, UnknownHierarchy) {
  const CheckSetup s = makeSetup();
  const auto issues =
      checkConstraints(s.design, s.lib, {pc("nosuch", "a", "b")});
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("unknown hierarchy"), std::string::npos);
}

TEST(ConstraintCheck, MissingModules) {
  const CheckSetup s = makeSetup();
  const auto issues = checkConstraints(
      s.design, s.lib, {pc("", "m1", "m9"), pc("", "zz", "m2")});
  EXPECT_EQ(issues.size(), 2u);
}

TEST(ConstraintCheck, DeviceNotVisibleFromWrongHierarchy) {
  const CheckSetup s = makeSetup();
  // r1 lives inside u1, not at the top.
  const auto issues =
      checkConstraints(s.design, s.lib, {pc("", "r1", "r2")});
  EXPECT_EQ(issues.size(), 1u);
}

TEST(ConstraintCheck, KindMismatch) {
  const CheckSetup s = makeSetup();
  const auto issues =
      checkConstraints(s.design, s.lib, {pc("", "u1", "m1")});
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("mixes"), std::string::npos);
}

TEST(ConstraintCheck, TypeMismatch) {
  const CheckSetup s = makeSetup();
  const auto issues =
      checkConstraints(s.design, s.lib, {pc("", "m1", "c1")});
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("nonidentical device types"),
            std::string::npos);
}

TEST(ConstraintCheck, SelfPairRejected) {
  const CheckSetup s = makeSetup();
  const auto issues =
      checkConstraints(s.design, s.lib, {pc("", "m1", "m1")});
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("same device twice"), std::string::npos);
}

TEST(ConstraintCheck, IssueIndicesPointAtOffendingEntries) {
  const CheckSetup s = makeSetup();
  const std::vector<ParsedConstraint> deck{
      pc("", "m1", "m2"),      // ok
      pc("", "m1", "m9"),      // bad
      pc("u2", "r1", "r2"),    // ok
      pc("x9", "r1", "r2"),    // bad
  };
  const auto issues = checkConstraints(s.design, s.lib, deck);
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].index, 1u);
  EXPECT_EQ(issues[1].index, 3u);
}

}  // namespace
}  // namespace ancstr
