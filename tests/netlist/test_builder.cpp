#include "netlist/builder.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace ancstr {
namespace {

TEST(Builder, BuildsSimpleOta) {
  NetlistBuilder b;
  b.beginSubckt("ota", {"vinp", "vinn", "vout", "vdd", "vss"});
  b.nmos("m1", "n1", "vinp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "vout", "vinn", "tail", "vss", 2e-6, 0.2e-6);
  b.pmos("m3", "n1", "n1", "vdd", "vdd", 4e-6, 0.3e-6);
  b.pmos("m4", "vout", "n1", "vdd", "vdd", 4e-6, 0.3e-6);
  b.nmos("m5", "tail", "vbn", "vss", "vss", 4e-6, 0.4e-6);
  b.endSubckt();
  Library lib = b.build("ota");

  const SubcktDef& ota = lib.subckt(*lib.findSubckt("ota"));
  EXPECT_EQ(ota.devices().size(), 5u);
  EXPECT_EQ(ota.ports().size(), 5u);
  const Device& m1 = ota.device(*ota.findDevice("m1"));
  EXPECT_EQ(m1.type, DeviceType::kNch);
  EXPECT_DOUBLE_EQ(m1.params.w, 2e-6);
}

TEST(Builder, PassivesAndDiode) {
  NetlistBuilder b;
  b.beginSubckt("cell", {"a", "b"});
  b.res("r1", "a", "mid", 1e3);
  b.cap("c1", "mid", "b", 5e-15, DeviceType::kCapMim, 3);
  b.ind("l1", "a", "b", 2e-9);
  b.dio("d1", "a", "b");
  b.endSubckt();
  Library lib = b.build("cell");
  const SubcktDef& cell = lib.subckt(0);
  EXPECT_EQ(cell.device(*cell.findDevice("c1")).params.layers, 3);
  EXPECT_EQ(cell.device(*cell.findDevice("l1")).type, DeviceType::kInd);
  EXPECT_EQ(cell.device(*cell.findDevice("d1")).pins.size(), 2u);
}

TEST(Builder, InstanceRequiresExistingMaster) {
  NetlistBuilder b;
  b.beginSubckt("top", {"p"});
  EXPECT_THROW(b.inst("x1", "missing", {"p"}), NetlistError);
}

TEST(Builder, HierarchyComposition) {
  NetlistBuilder b;
  b.beginSubckt("leaf", {"in", "out"});
  b.res("r1", "in", "out", 100.0);
  b.endSubckt();
  b.beginSubckt("top", {"a", "b"});
  b.inst("x1", "leaf", {"a", "mid"});
  b.inst("x2", "leaf", {"mid", "b"});
  b.endSubckt();
  Library lib = b.build("top");
  EXPECT_EQ(lib.flatDeviceCount(), 2u);
  EXPECT_EQ(lib.top(), *lib.findSubckt("top"));
}

TEST(Builder, MisuseThrows) {
  NetlistBuilder b;
  EXPECT_THROW(b.endSubckt(), NetlistError);
  EXPECT_THROW(b.nmos("m", "a", "b", "c", "d", 1e-6, 1e-6), NetlistError);
  b.beginSubckt("s", {});
  EXPECT_THROW(b.beginSubckt("t", {}), NetlistError);
  EXPECT_THROW(b.build(), NetlistError);  // unterminated subckt
}

TEST(Builder, BuildWithUnknownTopThrows) {
  NetlistBuilder b;
  b.beginSubckt("s", {});
  b.endSubckt();
  EXPECT_THROW(b.build("nope"), NetlistError);
}

TEST(Builder, WrongMosPolarityAsserts) {
  NetlistBuilder b;
  b.beginSubckt("s", {});
  EXPECT_THROW(b.nmos("m1", "a", "b", "c", "d", 1e-6, 1e-6, 1,
                      DeviceType::kPch),
               InternalError);
}

}  // namespace
}  // namespace ancstr
