#include "nn/matrix.h"

#include <cmath>

#include "nn/kernels.h"
#include "util/error.h"

namespace ancstr::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fillValue)
    : rows_(rows), cols_(cols), data_(rows * cols, fillValue) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    throw ShapeError("Matrix ctor: data size " + std::to_string(data_.size()) +
                     " != " + std::to_string(rows_ * cols_));
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::scalar(double v) {
  Matrix m(1, 1);
  m(0, 0) = v;
  return m;
}

void Matrix::fill(double v) {
  for (double& x : data_) x = v;
}

void Matrix::requireSameShape(const Matrix& rhs, const char* op) const {
  if (!sameShape(rhs)) {
    throw ShapeError(std::string(op) + ": shape mismatch " + shapeString() +
                     " vs " + rhs.shapeString());
  }
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  requireSameShape(rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  requireSameShape(rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

void Matrix::addScaled(const Matrix& rhs, double s) {
  requireSameShape(rhs, "addScaled");
  activeKernels().axpy(data_.data(), rhs.data_.data(), s, data_.size());
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix Matrix::hadamard(const Matrix& rhs) const {
  requireSameShape(rhs, "hadamard");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= rhs.data_[i];
  return out;
}

Matrix Matrix::matmul(const Matrix& rhs) const {
  Matrix out;
  matmulInto(rhs, out);
  return out;
}

void Matrix::matmulInto(const Matrix& rhs, Matrix& out) const {
  if (cols_ != rhs.rows_) {
    throw ShapeError("matmul: " + shapeString() + " x " + rhs.shapeString());
  }
  if (out.rows_ != rows_ || out.cols_ != rhs.cols_) {
    out = Matrix(rows_, rhs.cols_);
  } else {
    out.setZero();
  }
  activeKernels().gemmAcc(data_.data(), rhs.data_.data(), out.data_.data(),
                          rows_, cols_, rhs.cols_);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::sum() const {
  double total = 0.0;
  for (double x : data_) total += x;
  return total;
}

double Matrix::frobeniusNorm() const {
  double total = 0.0;
  for (double x : data_) total += x * x;
  return std::sqrt(total);
}

double Matrix::maxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double Matrix::cosineSimilarity(const Matrix& a, const Matrix& b) {
  if (!a.sameShape(b)) {
    throw ShapeError("cosineSimilarity: shape mismatch " + a.shapeString() +
                     " vs " + b.shapeString());
  }
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    dot += a.data_[i] * b.data_[i];
    na += a.data_[i] * a.data_[i];
    nb += b.data_[i] * b.data_[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

Matrix Matrix::rowCopy(std::size_t r) const {
  Matrix out(1, cols_);
  for (std::size_t c = 0; c < cols_; ++c) out(0, c) = (*this)(r, c);
  return out;
}

std::string Matrix::shapeString() const {
  return std::to_string(rows_) + "x" + std::to_string(cols_);
}

}  // namespace ancstr::nn
