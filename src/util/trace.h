// Always-compiled, opt-in tracing: RAII spans feeding a process-wide
// collector that exports Chrome/Perfetto trace_event JSON.
//
// Contract (mirrors the concurrency model, docs/architecture.md):
//   * tracing observes, never steers — enabling it must not change a
//     single bit of any pipeline result (no RNG draws, no reordering);
//   * near-zero cost when disabled: a span costs one relaxed atomic load
//     plus one steady_clock read (the embedded Stopwatch also backs the
//     RunReport phase timings, so it runs either way);
//   * thread-safe by construction: every thread appends to its own
//     buffer (per-buffer mutex, uncontended on the hot path); buffers are
//     merged only when a snapshot is taken.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "util/timer.h"

namespace ancstr::trace {

/// One completed span. Timestamps are microseconds since the collector's
/// epoch (its construction), matching Chrome trace_event "ts"/"dur".
struct TraceEvent {
  std::string name;        ///< span-taxonomy name (docs/observability.md)
  double startUs = 0.0;    ///< microseconds since the collector epoch
  double durationUs = 0.0; ///< span duration in microseconds
  std::uint32_t tid = 0;   ///< sequential thread id (currentThreadId)
};

/// Small sequential id for the calling thread, assigned on first use.
/// Worker threads spawned by util::ThreadPool get their own ids, which is
/// what attributes train.graph / embed.subcircuit spans to workers.
std::uint32_t currentThreadId();

/// Process-wide span sink. Disabled by default; `setEnabled(true)` arms
/// span recording. The instance is intentionally leaked so worker-thread
/// TLS destructors can always reach it during shutdown.
class TraceCollector {
 public:
  static TraceCollector& instance();

  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the collector epoch (the trace time base).
  double nowUs() const;

  /// Appends one completed span for the calling thread, unconditionally —
  /// gating on enabled() is the caller's job (TraceSpan arms itself at
  /// construction so in-flight spans complete even if tracing is switched
  /// off). Safe to call from any thread; recording order across threads is
  /// irrelevant because snapshots sort by start time.
  void record(const char* name, double startUs, double durationUs);

  /// All recorded events, merged across threads and ordered by
  /// (startUs, tid, name) for stable output.
  std::vector<TraceEvent> events() const;

  /// Drops all recorded events (and reaps buffers of exited threads).
  void clear();

  /// Chrome/Perfetto trace_event JSON ("X" complete events, one pid).
  /// Open via https://ui.perfetto.dev or chrome://tracing.
  std::string toChromeJson() const;

  /// Writes toChromeJson() to `path`; throws Error on I/O failure.
  void writeFile(const std::filesystem::path& path) const;

  /// Internal per-thread buffer storage; public only so the TLS
  /// registration hook in trace.cpp can name it.
  struct Impl;

 private:
  TraceCollector();
  ~TraceCollector() = delete;  // leaked singleton

  Impl* impl_;
  std::atomic<bool> enabled_{false};
};

/// RAII span: stamps the start on construction, records on destruction if
/// tracing was enabled at construction. The embedded Stopwatch runs even
/// when tracing is off, so callers can reuse `seconds()` for RunReport
/// phase timings without a second clock.
class TraceSpan {
 public:
  /// `name` must outlive the span (use string literals from the taxonomy).
  explicit TraceSpan(const char* name)
      : name_(name), armed_(TraceCollector::instance().enabled()) {
    if (armed_) startUs_ = TraceCollector::instance().nowUs();
  }

  ~TraceSpan() {
    if (armed_) {
      TraceCollector::instance().record(name_, startUs_,
                                        watch_.seconds() * 1e6);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Seconds since construction; valid whether or not tracing is enabled.
  double seconds() const { return watch_.seconds(); }

 private:
  Stopwatch watch_;
  const char* name_;
  double startUs_ = 0.0;
  bool armed_;
};

}  // namespace ancstr::trace
