// Designer ground-truth constraints and matching against detector output.
//
// Ground truth is a set of (hierarchy path, module name, module name)
// triples; pair order and name case are normalised. Benchmark generators
// emit these alongside the netlist; the evaluation harness labels every
// scored candidate and reduces decisions to a confusion matrix.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/candidates.h"
#include "core/constraint_io.h"
#include "core/detector.h"
#include "eval/metrics.h"
#include "netlist/flatten.h"

namespace ancstr {

/// One designer-annotated symmetry constraint.
struct GroundTruthEntry {
  std::string hierPath;  ///< "" for the top cell, else "xfilter/xota"
  std::string nameA;     ///< local instance or device name
  std::string nameB;
  ConstraintLevel level = ConstraintLevel::kDevice;
};

/// Indexed ground truth for O(1) pair lookups.
class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(std::vector<GroundTruthEntry> entries);

  std::size_t size() const { return entries_.size(); }
  const std::vector<GroundTruthEntry>& entries() const { return entries_; }

  /// True when (hierPath, a, b) is annotated (order-insensitive).
  bool contains(std::string_view hierPath, std::string_view a,
                std::string_view b) const;

  /// True when the candidate matches an annotated constraint.
  bool matches(const FlatDesign& design, const CandidatePair& pair) const;

 private:
  std::vector<GroundTruthEntry> entries_;
  std::unordered_set<std::string> keys_;
};

/// Labels candidates against ground truth: out[i] == true iff scored[i]
/// is an annotated constraint.
std::vector<bool> labelCandidates(const FlatDesign& design,
                                  const std::vector<ScoredCandidate>& scored,
                                  const GroundTruth& truth);

/// Reduces accept decisions + labels to confusion counts, optionally
/// restricted to one constraint level.
ConfusionCounts confusionFromScored(
    const std::vector<ScoredCandidate>& scored, const std::vector<bool>& labels);
ConfusionCounts confusionFromScored(
    const std::vector<ScoredCandidate>& scored, const std::vector<bool>& labels,
    ConstraintLevel level);

/// Converts parsed constraint-file pair records (core/constraint_io) to
/// GroundTruth; self-symmetric single-name entries are skipped. Use to
/// diff a detector run against a golden constraint file.
GroundTruth toGroundTruth(const std::vector<ParsedConstraint>& parsed);

}  // namespace ancstr
