// Valid symmetry-candidate enumeration (paper Section III-A).
//
// A candidate pair (t_i, t_j) lives under one hierarchy node T_c and its
// two modules have identical "types":
//   * device-level:  two leaf devices directly under T_c with the same
//                    DeviceType;
//   * system-level:  two building-block children of T_c of the same
//                    category, or two passive leaf devices under a T_c
//                    that also contains at least one building block.
// Pairs across hierarchies or with nonidentical types are invalid and are
// never enumerated (they count as true negatives for nobody).
#pragma once

#include <string>
#include <vector>

#include "netlist/flatten.h"
#include "netlist/netlist.h"

namespace ancstr {

/// Whether a constraint/candidate is system- or device-level.
enum class ConstraintLevel { kSystem, kDevice };

/// What a module reference points at.
enum class ModuleKind { kBlock, kDevice };

/// One module of a pair: a hierarchy node (block) or a flat device.
struct ModuleRef {
  ModuleKind kind = ModuleKind::kDevice;
  std::uint32_t id = 0;  ///< HierNodeId or FlatDeviceId

  bool operator==(const ModuleRef&) const = default;
};

/// A valid candidate pair under `hierarchy`.
struct CandidatePair {
  HierNodeId hierarchy = 0;
  ConstraintLevel level = ConstraintLevel::kDevice;
  ModuleRef a;
  ModuleRef b;
  /// Local (per-hierarchy) module names, e.g. instance or device name.
  std::string nameA;
  std::string nameB;
};

/// All valid candidate pairs of the design.
struct CandidateSet {
  std::vector<CandidatePair> pairs;

  std::size_t count(ConstraintLevel level) const;
};

/// Block category used for "identical type" between building blocks: the
/// master name with a short trailing variant suffix removed, so nonidentical
/// but matchable masters (e.g. "dacp_a" / "dacp_b" cap arrays with
/// different interconnect) stay comparable. Examples:
///   "ota" -> "ota", "dac1" -> "dac", "comp_a" -> "comp",
///   "ota_tele" -> "ota_tele" (long suffixes are semantic, kept).
std::string blockCategory(std::string_view masterName);

/// Enumerates every valid candidate pair. `lib` provides master names for
/// block categorisation.
CandidateSet enumerateCandidates(const FlatDesign& design, const Library& lib);

/// Level name ("system" / "device") for reports.
const char* constraintLevelName(ConstraintLevel level) noexcept;

}  // namespace ancstr
