#include "core/groups.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netlist/builder.h"

namespace ancstr {
namespace {

struct GroupSetup {
  Library lib;
  FlatDesign design;
  DetectionResult detection;
};

/// Diff pair + tail + loads: (m1,m2) and (r1,r2) accepted; mt bridges.
GroupSetup makeSetup() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"inp", "inn", "op", "on", "vb", "vdd", "vss"});
  b.nmos("m1", "op", "inp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "on", "inn", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("mt", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  b.res("r1", "op", "vdd", 1e3);
  b.res("r2", "on", "vdd", 1e3);
  b.cap("cx", "op", "vss", 1e-15);
  b.endSubckt();
  Library lib = b.build("cell");
  FlatDesign design = FlatDesign::elaborate(lib);

  DetectionResult detection;
  const CandidateSet candidates = enumerateCandidates(design, lib);
  for (const CandidatePair& pair : candidates.pairs) {
    ScoredCandidate c;
    c.pair = pair;
    const bool matched = (pair.nameA == "m1" && pair.nameB == "m2") ||
                         (pair.nameA == "r1" && pair.nameB == "r2");
    c.similarity = matched ? 1.0 : 0.1;
    c.accepted = matched;
    detection.scored.push_back(c);
  }
  detection.set = buildConstraintSet(design, detection);
  return {std::move(lib), std::move(design), std::move(detection)};
}

/// The (a, b) name pairs of one kSymmetryGroup record.
std::vector<std::pair<std::string, std::string>> groupPairs(
    const Constraint& g) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (std::uint32_t i = 0; i < g.pairCount; ++i) {
    pairs.emplace_back(g.members[2 * i].name, g.members[2 * i + 1].name);
  }
  return pairs;
}

/// The self-symmetric tail names of one kSymmetryGroup record.
std::vector<std::string> groupSelfs(const Constraint& g) {
  std::vector<std::string> selfs;
  for (std::size_t i = 2 * g.pairCount; i < g.members.size(); ++i) {
    selfs.push_back(g.members[i].name);
  }
  return selfs;
}

TEST(Groups, DisjointPairsFormSeparateGroups) {
  const GroupSetup s = makeSetup();
  ConstraintSet set = s.detection.set;
  appendSymmetryGroups(s.design, set);
  const auto groups = set.ofType(ConstraintType::kSymmetryGroup);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0]->pairCount, 1u);
  EXPECT_EQ(groups[1]->pairCount, 1u);
}

TEST(Groups, TailDetectedAsSelfSymmetric) {
  const GroupSetup s = makeSetup();
  ConstraintSet set = s.detection.set;
  appendSymmetryGroups(s.design, set);
  bool found = false;
  for (const Constraint* g : set.ofType(ConstraintType::kSymmetryGroup)) {
    for (const auto& [a, b] : groupPairs(*g)) {
      if (a == "m1" && b == "m2") {
        found = true;
        const auto selfs = groupSelfs(*g);
        ASSERT_EQ(selfs.size(), 1u);
        EXPECT_EQ(selfs[0], "mt");
      }
    }
  }
  EXPECT_TRUE(found);
  // The bridge device is also registered as a standalone kSelfSymmetric
  // record, so flat consumers see it without walking group tails.
  const auto selfs = set.ofType(ConstraintType::kSelfSymmetric);
  ASSERT_EQ(selfs.size(), 1u);
  ASSERT_EQ(selfs[0]->members.size(), 1u);
  EXPECT_EQ(selfs[0]->members[0].name, "mt");
}

TEST(Groups, MatchedDevicesNeverSelfSymmetric) {
  const GroupSetup s = makeSetup();
  ConstraintSet set = s.detection.set;
  appendSymmetryGroups(s.design, set);
  for (const Constraint* g : set.ofType(ConstraintType::kSymmetryGroup)) {
    for (const std::string& name : groupSelfs(*g)) {
      EXPECT_NE(name, "m1");
      EXPECT_NE(name, "m2");
      EXPECT_NE(name, "r1");
      EXPECT_NE(name, "r2");
    }
  }
}

TEST(Groups, SelfSymmetricDetectionCanBeDisabled) {
  const GroupSetup s = makeSetup();
  GroupOptions options;
  options.detectSelfSymmetric = false;
  ConstraintSet set = s.detection.set;
  appendSymmetryGroups(s.design, set, options);
  EXPECT_EQ(set.count(ConstraintType::kSelfSymmetric), 0u);
  for (const Constraint* g : set.ofType(ConstraintType::kSymmetryGroup)) {
    EXPECT_TRUE(groupSelfs(*g).empty());
  }
}

TEST(Groups, SharedModuleMergesGroups) {
  // Accept (m1,m2) and (m2,mt): one group of two pairs.
  GroupSetup s = makeSetup();
  bool chained = false;
  for (ScoredCandidate& c : s.detection.scored) {
    if ((c.pair.nameA == "m1" && c.pair.nameB == "mt") ||
        (c.pair.nameA == "m2" && c.pair.nameB == "mt")) {
      c.accepted = true;
      chained = true;
    }
  }
  ASSERT_TRUE(chained);
  s.detection.set = buildConstraintSet(s.design, s.detection);
  ConstraintSet set = s.detection.set;
  appendSymmetryGroups(s.design, set);
  std::size_t mosGroupPairs = 0;
  for (const Constraint* g : set.ofType(ConstraintType::kSymmetryGroup)) {
    const auto pairs = groupPairs(*g);
    for (const auto& [a, b] : pairs) {
      if (a[0] == 'm') ++mosGroupPairs;
    }
    if (!pairs.empty() && pairs[0].first[0] == 'm') {
      EXPECT_GE(pairs.size(), 2u);
    }
  }
  EXPECT_GE(mosGroupPairs, 2u);
}

TEST(Groups, EmptyDetectionGivesNoGroups) {
  GroupSetup s = makeSetup();
  for (ScoredCandidate& c : s.detection.scored) c.accepted = false;
  s.detection.set = buildConstraintSet(s.design, s.detection);
  ConstraintSet set = s.detection.set;
  EXPECT_EQ(appendSymmetryGroups(s.design, set), 0u);
  EXPECT_TRUE(set.empty());
}

TEST(Groups, DeterministicOrder) {
  const GroupSetup s = makeSetup();
  ConstraintSet a = s.detection.set;
  ConstraintSet b = s.detection.set;
  appendSymmetryGroups(s.design, a);
  appendSymmetryGroups(s.design, b);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace ancstr
