// ExtractionEngine: warm-model batch serving over a trained Pipeline.
//
// The paper's model is inductive — train once, extract anywhere — so a
// serving deployment runs many extractions against one set of frozen
// weights. The engine amortizes that workload with two content-addressed
// caches keyed by structuralHash (core/circuit_hash.h):
//
//   * design cache  — the front half of an extraction (multigraph
//     construction + feature init + full-design GNN inference), stored as
//     InferenceArtifacts per whole-design hash;
//   * block cache   — per-subcircuit Algorithm-2 local embeddings
//     (CachedBlockEmbedding, core/embedding.h), stored per subtree hash,
//     so repeated blocks — across designs or within one — are embedded
//     once.
//
// Both caches share one LRU byte budget (EngineConfig::cacheBudgetBytes,
// split evenly between them) with shared_ptr pinning: an entry in use is
// never evicted (util/lru_cache.h). Caching never changes results — a
// warm extraction is bitwise identical to a cold one, because hash
// equality implies a positionally identical serialization of every input
// the cached computation consumed.
//
// Batches fan out over the deterministic util/parallel.h thread pool
// (EngineConfig::threads; ANCSTR_THREADS overrides); results land in
// per-design slots, so batch output is identical for every thread count.
//
// Observability: "engine.extract" / "engine.hash" / "engine.batch" trace
// spans, and engine.cache.* / engine.block_cache.* counters and gauges
// (docs/observability.md).
//
// The engine holds the Pipeline by reference and assumes its model stays
// fixed: reloading the pipeline's weights invalidates every cached entry
// — call clearCaches() after loadModel().
#pragma once

#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "core/pipeline.h"
#include "util/lru_cache.h"
#include "util/structural_hash.h"

namespace ancstr {

struct EngineConfig {
  /// Total byte budget across both caches (split evenly); 0 disables all
  /// caching. The budget is soft: pinned (in-use) entries are never
  /// evicted, so occupancy can transiently exceed it.
  std::size_t cacheBudgetBytes = 64ull << 20;
  /// Worker count for extractBatch's per-design fan-out. 0 =
  /// hardware_concurrency, 1 = serial; ANCSTR_THREADS overrides (see
  /// util::resolveThreadCount). Per-design pipeline-internal parallelism
  /// stays governed by PipelineConfig::threads.
  std::size_t threads = 1;
  bool cacheDesignInference = true;
  bool cacheBlockEmbeddings = true;
};

/// Cumulative cache counters (see util::LruCacheStats).
struct EngineCacheStats {
  util::LruCacheStats design;
  util::LruCacheStats blocks;
};

class ExtractionEngine {
 public:
  /// `pipeline` must outlive the engine and be trained before the first
  /// extract call.
  explicit ExtractionEngine(const Pipeline& pipeline, EngineConfig config = {});
  ~ExtractionEngine();

  ExtractionEngine(const ExtractionEngine&) = delete;
  ExtractionEngine& operator=(const ExtractionEngine&) = delete;

  /// One warm-path extraction: identical contract (and bitwise identical
  /// detection/embeddings output) to Pipeline::extract, plus cache
  /// consultation. The result report gains an "engine.hash" phase and —
  /// on a design-cache hit — omits the skipped "extract.graph_build" /
  /// "extract.inference" phases.
  ExtractionResult extract(const Library& lib,
                           ExtractOptions options = {}) const;

  /// Extracts every design of `batch` (null entries are a caller bug),
  /// fanning out over EngineConfig::threads workers. results[i]
  /// corresponds to batch[i] and is bitwise identical for every thread
  /// count. With a collect-mode options.sink, each design degrades
  /// independently (one corrupt design never poisons its neighbours);
  /// diagnostics land in the matching result's report and are merged into
  /// the caller's sink in batch order. `batchReport`, when non-null,
  /// receives the whole-batch "engine.batch" phase and metrics delta.
  std::vector<ExtractionResult> extractBatch(
      std::span<const Library* const> batch, ExtractOptions options = {},
      RunReport* batchReport = nullptr) const;

  /// Braced-list convenience: extractBatch({&a, &b}).
  std::vector<ExtractionResult> extractBatch(
      std::initializer_list<const Library*> batch, ExtractOptions options = {},
      RunReport* batchReport = nullptr) const {
    return extractBatch(
        std::span<const Library* const>(batch.begin(), batch.size()), options,
        batchReport);
  }

  EngineCacheStats cacheStats() const;

  /// Drops every unpinned cached entry (e.g. after Pipeline::loadModel).
  void clearCaches();

  const Pipeline& pipeline() const { return pipeline_; }
  const EngineConfig& config() const { return config_; }

 private:
  class BlockCacheAdapter;

  ExtractionResult extractOne(const Library& lib,
                              diag::DiagnosticSink* sink) const;
  void publishCacheMetrics() const;

  const Pipeline& pipeline_;
  EngineConfig config_;
  mutable util::LruByteCache<util::StructuralHash, InferenceArtifacts>
      designCache_;
  mutable util::LruByteCache<util::StructuralHash, CachedBlockEmbedding>
      blockCache_;
  std::unique_ptr<BlockCacheAdapter> blockAdapter_;
  mutable std::mutex publishMutex_;
  mutable EngineCacheStats published_;
};

}  // namespace ancstr
