#!/usr/bin/env python3
"""Crash-recovery drill for the persistent cache tier (docs/robustness.md).

Proves the crash-safety half of the persistence contract end to end:

  1. Reference: a cold `extract --batch --cache-dir` run into a private
     cache directory, timed — its outputs are the ground truth.
  2. Crash: the same batch into a FRESH cache directory, SIGKILLed
     mid-run, leaving a partially populated (and possibly mid-write)
     store on disk.
  3. Recovery: rerun over the killed run's directory. Must exit 0,
     sweep every stale temp file, and produce constraint files bitwise
     identical to the reference — a torn or partial entry must never
     change an answer.
  4. Warm restart: one more run over the now-complete directory, timed.
     Must also be bitwise identical and beat the cold reference by
     --min-speedup (the restart-warm property bench_engine gates harder).

Usage:
  scripts/crash_recovery.py [--cli build/tools/ancstr_cli]
                            [--work crash-recovery-work]
                            [--kill-after-fraction 0.4]
                            [--min-speedup 1.2]
"""

import argparse
import filecmp
import pathlib
import shutil
import signal
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent


def run_checked(argv, what):
    proc = subprocess.run(argv, capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        sys.exit(f"crash_recovery: {what} failed ({proc.returncode}):\n"
                 f"{proc.stderr}")
    return proc


def batch_argv(cli, model, corpus, cache, out):
    return [cli, "extract", "--model", str(model), "--batch", str(corpus),
            "--cache-dir", str(cache), "--out-dir", str(out)]


def timed_batch(cli, model, corpus, cache, out, what):
    start = time.monotonic()
    run_checked(batch_argv(cli, model, corpus, cache, out), what)
    return time.monotonic() - start


def compare_outputs(ref, out, what):
    names = sorted(p.name for p in ref.iterdir())
    if not names:
        sys.exit("crash_recovery: reference run produced no outputs")
    for name in names:
        candidate = out / name
        if not candidate.exists():
            sys.exit(f"crash_recovery: {what}: missing output {name}")
        if not filecmp.cmp(ref / name, candidate, shallow=False):
            sys.exit(f"crash_recovery: {what}: {name} differs from the "
                     f"reference — the recovered cache served bad bytes")
    return len(names)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default=str(REPO / "build/tools/ancstr_cli"))
    parser.add_argument("--work", default="crash-recovery-work")
    parser.add_argument("--kill-after-fraction", type=float, default=0.4,
                        help="fraction of the cold runtime to wait before "
                             "SIGKILL")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="required cold/warm-restart ratio (kept loose "
                             "for noisy shared runners; bench_engine gates "
                             "the 3x property)")
    args = parser.parse_args()

    cli = pathlib.Path(args.cli)
    if not cli.exists():
        sys.exit(f"crash_recovery: CLI not found at {cli}")
    work = pathlib.Path(args.work)
    shutil.rmtree(work, ignore_errors=True)
    work.mkdir(parents=True)

    corpus = work / "corpus"
    model = work / "model.txt"
    run_checked([str(cli), "corpus", "--dir", str(corpus)], "corpus")
    run_checked([str(cli), "train", "--out", str(model), "--epochs", "3",
                 str(corpus / "OTA1.sp"), str(corpus / "COMP2.sp")], "train")

    # 1. Cold reference into its own cache directory.
    ref_out = work / "ref-out"
    cold_seconds = timed_batch(str(cli), model, corpus, work / "ref-cache",
                               ref_out, "cold reference")
    print(f"crash_recovery: cold reference {cold_seconds:.3f}s")

    # 2. Crash run: SIGKILL mid-batch, mid-cache-population.
    crash_cache = work / "cache"
    proc = subprocess.Popen(
        batch_argv(str(cli), model, corpus, crash_cache, work / "crash-out"),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    time.sleep(max(0.05, cold_seconds * args.kill_after_fraction))
    killed = proc.poll() is None
    if killed:
        proc.send_signal(signal.SIGKILL)
    proc.wait()
    leftover = sorted(p.name for p in crash_cache.glob("*")) \
        if crash_cache.exists() else []
    print(f"crash_recovery: {'killed mid-run' if killed else 'finished before the kill window'}, "
          f"{len(leftover)} files left in the cache")

    # 3. Recovery over the killed store: exit 0, bitwise-equal outputs,
    #    stale temp files swept.
    recovered_out = work / "recovered-out"
    timed_batch(str(cli), model, corpus, crash_cache, recovered_out,
                "recovery rerun")
    count = compare_outputs(ref_out, recovered_out, "recovery rerun")
    stale = [p.name for p in crash_cache.glob("*.tmp*")]
    if stale:
        sys.exit(f"crash_recovery: stale temp files survived recovery: "
                 f"{stale}")
    print(f"crash_recovery: recovery OK — {count} outputs bitwise equal, "
          f"no stale temp files")

    # 4. Warm restart over the now-complete store.
    warm_out = work / "warm-out"
    warm_seconds = timed_batch(str(cli), model, corpus, crash_cache,
                               warm_out, "warm restart")
    compare_outputs(ref_out, warm_out, "warm restart")
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else 0.0
    print(f"crash_recovery: warm restart {warm_seconds:.3f}s "
          f"({speedup:.2f}x vs cold)")
    if speedup < args.min_speedup:
        sys.exit(f"crash_recovery: warm restart speedup {speedup:.2f}x "
                 f"< required {args.min_speedup}x")
    print("crash_recovery: PASS")


if __name__ == "__main__":
    main()
