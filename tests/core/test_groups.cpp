#include "core/groups.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"

namespace ancstr {
namespace {

struct GroupSetup {
  Library lib;
  FlatDesign design;
  DetectionResult detection;
};

/// Diff pair + tail + loads: (m1,m2) and (r1,r2) accepted; mt bridges.
GroupSetup makeSetup() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"inp", "inn", "op", "on", "vb", "vdd", "vss"});
  b.nmos("m1", "op", "inp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "on", "inn", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("mt", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  b.res("r1", "op", "vdd", 1e3);
  b.res("r2", "on", "vdd", 1e3);
  b.cap("cx", "op", "vss", 1e-15);
  b.endSubckt();
  Library lib = b.build("cell");
  FlatDesign design = FlatDesign::elaborate(lib);

  DetectionResult detection;
  const CandidateSet candidates = enumerateCandidates(design, lib);
  for (const CandidatePair& pair : candidates.pairs) {
    ScoredCandidate c;
    c.pair = pair;
    const bool matched = (pair.nameA == "m1" && pair.nameB == "m2") ||
                         (pair.nameA == "r1" && pair.nameB == "r2");
    c.similarity = matched ? 1.0 : 0.1;
    c.accepted = matched;
    detection.scored.push_back(c);
  }
  return {std::move(lib), std::move(design), std::move(detection)};
}

TEST(Groups, DisjointPairsFormSeparateGroups) {
  const GroupSetup s = makeSetup();
  const auto groups = buildSymmetryGroups(s.design, s.detection);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].pairs.size(), 1u);
  EXPECT_EQ(groups[1].pairs.size(), 1u);
}

TEST(Groups, TailDetectedAsSelfSymmetric) {
  const GroupSetup s = makeSetup();
  const auto groups = buildSymmetryGroups(s.design, s.detection);
  bool found = false;
  for (const SymmetryGroup& g : groups) {
    for (const auto& [a, b] : g.pairs) {
      if (a == "m1" && b == "m2") {
        found = true;
        ASSERT_EQ(g.selfSymmetric.size(), 1u);
        EXPECT_EQ(g.selfSymmetric[0], "mt");
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(Groups, MatchedDevicesNeverSelfSymmetric) {
  const GroupSetup s = makeSetup();
  const auto groups = buildSymmetryGroups(s.design, s.detection);
  for (const SymmetryGroup& g : groups) {
    for (const std::string& name : g.selfSymmetric) {
      EXPECT_NE(name, "m1");
      EXPECT_NE(name, "m2");
      EXPECT_NE(name, "r1");
      EXPECT_NE(name, "r2");
    }
  }
}

TEST(Groups, SelfSymmetricDetectionCanBeDisabled) {
  const GroupSetup s = makeSetup();
  GroupOptions options;
  options.detectSelfSymmetric = false;
  const auto groups = buildSymmetryGroups(s.design, s.detection, options);
  for (const SymmetryGroup& g : groups) {
    EXPECT_TRUE(g.selfSymmetric.empty());
  }
}

TEST(Groups, SharedModuleMergesGroups) {
  // Accept (m1,m2) and (m2,mt): one group of two pairs.
  GroupSetup s = makeSetup();
  for (ScoredCandidate& c : s.detection.scored) {
    if (c.pair.nameA == "m2" && c.pair.nameB == "mt") c.accepted = true;
    if (c.pair.nameA == "m1" && c.pair.nameB == "mt") c.accepted = false;
  }
  // m1/m2 and m2/mt are candidates (same type) — find and accept.
  bool chained = false;
  for (ScoredCandidate& c : s.detection.scored) {
    if ((c.pair.nameA == "m1" && c.pair.nameB == "mt") ||
        (c.pair.nameA == "m2" && c.pair.nameB == "mt")) {
      c.accepted = true;
      chained = true;
    }
  }
  ASSERT_TRUE(chained);
  const auto groups = buildSymmetryGroups(s.design, s.detection);
  std::size_t mosGroupPairs = 0;
  for (const SymmetryGroup& g : groups) {
    for (const auto& [a, b] : g.pairs) {
      if (a[0] == 'm') ++mosGroupPairs;
    }
    if (!g.pairs.empty() && g.pairs[0].first[0] == 'm') {
      EXPECT_GE(g.pairs.size(), 2u);
    }
  }
  EXPECT_GE(mosGroupPairs, 2u);
}

TEST(Groups, EmptyDetectionGivesNoGroups) {
  GroupSetup s = makeSetup();
  for (ScoredCandidate& c : s.detection.scored) c.accepted = false;
  EXPECT_TRUE(buildSymmetryGroups(s.design, s.detection).empty());
}

TEST(Groups, DeterministicOrder) {
  const GroupSetup s = makeSetup();
  const auto a = buildSymmetryGroups(s.design, s.detection);
  const auto b = buildSymmetryGroups(s.design, s.detection);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pairs, b[i].pairs);
    EXPECT_EQ(a[i].selfSymmetric, b[i].selfSymmetric);
  }
}

}  // namespace
}  // namespace ancstr
