#include "netlist/spice_writer.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "util/error.h"

namespace ancstr {
namespace {

Library smallLib() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"a", "k", "c", "bnet", "e", "vss"});
  b.dio("d1", "a", "k");
  b.nmos("m1", "a", "k", "vss", "vss", 2e-6, 0.1e-6, 3);
  b.res("r1", "a", "k", 1234.0);
  b.cap("cx", "a", "vss", 5e-15, DeviceType::kCapMim, 2);
  b.endSubckt();
  return b.build("cell");
}

TEST(SpiceWriter, EmitsCanonicalCards) {
  const std::string text = writeSpice(smallLib());
  EXPECT_NE(text.find(".subckt cell a k c bnet e vss"), std::string::npos);
  EXPECT_NE(text.find("d1 a k dio"), std::string::npos);
  EXPECT_NE(text.find("m1 a k vss vss nch w=2e-06 l=1e-07 nf=3"),
            std::string::npos);
  EXPECT_NE(text.find("r1 a k 1234 res_poly"), std::string::npos);
  EXPECT_NE(text.find("cx a vss 5e-15 cap_mim layers=2"), std::string::npos);
  EXPECT_NE(text.find(".ends cell"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(SpiceWriter, PrefixesMismatchedCardLetters) {
  NetlistBuilder b;
  b.beginSubckt("cell", {"a", "b"});
  // Device named without the canonical leading letter.
  b.res("load", "a", "b", 1e3);
  b.endSubckt();
  const std::string text = writeSpice(b.build("cell"));
  EXPECT_NE(text.find("rload a b"), std::string::npos);
}

TEST(SpiceWriter, MastersEmittedBeforeUsers) {
  NetlistBuilder b;
  b.beginSubckt("leaf", {"p"});
  b.res("r1", "p", "q", 1.0);
  b.endSubckt();
  b.beginSubckt("top", {"x"});
  b.inst("u1", "leaf", {"x"});
  b.endSubckt();
  const std::string text = writeSpice(b.build("top"));
  EXPECT_LT(text.find(".subckt leaf"), text.find(".subckt top"));
  EXPECT_NE(text.find("xu1 x leaf"), std::string::npos);
}

TEST(SpiceWriter, MultiplierEmitted) {
  Library lib;
  const SubcktId id = lib.addSubckt("cell");
  SubcktDef& def = lib.mutableSubckt(id);
  const NetId a = def.addNet("a", true);
  Device dev;
  dev.name = "m1";
  dev.type = DeviceType::kNch;
  dev.params.w = 1e-6;
  dev.params.l = 1e-7;
  dev.params.m = 4;
  dev.pins = {{PinFunction::kDrain, a},
              {PinFunction::kGate, a},
              {PinFunction::kSource, a},
              {PinFunction::kBulk, a}};
  def.addDevice(std::move(dev));
  const std::string text = writeSpice(lib);
  EXPECT_NE(text.find(" m=4"), std::string::npos);
}

TEST(SpiceWriter, FileWriteFailureThrows) {
  EXPECT_THROW(writeSpiceFile(smallLib(), "/no/such/dir/out.sp"), Error);
}

}  // namespace
}  // namespace ancstr
