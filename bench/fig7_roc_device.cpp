// Reproduces Fig. 7: ROC curve of this work on the merged 15-block
// dataset for device-level detection, plus the single operating point of
// the SFA heuristic (a non-probabilistic method produces one point). The
// paper reports AUC = 0.956 with SFA's point enclosed by our curve.
#include <cstdio>

#include "common.h"

using namespace ancstr;
using namespace ancstr::bench;

int main() {
  const auto corpus = fullCorpus();
  Pipeline pipeline = trainPipeline(corpus, paperConfig());

  std::vector<double> ourScores;
  std::vector<bool> ourLabels;
  ConfusionCounts sfaCounts;
  for (const auto& bench : corpus) {
    if (bench.category == "ADC") continue;
    const Evaluated us = evalOurs(pipeline, bench, ConstraintLevel::kDevice);
    ourScores.insert(ourScores.end(), us.scores.begin(), us.scores.end());
    ourLabels.insert(ourLabels.end(), us.labels.begin(), us.labels.end());
    sfaCounts += evalSfa(bench).counts;
  }

  std::printf("\n=== Fig. 7: ROC on merged block dataset (device-level) ===\n");
  const RocCurve ours = computeRoc(ourScores, ourLabels);
  printRoc("This work", ours);
  const Metrics sfa = computeMetrics(sfaCounts);
  std::printf("SFA operating point: (fpr=%.3f, tpr=%.3f)\n", sfa.fpr, sfa.tpr);

  // "Enclosed" = our curve's TPR at SFA's FPR is at least SFA's TPR.
  double tprAtSfaFpr = 0.0;
  for (const RocPoint& p : ours.points) {
    if (p.fpr <= sfa.fpr + 1e-12) tprAtSfaFpr = std::max(tprAtSfaFpr, p.tpr);
  }
  std::printf("\nShape check (paper: AUC ~0.956, SFA point enclosed):\n"
              "  AUC = %.4f (paper 0.956)\n"
              "  our TPR at SFA's FPR = %.3f vs SFA TPR %.3f -> %s\n",
              ours.auc, tprAtSfaFpr, sfa.tpr,
              tprAtSfaFpr >= sfa.tpr ? "enclosed" : "NOT enclosed");
  return 0;
}
