// Library diffing for incremental (ECO) extraction (docs/api.md).
//
// Compares two versions of a design at subcircuit granularity using the
// same 128-bit hashes the ExtractionEngine caches key on:
//
//  * masters are classified unchanged / modified / added / removed by
//    their name-free content hash (netlist/manifest.h), matched by name —
//    a pure rename therefore reads as added + removed, but every cache
//    keyed on content still hits;
//  * hierarchy nodes of the NEW design are classified clean / dirty by
//    membership of their subtree structural hash (core/circuit_hash.h) in
//    the baseline's subtree-hash set. Because the subtree hash serializes
//    a parent's devices together with every descendant's, an edit dirties
//    the whole instantiating cone automatically; and because it encodes
//    each net's full-design degree eligibility under
//    GraphBuildOptions::maxNetDegree, an edit that flips a shared net
//    across the cap dirties every subtree touching that net, even ones
//    whose own devices did not change.
//
// A baseline can be a live Library, a FlatDesign, or a saved manifest
// (`extract --since BASELINE`); a manifest written by buildManifest
// carries the config-dependent hashes, so diffing needs no access to the
// original netlist text.
#pragma once

#include <string>
#include <vector>

#include "core/features.h"
#include "core/graph_builder.h"
#include "netlist/flatten.h"
#include "netlist/manifest.h"

namespace ancstr {

/// Classification of one master between two library versions.
enum class MasterChange {
  kUnchanged,  ///< same name, same content hash
  kModified,   ///< same name, different content hash
  kAdded,      ///< name only in the new library
  kRemoved,    ///< name only in the old library
};

/// Display name ("unchanged", "modified", "added", "removed").
const char* toString(MasterChange change);

/// One master's classification.
struct MasterDelta {
  std::string name;
  MasterChange change = MasterChange::kUnchanged;
  util::StructuralHash oldHash;  ///< null when added
  util::StructuralHash newHash;  ///< null when removed
};

/// Result of diffing a baseline against a new design. Node indices refer
/// to the NEW design's hierarchy.
struct LibraryDiff {
  /// Per-master classification, sorted by name. Empty when the baseline
  /// carried no master entries.
  std::vector<MasterDelta> masters;
  /// Per-HierNodeId of the new design: true when the node's subtree hash
  /// is absent from the baseline (its extraction inputs changed).
  std::vector<bool> dirtyNode;
  std::size_t dirtyNodes = 0;    ///< count of true entries in dirtyNode
  std::size_t cleanNodes = 0;    ///< count of false entries in dirtyNode
  /// Devices inside at least one clean subtree: their positional block
  /// context is byte-identical to the baseline's, so cached per-block
  /// artifacts keyed on those hashes are reusable.
  std::size_t reusableDevices = 0;
  std::size_t dirtyDevices = 0;  ///< devices() size minus reusableDevices
  /// Whole-design structural hash unchanged — the engine's design-level
  /// cache key matches and the entire cached result is reusable.
  bool designUnchanged = false;

  /// True when the extraction inputs are unchanged (identity edit): the
  /// design hash matches and no hierarchy node is dirty. Master-list
  /// edits outside the instantiated hierarchy (an added spare cell, say)
  /// do not count — check changedMasters() for those.
  bool identical() const { return designUnchanged && dirtyNodes == 0; }

  /// Count of masters not classified kUnchanged.
  std::size_t changedMasters() const;
};

/// Hash of the (GraphBuildOptions, FeatureConfig) pair, recorded in
/// manifests so a baseline saved under one configuration is never trusted
/// under another.
util::StructuralHash extractionConfigHash(const GraphBuildOptions& graph,
                                          const FeatureConfig& features);

/// Subtree structural hash of every hierarchy node, indexed by HierNodeId.
std::vector<util::StructuralHash> subtreeHashes(
    const FlatDesign& design, const GraphBuildOptions& graph,
    const FeatureConfig& features);

/// Node-level diff of two elaborated designs (no master classification —
/// see diffLibraries for the full form).
LibraryDiff diffDesigns(const FlatDesign& oldDesign,
                        const FlatDesign& newDesign,
                        const GraphBuildOptions& graph,
                        const FeatureConfig& features);

/// Node-level diff when the caller already holds every hash: the old
/// side's subtree hashes (any order), the new side's subtree hashes
/// indexed by `newDesign`'s HierNodeId (subtreeHashes() output), and both
/// whole-design hashes. Classification is identical to diffDesigns over
/// the same designs; the point is cost — the engine's delta path computes
/// each hash exactly once and reuses it here, for the design-cache probe,
/// and for block embedding (core/detector.h DetectionCaches::nodeHashes).
/// A null `oldDesignHash` means "unknown" and leaves designUnchanged
/// false.
LibraryDiff diffPrehashed(const FlatDesign& newDesign,
                          const std::vector<util::StructuralHash>& oldSubtrees,
                          const util::StructuralHash& oldDesignHash,
                          const std::vector<util::StructuralHash>& newSubtrees,
                          const util::StructuralHash& newDesignHash);

/// Master classification alone (netlist content hashes, matched by name;
/// config-independent). Throws NetlistError on a recursive hierarchy.
std::vector<MasterDelta> diffMasters(const Library& oldLib,
                                     const Library& newLib);

/// Full diff of two libraries: master classification plus node-level
/// dirtiness. Throws NetlistError when either library fails elaboration.
LibraryDiff diffLibraries(const Library& oldLib, const Library& newLib,
                          const GraphBuildOptions& graph,
                          const FeatureConfig& features);

/// Complete manifest of `lib`: per-master content hashes plus the
/// config-dependent whole-design and subtree structural hashes, ready for
/// saveManifest (netlist/manifest.h). Throws NetlistError when `lib`
/// fails elaboration.
DesignManifest buildManifest(const Library& lib,
                             const GraphBuildOptions& graph,
                             const FeatureConfig& features);

/// Diff of a saved baseline manifest against a new library. When the
/// baseline's configHash differs from the current configuration (or it
/// carries no subtree hashes — a netlist-only manifest), node-level
/// reuse cannot be proven and every node is conservatively dirty; master
/// classification still applies, since content hashes are
/// config-independent.
LibraryDiff diffManifest(const DesignManifest& baseline,
                         const Library& newLib,
                         const GraphBuildOptions& graph,
                         const FeatureConfig& features);

}  // namespace ancstr
