#include "place/svg.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace ancstr::place {
namespace {

/// Categorical palette; pairs cycle through it, free cells are grey.
constexpr const char* kPalette[] = {
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
    "#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

}  // namespace

std::string renderSvg(const PlacementProblem& problem,
                      const PlacementSolution& solution,
                      const SvgOptions& options) {
  ANCSTR_ASSERT(solution.rects.size() == problem.cells.size());
  // Bounding box of the layout in layout units.
  double minX = solution.symmetryAxis, maxX = solution.symmetryAxis;
  double minY = 0.0, maxY = 0.0;
  bool first = true;
  for (const Rect& r : solution.rects) {
    if (first) {
      minY = r.y;
      maxY = r.top();
      first = false;
    }
    minX = std::min(minX, r.x);
    maxX = std::max(maxX, r.right());
    minY = std::min(minY, r.y);
    maxY = std::max(maxY, r.top());
  }
  const double s = options.scale;
  const double m = options.margin;
  const double width = (maxX - minX) * s + 2 * m;
  const double height = (maxY - minY) * s + 2 * m;
  // SVG y grows downward; flip so the layout reads bottom-up.
  auto px = [&](double x) { return (x - minX) * s + m; };
  auto py = [&](double y) { return height - ((y - minY) * s + m); };

  // Colour per cell from pair membership.
  std::vector<int> colour(problem.cells.size(), -1);
  for (std::size_t p = 0; p < problem.symmetricPairs.size(); ++p) {
    colour[problem.symmetricPairs[p].first] = static_cast<int>(p);
    colour[problem.symmetricPairs[p].second] = static_cast<int>(p);
  }

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
     << height << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"#fdfdfc\"/>\n";

  // Symmetry axis.
  os << "<line x1=\"" << px(solution.symmetryAxis) << "\" y1=\"0\" x2=\""
     << px(solution.symmetryAxis) << "\" y2=\"" << height
     << "\" stroke=\"#888\" stroke-dasharray=\"6,4\"/>\n";

  for (std::size_t i = 0; i < problem.cells.size(); ++i) {
    const Rect& r = solution.rects[i];
    const char* fill =
        colour[i] >= 0
            ? kPalette[static_cast<std::size_t>(colour[i]) % kPaletteSize]
            : "#d7d7d2";
    const bool selfSym =
        std::find(problem.selfSymmetric.begin(), problem.selfSymmetric.end(),
                  i) != problem.selfSymmetric.end();
    os << "<rect x=\"" << px(r.x) << "\" y=\"" << py(r.top()) << "\" width=\""
       << r.w * s << "\" height=\"" << r.h * s << "\" fill=\"" << fill
       << "\" fill-opacity=\"0.8\" stroke=\""
       << (selfSym ? "#222" : "#555") << "\""
       << (selfSym ? " stroke-width=\"2\" stroke-dasharray=\"3,2\"" : "")
       << "/>\n";
    if (options.labels) {
      const Point c = r.center();
      os << "<text x=\"" << px(c.x) << "\" y=\"" << py(c.y)
         << "\" font-size=\"" << std::max(8.0, s * 0.6)
         << "\" font-family=\"sans-serif\" text-anchor=\"middle\" "
            "dominant-baseline=\"middle\" fill=\"#1a1a1a\">"
         << problem.cells[i].name << "</text>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

void writeSvgFile(const PlacementProblem& problem,
                  const PlacementSolution& solution, const std::string& path,
                  const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out << renderSvg(problem, solution, options);
  if (!out) throw Error("failed writing '" + path + "'");
}

}  // namespace ancstr::place
