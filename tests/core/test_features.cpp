#include "core/features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/builder.h"

namespace ancstr {
namespace {

FlatDesign tinyDesign() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"a", "b", "vdd", "vss"});
  b.nmos("m1", "a", "b", "vss", "vss", 2e-6, 0.2e-6, 4);
  b.pmos("m2", "a", "b", "vdd", "vdd", 4e-6, 0.2e-6);
  b.res("r1", "a", "b", 5e3);
  b.cap("c1", "a", "vss", 100e-15, DeviceType::kCapMom, 6);
  b.endSubckt();
  return FlatDesign::elaborate(b.build("cell"));
}

TEST(Features, DimensionIs18ByDefault) {
  EXPECT_EQ(FeatureConfig{}.dims(), 18u);
}

TEST(Features, OneHotSetsExactlyOneTypeBit) {
  const FlatDesign design = tinyDesign();
  for (const FlatDevice& dev : design.devices()) {
    const auto f = deviceFeature(dev);
    double typeSum = 0.0;
    for (std::size_t i = 0; i < kNumDeviceTypes; ++i) typeSum += f[i];
    EXPECT_DOUBLE_EQ(typeSum, 1.0) << dev.path;
  }
}

TEST(Features, UnknownTypeEncodesAllZeroTypeBits) {
  FlatDevice dev;
  dev.type = DeviceType::kUnknown;
  const auto f = deviceFeature(dev);
  for (std::size_t i = 0; i < kNumDeviceTypes; ++i) {
    EXPECT_DOUBLE_EQ(f[i], 0.0);
  }
}

TEST(Features, MosGeometryLogCompressedFoldsFingers) {
  const FlatDesign design = tinyDesign();
  const auto f = deviceFeature(design.device(0));  // m1: w=2u nf=4, l=0.2u
  EXPECT_DOUBLE_EQ(f[kNumDeviceTypes], std::log1p(8.0));  // 2um * 4 fingers
  EXPECT_DOUBLE_EQ(f[kNumDeviceTypes + 1], std::log1p(2.0));
}

TEST(Features, GeometryStillSeparatesSizes) {
  // 2x sizing must map to clearly distinct feature values (Fig. 2).
  const FlatDesign design = tinyDesign();
  FlatDevice big = design.device(0);
  FlatDevice small = design.device(0);
  small.params.w = big.params.w / 2.0;
  const auto fb = deviceFeature(big);
  const auto fs = deviceFeature(small);
  EXPECT_GT(fb[kNumDeviceTypes] - fs[kNumDeviceTypes], 0.3);
}

TEST(Features, PassiveValueLogCompressed) {
  const FlatDesign design = tinyDesign();
  const auto r = deviceFeature(design.device(2));  // r1 = 5k
  EXPECT_NEAR(r[kNumDeviceTypes], std::log10(1.0 + 5.0), 1e-12);
  const auto c = deviceFeature(design.device(3));  // c1 = 100f
  EXPECT_NEAR(c[kNumDeviceTypes], std::log10(1.0 + 100.0), 1e-12);
}

TEST(Features, LayerFeatureUsesOverrideThenDefault) {
  const FlatDesign design = tinyDesign();
  const auto c = deviceFeature(design.device(3));  // layers=6 explicit
  EXPECT_DOUBLE_EQ(c.back(), 6.0);
  const auto m = deviceFeature(design.device(0));  // MOS default 1
  EXPECT_DOUBLE_EQ(m.back(), 1.0);
}

TEST(Features, AblationFlagsShrinkDims) {
  FeatureConfig noGeom;
  noGeom.useGeometry = false;
  EXPECT_EQ(noGeom.dims(), 16u);
  FeatureConfig bare;
  bare.useGeometry = false;
  bare.useLayers = false;
  EXPECT_EQ(bare.dims(), 15u);
  const FlatDesign design = tinyDesign();
  EXPECT_EQ(deviceFeature(design.device(0), bare).size(), 15u);
}

TEST(Features, MatrixRowsFollowSubsetOrder) {
  const FlatDesign design = tinyDesign();
  const nn::Matrix m =
      buildFeatureMatrix(design, std::vector<FlatDeviceId>{2, 0});
  EXPECT_EQ(m.rows(), 2u);
  const auto r1 = deviceFeature(design.device(2));
  for (std::size_t c = 0; c < m.cols(); ++c) {
    EXPECT_DOUBLE_EQ(m(0, c), r1[c]);
  }
}

TEST(Features, FullMatrixCoversAllDevices) {
  const FlatDesign design = tinyDesign();
  const nn::Matrix m = buildFeatureMatrix(design);
  EXPECT_EQ(m.rows(), design.devices().size());
  EXPECT_EQ(m.cols(), 18u);
}

TEST(Features, MatchedDevicesShareFeatures) {
  NetlistBuilder b;
  b.beginSubckt("pair", {"ap", "an", "t", "vss"});
  b.nmos("m1", "ap", "an", "t", "vss", 3e-6, 0.1e-6, 2);
  b.nmos("m2", "an", "ap", "t", "vss", 3e-6, 0.1e-6, 2);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("pair"));
  EXPECT_EQ(deviceFeature(design.device(0)), deviceFeature(design.device(1)));
}

}  // namespace
}  // namespace ancstr
