#include "core/candidates.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"

namespace ancstr {
namespace {

/// Top with two identical DAC blocks, one differently-named block, two
/// passives, and two mismatched-type devices.
Library hierarchicalDesign() {
  NetlistBuilder b;
  b.beginSubckt("dac_a", {"in", "out", "vss"});
  b.res("r1", "in", "out", 1e3);
  b.res("r2", "out", "vss", 1e3);
  b.endSubckt();
  b.beginSubckt("dac_b", {"in", "out", "vss"});
  b.res("r1", "in", "mid", 2e3);
  b.res("r2", "mid", "out", 2e3);
  b.cap("c1", "out", "vss", 1e-15);
  b.endSubckt();
  b.beginSubckt("filt", {"in", "out", "vss"});
  b.res("rf", "in", "out", 5e3);
  b.endSubckt();
  b.beginSubckt("top", {"inp", "inn", "out", "vss"});
  b.inst("xdacp", "dac_a", {"inp", "op", "vss"});
  b.inst("xdacn", "dac_b", {"inn", "on", "vss"});
  b.inst("xfilt", "filt", {"op", "out", "vss"});
  b.res("rp", "op", "out", 3e3);
  b.res("rn", "on", "out", 3e3);
  b.cap("cx", "out", "vss", 2e-15);
  b.nmos("msw", "out", "inp", "vss", "vss", 1e-6, 0.1e-6);
  b.endSubckt();
  return b.build("top");
}

TEST(BlockCategory, StripsVariantSuffixes) {
  EXPECT_EQ(blockCategory("ota"), "ota");
  EXPECT_EQ(blockCategory("dac1"), "dac");
  EXPECT_EQ(blockCategory("dac_a"), "dac");
  EXPECT_EQ(blockCategory("DAC_B"), "dac");
  EXPECT_EQ(blockCategory("idac_s1"), "idac");
  EXPECT_EQ(blockCategory("inv_1x"), "inv");
  EXPECT_EQ(blockCategory("ota_tele"), "ota_tele");
  EXPECT_EQ(blockCategory("rdac_a"), "rdac");
}

TEST(Candidates, BlockPairsRequireSameCategoryAndArity) {
  const Library lib = hierarchicalDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const CandidateSet set = enumerateCandidates(design, lib);

  // dac_a/dac_b share category "dac" and arity -> valid pair.
  bool dacPair = false, filtPair = false;
  for (const CandidatePair& p : set.pairs) {
    if (p.a.kind != ModuleKind::kBlock) continue;
    const bool names = (p.nameA == "xdacp" && p.nameB == "xdacn") ||
                       (p.nameA == "xdacn" && p.nameB == "xdacp");
    if (names) dacPair = true;
    if (p.nameA == "xfilt" || p.nameB == "xfilt") filtPair = true;
  }
  EXPECT_TRUE(dacPair);
  EXPECT_FALSE(filtPair) << "filt has a different category";
}

TEST(Candidates, PassivesBesideBlocksAreSystemLevel) {
  const Library lib = hierarchicalDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const CandidateSet set = enumerateCandidates(design, lib);
  for (const CandidatePair& p : set.pairs) {
    if (p.nameA == "rp" && p.nameB == "rn") {
      EXPECT_EQ(p.level, ConstraintLevel::kSystem);
      return;
    }
  }
  FAIL() << "rp/rn pair not enumerated";
}

TEST(Candidates, DifferentTypesNeverPair) {
  const Library lib = hierarchicalDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const CandidateSet set = enumerateCandidates(design, lib);
  for (const CandidatePair& p : set.pairs) {
    if (p.a.kind == ModuleKind::kDevice) {
      EXPECT_EQ(design.device(p.a.id).type, design.device(p.b.id).type);
    }
  }
  // cx (cap) and msw (mos) must not appear with any resistor.
  for (const CandidatePair& p : set.pairs) {
    EXPECT_FALSE(p.nameA == "cx" || p.nameB == "cx");
    EXPECT_FALSE(p.nameA == "msw" || p.nameB == "msw");
  }
}

TEST(Candidates, DevicePairsInsideLeafBlocksAreDeviceLevel) {
  const Library lib = hierarchicalDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const CandidateSet set = enumerateCandidates(design, lib);
  bool found = false;
  for (const CandidatePair& p : set.pairs) {
    if (p.nameA == "r1" && p.nameB == "r2") {
      EXPECT_EQ(p.level, ConstraintLevel::kDevice);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Candidates, NoCrossHierarchyPairs) {
  const Library lib = hierarchicalDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const CandidateSet set = enumerateCandidates(design, lib);
  for (const CandidatePair& p : set.pairs) {
    if (p.a.kind == ModuleKind::kDevice) {
      EXPECT_EQ(design.device(p.a.id).owner, p.hierarchy);
      EXPECT_EQ(design.device(p.b.id).owner, p.hierarchy);
    } else {
      EXPECT_EQ(design.node(p.a.id).parent, p.hierarchy);
      EXPECT_EQ(design.node(p.b.id).parent, p.hierarchy);
    }
  }
}

TEST(Candidates, CountByLevel) {
  const Library lib = hierarchicalDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const CandidateSet set = enumerateCandidates(design, lib);
  EXPECT_EQ(set.count(ConstraintLevel::kSystem) +
                set.count(ConstraintLevel::kDevice),
            set.pairs.size());
  EXPECT_GT(set.count(ConstraintLevel::kSystem), 0u);
  EXPECT_GT(set.count(ConstraintLevel::kDevice), 0u);
}

TEST(Candidates, FlatDesignHasOnlyDeviceLevel) {
  NetlistBuilder b;
  b.beginSubckt("flat", {"a", "b", "vss"});
  b.res("r1", "a", "b", 1e3);
  b.res("r2", "a", "b", 1e3);
  b.endSubckt();
  const Library lib = b.build("flat");
  const FlatDesign design = FlatDesign::elaborate(lib);
  const CandidateSet set = enumerateCandidates(design, lib);
  ASSERT_EQ(set.pairs.size(), 1u);
  EXPECT_EQ(set.pairs[0].level, ConstraintLevel::kDevice);
}

}  // namespace
}  // namespace ancstr
