#include "netlist/manifest.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.h"
#include "util/fault.h"

namespace ancstr {
namespace {

/// inv_<tag>: inverter-like pair (vin, vout ports; M1/M2) used as the
/// shared master; names are parameterized so renames can be tested.
Library makeLib(const std::string& netPrefix = "n",
                const std::string& devPrefix = "m",
                double width = 1e-6) {
  Library lib;
  const SubcktId inv = lib.addSubckt("inv");
  {
    SubcktDef& def = lib.mutableSubckt(inv);
    const NetId in = def.addNet(netPrefix + "_in", true);
    const NetId out = def.addNet(netPrefix + "_out", true);
    const NetId rail = def.addNet(netPrefix + "_rail", false);
    Device m1;
    m1.name = devPrefix + "1";
    m1.type = DeviceType::kNch;
    m1.params.w = width;
    m1.params.l = 1e-7;
    m1.pins = {{PinFunction::kDrain, out},
               {PinFunction::kGate, in},
               {PinFunction::kSource, rail},
               {PinFunction::kBulk, rail}};
    def.addDevice(std::move(m1));
    Device m2;
    m2.name = devPrefix + "2";
    m2.type = DeviceType::kPch;
    m2.params.w = 2.0 * width;
    m2.params.l = 1e-7;
    m2.pins = {{PinFunction::kDrain, out},
               {PinFunction::kGate, in},
               {PinFunction::kSource, rail},
               {PinFunction::kBulk, rail}};
    def.addDevice(std::move(m2));
  }
  const SubcktId top = lib.addSubckt("top");
  {
    SubcktDef& def = lib.mutableSubckt(top);
    const NetId a = def.addNet(netPrefix + "_a", true);
    const NetId b = def.addNet(netPrefix + "_b", false);
    Instance x1;
    x1.name = "x1";
    x1.master = inv;
    x1.connections = {a, b};
    def.addInstance(std::move(x1));
    Instance x2;
    x2.name = "x2";
    x2.master = inv;
    x2.connections = {b, a};
    def.addInstance(std::move(x2));
  }
  lib.setTop(top);
  return lib;
}

std::filesystem::path tempPath(const char* tag) {
  return std::filesystem::temp_directory_path() /
         (std::string("ancstr_manifest_test_") + tag + ".manifest");
}

TEST(Manifest, ContentHashIsNameFree) {
  const Library a = makeLib("n", "m");
  const Library b = makeLib("sig", "dev");
  for (SubcktId id = 0; id < a.subcktCount(); ++id) {
    EXPECT_TRUE(subcktContentHash(a, id) == subcktContentHash(b, id));
  }
}

TEST(Manifest, ContentHashSeesParameterEdits) {
  const Library a = makeLib("n", "m", 1e-6);
  const Library b = makeLib("n", "m", 2e-6);
  EXPECT_FALSE(subcktContentHash(a, 0) == subcktContentHash(b, 0));
  // The instantiator references its master by content hash, so the edit
  // propagates upward.
  EXPECT_FALSE(subcktContentHash(a, 1) == subcktContentHash(b, 1));
}

TEST(Manifest, RecursiveInstantiationThrows) {
  Library lib;
  const SubcktId a = lib.addSubckt("a");
  SubcktDef& def = lib.mutableSubckt(a);
  const NetId p = def.addNet("p", true);
  Instance self;
  self.name = "xself";
  self.master = a;
  self.connections = {p};
  def.addInstance(std::move(self));
  lib.setTop(a);
  EXPECT_THROW(subcktContentHash(lib, a), NetlistError);
}

TEST(Manifest, BuildNetlistManifestIsSortedAndNetlistOnly) {
  const Library lib = makeLib();
  const DesignManifest manifest = buildNetlistManifest(lib);
  ASSERT_EQ(manifest.masters.size(), 2u);
  EXPECT_EQ(manifest.masters[0].name, "inv");
  EXPECT_EQ(manifest.masters[1].name, "top");
  EXPECT_TRUE(manifest.configHash == util::StructuralHash{});
  EXPECT_TRUE(manifest.designHash == util::StructuralHash{});
  EXPECT_TRUE(manifest.subtreeHashes.empty());
  ASSERT_NE(manifest.findMaster("inv"), nullptr);
  EXPECT_TRUE(manifest.findMaster("inv")->hash ==
              subcktContentHash(lib, 0));
  EXPECT_EQ(manifest.findMaster("nope"), nullptr);
}

TEST(Manifest, SaveLoadRoundTripsEveryField) {
  DesignManifest manifest = buildNetlistManifest(makeLib());
  manifest.configHash = util::StructuralHash{0x1234, 0x5678};
  manifest.designHash = util::StructuralHash{0x9abc, 0xdef0};
  manifest.subtreeHashes = {util::StructuralHash{1, 2},
                            util::StructuralHash{3, 4}};
  const std::filesystem::path path = tempPath("roundtrip");
  saveManifest(manifest, path);
  const DesignManifest loaded = loadManifest(path);
  std::filesystem::remove(path);
  EXPECT_TRUE(manifest == loaded);
}

TEST(Manifest, LoadRejectsMalformedInput) {
  const std::filesystem::path path = tempPath("malformed");

  {
    std::ofstream out(path);
    out << "not a manifest\n";
  }
  EXPECT_THROW(loadManifest(path), Error);

  {
    std::ofstream out(path);
    out << "ancstr-manifest v999\n";
  }
  EXPECT_THROW(loadManifest(path), Error);

  {
    std::ofstream out(path);
    out << "ancstr-manifest v1\n";
    out << "master broken nothex\n";
  }
  EXPECT_THROW(loadManifest(path), Error);

  std::filesystem::remove(path);
  EXPECT_THROW(loadManifest(path), Error) << "missing file must throw";
}

TEST(Manifest, FaultInjectionCoversIoSites) {
  const DesignManifest manifest = buildNetlistManifest(makeLib());
  const std::filesystem::path path = tempPath("fault");
  {
    const fault::ScopedFault fault("manifest.open");
    EXPECT_THROW(saveManifest(manifest, path), Error);
  }
  saveManifest(manifest, path);
  {
    // Truncation corrupts the payload: the load must fail loudly or —
    // when the cut lands exactly on a line boundary — yield a manifest
    // that no longer equals the original, never a silent full read.
    const fault::ScopedFault fault("manifest.read");
    bool threw = false;
    DesignManifest loaded;
    try {
      loaded = loadManifest(path);
    } catch (const Error&) {
      threw = true;
    }
    EXPECT_TRUE(threw || !(loaded == manifest));
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ancstr
