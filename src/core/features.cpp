#include "core/features.h"

#include <cmath>

#include "util/error.h"

namespace ancstr {
namespace {

/// Log-compressed passive value: equal values map to equal features and a
/// 2x value difference is clearly separated, without femto/kilo blowups.
double valueFeature(const FlatDevice& device) {
  // Scale to a type-appropriate unit so typical magnitudes are O(1..10).
  double unit = 1.0;
  if (isResistor(device.type)) {
    unit = 1e3;  // kOhm
  } else if (isCapacitor(device.type)) {
    unit = 1e-15;  // fF
  } else if (device.type == DeviceType::kInd) {
    unit = 1e-12;  // pH
  }
  return std::log10(1.0 + device.params.value / unit);
}

}  // namespace

std::vector<double> deviceFeature(const FlatDevice& device,
                                  const FeatureConfig& config) {
  std::vector<double> feature(config.dims(), 0.0);
  if (const auto idx = oneHotIndex(device.type)) {
    feature[*idx] = 1.0;
  }
  std::size_t at = kNumDeviceTypes;
  if (config.useGeometry) {
    double wFeat = 0.0;
    double lFeat = 0.0;
    if (device.params.w > 0.0) {
      // Total drawn width in microns (folding fingers and multipliers),
      // log-compressed: raw micron counts reach ~25 and would saturate the
      // GRU's tanh, erasing exactly the sizing signal Fig. 2 needs.
      wFeat = std::log1p(device.params.w * 1e6 * device.params.nf *
                         device.params.m);
    } else if (isPassive(device.type)) {
      wFeat = valueFeature(device);
    }
    if (device.params.l > 0.0) {
      // Channel lengths cluster around 0.1-0.5 um; scale into the same
      // O(1) range before compressing.
      lFeat = std::log1p(device.params.l * 1e7);
    }
    feature[at++] = wFeat;
    feature[at++] = lFeat;
  }
  if (config.useLayers) {
    feature[at++] = static_cast<double>(
        device.params.effectiveLayers(device.type));
  }
  ANCSTR_ASSERT(at == config.dims());
  return feature;
}

nn::Matrix buildFeatureMatrix(const FlatDesign& design,
                              const std::vector<FlatDeviceId>& subset,
                              const FeatureConfig& config) {
  nn::Matrix out(subset.size(), config.dims());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    const std::vector<double> f =
        deviceFeature(design.device(subset[i]), config);
    for (std::size_t c = 0; c < f.size(); ++c) out(i, c) = f[c];
  }
  return out;
}

nn::Matrix buildFeatureMatrix(const FlatDesign& design,
                              const FeatureConfig& config) {
  std::vector<FlatDeviceId> all(design.devices().size());
  for (FlatDeviceId i = 0; i < all.size(); ++i) all[i] = i;
  return buildFeatureMatrix(design, all, config);
}

}  // namespace ancstr
