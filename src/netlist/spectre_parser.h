// Spectre netlist reader (the dialect ALIGN's open-source benchmarks
// ship). Supported subset:
//
//   // and * comments; '\' line continuations
//   simulator lang=spectre            (ignored)
//   subckt NAME (p1 p2 ...)           parentheses optional
//   parameters a=1u b=2k             (subckt-scoped)
//   M1 (d g s b) nch_lvt w=2u l=0.1u  primitive by master name
//   R1 (a b) resistor r=5k
//   C1 (a b) capacitor c=10f
//   L1 (a b) inductor l=1n
//   D1 (a k) diode
//   x1 (n1 n2 ...) some_subckt        instance of a defined subckt
//   ends [NAME]
//
// Any master that is not a defined subckt is treated as a primitive and
// mapped through deviceTypeFromModelName plus the Spectre builtin names
// (resistor/capacitor/inductor/diode).
#pragma once

#include <filesystem>
#include <string_view>

#include "netlist/netlist.h"

namespace ancstr {

/// Parses Spectre-format text. Throws ParseError / NetlistError.
Library parseSpectre(std::string_view text,
                     std::string_view fileName = "<mem>");

/// Reads and parses a Spectre file from disk.
Library parseSpectreFile(const std::filesystem::path& path);

/// Dispatches on file extension / content: ".scs"/"simulator lang=spectre"
/// goes to parseSpectre, everything else to parseSpice.
Library parseNetlistFile(const std::filesystem::path& path);

}  // namespace ancstr
