* malformed corpus: instance with the wrong port count
.subckt paircell a b vdd
m1 d a s vdd nch w=1u l=0.1u
m2 d b s vdd nch w=1u l=0.1u
.ends
x1 n1 n2 paircell
x2 n1 n2 vdd paircell
