#include "core/embedding.h"

#include <cmath>

#include "core/circuit_hash.h"
#include "core/features.h"
#include "graph/digraph.h"
#include "graph/pagerank.h"
#include "util/error.h"
#include "util/trace.h"

namespace ancstr {

std::vector<FlatDeviceId> representativeDevices(
    const CircuitGraph& inducedGraph, const EmbeddingConfig& config) {
  if (inducedGraph.numVertices() == 0) return {};
  const SimpleDigraph simplified = inducedGraph.graph.simplified();
  PageRankOptions prOptions;
  prOptions.damping = config.damping;
  const std::vector<double> scores = pageRank(simplified, prOptions);
  const std::vector<std::uint32_t> top = topKByScore(scores, config.topM);
  std::vector<FlatDeviceId> devices;
  devices.reserve(top.size());
  for (const std::uint32_t v : top) {
    devices.push_back(inducedGraph.vertexToDevice.at(v));
  }
  return devices;
}

std::vector<double> gatherEmbedding(const std::vector<FlatDeviceId>& devices,
                                    const nn::Matrix& rows) {
  const std::size_t d = rows.cols();
  std::vector<double> embedding;
  embedding.reserve(devices.size() * d);
  for (const FlatDeviceId dev : devices) {
    ANCSTR_ASSERT(dev < rows.rows());
    const double* row = rows.row(dev);
    embedding.insert(embedding.end(), row, row + d);
  }
  return embedding;
}

std::vector<double> embedCircuit(const CircuitGraph& inducedGraph,
                                 const nn::Matrix& designEmbeddings,
                                 const EmbeddingConfig& config) {
  return gatherEmbedding(representativeDevices(inducedGraph, config),
                         designEmbeddings);
}

std::vector<SubcircuitEmbedding> embedSubcircuits(
    const FlatDesign& design, const std::vector<HierNodeId>& nodes,
    const nn::Matrix& designEmbeddings, const EmbeddingConfig& config,
    const GraphBuildOptions& graphOptions,
    const BlockEmbeddingContext* localContext, util::ThreadPool& pool,
    bool computeHashes) {
  std::vector<SubcircuitEmbedding> out(nodes.size());
  pool.forEach(nodes.size(), [&](std::size_t i) {
    // Per-subcircuit span: runs on whichever worker owns the chunk, so
    // traces show the block-embedding fan-out per thread id.
    const trace::TraceSpan span("embed.subcircuit");
    const std::vector<FlatDeviceId> subtree = design.subtreeDevices(nodes[i]);
    SubcircuitEmbedding& embedding = out[i];

    // Cache consult before any graph work: local-mode embeddings depend
    // only on the subtree's structure, so a content-addressed hit skips
    // induced-graph construction, PageRank, and GNN inference entirely.
    // Cached entries are positional (vertex id == index into `subtree`,
    // because buildInducedHeteroGraph numbers vertices in subset order),
    // so one entry serves every instance of the same block.
    BlockEmbeddingCache* cache =
        localContext != nullptr ? localContext->cache : nullptr;
    const bool wantHash =
        localContext != nullptr && (cache != nullptr || computeHashes);
    util::StructuralHash key;
    if (wantHash) {
      // A caller-supplied hash vector (the engine's delta path) carries
      // the identical value structuralHash would compute, just already
      // paid for during diffing.
      const std::vector<util::StructuralHash>* nodeHashes =
          localContext->nodeHashes;
      if (nodeHashes != nullptr) {
        ANCSTR_ASSERT(nodes[i] < nodeHashes->size());
        key = (*nodeHashes)[nodes[i]];
      } else {
        key = structuralHash(design, subtree, graphOptions,
                             localContext->features);
      }
      embedding.hash = key;
      embedding.hashValid = true;
    }
    if (cache != nullptr) {
      if (const auto hit = cache->lookup(key);
          hit != nullptr && hit->subtreeSize == subtree.size()) {
        embedding.devices.reserve(hit->representativePositions.size());
        for (const std::uint32_t pos : hit->representativePositions) {
          embedding.devices.push_back(subtree[pos]);
        }
        embedding.structural = hit->structural;
        return;
      }
    }

    const CircuitGraph induced =
        buildInducedHeteroGraph(design, subtree, graphOptions);
    embedding.devices = representativeDevices(induced, config);
    if (localContext != nullptr) {
      // Algorithm 2 on G_t: propagate the trained model over the
      // subcircuit's own multigraph, so the embedding depends only on the
      // subcircuit's content.
      const PreparedGraph prepared = prepareGraph(
          induced, buildFeatureMatrix(design, subtree, localContext->features));
      const nn::Matrix localZ = localContext->model.embed(prepared);
      // Map top-M flat ids back to induced-graph rows.
      embedding.structural.reserve(embedding.devices.size() * localZ.cols());
      for (const FlatDeviceId dev : embedding.devices) {
        const std::uint32_t row = induced.deviceToVertex.at(dev);
        const double* data = localZ.row(row);
        embedding.structural.insert(embedding.structural.end(), data,
                                    data + localZ.cols());
      }
      if (cache != nullptr) {
        auto entry = std::make_shared<CachedBlockEmbedding>();
        entry->subtreeSize = subtree.size();
        entry->representativePositions.reserve(embedding.devices.size());
        for (const FlatDeviceId dev : embedding.devices) {
          entry->representativePositions.push_back(
              induced.deviceToVertex.at(dev));
        }
        entry->structural = embedding.structural;
        cache->store(key, std::move(entry));
      }
    } else {
      embedding.structural = gatherEmbedding(embedding.devices,
                                             designEmbeddings);
    }
  });
  return out;
}

double embeddingCosine(const std::vector<double>& a,
                       const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < n; ++i) dot += a[i] * b[i];
  for (const double x : a) na += x * x;
  for (const double x : b) nb += x * x;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace ancstr
