#include "eval/ground_truth.h"

#include <gtest/gtest.h>

#include "util/error.h"

#include "netlist/builder.h"

namespace ancstr {
namespace {

TEST(GroundTruth, PairOrderInsensitive) {
  GroundTruth truth({{"", "m1", "m2", ConstraintLevel::kDevice}});
  EXPECT_TRUE(truth.contains("", "m1", "m2"));
  EXPECT_TRUE(truth.contains("", "m2", "m1"));
  EXPECT_FALSE(truth.contains("", "m1", "m3"));
}

TEST(GroundTruth, CaseInsensitive) {
  GroundTruth truth({{"XTop/Xsub", "M1", "M2", ConstraintLevel::kDevice}});
  EXPECT_TRUE(truth.contains("xtop/xsub", "m1", "m2"));
}

TEST(GroundTruth, HierarchyPathDiscriminates) {
  GroundTruth truth({{"x1", "m1", "m2", ConstraintLevel::kDevice}});
  EXPECT_TRUE(truth.contains("x1", "m1", "m2"));
  EXPECT_FALSE(truth.contains("x2", "m1", "m2"));
  EXPECT_FALSE(truth.contains("", "m1", "m2"));
}

TEST(GroundTruth, SizeAndEntries) {
  GroundTruth truth({{"", "a", "b", ConstraintLevel::kDevice},
                     {"x", "c", "d", ConstraintLevel::kSystem}});
  EXPECT_EQ(truth.size(), 2u);
  EXPECT_EQ(truth.entries()[1].level, ConstraintLevel::kSystem);
}

struct LabeledSetup {
  Library lib;
  FlatDesign design;
  std::vector<ScoredCandidate> scored;
  std::vector<bool> labels;
};

LabeledSetup makeLabeled() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"a", "b", "t", "vss"});
  b.nmos("m1", "a", "b", "t", "vss", 1e-6, 0.1e-6);
  b.nmos("m2", "b", "a", "t", "vss", 1e-6, 0.1e-6);
  b.nmos("m3", "t", "a", "vss", "vss", 2e-6, 0.1e-6);
  b.endSubckt();
  Library lib = b.build("cell");
  FlatDesign design = FlatDesign::elaborate(lib);
  const CandidateSet candidates = enumerateCandidates(design, lib);
  std::vector<ScoredCandidate> scored;
  for (const CandidatePair& p : candidates.pairs) {
    ScoredCandidate c;
    c.pair = p;
    c.similarity = (p.nameA == "m1" && p.nameB == "m2") ? 1.0 : 0.2;
    c.accepted = c.similarity > 0.5;
    scored.push_back(c);
  }
  GroundTruth truth({{"", "m1", "m2", ConstraintLevel::kDevice}});
  std::vector<bool> labels = labelCandidates(design, scored, truth);
  return {std::move(lib), std::move(design), std::move(scored),
          std::move(labels)};
}

TEST(LabelCandidates, MarksOnlyTruthPairs) {
  const LabeledSetup s = makeLabeled();
  ASSERT_EQ(s.scored.size(), 3u);  // (m1,m2), (m1,m3), (m2,m3)
  std::size_t positives = 0;
  for (std::size_t i = 0; i < s.scored.size(); ++i) {
    if (s.labels[i]) {
      ++positives;
      EXPECT_EQ(s.scored[i].pair.nameA, "m1");
      EXPECT_EQ(s.scored[i].pair.nameB, "m2");
    }
  }
  EXPECT_EQ(positives, 1u);
}

TEST(ConfusionFromScored, CountsAllQuadrants) {
  const LabeledSetup s = makeLabeled();
  const ConfusionCounts counts = confusionFromScored(s.scored, s.labels);
  EXPECT_EQ(counts.tp, 1u);
  EXPECT_EQ(counts.fp, 0u);
  EXPECT_EQ(counts.tn, 2u);
  EXPECT_EQ(counts.fn, 0u);
}

TEST(ConfusionFromScored, LevelFilter) {
  const LabeledSetup s = makeLabeled();
  const ConfusionCounts device =
      confusionFromScored(s.scored, s.labels, ConstraintLevel::kDevice);
  EXPECT_EQ(device.total(), 3u);
  const ConfusionCounts system =
      confusionFromScored(s.scored, s.labels, ConstraintLevel::kSystem);
  EXPECT_EQ(system.total(), 0u);
}

TEST(ConfusionFromScored, MismatchedSizesAssert) {
  const LabeledSetup s = makeLabeled();
  std::vector<bool> badLabels(1, true);
  EXPECT_THROW(confusionFromScored(s.scored, badLabels), InternalError);
}

}  // namespace
}  // namespace ancstr
