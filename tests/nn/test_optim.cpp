#include "nn/optim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/tensor.h"

namespace ancstr::nn {
namespace {

/// Quadratic bowl: f(p) = sum((p - target)^2). Minimum at target.
Tensor bowlLoss(const Tensor& p, const Matrix& target) {
  Tensor diff = sub(p, Tensor::constant(target));
  return sumAll(hadamard(diff, diff));
}

TEST(Sgd, ConvergesOnQuadratic) {
  Tensor p = Tensor::param(Matrix(2, 2, 5.0));
  const Matrix target(2, 2, 1.0);
  Sgd optimizer({p}, 0.1);
  for (int i = 0; i < 200; ++i) {
    optimizer.zeroGrad();
    bowlLoss(p, target).backward();
    optimizer.step();
  }
  EXPECT_NEAR((p.value() - target).maxAbs(), 0.0, 1e-6);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Tensor slow = Tensor::param(Matrix(1, 1, 10.0));
  Tensor fast = Tensor::param(Matrix(1, 1, 10.0));
  const Matrix target(1, 1, 0.0);
  Sgd plain({slow}, 0.01);
  Sgd momentum({fast}, 0.01, 0.9);
  for (int i = 0; i < 50; ++i) {
    plain.zeroGrad();
    bowlLoss(slow, target).backward();
    plain.step();
    momentum.zeroGrad();
    bowlLoss(fast, target).backward();
    momentum.step();
  }
  EXPECT_LT(std::abs(fast.value()(0, 0)), std::abs(slow.value()(0, 0)));
}

TEST(Adam, ConvergesOnQuadratic) {
  Tensor p = Tensor::param(Matrix(3, 1, -4.0));
  const Matrix target(3, 1, 2.0);
  Adam::Config config;
  config.lr = 0.1;
  Adam optimizer({p}, config);
  for (int i = 0; i < 500; ++i) {
    optimizer.zeroGrad();
    bowlLoss(p, target).backward();
    optimizer.step();
  }
  EXPECT_NEAR((p.value() - target).maxAbs(), 0.0, 1e-4);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction, |first update| ~= lr regardless of grad scale.
  Tensor p = Tensor::param(Matrix(1, 1, 0.0));
  Adam::Config config;
  config.lr = 0.05;
  Adam optimizer({p}, config);
  Tensor loss = sumAll(scale(p, 1000.0));  // huge constant gradient
  loss.backward();
  optimizer.step();
  EXPECT_NEAR(std::abs(p.value()(0, 0)), 0.05, 1e-6);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  Tensor p = Tensor::param(Matrix(1, 1, 1.0));
  Adam::Config config;
  config.lr = 0.01;
  config.weightDecay = 1.0;
  Adam optimizer({p}, config);
  for (int i = 0; i < 300; ++i) {
    optimizer.zeroGrad();
    // Loss gradient zero: only decay acts.
    sumAll(scale(p, 0.0)).backward();
    optimizer.step();
  }
  EXPECT_LT(std::abs(p.value()(0, 0)), 0.1);
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Tensor p = Tensor::param(Matrix(1, 2, std::vector<double>{3.0, 4.0}));
  sumAll(hadamard(p, p)).backward();  // grad = 2p = (6, 8), norm 10
  const double norm = clipGradNorm({p}, 5.0);
  EXPECT_NEAR(norm, 10.0, 1e-9);
  EXPECT_NEAR(p.grad()(0, 0), 3.0, 1e-9);
  EXPECT_NEAR(p.grad()(0, 1), 4.0, 1e-9);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Tensor p = Tensor::param(Matrix(1, 1, 1.0));
  sumAll(p).backward();  // grad = 1
  clipGradNorm({p}, 5.0);
  EXPECT_NEAR(p.grad()(0, 0), 1.0, 1e-12);
}

TEST(Optimizer, SkipsParamsWithoutGradients) {
  Tensor used = Tensor::param(Matrix(1, 1, 1.0));
  Tensor unused = Tensor::param(Matrix(1, 1, 7.0));
  Adam optimizer({used, unused});
  sumAll(used).backward();
  optimizer.step();
  EXPECT_DOUBLE_EQ(unused.value()(0, 0), 7.0);
  EXPECT_NE(used.value()(0, 0), 1.0);
}

}  // namespace
}  // namespace ancstr::nn
