#include "core/pipeline.h"

#include "core/model_io.h"
#include "util/error.h"
#include "util/timer.h"

namespace ancstr {

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {
  if (config_.model.featureDim != config_.features.dims()) {
    throw Error("PipelineConfig: model.featureDim must equal features.dims()");
  }
}

PreparedGraph Pipeline::prepare(const Library& lib,
                                const FlatDesign& design) const {
  (void)lib;
  const CircuitGraph graph = buildHeteroGraph(design, config_.graph);
  nn::Matrix features = buildFeatureMatrix(design, config_.features);
  return prepareGraph(graph, std::move(features));
}

TrainStats Pipeline::train(const std::vector<const Library*>& corpus) {
  Rng rng(config_.seed);
  model_ = std::make_unique<GnnModel>(config_.model, rng);

  std::vector<PreparedGraph> prepared;
  prepared.reserve(corpus.size());
  for (const Library* lib : corpus) {
    ANCSTR_ASSERT(lib != nullptr);
    const FlatDesign design = FlatDesign::elaborate(*lib);
    prepared.push_back(prepare(*lib, design));
  }
  TrainConfig train = config_.train;
  train.threads = config_.threads;
  return trainUnsupervised(*model_, prepared, train, rng);
}

ExtractionResult Pipeline::extract(const Library& lib) const {
  if (!model_) throw Error("Pipeline::extract before train()/loadModel()");
  ExtractionResult result;

  Stopwatch watch;
  const FlatDesign design = FlatDesign::elaborate(lib);
  const PreparedGraph g = prepare(lib, design);
  result.timing.graphBuildSeconds = watch.seconds();

  watch.reset();
  const nn::Matrix z = model_->embed(g);
  result.timing.inferenceSeconds = watch.seconds();

  watch.reset();
  // Embeddings are indexed by graph vertex; the full-design graph covers
  // devices in id order so row i == device i.
  DetectorConfig detector = config_.detector;
  detector.graphOptions = config_.graph;
  detector.threads = config_.threads;
  const BlockEmbeddingContext blockContext{*model_, config_.features};
  result.detection = detectConstraints(design, lib, z, detector, blockContext);
  result.timing.detectionSeconds = watch.seconds();
  result.embeddings = z;
  return result;
}

const GnnModel& Pipeline::model() const {
  if (!model_) throw Error("Pipeline::model before train()/loadModel()");
  return *model_;
}

void Pipeline::saveModel(const std::string& path) const {
  saveModelFile(model(), path);
}

void Pipeline::loadModel(const std::string& path) {
  model_ = std::make_unique<GnnModel>(loadModelFile(path));
}

}  // namespace ancstr
