#include "core/model_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace ancstr {
namespace {

constexpr const char* kMagic = "ancstr-gnn-model";
// v1: featureDim hiddenDim numLayers sharedWeights
// v2: + meanAggregation
constexpr int kVersion = 2;

}  // namespace

void saveModel(const GnnModel& model, std::ostream& os) {
  const GnnConfig& c = model.config();
  os << kMagic << ' ' << kVersion << '\n';
  os << c.featureDim << ' ' << c.hiddenDim << ' ' << c.numLayers << ' '
     << (c.sharedWeights ? 1 : 0) << ' ' << (c.meanAggregation ? 1 : 0)
     << '\n';
  os << std::setprecision(17);
  const auto params = model.parameters();
  os << params.size() << '\n';
  for (const nn::Tensor& p : params) {
    const nn::Matrix& m = p.value();
    os << m.rows() << ' ' << m.cols();
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t col = 0; col < m.cols(); ++col) os << ' ' << m(r, col);
    }
    os << '\n';
  }
}

void saveModelFile(const GnnModel& model,
                   const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw Error("saveModel: cannot open '" + path.string() + "'");
  saveModel(model, out);
  if (!out) {
    throw Error("saveModel: write failure on '" + path.string() + "'");
  }
}

GnnModel loadModel(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic) {
    throw Error("loadModel: not an ancstr model file");
  }
  if (version != 1 && version != kVersion) {
    throw Error("loadModel: unsupported version " + std::to_string(version));
  }
  GnnConfig config;
  int shared = 0;
  if (!(is >> config.featureDim >> config.hiddenDim >> config.numLayers >>
        shared)) {
    throw Error("loadModel: truncated config");
  }
  config.sharedWeights = shared != 0;
  if (version >= 2) {
    int mean = 0;
    if (!(is >> mean)) throw Error("loadModel: truncated config (v2)");
    config.meanAggregation = mean != 0;
  }

  // The RNG only seeds initial weights, which we immediately overwrite.
  Rng rng(0);
  GnnModel model(config, rng);
  auto params = model.parameters();

  std::size_t count = 0;
  if (!(is >> count) || count != params.size()) {
    throw Error("loadModel: parameter count mismatch");
  }
  for (nn::Tensor& p : params) {
    std::size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols) || rows != p.rows() || cols != p.cols()) {
      throw Error("loadModel: parameter shape mismatch");
    }
    nn::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (!(is >> m(r, c))) throw Error("loadModel: truncated matrix data");
      }
    }
    p.setValue(std::move(m));
  }
  return model;
}

GnnModel loadModelFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw Error("loadModel: cannot open '" + path.string() + "'");
  return loadModel(in);
}

}  // namespace ancstr
