#include "core/embedding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/features.h"
#include "netlist/builder.h"

namespace ancstr {
namespace {

struct EmbSetup {
  FlatDesign design;
  nn::Matrix z;  // fake per-device embeddings, row = device id
};

EmbSetup makeSetup() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"a", "b", "vss"});
  b.res("r1", "a", "m1", 1e3);
  b.res("r2", "m1", "m2", 1e3);
  b.res("r3", "m2", "b", 1e3);
  b.cap("c1", "m1", "vss", 1e-15);
  b.cap("c2", "m2", "vss", 1e-15);
  b.endSubckt();
  EmbSetup s{FlatDesign::elaborate(b.build("cell")), nn::Matrix()};
  s.z = nn::Matrix(s.design.devices().size(), 4);
  for (std::size_t r = 0; r < s.z.rows(); ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      s.z(r, c) = static_cast<double>(r + 1) * (c == 0 ? 1.0 : 0.1);
    }
  }
  return s;
}

TEST(Embedding, LengthIsMinOfTopMTimesDim) {
  const EmbSetup s = makeSetup();
  const CircuitGraph g =
      buildInducedHeteroGraph(s.design, {0, 1, 2, 3, 4});
  EmbeddingConfig config;
  config.topM = 3;
  EXPECT_EQ(embedCircuit(g, s.z, config).size(), 12u);  // 3 * 4
  config.topM = 100;
  EXPECT_EQ(embedCircuit(g, s.z, config).size(), 20u);  // clamped to 5
}

TEST(Embedding, EmptySubcircuitGivesEmptyEmbedding) {
  const EmbSetup s = makeSetup();
  const CircuitGraph g = buildInducedHeteroGraph(s.design, {});
  EXPECT_TRUE(embedCircuit(g, s.z).empty());
}

TEST(Embedding, IdenticalSubcircuitsIdenticalEmbeddings) {
  NetlistBuilder b;
  b.beginSubckt("leaf", {"a", "b"});
  b.res("r1", "a", "mid", 1e3);
  b.cap("c1", "mid", "b", 1e-15);
  b.endSubckt();
  b.beginSubckt("top", {"x", "y", "z"});
  b.inst("u1", "leaf", {"x", "y"});
  b.inst("u2", "leaf", {"y", "z"});
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("top"));
  // Equal fake embeddings for corresponding devices.
  nn::Matrix z(design.devices().size(), 3);
  for (std::size_t r = 0; r < z.rows(); ++r) {
    z(r, 0) = design.device(r).type == DeviceType::kResPoly ? 1.0 : 2.0;
    z(r, 1) = 0.5;
  }
  const auto& hier = design.hierarchy();
  const CircuitGraph g1 =
      buildInducedHeteroGraph(design, design.subtreeDevices(hier[0].children[0]));
  const CircuitGraph g2 =
      buildInducedHeteroGraph(design, design.subtreeDevices(hier[0].children[1]));
  const auto e1 = embedCircuit(g1, z);
  const auto e2 = embedCircuit(g2, z);
  EXPECT_EQ(e1, e2);
  EXPECT_DOUBLE_EQ(embeddingCosine(e1, e2), 1.0);
}

TEST(Embedding, OrderFollowsPageRankDescending) {
  // Star: hub receives from all leaves -> hub ranked first.
  NetlistBuilder b;
  b.beginSubckt("star", {"h", "vss"});
  b.cap("chub", "h", "vss", 1e-15);
  b.res("r1", "h", "l1", 1e3);
  b.res("r2", "h", "l2", 1e3);
  b.res("r3", "h", "l3", 1e3);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("star"));
  const CircuitGraph g = buildHeteroGraph(design);
  nn::Matrix z(design.devices().size(), 1);
  for (std::size_t r = 0; r < z.rows(); ++r) z(r, 0) = static_cast<double>(r);
  EmbeddingConfig config;
  config.topM = 1;
  const auto e = embedCircuit(g, z, config);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_DOUBLE_EQ(e[0], 0.0);  // chub is device 0 and the hub
}

TEST(Embedding, RepresentativeDevicesMatchEmbedOrder) {
  const EmbSetup s = makeSetup();
  const CircuitGraph g = buildInducedHeteroGraph(s.design, {0, 1, 2, 3, 4});
  EmbeddingConfig config;
  config.topM = 3;
  const std::vector<FlatDeviceId> top = representativeDevices(g, config);
  ASSERT_EQ(top.size(), 3u);
  // gatherEmbedding over the same list reproduces embedCircuit exactly.
  EXPECT_EQ(gatherEmbedding(top, s.z), embedCircuit(g, s.z, config));
}

TEST(Embedding, GatherEmbeddingConcatenatesRows) {
  nn::Matrix rows(3, 2, std::vector<double>{1, 2, 3, 4, 5, 6});
  const std::vector<double> e = gatherEmbedding({2, 0}, rows);
  const std::vector<double> expected{5, 6, 1, 2};
  EXPECT_EQ(e, expected);
}

TEST(Embedding, RepresentativeDevicesEmptyGraph) {
  const EmbSetup s = makeSetup();
  const CircuitGraph g = buildInducedHeteroGraph(s.design, {});
  EXPECT_TRUE(representativeDevices(g).empty());
}

TEST(EmbeddingCosine, PaddingPenalizesLengthMismatch) {
  const std::vector<double> a{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 1.0};
  const double sim = embeddingCosine(a, b);
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
  EXPECT_NEAR(sim, 2.0 / (2.0 * std::sqrt(2.0)), 1e-12);
}

TEST(EmbeddingCosine, ZeroVectorGivesZero) {
  EXPECT_DOUBLE_EQ(embeddingCosine({0, 0}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(embeddingCosine({}, {1, 2}), 0.0);
}

TEST(EmbeddingCosine, BoundedByOne) {
  const std::vector<double> a{0.3, -0.7, 2.0};
  const std::vector<double> b{1.3, 0.7, -0.2};
  const double sim = embeddingCosine(a, b);
  EXPECT_GE(sim, -1.0 - 1e-12);
  EXPECT_LE(sim, 1.0 + 1e-12);
}

}  // namespace
}  // namespace ancstr
