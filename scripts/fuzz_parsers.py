#!/usr/bin/env python3
"""Deterministic fuzz smoke test for the fail-soft netlist parsers.

Takes the seed decks under tests/netlist/corpus_malformed/ (plus two
clean built-in decks), applies seeded random mutations (truncation, line
shuffling, byte flips, garbage splices), and pushes every mutant through
`ancstr_cli stats --fail-soft`. The CLI must either succeed (exit 0) or
fail cleanly with a one-line error (exit 2) — any other exit status, and
in particular death by signal, fails the run. The mutation stream is
fully determined by --seed, so a failure reproduces exactly.

Usage:
  scripts/fuzz_parsers.py [--cli build/tools/ancstr_cli]
                          [--iterations 200] [--seed 1]
"""

import argparse
import pathlib
import random
import string
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
CORPUS = REPO / "tests" / "netlist" / "corpus_malformed"

CLEAN_SPICE = """* clean seed deck
.subckt ota inp inn out vdd vss
m1 d1 inp tail vss nch w=2u l=0.1u
m2 d2 inn tail vss nch w=2u l=0.1u
mt tail vb vss vss nch w=4u l=0.4u
r1 d1 out 1k
r2 d2 out 1k
.ends
x1 a b c vdd vss ota
"""

CLEAN_SPECTRE = """// clean seed deck
simulator lang=spectre
subckt pair (a b vdd)
M1 (d a s vdd) nch_lvt w=1u l=0.1u
M2 (d b s vdd) nch_lvt w=1u l=0.1u
ends
x1 (n1 n2 vdd) pair
R1 (n1 n2) resistor r=1k
"""

GARBAGE = ["@@@@ ####", ")(&^ junk", ".include", "((((", "m1", "x y z w"]


def load_seeds():
    seeds = [("clean.sp", CLEAN_SPICE), ("clean.scs", CLEAN_SPECTRE)]
    for path in sorted(CORPUS.glob("*")):
        if path.suffix in (".sp", ".scs"):
            seeds.append((path.name, path.read_text()))
    return seeds


def mutate(rng, seeds):
    """Returns (file name, mutated text) drawn deterministically from rng."""
    name, text = seeds[rng.randrange(len(seeds))]
    op = rng.randrange(6)
    if op == 0 and len(text) > 1:  # truncate at a random offset
        text = text[: rng.randrange(1, len(text))]
    elif op == 1:  # drop a random line
        lines = text.splitlines()
        if lines:
            del lines[rng.randrange(len(lines))]
        text = "\n".join(lines) + "\n"
    elif op == 2:  # duplicate a random line
        lines = text.splitlines()
        if lines:
            i = rng.randrange(len(lines))
            lines.insert(i, lines[i])
        text = "\n".join(lines) + "\n"
    elif op == 3 and text:  # flip a random byte to a printable char
        i = rng.randrange(len(text))
        text = text[:i] + rng.choice(string.printable) + text[i + 1:]
    elif op == 4:  # insert a garbage line
        lines = text.splitlines()
        lines.insert(rng.randrange(len(lines) + 1), rng.choice(GARBAGE))
        text = "\n".join(lines) + "\n"
    else:  # splice the halves of two seeds
        _, other = seeds[rng.randrange(len(seeds))]
        text = text[: len(text) // 2] + other[len(other) // 2:]
    return name, text


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default=str(REPO / "build/tools/ancstr_cli"))
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    if not pathlib.Path(args.cli).exists():
        sys.exit(f"fuzz_parsers: CLI not found at {args.cli}")

    rng = random.Random(args.seed)
    seeds = load_seeds()
    exits = {0: 0, 2: 0}
    with tempfile.TemporaryDirectory(prefix="ancstr_fuzz_") as tmp:
        for i in range(args.iterations):
            name, text = mutate(rng, seeds)
            target = pathlib.Path(tmp) / f"mutant_{i}_{name}"
            target.write_text(text)
            proc = subprocess.run(
                [args.cli, "stats", "--fail-soft", str(target)],
                capture_output=True, text=True, timeout=60)
            if proc.returncode not in (0, 2):
                print(f"FAIL: iteration {i} (seed {args.seed}) exited "
                      f"{proc.returncode} on {name}", file=sys.stderr)
                print("--- mutant ---", file=sys.stderr)
                print(text, file=sys.stderr)
                print("--- stderr ---", file=sys.stderr)
                print(proc.stderr, file=sys.stderr)
                sys.exit(1)
            exits[proc.returncode] += 1
    print(f"fuzz_parsers: {args.iterations} mutants, "
          f"{exits[0]} parsed fail-soft, {exits[2]} rejected cleanly")


if __name__ == "__main__":
    main()
