// Heterogeneous multigraph construction (paper Algorithm 1).
//
// Devices become vertices; every net is expanded into a clique of directed
// typed edges: for each unordered pin pair (p_i, p_j) on a net, edges
// (u, v, tau_v) and (v, u, tau_u) are added, where tau is the port type of
// the edge's *target* pin projected onto {gate, drain, source, passive}.
// Self-loops (two pins of the same device on one net) are skipped.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/multigraph.h"
#include "netlist/flatten.h"

namespace ancstr {

struct GraphBuildOptions {
  /// Bulk pins are excluded by default: bulks tie to the rails in nearly
  /// every analog circuit and would add |net|^2 uninformative clique edges
  /// on the supplies. Enable to follow Algorithm 1 with all pins.
  bool includeBulkPins = false;
  /// When > 0, nets with more terminals are skipped entirely (supply-net
  /// clique cap). 0 disables the cap (paper-faithful).
  std::size_t maxNetDegree = 0;
  /// Ablation: erase edge-type information by mapping every pin onto the
  /// passive edge type (|W| collapses from 4 to 1 in Eq. 1).
  bool collapseEdgeTypes = false;
};

/// A multigraph over a chosen device subset, with the vertex<->device maps.
struct CircuitGraph {
  HeteroMultigraph graph{0};
  /// vertex index -> flat device id (row order of feature matrices).
  std::vector<FlatDeviceId> vertexToDevice;
  /// flat device id -> vertex index (absent when not in the subset).
  std::unordered_map<FlatDeviceId, std::uint32_t> deviceToVertex;

  std::size_t numVertices() const { return vertexToDevice.size(); }
};

/// Projects a pin function onto the 4-member edge-type set P.
EdgeType edgeTypeForPin(PinFunction f) noexcept;

/// Builds the multigraph over all devices of the design.
CircuitGraph buildHeteroGraph(const FlatDesign& design,
                              const GraphBuildOptions& options = {});

/// Builds the induced multigraph over `subset` only: edges whose two
/// endpoints both lie in the subset (used for per-subcircuit embeddings).
CircuitGraph buildInducedHeteroGraph(const FlatDesign& design,
                                     const std::vector<FlatDeviceId>& subset,
                                     const GraphBuildOptions& options = {});

}  // namespace ancstr
