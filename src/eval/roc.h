// Receiver-operating-characteristic sweeps and AUC (Figs. 6 and 7).
#pragma once

#include <string>
#include <vector>

namespace ancstr {

/// One ROC operating point.
struct RocPoint {
  double threshold = 0.0;
  double fpr = 0.0;
  double tpr = 0.0;
};

/// ROC curve with its area under the curve.
struct RocCurve {
  std::vector<RocPoint> points;  ///< ascending fpr, from (0,0) to (1,1)
  double auc = 0.0;
};

/// Computes the ROC curve from per-candidate (score, label) pairs by
/// sweeping the acceptance threshold over every distinct score. Scores tied
/// at a threshold flip together (standard staircase). Returns a degenerate
/// diagonal curve when labels are single-class.
RocCurve computeRoc(const std::vector<double>& scores,
                    const std::vector<bool>& labels);

/// Renders the curve as "fpr,tpr" CSV rows (with header) for plotting.
std::string rocToCsv(const RocCurve& curve);

}  // namespace ancstr
