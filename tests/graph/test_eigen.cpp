#include "graph/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace ancstr {
namespace {

TEST(JacobiEigen, DiagonalMatrix) {
  nn::Matrix m(3, 3);
  m(0, 0) = 3.0;
  m(1, 1) = 1.0;
  m(2, 2) = 2.0;
  const auto values = symmetricEigenvalues(m);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 2.0, 1e-12);
  EXPECT_NEAR(values[2], 3.0, 1e-12);
}

TEST(JacobiEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] -> eigenvalues 1 and 3.
  nn::Matrix m(2, 2, std::vector<double>{2, 1, 1, 2});
  const auto values = symmetricEigenvalues(m);
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 3.0, 1e-12);
}

TEST(JacobiEigen, NonSquareThrows) {
  EXPECT_THROW(symmetricEigenvalues(nn::Matrix(2, 3)), ShapeError);
}

TEST(JacobiEigen, TraceAndFrobeniusPreserved) {
  Rng rng(3);
  const std::size_t n = 8;
  nn::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = m(j, i) = rng.uniform(-1.0, 1.0);
    }
  }
  const auto values = symmetricEigenvalues(m);
  double trace = 0.0, sumSq = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += m(i, i);
  for (const double v : values) sumSq += v * v;
  double evSum = 0.0;
  for (const double v : values) evSum += v;
  EXPECT_NEAR(evSum, trace, 1e-9);
  const double frob = m.frobeniusNorm();
  EXPECT_NEAR(std::sqrt(sumSq), frob, 1e-9);
}

TEST(JacobiEigen, EigenvectorsSatisfyDefinition) {
  Rng rng(4);
  const std::size_t n = 5;
  nn::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = m(j, i) = rng.uniform(-1.0, 1.0);
    }
  }
  JacobiOptions options;
  options.computeVectors = true;
  const EigenResult result = jacobiEigen(m, options);
  ASSERT_EQ(result.vectors.rows(), n);
  for (std::size_t k = 0; k < n; ++k) {
    // || A v - lambda v || small
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (std::size_t j = 0; j < n; ++j) av += m(i, j) * result.vectors(j, k);
      EXPECT_NEAR(av, result.values[k] * result.vectors(i, k), 1e-8);
    }
  }
}

TEST(JacobiEigen, AscendingOrder) {
  Rng rng(5);
  nn::Matrix m(6, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i; j < 6; ++j) {
      m(i, j) = m(j, i) = rng.uniform(-2.0, 2.0);
    }
  }
  const auto values = symmetricEigenvalues(m);
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(values[i - 1], values[i]);
  }
}

TEST(JacobiEigen, EmptyMatrix) {
  EXPECT_TRUE(symmetricEigenvalues(nn::Matrix(0, 0)).empty());
}

}  // namespace
}  // namespace ancstr
