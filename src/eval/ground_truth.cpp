#include "eval/ground_truth.h"

#include <algorithm>

#include "util/error.h"
#include "util/metrics.h"
#include "util/string_utils.h"
#include "util/trace.h"

namespace ancstr {
namespace {

/// Legacy symmetry-pair keys stay unprefixed so golden files and saved
/// indices keep matching; other constraint types get a type-tag prefix.
std::string pairKey(ConstraintType type, std::string_view hierPath,
                    std::string_view a, std::string_view b) {
  std::string la = str::toLower(a);
  std::string lb = str::toLower(b);
  if (lb < la) std::swap(la, lb);
  std::string key;
  if (type != ConstraintType::kSymmetryPair) {
    key += constraintTypeName(type);
    key += "|";
  }
  key += str::toLower(hierPath) + "|" + la + "|" + lb;
  return key;
}

}  // namespace

GroundTruth::GroundTruth(std::vector<GroundTruthEntry> entries)
    : entries_(std::move(entries)) {
  for (const GroundTruthEntry& e : entries_) {
    keys_.insert(pairKey(e.type, e.hierPath, e.nameA, e.nameB));
  }
}

std::size_t GroundTruth::count(ConstraintType type) const {
  std::size_t n = 0;
  for (const GroundTruthEntry& e : entries_) {
    if (e.type == type) ++n;
  }
  return n;
}

bool GroundTruth::contains(std::string_view hierPath, std::string_view a,
                           std::string_view b) const {
  return contains(ConstraintType::kSymmetryPair, hierPath, a, b);
}

bool GroundTruth::contains(ConstraintType type, std::string_view hierPath,
                           std::string_view a, std::string_view b) const {
  return keys_.count(pairKey(type, hierPath, a, b)) != 0;
}

bool GroundTruth::matches(const FlatDesign& design,
                          const CandidatePair& pair) const {
  const std::string& hierPath = design.node(pair.hierarchy).path;
  return contains(hierPath, pair.nameA, pair.nameB);
}

bool GroundTruth::matchesMirror(const FlatDesign& design,
                                const CandidatePair& pair) const {
  const std::string& hierPath = design.node(pair.hierarchy).path;
  return contains(ConstraintType::kCurrentMirror, hierPath, pair.nameA,
                  pair.nameB);
}

std::vector<bool> labelCandidates(const FlatDesign& design,
                                  const std::vector<ScoredCandidate>& scored,
                                  const GroundTruth& truth) {
  static metrics::Counter& labeledCounter =
      metrics::Registry::instance().counter("eval.candidates_labeled");
  const trace::TraceSpan span("eval.label_candidates");
  labeledCounter.add(scored.size());
  std::vector<bool> labels(scored.size(), false);
  for (std::size_t i = 0; i < scored.size(); ++i) {
    labels[i] = truth.matches(design, scored[i].pair);
  }
  return labels;
}

std::vector<bool> labelMirrorCandidates(
    const FlatDesign& design, const std::vector<ScoredCandidate>& scored,
    const GroundTruth& truth) {
  static metrics::Counter& labeledCounter =
      metrics::Registry::instance().counter("eval.mirrors_labeled");
  const trace::TraceSpan span("eval.label_mirrors");
  labeledCounter.add(scored.size());
  std::vector<bool> labels(scored.size(), false);
  for (std::size_t i = 0; i < scored.size(); ++i) {
    labels[i] = truth.matchesMirror(design, scored[i].pair);
  }
  return labels;
}

namespace {

ConfusionCounts confusionImpl(const std::vector<ScoredCandidate>& scored,
                              const std::vector<bool>& labels,
                              const ConstraintLevel* levelFilter) {
  ANCSTR_ASSERT(scored.size() == labels.size());
  ConfusionCounts counts;
  for (std::size_t i = 0; i < scored.size(); ++i) {
    if (levelFilter != nullptr && scored[i].pair.level != *levelFilter) {
      continue;
    }
    const bool predicted = scored[i].accepted;
    const bool actual = labels[i];
    if (predicted && actual) {
      ++counts.tp;
    } else if (predicted && !actual) {
      ++counts.fp;
    } else if (!predicted && actual) {
      ++counts.fn;
    } else {
      ++counts.tn;
    }
  }
  return counts;
}

}  // namespace

ConfusionCounts confusionFromScored(const std::vector<ScoredCandidate>& scored,
                                    const std::vector<bool>& labels) {
  return confusionImpl(scored, labels, nullptr);
}

ConfusionCounts confusionFromScored(const std::vector<ScoredCandidate>& scored,
                                    const std::vector<bool>& labels,
                                    ConstraintLevel level) {
  return confusionImpl(scored, labels, &level);
}

GroundTruth toGroundTruth(const std::vector<ParsedConstraint>& parsed) {
  std::vector<GroundTruthEntry> entries;
  for (const ParsedConstraint& p : parsed) {
    if (p.nameB.empty()) continue;
    entries.push_back({p.hierPath, p.nameA, p.nameB, p.level});
  }
  return GroundTruth(std::move(entries));
}

}  // namespace ancstr
