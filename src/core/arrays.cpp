#include "core/arrays.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.h"

namespace ancstr {
namespace {

/// The quantity an array is weighted in: value for passives, effective
/// width for MOS. 0 disqualifies the device.
double weightOf(const FlatDevice& dev) {
  if (isPassive(dev.type)) return dev.params.value;
  if (isMos(dev.type)) {
    return dev.params.w * dev.params.nf * dev.params.m;
  }
  return 0.0;
}

std::string localName(const FlatDevice& dev) {
  const std::size_t slash = dev.path.rfind('/');
  return slash == std::string::npos ? dev.path : dev.path.substr(slash + 1);
}

/// Snaps `value` to an integer multiple of `unit`; 0 when out of
/// tolerance or beyond maxMultiple.
int multipleOf(double value, double unit, const ArrayDetectOptions& options) {
  const double ratio = value / unit;
  const int rounded = static_cast<int>(std::lround(ratio));
  if (rounded < 1 || rounded > options.maxMultiple) return 0;
  if (std::fabs(ratio - rounded) > options.ratioTolerance * rounded) return 0;
  return rounded;
}

}  // namespace

std::vector<ArrayGroup> detectArrayGroups(const FlatDesign& design,
                                          const nn::Matrix& designEmbeddings,
                                          const ArrayDetectOptions& options) {
  if (designEmbeddings.rows() != design.devices().size()) {
    throw ShapeError("detectArrayGroups: embeddings rows != device count");
  }
  std::vector<ArrayGroup> out;

  for (const HierNode& node : design.hierarchy()) {
    // Bucket this hierarchy's leaves by device type.
    std::map<DeviceType, std::vector<FlatDeviceId>> byType;
    for (const FlatDeviceId d : node.leafDevices) {
      if (weightOf(design.device(d)) > 0.0) {
        byType[design.device(d).type].push_back(d);
      }
    }
    for (const auto& [type, devices] : byType) {
      if (devices.size() < options.minMembers) continue;
      // Unit = smallest weight in the bucket.
      double unit = weightOf(design.device(devices.front()));
      for (const FlatDeviceId d : devices) {
        unit = std::min(unit, weightOf(design.device(d)));
      }
      // Keep devices that snap to integer multiples AND embed like the
      // unit-most devices (same structural role).
      std::vector<std::pair<FlatDeviceId, int>> members;
      for (const FlatDeviceId d : devices) {
        const int multiple =
            multipleOf(weightOf(design.device(d)), unit, options);
        if (multiple > 0) members.emplace_back(d, multiple);
      }
      if (members.size() < options.minMembers) continue;

      // Embedding agreement: every member vs. the group's first unit
      // device (cheap transitive proxy for pairwise similarity).
      FlatDeviceId anchor = members.front().first;
      for (const auto& [d, multiple] : members) {
        if (multiple == 1) {
          anchor = d;
          break;
        }
      }
      const nn::Matrix za = designEmbeddings.rowCopy(anchor);
      std::vector<std::pair<FlatDeviceId, int>> agreeing;
      for (const auto& [d, multiple] : members) {
        const nn::Matrix zd = designEmbeddings.rowCopy(d);
        if (nn::Matrix::cosineSimilarity(za, zd) >= options.arrayThreshold) {
          agreeing.emplace_back(d, multiple);
        }
      }
      if (agreeing.size() < options.minMembers) continue;
      // A real weighted array has more than one distinct weight or at
      // least three equal units (a matched bank).
      ArrayGroup group;
      group.hierarchy = node.id;
      group.type = type;
      group.unit = unit;
      for (const auto& [d, multiple] : agreeing) {
        group.members.emplace_back(localName(design.device(d)), multiple);
      }
      std::sort(group.members.begin(), group.members.end());
      out.push_back(std::move(group));
    }
  }
  return out;
}

}  // namespace ancstr
