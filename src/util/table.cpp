#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace ancstr {

void TextTable::setHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::addRow(std::vector<std::string> row) {
  ANCSTR_ASSERT(header_.empty() || row.size() == header_.size());
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::addSeparator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto renderLine = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line;
  };
  auto renderSep = [&]() {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line;
  };

  std::ostringstream out;
  out << renderSep() << "\n";
  if (!header_.empty()) {
    out << renderLine(header_) << "\n" << renderSep() << "\n";
  }
  for (const Row& row : rows_) {
    out << (row.separator ? renderSep() : renderLine(row.cells)) << "\n";
  }
  out << renderSep() << "\n";
  return out.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    const std::string& c = cells[i];
    if (c.find_first_of(",\"\n") != std::string::npos) {
      os_ << '"';
      for (char ch : c) {
        if (ch == '"') os_ << '"';
        os_ << ch;
      }
      os_ << '"';
    } else {
      os_ << c;
    }
  }
  os_ << '\n';
}

std::string metricCell(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return std::string(buf);
}

}  // namespace ancstr
