// Device taxonomy for AMS netlists.
//
// The paper (Table II) encodes the device type as a 15-dimensional one-hot
// vector; we define exactly 15 concrete primitive types plus kUnknown
// (which encodes as the all-zero vector so unmodelled devices never alias a
// real type).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ancstr {

/// Primitive device types recognised by the framework.
enum class DeviceType : std::uint8_t {
  kNch = 0,      ///< NMOS, standard Vt
  kNchLvt,       ///< NMOS, low Vt
  kNchHvt,       ///< NMOS, high Vt
  kPch,          ///< PMOS, standard Vt
  kPchLvt,       ///< PMOS, low Vt
  kPchHvt,       ///< PMOS, high Vt
  kResPoly,      ///< polysilicon resistor
  kResMetal,     ///< metal / diffusion resistor
  kCapMim,       ///< metal-insulator-metal capacitor
  kCapMom,       ///< metal-oxide-metal finger capacitor (cfmom)
  kCapMos,       ///< MOS capacitor
  kInd,          ///< inductor
  kDio,          ///< junction diode
  kNpn,          ///< NPN bipolar
  kPnp,          ///< PNP bipolar
  kUnknown,      ///< unmodelled; one-hot encodes as all zeros
};

/// Number of concrete device types == one-hot encoding width (paper: 15).
inline constexpr std::size_t kNumDeviceTypes = 15;

/// Pin functions as they appear on primitive device cards. These are richer
/// than the 4 graph port types; graph construction projects them down.
enum class PinFunction : std::uint8_t {
  kGate = 0,
  kDrain,
  kSource,
  kBulk,
  kPassivePos,  ///< first terminal of a two-terminal passive
  kPassiveNeg,  ///< second terminal of a two-terminal passive
  kAnode,
  kCathode,
  kCollector,
  kBase,
  kEmitter,
};

/// True for all six MOS flavours.
bool isMos(DeviceType t) noexcept;
/// True for the three NMOS flavours.
bool isNmos(DeviceType t) noexcept;
/// True for the three PMOS flavours.
bool isPmos(DeviceType t) noexcept;
/// True for R/C/L types.
bool isPassive(DeviceType t) noexcept;
/// True for resistor types.
bool isResistor(DeviceType t) noexcept;
/// True for capacitor types.
bool isCapacitor(DeviceType t) noexcept;
/// True for NPN/PNP.
bool isBipolar(DeviceType t) noexcept;

/// Index into the 15-wide one-hot vector; nullopt for kUnknown.
std::optional<std::size_t> oneHotIndex(DeviceType t) noexcept;

/// Canonical lower-case name ("nch_lvt", "cap_mom", ...).
std::string_view deviceTypeName(DeviceType t) noexcept;

/// Number of pins a primitive of this type carries (MOS: 4, BJT: 3,
/// passives/diode: 2).
std::size_t pinCount(DeviceType t) noexcept;

/// Pin functions, in card order, for a device of type `t`.
/// MOS card order is d g s b; BJT is c b e; passives are (pos, neg).
std::array<PinFunction, 4> pinFunctions(DeviceType t) noexcept;

/// Default metal-layer count used when a card does not specify `layers=`
/// (Table II feature 3): finger caps span several metal layers, MIM two,
/// everything else one.
int defaultMetalLayers(DeviceType t) noexcept;

/// Maps a PDK model name ("nch_lvt_mac", "pch25", "cfmom_2t", "rppoly", ...)
/// to a DeviceType. Falls back to kUnknown. Matching is case-insensitive
/// and substring-based so foundry-suffixed names resolve.
DeviceType deviceTypeFromModelName(std::string_view model) noexcept;

/// Canonical lower-case pin-function name ("gate", "drain", ...).
std::string_view pinFunctionName(PinFunction f) noexcept;

}  // namespace ancstr
