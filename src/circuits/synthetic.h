// Synthetic scalable circuits for runtime-scaling benchmarks (the
// perf_scaling harness) and stress tests.
#pragma once

#include "circuits/benchmark.h"

namespace ancstr::circuits {

/// A chain of `stages` fully differential gain stages (diff pair + loads +
/// tail + output caps), ~9 devices per stage, all in one flat subckt.
/// Every stage contributes matched pairs to the ground truth, so detection
/// quality can also be measured at scale.
CircuitBenchmark makeDiffChain(int stages);

/// A hierarchical tree: `blocks` instances of a small OTA under one top,
/// where consecutive even/odd instance pairs are matched. Exercises
/// system-level detection cost as block count grows.
CircuitBenchmark makeBlockArray(int blocks);

/// `banks` independent NMOS current-mirror banks in one flat subckt: each
/// bank is a diode-connected reference fanning out to three mirror
/// outputs sized 1x/2x/4x. Ground truth is pure kCurrentMirror entries
/// (3 per bank), and the topology-driven candidate count (3 per bank) is
/// deterministic — independent of model weights — so the bench harness
/// can gate detector.mirror.* counters on it.
CircuitBenchmark makeMirrorBank(int banks);

}  // namespace ancstr::circuits
