// End-to-end facade over the full flow of Fig. 4: multigraph construction,
// feature init, unsupervised GNN training, circuit embedding, and
// constraint detection. Train once on a corpus, then extract constraints
// from any circuit (the model is inductive).
//
// Public API surface and stability policy: docs/api.md. For warm-model
// repeated serving over many designs, wrap a trained Pipeline in an
// ExtractionEngine (core/engine.h), which memoizes the inference front
// half through the runInference()/runDetection() hooks below.
#pragma once

#include <filesystem>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "core/detector.h"
#include "core/features.h"
#include "core/trainer.h"
#include "netlist/flatten.h"
#include "nn/kernels.h"
#include "nn/matrix.h"
#include "util/deadline.h"
#include "util/report.h"

namespace ancstr {

struct PipelineConfig {
  FeatureConfig features;
  GraphBuildOptions graph;
  GnnConfig model;
  TrainConfig train;
  DetectorConfig detector;
  std::uint64_t seed = 42;
  /// Worker count applied to both training (per-batch graph fan-out) and
  /// detection (block embedding + pair scoring) — the single threading knob
  /// for pipeline runs. 0 = hardware_concurrency, 1 = serial; the
  /// ANCSTR_THREADS environment variable overrides. ExtractionResult and
  /// trained weights are bitwise identical for every value — parallelism
  /// here only changes wall-clock time.
  std::size_t threads = 1;
  /// Requested nn kernel backend (nn/kernels.h). kAuto picks the best ISA
  /// the CPU supports; a specific kind falls back (with a warning) when
  /// unavailable. The ANCSTR_KERNEL environment variable overrides, and
  /// the choice is process-wide — results are bitwise identical across
  /// backends, so this is purely a performance knob.
  nn::KernelKind kernel = nn::KernelKind::kAuto;

  PipelineConfig() {
    model.featureDim = features.dims();
    // Supply/clock hub nets expand into huge cliques under Algorithm 1,
    // which (a) costs |net|^2 edges and (b) makes every rail-connected
    // device 1-hop adjacent to every other, collapsing their embeddings.
    // Production default: skip nets beyond this degree (0 = paper-literal
    // full cliques; see GraphBuildOptions).
    graph.maxNetDegree = 64;
  }
};

/// Per-call options for Pipeline::extract / ExtractionEngine::extract.
struct ExtractOptions {
  /// Fail-soft switch (docs/robustness.md). Null or strict-mode sink:
  /// classic strict semantics — the first invalid construct throws.
  /// Collect-mode sink: invalid constructs degrade instead of aborting
  /// (unresolvable subcircuit instances are skipped during elaboration
  /// [pipeline.subckt_skipped]; a failure of any later phase degrades to
  /// an empty result [pipeline.extract_degraded]), and all diagnostics
  /// produced during the call are copied into result.report.diagnostics.
  diag::DiagnosticSink* sink = nullptr;
  /// Per-request deadline, checked cooperatively at phase boundaries
  /// (util/deadline.h). Default is unarmed (never expires). Expiry yields
  /// no partial result: strict mode throws util::DeadlineError; a
  /// collect-mode sink records [engine.deadline_exceeded] and the call
  /// returns an empty result.
  util::Deadline deadline = {};
  /// Optional caller-supplied correlation id (docs/observability.md,
  /// "Request correlation"): copied verbatim into the result report and —
  /// on the engine path — the run-ledger record, so an upstream system's
  /// own request identity can be joined against ancstr's request ids.
  /// Never parsed or compared; "" = none.
  std::string correlationId;
};

/// Extraction output: scored candidates + accepted constraints + the run
/// report (per-phase wall-clock — see util/report.h phase names
/// "extract.graph_build" / "extract.inference" / "extract.detection" —
/// and the metrics delta for this call).
struct ExtractionResult {
  DetectionResult detection;
  RunReport report;
  /// Trained per-device embeddings (row = FlatDeviceId) — input for
  /// downstream analyses such as array-group detection (core/arrays.h).
  nn::Matrix embeddings;
};

/// Training output: per-epoch losses plus the run report (phase names
/// "train.prepare" / "train.loop").
struct TrainReport {
  RunReport report;
  std::vector<double> epochLoss;  ///< mean loss per epoch, in order

  double finalLoss() const {
    return epochLoss.empty() ? 0.0 : epochLoss.back();
  }
};

/// The memoizable front half of one extraction: everything detection
/// consumes that depends only on the design's structure and the trained
/// model — i.e. the full-design vertex embeddings. Content-addressed by
/// structuralHash (core/circuit_hash.h) inside the ExtractionEngine.
struct InferenceArtifacts {
  nn::Matrix embeddings;  ///< row = FlatDeviceId

  /// Byte charge against an ExtractionEngine cache budget.
  std::size_t approxBytes() const {
    return sizeof(InferenceArtifacts) +
           embeddings.rows() * embeddings.cols() * sizeof(double);
  }
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {});

  /// Trains the GNN on the given circuits (unsupervised; no labels).
  TrainReport train(std::span<const Library* const> corpus);

  /// Braced-list convenience: train({&lib1, &lib2}).
  TrainReport train(std::initializer_list<const Library*> corpus) {
    return train(std::span<const Library* const>(corpus.begin(),
                                                 corpus.size()));
  }

  /// True once train() or loadModel() has run.
  bool isTrained() const { return model_ != nullptr; }

  /// Extracts symmetry constraints from one circuit. Strict by default;
  /// pass ExtractOptions{&sink} with a collect-mode sink for fail-soft
  /// behaviour (see ExtractOptions::sink). Calling before
  /// train()/loadModel() always throws — that is a caller bug, not
  /// corrupt input.
  ExtractionResult extract(const Library& lib,
                           ExtractOptions options = {}) const;

  // --- Serving hooks (used by core/engine.h) ---------------------------
  // extract() == runInference() + runDetection() over an elaborated
  // design; the split exists so a serving layer can cache the artifacts
  // between the two. Both throw before train()/loadModel().

  /// Front half: multigraph construction + feature init + GNN inference
  /// over the whole design. Appends the "extract.graph_build" and
  /// "extract.inference" phases to `report`. Deterministic: bitwise
  /// identical artifacts for identical (design structure, model, config).
  InferenceArtifacts runInference(const Library& lib,
                                  const FlatDesign& design,
                                  RunReport& report) const;

  /// Back half: candidate enumeration, block embedding, and scoring,
  /// consuming previously computed artifacts. `blockCache` (may be null)
  /// memoizes per-subcircuit Algorithm-2 embeddings across calls — see
  /// BlockEmbeddingCache in core/embedding.h. Appends the
  /// "extract.detection" phase and assigns result.detection.
  void runDetection(const Library& lib, const FlatDesign& design,
                    const InferenceArtifacts& artifacts,
                    BlockEmbeddingCache* blockCache,
                    ExtractionResult& result) const {
    runDetection(lib, design, artifacts, DetectionCaches{blockCache, nullptr},
                 result);
  }

  /// As above with the full cache set (block embeddings + pair scores —
  /// see DetectionCaches in core/detector.h); any member may be null.
  void runDetection(const Library& lib, const FlatDesign& design,
                    const InferenceArtifacts& artifacts,
                    const DetectionCaches& caches,
                    ExtractionResult& result) const;

  const GnnModel& model() const;
  const PipelineConfig& config() const { return config_; }

  void saveModel(const std::filesystem::path& path) const;
  void loadModel(const std::filesystem::path& path);

 private:
  PreparedGraph prepare(const Library& lib, const FlatDesign& design) const;

  PipelineConfig config_;
  std::unique_ptr<GnnModel> model_;
};

}  // namespace ancstr
