#include "eval/roc.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace ancstr {
namespace {

TEST(Roc, PerfectSeparationGivesAucOne) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<bool> labels{true, true, false, false};
  const RocCurve curve = computeRoc(scores, labels);
  EXPECT_NEAR(curve.auc, 1.0, 1e-12);
}

TEST(Roc, InvertedScoresGiveAucZero) {
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  const std::vector<bool> labels{true, true, false, false};
  const RocCurve curve = computeRoc(scores, labels);
  EXPECT_NEAR(curve.auc, 0.0, 1e-12);
}

TEST(Roc, RandomOrderGivesHalfForAlternating) {
  // Scores identical: single step from (0,0) to (1,1) -> AUC 0.5.
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<bool> labels{true, false, true, false};
  const RocCurve curve = computeRoc(scores, labels);
  EXPECT_NEAR(curve.auc, 0.5, 1e-12);
}

TEST(Roc, SingleClassDegeneratesGracefully) {
  const RocCurve allPos = computeRoc({0.5, 0.9}, {true, true});
  EXPECT_DOUBLE_EQ(allPos.auc, 0.5);
  const RocCurve allNeg = computeRoc({0.5, 0.9}, {false, false});
  EXPECT_DOUBLE_EQ(allNeg.auc, 0.5);
}

TEST(Roc, EndpointsPresent) {
  const RocCurve curve =
      computeRoc({0.9, 0.3, 0.7, 0.2}, {true, false, false, true});
  ASSERT_GE(curve.points.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.points.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.points.back().tpr, 1.0);
}

TEST(Roc, MonotoneNonDecreasing) {
  const RocCurve curve = computeRoc(
      {0.9, 0.8, 0.75, 0.7, 0.6, 0.5, 0.4, 0.3},
      {true, false, true, true, false, true, false, false});
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].fpr, curve.points[i - 1].fpr);
    EXPECT_GE(curve.points[i].tpr, curve.points[i - 1].tpr);
  }
}

TEST(Roc, TiedScoresFlipTogether) {
  // Two candidates share a score: the curve must step diagonally, not
  // visit an intermediate point.
  const RocCurve curve = computeRoc({0.5, 0.5}, {true, false});
  // points: start, one combined step, (end already at 1,1)
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.points[1].fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.points[1].tpr, 1.0);
}

TEST(Roc, AucMatchesHandComputedStaircase) {
  // scores desc: 0.9(P) 0.7(N) 0.6(P) 0.4(N)
  // steps: (0,0.5) (0.5,0.5) (0.5,1) (1,1) -> AUC = 0.5*0.5 + 0.5*1 = 0.75
  const RocCurve curve =
      computeRoc({0.9, 0.7, 0.6, 0.4}, {true, false, true, false});
  EXPECT_NEAR(curve.auc, 0.75, 1e-12);
}

TEST(Roc, CsvRendering) {
  const RocCurve curve = computeRoc({0.9, 0.1}, {true, false});
  const std::string csv = rocToCsv(curve);
  EXPECT_NE(csv.find("threshold,fpr,tpr"), std::string::npos);
  EXPECT_NE(csv.find("\n"), std::string::npos);
}

TEST(Roc, SizeMismatchAsserts) {
  EXPECT_THROW(computeRoc({0.5}, {true, false}), InternalError);
}

}  // namespace
}  // namespace ancstr
