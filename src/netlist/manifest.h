// Design hash manifests: the on-disk baseline format for incremental
// (ECO) extraction (`extract --since BASELINE`, docs/api.md).
//
// A manifest records, for one netlist version, the name-free content hash
// of every subcircuit master plus (when written by the extraction layer,
// core/library_diff.h) the config-dependent whole-design and subtree
// structural hashes. Diffing a manifest against a later netlist version
// classifies each master as unchanged / modified / added / removed without
// access to the original netlist text.
//
// The master content hash is positional and name-free, like
// core/circuit_hash.h: renaming nets, devices, or instances inside a
// master does not change its hash, and instances reference their master
// by the master's own content hash (recursively), so renaming a master
// leaves its instantiators' hashes untouched. Reordering cards is a
// content change, exactly as it is for the extraction caches.
#pragma once

#include <filesystem>
#include <vector>

#include "netlist/netlist.h"
#include "util/structural_hash.h"

namespace ancstr {

/// One master's entry in a manifest.
struct ManifestEntry {
  std::string name;            ///< master (subckt) name
  util::StructuralHash hash;   ///< name-free content hash

  bool operator==(const ManifestEntry&) const = default;
};

/// A saved baseline for library diffing. The netlist layer fills
/// `masters`; the extraction layer (core/library_diff.h buildManifest)
/// additionally fills `configHash` / `designHash` / `subtreeHashes`, which
/// depend on the graph/feature configuration. Null hashes mean "not
/// recorded".
struct DesignManifest {
  /// On-disk format version (readers reject anything else).
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Hash of the GraphBuildOptions / FeatureConfig the structural hashes
  /// were computed under; null for netlist-only manifests.
  util::StructuralHash configHash;
  /// Whole-design extraction hash (core/circuit_hash.h); null when not
  /// recorded.
  util::StructuralHash designHash;
  /// Per-master content hashes, sorted by name.
  std::vector<ManifestEntry> masters;
  /// Subtree structural hashes of every hierarchy node, sorted and
  /// deduplicated; empty when not recorded.
  std::vector<util::StructuralHash> subtreeHashes;

  bool operator==(const DesignManifest&) const = default;

  /// Entry for `name`, or nullptr.
  const ManifestEntry* findMaster(std::string_view name) const;
};

/// Name-free positional content hash of one master: device types, sizing
/// parameters, pin wiring, and instance connectivity, with instances
/// identified by their master's content hash (recursive). Throws
/// NetlistError on recursive instantiation.
util::StructuralHash subcktContentHash(const Library& lib, SubcktId id);

/// Manifest of `lib` with per-master content hashes only (`configHash` /
/// `designHash` / `subtreeHashes` stay null — see
/// core/library_diff.h buildManifest for the full form).
DesignManifest buildNetlistManifest(const Library& lib);

/// Writes `manifest` as the versioned line-based text format
/// (docs/file_formats.md). Throws Error on IO failure.
void saveManifest(const DesignManifest& manifest,
                  const std::filesystem::path& path);

/// Reads a manifest written by saveManifest. Throws Error on IO failure,
/// malformed lines, or an unsupported format version.
DesignManifest loadManifest(const std::filesystem::path& path);

}  // namespace ancstr
