#include "netlist/spice_parser.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace ancstr {
namespace {

TEST(SpiceParser, ParsesSubcktWithMos) {
  const char* text = R"(
* comment
.subckt inv in out vdd vss
mp out in vdd vdd pch w=2u l=0.1u
mn out in vss vss nch w=1u l=0.1u
.ends inv
.end
)";
  Library lib = parseSpice(text);
  const auto id = lib.findSubckt("inv");
  ASSERT_TRUE(id.has_value());
  const SubcktDef& inv = lib.subckt(*id);
  EXPECT_EQ(inv.devices().size(), 2u);
  EXPECT_EQ(inv.ports().size(), 4u);
  const Device& mp = inv.device(*inv.findDevice("mp"));
  EXPECT_EQ(mp.type, DeviceType::kPch);
  EXPECT_DOUBLE_EQ(mp.params.w, 2e-6);
  EXPECT_DOUBLE_EQ(mp.params.l, 1e-7);
}

TEST(SpiceParser, ContinuationLinesJoin) {
  const char* text =
      ".subckt cell a b vss\n"
      "m1 a b\n"
      "+ vss vss nch\n"
      "+ w=1u l=0.1u\n"
      ".ends\n";
  Library lib = parseSpice(text);
  const SubcktDef& cell = lib.subckt(0);
  ASSERT_EQ(cell.devices().size(), 1u);
  EXPECT_DOUBLE_EQ(cell.device(0).params.w, 1e-6);
}

TEST(SpiceParser, CommentsStripped) {
  const char* text =
      "* full line\n"
      ".subckt cell a vss ; trailing\n"
      "r1 a vss 1k $ dollar comment\n"
      ".ends\n";
  Library lib = parseSpice(text);
  EXPECT_DOUBLE_EQ(lib.subckt(0).device(0).params.value, 1000.0);
}

TEST(SpiceParser, ParamsAndExpressions) {
  const char* text = R"(
.param wunit=1u lmin=0.1u
.subckt cell d g vss
m1 d g vss vss nch w={wunit*4} l='lmin*2'
.ends
)";
  Library lib = parseSpice(text);
  const Device& m1 = lib.subckt(0).device(0);
  EXPECT_DOUBLE_EQ(m1.params.w, 4e-6);
  EXPECT_DOUBLE_EQ(m1.params.l, 2e-7);
}

TEST(SpiceParser, SubcktLocalParamsShadowGlobals) {
  const char* text = R"(
.param w0=1u
.subckt cell d vss
.param w0=3u
m1 d d vss vss nch w=w0 l=0.1u
.ends
.subckt other d vss
m1 d d vss vss nch w=w0 l=0.1u
.ends
)";
  Library lib = parseSpice(text);
  EXPECT_DOUBLE_EQ(lib.subckt(*lib.findSubckt("cell")).device(0).params.w,
                   3e-6);
  EXPECT_DOUBLE_EQ(lib.subckt(*lib.findSubckt("other")).device(0).params.w,
                   1e-6);
}

TEST(SpiceParser, PassiveValueAndModelInEitherOrder) {
  const char* text =
      ".subckt cell a b\n"
      "r1 a b 5k rppoly\n"
      "r2 a b rppoly 5k\n"
      "c1 a b 10f cfmom layers=5\n"
      ".ends\n";
  Library lib = parseSpice(text);
  const SubcktDef& cell = lib.subckt(0);
  EXPECT_DOUBLE_EQ(cell.device(*cell.findDevice("r1")).params.value, 5000.0);
  EXPECT_DOUBLE_EQ(cell.device(*cell.findDevice("r2")).params.value, 5000.0);
  const Device& c1 = cell.device(*cell.findDevice("c1"));
  EXPECT_EQ(c1.type, DeviceType::kCapMom);
  EXPECT_EQ(c1.params.layers, 5);
}

TEST(SpiceParser, InstancesResolve) {
  const char* text = R"(
.subckt inv in out vdd vss
mp out in vdd vdd pch w=2u l=0.1u
mn out in vss vss nch w=1u l=0.1u
.ends
.subckt buf in out vdd vss
x1 in mid inv vdd ... bad
.ends
)";
  // The x-card above is malformed on purpose: master must be last token.
  EXPECT_THROW(parseSpice(text), ParseError);

  const char* good = R"(
.subckt inv in out vdd vss
mp out in vdd vdd pch w=2u l=0.1u
mn out in vss vss nch w=1u l=0.1u
.ends
.subckt buf in out vdd vss
x1 in mid vdd vss inv
x2 mid out vdd vss inv
.ends
)";
  Library lib = parseSpice(good);
  const SubcktDef& buf = lib.subckt(*lib.findSubckt("buf"));
  EXPECT_EQ(buf.instances().size(), 2u);
  EXPECT_EQ(lib.flatDeviceCount(), 4u);
}

TEST(SpiceParser, ForwardReferenceRejected) {
  const char* text = R"(
.subckt top a
x1 a later
.ends
.subckt later a
r1 a a2 1k
.ends
)";
  EXPECT_THROW(parseSpice(text), ParseError);
}

TEST(SpiceParser, MissingEndsRejected) {
  EXPECT_THROW(parseSpice(".subckt cell a\nr1 a b 1k\n"), ParseError);
}

TEST(SpiceParser, NonMosModelOnMosCardRejected) {
  EXPECT_THROW(
      parseSpice(".subckt c a\nm1 a a a a rppoly w=1u l=1u\n.ends\n"),
      ParseError);
}

TEST(SpiceParser, TopLevelDevicesGoToImplicitTop) {
  SpiceParseOptions options;
  options.topName = "main";
  Library lib = parseSpice("r1 a b 2k\nc1 b 0 1p\n", "<mem>", options);
  const auto id = lib.findSubckt("main");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(lib.subckt(*id).devices().size(), 2u);
  EXPECT_EQ(lib.top(), *id);
}

TEST(SpiceParser, SourceCardsAreSkipped) {
  Library lib = parseSpice("v1 vdd 0 1.8\nr1 vdd out 1k\n");
  EXPECT_EQ(lib.subckt(lib.top()).devices().size(), 1u);
}

TEST(SpiceParser, BjtAndDiodeCards) {
  const char* text =
      ".subckt cell c b e a k\n"
      "q1 c b e npn\n"
      "d1 a k diode_nw\n"
      ".ends\n";
  Library lib = parseSpice(text);
  const SubcktDef& cell = lib.subckt(0);
  EXPECT_EQ(cell.device(*cell.findDevice("q1")).type, DeviceType::kNpn);
  EXPECT_EQ(cell.device(*cell.findDevice("d1")).type, DeviceType::kDio);
}

TEST(SpiceParser, SpacesAroundEqualsNormalized) {
  Library lib = parseSpice(
      ".subckt c d vss\nm1 d d vss vss nch w = 2u l= 0.1u\n.ends\n");
  EXPECT_DOUBLE_EQ(lib.subckt(0).device(0).params.w, 2e-6);
}

TEST(SpiceParser, ErrorCarriesLineNumber) {
  try {
    parseSpice("r1 a b 1k\nbogus card here\n", "deck.sp");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.file(), "deck.sp");
  }
}

TEST(SpiceParser, StrictDirectivesMode) {
  SpiceParseOptions strict;
  strict.strictDirectives = true;
  EXPECT_THROW(parseSpice(".unknowndirective\n", "<mem>", strict),
               ParseError);
  EXPECT_NO_THROW(parseSpice(".unknowndirective\n"));
}

}  // namespace
}  // namespace ancstr
