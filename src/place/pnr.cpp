#include "place/pnr.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/error.h"

namespace ancstr::place {

std::vector<std::pair<std::size_t, std::size_t>> findSymmetricNetPairs(
    const PlacementProblem& problem) {
  // partner[i] = mirror cell of i (itself for self-symmetric / free).
  std::vector<std::size_t> partner(problem.cells.size());
  for (std::size_t i = 0; i < partner.size(); ++i) partner[i] = i;
  for (const auto& [a, b] : problem.symmetricPairs) {
    partner[a] = b;
    partner[b] = a;
  }

  std::map<std::set<std::size_t>, std::size_t> byCellSet;
  for (std::size_t n = 0; n < problem.nets.size(); ++n) {
    byCellSet.emplace(
        std::set<std::size_t>(problem.nets[n].begin(), problem.nets[n].end()),
        n);
  }
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t n = 0; n < problem.nets.size(); ++n) {
    std::set<std::size_t> image;
    for (const std::size_t cell : problem.nets[n]) {
      image.insert(partner[cell]);
    }
    const auto it = byCellSet.find(image);
    if (it == byCellSet.end() || it->second <= n) continue;
    out.emplace_back(n, it->second);
  }
  return out;
}

PnrResult placeAndRoute(const PlacementProblem& problem,
                        const PnrOptions& options) {
  PnrResult result;
  result.placement = anneal(problem, options.anneal);
  const PlacementSolution& solution = result.placement.solution;

  // Grid sized from the placement bounding box, symmetric about the axis.
  double maxReach = 1.0;
  double minY = 0.0, maxY = 1.0;
  bool first = true;
  for (const Rect& r : solution.rects) {
    maxReach = std::max({maxReach,
                         std::fabs(r.x - solution.symmetryAxis),
                         std::fabs(r.right() - solution.symmetryAxis)});
    if (first) {
      minY = r.y;
      maxY = r.top();
      first = false;
    } else {
      minY = std::min(minY, r.y);
      maxY = std::max(maxY, r.top());
    }
  }
  const double res = std::max(0.1, options.gridResolution);
  const int halfWidth =
      static_cast<int>(std::ceil(maxReach * res)) + 2;
  result.gridWidth = 2 * halfWidth + 1;
  result.gridHeight =
      static_cast<int>(std::ceil((maxY - minY) * res)) + 4;

  RouterOptions route = options.route;
  route.axisX = halfWidth;  // axis at the exact grid centre

  auto snap = [&](const Point& p) {
    return GridPoint{
        static_cast<int>(std::lround((p.x - solution.symmetryAxis) * res)) +
            halfWidth,
        static_cast<int>(std::lround((p.y - minY) * res)) + 2};
  };

  std::vector<RouteNet> nets;
  nets.reserve(problem.nets.size());
  for (std::size_t n = 0; n < problem.nets.size(); ++n) {
    RouteNet net;
    net.name = "net" + std::to_string(n);
    std::set<std::pair<int, int>> seen;
    for (const std::size_t cell : problem.nets[n]) {
      const GridPoint g = snap(solution.rects[cell].center());
      if (seen.insert({g.x, g.y}).second) net.terminals.push_back(g);
    }
    nets.push_back(std::move(net));
  }

  result.symmetricNets = findSymmetricNetPairs(problem);
  result.routing = routeNets(result.gridWidth, result.gridHeight, nets,
                             result.symmetricNets, route);
  return result;
}

}  // namespace ancstr::place
