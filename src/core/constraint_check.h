// Constraint-file validation: checks a parsed constraint deck against a
// netlist (the lint step a P&R flow runs before consuming constraints).
#pragma once

#include <string>
#include <vector>

#include "core/constraint_io.h"
#include "netlist/flatten.h"

namespace ancstr {

/// One problem found in a constraint deck.
struct ConstraintIssue {
  std::size_t index = 0;  ///< index into the parsed constraint list
  std::string message;
};

/// Validates every constraint:
///   * the hierarchy path must name an existing hierarchy node;
///   * both modules must exist directly under that node (leaf device or
///     child block instance);
///   * pair members must have identical kinds and — for devices —
///     identical device types (Section III-A validity).
/// Returns all violations (empty = deck is clean).
std::vector<ConstraintIssue> checkConstraints(
    const FlatDesign& design, const Library& lib,
    const std::vector<ParsedConstraint>& constraints);

/// Lints a typed registry (core/constraint.h) by name, so a round-tripped
/// set can be validated against a freshly elaborated design. Records
/// project exactly as parseConstraintsJson projects v2 files: pairs and
/// mirrors check as (a, b) pairs, self-symmetric records as single
/// names, groups are skipped (their members are covered by the former).
/// Issue indices refer to the set's canonical record order.
std::vector<ConstraintIssue> checkConstraints(const FlatDesign& design,
                                              const Library& lib,
                                              const ConstraintSet& set);

}  // namespace ancstr
