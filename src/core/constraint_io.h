// Constraint file I/O over the typed registry (core/constraint.h).
//
// Three formats:
//   * native JSON v2 — full-fidelity round-trip of a ConstraintSet:
//     typed records (symmetry_pair / self_symmetric / current_mirror /
//     symmetry_group), member kinds + stable ids + names, scores,
//     mirror ratios, thresholds. The interchange format of this project.
//   * ALIGN JSON — ALIGN/MAGICAL-ecosystem constraint export: per-cell
//     SymmetricBlocks and CurrentMirror entries (validated in CI by
//     scripts/check_align_json.py).
//   * SYM — MAGICAL-style plain text consumed by analog P&R engines:
//     one constraint per line,
//        <hierarchy-path> <nameA> <nameB>     (matched pair)
//        <hierarchy-path> <name>              (self-symmetric device)
//     with "." denoting the top hierarchy and "#" starting comments.
//
// The legacy v1 writers were removed per the docs/api.md deprecation
// policy; the readers still accept both versions.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/arrays.h"
#include "core/constraint.h"
#include "core/detector.h"
#include "netlist/flatten.h"

namespace ancstr {

/// Serialises the registry (plus optional common-centroid array groups)
/// as native JSON v2. Lossless: parseConstraintSetJson returns an equal
/// set. Bumps the constraints.exported counter by set.size().
std::string constraintSetToJson(const FlatDesign& design,
                                const ConstraintSet& set,
                                const std::vector<ArrayGroup>& arrays = {});

/// Parses a native v2 JSON file back into the registry (member ids and
/// the hierarchy ids round-trip verbatim; they are only meaningful
/// against the design the set was extracted from). Throws Error on
/// malformed input or any other version.
ConstraintSet parseConstraintSetJson(const std::string& text);

/// Serialises the registry as an ALIGN-compatible constraint file: one
/// entry list per cell (hierarchy path, "." for the top), SymmetricBlocks
/// from symmetry groups (or ungrouped pairs + self-symmetric records when
/// no groups were built) and CurrentMirror entries grouped by reference
/// device. Bumps constraints.exported.
std::string constraintSetToAlignJson(const FlatDesign& design,
                                     const ConstraintSet& set);

/// Serialises the registry's symmetry pairs and self-symmetric members
/// as a MAGICAL-style .sym deck (mirrors and groups have no .sym
/// encoding). Bumps constraints.exported.
std::string constraintSetToSym(const FlatDesign& design,
                               const ConstraintSet& set);

/// A constraint record read back from either format.
struct ParsedConstraint {
  std::string hierPath;
  std::string nameA;
  std::string nameB;  ///< empty for self-symmetric entries
  ConstraintLevel level = ConstraintLevel::kDevice;
  double similarity = 0.0;  ///< 0 when absent (SYM format)
};

/// Parses a JSON constraint file (v1 or v2) into flat pair records:
/// symmetry pairs and current mirrors project to (a, b) pairs,
/// self-symmetric records to single names, groups are skipped (their
/// contents are already covered). Throws Error on malformed input.
std::vector<ParsedConstraint> parseConstraintsJson(const std::string& text);

/// Parses a .sym deck. Throws ParseError on malformed lines.
/// (To diff against a golden file, convert with eval's toGroundTruth.)
std::vector<ParsedConstraint> parseConstraintsSym(const std::string& text);

/// Reads a constraint file from disk, dispatching on extension (".json"
/// goes to parseConstraintsJson) with a content-sniff fallback for the
/// "ancstr-constraints" format tag; everything else goes to
/// parseConstraintsSym. Throws Error when the file cannot be read.
std::vector<ParsedConstraint> parseConstraintsFile(
    const std::filesystem::path& path);

}  // namespace ancstr
