* malformed corpus: binary-looking garbage in the middle of the deck
r1 a b 1k
@@@@ #### garbage
)(&^ more garbage
c1 a b 1p
