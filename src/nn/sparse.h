// Compressed-sparse-row matrix used for adjacency operators in GNN message
// passing: the per-edge-type adjacency A_tau is sparse and constant, so
// messages are computed as spmm(A, H) with H dense.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.h"

namespace ancstr::nn {

/// One (row, col, value) entry used to assemble a SparseMatrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 1.0;
};

/// Immutable CSR matrix. Duplicate triplets are summed during assembly.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  /// Assembles from triplets (duplicates coalesced by summation).
  SparseMatrix(std::size_t rows, std::size_t cols,
               std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonZeros() const { return values_.size(); }

  /// Dense product: this (m x k, sparse) * dense (k x n) -> m x n.
  Matrix multiply(const Matrix& dense) const;

  /// Raw accumulate variant of multiply: out += this * dense, where
  /// `dense` points at k row-major rows of denseCols doubles and `out` at
  /// m such rows. Lets the batched inference path multiply into row slices
  /// of stacked matrices without copying. No shape checks.
  void multiplyAcc(const double* dense, std::size_t denseCols,
                   double* out) const;

  /// Transposed copy (CSR of the transpose).
  SparseMatrix transposed() const;

  /// Dense materialisation (tests / small problems).
  Matrix toDense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> rowPtr_;
  std::vector<std::size_t> colIdx_;
  std::vector<double> values_;
};

}  // namespace ancstr::nn
