// The umbrella header must expose the whole public API in one include.
#include "ancstr.h"

#include <gtest/gtest.h>

namespace ancstr {
namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  // Touch one symbol from every major subsystem.
  const Library lib = parseSpice(R"(
.subckt cell inp inn op on vb vdd vss
m1 op inp t vss nch w=2u l=0.2u
m2 on inn t vss nch w=2u l=0.2u
mt t vb vss vss nch w=4u l=0.4u
r1 op vdd 1k
r2 on vdd 1k
.ends
)");
  Pipeline pipeline;
  pipeline.train({&lib});
  const ExtractionResult result = pipeline.extract(lib);
  const FlatDesign design = FlatDesign::elaborate(lib);

  ConstraintSet set = result.detection.set;
  appendSymmetryGroups(design, set);
  const auto arrays = detectArrayGroups(design, result.embeddings);
  const std::string json = constraintSetToJson(design, set, arrays);
  EXPECT_FALSE(parseConstraintsJson(json).empty());
  EXPECT_TRUE(checkConstraints(design, lib, set).empty());
  EXPECT_FALSE(constraintSetToAlignJson(design, set).empty());

  const auto sfaResult = sfa::detectDeviceConstraints(design, lib);
  EXPECT_FALSE(sfaResult.scored.empty());

  place::PlacementProblem problem = place::buildPlacementProblem(design, 0);
  place::PnrOptions pnrOptions;
  pnrOptions.anneal.iterations = 500;
  const place::PnrResult pnr = place::placeAndRoute(problem, pnrOptions);
  EXPECT_FALSE(renderSvg(problem, pnr.placement.solution).empty());

  const Metrics metrics = computeMetrics({1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(metrics.acc, 1.0);
}

}  // namespace
}  // namespace ancstr
