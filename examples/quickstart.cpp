// Quickstart: parse a SPICE netlist, train the unsupervised GNN on it,
// and extract symmetry constraints — the whole public API in ~60 lines.
#include <cstdio>

#include "core/pipeline.h"
#include "netlist/spice_parser.h"

using namespace ancstr;

// A two-stage fully differential OTA. In a real flow this text comes from
// a file via parseSpiceFile(path).
constexpr const char* kOtaNetlist = R"(
* two-stage fully differential OTA with Miller compensation
.subckt ota vinp vinn voutp voutn vcmfb ibias vdd vss
m1 n1 vinp ntail vss nch_lvt w=4u l=0.2u nf=2
m2 n2 vinn ntail vss nch_lvt w=4u l=0.2u nf=2
m3 n1 vbp vdd vdd pch w=8u l=0.3u
m4 n2 vbp vdd vdd pch w=8u l=0.3u
m5 ntail vbn vss vss nch w=8u l=0.5u
m6 voutp n1 vdd vdd pch w=24u l=0.3u
m7 voutn n2 vdd vdd pch w=24u l=0.3u
m8 voutp vcmfb vss vss nch w=12u l=0.5u
m9 voutn vcmfb vss vss nch w=12u l=0.5u
m10 vbn ibias vss vss nch w=2u l=0.5u
m11 ibias ibias vss vss nch w=2u l=0.5u
m12 vbp vbp vdd vdd pch w=4u l=0.3u
m13 vbp vbn vss vss nch w=2u l=0.5u
rz1 voutp nz1 1.5k rppoly
cc1 nz1 n1 250f cfmom layers=4
rz2 voutn nz2 1.5k rppoly
cc2 nz2 n2 250f cfmom layers=4
.ends ota
)";

int main() {
  // 1. Parse the netlist into a hierarchical library.
  const Library lib = parseSpice(kOtaNetlist, "ota.sp");
  std::printf("parsed %zu devices / %zu nets\n", lib.flatDeviceCount(),
              lib.flatNetCount());

  // 2. Train the unsupervised GNN. No labels are needed: the model learns
  //    from the circuit's own connectivity (Eq. 2 of the paper). Training
  //    corpora normally span many circuits; one works for a demo.
  Pipeline pipeline;  // paper defaults: K=2, D=18, B=5, Eq. 4 thresholds
  pipeline.train({&lib});

  // 3. Extract symmetry constraints from any circuit (the model is
  //    inductive, so this could be a different, unseen netlist).
  const ExtractionResult result = pipeline.extract(lib);

  std::printf("extraction took %.3fs (%zu candidates scored)\n",
              result.report.totalSeconds(), result.detection.scored.size());
  std::printf("detected symmetry constraints:\n");
  for (const Constraint* c :
       result.detection.set.ofType(ConstraintType::kSymmetryPair)) {
    std::printf("  (%s, %s)  level=%s  similarity=%.4f\n",
                c->members[0].name.c_str(), c->members[1].name.c_str(),
                constraintLevelName(c->level), c->score);
  }
  return 0;
}
