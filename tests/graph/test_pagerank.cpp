#include "graph/pagerank.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/metrics.h"

namespace ancstr {
namespace {

double total(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRank, SumsToOne) {
  SimpleDigraph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 0);
  g.addEdge(3, 0);  // 4 is isolated/dangling
  const auto pr = pageRank(g);
  EXPECT_NEAR(total(pr), 1.0, 1e-9);
}

TEST(PageRank, UniformOnSymmetricCycle) {
  SimpleDigraph g(4);
  for (std::uint32_t i = 0; i < 4; ++i) g.addEdge(i, (i + 1) % 4);
  const auto pr = pageRank(g);
  for (const double p : pr) EXPECT_NEAR(p, 0.25, 1e-9);
}

TEST(PageRank, HubGetsHighestScore) {
  // Everyone points at vertex 0.
  SimpleDigraph g(5);
  for (std::uint32_t i = 1; i < 5; ++i) g.addEdge(i, 0);
  const auto pr = pageRank(g);
  for (std::uint32_t i = 1; i < 5; ++i) EXPECT_GT(pr[0], pr[i]);
}

TEST(PageRank, EmptyGraph) {
  SimpleDigraph g(0);
  EXPECT_TRUE(pageRank(g).empty());
}

TEST(PageRank, DanglingMassRedistributed) {
  SimpleDigraph g(3);
  g.addEdge(0, 1);  // 1 and 2 dangle
  const auto pr = pageRank(g);
  EXPECT_NEAR(total(pr), 1.0, 1e-9);
  EXPECT_GT(pr[1], pr[2]);  // 1 receives from 0, 2 receives nothing extra
}

TEST(PageRank, DampingZeroGivesUniform) {
  SimpleDigraph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  PageRankOptions options;
  options.damping = 0.0;
  const auto pr = pageRank(g, options);
  for (const double p : pr) EXPECT_NEAR(p, 0.25, 1e-12);
}

TEST(PageRank, DetailedReportsConvergence) {
  SimpleDigraph g(4);
  for (std::uint32_t i = 0; i < 4; ++i) g.addEdge(i, (i + 1) % 4);
  const PageRankResult result = pageRankDetailed(g);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 0);
  EXPECT_LT(result.iterations, 200);
  EXPECT_NEAR(total(result.scores), 1.0, 1e-9);
}

TEST(PageRank, NonConvergenceIsSurfaced) {
  // A strongly asymmetric chain cannot reach a 1e-10 L1 delta in a single
  // power iteration from the uniform start.
  SimpleDigraph g(5);
  for (std::uint32_t i = 1; i < 5; ++i) g.addEdge(i, 0);
  PageRankOptions options;
  options.maxIterations = 1;
  const std::uint64_t before = metrics::Registry::instance()
                                   .counter("pagerank.nonconverged")
                                   .value();
  const PageRankResult result = pageRankDetailed(g, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 1);
  // The scores are still the usable 1st iterate (normalised).
  EXPECT_NEAR(total(result.scores), 1.0, 1e-9);
  EXPECT_EQ(metrics::Registry::instance()
                .counter("pagerank.nonconverged")
                .value(),
            before + 1);
}

TEST(TopKByScore, SortsDescendingTiesById) {
  const std::vector<double> scores{0.1, 0.5, 0.5, 0.3};
  const auto top = topKByScore(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // tie broken by lower id first
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 3u);
}

TEST(TopKByScore, KClampedToSize) {
  const auto top = topKByScore({1.0, 2.0}, 10);
  EXPECT_EQ(top.size(), 2u);
}

}  // namespace
}  // namespace ancstr
