#include "core/constraint_io.h"

#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/diagnostics.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/string_utils.h"

namespace ancstr {
namespace {

// Constraint-IO failures carry a bracketed diagnostic code
// (docs/robustness.md) and bump the io.constraint_failures counter.
[[noreturn]] void fail(const std::string& message, std::string_view code) {
  static metrics::Counter& failures =
      metrics::Registry::instance().counter("io.constraint_failures");
  failures.add();
  throw Error(message + " [" + std::string(code) + "]");
}

void bumpExported(std::size_t records) {
  static metrics::Counter& exported =
      metrics::Registry::instance().counter("constraints.exported");
  exported.add(records);
}

const char* levelName(ConstraintLevel level) {
  return level == ConstraintLevel::kSystem ? "system" : "device";
}

ConstraintLevel levelFromName(const std::string& name) {
  if (name == "system") return ConstraintLevel::kSystem;
  if (name == "device") return ConstraintLevel::kDevice;
  fail("unknown constraint level '" + name + "'", diag::codes::kIoFormat);
}

const char* kindName(ModuleKind kind) {
  return kind == ModuleKind::kBlock ? "block" : "device";
}

ModuleKind kindFromName(const std::string& name) {
  if (name == "block") return ModuleKind::kBlock;
  if (name == "device") return ModuleKind::kDevice;
  fail("unknown member kind '" + name + "'", diag::codes::kIoFormat);
}

std::string symPath(const std::string& hierPath) {
  return hierPath.empty() ? "." : hierPath;
}

Json arraysToJson(const FlatDesign& design,
                  const std::vector<ArrayGroup>& arrays) {
  Json arrayJson = Json::array();
  for (const ArrayGroup& array : arrays) {
    Json entry = Json::object();
    entry.set("hierarchy", design.node(array.hierarchy).path);
    entry.set("device_type", std::string(deviceTypeName(array.type)));
    entry.set("unit", array.unit);
    Json members = Json::array();
    for (const auto& [name, multiple] : array.members) {
      Json member = Json::object();
      member.set("name", name);
      member.set("multiple", multiple);
      members.push(std::move(member));
    }
    entry.set("members", std::move(members));
    arrayJson.push(std::move(entry));
  }
  return arrayJson;
}

double finiteNumber(const Json& value, std::string_view what) {
  const double v = value.asNumber();
  if (!std::isfinite(v)) {
    fail("constraint JSON: non-finite " + std::string(what),
         diag::codes::kIoNonFinite);
  }
  return v;
}

}  // namespace

std::string constraintSetToJson(const FlatDesign& design,
                                const ConstraintSet& set,
                                const std::vector<ArrayGroup>& arrays) {
  Json root = Json::object();
  root.set("format", "ancstr-constraints");
  root.set("version", 2);
  Json thresholds = Json::object();
  thresholds.set("system", set.systemThreshold);
  thresholds.set("device", set.deviceThreshold);
  thresholds.set("mirror", set.mirrorThreshold);
  root.set("thresholds", std::move(thresholds));

  Json constraints = Json::array();
  for (const Constraint& c : set.all()) {
    Json entry = Json::object();
    entry.set("type", constraintTypeName(c.type));
    entry.set("hierarchy", design.node(c.hierarchy).path);
    entry.set("hierarchy_id", static_cast<std::size_t>(c.hierarchy));
    entry.set("level", levelName(c.level));
    Json members = Json::array();
    for (const ConstraintMember& m : c.members) {
      Json member = Json::object();
      member.set("kind", kindName(m.kind));
      member.set("id", static_cast<std::size_t>(m.id));
      member.set("name", m.name);
      members.push(std::move(member));
    }
    entry.set("members", std::move(members));
    entry.set("score", c.score);
    if (c.type == ConstraintType::kCurrentMirror) {
      entry.set("ratio", c.ratio);
    }
    if (c.type == ConstraintType::kSymmetryGroup) {
      entry.set("pair_count", static_cast<std::size_t>(c.pairCount));
    }
    constraints.push(std::move(entry));
  }
  root.set("constraints", std::move(constraints));

  if (!arrays.empty()) {
    root.set("arrays", arraysToJson(design, arrays));
  }
  bumpExported(set.size());
  return root.dump(2) + "\n";
}

ConstraintSet parseConstraintSetJson(const std::string& text) {
  std::string error;
  const auto root = Json::parse(text, &error);
  if (!root) {
    fail("constraint JSON: " + error, diag::codes::kIoTruncated);
  }
  if (const Json* format = root->find("format");
      format == nullptr || format->asString() != "ancstr-constraints") {
    fail("constraint JSON: missing/unknown format tag",
         diag::codes::kIoFormat);
  }
  const Json* version = root->find("version");
  if (version == nullptr || version->asNumber() != 2) {
    fail("parseConstraintSetJson: expected version 2",
         diag::codes::kIoFormat);
  }
  ConstraintSet set;
  if (const Json* thresholds = root->find("thresholds")) {
    if (const Json* v = thresholds->find("system")) {
      set.systemThreshold = finiteNumber(*v, "system threshold");
    }
    if (const Json* v = thresholds->find("device")) {
      set.deviceThreshold = finiteNumber(*v, "device threshold");
    }
    if (const Json* v = thresholds->find("mirror")) {
      set.mirrorThreshold = finiteNumber(*v, "mirror threshold");
    }
  }
  const Json& constraints = root->get("constraints");
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const Json& entry = constraints.at(i);
    Constraint c;
    const std::string& typeTag = entry.get("type").asString();
    const auto type = constraintTypeFromName(typeTag);
    if (!type) {
      fail("constraint JSON: unknown constraint type '" + typeTag + "'",
           diag::codes::kIoFormat);
    }
    c.type = *type;
    c.hierarchy =
        static_cast<HierNodeId>(entry.get("hierarchy_id").asNumber());
    c.level = levelFromName(entry.get("level").asString());
    c.score = finiteNumber(entry.get("score"), "score");
    if (const Json* ratio = entry.find("ratio")) {
      c.ratio = finiteNumber(*ratio, "ratio");
    }
    if (const Json* pairCount = entry.find("pair_count")) {
      c.pairCount = static_cast<std::uint32_t>(pairCount->asNumber());
    }
    const Json& members = entry.get("members");
    for (std::size_t m = 0; m < members.size(); ++m) {
      const Json& member = members.at(m);
      c.members.push_back(
          {kindFromName(member.get("kind").asString()),
           static_cast<std::uint32_t>(member.get("id").asNumber()),
           member.get("name").asString()});
    }
    set.add(std::move(c));
  }
  set.canonicalize();
  return set;
}

std::string constraintSetToAlignJson(const FlatDesign& design,
                                     const ConstraintSet& set) {
  // Per-cell entry lists keyed by hierarchy node, in node-id order.
  std::map<HierNodeId, Json> cells;
  auto cellEntries = [&](HierNodeId node) -> Json& {
    auto it = cells.find(node);
    if (it == cells.end()) it = cells.emplace(node, Json::array()).first;
    return it->second;
  };

  const bool haveGroups = set.count(ConstraintType::kSymmetryGroup) > 0;
  for (const Constraint& c : set.all()) {
    if (c.type == ConstraintType::kSymmetryGroup) {
      Json pairs = Json::array();
      for (std::size_t i = 0; i < c.pairCount; ++i) {
        Json pair = Json::array();
        pair.push(c.members[2 * i].name);
        pair.push(c.members[2 * i + 1].name);
        pairs.push(std::move(pair));
      }
      for (std::size_t i = 2 * c.pairCount; i < c.members.size(); ++i) {
        Json single = Json::array();
        single.push(c.members[i].name);
        pairs.push(std::move(single));
      }
      Json entry = Json::object();
      entry.set("constraint", "SymmetricBlocks");
      entry.set("direction", "V");
      entry.set("pairs", std::move(pairs));
      cellEntries(c.hierarchy).push(std::move(entry));
    } else if (!haveGroups && c.type == ConstraintType::kSymmetryPair) {
      Json pair = Json::array();
      pair.push(c.members[0].name);
      pair.push(c.members[1].name);
      Json pairs = Json::array();
      pairs.push(std::move(pair));
      Json entry = Json::object();
      entry.set("constraint", "SymmetricBlocks");
      entry.set("direction", "V");
      entry.set("pairs", std::move(pairs));
      cellEntries(c.hierarchy).push(std::move(entry));
    } else if (!haveGroups && c.type == ConstraintType::kSelfSymmetric) {
      Json single = Json::array();
      single.push(c.members[0].name);
      Json pairs = Json::array();
      pairs.push(std::move(single));
      Json entry = Json::object();
      entry.set("constraint", "SymmetricBlocks");
      entry.set("direction", "V");
      entry.set("pairs", std::move(pairs));
      cellEntries(c.hierarchy).push(std::move(entry));
    }
  }

  // Mirrors grouped by reference: canonical set order keeps records of
  // one (hierarchy, reference) adjacent, so a single run-collapsing pass
  // is deterministic.
  const std::vector<const Constraint*> mirrors =
      set.ofType(ConstraintType::kCurrentMirror);
  for (std::size_t i = 0; i < mirrors.size();) {
    const Constraint& first = *mirrors[i];
    Json mirrorNames = Json::array();
    Json ratios = Json::array();
    std::size_t j = i;
    for (; j < mirrors.size(); ++j) {
      const Constraint& c = *mirrors[j];
      if (c.hierarchy != first.hierarchy ||
          c.members[0] != first.members[0]) {
        break;
      }
      mirrorNames.push(c.members[1].name);
      ratios.push(c.ratio);
    }
    Json entry = Json::object();
    entry.set("constraint", "CurrentMirror");
    entry.set("reference", first.members[0].name);
    entry.set("mirrors", std::move(mirrorNames));
    entry.set("ratios", std::move(ratios));
    cellEntries(first.hierarchy).push(std::move(entry));
    i = j;
  }

  Json cellsJson = Json::object();
  for (auto& [node, entries] : cells) {
    cellsJson.set(symPath(design.node(node).path), std::move(entries));
  }
  Json root = Json::object();
  root.set("format", "align-constraints");
  root.set("version", 1);
  root.set("cells", std::move(cellsJson));
  bumpExported(set.size());
  return root.dump(2) + "\n";
}

std::string constraintSetToSym(const FlatDesign& design,
                               const ConstraintSet& set) {
  std::ostringstream os;
  os << "# ancstr symmetry constraints\n";
  for (const Constraint* c : set.ofType(ConstraintType::kSymmetryPair)) {
    os << symPath(design.node(c->hierarchy).path) << ' '
       << c->members[0].name << ' ' << c->members[1].name << '\n';
  }
  // A device may bridge several groups; emit each (hierarchy, name) once.
  std::set<std::pair<HierNodeId, std::string>> seen;
  for (const Constraint* c : set.ofType(ConstraintType::kSelfSymmetric)) {
    if (!seen.emplace(c->hierarchy, c->members[0].name).second) continue;
    os << symPath(design.node(c->hierarchy).path) << ' '
       << c->members[0].name << '\n';
  }
  bumpExported(set.size());
  return os.str();
}

namespace {

/// Projects a parsed v2 document into flat pair records: pairs and
/// mirrors become (a, b) entries, self-symmetric records single names,
/// groups are skipped (contents already covered by the above).
std::vector<ParsedConstraint> projectV2(const Json& root) {
  std::vector<ParsedConstraint> out;
  const Json& constraints = root.get("constraints");
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const Json& entry = constraints.at(i);
    const std::string& typeTag = entry.get("type").asString();
    const auto type = constraintTypeFromName(typeTag);
    if (!type) {
      fail("constraint JSON: unknown constraint type '" + typeTag + "'",
           diag::codes::kIoFormat);
    }
    if (*type == ConstraintType::kSymmetryGroup) continue;
    ParsedConstraint p;
    p.hierPath = entry.get("hierarchy").asString();
    p.level = levelFromName(entry.get("level").asString());
    p.similarity = finiteNumber(entry.get("score"), "score");
    const Json& members = entry.get("members");
    p.nameA = members.at(0).get("name").asString();
    if (members.size() > 1) p.nameB = members.at(1).get("name").asString();
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

std::vector<ParsedConstraint> parseConstraintsJson(const std::string& text) {
  std::string error;
  const auto root = Json::parse(text, &error);
  if (!root) {
    fail("constraint JSON: " + error, diag::codes::kIoTruncated);
  }
  if (const Json* format = root->find("format");
      format == nullptr || format->asString() != "ancstr-constraints") {
    fail("constraint JSON: missing/unknown format tag",
         diag::codes::kIoFormat);
  }
  if (const Json* version = root->find("version");
      version != nullptr && version->asNumber() == 2) {
    return projectV2(*root);
  }
  std::vector<ParsedConstraint> out;
  const Json& constraints = root->get("constraints");
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const Json& entry = constraints.at(i);
    ParsedConstraint p;
    p.hierPath = entry.get("hierarchy").asString();
    p.nameA = entry.get("a").asString();
    p.nameB = entry.get("b").asString();
    p.level = levelFromName(entry.get("level").asString());
    if (const Json* sim = entry.find("similarity")) {
      p.similarity = sim->asNumber();
      if (!std::isfinite(p.similarity)) {
        fail("constraint JSON: non-finite similarity for pair ('" + p.nameA +
                 "', '" + p.nameB + "')",
             diag::codes::kIoNonFinite);
      }
    }
    out.push_back(std::move(p));
  }
  if (const Json* groups = root->find("groups")) {
    for (std::size_t g = 0; g < groups->size(); ++g) {
      const Json& entry = groups->at(g);
      const Json* self = entry.find("self_symmetric");
      if (self == nullptr) continue;
      for (std::size_t i = 0; i < self->size(); ++i) {
        ParsedConstraint p;
        p.hierPath = entry.get("hierarchy").asString();
        p.nameA = self->at(i).asString();
        p.level = levelFromName(entry.get("level").asString());
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

std::vector<ParsedConstraint> parseConstraintsSym(const std::string& text) {
  std::vector<ParsedConstraint> out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::string_view trimmed = str::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto tokens = str::splitTokens(trimmed);
    if (tokens.size() != 2 && tokens.size() != 3) {
      throw ParseError("<sym>", lineNo,
                       "expected '<hier> <a> [b]', got '" + line + "'");
    }
    ParsedConstraint p;
    p.hierPath = tokens[0] == "." ? "" : tokens[0];
    p.nameA = tokens[1];
    if (tokens.size() == 3) p.nameB = tokens[2];
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<ParsedConstraint> parseConstraintsFile(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in || fault::shouldFail("constraint_io.open")) {
    fail("parseConstraintsFile: cannot open '" + path.string() + "'",
         diag::codes::kIoFailure);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = fault::corruptText("constraint_io.read", buf.str());
  // Extension first; fall back to sniffing the format tag so JSON files
  // with unconventional names still round-trip.
  if (str::toLower(path.extension().string()) == ".json" ||
      text.find("ancstr-constraints") != std::string::npos) {
    return parseConstraintsJson(text);
  }
  return parseConstraintsSym(text);
}

}  // namespace ancstr
