// Diagnostics engine for fail-soft ingestion (docs/robustness.md).
//
// A Diagnostic is one position-stamped problem report with a stable dotted
// code (see diag::codes). Producers (parsers, IO loaders, the pipeline)
// report into a DiagnosticSink instead of throwing directly; the sink's
// mode decides the policy:
//
//   * kStrict  — the first kError report throws ParseError, reproducing
//                the classic throw-first behaviour. Every legacy entry
//                point (parseSpice, loadModelFile, Pipeline::extract
//                without a sink) runs on a strict sink, so existing call
//                sites and tests keep their exact semantics.
//   * kCollect — reports accumulate (thread-safely) and the producer
//                recovers: skip the bad card, resynchronize, degrade.
//
// Parsed<T> bundles a fail-soft result with the diagnostics that were
// produced while building it.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ancstr::diag {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

std::string_view severityName(Severity severity);

/// Stable diagnostic codes, dotted `layer.problem` literals. Renderers and
/// tests match on these, never on message text.
namespace codes {
// --- parsers ---------------------------------------------------------
inline constexpr std::string_view kUnknownCard = "parse.unknown_card";
inline constexpr std::string_view kBadCard = "parse.bad_card";
inline constexpr std::string_view kBadDirective = "parse.bad_directive";
inline constexpr std::string_view kBadParameter = "parse.bad_parameter";
inline constexpr std::string_view kUnknownMaster = "parse.unknown_master";
inline constexpr std::string_view kPortArity = "parse.port_arity";
inline constexpr std::string_view kNestedSubckt = "parse.nested_subckt";
inline constexpr std::string_view kUnterminatedSubckt =
    "parse.unterminated_subckt";
inline constexpr std::string_view kStrayEnds = "parse.stray_ends";
inline constexpr std::string_view kIncludeMissing = "parse.include_missing";
inline constexpr std::string_view kIncludeCycle = "parse.include_cycle";
inline constexpr std::string_view kIncludeDepth = "parse.include_depth";
inline constexpr std::string_view kInvalidNetlist = "netlist.invalid";
// --- IO --------------------------------------------------------------
inline constexpr std::string_view kIoFailure = "io.failure";
inline constexpr std::string_view kIoTruncated = "io.truncated";
inline constexpr std::string_view kIoNonFinite = "io.nonfinite";
inline constexpr std::string_view kIoFormat = "io.format";
// --- numerics --------------------------------------------------------
inline constexpr std::string_view kPageRankNonConverged =
    "pagerank.nonconverged";
inline constexpr std::string_view kNonFiniteLoss = "train.nonfinite_loss";
inline constexpr std::string_view kEpochRetry = "train.epoch_retry";
inline constexpr std::string_view kRetriesExhausted =
    "train.retries_exhausted";
// --- pipeline --------------------------------------------------------
inline constexpr std::string_view kSubcktSkipped = "pipeline.subckt_skipped";
inline constexpr std::string_view kExtractDegraded =
    "pipeline.extract_degraded";
// --- disk cache (warnings: the serving path recovers by recomputing) --
inline constexpr std::string_view kCacheCorrupt = "cache.corrupt_entry";
inline constexpr std::string_view kCacheVersion = "cache.version_mismatch";
inline constexpr std::string_view kCacheIo = "cache.io_failure";
// --- run ledger (util/run_ledger.h) ----------------------------------
inline constexpr std::string_view kLedgerIo = "ledger.io_failure";
// --- serving ---------------------------------------------------------
inline constexpr std::string_view kDeadlineExceeded =
    "engine.deadline_exceeded";
inline constexpr std::string_view kAdmissionRejected =
    "engine.admission_rejected";
}  // namespace codes

/// One problem report. `file`/`line` are 0/"" when no position applies.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;
  std::string file;
  std::size_t line = 0;
  std::string message;
  /// Request correlation (docs/observability.md): the ExtractionEngine
  /// stamps the serving request id onto every diagnostic it surfaces in a
  /// result report; 0 = not request-scoped. Excluded from equality so a
  /// request-stamped diagnostic still compares equal to the position-built
  /// expectation (bitwise serial/threaded and delta-equivalence harnesses
  /// compare diagnostics across runs with different request ids).
  std::uint64_t requestId = 0;

  /// "file:line: error[parse.bad_card]: message (request N)" (position
  /// and request parts elided when absent).
  std::string str() const;

  bool operator==(const Diagnostic& other) const {
    return severity == other.severity && code == other.code &&
           file == other.file && line == other.line &&
           message == other.message;
  }
};

/// Thread-safe collector of diagnostics with the strict/fail-soft policy
/// switch. Producers hold a reference; one sink spans one ingestion
/// operation (a parse call, an extract call).
class DiagnosticSink {
 public:
  enum class Mode { kStrict, kCollect };

  explicit DiagnosticSink(Mode mode = Mode::kCollect) : mode_(mode) {}

  DiagnosticSink(const DiagnosticSink&) = delete;
  DiagnosticSink& operator=(const DiagnosticSink&) = delete;

  bool strict() const { return mode_ == Mode::kStrict; }

  /// Records `d`. In strict mode a kError diagnostic throws ParseError
  /// (after recording), so strict producers unwind exactly where the
  /// legacy code threw.
  void report(Diagnostic d);

  // Convenience producers.
  void error(std::string_view code, std::string file, std::size_t line,
             std::string message);
  void warning(std::string_view code, std::string file, std::size_t line,
               std::string message);
  void note(std::string_view code, std::string file, std::size_t line,
            std::string message);

  std::size_t count(Severity severity) const;
  std::size_t errorCount() const { return count(Severity::kError); }
  bool hasErrors() const { return errorCount() > 0; }
  /// Total diagnostics recorded so far (any severity).
  std::size_t size() const;

  /// Copy of everything recorded so far, in report order.
  std::vector<Diagnostic> snapshot() const;
  /// Copy of diagnostics recorded at index >= `from` (for delta capture
  /// around a sub-operation).
  std::vector<Diagnostic> snapshotFrom(std::size_t from) const;
  /// Moves all recorded diagnostics out, leaving the sink empty.
  std::vector<Diagnostic> take();

 private:
  mutable std::mutex mutex_;
  Mode mode_;
  std::vector<Diagnostic> diagnostics_;
  std::array<std::size_t, 3> counts_{};
};

/// A fail-soft result: the (possibly partial) value plus every diagnostic
/// produced while building it.
template <typename T>
struct Parsed {
  T value{};
  std::vector<Diagnostic> diagnostics;

  /// True when nothing of kError severity was reported — the value is
  /// complete, not merely partial.
  bool ok() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kError) return false;
    }
    return true;
  }

  std::size_t errorCount() const {
    std::size_t n = 0;
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kError) ++n;
    }
    return n;
  }
};

}  // namespace ancstr::diag
