// Tiny arithmetic expression evaluator for SPICE parameter expressions:
//   .param wdiff=2u  ->  M1 ... w={wdiff*2} l='0.5*lmin'
// Grammar: expr := term (('+'|'-') term)*
//          term := factor (('*'|'/') factor)*
//          factor := ('+'|'-') factor | number | ident | '(' expr ')'
// Numbers accept SPICE engineering suffixes; identifiers resolve through a
// caller-provided parameter environment.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ancstr {

/// Parameter environment: name (lower-case) -> value.
using ParamEnv = std::unordered_map<std::string, double>;

/// Evaluates `text` against `env`. Returns nullopt on any syntax error or
/// unresolved identifier (callers report position-aware errors themselves).
std::optional<double> evalExpression(std::string_view text,
                                     const ParamEnv& env);

/// Evaluates a parameter value that may be a bare SPICE number, a quoted
/// expression ('...' or {...}), or a bare identifier/expression.
std::optional<double> evalParamValue(std::string_view text,
                                     const ParamEnv& env);

}  // namespace ancstr
