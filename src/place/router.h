// Symmetry-aware grid routing — the "R" of the automated P&R flow the
// paper's constraints feed (Fig. 1: matched modules must be placed *and
// routed* symmetrically).
//
// A Lee-style BFS maze router over a uniform capacity grid. Multi-terminal
// nets are routed by growing a tree (BFS from the current tree to the next
// terminal). Nets marked as a symmetric pair are routed once on the left
// and mirrored about the axis, so matched wiring is identical by
// construction — exactly how analog routers honour symmetry constraints.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "place/geometry.h"
#include "util/error.h"

namespace ancstr::place {

/// Integer grid coordinate.
struct GridPoint {
  int x = 0;
  int y = 0;
  bool operator==(const GridPoint&) const = default;
};

/// A net to route: two or more distinct grid terminals.
struct RouteNet {
  std::string name;
  std::vector<GridPoint> terminals;
};

/// One routed net: the set of grid cells its tree occupies.
struct RoutedNet {
  std::string name;
  std::vector<GridPoint> cells;
  bool mirrored = false;  ///< produced by mirroring its partner
};

struct RouterOptions {
  int capacity = 2;          ///< simultaneous nets per grid cell
  double congestionCost = 4.0;  ///< extra cost per existing occupant
  /// x of the vertical symmetry axis in grid units (mirroring maps
  /// x -> 2*axis - x, so half-integer axes are representable by doubling).
  int axisX = 0;
};

/// Routing result: per-net paths + quality metrics.
struct RoutingResult {
  std::vector<RoutedNet> nets;
  std::size_t wirelength = 0;   ///< total occupied cells
  std::size_t overflows = 0;    ///< cells above capacity
  std::size_t failedNets = 0;   ///< nets that could not be connected

  bool success() const { return failedNets == 0; }
};

/// Routes `nets` over a `width` x `height` grid. `symmetricNetPairs` are
/// index pairs into `nets`: the first is routed, the second is produced by
/// mirroring (its terminals must mirror the first's, else it falls back to
/// independent routing).
RoutingResult routeNets(
    int width, int height, const std::vector<RouteNet>& nets,
    const std::vector<std::pair<std::size_t, std::size_t>>& symmetricNetPairs,
    const RouterOptions& options = {});

/// Mirror of `p` about the vertical axis at options.axisX.
GridPoint mirrorPoint(const GridPoint& p, int axisX);

}  // namespace ancstr::place
