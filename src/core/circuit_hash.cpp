#include "core/circuit_hash.h"

#include <unordered_map>

namespace ancstr {

namespace {

constexpr std::uint64_t kSchemaVersion = 1;

}  // namespace

util::StructuralHash structuralHash(const FlatDesign& design,
                                    std::span<const FlatDeviceId> subset,
                                    const GraphBuildOptions& graph,
                                    const FeatureConfig& features) {
  util::StructuralHasher h;
  h.add(kSchemaVersion);
  h.addBool(graph.includeBulkPins);
  h.addSize(graph.maxNetDegree);
  h.addBool(graph.collapseEdgeTypes);
  h.addBool(features.useGeometry);
  h.addBool(features.useLayers);

  // Section A — devices in subset order: type, sizing parameters (the
  // feature inputs), and pins as (function, local net). Nets are numbered
  // by first appearance in this walk, which erases global FlatNetIds.
  h.addSize(subset.size());
  std::unordered_map<FlatDeviceId, std::uint32_t> localDevice;
  std::unordered_map<FlatNetId, std::uint32_t> localNet;
  localDevice.reserve(subset.size());
  for (std::uint32_t i = 0; i < subset.size(); ++i) {
    localDevice.emplace(subset[i], i);
  }
  for (const FlatDeviceId id : subset) {
    const FlatDevice& dev = design.device(id);
    h.add(static_cast<std::uint64_t>(dev.type));
    h.addDouble(dev.params.w);
    h.addDouble(dev.params.l);
    h.addDouble(dev.params.value);
    h.addInt(dev.params.nf);
    h.addInt(dev.params.m);
    h.addInt(dev.params.layers);
    h.addSize(dev.pins.size());
    for (const auto& [function, net] : dev.pins) {
      h.add(static_cast<std::uint64_t>(function));
      const auto [it, inserted] =
          localNet.emplace(net, static_cast<std::uint32_t>(localNet.size()));
      (void)inserted;
      h.add(it->second);
    }
  }

  // Section B — nets in ascending global id order (the order the
  // multigraph builder iterates, which fixes edge insertion order), each
  // with its full-design degree eligibility and its subset-restricted
  // terminal sequence in netTerminals order.
  for (FlatNetId netId = 0; netId < design.nets().size(); ++netId) {
    const auto itLocal = localNet.find(netId);
    if (itLocal == localNet.end()) continue;
    h.add(itLocal->second);
    const auto& terms = design.netTerminals()[netId];
    const bool skipped =
        graph.maxNetDegree > 0 && terms.size() > graph.maxNetDegree;
    h.addBool(skipped);
    if (skipped) continue;
    for (const auto& [deviceId, pinIdx] : terms) {
      const auto itDev = localDevice.find(deviceId);
      if (itDev == localDevice.end()) continue;
      h.add(itDev->second);
      h.add(pinIdx);
    }
  }
  return h.finish();
}

util::StructuralHash structuralHash(const FlatDesign& design,
                                    const GraphBuildOptions& graph,
                                    const FeatureConfig& features) {
  std::vector<FlatDeviceId> all(design.devices().size());
  for (FlatDeviceId i = 0; i < all.size(); ++i) all[i] = i;
  return structuralHash(design, all, graph, features);
}

std::uint64_t detectorConfigSignature(const DetectorConfig& config) {
  util::StructuralHasher h;
  h.add(kSchemaVersion);
  h.addDouble(config.alpha);
  h.addDouble(config.beta);
  h.addDouble(config.deviceThreshold);
  h.addSize(config.embedding.topM);
  h.addDouble(config.embedding.damping);
  h.addBool(config.sizingAwareSimilarity);
  h.addBool(config.localBlockEmbeddings);
  h.addBool(config.mirror.enabled);
  h.addDouble(config.mirror.threshold);
  h.addSize(config.mirror.maxGateNetDegree);
  return h.finish().hi;
}

util::StructuralHash withConfigSalt(const util::StructuralHash& hash,
                                    std::uint64_t salt) {
  util::StructuralHasher h;
  h.add(hash.hi);
  h.add(hash.lo);
  h.add(salt);
  return h.finish();
}

}  // namespace ancstr
