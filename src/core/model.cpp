#include "core/model.h"

#include "nn/init.h"
#include "nn/kernels.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ancstr {

PreparedGraph prepareGraph(const CircuitGraph& graph, nn::Matrix features) {
  if (features.rows() != graph.numVertices()) {
    throw ShapeError("prepareGraph: feature rows != vertices");
  }
  PreparedGraph out;
  for (std::size_t t = 0; t < kNumEdgeTypes; ++t) {
    out.inAdjacency[t] = graph.graph.inAdjacency(static_cast<EdgeType>(t));
  }
  out.features = std::move(features);
  out.inNeighbors.resize(graph.numVertices());
  for (std::uint32_t v = 0; v < graph.numVertices(); ++v) {
    out.inNeighbors[v] = graph.graph.inNeighbors(v);
  }
  out.inverseInDegree.resize(graph.numVertices(), 0.0);
  for (std::uint32_t v = 0; v < graph.numVertices(); ++v) {
    const std::size_t degree = graph.graph.inEdges(v).size();
    if (degree > 0) {
      out.inverseInDegree[v] = 1.0 / static_cast<double>(degree);
    }
  }
  out.vertexToDevice = graph.vertexToDevice;
  return out;
}

GnnModel::GnnModel(GnnConfig config, Rng& rng) : config_(config) {
  ANCSTR_ASSERT(config_.numLayers >= 1);
  const std::size_t sets =
      config_.sharedWeights ? 1u : static_cast<std::size_t>(config_.numLayers);
  for (std::size_t s = 0; s < sets; ++s) {
    std::array<nn::Tensor, kNumEdgeTypes> ws;
    for (std::size_t t = 0; t < kNumEdgeTypes; ++t) {
      ws[t] = nn::Tensor::param(
          nn::xavierUniform(config_.hiddenDim, config_.hiddenDim, rng));
    }
    edgeWeights_.push_back(std::move(ws));
    grus_.emplace_back(config_.hiddenDim, config_.hiddenDim, rng);
  }
  if (config_.featureDim != config_.hiddenDim) {
    inputProj_ = nn::Tensor::param(
        nn::xavierUniform(config_.featureDim, config_.hiddenDim, rng));
  }
}

nn::Tensor GnnModel::forward(const PreparedGraph& g) const {
  if (g.features.cols() != config_.featureDim) {
    throw ShapeError("GnnModel::forward: feature dim mismatch");
  }
  nn::Tensor h = nn::Tensor::constant(g.features);
  if (inputProj_.valid()) h = nn::matmul(h, inputProj_);
  for (int layer = 0; layer < config_.numLayers; ++layer) {
    const auto& ws = edgeWeights_[weightSetFor(layer)];
    nn::Tensor msg;
    for (std::size_t t = 0; t < kNumEdgeTypes; ++t) {
      if (g.inAdjacency[t].nonZeros() == 0) continue;
      nn::Tensor m = nn::spmm(g.inAdjacency[t], nn::matmul(h, ws[t]));
      msg = msg.valid() ? nn::add(msg, m) : m;
    }
    if (!msg.valid()) {
      msg = nn::Tensor::constant(
          nn::Matrix(g.numVertices(), config_.hiddenDim));
    } else if (config_.meanAggregation) {
      msg = nn::rowScale(msg, g.inverseInDegree);
    }
    h = grus_[weightSetFor(layer)].forward(msg, h);
  }
  return h;
}

nn::Matrix GnnModel::embed(const PreparedGraph& g) const {
  return embedStacked({&g}, {0}, g.numVertices());
}

std::vector<nn::Matrix> GnnModel::embedBatch(
    const std::vector<const PreparedGraph*>& graphs) const {
  // Chunk the stack so each chunk's per-layer working set (h, the four
  // h W_t products, the message and GRU state matrices) stays cache
  // resident; one unbounded stack turns every per-layer pass into an
  // L2/L3 stream and loses to the per-graph loop at D=18. Chunking is
  // bitwise-neutral: every kernel op is row-independent, so a graph's
  // rows compute identically whatever chunk they land in.
  constexpr std::size_t kChunkRows = 96;
  std::vector<nn::Matrix> out;
  out.reserve(graphs.size());
  std::size_t begin = 0;
  while (begin < graphs.size()) {
    std::vector<const PreparedGraph*> chunk;
    std::vector<std::size_t> offsets;
    std::size_t total = 0;
    std::size_t end = begin;
    while (end < graphs.size()) {
      const PreparedGraph* g = graphs[end];
      ANCSTR_ASSERT(g != nullptr);
      if (!chunk.empty() && total + g->numVertices() > kChunkRows) break;
      chunk.push_back(g);
      offsets.push_back(total);
      total += g->numVertices();
      ++end;
    }
    const nn::Matrix stacked = embedStacked(chunk, offsets, total);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const std::size_t rows = chunk[i]->numVertices();
      nn::Matrix slice(rows, stacked.cols());
      for (std::size_t r = 0; r < rows; ++r) {
        const double* src = stacked.row(offsets[i] + r);
        double* dst = slice.row(r);
        for (std::size_t c = 0; c < stacked.cols(); ++c) dst[c] = src[c];
      }
      out.push_back(std::move(slice));
    }
    begin = end;
  }
  return out;
}

nn::Matrix GnnModel::embedStacked(
    const std::vector<const PreparedGraph*>& graphs,
    const std::vector<std::size_t>& offsets, std::size_t totalRows) const {
  const trace::TraceSpan span("model.embed");
  static metrics::Counter& embedCounter =
      metrics::Registry::instance().counter("nn.embed.fast");
  static metrics::Counter& gemmCounter =
      metrics::Registry::instance().counter("nn.gemm.calls");
  static metrics::Counter& gruCounter =
      metrics::Registry::instance().counter("nn.gru.fused_steps");

  const std::size_t hd = config_.hiddenDim;
  const nn::Kernels& kernels = nn::activeKernels();
  std::size_t gemmCalls = 0;

  // Stack the feature rows, then apply the input projection in one GEMM.
  nn::Matrix h(totalRows, config_.featureDim);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const nn::Matrix& features = graphs[i]->features;
    if (features.cols() != config_.featureDim) {
      throw ShapeError("GnnModel::embed: feature dim mismatch");
    }
    for (std::size_t r = 0; r < features.rows(); ++r) {
      const double* src = features.row(r);
      double* dst = h.row(offsets[i] + r);
      for (std::size_t c = 0; c < features.cols(); ++c) dst[c] = src[c];
    }
  }
  if (inputProj_.valid()) {
    nn::Matrix projected;
    h.matmulInto(inputProj_.value(), projected);
    h = std::move(projected);
    ++gemmCalls;
  }

  // Reused per-layer workspaces: the transformed messages per edge type,
  // the per-type aggregate, the summed message, and the next state.
  std::array<nn::Matrix, kNumEdgeTypes> hw;
  nn::Matrix mt(totalRows, hd);
  nn::Matrix msg(totalRows, hd);
  nn::Matrix hNext(totalRows, hd);
  std::vector<double> gruScratch;
  for (int layer = 0; layer < config_.numLayers; ++layer) {
    const std::size_t set = weightSetFor(layer);
    const auto& ws = edgeWeights_[set];
    // Edge types present in any graph of the batch. Types absent from one
    // graph contribute exact zero rows for it, which is bitwise-neutral
    // under the kernel contract (message matrices never hold -0.0).
    std::array<std::size_t, kNumEdgeTypes> present{};
    std::size_t numPresent = 0;
    for (std::size_t t = 0; t < kNumEdgeTypes; ++t) {
      for (const PreparedGraph* g : graphs) {
        if (g->inAdjacency[t].nonZeros() > 0) {
          present[numPresent++] = t;
          break;
        }
      }
    }
    // One shared-A batched GEMM computes h W_t for every present type.
    std::array<const double*, kNumEdgeTypes> bs{};
    std::array<double*, kNumEdgeTypes> cs{};
    for (std::size_t idx = 0; idx < numPresent; ++idx) {
      const std::size_t t = present[idx];
      if (hw[t].rows() != totalRows || hw[t].cols() != hd) {
        hw[t] = nn::Matrix(totalRows, hd);
      } else {
        hw[t].setZero();
      }
      bs[idx] = ws[t].value().data();
      cs[idx] = hw[t].data();
    }
    if (numPresent > 0) {
      kernels.gemmBatchAcc(h.data(), bs.data(), cs.data(), numPresent,
                           totalRows, hd, hd);
      gemmCalls += numPresent;
    }
    bool first = true;
    for (std::size_t idx = 0; idx < numPresent; ++idx) {
      const std::size_t t = present[idx];
      mt.setZero();
      for (std::size_t i = 0; i < graphs.size(); ++i) {
        const nn::SparseMatrix& adj = graphs[i]->inAdjacency[t];
        if (adj.nonZeros() == 0) continue;
        adj.multiplyAcc(hw[t].row(offsets[i]), hd, mt.row(offsets[i]));
      }
      if (first) {
        std::swap(msg, mt);
        first = false;
      } else {
        msg += mt;
      }
    }
    if (numPresent == 0) {
      msg.setZero();
    } else if (config_.meanAggregation) {
      for (std::size_t i = 0; i < graphs.size(); ++i) {
        const std::vector<double>& inv = graphs[i]->inverseInDegree;
        for (std::size_t r = 0; r < inv.size(); ++r) {
          double* row = msg.row(offsets[i] + r);
          for (std::size_t c = 0; c < hd; ++c) row[c] *= inv[r];
        }
      }
    }
    grus_[set].inferStepInto(msg, h, hNext, gruScratch);
    std::swap(h, hNext);
    gemmCalls += 2 * 3;  // the fused step's per-gate x W and h U GEMMs
  }
  embedCounter.add(graphs.size());
  gemmCounter.add(gemmCalls);
  gruCounter.add(static_cast<std::size_t>(config_.numLayers));
  return h;
}

GnnModel GnnModel::clone() const {
  // The RNG only seeds initial weights, which are overwritten below.
  Rng rng(0);
  GnnModel copy(config_, rng);
  const std::vector<nn::Tensor> src = parameters();
  std::vector<nn::Tensor> dst = copy.parameters();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i].setValue(src[i].value());
  }
  return copy;
}

std::vector<nn::Tensor> GnnModel::parameters() const {
  std::vector<nn::Tensor> params;
  for (const auto& set : edgeWeights_) {
    for (const nn::Tensor& w : set) params.push_back(w);
  }
  for (const nn::GruCell& gru : grus_) {
    const auto gp = gru.parameters();
    params.insert(params.end(), gp.begin(), gp.end());
  }
  if (inputProj_.valid()) params.push_back(inputProj_);
  return params;
}

}  // namespace ancstr
