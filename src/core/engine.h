// ExtractionEngine: warm-model batch serving over a trained Pipeline.
//
// The paper's model is inductive — train once, extract anywhere — so a
// serving deployment runs many extractions against one set of frozen
// weights. The engine amortizes that workload with two content-addressed
// caches keyed by structuralHash (core/circuit_hash.h):
//
//   * design cache  — the front half of an extraction (multigraph
//     construction + feature init + full-design GNN inference), stored as
//     InferenceArtifacts per whole-design hash;
//   * block cache   — per-subcircuit Algorithm-2 local embeddings
//     (CachedBlockEmbedding, core/embedding.h), stored per subtree hash,
//     so repeated blocks — across designs or within one — are embedded
//     once;
//   * pair cache    — block-pair similarities keyed by the two subtree
//     hashes (PairScoreCache, core/detector.h), so unchanged pairs skip
//     re-scoring.
//
// The design and block caches share one LRU byte budget
// (EngineConfig::cacheBudgetBytes, split evenly between them; the pair
// cache adds a small 1/16 slice on top) with shared_ptr pinning: an entry
// in use is never evicted (util/lru_cache.h). Caching never changes
// results — a warm extraction is bitwise identical to a cold one, because
// hash equality implies a positionally identical serialization of every
// input the cached computation consumed.
//
// Incremental (ECO) serving: extractDelta(oldLib, newLib) diffs the two
// versions (core/library_diff.h), re-warms the caches from the baseline
// when it is not already resident, and then runs the identical cached
// extraction path over newLib — so its result is bitwise-equal to
// extract(newLib) by construction, and the clean cone of the edit is
// served from the caches instead of recomputed. The delta path hashes
// each design exactly once: the subtree hashes computed for diffing are
// handed to block embedding (DetectionCaches::nodeHashes) and memoized
// per design hash (a cacheBudgetBytes/32 slice), so chained ECO calls
// skip the baseline side's hashing entirely.
//
// Persistent tier: with EngineConfig::cachePath set, design-inference
// artifacts and block embeddings are additionally written through to a
// crash-safe on-disk store (util/disk_cache.h) and served from it on
// memory misses — a fresh process over a populated directory starts warm,
// and a disk hit is bitwise identical to a cold run. Disk keys carry the
// detector salt AND a model-identity salt (modelSalt()), so entries can
// never leak across configurations or trained weights. Every disk-tier
// failure (corruption, IO error, full disk) degrades to recompute.
//
// Serving hardening: ExtractOptions::deadline bounds each request
// cooperatively (checked at phase boundaries; expiry yields a typed
// diagnostic / util::DeadlineError, never a partial result), and
// EngineConfig::admissionMaxDesigns / admissionMaxBytes let extractBatch
// shed oversized batches up front (AdmissionError /
// [engine.admission_rejected]). See docs/robustness.md.
//
// Batches fan out over the deterministic util/parallel.h thread pool
// (EngineConfig::threads; ANCSTR_THREADS overrides); results land in
// per-design slots, so batch output is identical for every thread count.
//
// Observability: "engine.extract" / "engine.hash" / "engine.batch" (and
// disk_cache.open/read/write) trace spans, plus engine.cache.* /
// engine.block_cache.* / engine.disk_cache.* / engine.deadline.* /
// engine.admission.* counters and gauges (docs/observability.md).
//
// The engine holds the Pipeline by reference and assumes its model stays
// fixed: reloading the pipeline's weights invalidates every cached entry
// — call clearCaches() after loadModel().
#pragma once

#include <filesystem>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <atomic>

#include "core/library_diff.h"
#include "core/pipeline.h"
#include "util/disk_cache.h"
#include "util/lru_cache.h"
#include "util/run_ledger.h"
#include "util/structural_hash.h"

namespace ancstr {

/// extractBatch refused the batch up front (admission control, see
/// EngineConfig::admissionMaxDesigns / admissionMaxBytes). Typed so strict
/// callers can shed load distinctly from input errors; fail-soft callers
/// get [engine.admission_rejected] diagnostics instead.
class AdmissionError : public Error {
 public:
  using Error::Error;
};

struct EngineConfig {
  /// Total byte budget across both caches (split evenly); 0 disables all
  /// caching. The budget is soft: pinned (in-use) entries are never
  /// evicted, so occupancy can transiently exceed it.
  std::size_t cacheBudgetBytes = 64ull << 20;
  /// Worker count for extractBatch's per-design fan-out. 0 =
  /// hardware_concurrency, 1 = serial; ANCSTR_THREADS overrides (see
  /// util::resolveThreadCount). Per-design pipeline-internal parallelism
  /// stays governed by PipelineConfig::threads.
  std::size_t threads = 1;
  bool cacheDesignInference = true;
  bool cacheBlockEmbeddings = true;
  /// Memoize block-pair similarities by subtree-hash pair (an extra
  /// cacheBudgetBytes/16 slice on top of the design/block split).
  bool cachePairScores = true;

  // --- persistent tier (util/disk_cache.h) ----------------------------
  /// Directory for the crash-safe on-disk cache tier; empty (the default)
  /// disables persistence. Design-inference artifacts and block
  /// embeddings are written through (write-behind) and served on memory
  /// misses, so a fresh process over a populated directory starts warm. A
  /// disk hit is bitwise identical to a cold run; disk keys additionally
  /// carry a model-identity salt, so entries written under different
  /// trained weights can never alias.
  std::filesystem::path cachePath;
  /// Byte budget for the disk tier (LRU eviction); 0 = unbounded.
  std::size_t diskBudgetBytes = 256ull << 20;
  /// Write-behind disk population (background writer thread). Off =
  /// synchronous writes, deterministic for tests.
  bool diskWriteBehind = true;

  // --- run ledger (util/run_ledger.h) ---------------------------------
  /// JSON-lines run-ledger path; empty (the default) disables. One
  /// wide-event record per request — extract(), extractDelta(), and each
  /// design of extractBatch() — capturing request id, design hash, cache
  /// tier outcome, phase timings, diagnostic and constraint counts, and
  /// peak-RSS delta. Appends are fail-soft: a broken ledger never fails a
  /// request. Batch records are appended in batch order after the fan-out
  /// joins, so the ledger sequence is identical for every thread count.
  std::filesystem::path ledgerPath;
  /// Write-behind ledger appends (background writer thread). Off =
  /// synchronous appends, deterministic for tests.
  bool ledgerWriteBehind = true;

  // --- admission control (extractBatch) -------------------------------
  /// Maximum designs accepted per extractBatch call; 0 = unlimited. An
  /// oversized batch is rejected whole, up front: AdmissionError in
  /// strict mode, [engine.admission_rejected] + empty results under a
  /// collect sink.
  std::size_t admissionMaxDesigns = 0;
  /// Maximum estimated in-flight bytes per extractBatch call (coarse:
  /// flatDeviceCount * ~1 KiB per design); 0 = unlimited. Same rejection
  /// contract as admissionMaxDesigns.
  std::size_t admissionMaxBytes = 0;
};

/// Cumulative cache counters (see util::LruCacheStats).
struct EngineCacheStats {
  util::LruCacheStats design;
  util::LruCacheStats blocks;
  util::LruCacheStats pairs;
};

/// What ExtractionEngine::extractDelta learned about the edit.
struct DeltaReport {
  /// Master classification and new-design dirtiness (core/library_diff.h).
  /// Default-constructed (no masters, no nodes) when the baseline failed
  /// to elaborate — nothing is provably clean then.
  LibraryDiff diff;
  /// Cache-activity delta over this call: reuse.blocks.hits etc. count
  /// how much of the clean cone was served from cache.
  EngineCacheStats reuse;
};

class ExtractionEngine {
 public:
  /// `pipeline` must outlive the engine and be trained before the first
  /// extract call.
  explicit ExtractionEngine(const Pipeline& pipeline, EngineConfig config = {});
  ~ExtractionEngine();

  ExtractionEngine(const ExtractionEngine&) = delete;
  ExtractionEngine& operator=(const ExtractionEngine&) = delete;

  /// One warm-path extraction: identical contract (and bitwise identical
  /// detection/embeddings output) to Pipeline::extract, plus cache
  /// consultation. The result report gains an "engine.hash" phase and —
  /// on a design-cache hit — omits the skipped "extract.graph_build" /
  /// "extract.inference" phases.
  ExtractionResult extract(const Library& lib,
                           ExtractOptions options = {}) const;

  /// Incremental (ECO) extraction of `newLib` against the `oldLib`
  /// baseline. Semantics: the detection result, constraints, and
  /// embeddings are bitwise-identical to extract(newLib) — for every
  /// thread count, cache budget, and prior cache state — because after
  /// diffing and warming this runs the exact same cached extraction path.
  /// The delta value is time: subtrees whose structural hash already
  /// appears in the baseline (the clean cone) are served from the block
  /// and pair caches. A node is dirty when its subtree hash is absent
  /// from the baseline — which covers edits inside it, edits in any
  /// descendant, and `maxNetDegree` eligibility flips of any net it
  /// touches (core/library_diff.h).
  ///
  /// The baseline is consumed fail-soft: if `oldLib` does not elaborate,
  /// the diff is empty and the call degrades to a plain extract(newLib)
  /// (never throws because of the baseline). `options` applies to the
  /// newLib extraction exactly as in extract(). `delta`, when non-null,
  /// receives the diff and the cache-reuse counters for this call. The
  /// result report gains "engine.diff" and (on a cold baseline)
  /// "engine.warm" phases, plus engine.delta.* metrics
  /// (docs/observability.md).
  ExtractionResult extractDelta(const Library& oldLib, const Library& newLib,
                                ExtractOptions options = {},
                                DeltaReport* delta = nullptr) const;

  /// Extracts every design of `batch` (null entries are a caller bug),
  /// fanning out over EngineConfig::threads workers. results[i]
  /// corresponds to batch[i] and is bitwise identical for every thread
  /// count. With a collect-mode options.sink, each design degrades
  /// independently (one corrupt design never poisons its neighbours);
  /// diagnostics land in the matching result's report and are merged into
  /// the caller's sink in batch order. `batchReport`, when non-null,
  /// receives the whole-batch "engine.batch" phase and metrics delta.
  std::vector<ExtractionResult> extractBatch(
      std::span<const Library* const> batch, ExtractOptions options = {},
      RunReport* batchReport = nullptr) const;

  /// Braced-list convenience: extractBatch({&a, &b}).
  std::vector<ExtractionResult> extractBatch(
      std::initializer_list<const Library*> batch, ExtractOptions options = {},
      RunReport* batchReport = nullptr) const {
    return extractBatch(
        std::span<const Library* const>(batch.begin(), batch.size()), options,
        batchReport);
  }

  EngineCacheStats cacheStats() const;

  /// Cumulative disk-tier counters; all-zero/disabled when
  /// EngineConfig::cachePath is empty.
  util::DiskCacheStats diskCacheStats() const;

  /// Drains pending write-behind disk writes (no-op without a disk tier).
  /// The destructor drains too; call this when another process — or a
  /// fresh engine over the same directory — must observe the entries now.
  void flushDiskWrites() const;

  /// Cumulative run-ledger counters; disabled/all-zero when
  /// EngineConfig::ledgerPath is empty.
  ledger::LedgerStats ledgerStats() const;

  /// Drains pending write-behind ledger appends (no-op without a ledger;
  /// the destructor drains too).
  void flushLedger() const;

  /// The detector-configuration salt mixed into every design/block/pair
  /// cache key (detectorConfigSignature of the wrapped pipeline's
  /// detector config, core/circuit_hash.h). Engines over pipelines with
  /// different detector configurations — thresholds, embedding options,
  /// constraint-type (mirror) settings — therefore key disjoint cache
  /// spaces, so cached results can never leak across configurations.
  std::uint64_t detectorSalt() const { return detectorSalt_; }

  /// Drops every unpinned cached entry (e.g. after Pipeline::loadModel).
  void clearCaches();

  const Pipeline& pipeline() const { return pipeline_; }
  const EngineConfig& config() const { return config_; }

 private:
  class BlockCacheAdapter;
  class PairCacheAdapter;

  /// `preElaborated`, when non-null, skips elaboration (internal paths
  /// that already hold the FlatDesign; sound under a fail-soft sink too,
  /// because strict elaboration succeeding implies the sink-mode
  /// elaboration of the same library is identical and diagnostic-free).
  /// `designHash` / `nodeHashes`, when non-null, are the precomputed
  /// whole-design and per-node subtree hashes for `preElaborated` — the
  /// delta path hashes each design once and reuses the values here.
  /// `requestId` (nonzero on every public path) is stamped onto the
  /// top-level spans, the result report, and every surfaced diagnostic.
  /// `ledgerRec`, when non-null, is filled with this request's wide event
  /// (the caller appends it to the ledger — extractBatch defers appends
  /// until after the fan-out joins so ledger order is thread-invariant).
  ExtractionResult extractOne(
      const Library& lib, diag::DiagnosticSink* sink,
      util::Deadline deadline = {}, const FlatDesign* preElaborated = nullptr,
      const util::StructuralHash* designHash = nullptr,
      const std::vector<util::StructuralHash>* nodeHashes = nullptr,
      std::uint64_t requestId = 0,
      ledger::LedgerRecord* ledgerRec = nullptr) const;

  /// Reserves `n` consecutive request ids; returns the first. Batch slots
  /// get base + i, so ids are dense and thread-count invariant.
  std::uint64_t claimRequestIds(std::size_t n) const {
    return nextRequestId_.fetch_add(n, std::memory_order_relaxed) + 1;
  }

  /// Model-identity salt mixed into every disk key (a fold of the
  /// serialized trained weights): on-disk entries outlive the process, so
  /// unlike the in-memory tier they must also be disjoint across models.
  /// Computed lazily (the pipeline may be untrained at construction);
  /// clearCaches() resets it for the post-loadModel() weights.
  std::uint64_t modelSalt() const;

  /// Disk-tier read/write of an already detector-salted key; no-ops
  /// (nullopt) without an enabled disk tier.
  std::optional<std::string> diskGet(std::string_view ns,
                                     const util::StructuralHash& saltedKey,
                                     diag::DiagnosticSink* sink) const;
  void diskPut(std::string_view ns, const util::StructuralHash& saltedKey,
               std::string payload) const;

  /// Subtree hashes of `design`, memoized by its whole-design hash so
  /// chained delta calls (v1->v2, v2->v3, ...) hash each version once.
  std::shared_ptr<const std::vector<util::StructuralHash>>
  memoizedSubtreeHashes(const FlatDesign& design,
                        const util::StructuralHash& designHash) const;

  void publishCacheMetrics() const;

  const Pipeline& pipeline_;
  EngineConfig config_;
  /// See detectorSalt(). The subtree-hash memo stays UNSALTED: subtree
  /// hashes are a pure function of design + graph/feature options,
  /// independent of how detection scores them.
  std::uint64_t detectorSalt_ = 0;
  mutable util::LruByteCache<util::StructuralHash, InferenceArtifacts>
      designCache_;
  mutable util::LruByteCache<util::StructuralHash, CachedBlockEmbedding>
      blockCache_;
  mutable util::LruByteCache<PairScoreKey, double, PairScoreKeyHash>
      pairCache_;
  /// Subtree-hash vectors keyed by whole-design hash (a thin
  /// cacheBudgetBytes/32 slice). Feeds extractDelta only; never affects
  /// results — a memoized vector is bitwise what subtreeHashes() returns.
  mutable util::LruByteCache<util::StructuralHash,
                             std::vector<util::StructuralHash>>
      subtreeHashMemo_;
  std::unique_ptr<BlockCacheAdapter> blockAdapter_;
  std::unique_ptr<PairCacheAdapter> pairAdapter_;
  /// Persistent second tier (null without EngineConfig::cachePath).
  std::unique_ptr<util::DiskCache> disk_;
  /// Per-request wide-event ledger (null without EngineConfig::ledgerPath).
  std::unique_ptr<ledger::LedgerWriter> ledger_;
  /// Monotonic per-engine request-id source (first id = 1).
  mutable std::atomic<std::uint64_t> nextRequestId_{0};
  mutable std::mutex modelSaltMutex_;
  mutable bool modelSaltReady_ = false;
  mutable std::uint64_t modelSalt_ = 0;
  mutable std::mutex publishMutex_;
  mutable EngineCacheStats published_;
  mutable util::DiskCacheStats publishedDisk_;
};

}  // namespace ancstr
