#include "util/resource.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace ancstr::util {
namespace {

TEST(MemoryCounters, AllocationIncrementsCountAndBytes) {
  const MemoryCounters before = memoryCounters();
  // A fresh heap allocation large enough that no small-buffer optimisation
  // can elide the operator new call.
  auto block = std::make_unique<std::vector<double>>(4096);
  block->at(0) = 1.0;
  const MemoryCounters after = memoryCounters();
  EXPECT_GT(after.allocCount, before.allocCount);
  EXPECT_GE(after.allocBytes - before.allocBytes, 4096 * sizeof(double));
}

TEST(MemoryCounters, FreeIncrementsFreeCount) {
  const MemoryCounters before = memoryCounters();
  { auto block = std::make_unique<std::vector<int>>(1024); }
  const MemoryCounters after = memoryCounters();
  EXPECT_GT(after.freeCount, before.freeCount);
}

TEST(PeakRss, ReportsNonZeroOnThisPlatform) {
  // getrusage ru_maxrss works on Linux and macOS; a zero here means the
  // platform shim regressed.
  EXPECT_GT(peakRssBytes(), 0u);
}

TEST(ResourceSample, NowIsPopulated) {
  const ResourceSample sample = ResourceSample::now();
  EXPECT_GT(sample.peakRssBytes, 0u);
  EXPECT_GE(sample.userCpuSeconds, 0.0);
  EXPECT_GE(sample.systemCpuSeconds, 0.0);
}

TEST(ResourceSample, SinceSubtractsMonotonicFields) {
  const ResourceSample before = ResourceSample::now();
  auto block = std::make_unique<std::vector<double>>(8192);
  block->at(1) = 2.0;
  const ResourceSample after = ResourceSample::now();
  const ResourceSample delta = after.since(before);
  EXPECT_GT(delta.memory.allocCount, 0u);
  EXPECT_GE(delta.memory.allocBytes, 8192 * sizeof(double));
  // Peak RSS keeps the absolute high-water mark, never a difference.
  EXPECT_EQ(delta.peakRssBytes, after.peakRssBytes);
}

TEST(ResourceSample, SinceClampsInvertedSamplesToZero) {
  // Diffing in the wrong order must clamp instead of wrapping the
  // unsigned counters around.
  const ResourceSample early = ResourceSample::now();
  auto block = std::make_unique<std::vector<int>>(512);
  block->at(0) = 1;
  const ResourceSample late = ResourceSample::now();
  const ResourceSample delta = early.since(late);
  EXPECT_EQ(delta.memory.allocCount, 0u);
  EXPECT_EQ(delta.memory.allocBytes, 0u);
  EXPECT_GE(delta.userCpuSeconds, 0.0);
  EXPECT_GE(delta.systemCpuSeconds, 0.0);
}

}  // namespace
}  // namespace ancstr::util
